// Reproduces paper §7.3.4 (memory overhead): compressed driverlet package
// sizes per device, in both the human-readable text form the paper ships and
// the binary form it suggests as future size optimization (our ablation).
#include <cstdio>

#include "src/workload/deploy_util.h"

namespace {

void Report(const char* name, const dlt::RecordCampaign& campaign) {
  using namespace dlt;
  PackageSizes text_sizes;
  PackageSizes bin_sizes;
  (void)campaign.Seal(PackageFormat::kText, kDeveloperKey, &text_sizes);
  (void)campaign.Seal(PackageFormat::kBinary, kDeveloperKey, &bin_sizes);
  int events = 0;
  for (const auto& t : campaign.templates()) {
    events += t.CountEvents().total();
  }
  std::printf("%-8s %9zu %7d %12zu %12zu %12zu %12zu\n", name, campaign.templates().size(),
              events, text_sizes.serialized, text_sizes.compressed, bin_sizes.serialized,
              bin_sizes.compressed);
}

}  // namespace

int main() {
  using namespace dlt;
  std::printf("Memory overhead (paper 7.3.4): driverlet package sizes in bytes\n\n");
  std::printf("%-8s %9s %7s %12s %12s %12s %12s\n", "device", "templates", "events",
              "text-raw", "text-lzss", "bin-raw", "bin-lzss");
  PrintRule(80);
  {
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> c = RecordMmcCampaign(&dev);
    if (c.ok()) {
      Report("MMC", *c);
    }
  }
  {
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> c = RecordUsbCampaign(&dev);
    if (c.ok()) {
      Report("USB", *c);
    }
  }
  {
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> c = RecordCameraCampaign(&dev);
    if (c.ok()) {
      Report("VCHIQ", *c);
    }
  }
  PrintRule(80);
  std::printf(
      "\nPaper reference: after compression the MMC, USB and VCHIQ driverlets are\n"
      "6 KB, 26 KB and 19 KB; \"further converting them to binary form is likely to\n"
      "reduce their sizes\" — the bin-lzss column quantifies that reduction.\n");
  return 0;
}
