// Shared helpers for the benchmark binaries (one per paper table/figure).
// Deployment/package builders live in src/workload/deploy_util.h, shared with
// the test suite and the fault-matrix campaign.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>

#include "src/workload/deploy_util.h"

namespace dlt {

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

}  // namespace dlt

#endif  // BENCH_BENCH_UTIL_H_
