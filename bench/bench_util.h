// Compatibility shim: every shared bench helper (deployment/package builders,
// PatternBuf, PrintRule) lives in src/workload/deploy_util.h, shared with the
// test suite and the fault-matrix campaign. Keep this file a pure forward.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include "src/workload/deploy_util.h"

#endif  // BENCH_BENCH_UTIL_H_
