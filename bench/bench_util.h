// Shared helpers for the benchmark binaries (one per paper table/figure).
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/replayer.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"

namespace dlt {

// A deployment machine with devices assigned to the TEE and a replayer loaded
// with the given sealed package.
struct Deployment {
  std::unique_ptr<Rpi3Testbed> tb;
  std::unique_ptr<Replayer> replayer;
};

inline Deployment MakeDeployment(const std::vector<uint8_t>& sealed) {
  Deployment d;
  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  d.tb = std::make_unique<Rpi3Testbed>(opts);
  d.replayer = std::make_unique<Replayer>(&d.tb->tee(), kDeveloperKey);
  Status s = d.replayer->LoadPackage(sealed.data(), sealed.size());
  if (!Ok(s)) {
    std::fprintf(stderr, "package load failed: %s\n", StatusName(s));
  }
  return d;
}

// Records a campaign on a fresh developer machine and returns the sealed package.
inline std::vector<uint8_t> BuildMmcPackage() {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordMmcCampaign(&dev);
  return c.ok() ? c->Seal(PackageFormat::kText, kDeveloperKey) : std::vector<uint8_t>{};
}
inline std::vector<uint8_t> BuildUsbPackage() {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordUsbCampaign(&dev);
  return c.ok() ? c->Seal(PackageFormat::kText, kDeveloperKey) : std::vector<uint8_t>{};
}
inline std::vector<uint8_t> BuildCameraPackage() {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordCameraCampaign(&dev);
  return c.ok() ? c->Seal(PackageFormat::kText, kDeveloperKey) : std::vector<uint8_t>{};
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

}  // namespace dlt

#endif  // BENCH_BENCH_UTIL_H_
