// Reproduces paper Figure 8: microbenchmarks — latency of executing a single
// interaction template (driverlet) vs the same request through the full driver
// + block layer (native), for MMC and USB at every recorded granularity.
// Uses google-benchmark with manual (simulated) time.
//
// On top of the paper's block-device comparison, a registry-driven sweep
// (`Driverlet_<class>_Covered`) measures one covered invoke per registered
// driverlet class — the class list comes from RegisteredDriverletClasses()
// (src/workload/deploy_util.h), so a new class shows up here without edits.
#include <benchmark/benchmark.h>

#include "src/workload/deploy_util.h"
#include "src/obs/telemetry.h"
#include "src/workload/sqlite_scripts.h"
#include "tests/../src/kern/block_layer.h"

namespace dlt {
namespace {

std::vector<uint8_t>& MmcPkg() {
  static std::vector<uint8_t> pkg = BuildMmcPackage();
  return pkg;
}
std::vector<uint8_t>& UsbPkg() {
  static std::vector<uint8_t> pkg = BuildUsbPackage();
  return pkg;
}

void BenchDriverlet(benchmark::State& state, bool usb, uint64_t rw) {
  Deployment d = MakeDeployment(usb ? UsbPkg() : MmcPkg());
  uint64_t blkcnt = static_cast<uint64_t>(state.range(0));
  std::vector<uint8_t> buf(blkcnt * 512, 0x5c);
  uint64_t blkid = 4096;
  for (auto _ : state) {
    ReplayArgs args;
    args.scalars = {{"rw", rw}, {"blkcnt", blkcnt}, {"blkid", blkid}, {"flag", 0}};
    args.buffers["buf"] = BufferView{buf.data(), buf.size()};
    uint64_t t0 = d.tb->clock().now_us();
    Result<ReplayStats> r = d.service->Invoke(d.session, usb ? kUsbEntry : kMmcEntry, args);
    uint64_t dt = d.tb->clock().now_us() - t0;
    if (!r.ok()) {
      state.SkipWithError(StatusName(r.status()));
      return;
    }
    state.SetIterationTime(static_cast<double>(dt) / 1e6);
    blkid += 4096;  // new addresses every iteration: no cache effects
  }
}

void BenchNative(benchmark::State& state, bool usb, uint64_t rw) {
  // The same request submitted through the kernel to the full driver (block
  // layer per-request + per-segment costs, then the driver). This is the
  // apples-to-apples single-request latency of paper Fig. 8: the driverlet is
  // near-native or slightly lower because it "forgoes complex kernel layers",
  // most visibly the per-4KB-page transfer scheduling on large USB writes.
  TestbedOptions opts;
  Rpi3Testbed tb{opts};
  RawBlockDriver* driver = usb ? static_cast<RawBlockDriver*>(&tb.usb_driver())
                               : &tb.mmc_driver();
  uint64_t blkcnt = static_cast<uint64_t>(state.range(0));
  std::vector<uint8_t> buf(blkcnt * 512, 0x5c);
  uint64_t blkid = 4096;
  const LatencyModel& lat = tb.machine().latency();
  for (auto _ : state) {
    uint64_t t0 = tb.clock().now_us();
    tb.clock().Advance(lat.kern_block_layer_us +
                       driver->PerPageSchedulingUs() * ((blkcnt + 7) / 8));
    Status s = rw == kMmcRwRead
                   ? driver->ReadBlocks(blkid, static_cast<uint32_t>(blkcnt), buf.data())
                   : driver->WriteBlocks(blkid, static_cast<uint32_t>(blkcnt), buf.data());
    uint64_t dt = tb.clock().now_us() - t0;
    if (!Ok(s)) {
      state.SkipWithError(StatusName(s));
      return;
    }
    state.SetIterationTime(static_cast<double>(dt) / 1e6);
    blkid += 4096;  // new addresses every iteration: no cache effects
  }
}

void MMC_Driverlet_RD(benchmark::State& s) { BenchDriverlet(s, false, kMmcRwRead); }
void MMC_Driverlet_WR(benchmark::State& s) { BenchDriverlet(s, false, kMmcRwWrite); }
void MMC_Native_RD(benchmark::State& s) { BenchNative(s, false, kMmcRwRead); }
void MMC_Native_WR(benchmark::State& s) { BenchNative(s, false, kMmcRwWrite); }
void USB_Driverlet_RD(benchmark::State& s) { BenchDriverlet(s, true, kMmcRwRead); }
void USB_Driverlet_WR(benchmark::State& s) { BenchDriverlet(s, true, kMmcRwWrite); }
void USB_Native_RD(benchmark::State& s) { BenchNative(s, true, kMmcRwRead); }
void USB_Native_WR(benchmark::State& s) { BenchNative(s, true, kMmcRwWrite); }

void Sizes(benchmark::internal::Benchmark* b) {
  for (int n : {1, 8, 32, 128, 256}) {
    b->Arg(n);
  }
  b->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(4);
}

BENCHMARK(MMC_Driverlet_RD)->Apply(Sizes);
BENCHMARK(MMC_Native_RD)->Apply(Sizes);
BENCHMARK(MMC_Driverlet_WR)->Apply(Sizes);
BENCHMARK(MMC_Native_WR)->Apply(Sizes);
BENCHMARK(USB_Driverlet_RD)->Apply(Sizes);
BENCHMARK(USB_Native_RD)->Apply(Sizes);
BENCHMARK(USB_Driverlet_WR)->Apply(Sizes);
BENCHMARK(USB_Native_WR)->Apply(Sizes);

// One covered invoke per registered class through the full service path,
// with per-class argument synthesis from the shared CoveredArgsFor table.
void BenchClassCovered(benchmark::State& state, const DriverletClassSpec* spec) {
  static std::map<std::string, std::vector<uint8_t>>* pkgs =
      new std::map<std::string, std::vector<uint8_t>>;
  auto it = pkgs->find(spec->name);
  if (it == pkgs->end()) {
    it = pkgs->emplace(spec->name, spec->build_package()).first;
  }
  Deployment d = MakeDeployment(it->second);
  if (d.session == 0) {
    state.SkipWithError("deployment failed");
    return;
  }
  std::vector<uint8_t> buf, aux;
  ReplayArgs args;
  int round = 0;
  for (auto _ : state) {
    if (!CoveredArgsFor(spec->entry, round++, &buf, &aux, &args)) {
      state.SkipWithError("no synthetic load for entry");
      return;
    }
    uint64_t t0 = d.tb->clock().now_us();
    Result<ReplayStats> r = d.service->Invoke(d.session, spec->entry, args);
    uint64_t dt = d.tb->clock().now_us() - t0;
    if (!r.ok()) {
      state.SkipWithError(StatusName(r.status()));
      return;
    }
    state.SetIterationTime(static_cast<double>(dt) / 1e6);
  }
}

}  // namespace

void RegisterClassSweepBenchmarks() {
  for (const DriverletClassSpec& cls : RegisteredDriverletClasses()) {
    benchmark::RegisterBenchmark(("Driverlet_" + std::string(cls.name) + "_Covered").c_str(),
                                 [&cls](benchmark::State& s) { BenchClassCovered(s, &cls); })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(4);
  }
}

}  // namespace dlt

// Custom main instead of BENCHMARK_MAIN(): when telemetry is armed
// (DLT_TRACE=1), print the metrics summary after the run — template hit/miss,
// soft resets, per-event-kind replay latencies (docs/observability.md).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  dlt::RegisterClassSweepBenchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dlt::Telemetry& tel = dlt::Telemetry::Get();
  if (tel.enabled()) {
    dlt::MetricsRegistry& m = tel.metrics();
    std::printf("\n-- telemetry metrics (virtual time) --\n");
    std::printf("template hits=%llu misses=%llu soft_resets=%llu\n",
                static_cast<unsigned long long>(m.counter("replay.template_hit").value()),
                static_cast<unsigned long long>(m.counter("replay.template_miss").value()),
                static_cast<unsigned long long>(m.counter("replay.soft_resets").value()));
    std::printf("select cache hits=%llu misses=%llu evictions=%llu\n",
                static_cast<unsigned long long>(m.counter("replay.select_cache.hit").value()),
                static_cast<unsigned long long>(m.counter("replay.select_cache.miss").value()),
                static_cast<unsigned long long>(m.counter("replay.select_cache.evict").value()));
    std::printf("compile cache hits=%llu misses=%llu evictions=%llu\n",
                static_cast<unsigned long long>(m.counter("replay.compile_cache.hit").value()),
                static_cast<unsigned long long>(m.counter("replay.compile_cache.miss").value()),
                static_cast<unsigned long long>(m.counter("replay.compile_cache.evict").value()));
    std::printf("%s", m.Summary().c_str());
  }
  return 0;
}
