// Boundary-fuzzer benchmark: a fixed-iteration coverage-guided campaign over
// the replay-service boundary (src/check/fuzz.h) plus the planted-bug
// regression demo, with the coverage curve and shrink accounting emitted as
// BENCH_fuzz.json. Deterministic: the budget is an iteration count, never wall
// clock, so two runs with the same flags produce byte-identical output.
//
//   boundary_fuzz [--iters N] [--seed K] [--out PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "src/check/fuzz.h"
#include "src/workload/deploy_util.h"

int main(int argc, char** argv) {
  using namespace dlt;

  int iters = 120;
  uint64_t seed = 1;
  std::string out_path = "BENCH_fuzz.json";
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--iters") == 0) {
      iters = std::atoi(next("--iters"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(next("--seed"), nullptr, 0);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next("--out");
    } else {
      std::fprintf(stderr, "usage: boundary_fuzz [--iters N] [--seed K] [--out PATH]\n");
      return 2;
    }
  }
  if (iters < 1) {
    std::fprintf(stderr, "--iters must be >= 1\n");
    return 2;
  }

  // Clean campaign: the real service, no planted bugs, fixed mutant budget.
  BoundaryFuzzConfig cfg;
  cfg.seed = seed;
  cfg.iterations = iters;
  std::printf("boundary fuzz: %d mutants, seed %llu\n", iters,
              static_cast<unsigned long long>(seed));
  PrintRule();
  BoundaryFuzzStats clean = RunBoundaryFuzz(cfg);
  std::printf("%d mutants run, corpus %zu programs, %zu coverage features\n", clean.runs,
              clean.corpus_size, clean.features);
  std::printf("coverage curve:");
  for (size_t v : clean.coverage_curve) {
    std::printf(" %zu", v);
  }
  std::printf("\n");
  for (const BoundaryFinding& f : clean.findings) {
    std::printf("FAIL %-18s %s\n", f.invariant.c_str(), f.detail.c_str());
  }

  // Shrink demonstration: arm the planted ring wrap-around reap bug and let
  // the fuzzer catch + ddmin it — the measured failure path, mirroring the
  // conformance sweep's planted-miscompile demo.
  BoundaryFuzzConfig pcfg;
  pcfg.seed = seed;
  pcfg.iterations = 8;
  pcfg.max_findings = 1;
  pcfg.plant_ring_quirk = true;
  BoundaryFuzzStats planted = RunBoundaryFuzz(pcfg);
  size_t planted_original = 0, planted_shrunk = 0;
  int planted_steps = 0;
  bool planted_found = false;
  for (const BoundaryFinding& f : planted.findings) {
    if (f.invariant == "ring-order") {
      planted_found = true;
      planted_original = f.program.actions.size();
      planted_shrunk = f.shrunk.actions.size();
      planted_steps = f.shrink_steps;
    }
  }
  std::printf("planted ring bug: %s, shrunk %zu -> %zu actions (%d steps)\n",
              planted_found ? "found" : "NOT FOUND", planted_original, planted_shrunk,
              planted_steps);
  PrintRule();

  std::ostringstream json;
  json << "{\n  \"runs\": " << clean.runs << ",\n  \"corpus\": " << clean.corpus_size
       << ",\n  \"features\": " << clean.features << ",\n  \"violations\": "
       << clean.findings.size() << ",\n  \"coverage_curve\": [";
  for (size_t i = 0; i < clean.coverage_curve.size(); ++i) {
    if (i > 0) {
      json << ", ";
    }
    json << clean.coverage_curve[i];
  }
  json << "],\n  \"planted\": {\"found\": " << (planted_found ? "true" : "false")
       << ", \"invariant\": \"ring-order\", \"original_actions\": " << planted_original
       << ", \"shrunk_actions\": " << planted_shrunk << ", \"steps\": " << planted_steps
       << "}\n}\n";
  std::string out_json = json.str();
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(out_json.data(), 1, out_json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // Regression guards: no violations on the clean service, a monotone
  // coverage curve that actually grew past the seed corpus, and the planted
  // bug caught and shrunk to a genuinely small program.
  if (!clean.findings.empty()) {
    std::fprintf(stderr, "FAIL: %zu boundary violations on the clean service\n",
                 clean.findings.size());
    return 1;
  }
  for (size_t i = 1; i < clean.coverage_curve.size(); ++i) {
    if (clean.coverage_curve[i] < clean.coverage_curve[i - 1]) {
      std::fprintf(stderr, "FAIL: coverage curve regressed at sample %zu\n", i);
      return 1;
    }
  }
  if (clean.coverage_curve.empty() ||
      clean.coverage_curve.back() <= clean.coverage_curve.front()) {
    std::fprintf(stderr, "FAIL: mutation found no coverage beyond the seed corpus\n");
    return 1;
  }
  if (!planted_found || planted_shrunk == 0) {
    std::fprintf(stderr, "FAIL: planted ring bug not caught\n");
    return 1;
  }
  if (planted_shrunk > 16) {
    std::fprintf(stderr, "FAIL: shrunk repro too large (%zu actions)\n", planted_shrunk);
    return 1;
  }
  return 0;
}
