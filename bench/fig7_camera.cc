// Reproduces paper Figure 7: image capturing latency for the camera benchmarks
// — per-frame latency of the driverlet vs the native (pipelined, IRQ-coalescing)
// driver for bursts of 1/10/100 frames at 720p/1080p/1440p.
#include <cstdio>

#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

struct Point {
  double per_frame_s = 0;
  bool ok = false;
};

Point RunDriverlet(const std::vector<uint8_t>& pkg, uint64_t frames, uint64_t res) {
  Deployment d = MakeDeployment(pkg);
  std::vector<uint8_t> buf(Vc4Firmware::FrameBytes(1440) + 4096);
  std::vector<uint8_t> img_size(4);
  ReplayArgs args;
  args.scalars = {{"frame", frames}, {"resolution", res}, {"buf_size", buf.size()}};
  args.buffers["buf"] = BufferView{buf.data(), buf.size()};
  args.buffers["img_size"] = BufferView{img_size.data(), img_size.size()};
  uint64_t t0 = d.tb->clock().now_us();
  Result<ReplayStats> r = d.replayer->Invoke(kCameraEntry, args);
  Point p;
  p.ok = r.ok();
  p.per_frame_s = static_cast<double>(d.tb->clock().now_us() - t0) / 1e6 /
                  static_cast<double>(frames);
  return p;
}

Point RunNative(uint64_t frames, uint64_t res) {
  TestbedOptions opts;
  opts.pipelined_camera = true;
  Rpi3Testbed tb{opts};
  std::vector<uint8_t> buf(Vc4Firmware::FrameBytes(1440) + 4096);
  std::vector<uint8_t> img_size(4);
  uint64_t t0 = tb.clock().now_us();
  Status s = tb.cam_driver().Capture(TValue(frames), TValue(res), buf.data(), buf.size(),
                                     TValue(buf.size()), img_size.data());
  Point p;
  p.ok = Ok(s);
  p.per_frame_s =
      static_cast<double>(tb.clock().now_us() - t0) / 1e6 / static_cast<double>(frames);
  return p;
}

}  // namespace
}  // namespace dlt

int main() {
  using namespace dlt;
  std::printf("Figure 7: image capturing latency (seconds per frame)\n\n");
  std::vector<uint8_t> pkg = BuildCameraPackage();
  if (pkg.empty()) {
    return 1;
  }
  std::printf("%-6s %-8s  %12s %12s %10s\n", "burst", "res", "driverlet", "native",
              "dlt/native");
  PrintRule(56);
  for (uint64_t frames : {1ull, 10ull, 100ull}) {
    for (uint64_t res : {720ull, 1080ull, 1440ull}) {
      Point dlt = RunDriverlet(pkg, frames, res);
      Point nat = RunNative(frames, res);
      if (!dlt.ok || !nat.ok) {
        std::printf("%-6llu %-8llu  (failed)\n", static_cast<unsigned long long>(frames),
                    static_cast<unsigned long long>(res));
        continue;
      }
      std::printf("%-6llu %4llup     %10.2fs %10.2fs %9.2fx\n",
                  static_cast<unsigned long long>(frames),
                  static_cast<unsigned long long>(res), dlt.per_frame_s, nat.per_frame_s,
                  dlt.per_frame_s / nat.per_frame_s);
    }
    PrintRule(56);
  }
  std::printf(
      "\nPaper reference: driverlet per-frame latency 2.1s (720p) to 3.6s (1440p) for\n"
      "one-frame bursts, decreasing with burst length (fixed init cost amortizes);\n"
      "native only 11%% faster for a 1-frame burst but 2.7x faster for 100 frames\n"
      "(coalesced IRQs + pipelined capture vs per-event IRQ waits).\n");
  return 0;
}
