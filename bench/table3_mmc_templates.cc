// Reproduces paper Table 3: breakdown of the 10 MMC interaction templates
// produced by the record campaign (RD/WR x {1,8,32,128,256} blocks), with the
// input/output/meta event counts per template, plus the campaign's cumulative
// input-space coverage report (§4 "How to use").
#include <cstdio>

#include "src/workload/deploy_util.h"

int main() {
  using namespace dlt;
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> campaign = RecordMmcCampaign(&dev);
  if (!campaign.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", StatusName(campaign.status()));
    return 1;
  }

  std::printf("Table 3: breakdown of %zu interaction templates of MMC\n",
              campaign->templates().size());
  std::printf("replay entry: replay_mmc(rw, blkcnt, blkid, flag, buf)\n");
  PrintRule();
  std::printf("%-8s", "Events");
  const uint64_t kCounts[] = {1, 8, 32, 128, 256};
  for (uint64_t c : kCounts) {
    std::printf("  RW_%-7llu", static_cast<unsigned long long>(c));
  }
  std::printf("\n");
  PrintRule();

  auto find = [&](const std::string& name) -> const InteractionTemplate* {
    for (const auto& t : campaign->templates()) {
      if (t.name == name) {
        return &t;
      }
    }
    return nullptr;
  };
  const char* kRows[] = {"Input", "Output", "Meta"};
  for (int row = 0; row < 3; ++row) {
    std::printf("%-8s", kRows[row]);
    for (uint64_t c : kCounts) {
      const InteractionTemplate* rd = find("RD_" + std::to_string(c));
      const InteractionTemplate* wr = find("WR_" + std::to_string(c));
      int rv = 0;
      int wv = 0;
      if (rd != nullptr && wr != nullptr) {
        EventBreakdown rb = rd->CountEvents();
        EventBreakdown wb = wr->CountEvents();
        rv = row == 0 ? rb.input : row == 1 ? rb.output : rb.meta;
        wv = row == 0 ? wb.input : row == 1 ? wb.output : wb.meta;
      }
      std::printf("  %3d/%-6d", rv, wv);
    }
    std::printf("\n");
  }
  PrintRule();
  std::printf("(RD/WR templates of the same blkcnt shown in one column, separated by '/')\n\n");

  std::printf("Cumulative input-space coverage:\n  %s\n", campaign->CoverageReport().c_str());
  std::printf("\nPer-template selection constraints:\n");
  for (const auto& t : campaign->templates()) {
    std::printf("  %-8s require %s\n", t.name.c_str(), t.initial.ToString().c_str());
  }
  return 0;
}
