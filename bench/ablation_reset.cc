// Ablation: the cost and the necessity of soft-resetting the device between
// interaction templates (DESIGN.md ablation list; paper §5 "resetting device
// states"). Measures per-operation latency with and without the pre-execution
// reset, and shows that skipping it makes back-to-back replays diverge on
// residue state for some request mixes.
#include <cstdio>

#include "src/workload/deploy_util.h"

namespace {

// Runs |ops| alternating read/write replays; returns {ok_count, us_per_op}.
std::pair<int, double> RunMix(dlt::Deployment* d, bool reset_between, int ops) {
  using namespace dlt;
  d->replayer->set_reset_between_templates(reset_between);
  d->replayer->set_max_attempts(1);  // expose first-execution divergences
  std::vector<uint8_t> buf(32 * 512, 0xee);
  uint64_t t0 = d->tb->clock().now_us();
  int ok = 0;
  for (int i = 0; i < ops; ++i) {
    ReplayArgs args;
    args.scalars = {{"rw", (i % 2) ? kMmcRwWrite : kMmcRwRead},
                    {"blkcnt", 32},
                    {"blkid", static_cast<uint64_t>(i % 64) * 32},
                    {"flag", 0}};
    args.buffers["buf"] = BufferView{buf.data(), buf.size()};
    if (d->replayer->Invoke(kMmcEntry, args).ok()) {
      ++ok;
    }
  }
  double us = static_cast<double>(d->tb->clock().now_us() - t0) / ops;
  return {ok, us};
}

}  // namespace

int main() {
  using namespace dlt;
  std::printf("Ablation: soft reset between interaction templates\n\n");
  std::vector<uint8_t> pkg = BuildMmcPackage();
  if (pkg.empty()) {
    return 1;
  }
  constexpr int kOps = 100;

  Deployment with_reset = MakeDeployment(pkg);
  auto [ok_with, us_with] = RunMix(&with_reset, /*reset_between=*/true, kOps);
  Deployment without_reset = MakeDeployment(pkg);
  auto [ok_without, us_without] = RunMix(&without_reset, /*reset_between=*/false, kOps);

  std::printf("%-28s %10s %14s\n", "policy", "success", "us/op");
  PrintRule(56);
  std::printf("%-28s %7d/%d %14.0f\n", "reset between templates", ok_with, kOps, us_with);
  std::printf("%-28s %7d/%d %14.0f\n", "no reset (ablated)", ok_without, kOps, us_without);
  PrintRule(56);
  std::printf("\nreset cost per op: %.0f us (%.1f%% of operation latency)\n",
              us_with - us_without * (ok_without == kOps ? 1.0 : 0.0),
              (us_with - us_without) * 100.0 / us_with);
  std::printf(
      "The reset prevents divergences from residue device state (paper §3.3 cause 1)\n"
      "at a bounded, constant cost per template execution.\n");

  // Retry-budget sweep: how many attempts a persistent fault consumes.
  std::printf("\nRetry-budget sweep under a persistent fault:\n");
  for (int attempts : {1, 2, 3, 5}) {
    Deployment d = MakeDeployment(pkg);
    d.tb->sd_medium().set_present(false);
    d.replayer->set_max_attempts(attempts);
    std::vector<uint8_t> buf(512, 0);
    ReplayArgs args;
    args.scalars = {{"rw", kMmcRwRead}, {"blkcnt", 1}, {"blkid", 0}, {"flag", 0}};
    args.buffers["buf"] = BufferView{buf.data(), buf.size()};
    uint64_t t0 = d.tb->clock().now_us();
    Result<ReplayStats> r = d.replayer->Invoke(kMmcEntry, args);
    double ms = static_cast<double>(d.tb->clock().now_us() - t0) / 1000.0;
    std::printf("  max_attempts=%d: %-8s resets=%llu give-up latency=%.1f ms\n", attempts,
                StatusName(r.status()), static_cast<unsigned long long>(d.replayer->total_resets()),
                ms);
  }
  return 0;
}
