// Conformance sweep: runs N generated seeds through every conformance
// invariant (engine parity, determinism, serializer round-trip, store
// coherence, baseline, the three fault planes) and emits per-seed accounting
// plus a shrink demonstration against the planted operand-folding miscompile.
// Emits BENCH_conformance.json. Deterministic: two runs with the same flags
// produce byte-identical output (wall-clock goes to stdout only).
//
//   conformance_sweep [--seeds N] [--base-seed S] [--out PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "src/workload/deploy_util.h"
#include "src/check/conformance.h"
#include "src/core/compiled_program.h"

int main(int argc, char** argv) {
  using namespace dlt;

  SeedRange seed_range;
  seed_range.count = 30;
  std::string out_path = "BENCH_conformance.json";
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (IsSeedRangeFlag(argv[i])) {
      const char* flag = argv[i];
      ApplySeedRangeFlag(&seed_range, flag, next(flag));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next("--out");
    } else {
      std::fprintf(stderr, "usage: conformance_sweep [--seeds N] [--base-seed S] [--out PATH]\n");
      return 2;
    }
  }
  if (!seed_range.valid()) {
    std::fprintf(stderr, "--seeds must be >= 1\n");
    return 2;
  }
  const int num_seeds = seed_range.count;
  const uint64_t base_seed = seed_range.base;

  const size_t invariants = AllInvariants().size();
  std::printf("conformance sweep: %d seeds x %zu invariants\n", num_seeds, invariants);
  PrintRule();

  int failures = 0;
  uint64_t events_total = 0;
  uint64_t sim_us_total = 0;
  std::ostringstream cases;
  for (int i = 0; i < num_seeds; ++i) {
    uint64_t seed = base_seed + static_cast<uint64_t>(i);
    GeneratedCase g = GenerateCase(seed);
    ConformanceOutcome out = RunConformance(g);
    events_total += out.events_executed;
    sim_us_total += out.end_us;
    if (!out.ok()) {
      ++failures;
      for (const ConformanceFailure& f : out.failures) {
        std::printf("seed %llu FAIL %s: %s\n", static_cast<unsigned long long>(seed),
                    f.invariant.c_str(), f.detail.c_str());
      }
    }
    if (i > 0) cases << ",";
    cases << "\n    {\"seed\": " << seed << ", \"events\": " << g.tpl.events.size()
          << ", \"executed\": " << out.events_executed << ", \"sim_us\": " << out.end_us
          << ", \"failures\": " << out.failures.size() << "}";
  }
  std::printf("%d/%d seeds conform, %llu events executed\n", num_seeds - failures, num_seeds,
              static_cast<unsigned long long>(events_total));

  // Shrink demonstration: arm the planted constant-folding miscompile, catch
  // it with the cross-engine oracle, and report how small the shrinker gets.
  // This keeps the harness's failure path measured, not just its happy path.
  SetCompiledFoldQuirkForTest(true);
  size_t shrunk_events = 0, original_events = 0;
  int shrink_steps = 0;
  uint64_t caught_seed = 0;
  for (uint64_t seed = base_seed; seed < base_seed + 30; ++seed) {
    GeneratedCase g = GenerateCase(seed);
    if (RunConformance(g, {"engine-parity"}).ok()) continue;
    auto s = Shrink(g, {"engine-parity"});
    if (s.ok()) {
      caught_seed = seed;
      original_events = s->original_events;
      shrunk_events = s->reduced.tpl.events.size();
      shrink_steps = s->steps;
    }
    break;
  }
  SetCompiledFoldQuirkForTest(false);
  std::printf("planted miscompile: seed %llu shrunk %zu -> %zu events (%d steps)\n",
              static_cast<unsigned long long>(caught_seed), original_events, shrunk_events,
              shrink_steps);
  PrintRule();

  std::ostringstream json;
  json << "{\n  \"cases\": " << num_seeds << ",\n  \"failures\": " << failures
       << ",\n  \"invariants_checked\": " << invariants
       << ",\n  \"events_total\": " << events_total << ",\n  \"sim_us_total\": " << sim_us_total
       << ",\n  \"shrink_demo\": {\"seed\": " << caught_seed
       << ", \"original_events\": " << original_events << ", \"shrunk_events\": " << shrunk_events
       << ", \"steps\": " << shrink_steps << "},\n  \"per_seed\": [" << cases.str()
       << "\n  ]\n}\n";
  std::string out_json = json.str();
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(out_json.data(), 1, out_json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // Regression guards: the sweep must conform, the shrinker must have caught
  // the planted miscompile, and the shrunk repro must be genuinely small.
  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d seeds did not conform\n", failures);
    return 1;
  }
  if (caught_seed == 0 || shrunk_events == 0) {
    std::fprintf(stderr, "FAIL: planted miscompile not caught\n");
    return 1;
  }
  if (shrunk_events > 5) {
    std::fprintf(stderr, "FAIL: shrunk repro too large (%zu events)\n", shrunk_events);
    return 1;
  }
  return 0;
}
