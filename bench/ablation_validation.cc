// Ablation/validation: differential region validation of the MMC templates —
// the experimental check that the recorder's constraint classification is
// sound (the role concolic forking plays in the paper §4.2; validated as in
// §7.2). Probes inside a template's constraint region must reproduce the
// recorded transition path; probes outside must not.
#include <cstdio>

#include "src/workload/deploy_util.h"
#include "src/core/differ.h"
#include "src/core/record_session.h"

namespace dlt {
namespace {

// Re-runs the gold MMC driver with the given scalar inputs and returns the
// externalized transition signature.
Result<std::string> ProbeMmc(Rpi3Testbed* tb, const Bindings& inputs) {
  tb->ResetDevices();
  tb->kern_io().ReleaseDma();
  RecordSession sess(&tb->kern_io(), kMmcEntry, "probe", tb->mmc_id());
  TValue rw = sess.ScalarParam("rw", inputs.at("rw"));
  TValue cnt = sess.ScalarParam("blkcnt", inputs.at("blkcnt"));
  TValue id = sess.ScalarParam("blkid", inputs.at("blkid"));
  TValue fl = sess.ScalarParam("flag", 0);
  std::vector<uint8_t> buf(inputs.at("blkcnt") * 512, 0x5c);
  sess.BufferParam("buf", buf.data(), buf.size());
  BcmSdhostDriver driver(&sess, tb->mmc_config());
  Status s = driver.Transfer(rw, cnt, id, fl, buf.data(), buf.size());
  if (!Ok(s)) {
    return s;
  }
  return TransitionSignature(sess.raw());
}

Bindings In(uint64_t rw, uint64_t blkcnt, uint64_t blkid) {
  return Bindings{{"rw", rw}, {"blkcnt", blkcnt}, {"blkid", blkid}};
}

}  // namespace
}  // namespace dlt

int main() {
  using namespace dlt;
  std::printf("Region validation: differential re-execution of the gold MMC driver\n");
  std::printf("around each template's constraint boundaries\n\n");
  Rpi3Testbed tb{TestbedOptions{}};
  TransitionProbe probe = [&tb](const Bindings& b) { return ProbeMmc(&tb, b); };

  struct Case {
    const char* name;
    Bindings recorded;
    std::vector<Bindings> in_probes;
    std::vector<Bindings> out_probes;
  };
  const uint64_t kRd = kMmcRwRead;
  const uint64_t kWr = kMmcRwWrite;
  std::vector<Case> cases = {
      {"RD_8 (blkcnt in (1,8], any aligned blkid)",
       In(kRd, 8, 2048),
       {In(kRd, 2, 2048), In(kRd, 5, 65536), In(kRd, 8, 8), In(kRd, 7, 1'000'000)},
       {In(kRd, 1, 2048), In(kRd, 9, 2048), In(kRd, 32, 2048), In(kWr, 8, 2048),
        In(kRd, 8, 2049)}},
      {"WR_32 (blkcnt in (24,32])",
       In(kWr, 32, 2048),
       {In(kWr, 25, 2048), In(kWr, 30, 512), In(kWr, 32, 4096)},
       {In(kWr, 24, 2048), In(kWr, 33, 2048), In(kRd, 32, 2048)}},
      {"RD_1 (exactly one block)",
       In(kRd, 1, 2048),
       {In(kRd, 1, 0), In(kRd, 1, 80'000)},
       {In(kRd, 2, 2048), In(kWr, 1, 2048)}},
  };

  bool all_ok = true;
  for (const Case& c : cases) {
    RegionValidation v = ValidateTransitionRegion(probe, c.recorded, c.in_probes, c.out_probes);
    std::printf("%-44s in-region %d/%d  out-region %d/%d  %s\n", c.name, v.in_region_same,
                v.in_region_total, v.out_region_diverged, v.out_region_total,
                v.ok() ? "OK" : "VIOLATION");
    for (const auto& msg : v.violations) {
      std::printf("    !! %s\n", msg.c_str());
    }
    all_ok = all_ok && v.ok();
  }
  std::printf(
      "\nEvery in-region probe rode the recorded state-transition path and every\n"
      "out-region probe left it: the constraints the recorder attached are exactly\n"
      "the boundaries of the externalized paths.\n");
  return all_ok ? 0 : 1;
}
