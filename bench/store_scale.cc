// Template-store scale benchmark (ISSUE 9, tentpole part d): does selection
// stay flat as the population grows from 1k to 100k templates?
//
// Method (docs/template_store.md, docs/benchmarks.md):
//  - per size: build the deterministic scale corpus (src/check/scale_corpus.h),
//    register it twice — eagerly (AddPackage deep copy) and zero-copy
//    (SealPackageV2 to a temp file, AddPackageFile mmap) — and verify the lazy
//    store hydrated nothing at registration time;
//  - sample up to 1500 targets and drive three selection paths per target:
//    indexed Select on the lazy store, SelectLinear (the differential oracle)
//    on the same store, and Select on the eager store. All three must agree on
//    the selected template per target — FNV digest parity, nonzero exit on
//    mismatch;
//  - candidates-scanned deltas around each loop give scans/invoke for the
//    indexed vs linear path; hydration counters bound lazy work to the touched
//    winners; SelectCompiled runs cold then warm for compile-cache behavior,
//    then again against a fresh store sharing an on-disk program cache
//    directory (disk hits on store B must equal disk stores from store A);
//  - self-guards: indexed scans/invoke <= 8 whenever every slot indexed,
//    linear scans grow with the corpus while indexed scans do not, lazy
//    hydration stays bounded by sampled targets, disk-cache parity.
//
// Emits BENCH_store_scale.json (byte-stable by default; --timing adds a
// wall-clock section for human runs, p50/p99 prints to stdout regardless).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/check/scale_corpus.h"
#include "src/core/template_store.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

uint64_t Fnv1a(uint64_t h, const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ p[i]) * 0x100000001b3ull;
  }
  return h;
}

uint64_t FoldSelection(uint64_t h, size_t target, Status st, const InteractionTemplate* tpl) {
  uint64_t t = target;
  h = Fnv1a(h, reinterpret_cast<const uint8_t*>(&t), sizeof(t));
  uint8_t s = static_cast<uint8_t>(st);
  h = Fnv1a(h, &s, 1);
  if (tpl != nullptr) {
    h = Fnv1a(h, reinterpret_cast<const uint8_t*>(tpl->name.data()), tpl->name.size());
  }
  return h;
}

struct SizeResult {
  size_t templates = 0;
  size_t entries = 0;
  size_t indexed_slots = 0;
  size_t sampled = 0;
  size_t package_bytes = 0;    // sealed v2 file
  size_t directory_bytes = 0;  // parsed at registration (vs hydrated on demand)
  double scans_indexed = 0;    // per invoke
  double scans_linear = 0;
  uint64_t index_probes = 0;
  uint64_t hydrated_after_reg = 0;
  uint64_t hydrated_after_sel = 0;
  size_t lazy_after_reg = 0;
  bool parity = false;
  uint64_t compile_cold_misses = 0;
  uint64_t compile_warm_hits = 0;
  uint64_t disk_stores = 0;
  uint64_t disk_hits = 0;
  bool disk_parity = false;
  double eager_register_ms = 0;
  double lazy_register_ms = 0;
  uint64_t select_p50_ns = 0;
  uint64_t select_p99_ns = 0;
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  bool ok = bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

constexpr size_t kMaxSamples = 1500;

bool RunSize(size_t n, const std::string& tmpdir, SizeResult* out) {
  ScaleCorpusConfig cfg;
  cfg.templates = n;
  ScaleCorpus corpus = BuildScaleCorpus(cfg);
  out->templates = n;
  out->entries = cfg.entries;

  // Eager baseline store: deep-copied templates, linear oracle lives here too.
  TemplateStore eager;
  auto t0 = std::chrono::steady_clock::now();
  if (!Ok(eager.AddPackage(corpus.pkg))) {
    std::fprintf(stderr, "eager registration failed at %zu\n", n);
    return false;
  }
  out->eager_register_ms = MsSince(t0);

  // Zero-copy store: seal v2, mmap, register the directory only.
  std::string pkg_path = tmpdir + "/scale_" + std::to_string(n) + ".dltpkg";
  PackageSizes sizes;
  std::vector<uint8_t> sealed = SealPackageV2(corpus.pkg, kDeveloperKey, &sizes);
  if (!WriteFile(pkg_path, sealed)) {
    std::fprintf(stderr, "cannot write %s\n", pkg_path.c_str());
    return false;
  }
  out->package_bytes = sealed.size();
  TemplateStore lazy;
  t0 = std::chrono::steady_clock::now();
  if (!Ok(lazy.AddPackageFile(pkg_path, kDeveloperKey))) {
    std::fprintf(stderr, "lazy registration failed at %zu\n", n);
    return false;
  }
  out->lazy_register_ms = MsSince(t0);
  out->hydrated_after_reg = lazy.hydrated_templates();
  out->lazy_after_reg = lazy.lazy_template_count();
  out->indexed_slots = lazy.indexed_slot_count();
  {
    Result<SealedView> sv = OpenPackageView(sealed.data(), sealed.size(), kDeveloperKey);
    if (sv.ok()) {
      out->directory_bytes = sv->view.directory_bytes();
    }
  }

  out->sampled = std::min(n, kMaxSamples);
  size_t stride = n / out->sampled;
  std::vector<size_t> targets;
  targets.reserve(out->sampled);
  for (size_t i = 0; i < out->sampled; ++i) {
    targets.push_back(i * stride);
  }

  // Indexed path on the lazy store, with per-invoke latency.
  uint64_t digest_indexed = 0xcbf29ce484222325ull;
  std::vector<uint64_t> lat_ns;
  lat_ns.reserve(targets.size());
  uint64_t scanned0 = lazy.candidates_scanned();
  uint64_t probes0 = lazy.index_probes();
  for (size_t k : targets) {
    Bindings scalars = ScaleInvokeScalars(corpus, k);
    std::string entry = ScaleEntry(cfg, k);
    auto s0 = std::chrono::steady_clock::now();
    Result<const InteractionTemplate*> r = lazy.Select(kScaleDriverlet, entry, scalars);
    lat_ns.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             s0)
            .count()));
    digest_indexed = FoldSelection(digest_indexed, k, r.status(), r.ok() ? *r : nullptr);
    if (!r.ok() || (*r)->name != "scale_" + std::to_string(k)) {
      std::fprintf(stderr, "indexed select missed target %zu at size %zu\n", k, n);
      return false;
    }
    if ((*r)->events.empty()) {
      std::fprintf(stderr, "selected template %zu not hydrated at size %zu\n", k, n);
      return false;
    }
  }
  out->scans_indexed =
      static_cast<double>(lazy.candidates_scanned() - scanned0) / targets.size();
  out->index_probes = lazy.index_probes() - probes0;
  out->hydrated_after_sel = lazy.hydrated_templates();
  std::sort(lat_ns.begin(), lat_ns.end());
  out->select_p50_ns = lat_ns[lat_ns.size() / 2];
  out->select_p99_ns = lat_ns[lat_ns.size() * 99 / 100];

  // Linear oracle on the same store (header constraints, no hydration needed)
  // and the eager store: all three digests must agree.
  uint64_t digest_linear = 0xcbf29ce484222325ull;
  scanned0 = lazy.candidates_scanned();
  for (size_t k : targets) {
    Bindings scalars = ScaleInvokeScalars(corpus, k);
    Result<const InteractionTemplate*> r =
        lazy.SelectLinear(kScaleDriverlet, ScaleEntry(cfg, k), scalars);
    digest_linear = FoldSelection(digest_linear, k, r.status(), r.ok() ? *r : nullptr);
  }
  out->scans_linear =
      static_cast<double>(lazy.candidates_scanned() - scanned0) / targets.size();
  uint64_t digest_eager = 0xcbf29ce484222325ull;
  for (size_t k : targets) {
    Bindings scalars = ScaleInvokeScalars(corpus, k);
    Result<const InteractionTemplate*> r =
        eager.Select(kScaleDriverlet, ScaleEntry(cfg, k), scalars);
    digest_eager = FoldSelection(digest_eager, k, r.status(), r.ok() ? *r : nullptr);
  }
  out->parity = digest_indexed == digest_linear && digest_indexed == digest_eager;

  // Compiled path: cold (compiles the winners) then warm (memoized).
  uint64_t miss0 = lazy.compile_cache_misses();
  for (size_t k : targets) {
    Bindings scalars = ScaleInvokeScalars(corpus, k);
    if (!lazy.SelectCompiled(kScaleDriverlet, ScaleEntry(cfg, k), scalars).ok()) {
      std::fprintf(stderr, "SelectCompiled failed for %zu at size %zu\n", k, n);
      return false;
    }
  }
  out->compile_cold_misses = lazy.compile_cache_misses() - miss0;
  uint64_t hit0 = lazy.compile_cache_hits();
  for (size_t k : targets) {
    Bindings scalars = ScaleInvokeScalars(corpus, k);
    if (!lazy.SelectCompiled(kScaleDriverlet, ScaleEntry(cfg, k), scalars).ok()) {
      return false;
    }
  }
  out->compile_warm_hits = lazy.compile_cache_hits() - hit0;

  // Disk cache: store A compiles + persists, a fresh store B restarts against
  // the same directory and must serve every compile from disk.
  std::string cache_dir = tmpdir + "/pcache_" + std::to_string(n);
  (void)std::system(("mkdir -p '" + cache_dir + "'").c_str());
  TemplateStore disk_a;
  if (!Ok(disk_a.AddPackageFile(pkg_path, kDeveloperKey))) {
    return false;
  }
  disk_a.set_compile_cache_dir(cache_dir);
  for (size_t k : targets) {
    Bindings scalars = ScaleInvokeScalars(corpus, k);
    if (!disk_a.SelectCompiled(kScaleDriverlet, ScaleEntry(cfg, k), scalars).ok()) {
      return false;
    }
  }
  out->disk_stores = disk_a.disk_compile_stores();
  TemplateStore disk_b;
  if (!Ok(disk_b.AddPackageFile(pkg_path, kDeveloperKey))) {
    return false;
  }
  disk_b.set_compile_cache_dir(cache_dir);
  for (size_t k : targets) {
    Bindings scalars = ScaleInvokeScalars(corpus, k);
    if (!disk_b.SelectCompiled(kScaleDriverlet, ScaleEntry(cfg, k), scalars).ok()) {
      return false;
    }
  }
  out->disk_hits = disk_b.disk_compile_hits();
  out->disk_parity = out->disk_stores > 0 && out->disk_hits == out->disk_stores;
  return true;
}

}  // namespace
}  // namespace dlt

int main(int argc, char** argv) {
  using namespace dlt;
  std::vector<size_t> sizes = {1000, 10000, 100000};
  const char* out_path = "BENCH_store_scale.json";
  bool timing = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sizes=", 8) == 0) {
      sizes.clear();
      for (const char* p = argv[i] + 8; *p != '\0';) {
        sizes.push_back(static_cast<size_t>(std::strtoull(p, nullptr, 10)));
        p = std::strchr(p, ',');
        if (p == nullptr) {
          break;
        }
        ++p;
      }
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--timing") == 0) {
      timing = true;
    } else {
      std::fprintf(stderr, "usage: %s [--sizes=1000,10000,100000] [--out=FILE] [--timing]\n",
                   argv[0]);
      return 2;
    }
  }
  if (sizes.empty()) {
    std::fprintf(stderr, "bad arguments\n");
    return 2;
  }

  char tmpl[] = "/tmp/store_scale_XXXXXX";
  const char* tmpdir = mkdtemp(tmpl);
  if (tmpdir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  std::printf("Template store at scale: constraint-indexed selection + zero-copy packages\n\n");
  std::vector<SizeResult> results;
  for (size_t n : sizes) {
    SizeResult r;
    if (!RunSize(n, tmpdir, &r)) {
      return 1;
    }
    std::printf(
        "  %7zu templates: scans/invoke indexed %6.2f vs linear %8.2f, "
        "select p50/p99 %llu/%llu ns\n"
        "           register eager %8.2f ms vs mmap %6.2f ms; package %zu bytes "
        "(directory %zu); hydrated %llu/%zu after %zu selects\n"
        "           compile cold/warm %llu/%llu, disk store/hit %llu/%llu, parity %s\n",
        r.templates, r.scans_indexed, r.scans_linear,
        static_cast<unsigned long long>(r.select_p50_ns),
        static_cast<unsigned long long>(r.select_p99_ns), r.eager_register_ms,
        r.lazy_register_ms, r.package_bytes, r.directory_bytes,
        static_cast<unsigned long long>(r.hydrated_after_sel), r.lazy_after_reg, r.sampled,
        static_cast<unsigned long long>(r.compile_cold_misses),
        static_cast<unsigned long long>(r.compile_warm_hits),
        static_cast<unsigned long long>(r.disk_stores),
        static_cast<unsigned long long>(r.disk_hits), r.parity ? "ok" : "MISMATCH");
    results.push_back(r);
  }

  // Self-guards.
  bool ok = true;
  const SizeResult& largest = results.back();
  for (const SizeResult& r : results) {
    if (!r.parity) {
      std::fprintf(stderr, "FAIL: selection digest mismatch (indexed vs linear vs eager) at %zu\n",
                   r.templates);
      ok = false;
    }
    if (r.hydrated_after_reg != 0) {
      std::fprintf(stderr, "FAIL: %llu templates hydrated at registration (%zu)\n",
                   static_cast<unsigned long long>(r.hydrated_after_reg), r.templates);
      ok = false;
    }
    if (r.lazy_after_reg != r.templates) {
      std::fprintf(stderr, "FAIL: expected %zu lazy templates after registration, got %zu\n",
                   r.templates, r.lazy_after_reg);
      ok = false;
    }
    if (r.hydrated_after_sel > r.sampled) {
      std::fprintf(stderr, "FAIL: hydration (%llu) exceeded sampled targets (%zu) at %zu\n",
                   static_cast<unsigned long long>(r.hydrated_after_sel), r.sampled,
                   r.templates);
      ok = false;
    }
    if (r.indexed_slots == r.entries && r.scans_indexed > 8.0) {
      std::fprintf(stderr, "FAIL: indexed scans/invoke %.2f > 8 at %zu templates\n",
                   r.scans_indexed, r.templates);
      ok = false;
    }
    if (!r.disk_parity) {
      std::fprintf(stderr, "FAIL: disk cache stores %llu vs restart hits %llu at %zu\n",
                   static_cast<unsigned long long>(r.disk_stores),
                   static_cast<unsigned long long>(r.disk_hits), r.templates);
      ok = false;
    }
  }
  if (results.size() > 1) {
    const SizeResult& smallest = results.front();
    if (largest.scans_linear <= smallest.scans_linear) {
      std::fprintf(stderr, "FAIL: linear scans/invoke did not grow with the corpus "
                   "(%.2f at %zu vs %.2f at %zu)\n",
                   smallest.scans_linear, smallest.templates, largest.scans_linear,
                   largest.templates);
      ok = false;
    }
    if (largest.templates >= 1000 && largest.scans_linear < 10.0 * largest.scans_indexed) {
      std::fprintf(stderr, "FAIL: indexed path only %.1fx better than linear at %zu\n",
                   largest.scans_linear / largest.scans_indexed, largest.templates);
      ok = false;
    }
  }

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"sizes\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    std::fprintf(f,
                 "    {\"templates\": %zu, \"entries\": %zu, \"indexed_slots\": %zu, "
                 "\"sampled_invokes\": %zu,\n"
                 "     \"package_bytes\": %zu, \"directory_bytes\": %zu,\n"
                 "     \"scans_per_invoke\": {\"indexed\": %.3f, \"linear\": %.3f}, "
                 "\"index_probes\": %llu,\n"
                 "     \"hydrated\": {\"after_registration\": %llu, \"after_selects\": %llu, "
                 "\"lazy_total\": %zu},\n"
                 "     \"compile\": {\"cold_misses\": %llu, \"warm_hits\": %llu},\n"
                 "     \"disk_cache\": {\"stores\": %llu, \"hits\": %llu, \"parity\": %s},\n"
                 "     \"selection_parity\": %s}%s\n",
                 r.templates, r.entries, r.indexed_slots, r.sampled, r.package_bytes,
                 r.directory_bytes, r.scans_indexed, r.scans_linear,
                 static_cast<unsigned long long>(r.index_probes),
                 static_cast<unsigned long long>(r.hydrated_after_reg),
                 static_cast<unsigned long long>(r.hydrated_after_sel), r.lazy_after_reg,
                 static_cast<unsigned long long>(r.compile_cold_misses),
                 static_cast<unsigned long long>(r.compile_warm_hits),
                 static_cast<unsigned long long>(r.disk_stores),
                 static_cast<unsigned long long>(r.disk_hits),
                 r.disk_parity ? "true" : "false", r.parity ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (timing) {
    // Wall-clock section is opt-in so the default artifact stays byte-stable
    // for the CI determinism check (run twice, cmp).
    std::fprintf(f, "  \"timing\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const SizeResult& r = results[i];
      std::fprintf(f,
                   "    {\"templates\": %zu, \"eager_register_ms\": %.2f, "
                   "\"mmap_register_ms\": %.2f, \"select_p50_ns\": %llu, "
                   "\"select_p99_ns\": %llu}%s\n",
                   r.templates, r.eager_register_ms, r.lazy_register_ms,
                   static_cast<unsigned long long>(r.select_p50_ns),
                   static_cast<unsigned long long>(r.select_p99_ns),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
  }
  std::fprintf(f, "  \"guards_passed\": %s\n}\n", ok ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);
  (void)std::system(("rm -rf '" + std::string(tmpdir) + "'").c_str());
  return ok ? 0 : 1;
}
