// Reproduces paper Figure 6 (SQLite benchmarks for MMC and USB driverlets:
// IOPS of driverlet vs native vs native-sync across 6 scripts) and Table 9
// (per-script interaction-template invocation breakdown and read:write mix).
#include <cstdio>

#include "src/workload/deploy_util.h"
#include "src/workload/minidb.h"
#include "src/workload/replay_block_device.h"
#include "src/workload/sqlite_scripts.h"

namespace dlt {
namespace {

constexpr size_t kRows = 600;
constexpr size_t kQueries = 40;

struct ConfigResult {
  ScriptResult script;
  std::map<std::string, uint64_t> invocations;  // driverlet only
};

enum class Path { kDriverlet, kNative, kNativeSync };

Result<ConfigResult> RunOne(Path path, bool usb, const std::vector<uint8_t>& pkg,
                            const std::string& script) {
  ConfigResult out;
  if (path == Path::kDriverlet) {
    Deployment d = MakeDeployment(pkg);
    ReplayBlockDevice rdev(d.service.get(), d.session, usb ? kUsbEntry : kMmcEntry);
    CountingBlockDevice counter(&rdev);
    MiniDb db(&counter);
    DLT_RETURN_IF_ERROR(db.Open());
    DLT_RETURN_IF_ERROR(PopulateDb(&db, kRows, 11));
    DLT_ASSIGN_OR_RETURN(out.script, RunSqliteScript(script, &db, &counter, &d.tb->clock(),
                                                     kQueries, 99));
    out.invocations = rdev.invocations();
    return out;
  }
  TestbedOptions opts;
  auto tb = std::make_unique<Rpi3Testbed>(opts);
  RawBlockDriver* driver =
      usb ? static_cast<RawBlockDriver*>(&tb->usb_driver()) : &tb->mmc_driver();
  // A deliberately small kernel page cache: the paper's storage working sets
  // dwarf the RPi3's spare RAM, so native reads mostly reach the device.
  PageCacheBlockDevice cache(driver, &tb->machine(),
                             path == Path::kNative ? PageCacheBlockDevice::SyncMode::kWriteback
                                                   : PageCacheBlockDevice::SyncMode::kSync,
                             /*capacity_extents=*/10);
  CountingBlockDevice counter(&cache);
  MiniDb db(&counter);
  DLT_RETURN_IF_ERROR(db.Open());
  DLT_RETURN_IF_ERROR(PopulateDb(&db, kRows, 11));
  DLT_RETURN_IF_ERROR(cache.Flush());  // population writeback outside the window
  DLT_ASSIGN_OR_RETURN(out.script,
                       RunSqliteScript(script, &db, &counter, &tb->clock(), kQueries, 99));
  return out;
}

void RunDevice(bool usb, const std::vector<uint8_t>& pkg) {
  std::printf("\n===== SQLite-%s (Figure 6%s) =====\n", usb ? "USB" : "MMC", usb ? "b" : "a");
  std::printf("%-10s  %12s %12s %12s   %9s %13s\n", "script", "driverlet", "native",
              "native-sync", "nat/dlt", "dlt/nat-sync");
  std::printf("%-10s  %12s %12s %12s\n", "", "(IOPS)", "(IOPS)", "(IOPS)");
  PrintRule(84);
  double sum_dlt = 0;
  double sum_nat = 0;
  double sum_sync = 0;
  double sum_qps = 0;
  std::vector<ConfigResult> dlt_results;
  for (const std::string& script : SqliteScriptNames()) {
    Result<ConfigResult> dlt = RunOne(Path::kDriverlet, usb, pkg, script);
    Result<ConfigResult> nat = RunOne(Path::kNative, usb, pkg, script);
    Result<ConfigResult> sync = RunOne(Path::kNativeSync, usb, pkg, script);
    if (!dlt.ok() || !nat.ok() || !sync.ok()) {
      std::fprintf(stderr, "script %s failed\n", script.c_str());
      continue;
    }
    double di = dlt->script.iops();
    double ni = nat->script.iops();
    double si = sync->script.iops();
    std::printf("%-10s  %12.0f %12.0f %12.0f   %8.2fx %12.2fx\n", script.c_str(), di, ni, si,
                ni / di, di / si);
    sum_dlt += di;
    sum_nat += ni;
    sum_sync += si;
    sum_qps += dlt->script.qps();
    dlt_results.push_back(std::move(*dlt));
  }
  PrintRule(84);
  size_t n = SqliteScriptNames().size();
  std::printf("%-10s  %12.0f %12.0f %12.0f   %8.2fx %12.2fx\n", "average",
              sum_dlt / static_cast<double>(n), sum_nat / static_cast<double>(n),
              sum_sync / static_cast<double>(n), sum_nat / sum_dlt, sum_dlt / sum_sync);
  std::printf("driverlet average: %.0f IOPS, %.0f queries/second\n",
              sum_dlt / static_cast<double>(n), sum_qps / static_cast<double>(n));

  // Table 9: per-script template-invocation breakdown (driverlet path).
  std::printf("\nTable 9: breakdown of interaction template invocations (driverlet)\n");
  std::printf("%-10s  %7s %7s %7s %7s %7s   %5s\n", "script", "RW_1", "RW_8", "RW_32", "RW_128",
              "RW_256", "R:W");
  PrintRule(70);
  for (size_t i = 0; i < dlt_results.size(); ++i) {
    const ConfigResult& r = dlt_results[i];
    auto inv = [&](const std::string& suffix) {
      uint64_t v = 0;
      for (const auto& [name, count] : r.invocations) {
        if (name.substr(2) == suffix) {  // RD_x + WR_x merged
          v += count;
        }
      }
      return v;
    };
    double reads = static_cast<double>(r.script.reads);
    double writes = static_cast<double>(r.script.writes);
    double total = reads + writes;
    int rr = total > 0 ? static_cast<int>(reads / total * 10 + 0.5) : 0;
    std::printf("%-10s  %7llu %7llu %7llu %7llu %7llu   %2d:%-2d\n",
                r.script.name.c_str(), static_cast<unsigned long long>(inv("_1")),
                static_cast<unsigned long long>(inv("_8")),
                static_cast<unsigned long long>(inv("_32")),
                static_cast<unsigned long long>(inv("_128")),
                static_cast<unsigned long long>(inv("_256")), rr, 10 - rr);
  }
}

}  // namespace
}  // namespace dlt

int main() {
  using namespace dlt;
  std::printf("Figure 6 + Table 9: SQLite (MiniDb) storage benchmarks\n");
  std::printf("rows=%zu, queries/script=%zu; IOPS = block-device requests per simulated second\n",
              kRows, kQueries);
  std::vector<uint8_t> mmc_pkg = BuildMmcPackage();
  std::vector<uint8_t> usb_pkg = BuildUsbPackage();
  if (mmc_pkg.empty() || usb_pkg.empty()) {
    return 1;
  }
  RunDevice(/*usb=*/false, mmc_pkg);
  RunDevice(/*usb=*/true, usb_pkg);
  std::printf("\nPaper reference: MMC driverlet 434 IOPS avg, native 1.8x higher (1.4x read-most\n"
              "to 2x write-most), native-sync 1.5x below driverlet; USB driverlet 369 IOPS,\n"
              "native 1.5x higher, native-sync 1.2x below driverlet.\n");
  return 0;
}
