// Fleet scaling benchmark — the repo's first WALL-CLOCK measurement. Every
// earlier bench reports simulated SoC time; here the metric is how fast the
// host drains a fixed mixed mmc/usb/camera workload as shards (and worker
// threads) grow, plus the wall-clock queue wait distribution.
//
// Method (docs/replay_fleet.md, docs/benchmarks.md):
//  - a fixed roster of clients (1 camera + block clients split mmc/usb), each
//    with a deterministic op sequence: writes with seeded payloads cycling a
//    4-slot block window, every third op reading the window back;
//  - a single-shard ReplayService baseline runs every client's sequence
//    in the same global order and digests each client's read-back bytes;
//  - each fleet config (--shards CSV) pins client c to shard c % S, submits
//    the same global round-robin order through the bounded queues (busy →
//    retry), waits per-client in order, digests, and compares against the
//    baseline digest — per-session results must be byte-identical;
//  - aggregate invokes/sec comes from steady_clock around submit→last
//    completion; the scaling guard (>= 3x from 1 shard to the largest config)
//    is enforced only when a config with >= 4 shards ran a non-smoke load.
//
// Emits BENCH_replay_fleet.json; nonzero exit on determinism or guard failure.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/workload/deploy_util.h"
#include "src/tee/replay_fleet.h"

namespace dlt {
namespace {

constexpr int kBlockClients = 11;  // + 1 camera client
constexpr uint64_t kWindowBlocks = 8;

// FNV-1a 64: chained over every read-back byte of one client, in op order.
// Equal digests <=> byte-identical per-session results.
uint64_t Fnv1a(uint64_t h, const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ p[i]) * 0x100000001b3ull;
  }
  return h;
}

struct Op {
  int client = 0;
  bool is_read = false;
  bool is_camera = false;
  uint64_t blkid = 0;
  uint64_t seed = 0;  // write payload seed
};

struct ClientSpec {
  const char* driverlet;
  const char* entry;
  uint64_t base_blkid;
};

// The fixed global op order every run (baseline and fleet alike) executes.
std::vector<Op> BuildOps(int block_ops, int camera_ops) {
  std::vector<Op> ops;
  int per_client = block_ops / kBlockClients;
  for (int j = 0; j < per_client; ++j) {
    for (int c = 0; c < kBlockClients; ++c) {
      Op op;
      op.client = c;
      op.is_read = (j % 3) == 2;  // read the window every third round
      op.blkid = static_cast<uint64_t>(j % 4) * kWindowBlocks;
      op.seed = static_cast<uint64_t>(c) * 1000 + static_cast<uint64_t>(j);
      ops.push_back(op);
    }
    if (j % 8 == 0 && camera_ops > 0) {
      Op cam;
      cam.client = kBlockClients;  // the camera client
      cam.is_camera = true;
      ops.push_back(cam);
      --camera_ops;
    }
  }
  return ops;
}

std::vector<ClientSpec> BuildClients() {
  std::vector<ClientSpec> clients;
  for (int c = 0; c < kBlockClients; ++c) {
    // Interleave device classes; disjoint 16K-block home ranges per client.
    bool mmc = (c % 2) == 0;
    clients.push_back({mmc ? "mmc" : "usb", mmc ? kMmcEntry : kUsbEntry,
                       4096 + static_cast<uint64_t>(c) * 16384});
  }
  clients.push_back({"camera", kCameraEntry, 0});
  return clients;
}

ReplayArgs BlockOpArgs(const ClientSpec& cs, const Op& op, std::vector<uint8_t>* buf) {
  ReplayArgs args;
  args.scalars = {{"rw", op.is_read ? kMmcRwRead : kMmcRwWrite},
                  {"blkcnt", kWindowBlocks},
                  {"blkid", cs.base_blkid + op.blkid},
                  {"flag", 0}};
  args.buffers["buf"] = BufferView{buf->data(), buf->size()};
  return args;
}

ReplayArgs CameraOpArgs(std::vector<uint8_t>* buf, std::vector<uint8_t>* img_size) {
  ReplayArgs args;
  args.scalars = {{"frame", 1}, {"resolution", 720}, {"buf_size", buf->size()}};
  args.buffers["buf"] = BufferView{buf->data(), buf->size()};
  args.buffers["img_size"] = BufferView{img_size->data(), img_size->size()};
  return args;
}

// Per-op live storage: payload buffers must outlive the completion.
struct OpState {
  std::vector<uint8_t> buf;
  std::vector<uint8_t> img_size;
  uint64_t request = 0;
  size_t op_index = 0;
};

void FillOpBuffer(const Op& op, OpState* st) {
  if (op.is_camera) {
    st->buf.assign(Vc4Firmware::FrameBytes(1440) + 4096, 0);
    st->img_size.assign(4, 0);
  } else if (op.is_read) {
    st->buf.assign(kWindowBlocks * 512, 0);
  } else {
    st->buf = PatternBuf(kWindowBlocks * 512, op.seed);
  }
}

// Digest one completed op into its client's running digest (reads only —
// writes are observed through the reads that follow them).
void DigestOp(const Op& op, const OpState& st, std::vector<uint64_t>* digests) {
  if (op.is_camera) {
    (*digests)[static_cast<size_t>(op.client)] = Fnv1a(
        (*digests)[static_cast<size_t>(op.client)], st.buf.data(), st.buf.size());
  } else if (op.is_read) {
    (*digests)[static_cast<size_t>(op.client)] = Fnv1a(
        (*digests)[static_cast<size_t>(op.client)], st.buf.data(), st.buf.size());
  }
}

struct RegisterError {};

// Single-shard ReplayService reference run: same global order, one thread,
// one machine. Returns per-client digests.
std::vector<uint64_t> BaselineRun(const std::vector<Op>& ops,
                                  const std::vector<ClientSpec>& clients,
                                  const std::vector<uint8_t>& mmc_pkg,
                                  const std::vector<uint8_t>& usb_pkg,
                                  const std::vector<uint8_t>& cam_pkg) {
  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed tb{opts};
  ReplayServiceConfig cfg;
  cfg.max_sessions = clients.size() + 1;
  ReplayService svc(&tb.tee(), kDeveloperKey, cfg);
  for (const auto* pkg : {&mmc_pkg, &usb_pkg, &cam_pkg}) {
    if (!svc.RegisterDriverlet(pkg->data(), pkg->size()).ok()) {
      throw RegisterError{};
    }
  }
  std::vector<SessionId> sids;
  for (const ClientSpec& cs : clients) {
    Result<SessionId> sid = svc.OpenSession(cs.driverlet);
    if (!sid.ok()) {
      throw RegisterError{};
    }
    sids.push_back(*sid);
  }
  std::vector<uint64_t> digests(clients.size(), 0xcbf29ce484222325ull);
  OpState st;
  for (const Op& op : ops) {
    const ClientSpec& cs = clients[static_cast<size_t>(op.client)];
    FillOpBuffer(op, &st);
    ReplayArgs args = op.is_camera ? CameraOpArgs(&st.buf, &st.img_size)
                                   : BlockOpArgs(cs, op, &st.buf);
    if (!svc.Invoke(sids[static_cast<size_t>(op.client)], cs.entry, args).ok()) {
      std::fprintf(stderr, "baseline invoke failed (client %d)\n", op.client);
      throw RegisterError{};
    }
    DigestOp(op, st, &digests);
  }
  return digests;
}

struct ConfigResult {
  size_t shards = 0;
  size_t threads = 0;
  double wall_ms = 0;
  double invokes_per_sec = 0;
  uint64_t queue_wait_p50 = 0;
  uint64_t queue_wait_p99 = 0;
  uint64_t queue_wait_max = 0;
  uint64_t steals = 0;
  uint64_t busy_rejects = 0;
  bool deterministic = false;
};

ConfigResult FleetRun(size_t shards, uint64_t pace_us, const std::vector<Op>& ops,
                      const std::vector<ClientSpec>& clients,
                      const std::vector<uint64_t>& baseline,
                      const std::vector<uint8_t>& mmc_pkg,
                      const std::vector<uint8_t>& usb_pkg,
                      const std::vector<uint8_t>& cam_pkg) {
  ReplayFleetConfig cfg;
  cfg.shards = shards;
  cfg.threads = 0;  // one worker per shard
  cfg.queue_depth = 64;
  cfg.stealing = true;
  cfg.invoke_floor_us = pace_us;
  cfg.service.max_sessions = clients.size() + 1;
  ReplayFleet fleet(kDeveloperKey, cfg);
  for (const auto* pkg : {&mmc_pkg, &usb_pkg, &cam_pkg}) {
    if (!fleet.RegisterDriverlet(pkg->data(), pkg->size()).ok()) {
      throw RegisterError{};
    }
  }
  std::vector<FleetSessionId> sids;
  for (size_t c = 0; c < clients.size(); ++c) {
    Result<FleetSessionId> sid = fleet.OpenSessionOn(c % shards, clients[c].driverlet);
    if (!sid.ok()) {
      throw RegisterError{};
    }
    sids.push_back(*sid);
  }

  fleet.Start();
  auto t0 = std::chrono::steady_clock::now();
  // Submit the same global order; kBusy = bounded queue full, retry while the
  // pool drains. Per-client submission order is preserved, which is all the
  // determinism argument needs.
  std::vector<std::unique_ptr<OpState>> states;
  states.reserve(ops.size());
  std::vector<std::vector<size_t>> per_client(clients.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    const ClientSpec& cs = clients[static_cast<size_t>(op.client)];
    auto st = std::make_unique<OpState>();
    st->op_index = i;
    FillOpBuffer(op, st.get());
    ReplayArgs args = op.is_camera ? CameraOpArgs(&st->buf, &st->img_size)
                                   : BlockOpArgs(cs, op, &st->buf);
    for (;;) {
      Result<uint64_t> req =
          fleet.Submit(sids[static_cast<size_t>(op.client)], cs.entry, args);
      if (req.ok()) {
        st->request = *req;
        break;
      }
      if (req.status() != Status::kBusy) {
        std::fprintf(stderr, "submit failed: %s\n", StatusName(req.status()));
        throw RegisterError{};
      }
      // Back off instead of spinning: the submitter shares cores with the
      // workers, and a hot retry loop would throttle the very pool it feeds.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    per_client[static_cast<size_t>(op.client)].push_back(states.size());
    states.push_back(std::move(st));
  }
  // Wait per client in op order and fold read-back bytes into the digests.
  std::vector<uint64_t> digests(clients.size(), 0xcbf29ce484222325ull);
  uint64_t failures = 0;
  for (size_t c = 0; c < clients.size(); ++c) {
    for (size_t idx : per_client[c]) {
      OpState& st = *states[idx];
      if (!fleet.WaitCompletion(st.request).ok()) {
        ++failures;
        continue;
      }
      DigestOp(ops[st.op_index], st, &digests);
    }
  }
  auto t1 = std::chrono::steady_clock::now();

  ConfigResult r;
  r.shards = shards;
  r.threads = fleet.thread_count();
  r.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t1 - t0)
          .count();
  r.invokes_per_sec = static_cast<double>(ops.size()) / (r.wall_ms / 1000.0);
  const Histogram& qw = fleet.queue_wait_us();
  r.queue_wait_p50 = qw.Percentile(50);
  r.queue_wait_p99 = qw.Percentile(99);
  r.queue_wait_max = qw.max();
  FleetStats st = fleet.stats();
  r.steals = st.stolen;
  r.busy_rejects = st.busy_rejects;
  r.deterministic = failures == 0 && digests == baseline;
  fleet.Stop();
  if (failures != 0) {
    std::fprintf(stderr, "%llu invokes failed at %zu shards\n",
                 static_cast<unsigned long long>(failures), shards);
  }
  return r;
}

}  // namespace
}  // namespace dlt

int main(int argc, char** argv) {
  using namespace dlt;
  std::vector<size_t> shard_configs = {1, 2, 4};
  int invokes = 660;
  // Default pacing: ~1ms of wall-clock device latency per invoke, the order
  // the paper measures for real MMC/camera driverlet invocations. This makes
  // the workload device-bound — what the fleet's overlap actually targets —
  // and keeps the scaling curve meaningful on single-core CI runners.
  // --pace-us=0 measures the pure host-CPU-bound mode instead (scales only
  // with physical cores).
  uint64_t pace_us = 1000;
  const char* out_path = "BENCH_replay_fleet.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pace-us=", 10) == 0) {
      pace_us = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shard_configs.clear();
      for (const char* p = argv[i] + 9; *p != '\0';) {
        shard_configs.push_back(static_cast<size_t>(std::strtoul(p, nullptr, 10)));
        p = std::strchr(p, ',');
        if (p == nullptr) {
          break;
        }
        ++p;
      }
    } else if (std::strncmp(argv[i], "--invokes=", 10) == 0) {
      invokes = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--shards=1,2,4] [--invokes=N] [--pace-us=US] [--out=FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (shard_configs.empty() || invokes < kBlockClients) {
    std::fprintf(stderr, "bad arguments\n");
    return 2;
  }

  std::printf("Replay fleet scaling: mixed mmc/usb/camera, wall-clock\n\n");
  std::vector<uint8_t> mmc_pkg = BuildMmcPackage();
  std::vector<uint8_t> usb_pkg = BuildUsbPackage();
  std::vector<uint8_t> cam_pkg = BuildCameraPackage();
  if (mmc_pkg.empty() || usb_pkg.empty() || cam_pkg.empty()) {
    std::fprintf(stderr, "record campaigns failed\n");
    return 1;
  }

  std::vector<ClientSpec> clients = BuildClients();
  std::vector<Op> ops = BuildOps(invokes, invokes / 64 + 2);
  int camera_ops = 0;
  for (const Op& op : ops) {
    camera_ops += op.is_camera ? 1 : 0;
  }
  std::printf("workload: %zu invokes (%d camera), %zu clients, "
              "%llu us device-latency pacing\n",
              ops.size(), camera_ops, clients.size(),
              static_cast<unsigned long long>(pace_us));

  std::vector<ConfigResult> results;
  bool all_deterministic = true;
  try {
    std::vector<uint64_t> baseline =
        BaselineRun(ops, clients, mmc_pkg, usb_pkg, cam_pkg);
    for (size_t shards : shard_configs) {
      ConfigResult r =
          FleetRun(shards, pace_us, ops, clients, baseline, mmc_pkg, usb_pkg, cam_pkg);
      std::printf("  %zu shard(s) / %zu thread(s): %8.0f invokes/s, wall %7.1f ms, "
                  "queue-wait p50/p99 %llu/%llu us, steals %llu, busy %llu, %s\n",
                  r.shards, r.threads, r.invokes_per_sec, r.wall_ms,
                  static_cast<unsigned long long>(r.queue_wait_p50),
                  static_cast<unsigned long long>(r.queue_wait_p99),
                  static_cast<unsigned long long>(r.steals),
                  static_cast<unsigned long long>(r.busy_rejects),
                  r.deterministic ? "deterministic" : "DIVERGED FROM BASELINE");
      all_deterministic = all_deterministic && r.deterministic;
      results.push_back(r);
    }
  } catch (const RegisterError&) {
    std::fprintf(stderr, "fleet setup failed\n");
    return 1;
  }

  // Scaling guard: enforced only on a real run (a >= 4-shard config over a
  // non-smoke op count); the CI smoke (2 shards, few invokes) just checks the
  // JSON shape.
  double base_ips = 0;
  double best_ips = 0;
  size_t best_shards = 0;
  for (const ConfigResult& r : results) {
    if (r.shards == 1) {
      base_ips = r.invokes_per_sec;
    }
    if (r.shards >= 4 && r.invokes_per_sec > best_ips) {
      best_ips = r.invokes_per_sec;
      best_shards = r.shards;
    }
  }
  double scaling = (base_ips > 0 && best_ips > 0) ? best_ips / base_ips : 0;
  bool guard_applies = base_ips > 0 && best_shards >= 4 && ops.size() >= 200;
  if (scaling > 0) {
    std::printf("\nscaling: %.2fx from 1 shard to %zu shards\n", scaling, best_shards);
  }

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"workload\": {\"invokes\": %zu, \"camera_invokes\": %d, "
               "\"clients\": %zu, \"pace_us\": %llu},\n",
               ops.size(), camera_ops, clients.size(),
               static_cast<unsigned long long>(pace_us));
  std::fprintf(f, "  \"configs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"threads\": %zu, \"wall_ms\": %.2f, "
                 "\"invokes_per_sec\": %.1f, \"queue_wait_us\": {\"p50\": %llu, "
                 "\"p99\": %llu, \"max\": %llu}, \"steals\": %llu, "
                 "\"busy_rejects\": %llu, \"deterministic\": %s}%s\n",
                 r.shards, r.threads, r.wall_ms, r.invokes_per_sec,
                 static_cast<unsigned long long>(r.queue_wait_p50),
                 static_cast<unsigned long long>(r.queue_wait_p99),
                 static_cast<unsigned long long>(r.queue_wait_max),
                 static_cast<unsigned long long>(r.steals),
                 static_cast<unsigned long long>(r.busy_rejects),
                 r.deterministic ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"scaling_x\": %.3f,\n", scaling);
  std::fprintf(f, "  \"scaling_guard_applied\": %s,\n", guard_applies ? "true" : "false");
  std::fprintf(f, "  \"deterministic\": %s\n", all_deterministic ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  if (!all_deterministic) {
    std::fprintf(stderr, "FAIL: fleet results diverged from single-shard baseline\n");
    return 1;
  }
  if (guard_applies && scaling < 3.0) {
    std::fprintf(stderr, "FAIL: scaling %.2fx < 3x acceptance floor\n", scaling);
    return 1;
  }
  return 0;
}
