// Mixed-traffic service benchmark: one SecureWorld + ReplayService serving MMC
// block IO, USB storage and camera captures through concurrently open sessions
// — the production shape the session refactor targets. Two measurements:
//
//  1. Selection scaling: the same MMC request stream is replayed against a
//     store holding only the MMC package, then again after USB + camera +
//     display + touch more than double the template population. With the
//     (driverlet, entry)-indexed TemplateStore the candidates examined per
//     invoke must stay flat.
//  2. Mixed traffic: MMC/USB/camera sessions interleaved round-robin, half the
//     block requests through the bounded FIFO queue, half direct. Per-session
//     stats and the service invoke-latency histogram (virtual time) feed
//     BENCH_replay_service.json so future PRs have a perf trajectory.
//  3. Switch amortization (--batch 1,8,64): the same MMC command stream is
//     driven through the per-session invocation ring at each
//     commands-per-doorbell size, plus once through plain Invoke (the
//     pre-ring path). Measures world switches per command, model time per
//     command and the in-batch queue-wait p50/p99, and self-checks that every
//     configuration produces digest-identical read-back bytes.
//  4. Device-class profile: a database (MiniDb over the MMC driverlet),
//     camera captures, fTPM PCR/quote/attest traffic and crypto-accelerator
//     jobs interleave through four sessions of one service. Every byte a leg
//     reads back folds into a per-leg FNV digest that must equal a sequential
//     baseline running the identical per-leg schedule on a fresh machine —
//     equal digests prove concurrent traffic from the other classes changed
//     nothing (session isolation across all five template shapes).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/tee/attestation.h"
#include "src/tee/replay_service.h"
#include "src/obs/telemetry.h"
#include "src/workload/deploy_util.h"
#include "src/workload/minidb.h"
#include "src/workload/replay_block_device.h"

namespace dlt {
namespace {

constexpr int kSelectionInvokes = 200;
constexpr int kMixedRounds = 120;
constexpr size_t kAmortCommands = 128;   // divisible by every default batch size
constexpr size_t kAmortBlocks = 8;       // blocks per command
constexpr size_t kAmortBytes = kAmortBlocks * 512;

struct BlockClient {
  SessionId session = 0;
  const char* entry = nullptr;
  uint64_t next_blkid = 2048;
};

ReplayArgs BlockArgs(BlockClient* c, uint64_t rw, uint64_t blkcnt, std::vector<uint8_t>* buf) {
  ReplayArgs args;
  args.scalars = {{"rw", rw}, {"blkcnt", blkcnt}, {"blkid", c->next_blkid}, {"flag", 0}};
  args.buffers["buf"] = BufferView{buf->data(), static_cast<size_t>(blkcnt) * 512};
  c->next_blkid += 4096;
  return args;
}

// Drives the recorded MMC granularities in a fixed cycle; returns scans/invoke.
double SelectionPhase(ReplayService* svc, BlockClient* mmc, std::vector<uint8_t>* buf) {
  const uint64_t sizes[] = {1, 8, 32, 128, 256};
  uint64_t scans0 = svc->store().candidates_scanned();
  int ok = 0;
  for (int i = 0; i < kSelectionInvokes; ++i) {
    uint64_t blkcnt = sizes[i % 5];
    uint64_t rw = (i % 2) == 0 ? kMmcRwRead : kMmcRwWrite;
    if (svc->Invoke(mmc->session, mmc->entry, BlockArgs(mmc, rw, blkcnt, buf)).ok()) {
      ++ok;
    }
  }
  if (ok != kSelectionInvokes) {
    std::fprintf(stderr, "selection phase: %d/%d invokes failed\n", kSelectionInvokes - ok,
                 kSelectionInvokes);
  }
  return static_cast<double>(svc->store().candidates_scanned() - scans0) /
         kSelectionInvokes;
}

// Histograms are process-global and not copyable; the amortization phase also
// drives a service, so snapshot the mixed-phase values before it runs.
struct HistSnap {
  uint64_t count = 0;
  double mean = 0;
  uint64_t p50 = 0, p90 = 0, p99 = 0, max = 0;
};

HistSnap Snap(const Histogram& h) {
  return HistSnap{h.count(), h.mean(), h.Percentile(50), h.Percentile(90), h.Percentile(99),
                  h.max()};
}

void PrintHistJson(FILE* f, const char* key, const HistSnap& h, const char* suffix) {
  std::fprintf(f,
               "  \"%s\": {\"count\": %llu, \"mean\": %.1f, \"p50\": %llu, "
               "\"p90\": %llu, \"p99\": %llu, \"max\": %llu}%s\n",
               key, static_cast<unsigned long long>(h.count), h.mean,
               static_cast<unsigned long long>(h.p50),
               static_cast<unsigned long long>(h.p90),
               static_cast<unsigned long long>(h.p99),
               static_cast<unsigned long long>(h.max), suffix);
}

// ---- Phase 4: world-switch amortization across commands-per-doorbell ----

// Equal digests <=> byte-identical read-back data across configurations.
uint64_t Fnv1a(uint64_t h, const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}
constexpr uint64_t kFnvSeed = 1469598103934665603ull;

struct AmortResult {
  bool ring = false;          // ring doorbells vs plain Invoke (pre-ring path)
  size_t batch = 1;           // commands per doorbell
  uint64_t failures = 0;
  uint64_t world_switches = 0;
  double switches_per_cmd = 0;
  double us_per_cmd = 0;      // virtual model time per command
  uint64_t wait_p50 = 0;      // in-batch queue wait (ring.queue_wait_us)
  uint64_t wait_p99 = 0;
  uint64_t digest = 0;        // FNV-1a over every read command's buffer
};

// The fixed stream: command i writes a seeded pattern (even i) or reads the
// block pair written by command i-1 (odd i), 8 blocks per command. Within one
// doorbell batch the service executes in push order, so a read always lands
// after its write.
ReplayArgs AmortArgs(size_t i, std::vector<uint8_t>* pool) {
  uint8_t* slice = pool->data() + i * kAmortBytes;
  bool write = (i % 2) == 0;
  if (write) {
    std::vector<uint8_t> pat = PatternBuf(kAmortBytes, 0x1000 + i);
    std::memcpy(slice, pat.data(), kAmortBytes);
  } else {
    std::memset(slice, 0, kAmortBytes);
  }
  ReplayArgs args;
  args.scalars = {{"rw", write ? kMmcRwWrite : kMmcRwRead},
                  {"blkcnt", kAmortBlocks},
                  {"blkid", 2048 + (i / 2) * kAmortBlocks},
                  {"flag", 0}};
  args.buffers["buf"] = BufferView{slice, kAmortBytes};
  return args;
}

AmortResult RunAmortConfig(const std::vector<uint8_t>& mmc_pkg, size_t batch, bool ring) {
  AmortResult res;
  res.ring = ring;
  res.batch = batch;
  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed tb{opts};
  ReplayServiceConfig cfg;
  cfg.ring_depth = kAmortCommands;  // the sweep never backpressures
  ReplayService svc(&tb.tee(), kDeveloperKey, cfg);
  if (!svc.RegisterDriverlet(mmc_pkg.data(), mmc_pkg.size()).ok()) {
    res.failures = kAmortCommands;
    return res;
  }
  Result<SessionId> sid = svc.OpenSession("mmc");
  if (!sid.ok()) {
    res.failures = kAmortCommands;
    return res;
  }
  Histogram& wait = Telemetry::Get().metrics().histogram("ring.queue_wait_us");
  wait.Reset();  // isolate this configuration's in-batch waits

  std::vector<uint8_t> pool(kAmortCommands * kAmortBytes, 0);
  uint64_t sw0 = tb.tee().world_switches();
  uint64_t t0 = tb.clock().now_us();
  size_t done = 0;
  while (done < kAmortCommands) {
    size_t n = batch < kAmortCommands - done ? batch : kAmortCommands - done;
    if (ring) {
      for (size_t j = 0; j < n; ++j) {
        if (!svc.RingPush(*sid, kMmcEntry, AmortArgs(done + j, &pool)).ok()) {
          ++res.failures;
        }
      }
      Result<size_t> ran = svc.RingDoorbell(*sid);
      if (!ran.ok() || *ran != n) {
        ++res.failures;
      }
      for (size_t j = 0; j < n; ++j) {
        Result<RingCompletion> c = svc.RingPop(*sid);
        if (!c.ok() || !c->result.ok()) {
          ++res.failures;
        }
      }
    } else {
      // Pre-ring shape: one synchronous Invoke per command.
      for (size_t j = 0; j < n; ++j) {
        if (!svc.Invoke(*sid, kMmcEntry, AmortArgs(done + j, &pool)).ok()) {
          ++res.failures;
        }
      }
    }
    done += n;
  }
  res.world_switches = tb.tee().world_switches() - sw0;
  res.switches_per_cmd = static_cast<double>(res.world_switches) / kAmortCommands;
  res.us_per_cmd = static_cast<double>(tb.clock().now_us() - t0) / kAmortCommands;
  res.wait_p50 = wait.Percentile(50);
  res.wait_p99 = wait.Percentile(99);
  res.digest = kFnvSeed;
  for (size_t i = 1; i < kAmortCommands; i += 2) {
    res.digest = Fnv1a(res.digest, pool.data() + i * kAmortBytes, kAmortBytes);
  }
  return res;
}

// ---- Phase 5: mixed device-class profile (db + camera + TPM attest + crypto) ----
//
// Each leg's step is a deterministic function of the round index alone, so the
// same schedule can run interleaved through one service (four sessions, four
// classes) and sequentially on a fresh machine per class; the per-leg digests
// over every read-back byte must agree exactly.

constexpr int kProfileRounds = 32;

struct ProfileLeg {
  uint64_t digest = kFnvSeed;
  uint64_t failures = 0;
  uint64_t invokes = 0;  // session-stat invokes (mixed run only)
};

void FoldU64(ProfileLeg* leg, uint64_t v) {
  uint8_t b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  leg->digest = Fnv1a(leg->digest, b, sizeof b);
}

// Insert/lookup/update/scan mix against MiniDb on the MMC driverlet; folds
// every looked-up payload.
void DbProfileStep(MiniDb* db, int round, ProfileLeg* leg) {
  uint64_t key = 5000 + static_cast<uint64_t>(round);
  std::vector<uint8_t> payload = PatternBuf(120, 0x9a00 + static_cast<uint64_t>(round));
  if (!Ok(db->Insert(key, payload.data(), payload.size()))) {
    ++leg->failures;
  }
  Result<std::vector<uint8_t>> got = db->Lookup(key);
  if (!got.ok()) {
    ++leg->failures;
  } else {
    leg->digest = Fnv1a(leg->digest, got->data(), got->size());
  }
  if (round >= 4 && (round % 4) == 0) {
    uint64_t old_key = key - 4;
    std::vector<uint8_t> upd = PatternBuf(64, 0x9b00 + static_cast<uint64_t>(round));
    if (!Ok(db->Update(old_key, upd.data(), upd.size()))) {
      ++leg->failures;
    }
    Result<std::vector<uint8_t>> back = db->Lookup(old_key);
    if (!back.ok()) {
      ++leg->failures;
    } else {
      leg->digest = Fnv1a(leg->digest, back->data(), back->size());
    }
  }
  if ((round % 8) == 7) {
    Result<size_t> n = db->Scan(5000, key);
    if (!n.ok()) {
      ++leg->failures;
    } else {
      FoldU64(leg, *n);
    }
    if (!Ok(db->Commit())) {
      ++leg->failures;
    }
  }
}

// One 720p capture; folds the reported image size and the frame bytes.
void CameraProfileStep(ReplayService* svc, SessionId sid, ProfileLeg* leg) {
  std::vector<uint8_t> buf(Vc4Firmware::FrameBytes(1440) + 4096, 0);
  std::vector<uint8_t> img_size(4, 0);
  ReplayArgs args;
  args.scalars = {{"frame", 1}, {"resolution", 720}, {"buf_size", buf.size()}};
  args.buffers["buf"] = BufferView{buf.data(), buf.size()};
  args.buffers["img_size"] = BufferView{img_size.data(), img_size.size()};
  if (!svc->Invoke(sid, kCameraEntry, args).ok()) {
    ++leg->failures;
    return;
  }
  size_t n = static_cast<size_t>(img_size[0]) | static_cast<size_t>(img_size[1]) << 8 |
             static_cast<size_t>(img_size[2]) << 16 | static_cast<size_t>(img_size[3]) << 24;
  if (n > buf.size()) {
    n = buf.size();
  }
  leg->digest = Fnv1a(leg->digest, img_size.data(), img_size.size());
  leg->digest = Fnv1a(leg->digest, buf.data(), n);
}

// PCR extend + read + get-random every round; quote + service attest every
// 4th. The DRBG and PCR bank are device NV state, so the byte streams are a
// pure function of this session's command order.
void FtpmProfileStep(ReplayService* svc, SessionId sid, int round, ProfileLeg* leg) {
  std::vector<uint8_t> rsp(kFtpmMaxRandom, 0);
  auto exec = [&](uint64_t ord, uint64_t arg, const std::vector<uint8_t>& req) {
    std::memset(rsp.data(), 0, rsp.size());
    ReplayArgs args;
    args.scalars = {{"ord", ord}, {"arg", arg}};
    args.ro_buffers["req"] = ConstBufferView{req.data(), req.size()};
    args.buffers["rsp"] = BufferView{rsp.data(), rsp.size()};
    return svc->Invoke(sid, kFtpmEntry, args);
  };
  uint64_t pcr = static_cast<uint64_t>(round) % kFtpmPcrCount;
  std::vector<uint8_t> digest = PatternBuf(kFtpmPcrBytes, 0x7a00 + static_cast<uint64_t>(round));
  if (!exec(kFtpmOrdPcrExtend, pcr, digest).ok()) {
    ++leg->failures;
  }
  if (!exec(kFtpmOrdPcrRead, pcr, digest).ok()) {
    ++leg->failures;
  } else {
    leg->digest = Fnv1a(leg->digest, rsp.data(), kFtpmPcrBytes);
  }
  uint64_t nbytes = 32 + static_cast<uint64_t>(round % 8) * 32;
  if (!exec(kFtpmOrdGetRandom, nbytes, digest).ok()) {
    ++leg->failures;
  } else {
    leg->digest = Fnv1a(leg->digest, rsp.data(), nbytes);
  }
  if ((round % 4) == 3) {
    std::vector<uint8_t> nonce = PatternBuf(kFtpmPcrBytes, 0x7b00 + static_cast<uint64_t>(round));
    if (!exec(kFtpmOrdQuote, 0x3, nonce).ok()) {
      ++leg->failures;
    } else {
      leg->digest = Fnv1a(leg->digest, rsp.data(), 48);  // nonce + PCR binding
    }
    // Service-level attestation rides along: the session PCR chain is a pure
    // function of this session's completed invokes, so it digests stably too.
    Result<AttestationQuote> q = svc->Attest(sid, "mix" + std::to_string(round));
    if (!q.ok() || !VerifyQuote(*q, kDeveloperKey)) {
      ++leg->failures;
    } else {
      leg->digest = Fnv1a(
          leg->digest, reinterpret_cast<const uint8_t*>(q->session_measurement.data()),
          q->session_measurement.size());
      FoldU64(leg, q->invokes);
    }
  }
}

// Encrypt → decrypt round trip at a rotating covered length; digest job every
// 3rd round. Ciphertext folds in (deterministic keystream), and a silent
// plaintext mismatch counts as a failure just like in the fault matrix.
void CryptoProfileStep(ReplayService* svc, SessionId sid, int round, ProfileLeg* leg) {
  uint64_t key = 0xc0ffee00 + static_cast<uint64_t>(round % 16);
  size_t len = kCryptoChunkBytes * (1 + static_cast<size_t>(round % 4));
  std::vector<uint8_t> pt = PatternBuf(len, 0x5e00 + static_cast<uint64_t>(round));
  std::vector<uint8_t> ct(len, 0);
  ReplayArgs eargs;
  eargs.scalars = {{"op", kCaOpEncrypt}, {"key", key}, {"len", len}};
  eargs.ro_buffers["buf"] = ConstBufferView{pt.data(), pt.size()};
  eargs.buffers["out"] = BufferView{ct.data(), ct.size()};
  if (!svc->Invoke(sid, kCryptoaccEntry, eargs).ok()) {
    ++leg->failures;
    return;
  }
  leg->digest = Fnv1a(leg->digest, ct.data(), ct.size());
  std::vector<uint8_t> rt(len, 0);
  ReplayArgs dargs;
  dargs.scalars = {{"op", kCaOpDecrypt}, {"key", key}, {"len", len}};
  dargs.ro_buffers["buf"] = ConstBufferView{ct.data(), ct.size()};
  dargs.buffers["out"] = BufferView{rt.data(), rt.size()};
  if (!svc->Invoke(sid, kCryptoaccEntry, dargs).ok()) {
    ++leg->failures;
    return;
  }
  if (rt != pt) {
    ++leg->failures;
  }
  if ((round % 3) == 0) {
    std::vector<uint8_t> out(kCaDigestBytes, 0);
    ReplayArgs gargs;
    gargs.scalars = {{"op", kCaOpDigest}, {"key", key}, {"len", kCryptoChunkBytes}};
    gargs.ro_buffers["buf"] = ConstBufferView{pt.data(), kCryptoChunkBytes};
    gargs.buffers["out"] = BufferView{out.data(), out.size()};
    if (!svc->Invoke(sid, kCryptoaccEntry, gargs).ok()) {
      ++leg->failures;
    } else {
      leg->digest = Fnv1a(leg->digest, out.data(), out.size());
    }
  }
}

struct ProfileRun {
  ProfileLeg db, camera, ftpm, crypto;
  double simulated_s = 0;
};

ProfileRun RunMixedProfile(const std::vector<uint8_t>& mmc_pkg,
                           const std::vector<uint8_t>& cam_pkg,
                           const std::vector<uint8_t>& ftpm_pkg,
                           const std::vector<uint8_t>& ca_pkg) {
  ProfileRun run;
  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed tb{opts};
  ReplayServiceConfig cfg;
  cfg.max_sessions = 8;
  ReplayService svc(&tb.tee(), kDeveloperKey, cfg);
  for (const std::vector<uint8_t>* pkg : {&mmc_pkg, &cam_pkg, &ftpm_pkg, &ca_pkg}) {
    if (!svc.RegisterDriverlet(pkg->data(), pkg->size()).ok()) {
      run.db.failures = run.camera.failures = run.ftpm.failures = run.crypto.failures = 1;
      return run;
    }
  }
  Result<SessionId> db_sid = svc.OpenSession("mmc");
  Result<SessionId> cam_sid = svc.OpenSession("camera");
  Result<SessionId> tpm_sid = svc.OpenSession("ftpm");
  Result<SessionId> ca_sid = svc.OpenSession("cryptoacc");
  if (!db_sid.ok() || !cam_sid.ok() || !tpm_sid.ok() || !ca_sid.ok()) {
    run.db.failures = run.camera.failures = run.ftpm.failures = run.crypto.failures = 1;
    return run;
  }
  ReplayBlockDevice bdev(&svc, *db_sid, kMmcEntry);
  MiniDb db(&bdev);
  if (!Ok(db.Open())) {
    ++run.db.failures;
  }
  uint64_t t0 = tb.clock().now_us();
  for (int round = 0; round < kProfileRounds; ++round) {
    DbProfileStep(&db, round, &run.db);
    CryptoProfileStep(&svc, *ca_sid, round, &run.crypto);
    FtpmProfileStep(&svc, *tpm_sid, round, &run.ftpm);
    if ((round % 4) == 0) {
      CameraProfileStep(&svc, *cam_sid, &run.camera);
    }
  }
  if (!Ok(db.Commit())) {
    ++run.db.failures;
  }
  run.simulated_s = static_cast<double>(tb.clock().now_us() - t0) / 1e6;
  ProfileLeg* legs[] = {&run.db, &run.camera, &run.ftpm, &run.crypto};
  SessionId sids[] = {*db_sid, *cam_sid, *tpm_sid, *ca_sid};
  for (int i = 0; i < 4; ++i) {
    Result<SessionStats> st = svc.Stats(sids[i]);
    if (st.ok()) {
      legs[i]->invokes = st->invokes;
    }
  }
  return run;
}

// The same per-leg schedule, alone on a fresh machine: the isolation baseline.
ProfileLeg RunSequentialLeg(char which, const std::vector<uint8_t>& pkg) {
  ProfileLeg leg;
  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed tb{opts};
  ReplayServiceConfig cfg;
  ReplayService svc(&tb.tee(), kDeveloperKey, cfg);
  if (!svc.RegisterDriverlet(pkg.data(), pkg.size()).ok()) {
    leg.failures = 1;
    return leg;
  }
  const char* name = which == 'd'   ? "mmc"
                     : which == 'c' ? "camera"
                     : which == 't' ? "ftpm"
                                    : "cryptoacc";
  Result<SessionId> sid = svc.OpenSession(name);
  if (!sid.ok()) {
    leg.failures = 1;
    return leg;
  }
  if (which == 'd') {
    ReplayBlockDevice bdev(&svc, *sid, kMmcEntry);
    MiniDb db(&bdev);
    if (!Ok(db.Open())) {
      ++leg.failures;
    }
    for (int round = 0; round < kProfileRounds; ++round) {
      DbProfileStep(&db, round, &leg);
    }
    if (!Ok(db.Commit())) {
      ++leg.failures;
    }
    return leg;
  }
  for (int round = 0; round < kProfileRounds; ++round) {
    if (which == 'c' && (round % 4) == 0) {
      CameraProfileStep(&svc, *sid, &leg);
    } else if (which == 't') {
      FtpmProfileStep(&svc, *sid, round, &leg);
    } else if (which == 'a') {
      CryptoProfileStep(&svc, *sid, round, &leg);
    }
  }
  return leg;
}

}  // namespace
}  // namespace dlt

int main(int argc, char** argv) {
  using namespace dlt;
  Telemetry::Get().Enable();  // metrics sourced from src/obs (virtual time)

  // --batch N[,N...] selects the commands-per-doorbell sweep (default 1,8,64).
  std::vector<size_t> batches = {1, 8, 64};
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    std::string list;
    if (arg == "--batch" && a + 1 < argc) {
      list = argv[++a];
    } else if (arg.rfind("--batch=", 0) == 0) {
      list = arg.substr(8);
    } else {
      std::fprintf(stderr, "usage: %s [--batch N[,N...]]\n", argv[0]);
      return 2;
    }
    batches.clear();
    for (size_t pos = 0; pos < list.size();) {
      size_t comma = list.find(',', pos);
      if (comma == std::string::npos) {
        comma = list.size();
      }
      size_t b = static_cast<size_t>(std::strtoull(list.c_str() + pos, nullptr, 10));
      if (b == 0 || b > kAmortCommands) {
        std::fprintf(stderr, "batch sizes must be in [1, %zu]\n", kAmortCommands);
        return 2;
      }
      batches.push_back(b);
      pos = comma + 1;
    }
    if (batches.empty()) {
      std::fprintf(stderr, "--batch needs at least one size\n");
      return 2;
    }
  }

  std::printf("Session-oriented replay service: mixed MMC + USB + camera traffic\n\n");
  std::vector<uint8_t> mmc_pkg = BuildMmcPackage();
  std::vector<uint8_t> usb_pkg = BuildUsbPackage();
  std::vector<uint8_t> cam_pkg = BuildCameraPackage();
  std::vector<uint8_t> disp_pkg = BuildDisplayPackage();
  std::vector<uint8_t> touch_pkg = BuildTouchPackage();
  std::vector<uint8_t> ftpm_pkg = BuildFtpmPackage();
  std::vector<uint8_t> ca_pkg = BuildCryptoaccPackage();
  if (mmc_pkg.empty() || usb_pkg.empty() || cam_pkg.empty() || disp_pkg.empty() ||
      touch_pkg.empty() || ftpm_pkg.empty() || ca_pkg.empty()) {
    std::fprintf(stderr, "record campaigns failed\n");
    return 1;
  }

  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed tb{opts};
  ReplayServiceConfig cfg;
  cfg.max_sessions = 8;
  cfg.queue_depth = 64;
  ReplayService svc(&tb.tee(), kDeveloperKey, cfg);

  // ---- Phase 1: MMC alone ----
  if (!svc.RegisterDriverlet(mmc_pkg.data(), mmc_pkg.size()).ok()) {
    return 1;
  }
  Result<SessionId> mmc_sid = svc.OpenSession("mmc");
  if (!mmc_sid.ok()) {
    return 1;
  }
  BlockClient mmc{*mmc_sid, kMmcEntry};
  std::vector<uint8_t> block_buf(256 * 512, 0x5c);
  size_t pop1 = svc.store().template_count();
  double scans1 = SelectionPhase(&svc, &mmc, &block_buf);

  // ---- Phase 2: population more than doubles; same request stream ----
  if (!svc.RegisterDriverlet(usb_pkg.data(), usb_pkg.size()).ok() ||
      !svc.RegisterDriverlet(cam_pkg.data(), cam_pkg.size()).ok() ||
      !svc.RegisterDriverlet(disp_pkg.data(), disp_pkg.size()).ok() ||
      !svc.RegisterDriverlet(touch_pkg.data(), touch_pkg.size()).ok()) {
    return 1;
  }
  size_t pop2 = svc.store().template_count();
  double scans2 = SelectionPhase(&svc, &mmc, &block_buf);
  std::printf("selection cost: %.1f candidates/invoke over %zu templates, "
              "%.1f over %zu templates (flat = index works)\n",
              scans1, pop1, scans2, pop2);

  // ---- Phase 3: mixed traffic through 4 sessions ----
  Result<SessionId> mmc2_sid = svc.OpenSession("mmc");
  Result<SessionId> usb_sid = svc.OpenSession("usb");
  Result<SessionId> cam_sid = svc.OpenSession("camera");
  if (!mmc2_sid.ok() || !usb_sid.ok() || !cam_sid.ok()) {
    return 1;
  }
  BlockClient mmc2{*mmc2_sid, kMmcEntry};
  BlockClient usb{*usb_sid, kUsbEntry};
  std::vector<uint8_t> usb_buf(256 * 512, 0x33);
  std::vector<uint8_t> cam_buf(Vc4Firmware::FrameBytes(1440) + 4096, 0);
  std::vector<uint8_t> img_size(4, 0);

  uint64_t t0 = tb.clock().now_us();
  uint64_t mixed_failures = 0;
  for (int round = 0; round < kMixedRounds; ++round) {
    // Two block clients alternate direct invokes with the FIFO queue path.
    uint64_t req1 = 0;
    uint64_t req2 = 0;
    if ((round % 2) == 0) {
      Result<uint64_t> r1 =
          svc.Submit(mmc.session, kMmcEntry, BlockArgs(&mmc, kMmcRwWrite, 32, &block_buf));
      Result<uint64_t> r2 =
          svc.Submit(usb.session, kUsbEntry, BlockArgs(&usb, kMmcRwWrite, 8, &usb_buf));
      req1 = r1.ok() ? *r1 : 0;
      req2 = r2.ok() ? *r2 : 0;
    } else {
      if (!svc.Invoke(mmc.session, kMmcEntry, BlockArgs(&mmc, kMmcRwRead, 32, &block_buf))
               .ok()) {
        ++mixed_failures;
      }
      if (!svc.Invoke(usb.session, kUsbEntry, BlockArgs(&usb, kMmcRwRead, 8, &usb_buf))
               .ok()) {
        ++mixed_failures;
      }
    }
    // Second MMC client: single-block metadata-style IO.
    if (!svc.Invoke(mmc2.session, kMmcEntry, BlockArgs(&mmc2, kMmcRwWrite, 1, &block_buf))
             .ok()) {
      ++mixed_failures;
    }
    // Camera one-shot every 4th round (captures dominate virtual time).
    if ((round % 4) == 0) {
      ReplayArgs cam_args;
      cam_args.scalars = {{"frame", 1}, {"resolution", 720}, {"buf_size", cam_buf.size()}};
      cam_args.buffers["buf"] = BufferView{cam_buf.data(), cam_buf.size()};
      cam_args.buffers["img_size"] = BufferView{img_size.data(), img_size.size()};
      if (!svc.Invoke(*cam_sid, kCameraEntry, cam_args).ok()) {
        ++mixed_failures;
      }
    }
    svc.ProcessQueued();
    if (req1 != 0 && !svc.TakeCompletion(req1).ok()) {
      ++mixed_failures;
    }
    if (req2 != 0 && !svc.TakeCompletion(req2).ok()) {
      ++mixed_failures;
    }
  }
  double elapsed_s = static_cast<double>(tb.clock().now_us() - t0) / 1e6;

  MetricsRegistry& m = Telemetry::Get().metrics();
  uint64_t ops = m.counter("service.invokes").value();
  std::printf("mixed phase: %llu invokes over 4 sessions in %.2f simulated s "
              "(%llu failures)\n",
              static_cast<unsigned long long>(ops), elapsed_s,
              static_cast<unsigned long long>(mixed_failures));
  std::printf("sessions open=%zu, driverlets=%zu, queue backlog=%zu\n",
              svc.open_sessions(), svc.registered_driverlets(), svc.queue_backlog());
  for (SessionId sid : {mmc.session, mmc2.session, usb.session, *cam_sid}) {
    Result<SessionStats> st = svc.Stats(sid);
    if (st.ok()) {
      std::printf("  session %llu (%s): invokes=%llu failures=%llu events=%llu "
                  "resets=%llu queued=%llu\n",
                  static_cast<unsigned long long>(sid), st->driverlet.c_str(),
                  static_cast<unsigned long long>(st->invokes),
                  static_cast<unsigned long long>(st->failures),
                  static_cast<unsigned long long>(st->events_executed),
                  static_cast<unsigned long long>(st->resets),
                  static_cast<unsigned long long>(st->submitted));
    }
  }

  // Snapshot the mixed-phase metrics before the amortization phase drives
  // more service traffic through the same process-global registry.
  HistSnap invoke_snap = Snap(m.histogram("service.invoke_us"));
  HistSnap queue_snap = Snap(m.histogram("service.queue_wait_us"));
  uint64_t inv_mmc = m.counter("service.invokes.mmc").value();
  uint64_t inv_usb = m.counter("service.invokes.usb").value();
  uint64_t inv_cam = m.counter("service.invokes.camera").value();

  // ---- Phase 4: switch amortization sweep ----
  std::printf("\nswitch amortization (%zu MMC commands, 2 switches per doorbell):\n",
              kAmortCommands);
  std::vector<AmortResult> amort;
  amort.push_back(RunAmortConfig(mmc_pkg, 1, /*ring=*/false));  // pre-ring baseline
  for (size_t b : batches) {
    amort.push_back(RunAmortConfig(mmc_pkg, b, /*ring=*/true));
  }
  bool digest_match = true;
  bool amort_ok = true;
  const AmortResult& direct = amort[0];
  for (const AmortResult& r : amort) {
    std::printf("  %-6s batch=%-3zu switches/cmd=%.4f us/cmd=%-9.2f wait p50/p99=%llu/%llu"
                " digest=%016llx%s\n",
                r.ring ? "ring" : "direct", r.batch, r.switches_per_cmd, r.us_per_cmd,
                static_cast<unsigned long long>(r.wait_p50),
                static_cast<unsigned long long>(r.wait_p99),
                static_cast<unsigned long long>(r.digest),
                r.failures != 0 ? " FAILURES" : "");
    if (r.failures != 0) {
      std::fprintf(stderr, "amortization: %llu command failures at batch %zu\n",
                   static_cast<unsigned long long>(r.failures), r.batch);
      amort_ok = false;
    }
    if (r.digest != direct.digest) {
      digest_match = false;  // batched replay must not change a single byte
    }
    // Switch count must amortize exactly: two per doorbell, ceil(M/B) doorbells.
    uint64_t doorbells = (kAmortCommands + r.batch - 1) / r.batch;
    if (r.world_switches != 2 * doorbells) {
      std::fprintf(stderr, "amortization: batch %zu charged %llu switches, expected %llu\n",
                   r.batch, static_cast<unsigned long long>(r.world_switches),
                   static_cast<unsigned long long>(2 * doorbells));
      amort_ok = false;
    }
    // Any real batching must beat the unbatched per-command model time.
    if (r.batch > 1 && r.us_per_cmd >= direct.us_per_cmd) {
      std::fprintf(stderr, "amortization: batch %zu us/cmd %.2f not below unbatched %.2f\n",
                   r.batch, r.us_per_cmd, direct.us_per_cmd);
      amort_ok = false;
    }
  }
  if (!digest_match) {
    std::fprintf(stderr, "amortization: read-back digests diverge across batch sizes\n");
  }

  // ---- Phase 5: mixed device-class profile vs sequential baselines ----
  std::printf("\ndevice-class profile (db + camera + TPM attest + crypto), %d rounds:\n",
              kProfileRounds);
  ProfileRun mix = RunMixedProfile(mmc_pkg, cam_pkg, ftpm_pkg, ca_pkg);
  struct LegRow {
    const char* name;
    char tag;
    const std::vector<uint8_t>* pkg;
    const ProfileLeg* mixed;
    ProfileLeg sequential;
  } legs[] = {{"db", 'd', &mmc_pkg, &mix.db, {}},
              {"camera", 'c', &cam_pkg, &mix.camera, {}},
              {"ftpm", 't', &ftpm_pkg, &mix.ftpm, {}},
              {"cryptoacc", 'a', &ca_pkg, &mix.crypto, {}}};
  bool profile_match = true;
  uint64_t profile_failures = 0;
  for (LegRow& l : legs) {
    l.sequential = RunSequentialLeg(l.tag, *l.pkg);
    bool match = l.mixed->digest == l.sequential.digest;
    profile_match &= match;
    profile_failures += l.mixed->failures + l.sequential.failures;
    std::printf("  %-9s invokes=%-4llu digest=%016llx sequential=%016llx %s\n", l.name,
                static_cast<unsigned long long>(l.mixed->invokes),
                static_cast<unsigned long long>(l.mixed->digest),
                static_cast<unsigned long long>(l.sequential.digest),
                match ? "MATCH" : "DIVERGED");
  }
  std::printf("  %.2f simulated s, %llu failures, isolation %s\n", mix.simulated_s,
              static_cast<unsigned long long>(profile_failures),
              profile_match ? "holds" : "BROKEN");
  if (!profile_match || profile_failures != 0) {
    std::fprintf(stderr, "profile: concurrent digests diverged from sequential baselines\n");
  }

  // ---- BENCH_replay_service.json: the perf trajectory for future PRs ----
  FILE* f = std::fopen("BENCH_replay_service.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_replay_service.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"ops\": %llu,\n", static_cast<unsigned long long>(ops));
  std::fprintf(f, "  \"failures\": %llu,\n",
               static_cast<unsigned long long>(mixed_failures));
  std::fprintf(f, "  \"simulated_seconds\": %.3f,\n", elapsed_s);
  PrintHistJson(f, "invoke_latency_us", invoke_snap, ",");
  PrintHistJson(f, "queue_wait_us", queue_snap, ",");
  std::fprintf(f, "  \"per_driverlet_invokes\": {\"mmc\": %llu, \"usb\": %llu, \"camera\": %llu},\n",
               static_cast<unsigned long long>(inv_mmc),
               static_cast<unsigned long long>(inv_usb),
               static_cast<unsigned long long>(inv_cam));
  std::fprintf(f,
               "  \"selection\": {\"templates_small\": %zu, \"scans_per_invoke_small\": %.2f, "
               "\"templates_large\": %zu, \"scans_per_invoke_large\": %.2f},\n",
               pop1, scans1, pop2, scans2);
  std::fprintf(f, "  \"amortization\": [\n");
  for (size_t i = 0; i < amort.size(); ++i) {
    const AmortResult& r = amort[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"batch\": %zu, \"commands\": %zu, "
                 "\"world_switches\": %llu, \"switches_per_command\": %.4f, "
                 "\"model_us_per_command\": %.2f, \"ring_wait_p50_us\": %llu, "
                 "\"ring_wait_p99_us\": %llu, \"digest\": \"%016llx\"}%s\n",
                 r.ring ? "ring" : "direct", r.batch, kAmortCommands,
                 static_cast<unsigned long long>(r.world_switches), r.switches_per_cmd,
                 r.us_per_cmd, static_cast<unsigned long long>(r.wait_p50),
                 static_cast<unsigned long long>(r.wait_p99),
                 static_cast<unsigned long long>(r.digest),
                 i + 1 < amort.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"amortization_digest_match\": %s,\n", digest_match ? "true" : "false");
  std::fprintf(f, "  \"mixed_profile\": {\n");
  std::fprintf(f, "    \"rounds\": %d,\n", kProfileRounds);
  std::fprintf(f, "    \"simulated_seconds\": %.3f,\n", mix.simulated_s);
  std::fprintf(f, "    \"failures\": %llu,\n",
               static_cast<unsigned long long>(profile_failures));
  for (const LegRow& l : legs) {
    std::fprintf(f,
                 "    \"%s\": {\"invokes\": %llu, \"digest\": \"%016llx\", "
                 "\"sequential_digest\": \"%016llx\", \"match\": %s},\n",
                 l.name, static_cast<unsigned long long>(l.mixed->invokes),
                 static_cast<unsigned long long>(l.mixed->digest),
                 static_cast<unsigned long long>(l.sequential.digest),
                 l.mixed->digest == l.sequential.digest ? "true" : "false");
  }
  std::fprintf(f, "    \"digest_match\": %s\n", profile_match ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_replay_service.json\n");
  return (digest_match && amort_ok && profile_match && profile_failures == 0) ? 0 : 1;
}
