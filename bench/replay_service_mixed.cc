// Mixed-traffic service benchmark: one SecureWorld + ReplayService serving MMC
// block IO, USB storage and camera captures through concurrently open sessions
// — the production shape the session refactor targets. Two measurements:
//
//  1. Selection scaling: the same MMC request stream is replayed against a
//     store holding only the MMC package, then again after USB + camera +
//     display + touch more than double the template population. With the
//     (driverlet, entry)-indexed TemplateStore the candidates examined per
//     invoke must stay flat.
//  2. Mixed traffic: MMC/USB/camera sessions interleaved round-robin, half the
//     block requests through the bounded FIFO queue, half direct. Per-session
//     stats and the service invoke-latency histogram (virtual time) feed
//     BENCH_replay_service.json so future PRs have a perf trajectory.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/obs/telemetry.h"
#include "src/tee/replay_service.h"

namespace dlt {
namespace {

constexpr int kSelectionInvokes = 200;
constexpr int kMixedRounds = 120;

struct BlockClient {
  SessionId session = 0;
  const char* entry = nullptr;
  uint64_t next_blkid = 2048;
};

ReplayArgs BlockArgs(BlockClient* c, uint64_t rw, uint64_t blkcnt, std::vector<uint8_t>* buf) {
  ReplayArgs args;
  args.scalars = {{"rw", rw}, {"blkcnt", blkcnt}, {"blkid", c->next_blkid}, {"flag", 0}};
  args.buffers["buf"] = BufferView{buf->data(), static_cast<size_t>(blkcnt) * 512};
  c->next_blkid += 4096;
  return args;
}

// Drives the recorded MMC granularities in a fixed cycle; returns scans/invoke.
double SelectionPhase(ReplayService* svc, BlockClient* mmc, std::vector<uint8_t>* buf) {
  const uint64_t sizes[] = {1, 8, 32, 128, 256};
  uint64_t scans0 = svc->store().candidates_scanned();
  int ok = 0;
  for (int i = 0; i < kSelectionInvokes; ++i) {
    uint64_t blkcnt = sizes[i % 5];
    uint64_t rw = (i % 2) == 0 ? kMmcRwRead : kMmcRwWrite;
    if (svc->Invoke(mmc->session, mmc->entry, BlockArgs(mmc, rw, blkcnt, buf)).ok()) {
      ++ok;
    }
  }
  if (ok != kSelectionInvokes) {
    std::fprintf(stderr, "selection phase: %d/%d invokes failed\n", kSelectionInvokes - ok,
                 kSelectionInvokes);
  }
  return static_cast<double>(svc->store().candidates_scanned() - scans0) /
         kSelectionInvokes;
}

void PrintHistJson(FILE* f, const char* key, const Histogram& h, const char* suffix) {
  std::fprintf(f,
               "  \"%s\": {\"count\": %llu, \"mean\": %.1f, \"p50\": %llu, "
               "\"p90\": %llu, \"p99\": %llu, \"max\": %llu}%s\n",
               key, static_cast<unsigned long long>(h.count()), h.mean(),
               static_cast<unsigned long long>(h.Percentile(50)),
               static_cast<unsigned long long>(h.Percentile(90)),
               static_cast<unsigned long long>(h.Percentile(99)),
               static_cast<unsigned long long>(h.max()), suffix);
}

}  // namespace
}  // namespace dlt

int main() {
  using namespace dlt;
  Telemetry::Get().Enable();  // metrics sourced from src/obs (virtual time)

  std::printf("Session-oriented replay service: mixed MMC + USB + camera traffic\n\n");
  std::vector<uint8_t> mmc_pkg = BuildMmcPackage();
  std::vector<uint8_t> usb_pkg = BuildUsbPackage();
  std::vector<uint8_t> cam_pkg = BuildCameraPackage();
  std::vector<uint8_t> disp_pkg = BuildDisplayPackage();
  std::vector<uint8_t> touch_pkg = BuildTouchPackage();
  if (mmc_pkg.empty() || usb_pkg.empty() || cam_pkg.empty() || disp_pkg.empty() ||
      touch_pkg.empty()) {
    std::fprintf(stderr, "record campaigns failed\n");
    return 1;
  }

  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed tb{opts};
  ReplayServiceConfig cfg;
  cfg.max_sessions = 8;
  cfg.queue_depth = 64;
  ReplayService svc(&tb.tee(), kDeveloperKey, cfg);

  // ---- Phase 1: MMC alone ----
  if (!svc.RegisterDriverlet(mmc_pkg.data(), mmc_pkg.size()).ok()) {
    return 1;
  }
  Result<SessionId> mmc_sid = svc.OpenSession("mmc");
  if (!mmc_sid.ok()) {
    return 1;
  }
  BlockClient mmc{*mmc_sid, kMmcEntry};
  std::vector<uint8_t> block_buf(256 * 512, 0x5c);
  size_t pop1 = svc.store().template_count();
  double scans1 = SelectionPhase(&svc, &mmc, &block_buf);

  // ---- Phase 2: population more than doubles; same request stream ----
  if (!svc.RegisterDriverlet(usb_pkg.data(), usb_pkg.size()).ok() ||
      !svc.RegisterDriverlet(cam_pkg.data(), cam_pkg.size()).ok() ||
      !svc.RegisterDriverlet(disp_pkg.data(), disp_pkg.size()).ok() ||
      !svc.RegisterDriverlet(touch_pkg.data(), touch_pkg.size()).ok()) {
    return 1;
  }
  size_t pop2 = svc.store().template_count();
  double scans2 = SelectionPhase(&svc, &mmc, &block_buf);
  std::printf("selection cost: %.1f candidates/invoke over %zu templates, "
              "%.1f over %zu templates (flat = index works)\n",
              scans1, pop1, scans2, pop2);

  // ---- Phase 3: mixed traffic through 4 sessions ----
  Result<SessionId> mmc2_sid = svc.OpenSession("mmc");
  Result<SessionId> usb_sid = svc.OpenSession("usb");
  Result<SessionId> cam_sid = svc.OpenSession("camera");
  if (!mmc2_sid.ok() || !usb_sid.ok() || !cam_sid.ok()) {
    return 1;
  }
  BlockClient mmc2{*mmc2_sid, kMmcEntry};
  BlockClient usb{*usb_sid, kUsbEntry};
  std::vector<uint8_t> usb_buf(256 * 512, 0x33);
  std::vector<uint8_t> cam_buf(Vc4Firmware::FrameBytes(1440) + 4096, 0);
  std::vector<uint8_t> img_size(4, 0);

  uint64_t t0 = tb.clock().now_us();
  uint64_t mixed_failures = 0;
  for (int round = 0; round < kMixedRounds; ++round) {
    // Two block clients alternate direct invokes with the FIFO queue path.
    uint64_t req1 = 0;
    uint64_t req2 = 0;
    if ((round % 2) == 0) {
      Result<uint64_t> r1 =
          svc.Submit(mmc.session, kMmcEntry, BlockArgs(&mmc, kMmcRwWrite, 32, &block_buf));
      Result<uint64_t> r2 =
          svc.Submit(usb.session, kUsbEntry, BlockArgs(&usb, kMmcRwWrite, 8, &usb_buf));
      req1 = r1.ok() ? *r1 : 0;
      req2 = r2.ok() ? *r2 : 0;
    } else {
      if (!svc.Invoke(mmc.session, kMmcEntry, BlockArgs(&mmc, kMmcRwRead, 32, &block_buf))
               .ok()) {
        ++mixed_failures;
      }
      if (!svc.Invoke(usb.session, kUsbEntry, BlockArgs(&usb, kMmcRwRead, 8, &usb_buf))
               .ok()) {
        ++mixed_failures;
      }
    }
    // Second MMC client: single-block metadata-style IO.
    if (!svc.Invoke(mmc2.session, kMmcEntry, BlockArgs(&mmc2, kMmcRwWrite, 1, &block_buf))
             .ok()) {
      ++mixed_failures;
    }
    // Camera one-shot every 4th round (captures dominate virtual time).
    if ((round % 4) == 0) {
      ReplayArgs cam_args;
      cam_args.scalars = {{"frame", 1}, {"resolution", 720}, {"buf_size", cam_buf.size()}};
      cam_args.buffers["buf"] = BufferView{cam_buf.data(), cam_buf.size()};
      cam_args.buffers["img_size"] = BufferView{img_size.data(), img_size.size()};
      if (!svc.Invoke(*cam_sid, kCameraEntry, cam_args).ok()) {
        ++mixed_failures;
      }
    }
    svc.ProcessQueued();
    if (req1 != 0 && !svc.TakeCompletion(req1).ok()) {
      ++mixed_failures;
    }
    if (req2 != 0 && !svc.TakeCompletion(req2).ok()) {
      ++mixed_failures;
    }
  }
  double elapsed_s = static_cast<double>(tb.clock().now_us() - t0) / 1e6;

  MetricsRegistry& m = Telemetry::Get().metrics();
  uint64_t ops = m.counter("service.invokes").value();
  std::printf("mixed phase: %llu invokes over 4 sessions in %.2f simulated s "
              "(%llu failures)\n",
              static_cast<unsigned long long>(ops), elapsed_s,
              static_cast<unsigned long long>(mixed_failures));
  std::printf("sessions open=%zu, driverlets=%zu, queue backlog=%zu\n",
              svc.open_sessions(), svc.registered_driverlets(), svc.queue_backlog());
  for (SessionId sid : {mmc.session, mmc2.session, usb.session, *cam_sid}) {
    Result<SessionStats> st = svc.Stats(sid);
    if (st.ok()) {
      std::printf("  session %llu (%s): invokes=%llu failures=%llu events=%llu "
                  "resets=%llu queued=%llu\n",
                  static_cast<unsigned long long>(sid), st->driverlet.c_str(),
                  static_cast<unsigned long long>(st->invokes),
                  static_cast<unsigned long long>(st->failures),
                  static_cast<unsigned long long>(st->events_executed),
                  static_cast<unsigned long long>(st->resets),
                  static_cast<unsigned long long>(st->submitted));
    }
  }

  // ---- BENCH_replay_service.json: the perf trajectory for future PRs ----
  FILE* f = std::fopen("BENCH_replay_service.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_replay_service.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"ops\": %llu,\n", static_cast<unsigned long long>(ops));
  std::fprintf(f, "  \"failures\": %llu,\n",
               static_cast<unsigned long long>(mixed_failures));
  std::fprintf(f, "  \"simulated_seconds\": %.3f,\n", elapsed_s);
  PrintHistJson(f, "invoke_latency_us", m.histogram("service.invoke_us"), ",");
  PrintHistJson(f, "queue_wait_us", m.histogram("service.queue_wait_us"), ",");
  std::fprintf(f, "  \"per_driverlet_invokes\": {\"mmc\": %llu, \"usb\": %llu, \"camera\": %llu},\n",
               static_cast<unsigned long long>(m.counter("service.invokes.mmc").value()),
               static_cast<unsigned long long>(m.counter("service.invokes.usb").value()),
               static_cast<unsigned long long>(m.counter("service.invokes.camera").value()));
  std::fprintf(f,
               "  \"selection\": {\"templates_small\": %zu, \"scans_per_invoke_small\": %.2f, "
               "\"templates_large\": %zu, \"scans_per_invoke_large\": %.2f}\n",
               pop1, scans1, pop2, scans2);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_replay_service.json\n");
  return 0;
}
