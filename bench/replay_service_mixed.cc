// Mixed-traffic service benchmark: one SecureWorld + ReplayService serving MMC
// block IO, USB storage and camera captures through concurrently open sessions
// — the production shape the session refactor targets. Two measurements:
//
//  1. Selection scaling: the same MMC request stream is replayed against a
//     store holding only the MMC package, then again after USB + camera +
//     display + touch more than double the template population. With the
//     (driverlet, entry)-indexed TemplateStore the candidates examined per
//     invoke must stay flat.
//  2. Mixed traffic: MMC/USB/camera sessions interleaved round-robin, half the
//     block requests through the bounded FIFO queue, half direct. Per-session
//     stats and the service invoke-latency histogram (virtual time) feed
//     BENCH_replay_service.json so future PRs have a perf trajectory.
//  3. Switch amortization (--batch 1,8,64): the same MMC command stream is
//     driven through the per-session invocation ring at each
//     commands-per-doorbell size, plus once through plain Invoke (the
//     pre-ring path). Measures world switches per command, model time per
//     command and the in-batch queue-wait p50/p99, and self-checks that every
//     configuration produces digest-identical read-back bytes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/workload/deploy_util.h"
#include "src/obs/telemetry.h"
#include "src/tee/replay_service.h"

namespace dlt {
namespace {

constexpr int kSelectionInvokes = 200;
constexpr int kMixedRounds = 120;
constexpr size_t kAmortCommands = 128;   // divisible by every default batch size
constexpr size_t kAmortBlocks = 8;       // blocks per command
constexpr size_t kAmortBytes = kAmortBlocks * 512;

struct BlockClient {
  SessionId session = 0;
  const char* entry = nullptr;
  uint64_t next_blkid = 2048;
};

ReplayArgs BlockArgs(BlockClient* c, uint64_t rw, uint64_t blkcnt, std::vector<uint8_t>* buf) {
  ReplayArgs args;
  args.scalars = {{"rw", rw}, {"blkcnt", blkcnt}, {"blkid", c->next_blkid}, {"flag", 0}};
  args.buffers["buf"] = BufferView{buf->data(), static_cast<size_t>(blkcnt) * 512};
  c->next_blkid += 4096;
  return args;
}

// Drives the recorded MMC granularities in a fixed cycle; returns scans/invoke.
double SelectionPhase(ReplayService* svc, BlockClient* mmc, std::vector<uint8_t>* buf) {
  const uint64_t sizes[] = {1, 8, 32, 128, 256};
  uint64_t scans0 = svc->store().candidates_scanned();
  int ok = 0;
  for (int i = 0; i < kSelectionInvokes; ++i) {
    uint64_t blkcnt = sizes[i % 5];
    uint64_t rw = (i % 2) == 0 ? kMmcRwRead : kMmcRwWrite;
    if (svc->Invoke(mmc->session, mmc->entry, BlockArgs(mmc, rw, blkcnt, buf)).ok()) {
      ++ok;
    }
  }
  if (ok != kSelectionInvokes) {
    std::fprintf(stderr, "selection phase: %d/%d invokes failed\n", kSelectionInvokes - ok,
                 kSelectionInvokes);
  }
  return static_cast<double>(svc->store().candidates_scanned() - scans0) /
         kSelectionInvokes;
}

// Histograms are process-global and not copyable; the amortization phase also
// drives a service, so snapshot the mixed-phase values before it runs.
struct HistSnap {
  uint64_t count = 0;
  double mean = 0;
  uint64_t p50 = 0, p90 = 0, p99 = 0, max = 0;
};

HistSnap Snap(const Histogram& h) {
  return HistSnap{h.count(), h.mean(), h.Percentile(50), h.Percentile(90), h.Percentile(99),
                  h.max()};
}

void PrintHistJson(FILE* f, const char* key, const HistSnap& h, const char* suffix) {
  std::fprintf(f,
               "  \"%s\": {\"count\": %llu, \"mean\": %.1f, \"p50\": %llu, "
               "\"p90\": %llu, \"p99\": %llu, \"max\": %llu}%s\n",
               key, static_cast<unsigned long long>(h.count), h.mean,
               static_cast<unsigned long long>(h.p50),
               static_cast<unsigned long long>(h.p90),
               static_cast<unsigned long long>(h.p99),
               static_cast<unsigned long long>(h.max), suffix);
}

// ---- Phase 4: world-switch amortization across commands-per-doorbell ----

// Equal digests <=> byte-identical read-back data across configurations.
uint64_t Fnv1a(uint64_t h, const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}
constexpr uint64_t kFnvSeed = 1469598103934665603ull;

struct AmortResult {
  bool ring = false;          // ring doorbells vs plain Invoke (pre-ring path)
  size_t batch = 1;           // commands per doorbell
  uint64_t failures = 0;
  uint64_t world_switches = 0;
  double switches_per_cmd = 0;
  double us_per_cmd = 0;      // virtual model time per command
  uint64_t wait_p50 = 0;      // in-batch queue wait (ring.queue_wait_us)
  uint64_t wait_p99 = 0;
  uint64_t digest = 0;        // FNV-1a over every read command's buffer
};

// The fixed stream: command i writes a seeded pattern (even i) or reads the
// block pair written by command i-1 (odd i), 8 blocks per command. Within one
// doorbell batch the service executes in push order, so a read always lands
// after its write.
ReplayArgs AmortArgs(size_t i, std::vector<uint8_t>* pool) {
  uint8_t* slice = pool->data() + i * kAmortBytes;
  bool write = (i % 2) == 0;
  if (write) {
    std::vector<uint8_t> pat = PatternBuf(kAmortBytes, 0x1000 + i);
    std::memcpy(slice, pat.data(), kAmortBytes);
  } else {
    std::memset(slice, 0, kAmortBytes);
  }
  ReplayArgs args;
  args.scalars = {{"rw", write ? kMmcRwWrite : kMmcRwRead},
                  {"blkcnt", kAmortBlocks},
                  {"blkid", 2048 + (i / 2) * kAmortBlocks},
                  {"flag", 0}};
  args.buffers["buf"] = BufferView{slice, kAmortBytes};
  return args;
}

AmortResult RunAmortConfig(const std::vector<uint8_t>& mmc_pkg, size_t batch, bool ring) {
  AmortResult res;
  res.ring = ring;
  res.batch = batch;
  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed tb{opts};
  ReplayServiceConfig cfg;
  cfg.ring_depth = kAmortCommands;  // the sweep never backpressures
  ReplayService svc(&tb.tee(), kDeveloperKey, cfg);
  if (!svc.RegisterDriverlet(mmc_pkg.data(), mmc_pkg.size()).ok()) {
    res.failures = kAmortCommands;
    return res;
  }
  Result<SessionId> sid = svc.OpenSession("mmc");
  if (!sid.ok()) {
    res.failures = kAmortCommands;
    return res;
  }
  Histogram& wait = Telemetry::Get().metrics().histogram("ring.queue_wait_us");
  wait.Reset();  // isolate this configuration's in-batch waits

  std::vector<uint8_t> pool(kAmortCommands * kAmortBytes, 0);
  uint64_t sw0 = tb.tee().world_switches();
  uint64_t t0 = tb.clock().now_us();
  size_t done = 0;
  while (done < kAmortCommands) {
    size_t n = batch < kAmortCommands - done ? batch : kAmortCommands - done;
    if (ring) {
      for (size_t j = 0; j < n; ++j) {
        if (!svc.RingPush(*sid, kMmcEntry, AmortArgs(done + j, &pool)).ok()) {
          ++res.failures;
        }
      }
      Result<size_t> ran = svc.RingDoorbell(*sid);
      if (!ran.ok() || *ran != n) {
        ++res.failures;
      }
      for (size_t j = 0; j < n; ++j) {
        Result<RingCompletion> c = svc.RingPop(*sid);
        if (!c.ok() || !c->result.ok()) {
          ++res.failures;
        }
      }
    } else {
      // Pre-ring shape: one synchronous Invoke per command.
      for (size_t j = 0; j < n; ++j) {
        if (!svc.Invoke(*sid, kMmcEntry, AmortArgs(done + j, &pool)).ok()) {
          ++res.failures;
        }
      }
    }
    done += n;
  }
  res.world_switches = tb.tee().world_switches() - sw0;
  res.switches_per_cmd = static_cast<double>(res.world_switches) / kAmortCommands;
  res.us_per_cmd = static_cast<double>(tb.clock().now_us() - t0) / kAmortCommands;
  res.wait_p50 = wait.Percentile(50);
  res.wait_p99 = wait.Percentile(99);
  res.digest = kFnvSeed;
  for (size_t i = 1; i < kAmortCommands; i += 2) {
    res.digest = Fnv1a(res.digest, pool.data() + i * kAmortBytes, kAmortBytes);
  }
  return res;
}

}  // namespace
}  // namespace dlt

int main(int argc, char** argv) {
  using namespace dlt;
  Telemetry::Get().Enable();  // metrics sourced from src/obs (virtual time)

  // --batch N[,N...] selects the commands-per-doorbell sweep (default 1,8,64).
  std::vector<size_t> batches = {1, 8, 64};
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    std::string list;
    if (arg == "--batch" && a + 1 < argc) {
      list = argv[++a];
    } else if (arg.rfind("--batch=", 0) == 0) {
      list = arg.substr(8);
    } else {
      std::fprintf(stderr, "usage: %s [--batch N[,N...]]\n", argv[0]);
      return 2;
    }
    batches.clear();
    for (size_t pos = 0; pos < list.size();) {
      size_t comma = list.find(',', pos);
      if (comma == std::string::npos) {
        comma = list.size();
      }
      size_t b = static_cast<size_t>(std::strtoull(list.c_str() + pos, nullptr, 10));
      if (b == 0 || b > kAmortCommands) {
        std::fprintf(stderr, "batch sizes must be in [1, %zu]\n", kAmortCommands);
        return 2;
      }
      batches.push_back(b);
      pos = comma + 1;
    }
    if (batches.empty()) {
      std::fprintf(stderr, "--batch needs at least one size\n");
      return 2;
    }
  }

  std::printf("Session-oriented replay service: mixed MMC + USB + camera traffic\n\n");
  std::vector<uint8_t> mmc_pkg = BuildMmcPackage();
  std::vector<uint8_t> usb_pkg = BuildUsbPackage();
  std::vector<uint8_t> cam_pkg = BuildCameraPackage();
  std::vector<uint8_t> disp_pkg = BuildDisplayPackage();
  std::vector<uint8_t> touch_pkg = BuildTouchPackage();
  if (mmc_pkg.empty() || usb_pkg.empty() || cam_pkg.empty() || disp_pkg.empty() ||
      touch_pkg.empty()) {
    std::fprintf(stderr, "record campaigns failed\n");
    return 1;
  }

  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed tb{opts};
  ReplayServiceConfig cfg;
  cfg.max_sessions = 8;
  cfg.queue_depth = 64;
  ReplayService svc(&tb.tee(), kDeveloperKey, cfg);

  // ---- Phase 1: MMC alone ----
  if (!svc.RegisterDriverlet(mmc_pkg.data(), mmc_pkg.size()).ok()) {
    return 1;
  }
  Result<SessionId> mmc_sid = svc.OpenSession("mmc");
  if (!mmc_sid.ok()) {
    return 1;
  }
  BlockClient mmc{*mmc_sid, kMmcEntry};
  std::vector<uint8_t> block_buf(256 * 512, 0x5c);
  size_t pop1 = svc.store().template_count();
  double scans1 = SelectionPhase(&svc, &mmc, &block_buf);

  // ---- Phase 2: population more than doubles; same request stream ----
  if (!svc.RegisterDriverlet(usb_pkg.data(), usb_pkg.size()).ok() ||
      !svc.RegisterDriverlet(cam_pkg.data(), cam_pkg.size()).ok() ||
      !svc.RegisterDriverlet(disp_pkg.data(), disp_pkg.size()).ok() ||
      !svc.RegisterDriverlet(touch_pkg.data(), touch_pkg.size()).ok()) {
    return 1;
  }
  size_t pop2 = svc.store().template_count();
  double scans2 = SelectionPhase(&svc, &mmc, &block_buf);
  std::printf("selection cost: %.1f candidates/invoke over %zu templates, "
              "%.1f over %zu templates (flat = index works)\n",
              scans1, pop1, scans2, pop2);

  // ---- Phase 3: mixed traffic through 4 sessions ----
  Result<SessionId> mmc2_sid = svc.OpenSession("mmc");
  Result<SessionId> usb_sid = svc.OpenSession("usb");
  Result<SessionId> cam_sid = svc.OpenSession("camera");
  if (!mmc2_sid.ok() || !usb_sid.ok() || !cam_sid.ok()) {
    return 1;
  }
  BlockClient mmc2{*mmc2_sid, kMmcEntry};
  BlockClient usb{*usb_sid, kUsbEntry};
  std::vector<uint8_t> usb_buf(256 * 512, 0x33);
  std::vector<uint8_t> cam_buf(Vc4Firmware::FrameBytes(1440) + 4096, 0);
  std::vector<uint8_t> img_size(4, 0);

  uint64_t t0 = tb.clock().now_us();
  uint64_t mixed_failures = 0;
  for (int round = 0; round < kMixedRounds; ++round) {
    // Two block clients alternate direct invokes with the FIFO queue path.
    uint64_t req1 = 0;
    uint64_t req2 = 0;
    if ((round % 2) == 0) {
      Result<uint64_t> r1 =
          svc.Submit(mmc.session, kMmcEntry, BlockArgs(&mmc, kMmcRwWrite, 32, &block_buf));
      Result<uint64_t> r2 =
          svc.Submit(usb.session, kUsbEntry, BlockArgs(&usb, kMmcRwWrite, 8, &usb_buf));
      req1 = r1.ok() ? *r1 : 0;
      req2 = r2.ok() ? *r2 : 0;
    } else {
      if (!svc.Invoke(mmc.session, kMmcEntry, BlockArgs(&mmc, kMmcRwRead, 32, &block_buf))
               .ok()) {
        ++mixed_failures;
      }
      if (!svc.Invoke(usb.session, kUsbEntry, BlockArgs(&usb, kMmcRwRead, 8, &usb_buf))
               .ok()) {
        ++mixed_failures;
      }
    }
    // Second MMC client: single-block metadata-style IO.
    if (!svc.Invoke(mmc2.session, kMmcEntry, BlockArgs(&mmc2, kMmcRwWrite, 1, &block_buf))
             .ok()) {
      ++mixed_failures;
    }
    // Camera one-shot every 4th round (captures dominate virtual time).
    if ((round % 4) == 0) {
      ReplayArgs cam_args;
      cam_args.scalars = {{"frame", 1}, {"resolution", 720}, {"buf_size", cam_buf.size()}};
      cam_args.buffers["buf"] = BufferView{cam_buf.data(), cam_buf.size()};
      cam_args.buffers["img_size"] = BufferView{img_size.data(), img_size.size()};
      if (!svc.Invoke(*cam_sid, kCameraEntry, cam_args).ok()) {
        ++mixed_failures;
      }
    }
    svc.ProcessQueued();
    if (req1 != 0 && !svc.TakeCompletion(req1).ok()) {
      ++mixed_failures;
    }
    if (req2 != 0 && !svc.TakeCompletion(req2).ok()) {
      ++mixed_failures;
    }
  }
  double elapsed_s = static_cast<double>(tb.clock().now_us() - t0) / 1e6;

  MetricsRegistry& m = Telemetry::Get().metrics();
  uint64_t ops = m.counter("service.invokes").value();
  std::printf("mixed phase: %llu invokes over 4 sessions in %.2f simulated s "
              "(%llu failures)\n",
              static_cast<unsigned long long>(ops), elapsed_s,
              static_cast<unsigned long long>(mixed_failures));
  std::printf("sessions open=%zu, driverlets=%zu, queue backlog=%zu\n",
              svc.open_sessions(), svc.registered_driverlets(), svc.queue_backlog());
  for (SessionId sid : {mmc.session, mmc2.session, usb.session, *cam_sid}) {
    Result<SessionStats> st = svc.Stats(sid);
    if (st.ok()) {
      std::printf("  session %llu (%s): invokes=%llu failures=%llu events=%llu "
                  "resets=%llu queued=%llu\n",
                  static_cast<unsigned long long>(sid), st->driverlet.c_str(),
                  static_cast<unsigned long long>(st->invokes),
                  static_cast<unsigned long long>(st->failures),
                  static_cast<unsigned long long>(st->events_executed),
                  static_cast<unsigned long long>(st->resets),
                  static_cast<unsigned long long>(st->submitted));
    }
  }

  // Snapshot the mixed-phase metrics before the amortization phase drives
  // more service traffic through the same process-global registry.
  HistSnap invoke_snap = Snap(m.histogram("service.invoke_us"));
  HistSnap queue_snap = Snap(m.histogram("service.queue_wait_us"));
  uint64_t inv_mmc = m.counter("service.invokes.mmc").value();
  uint64_t inv_usb = m.counter("service.invokes.usb").value();
  uint64_t inv_cam = m.counter("service.invokes.camera").value();

  // ---- Phase 4: switch amortization sweep ----
  std::printf("\nswitch amortization (%zu MMC commands, 2 switches per doorbell):\n",
              kAmortCommands);
  std::vector<AmortResult> amort;
  amort.push_back(RunAmortConfig(mmc_pkg, 1, /*ring=*/false));  // pre-ring baseline
  for (size_t b : batches) {
    amort.push_back(RunAmortConfig(mmc_pkg, b, /*ring=*/true));
  }
  bool digest_match = true;
  bool amort_ok = true;
  const AmortResult& direct = amort[0];
  for (const AmortResult& r : amort) {
    std::printf("  %-6s batch=%-3zu switches/cmd=%.4f us/cmd=%-9.2f wait p50/p99=%llu/%llu"
                " digest=%016llx%s\n",
                r.ring ? "ring" : "direct", r.batch, r.switches_per_cmd, r.us_per_cmd,
                static_cast<unsigned long long>(r.wait_p50),
                static_cast<unsigned long long>(r.wait_p99),
                static_cast<unsigned long long>(r.digest),
                r.failures != 0 ? " FAILURES" : "");
    if (r.failures != 0) {
      std::fprintf(stderr, "amortization: %llu command failures at batch %zu\n",
                   static_cast<unsigned long long>(r.failures), r.batch);
      amort_ok = false;
    }
    if (r.digest != direct.digest) {
      digest_match = false;  // batched replay must not change a single byte
    }
    // Switch count must amortize exactly: two per doorbell, ceil(M/B) doorbells.
    uint64_t doorbells = (kAmortCommands + r.batch - 1) / r.batch;
    if (r.world_switches != 2 * doorbells) {
      std::fprintf(stderr, "amortization: batch %zu charged %llu switches, expected %llu\n",
                   r.batch, static_cast<unsigned long long>(r.world_switches),
                   static_cast<unsigned long long>(2 * doorbells));
      amort_ok = false;
    }
    // Any real batching must beat the unbatched per-command model time.
    if (r.batch > 1 && r.us_per_cmd >= direct.us_per_cmd) {
      std::fprintf(stderr, "amortization: batch %zu us/cmd %.2f not below unbatched %.2f\n",
                   r.batch, r.us_per_cmd, direct.us_per_cmd);
      amort_ok = false;
    }
  }
  if (!digest_match) {
    std::fprintf(stderr, "amortization: read-back digests diverge across batch sizes\n");
  }

  // ---- BENCH_replay_service.json: the perf trajectory for future PRs ----
  FILE* f = std::fopen("BENCH_replay_service.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_replay_service.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"ops\": %llu,\n", static_cast<unsigned long long>(ops));
  std::fprintf(f, "  \"failures\": %llu,\n",
               static_cast<unsigned long long>(mixed_failures));
  std::fprintf(f, "  \"simulated_seconds\": %.3f,\n", elapsed_s);
  PrintHistJson(f, "invoke_latency_us", invoke_snap, ",");
  PrintHistJson(f, "queue_wait_us", queue_snap, ",");
  std::fprintf(f, "  \"per_driverlet_invokes\": {\"mmc\": %llu, \"usb\": %llu, \"camera\": %llu},\n",
               static_cast<unsigned long long>(inv_mmc),
               static_cast<unsigned long long>(inv_usb),
               static_cast<unsigned long long>(inv_cam));
  std::fprintf(f,
               "  \"selection\": {\"templates_small\": %zu, \"scans_per_invoke_small\": %.2f, "
               "\"templates_large\": %zu, \"scans_per_invoke_large\": %.2f},\n",
               pop1, scans1, pop2, scans2);
  std::fprintf(f, "  \"amortization\": [\n");
  for (size_t i = 0; i < amort.size(); ++i) {
    const AmortResult& r = amort[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"batch\": %zu, \"commands\": %zu, "
                 "\"world_switches\": %llu, \"switches_per_command\": %.4f, "
                 "\"model_us_per_command\": %.2f, \"ring_wait_p50_us\": %llu, "
                 "\"ring_wait_p99_us\": %llu, \"digest\": \"%016llx\"}%s\n",
                 r.ring ? "ring" : "direct", r.batch, kAmortCommands,
                 static_cast<unsigned long long>(r.world_switches), r.switches_per_cmd,
                 r.us_per_cmd, static_cast<unsigned long long>(r.wait_p50),
                 static_cast<unsigned long long>(r.wait_p99),
                 static_cast<unsigned long long>(r.digest),
                 i + 1 < amort.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"amortization_digest_match\": %s\n", digest_match ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_replay_service.json\n");
  return (digest_match && amort_ok) ? 0 : 1;
}
