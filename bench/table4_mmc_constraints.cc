// Reproduces paper Table 4: key constraints and taint-sink operations of the
// single-block MMC template (RW_1) — which register each symbolized input is
// written to and with what accumulated operations.
#include <cstdio>
#include <map>

#include "src/workload/deploy_util.h"
#include "src/dev/mmc/mmc_controller.h"

namespace {

const char* MmcRegName(uint64_t off) {
  using namespace dlt;
  switch (off) {
    case kSdCmd: return "SDCMD";
    case kSdArg: return "SDARG";
    case kSdTout: return "SDTOUT";
    case kSdCdiv: return "SDCDIV";
    case kSdHsts: return "SDHSTS";
    case kSdVdd: return "SDVDD";
    case kSdEdm: return "SDEDM";
    case kSdHcfg: return "SDHCFG";
    case kSdHbct: return "SDHBCT";
    case kSdData: return "SDDATA";
    case kSdHblc: return "SDHBLC";
    default: return "REG";
  }
}

}  // namespace

int main() {
  using namespace dlt;
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> campaign = RecordMmcCampaign(&dev);
  if (!campaign.ok()) {
    return 1;
  }

  for (const char* name : {"RD_1", "WR_1"}) {
    const InteractionTemplate* tpl = nullptr;
    for (const auto& t : campaign->templates()) {
      if (t.name == name) {
        tpl = &t;
      }
    }
    if (tpl == nullptr) {
      continue;
    }
    std::printf("Table 4: key constraints and operations of the %s template\n", name);
    PrintRule();
    std::printf("Input constraints (template selection):\n");
    // Group the initial-constraint atoms by the parameter they mention.
    for (const auto& p : tpl->ScalarParams()) {
      std::string conj;
      for (const auto& atom : tpl->initial.atoms()) {
        std::set<std::string> syms;
        atom.lhs->CollectInputs(&syms);
        atom.rhs->CollectInputs(&syms);
        if (syms.count(p)) {
          if (!conj.empty()) {
            conj += " && ";
          }
          conj += atom.ToString();
        }
      }
      if (!conj.empty()) {
        std::printf("  %-8s : %s\n", p.c_str(), conj.c_str());
      }
    }
    std::printf("\nTaint sinks & operations (parameter-dependent register writes):\n");
    std::map<std::string, std::string> sinks;
    for (const auto& e : tpl->events) {
      if (e.kind != EventKind::kRegWrite || e.value == nullptr || e.value->is_const()) {
        continue;
      }
      std::set<std::string> syms;
      e.value->CollectInputs(&syms);
      bool has_param = false;
      for (const auto& p : tpl->ScalarParams()) {
        if (syms.count(p)) {
          has_param = true;
        }
      }
      if (has_param && e.device == dev.mmc_id()) {
        sinks[MmcRegName(e.reg_off)] = e.value->ToString();
      }
    }
    for (const auto& [reg, expr] : sinks) {
      std::printf("  %-8s = %s\n", reg.c_str(), expr.c_str());
    }
    std::printf("\n");
  }

  std::printf("Paper reference (Table 4):\n");
  std::printf("  rw      : =0x1(RD)|0x10(WR)          -> SDCMD = ((0x8000)|((rw)<<6))\n");
  std::printf("  blkcnt  : >=0 && <=0x8 (&& <=0x400)  -> SDHBLC = blkcnt\n");
  std::printf("  blkid   : >=0 && <=0x1df77f8         -> SDARG  = blkid & (~0x7)\n");
  return 0;
}
