// Reproduces paper Table 6: key constraints and operations of input values for
// the camera driverlet — the MBOX_WRITE taint sink of the queue base, the
// buf_size >= img_size constraint, and the img_size round-trip (it is assigned
// by VC4, sent back in the bulk-receive request, and must exactly match the
// transmission size VC4 later reports).
#include <cstdio>

#include "src/workload/deploy_util.h"
#include "src/dev/vc4/vchiq_proto.h"

int main() {
  using namespace dlt;
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> campaign = RecordCameraCampaign(&dev);
  if (!campaign.ok()) {
    return 1;
  }
  const InteractionTemplate* tpl = nullptr;
  for (const auto& t : campaign->templates()) {
    if (t.name == "OneShot") {
      tpl = &t;
    }
  }
  if (tpl == nullptr) {
    return 1;
  }

  std::printf("Table 6: key constraints and operations of input values for Camera\n");
  std::printf("(from the OneShot template; queue and pg_list are from dma_alloc)\n");
  PrintRule();

  std::printf("MBOX_WRITE sink (queue base handed to VC4):\n");
  for (const auto& e : tpl->events) {
    if (e.kind == EventKind::kRegWrite && e.reg_off == kMboxWrite && e.value != nullptr &&
        !e.value->is_const()) {
      std::printf("  MBOX_WRITE = %s\n", e.value->ToString().c_str());
    }
  }

  std::printf("\nDMA allocations (state-changing; fixed number per template):\n");
  for (const auto& e : tpl->events) {
    if (e.kind == EventKind::kDmaAlloc) {
      std::printf("  %-6s = dma_alloc(%s)%s\n", e.bind.c_str(),
                  e.value != nullptr ? e.value->ToString().c_str() : "?",
                  e.constraint.empty() ? "" : ("  with " + e.constraint.ToString()).c_str());
    }
  }

  std::printf("\nState-changing shared-memory inputs and their constraints:\n");
  int shown = 0;
  for (const auto& e : tpl->events) {
    if ((e.kind == EventKind::kShmRead || e.kind == EventKind::kPollShm) && e.state_changing) {
      if (e.kind == EventKind::kPollShm) {
        std::printf("  poll %-28s until (v & 0x%x) %s 0x%x   [lifted loop, %u iters recorded]\n",
                    e.addr->ToString().c_str(), e.mask, CmpToken(e.poll_cmp), e.want,
                    e.recorded_iters);
      } else if (!e.constraint.empty()) {
        std::printf("  %-6s = read(%s) with %s\n", e.bind.c_str(), e.addr->ToString().c_str(),
                    e.constraint.ToString().c_str());
        ++shown;
      }
    }
    if (shown > 14) {
      std::printf("  ... (%d more)\n", tpl->CountEvents().input - shown);
      break;
    }
  }

  std::printf("\nimg_size round trip (paper: 'img_size must exactly match'):\n");
  for (const auto& e : tpl->events) {
    if (e.kind == EventKind::kShmWrite && e.value != nullptr && !e.value->is_const()) {
      std::set<std::string> syms;
      e.value->CollectInputs(&syms);
      bool from_device = false;
      for (const auto& s : syms) {
        if (s.rfind("din", 0) == 0) {
          from_device = true;
        }
      }
      if (from_device) {
        std::printf("  write(%s) = %s   (device-assigned value sent back to VC4)\n",
                    e.addr->ToString().c_str(), e.value->ToString().c_str());
      }
    }
  }

  std::printf("\nPaper reference (Table 6):\n");
  std::printf("  resolution : = 720p|1080p|1440p       -> (queue+0x239c0) = resolution\n");
  std::printf("  buf_size   : >= img_size              -> (queue+0x24000) = buf_size\n");
  std::printf("  img_size   : >= 0 && =(queue+0x5630)  -> (queue+0x5e86) = img_size,\n");
  std::printf("                                           (pg_list+0x0) = img_size\n");
  std::printf("  pg_list    : != NULL                  -> (queue+0x24198) = pg_list\n");
  std::printf("  queue      : != NULL                  -> MBOX_WRITE = queue & ~(0x3fff)\n");
  return 0;
}
