// Baseline comparison beyond the paper's figures (related-work ablation):
// secure IO through driverlets vs the status-quo alternative of delegating IO
// to the untrusted OS [paper refs 24, 28, 46]. Delegation is fast (the OS keeps
// its page cache) but exposes every plaintext byte to the OS; driverlets keep
// exposure at zero for a bounded throughput cost.
#include <cstdio>

#include "src/workload/deploy_util.h"
#include "src/workload/delegated_block_device.h"
#include "src/workload/minidb.h"
#include "src/workload/replay_block_device.h"
#include "src/workload/sqlite_scripts.h"

int main() {
  using namespace dlt;
  std::printf("Delegation baseline: driverlet secure IO vs trustlet->OS delegation\n\n");
  std::vector<uint8_t> pkg = BuildMmcPackage();
  if (pkg.empty()) {
    return 1;
  }

  std::printf("%-10s  %14s %14s %16s\n", "script", "driverlet", "delegated", "bytes exposed");
  std::printf("%-10s  %14s %14s %16s\n", "", "(IOPS)", "(IOPS)", "to the OS");
  PrintRule(62);
  for (const std::string& script : SqliteScriptNames()) {
    // Driverlet path (in-TEE replay).
    double dlt_iops = 0;
    {
      Deployment d = MakeDeployment(pkg);
      ReplayBlockDevice rdev(d.service.get(), d.session, kMmcEntry);
      CountingBlockDevice counter(&rdev);
      MiniDb db(&counter);
      if (!Ok(db.Open()) || !Ok(PopulateDb(&db, 600, 11))) {
        return 1;
      }
      Result<ScriptResult> r = RunSqliteScript(script, &db, &counter, &d.tb->clock(), 40, 99);
      if (!r.ok()) {
        return 1;
      }
      dlt_iops = r->iops();
    }
    // Delegation path: SMC to the OS, which serves the request natively.
    double del_iops = 0;
    uint64_t exposed = 0;
    {
      Rpi3Testbed tb{TestbedOptions{}};
      PageCacheBlockDevice os_cache(&tb.mmc_driver(), &tb.machine(),
                                    PageCacheBlockDevice::SyncMode::kWriteback, 10);
      DelegatedBlockDevice delegated(&os_cache, &tb.machine());
      CountingBlockDevice counter(&delegated);
      MiniDb db(&counter);
      if (!Ok(db.Open()) || !Ok(PopulateDb(&db, 600, 11))) {
        return 1;
      }
      uint64_t exposed0 = delegated.exposed_bytes();
      Result<ScriptResult> r = RunSqliteScript(script, &db, &counter, &tb.clock(), 40, 99);
      if (!r.ok()) {
        return 1;
      }
      del_iops = r->iops();
      exposed = delegated.exposed_bytes() - exposed0;
    }
    std::printf("%-10s  %14.0f %14.0f %13.1f MB\n", script.c_str(), dlt_iops, del_iops,
                static_cast<double>(exposed) / 1e6);
  }
  PrintRule(62);
  std::printf(
      "\nDelegation matches native throughput (it IS the native path plus two world\n"
      "switches per request) but the OS observes the entire plaintext IO stream —\n"
      "the leak driverlets close while staying within the paper's 1.4-2.7x overhead.\n");
  return 0;
}
