// Reproduces paper Table 5: event breakdown of the 3 camera interaction
// templates (OneShot / ShortBurst / LongBurst) — 9 record runs (3 frame counts
// x 3 resolutions) merging into 3 templates because the driver's transition
// path is resolution-independent (§6.3.2).
#include <cstdio>

#include "src/workload/deploy_util.h"

int main() {
  using namespace dlt;
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> campaign = RecordCameraCampaign(&dev);
  if (!campaign.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", StatusName(campaign.status()));
    return 1;
  }

  std::printf("Table 5: events breakdown of %zu interaction templates\n",
              campaign->templates().size());
  std::printf("replay entry: replay_camera(frame, resolution, buf, buf_size, img_size)\n");
  std::printf("record campaign: capture 1/10/100 frames at 720p/1080p/1440p (9 runs)\n");
  PrintRule();
  std::printf("%-8s  %-10s %-12s %-10s\n", "Events", "OneShot", "ShortBurst", "LongBurst");
  PrintRule();
  auto find = [&](const std::string& name) -> const InteractionTemplate* {
    for (const auto& t : campaign->templates()) {
      if (t.name == name) {
        return &t;
      }
    }
    return nullptr;
  };
  const char* kNames[] = {"OneShot", "ShortBurst", "LongBurst"};
  const char* kRows[] = {"Input", "Output", "Meta"};
  for (int row = 0; row < 3; ++row) {
    std::printf("%-8s", kRows[row]);
    for (const char* n : kNames) {
      const InteractionTemplate* t = find(n);
      int v = 0;
      if (t != nullptr) {
        EventBreakdown b = t->CountEvents();
        v = row == 0 ? b.input : row == 1 ? b.output : b.meta;
      }
      std::printf("  %-10d", v);
    }
    std::printf("\n");
  }
  PrintRule();
  std::printf("\nCumulative coverage: %s\n", campaign->CoverageReport().c_str());
  std::printf("(resolution is unconstrained in the templates: all supported resolutions\n"
              " replay through the same transition path; unsupported ones diverge at the\n"
              " VC4 ack status check)\n");
  return 0;
}
