// Interpreted vs compiled replay: runs the same request stream against each
// driverlet class (MMC, USB, camera) under both engines and reports the
// deterministic CPU cost model per invoke (interpreter: kReplayInterpEventNs
// per event; compiled: kCompiledOpNs per op + kCompiledWordNs per covered
// word). Every number is integer arithmetic over the model — two runs emit
// byte-identical BENCH_replay_compiled.json, which CI checks with cmp.
//
// Built-in guards (CI runs this binary): the compiled model cost must be
// strictly below the interpreted cost for every driverlet class, every
// compiled invoke must actually run compiled (no silent fallback), and each
// driverlet's program must execute at least one coalesced bulk op.
//
//   replay_compiled [--invokes N] [--out PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/workload/deploy_util.h"
#include "src/core/compiled_program.h"

namespace dlt {
namespace {

struct EngineTotals {
  uint64_t invokes = 0;
  uint64_t events = 0;
  uint64_t model_ns = 0;
  uint64_t bulk_ops = 0;
  uint64_t fallbacks = 0;  // compiled invokes that ran the interpreter
};

struct DriverletRow {
  std::string driverlet;
  EngineTotals interp;
  EngineTotals compiled;
};

ReplayArgs BlockArgs(int i, std::vector<uint8_t>* buf) {
  ReplayArgs args;
  args.scalars = {{"rw", (i % 2) == 0 ? kMmcRwRead : kMmcRwWrite},
                  {"blkcnt", 8},
                  {"blkid", 2048 + static_cast<uint64_t>(i) * 64},
                  {"flag", 0}};
  args.buffers["buf"] = BufferView{buf->data(), 8 * 512};
  return args;
}

ReplayArgs CameraArgs(std::vector<uint8_t>* buf, std::vector<uint8_t>* img_size) {
  ReplayArgs args;
  args.scalars = {{"frame", 1}, {"resolution", 720}, {"buf_size", buf->size()}};
  args.buffers["buf"] = BufferView{buf->data(), buf->size()};
  args.buffers["img_size"] = BufferView{img_size->data(), img_size->size()};
  return args;
}

bool RunEngine(Deployment* d, const std::string& driverlet, int invokes, ReplayEngine engine,
               EngineTotals* out) {
  d->replayer->set_engine(engine);
  std::vector<uint8_t> block_buf(8 * 512, 0x5c);
  std::vector<uint8_t> cam_buf;
  std::vector<uint8_t> img_size(4, 0);
  if (driverlet == "camera") {
    cam_buf.assign(Vc4Firmware::FrameBytes(1440) + 4096, 0);
  }
  for (int i = 0; i < invokes; ++i) {
    ReplayArgs args = driverlet == "camera" ? CameraArgs(&cam_buf, &img_size)
                                            : BlockArgs(i, &block_buf);
    const char* entry = driverlet == "camera" ? kCameraEntry
                        : driverlet == "usb"  ? kUsbEntry
                                              : kMmcEntry;
    Result<ReplayStats> r = d->service->Invoke(d->session, entry, args);
    if (!r.ok()) {
      std::fprintf(stderr, "FAIL: %s invoke %d (%s engine): %s\n", driverlet.c_str(), i,
                   engine == ReplayEngine::kCompiled ? "compiled" : "interpreted",
                   StatusName(r.status()));
      return false;
    }
    ++out->invokes;
    out->events += r->events_executed;
    if (engine == ReplayEngine::kCompiled) {
      out->bulk_ops += r->bulk_ops;
      out->model_ns += r->cpu_model_ns;
      if (!r->compiled) {
        ++out->fallbacks;
      }
    } else {
      // The interpreter's deterministic model: one kReplayInterpEventNs charge
      // per executed event (what Executor bills to the virtual clock).
      out->model_ns += r->events_executed * kReplayInterpEventNs;
    }
  }
  return true;
}

uint64_t NsPerInvoke(const EngineTotals& t) {
  return t.invokes == 0 ? 0 : t.model_ns / t.invokes;
}

uint64_t EventsPerSec(const EngineTotals& t) {
  return t.model_ns == 0 ? 0 : (t.events * 1'000'000'000ull) / t.model_ns;
}

void PrintEngineJson(std::FILE* f, const char* key, const EngineTotals& t, const char* suffix) {
  std::fprintf(f,
               "    \"%s\": {\"invokes\": %llu, \"events\": %llu, \"model_ns_total\": %llu, "
               "\"ns_per_invoke\": %llu, \"events_per_sec\": %llu, \"bulk_ops\": %llu, "
               "\"fallbacks\": %llu}%s\n",
               key, static_cast<unsigned long long>(t.invokes),
               static_cast<unsigned long long>(t.events),
               static_cast<unsigned long long>(t.model_ns),
               static_cast<unsigned long long>(NsPerInvoke(t)),
               static_cast<unsigned long long>(EventsPerSec(t)),
               static_cast<unsigned long long>(t.bulk_ops),
               static_cast<unsigned long long>(t.fallbacks), suffix);
}

}  // namespace
}  // namespace dlt

int main(int argc, char** argv) {
  using namespace dlt;

  int invokes = 24;
  std::string out_path = "BENCH_replay_compiled.json";
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--invokes") == 0) {
      invokes = std::atoi(next("--invokes"));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next("--out");
    } else {
      std::fprintf(stderr, "usage: replay_compiled [--invokes N] [--out PATH]\n");
      return 2;
    }
  }
  if (invokes < 1) {
    std::fprintf(stderr, "--invokes must be >= 1\n");
    return 2;
  }

  std::printf("replay engines: interpreted vs compiled, %d invokes/engine/driverlet\n", invokes);
  PrintRule();

  const struct {
    const char* name;
    std::vector<uint8_t> (*build)();
  } classes[] = {
      {"mmc", BuildMmcPackage}, {"usb", BuildUsbPackage}, {"camera", BuildCameraPackage}};

  std::vector<DriverletRow> rows;
  for (const auto& cls : classes) {
    std::vector<uint8_t> pkg = cls.build();
    if (pkg.empty()) {
      std::fprintf(stderr, "FAIL: %s record campaign produced no package\n", cls.name);
      return 1;
    }
    Deployment d = MakeDeployment(pkg);
    if (d.session == 0 || d.replayer == nullptr) {
      std::fprintf(stderr, "FAIL: %s deployment failed\n", cls.name);
      return 1;
    }
    DriverletRow row;
    row.driverlet = cls.name;
    if (!RunEngine(&d, row.driverlet, invokes, ReplayEngine::kInterpreter, &row.interp) ||
        !RunEngine(&d, row.driverlet, invokes, ReplayEngine::kCompiled, &row.compiled)) {
      return 1;
    }
    std::printf("%-8s interpreted %8llu ns/invoke | compiled %8llu ns/invoke "
                "(%llu bulk ops, %llu events)\n",
                row.driverlet.c_str(),
                static_cast<unsigned long long>(NsPerInvoke(row.interp)),
                static_cast<unsigned long long>(NsPerInvoke(row.compiled)),
                static_cast<unsigned long long>(row.compiled.bulk_ops),
                static_cast<unsigned long long>(row.compiled.events));
    rows.push_back(std::move(row));
  }
  PrintRule();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"invokes_per_engine\": %d,\n", invokes);
  std::fprintf(f, "  \"model\": {\"interp_event_ns\": %llu, \"compiled_op_ns\": %llu, "
               "\"compiled_word_ns\": %llu},\n",
               static_cast<unsigned long long>(kReplayInterpEventNs),
               static_cast<unsigned long long>(kCompiledOpNs),
               static_cast<unsigned long long>(kCompiledWordNs));
  std::fprintf(f, "  \"driverlets\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "  {\n    \"driverlet\": \"%s\",\n", rows[i].driverlet.c_str());
    PrintEngineJson(f, "interpreted", rows[i].interp, ",");
    PrintEngineJson(f, "compiled", rows[i].compiled, "");
    std::fprintf(f, "  }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // Regression guards (the acceptance criteria, enforced where CI runs them).
  bool fail = false;
  for (const DriverletRow& r : rows) {
    if (r.compiled.model_ns >= r.interp.model_ns) {
      std::fprintf(stderr, "FAIL: %s compiled model cost not below interpreted (%llu >= %llu)\n",
                   r.driverlet.c_str(), static_cast<unsigned long long>(r.compiled.model_ns),
                   static_cast<unsigned long long>(r.interp.model_ns));
      fail = true;
    }
    if (r.compiled.bulk_ops == 0) {
      std::fprintf(stderr, "FAIL: %s compiled path executed no coalesced bulk op\n",
                   r.driverlet.c_str());
      fail = true;
    }
    if (r.compiled.fallbacks != 0) {
      std::fprintf(stderr, "FAIL: %s had %llu interpreter fallbacks under the compiled engine\n",
                   r.driverlet.c_str(), static_cast<unsigned long long>(r.compiled.fallbacks));
      fail = true;
    }
    if (r.compiled.events != r.interp.events) {
      std::fprintf(stderr, "FAIL: %s event counts differ across engines (%llu vs %llu)\n",
                   r.driverlet.c_str(), static_cast<unsigned long long>(r.compiled.events),
                   static_cast<unsigned long long>(r.interp.events));
      fail = true;
    }
  }
  return fail ? 1 : 0;
}
