// Reproduces paper Tables 7 and 8 (developer-effort inventories) to the extent
// they are measurable from artifacts: Table 7 counts the device knowledge a
// from-scratch driver needs (commands, transition paths, registers/fields,
// descriptors/fields) — we compute these from the recorded templates, which
// externalize exactly that knowledge. Table 8 (porting surface) is inherently
// about the Linux source tree; we print the paper's numbers for reference and
// our replayer-vs-gold-driver code-size contrast, which is the comparison the
// driverlet approach wins (§7.1).
#include <cstdio>
#include <set>

#include "src/workload/deploy_util.h"

namespace {

struct Inventory {
  std::set<uint64_t> commands;      // command opcodes observed at the device
  std::set<uint64_t> registers;     // distinct register offsets touched
  std::set<std::string> desc_fields;  // distinct shared-memory field addresses
  size_t paths = 0;                 // externalized transition paths (#templates)
};

// Command extraction is per-device: MMC commands are the low 6 bits of SDCMD
// writes; USB commands are SCSI opcodes in CBW byte 15; VCHIQ commands are
// message/MMAL types in headers and payload word 0.
Inventory Inspect(const dlt::RecordCampaign& campaign, const char* kind) {
  using namespace dlt;
  Inventory inv;
  inv.paths = campaign.templates().size();
  for (const auto& t : campaign.templates()) {
    for (const auto& e : t.events) {
      switch (e.kind) {
        case EventKind::kRegWrite:
        case EventKind::kRegRead:
        case EventKind::kPollReg:
        case EventKind::kPioIn:
        case EventKind::kPioOut:
          inv.registers.insert((static_cast<uint64_t>(e.device) << 32) | e.reg_off);
          if (std::string(kind) == "MMC" && e.kind == EventKind::kRegWrite && e.reg_off == 0x00) {
            if (e.value != nullptr && e.value->is_const()) {
              inv.commands.insert(e.value->constant() & 0x3f);
            } else if (e.value != nullptr) {
              // Symbolic command word: extract the constant index bits.
              Bindings b{{"rw", 1}};
              Result<uint64_t> v = e.value->Eval(b);
              if (v.ok()) {
                inv.commands.insert(*v & 0x3f);
              }
            }
          }
          break;
        case EventKind::kShmWrite:
        case EventKind::kShmRead:
        case EventKind::kPollShm:
          if (e.addr != nullptr) {
            inv.desc_fields.insert(e.addr->ToString());
          }
          if (std::string(kind) == "USB" && e.kind == EventKind::kShmWrite &&
              e.value != nullptr && e.value->is_const()) {
            uint64_t op = (e.value->constant() >> 24) & 0xff;
            if (op == 0x28 || op == 0x2a || op == 0x12 || op == 0x25 || op == 0x00) {
              inv.commands.insert(op);
            }
          }
          if (std::string(kind) == "VCHIQ" && e.kind == EventKind::kShmWrite &&
              e.value != nullptr && e.value->is_const()) {
            uint64_t v = e.value->constant();
            if ((v >> 24) != 0 && (v >> 24) <= 7 && (v & 0xffffff) == 0) {
              inv.commands.insert(v >> 24);  // VCHIQ message type
            } else if (v >= 1 && v <= 6) {
              inv.commands.insert(0x100 | v);  // MMAL message type
            }
          }
          break;
        default:
          break;
      }
    }
  }
  return inv;
}

}  // namespace

int main() {
  using namespace dlt;
  std::printf("Table 7: device knowledge needed to build each driver from scratch,\n");
  std::printf("measured from the recorded interaction templates (which externalize it)\n\n");
  std::printf("%-8s %6s %12s %12s %12s\n", "", "CMDs", "Trans.Paths", "Registers", "Desc.Fields");
  PrintRule(60);

  struct Row {
    const char* name;
    Inventory inv;
  };
  std::vector<Row> rows;
  {
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> c = RecordMmcCampaign(&dev);
    if (c.ok()) {
      rows.push_back({"MMC", Inspect(*c, "MMC")});
    }
  }
  {
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> c = RecordUsbCampaign(&dev);
    if (c.ok()) {
      rows.push_back({"USB", Inspect(*c, "USB")});
    }
  }
  {
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> c = RecordCameraCampaign(&dev);
    if (c.ok()) {
      rows.push_back({"VCHIQ", Inspect(*c, "VCHIQ")});
    }
  }
  for (const auto& r : rows) {
    std::printf("%-8s %6zu %12zu %12zu %12zu\n", r.name, r.inv.commands.size(), r.inv.paths,
                r.inv.registers.size(), r.inv.desc_fields.size());
  }
  PrintRule(60);
  std::printf("Paper Table 7: MMC 5 cmds/10 paths/17 regs(63 fields)/1 desc(8 fields);\n");
  std::printf("              USB 4/10/14(100)/4(32); VCHIQ 8/9/3(3)/10(104).\n");
  std::printf("(Descriptor fields here count distinct symbolic shared-memory addresses;\n");
  std::printf(" long-burst camera templates repeat per-frame fields, inflating the count.)\n");

  std::printf("\nTable 8 (porting surface of the full Linux drivers, from the paper):\n");
  std::printf("%-8s %10s %10s %8s %10s %6s\n", "", "Functions", "Dev.Conf.", "Macros",
              "Callbacks", "SLoC");
  PrintRule(60);
  std::printf("%-8s %10d %10d %8d %10d %6s\n", "MMC", 22, 11, 90, 79, "1K");
  std::printf("%-8s %10d %10d %8d %10d %6s\n", "USB", 58, 14, 427, 142, "3K");
  std::printf("%-8s %10d %10d %8d %10d %6s\n", "VCHIQ", 137, 9, 405, 159, "11K");
  PrintRule(60);
  std::printf(
      "\nThe driverlet contrast (paper §7.1): the replayer is ~1 KSLoC of TEE code and\n"
      "each driverlet is a data artifact (see bench/memory_overhead); the recorder\n"
      "and replayer are a one-time effort, each driverlet takes 1-3 days.\n");
  return 0;
}
