// Reproduces the paper's fault-injection validation (§7.2): unplug the storage
// medium amid a large replay transfer; the driverlet detects the divergence,
// re-executes with reset, gives up on the persistent failure, and reports the
// unexpected register values with the recording source lines. Also measures
// retry efficacy for transient faults.
#include <cstdio>

#include "src/workload/deploy_util.h"
#include "src/workload/replay_block_device.h"

int main() {
  using namespace dlt;
  std::printf("Fault injection (paper 7.2): unplugging the medium amid a 2K-block transfer\n\n");
  std::vector<uint8_t> pkg = BuildMmcPackage();
  if (pkg.empty()) {
    return 1;
  }

  {
    Deployment d = MakeDeployment(pkg);
    ReplayBlockDevice rdev(d.service.get(), d.session, kMmcEntry);
    std::vector<uint8_t> buf(2048 * 512, 0x77);
    // First chunk (256 blocks) succeeds; unplug before the second.
    Status s1 = rdev.Write(0, 256, buf.data());
    std::printf("chunk 1 (256 blocks): %s\n", StatusName(s1));
    d.tb->sd_medium().set_present(false);
    std::printf("-> medium unplugged\n");
    Status s2 = rdev.Write(256, 2048 - 256, buf.data() + 256 * 512);
    std::printf("remaining 1792 blocks: %s (attempts with reset exhausted)\n", StatusName(s2));

    const DivergenceReport& report = d.replayer->last_report();
    std::printf("\nDivergence report:\n");
    std::printf("  template  : %s\n", report.template_name.c_str());
    std::printf("  event #%zu : %s\n", report.event_index, report.event_desc.c_str());
    std::printf("  expected  : %s\n", report.expected_constraint.c_str());
    std::printf("  observed  : 0x%llx\n", static_cast<unsigned long long>(report.observed));
    std::printf("  recorded  : %s:%d\n", report.file.c_str(), report.line);
    std::printf("  rewound events (last 6 of %zu, with recording sites):\n",
                report.rewound.size());
    size_t start = report.rewound.size() > 6 ? report.rewound.size() - 6 : 0;
    for (size_t i = start; i < report.rewound.size(); ++i) {
      std::printf("    [%zu] %s\n", i, report.rewound[i].c_str());
    }
    std::printf("  device resets performed: %llu\n",
                static_cast<unsigned long long>(d.replayer->total_resets()));
  }

  // Transient-fault retry efficacy: fail exactly the first attempt of each op.
  std::printf("\nTransient-fault recovery (medium returns before the retry):\n");
  int recovered = 0;
  constexpr int kTrials = 10;
  for (int i = 0; i < kTrials; ++i) {
    Deployment d = MakeDeployment(pkg);
    std::vector<uint8_t> buf(8 * 512, 0x11);
    ReplayArgs args;
    args.scalars = {{"rw", kMmcRwWrite}, {"blkcnt", 8},
                    {"blkid", static_cast<uint64_t>(i) * 8}, {"flag", 0}};
    args.buffers["buf"] = BufferView{buf.data(), buf.size()};
    d.tb->sd_medium().set_present(false);
    d.replayer->set_max_attempts(1);
    (void)d.replayer->Invoke(kMmcEntry, args);  // first attempt diverges
    d.tb->sd_medium().set_present(true);        // transient condition clears
    d.replayer->set_max_attempts(3);
    if (d.replayer->Invoke(kMmcEntry, args).ok()) {
      ++recovered;
    }
  }
  std::printf("  %d/%d operations recovered after soft reset\n", recovered, kTrials);
  return recovered == kTrials ? 0 : 1;
}
