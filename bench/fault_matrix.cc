// Seeded fault-matrix campaign: sweeps fault planes (MMIO / DMA / IRQ) ×
// every registered driverlet class × seeds and reports per-cell recovery rates
// through the full policy ladder (bounded retry with virtual-time backoff →
// soft-reset escalation → session quarantine). Emits BENCH_fault_matrix.json.
// Deterministic: two runs with the same flags produce byte-identical output.
//
//   fault_matrix [--seeds N] [--base-seed S] [--ops K] [--out PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/workload/deploy_util.h"
#include "src/workload/fault_campaign.h"

int main(int argc, char** argv) {
  using namespace dlt;

  SeedRange seed_range;
  int ops = 6;
  std::string out_path = "BENCH_fault_matrix.json";
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (IsSeedRangeFlag(argv[i])) {
      const char* flag = argv[i];
      ApplySeedRangeFlag(&seed_range, flag, next(flag));
    } else if (std::strcmp(argv[i], "--ops") == 0) {
      ops = std::atoi(next("--ops"));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next("--out");
    } else {
      std::fprintf(stderr,
                   "usage: fault_matrix [--seeds N] [--base-seed S] [--ops K] [--out PATH]\n");
      return 2;
    }
  }
  if (!seed_range.valid() || ops < 1) {
    std::fprintf(stderr, "--seeds and --ops must be >= 1\n");
    return 2;
  }
  const int num_seeds = seed_range.count;

  FaultMatrixConfig cfg;
  cfg.seeds = seed_range.List();
  cfg.ops_per_cell = ops;
  cfg.driverlets = RegisteredDriverletClassNames();

  std::printf("fault matrix: %d seeds x 3 planes x %zu driverlets, %d ops/cell\n",
              num_seeds, cfg.driverlets.size(), ops);
  PrintRule();
  FaultMatrix m = RunFaultMatrix(cfg);
  PrintFaultMatrix(m, stdout);
  PrintRule();

  bool planes_fired[3] = {false, false, false};
  int total_ops = 0;
  int total_recovered = 0;
  for (const FaultMatrixCell& c : m.cells) {
    total_ops += c.ops;
    total_recovered += c.recovered;
    if (c.faults_injected > 0) {
      planes_fired[static_cast<size_t>(c.plane)] = true;
    }
  }
  std::printf("total: %d/%d ops recovered\n", total_recovered, total_ops);

  std::string json = FaultMatrixToJson(m);
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // Regression guards: every cell must have run its ops, every plane must have
  // actually injected somewhere, and the ladder must have recovered something.
  if (total_ops != num_seeds * 3 * static_cast<int>(cfg.driverlets.size()) * ops) {
    std::fprintf(stderr, "FAIL: not every cell ran its ops\n");
    return 1;
  }
  if (!planes_fired[0] || !planes_fired[1] || !planes_fired[2]) {
    std::fprintf(stderr, "FAIL: a fault plane never injected\n");
    return 1;
  }
  if (total_recovered == 0) {
    std::fprintf(stderr, "FAIL: nothing recovered\n");
    return 1;
  }
  return 0;
}
