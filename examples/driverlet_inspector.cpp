// Driverlet inspector: developer tooling that opens a sealed driverlet package
// and prints its contents — template inventory, event breakdowns, selection
// constraints, state-changing events with recording sites, and the first
// template's full human-readable document (the paper's shipped format).
//
// Usage: driverlet_inspector [mmc|usb|camera]   (default: mmc)
#include <cstdio>
#include <cstring>

#include "src/core/executor.h"
#include "src/core/serialize_text.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"

using namespace dlt;

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "mmc";
  std::printf("recording the %s driverlet on a developer machine...\n\n", which);

  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> campaign =
      std::strcmp(which, "usb") == 0      ? RecordUsbCampaign(&dev)
      : std::strcmp(which, "camera") == 0 ? RecordCameraCampaign(&dev)
                                          : RecordMmcCampaign(&dev);
  if (!campaign.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", StatusName(campaign.status()));
    return 1;
  }
  PackageSizes sizes;
  std::vector<uint8_t> sealed = campaign->Seal(PackageFormat::kText, kDeveloperKey, &sizes);

  Result<DriverletPackage> pkg = OpenPackage(sealed.data(), sealed.size(), kDeveloperKey);
  if (!pkg.ok()) {
    std::fprintf(stderr, "package did not verify\n");
    return 1;
  }

  std::printf("driverlet \"%s\": %zu templates, %zu bytes sealed (%zu uncompressed)\n",
              pkg->driverlet.c_str(), pkg->templates.size(), sizes.sealed, sizes.serialized);
  std::printf("coverage: %s\n\n", CoverageReport(ComputeCoverage(pkg->templates)).c_str());

  for (const auto& t : pkg->templates) {
    EventBreakdown b = t.CountEvents();
    int state_changing = 0;
    for (const auto& e : t.events) {
      if (e.state_changing) {
        ++state_changing;
      }
    }
    std::printf("template %-10s entry=%s  events: %d in / %d out / %d meta  (%d state-changing)\n",
                t.name.c_str(), t.entry.c_str(), b.input, b.output, b.meta, state_changing);
  }

  const InteractionTemplate& first = pkg->templates.front();
  std::printf("\nstate-changing events of %s (the replay 'waypoints', with recording sites):\n",
              first.name.c_str());
  int shown = 0;
  for (const auto& e : first.events) {
    if (!e.state_changing) {
      continue;
    }
    std::printf("  %s", DescribeEvent(e).c_str());
    if (!e.constraint.empty()) {
      std::printf("   expects %s", e.constraint.ToString().c_str());
    }
    std::printf("\n");
    if (++shown >= 12) {
      std::printf("  ...\n");
      break;
    }
  }

  std::printf("\nfull human-readable document of %s (paper 7.3.4 format):\n\n",
              first.name.c_str());
  std::string text = TemplateToText(first);
  // Print at most 60 lines.
  size_t pos = 0;
  for (int line = 0; line < 60 && pos < text.size(); ++line) {
    size_t nl = text.find('\n', pos);
    std::printf("  %.*s\n", static_cast<int>(nl - pos), text.c_str() + pos);
    pos = nl + 1;
  }
  if (pos < text.size()) {
    std::printf("  ... (%zu more bytes)\n", text.size() - pos);
  }
  return 0;
}
