// Secure surveillance trustlet — the paper's end-to-end use case (§7.4, Fig. 9):
// periodically sample image frames from the CSI camera and store them on the SD
// card, entirely inside the TEE. The trustlet code mirrors the paper's ~50-line
// sample: one header, two replay interfaces (replay_cam, replay_mmc).
#include <cstdio>
#include <cstring>

#include "src/core/replayer.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"

using namespace dlt;

namespace {

// The trustlet from Figure 9, expressed against the replayer API.
class SurveillanceTrustlet : public Trustlet {
 public:
  SurveillanceTrustlet(Replayer* cam, Replayer* mmc, int frames)
      : cam_(cam), mmc_(mmc), frames_(frames) {}

  std::string_view name() const override { return "secure-surveillance"; }

  Status Run(SecureWorld* tee) override {
    size_t buf_size = 2u << 20;  /* provided buffer size (paper: 2<<20) */
    std::vector<uint8_t> img(buf_size);
    std::vector<uint8_t> size_out(4);
    uint64_t sector = 0;
    for (int i = 0; i < frames_; ++i) {
      uint64_t t0 = tee->TimestampUs();
      ReplayArgs cam_args;
      cam_args.scalars = {{"frame", 1}, {"resolution", 1080}, {"buf_size", buf_size}};
      cam_args.buffers["buf"] = BufferView{img.data(), img.size()};
      cam_args.buffers["img_size"] = BufferView{size_out.data(), size_out.size()};
      Result<ReplayStats> cam = cam_->Invoke(kCameraEntry, cam_args);
      if (!cam.ok()) { /* err: no template, small buffer, etc. */
        return cam.status();
      }
      uint32_t size = 0;
      std::memcpy(&size, size_out.data(), 4);
      uint64_t t_cam = tee->TimestampUs();

      /* store the image: iterate 256-block trunks (paper Fig. 9) */
      uint32_t sectors = (size + 511) / 512;
      sectors = (sectors + 255) & ~255u;  // template granularity: 256-block chunks
      for (uint32_t off = 0; off < sectors; off += 256) {
        ReplayArgs mmc_args;
        mmc_args.scalars = {{"rw", kMmcRwWrite}, {"blkcnt", 256},
                            {"blkid", sector + off}, {"flag", 0}};
        mmc_args.buffers["buf"] =
            BufferView{img.data() + static_cast<size_t>(off) * 512, 256 * 512};
        Result<ReplayStats> wr = mmc_->Invoke(kMmcEntry, mmc_args);
        if (!wr.ok()) { /* err: card removed, cmd timeout etc. */
          return wr.status();
        }
      }
      uint64_t t_store = tee->TimestampUs();
      std::printf("  frame %d: %u-byte JPEG, capture %.2fs, store %.0fms (%u chunks)\n", i,
                  size, static_cast<double>(t_cam - t0) / 1e6,
                  static_cast<double>(t_store - t_cam) / 1e3, sectors / 256);
      sector += sectors;
    }
    return Status::kOk;
  }

 private:
  Replayer* cam_;
  Replayer* mmc_;
  int frames_;
};

}  // namespace

int main() {
  std::printf("Secure surveillance trustlet (paper 7.4 / Figure 9)\n\n");
  std::printf("recording camera + MMC driverlets on the developer machine...\n");
  std::vector<uint8_t> cam_pkg;
  std::vector<uint8_t> mmc_pkg;
  {
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> cam = RecordCameraCampaign(&dev);
    Result<RecordCampaign> mmc = RecordMmcCampaign(&dev);
    if (!cam.ok() || !mmc.ok()) {
      return 1;
    }
    cam_pkg = cam->Seal(PackageFormat::kText, kDeveloperKey);
    mmc_pkg = mmc->Seal(PackageFormat::kText, kDeveloperKey);
  }

  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed machine{opts};
  Replayer cam_replayer(&machine.tee(), kDeveloperKey);
  Replayer mmc_replayer(&machine.tee(), kDeveloperKey);
  if (!Ok(cam_replayer.LoadPackage(cam_pkg.data(), cam_pkg.size())) ||
      !Ok(mmc_replayer.LoadPackage(mmc_pkg.data(), mmc_pkg.size()))) {
    return 1;
  }

  std::printf("running the trustlet in the TEE (camera + SD card isolated by TZASC):\n");
  SurveillanceTrustlet trustlet(&cam_replayer, &mmc_replayer, /*frames=*/3);
  uint64_t t0 = machine.clock().now_us();
  Status s = trustlet.Run(&machine.tee());
  uint64_t total = machine.clock().now_us() - t0;
  if (!Ok(s)) {
    std::fprintf(stderr, "trustlet failed: %s\n", StatusName(s));
    return 1;
  }
  std::printf("\nstored 3 frames in %.2fs (%.2fs per frame)\n",
              static_cast<double>(total) / 1e6, static_cast<double>(total) / 3e6);
  std::printf("sectors written on the secure SD card: %llu\n",
              static_cast<unsigned long long>(machine.sd_medium().sectors_written()));
  std::printf("(paper: storing each frame takes 3.7s, of which most is camera init\n"
              " and storing the image only takes 154ms)\n");
  return 0;
}
