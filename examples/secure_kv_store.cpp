// Secure credential store: the paper's "secure storage" use case (§2.1) — a
// trustlet managing credentials on USB flash isolated in the TEE. Runs the full
// MiniDb engine on top of the USB driverlet: every block the database touches
// moves through replayed interaction templates.
#include <cstdio>
#include <cstring>

#include "src/tee/replay_service.h"
#include "src/workload/minidb.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/replay_block_device.h"
#include "src/workload/rpi3_testbed.h"

using namespace dlt;

namespace {

uint64_t KeyFor(const char* name) {
  // FNV-1a over the credential name.
  uint64_t h = 1469598103934665603ull;
  for (const char* p = name; *p; ++p) {
    h = (h ^ static_cast<uint8_t>(*p)) * 1099511628211ull;
  }
  return h;
}

}  // namespace

int main() {
  std::printf("Secure credential store over the USB driverlet\n\n");
  std::vector<uint8_t> pkg;
  {
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> c = RecordUsbCampaign(&dev);
    if (!c.ok()) {
      return 1;
    }
    pkg = c->Seal(PackageFormat::kBinary, kDeveloperKey);
    std::printf("USB driverlet recorded and sealed (%zu bytes, binary form)\n\n", pkg.size());
  }

  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed machine{opts};
  // The credential store is one client of the session-oriented secure IO
  // service: it opens a session against the USB driverlet and issues every
  // block access through it.
  ReplayService service(&machine.tee(), kDeveloperKey);
  Result<std::string> driverlet = service.RegisterDriverlet(pkg.data(), pkg.size());
  if (!driverlet.ok()) {
    return 1;
  }
  Result<SessionId> session = service.OpenSession(*driverlet);
  if (!session.ok()) {
    return 1;
  }

  ReplayBlockDevice dev(&service, *session, kUsbEntry);
  MiniDb db(&dev);
  if (!Ok(db.Open())) {
    return 1;
  }

  struct Credential {
    const char* name;
    const char* value;
  };
  const Credential kCreds[] = {
      {"wifi/home", "psk=correct-horse-battery"},
      {"bank/totp", "seed=JBSWY3DPEHPK3PXP"},
      {"mail/imap", "app-password=wxyz 1234"},
      {"vpn/office", "cert-fingerprint=a1:b2:c3"},
  };
  std::printf("storing %zu credentials in the TEE...\n", std::size(kCreds));
  for (const Credential& c : kCreds) {
    if (!Ok(db.Insert(KeyFor(c.name), c.value, std::strlen(c.value)))) {
      std::fprintf(stderr, "insert failed for %s\n", c.name);
      return 1;
    }
  }
  if (!Ok(db.Commit())) {
    return 1;
  }

  std::printf("retrieving:\n");
  for (const Credential& c : kCreds) {
    Result<std::vector<uint8_t>> v = db.Lookup(KeyFor(c.name));
    if (!v.ok()) {
      std::fprintf(stderr, "  %s: lookup failed\n", c.name);
      return 1;
    }
    std::string got(v->begin(), v->end());
    std::printf("  %-12s -> %s  [%s]\n", c.name, got.c_str(),
                got == c.value ? "ok" : "CORRUPT");
  }

  std::printf("\nrotating one credential and deleting another...\n");
  const char* rotated = "psk=new-rotated-passphrase";
  if (!Ok(db.Update(KeyFor("wifi/home"), rotated, std::strlen(rotated))) ||
      !Ok(db.Delete(KeyFor("mail/imap"))) || !Ok(db.Commit())) {
    return 1;
  }
  Result<std::vector<uint8_t>> v = db.Lookup(KeyFor("wifi/home"));
  std::printf("  wifi/home  -> %s\n",
              v.ok() ? std::string(v->begin(), v->end()).c_str() : "(missing)");
  std::printf("  mail/imap  -> %s\n", db.Lookup(KeyFor("mail/imap")).ok() ? "STILL THERE?!"
                                                                          : "(deleted)");

  std::printf("\nblock IO performed via replayed templates: %llu requests\n",
              static_cast<unsigned long long>(dev.io_ops()));
  for (const auto& [tpl, count] : dev.invocations()) {
    std::printf("  %-8s x%llu\n", tpl.c_str(), static_cast<unsigned long long>(count));
  }
  std::printf("\nnormal world access to the USB controller: %s\n",
              StatusName(machine.machine().mem().Read32(World::kNormal, kUsbBase).status()));
  return 0;
}
