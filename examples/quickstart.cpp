// Quickstart: the complete driverlet lifecycle in one file.
//
//   1. Developer machine: exercise the gold MMC driver in a record campaign;
//      the recorder distills signed interaction templates (a "driverlet").
//   2. Deployment machine: firmware assigns the MMC instance to the TEE; a
//      trustlet links the replayer + the driverlet and performs secure IO
//      without any driver code in the TEE.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "src/core/replayer.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"

using namespace dlt;

int main() {
  std::printf("== 1. Record campaign on the developer machine ==\n");
  Rpi3Testbed dev_machine{TestbedOptions{}};  // gold drivers probed natively
  Result<RecordCampaign> campaign = RecordMmcCampaign(&dev_machine);
  if (!campaign.ok()) {
    std::fprintf(stderr, "record campaign failed: %s\n", StatusName(campaign.status()));
    return 1;
  }
  std::printf("   %zu interaction templates recorded\n", campaign->templates().size());
  std::printf("   coverage: %s\n", campaign->CoverageReport().c_str());

  PackageSizes sizes;
  std::vector<uint8_t> driverlet =
      campaign->Seal(PackageFormat::kText, kDeveloperKey, &sizes);
  std::printf("   sealed driverlet: %zu bytes (%zu before compression), signed\n\n",
              sizes.sealed, sizes.serialized);

  std::printf("== 2. Secure IO on the deployment machine ==\n");
  TestbedOptions deploy_opts;
  deploy_opts.secure_io = true;       // TZASC assigns MMC + DMA to the TEE
  deploy_opts.probe_drivers = false;  // no driver in the TEE: only the replayer
  Rpi3Testbed machine{deploy_opts};

  Replayer replayer(&machine.tee(), kDeveloperKey);
  if (!Ok(replayer.LoadPackage(driverlet.data(), driverlet.size()))) {
    std::fprintf(stderr, "package rejected\n");
    return 1;
  }
  std::printf("   signature verified, %zu templates loaded into the TEE\n",
              replayer.templates().size());

  // The normal world cannot reach the device anymore:
  Result<uint32_t> probe = machine.machine().mem().Read32(World::kNormal, kMmcBase);
  std::printf("   normal-world register read: %s\n", StatusName(probe.status()));

  // A trustlet writes a secret and reads it back through the driverlet. Note
  // blkcnt=5 and this block address were never recorded — the templates accept
  // dynamic inputs inside their constraint regions.
  const char* secret = "TEE-held credential: totp-seed-19ab44";
  std::vector<uint8_t> block(5 * 512, 0);
  std::snprintf(reinterpret_cast<char*>(block.data()), block.size(), "%s", secret);

  ReplayArgs args;
  args.scalars = {{"rw", kMmcRwWrite}, {"blkcnt", 5}, {"blkid", 131072}, {"flag", 0}};
  args.buffers["buf"] = BufferView{block.data(), block.size()};
  Result<ReplayStats> wr = replayer.Invoke(kMmcEntry, args);
  if (!wr.ok()) {
    std::fprintf(stderr, "write failed: %s\n", StatusName(wr.status()));
    return 1;
  }
  std::printf("   wrote 5 blocks via template %s (%zu events replayed)\n",
              wr->template_name.c_str(), wr->events_executed);

  std::vector<uint8_t> readback(5 * 512, 0);
  args.scalars["rw"] = kMmcRwRead;
  args.buffers["buf"] = BufferView{readback.data(), readback.size()};
  Result<ReplayStats> rd = replayer.Invoke(kMmcEntry, args);
  if (!rd.ok()) {
    std::fprintf(stderr, "read failed: %s\n", StatusName(rd.status()));
    return 1;
  }
  std::printf("   read back via %s: \"%s\"\n", rd->template_name.c_str(),
              reinterpret_cast<char*>(readback.data()));
  bool match = readback == block;
  std::printf("   data integrity: %s\n", match ? "OK" : "MISMATCH");
  return match ? 0 : 1;
}
