// Trusted UI: the paper's third secure-IO use case (§2.1) — a trustlet renders
// security-sensitive content (a service verification code) on a display
// controller isolated in the TEE, via a display driverlet. The normal-world OS
// can neither read nor overwrite what is on screen.
#include <cstdio>
#include <cstring>

#include "src/core/replayer.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"

using namespace dlt;

namespace {

// 5x7 digit glyphs for the verification code.
const uint8_t kGlyphs[10][7] = {
    {0x0e, 0x11, 0x13, 0x15, 0x19, 0x11, 0x0e}, {0x04, 0x0c, 0x04, 0x04, 0x04, 0x04, 0x0e},
    {0x0e, 0x11, 0x01, 0x02, 0x04, 0x08, 0x1f}, {0x1f, 0x02, 0x04, 0x02, 0x01, 0x11, 0x0e},
    {0x02, 0x06, 0x0a, 0x12, 0x1f, 0x02, 0x02}, {0x1f, 0x10, 0x1e, 0x01, 0x01, 0x11, 0x0e},
    {0x06, 0x08, 0x10, 0x1e, 0x11, 0x11, 0x0e}, {0x1f, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08},
    {0x0e, 0x11, 0x11, 0x0e, 0x11, 0x11, 0x0e}, {0x0e, 0x11, 0x11, 0x0f, 0x01, 0x02, 0x0c}};

constexpr uint32_t kBannerW = 800;
constexpr uint32_t kBannerH = 64;
constexpr uint32_t kBg = 0x00102040;  // dark blue
constexpr uint32_t kFg = 0x00ffffff;  // white

void RenderCode(const char* code, std::vector<uint8_t>* banner) {
  banner->assign(static_cast<size_t>(kBannerW) * kBannerH * 4, 0);
  auto put = [&](uint32_t x, uint32_t y, uint32_t color) {
    std::memcpy(banner->data() + (static_cast<size_t>(y) * kBannerW + x) * 4, &color, 4);
  };
  for (uint32_t y = 0; y < kBannerH; ++y) {
    for (uint32_t x = 0; x < kBannerW; ++x) {
      put(x, y, kBg);
    }
  }
  uint32_t cx = 32;
  for (const char* p = code; *p; ++p) {
    if (*p < '0' || *p > '9') {
      cx += 24;
      continue;
    }
    const uint8_t* glyph = kGlyphs[*p - '0'];
    for (int gy = 0; gy < 7; ++gy) {
      for (int gx = 0; gx < 5; ++gx) {
        if (glyph[gy] & (1 << (4 - gx))) {
          // 6x scale.
          for (int sy = 0; sy < 6; ++sy) {
            for (int sx = 0; sx < 6; ++sx) {
              put(cx + static_cast<uint32_t>(gx * 6 + sx),
                  8 + static_cast<uint32_t>(gy * 6 + sy), kFg);
            }
          }
        }
      }
    }
    cx += 40;
  }
}

}  // namespace

int main() {
  std::printf("Trusted UI: rendering a verification code from the TEE\n\n");
  std::vector<uint8_t> pkg;
  {
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> c = RecordDisplayCampaign(&dev);
    if (!c.ok()) {
      return 1;
    }
    std::printf("display campaign: 3 record runs -> %zu template(s) (geometries share one\n"
                "transition path, so the recorder merges them)\n",
                c->templates().size());
    std::printf("coverage: %s\n\n", c->CoverageReport().c_str());
    pkg = c->Seal(PackageFormat::kText, kDeveloperKey);
  }

  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed machine{opts};
  Replayer replayer(&machine.tee(), kDeveloperKey);
  if (!Ok(replayer.LoadPackage(pkg.data(), pkg.size()))) {
    return 1;
  }

  const char* code = "481516";
  std::printf("trustlet renders verification code %s to the secure banner...\n", code);
  std::vector<uint8_t> banner;
  RenderCode(code, &banner);
  ReplayArgs args;
  args.scalars = {{"x", 0}, {"y", 0}, {"w", kBannerW}, {"h", kBannerH}};
  args.buffers["buf"] = BufferView{banner.data(), banner.size()};
  Result<ReplayStats> r = replayer.Invoke(kDisplayEntry, args);
  if (!r.ok()) {
    std::fprintf(stderr, "blit failed: %s\n", StatusName(r.status()));
    return 1;
  }
  std::printf("blit replayed via template %s (%zu events)\n", r->template_name.c_str(),
              r->events_executed);

  // Verify what the panel physically shows: row 4 of the '4' glyph is solid
  // (0x1f), so (32+3, 8+4*6+3) must be foreground.
  uint32_t on = machine.display().PanelPixel(32 + 3, 8 + 4 * 6 + 3);
  uint32_t off = machine.display().PanelPixel(0, 0);
  std::printf("panel pixel inside glyph: 0x%06x (expect 0x%06x), background: 0x%06x\n", on, kFg,
              off);

  // The OS cannot touch the display controller:
  Status normal = machine.machine().mem().Write32(World::kNormal, kDisplayBase + kDispCommit, 1);
  std::printf("normal-world attempt to kick the display: %s\n", StatusName(normal));

  // --- trusted input: the user confirms on the isolated touch panel ---
  std::vector<uint8_t> touch_pkg;
  {
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> c = RecordTouchCampaign(&dev);
    if (!c.ok()) {
      return 1;
    }
    touch_pkg = c->Seal(PackageFormat::kText, kDeveloperKey);
  }
  Replayer touch_replayer(&machine.tee(), kDeveloperKey);
  if (!Ok(touch_replayer.LoadPackage(touch_pkg.data(), touch_pkg.size()))) {
    return 1;
  }
  std::printf("\nwaiting for the user to confirm on the secure panel...\n");
  machine.touch().InjectTouch(420, 32, /*delay_us=*/50'000);  // the user taps the banner
  std::vector<uint8_t> evt(4, 0);
  ReplayArgs touch_args;
  touch_args.buffers["evt"] = BufferView{evt.data(), evt.size()};
  Result<ReplayStats> tap = touch_replayer.Invoke(kTouchEntry, touch_args);
  if (!tap.ok()) {
    std::fprintf(stderr, "touch replay failed: %s\n", StatusName(tap.status()));
    return 1;
  }
  uint32_t sample = 0;
  std::memcpy(&sample, evt.data(), 4);
  uint32_t tx = sample & 0xfff;
  uint32_t ty = (sample >> 12) & 0xfff;
  bool confirmed = tx < kBannerW && ty < kBannerH;
  std::printf("tap at (%u, %u): %s\n", tx, ty,
              confirmed ? "inside the banner -> transaction confirmed" : "outside -> ignored");
  return (on == kFg && off == kBg && normal == Status::kPermissionDenied && confirmed) ? 0 : 1;
}
