# Empty dependencies file for dlt_tests.
# This may be replaced when dependencies are built.
