
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto_test.cc" "tests/CMakeFiles/dlt_tests.dir/crypto_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/crypto_test.cc.o.d"
  "/root/repo/tests/device_test.cc" "tests/CMakeFiles/dlt_tests.dir/device_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/device_test.cc.o.d"
  "/root/repo/tests/direct_path_test.cc" "tests/CMakeFiles/dlt_tests.dir/direct_path_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/direct_path_test.cc.o.d"
  "/root/repo/tests/executor_test.cc" "tests/CMakeFiles/dlt_tests.dir/executor_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/executor_test.cc.o.d"
  "/root/repo/tests/fault_injection_test.cc" "tests/CMakeFiles/dlt_tests.dir/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/fault_injection_test.cc.o.d"
  "/root/repo/tests/minidb_test.cc" "tests/CMakeFiles/dlt_tests.dir/minidb_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/minidb_test.cc.o.d"
  "/root/repo/tests/package_fuzz_test.cc" "tests/CMakeFiles/dlt_tests.dir/package_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/package_fuzz_test.cc.o.d"
  "/root/repo/tests/recorder_test.cc" "tests/CMakeFiles/dlt_tests.dir/recorder_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/recorder_test.cc.o.d"
  "/root/repo/tests/replay_camera_test.cc" "tests/CMakeFiles/dlt_tests.dir/replay_camera_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/replay_camera_test.cc.o.d"
  "/root/repo/tests/replay_display_test.cc" "tests/CMakeFiles/dlt_tests.dir/replay_display_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/replay_display_test.cc.o.d"
  "/root/repo/tests/replay_mmc_test.cc" "tests/CMakeFiles/dlt_tests.dir/replay_mmc_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/replay_mmc_test.cc.o.d"
  "/root/repo/tests/replay_touch_test.cc" "tests/CMakeFiles/dlt_tests.dir/replay_touch_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/replay_touch_test.cc.o.d"
  "/root/repo/tests/replay_usb_test.cc" "tests/CMakeFiles/dlt_tests.dir/replay_usb_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/replay_usb_test.cc.o.d"
  "/root/repo/tests/security_test.cc" "tests/CMakeFiles/dlt_tests.dir/security_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/security_test.cc.o.d"
  "/root/repo/tests/serialize_test.cc" "tests/CMakeFiles/dlt_tests.dir/serialize_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/serialize_test.cc.o.d"
  "/root/repo/tests/soc_test.cc" "tests/CMakeFiles/dlt_tests.dir/soc_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/soc_test.cc.o.d"
  "/root/repo/tests/sym_test.cc" "tests/CMakeFiles/dlt_tests.dir/sym_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/sym_test.cc.o.d"
  "/root/repo/tests/tee_and_coverage_test.cc" "tests/CMakeFiles/dlt_tests.dir/tee_and_coverage_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/tee_and_coverage_test.cc.o.d"
  "/root/repo/tests/uart_trimdown_test.cc" "tests/CMakeFiles/dlt_tests.dir/uart_trimdown_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/uart_trimdown_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/dlt_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/dlt_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/dlt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/drv/CMakeFiles/dlt_drv.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/CMakeFiles/dlt_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/dlt_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/kern/CMakeFiles/dlt_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dlt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sym/CMakeFiles/dlt_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dlt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/dlt_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
