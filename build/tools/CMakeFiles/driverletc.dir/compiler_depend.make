# Empty compiler generated dependencies file for driverletc.
# This may be replaced when dependencies are built.
