file(REMOVE_RECURSE
  "CMakeFiles/driverletc.dir/driverletc.cc.o"
  "CMakeFiles/driverletc.dir/driverletc.cc.o.d"
  "driverletc"
  "driverletc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driverletc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
