# Empty compiler generated dependencies file for dlt_drv.
# This may be replaced when dependencies are built.
