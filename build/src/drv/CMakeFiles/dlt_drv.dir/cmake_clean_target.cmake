file(REMOVE_RECURSE
  "libdlt_drv.a"
)
