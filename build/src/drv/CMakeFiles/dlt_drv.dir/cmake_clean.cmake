file(REMOVE_RECURSE
  "CMakeFiles/dlt_drv.dir/bcm_sdhost_driver.cc.o"
  "CMakeFiles/dlt_drv.dir/bcm_sdhost_driver.cc.o.d"
  "CMakeFiles/dlt_drv.dir/dsi_display_driver.cc.o"
  "CMakeFiles/dlt_drv.dir/dsi_display_driver.cc.o.d"
  "CMakeFiles/dlt_drv.dir/dwc2_storage_driver.cc.o"
  "CMakeFiles/dlt_drv.dir/dwc2_storage_driver.cc.o.d"
  "CMakeFiles/dlt_drv.dir/touch_driver.cc.o"
  "CMakeFiles/dlt_drv.dir/touch_driver.cc.o.d"
  "CMakeFiles/dlt_drv.dir/vchiq_camera_driver.cc.o"
  "CMakeFiles/dlt_drv.dir/vchiq_camera_driver.cc.o.d"
  "libdlt_drv.a"
  "libdlt_drv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_drv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
