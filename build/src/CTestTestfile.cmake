# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("soc")
subdirs("sym")
subdirs("crypto")
subdirs("core")
subdirs("dev")
subdirs("kern")
subdirs("drv")
subdirs("tee")
subdirs("workload")
