file(REMOVE_RECURSE
  "CMakeFiles/dlt_crypto.dir/crc32.cc.o"
  "CMakeFiles/dlt_crypto.dir/crc32.cc.o.d"
  "CMakeFiles/dlt_crypto.dir/hmac.cc.o"
  "CMakeFiles/dlt_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/dlt_crypto.dir/lzss.cc.o"
  "CMakeFiles/dlt_crypto.dir/lzss.cc.o.d"
  "CMakeFiles/dlt_crypto.dir/sha256.cc.o"
  "CMakeFiles/dlt_crypto.dir/sha256.cc.o.d"
  "libdlt_crypto.a"
  "libdlt_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
