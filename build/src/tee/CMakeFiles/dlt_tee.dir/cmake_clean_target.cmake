file(REMOVE_RECURSE
  "libdlt_tee.a"
)
