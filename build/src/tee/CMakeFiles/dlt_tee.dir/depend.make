# Empty dependencies file for dlt_tee.
# This may be replaced when dependencies are built.
