file(REMOVE_RECURSE
  "CMakeFiles/dlt_tee.dir/secure_world.cc.o"
  "CMakeFiles/dlt_tee.dir/secure_world.cc.o.d"
  "libdlt_tee.a"
  "libdlt_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
