file(REMOVE_RECURSE
  "libdlt_soc.a"
)
