file(REMOVE_RECURSE
  "CMakeFiles/dlt_soc.dir/address_space.cc.o"
  "CMakeFiles/dlt_soc.dir/address_space.cc.o.d"
  "CMakeFiles/dlt_soc.dir/dma_engine.cc.o"
  "CMakeFiles/dlt_soc.dir/dma_engine.cc.o.d"
  "CMakeFiles/dlt_soc.dir/irq.cc.o"
  "CMakeFiles/dlt_soc.dir/irq.cc.o.d"
  "CMakeFiles/dlt_soc.dir/log.cc.o"
  "CMakeFiles/dlt_soc.dir/log.cc.o.d"
  "CMakeFiles/dlt_soc.dir/machine.cc.o"
  "CMakeFiles/dlt_soc.dir/machine.cc.o.d"
  "CMakeFiles/dlt_soc.dir/sim_clock.cc.o"
  "CMakeFiles/dlt_soc.dir/sim_clock.cc.o.d"
  "CMakeFiles/dlt_soc.dir/tzasc.cc.o"
  "CMakeFiles/dlt_soc.dir/tzasc.cc.o.d"
  "libdlt_soc.a"
  "libdlt_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
