# Empty compiler generated dependencies file for dlt_soc.
# This may be replaced when dependencies are built.
