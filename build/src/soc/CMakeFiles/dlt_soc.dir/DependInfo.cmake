
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/address_space.cc" "src/soc/CMakeFiles/dlt_soc.dir/address_space.cc.o" "gcc" "src/soc/CMakeFiles/dlt_soc.dir/address_space.cc.o.d"
  "/root/repo/src/soc/dma_engine.cc" "src/soc/CMakeFiles/dlt_soc.dir/dma_engine.cc.o" "gcc" "src/soc/CMakeFiles/dlt_soc.dir/dma_engine.cc.o.d"
  "/root/repo/src/soc/irq.cc" "src/soc/CMakeFiles/dlt_soc.dir/irq.cc.o" "gcc" "src/soc/CMakeFiles/dlt_soc.dir/irq.cc.o.d"
  "/root/repo/src/soc/log.cc" "src/soc/CMakeFiles/dlt_soc.dir/log.cc.o" "gcc" "src/soc/CMakeFiles/dlt_soc.dir/log.cc.o.d"
  "/root/repo/src/soc/machine.cc" "src/soc/CMakeFiles/dlt_soc.dir/machine.cc.o" "gcc" "src/soc/CMakeFiles/dlt_soc.dir/machine.cc.o.d"
  "/root/repo/src/soc/sim_clock.cc" "src/soc/CMakeFiles/dlt_soc.dir/sim_clock.cc.o" "gcc" "src/soc/CMakeFiles/dlt_soc.dir/sim_clock.cc.o.d"
  "/root/repo/src/soc/tzasc.cc" "src/soc/CMakeFiles/dlt_soc.dir/tzasc.cc.o" "gcc" "src/soc/CMakeFiles/dlt_soc.dir/tzasc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
