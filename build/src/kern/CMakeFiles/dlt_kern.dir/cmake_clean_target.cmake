file(REMOVE_RECURSE
  "libdlt_kern.a"
)
