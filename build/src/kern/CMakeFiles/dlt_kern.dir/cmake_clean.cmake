file(REMOVE_RECURSE
  "CMakeFiles/dlt_kern.dir/block_layer.cc.o"
  "CMakeFiles/dlt_kern.dir/block_layer.cc.o.d"
  "CMakeFiles/dlt_kern.dir/passthrough_io.cc.o"
  "CMakeFiles/dlt_kern.dir/passthrough_io.cc.o.d"
  "libdlt_kern.a"
  "libdlt_kern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_kern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
