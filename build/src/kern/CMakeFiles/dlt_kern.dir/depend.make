# Empty dependencies file for dlt_kern.
# This may be replaced when dependencies are built.
