file(REMOVE_RECURSE
  "CMakeFiles/dlt_core.dir/campaign.cc.o"
  "CMakeFiles/dlt_core.dir/campaign.cc.o.d"
  "CMakeFiles/dlt_core.dir/coverage.cc.o"
  "CMakeFiles/dlt_core.dir/coverage.cc.o.d"
  "CMakeFiles/dlt_core.dir/differ.cc.o"
  "CMakeFiles/dlt_core.dir/differ.cc.o.d"
  "CMakeFiles/dlt_core.dir/event.cc.o"
  "CMakeFiles/dlt_core.dir/event.cc.o.d"
  "CMakeFiles/dlt_core.dir/executor.cc.o"
  "CMakeFiles/dlt_core.dir/executor.cc.o.d"
  "CMakeFiles/dlt_core.dir/interaction_template.cc.o"
  "CMakeFiles/dlt_core.dir/interaction_template.cc.o.d"
  "CMakeFiles/dlt_core.dir/package.cc.o"
  "CMakeFiles/dlt_core.dir/package.cc.o.d"
  "CMakeFiles/dlt_core.dir/record_session.cc.o"
  "CMakeFiles/dlt_core.dir/record_session.cc.o.d"
  "CMakeFiles/dlt_core.dir/replayer.cc.o"
  "CMakeFiles/dlt_core.dir/replayer.cc.o.d"
  "CMakeFiles/dlt_core.dir/serialize_binary.cc.o"
  "CMakeFiles/dlt_core.dir/serialize_binary.cc.o.d"
  "CMakeFiles/dlt_core.dir/serialize_text.cc.o"
  "CMakeFiles/dlt_core.dir/serialize_text.cc.o.d"
  "CMakeFiles/dlt_core.dir/template_builder.cc.o"
  "CMakeFiles/dlt_core.dir/template_builder.cc.o.d"
  "libdlt_core.a"
  "libdlt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
