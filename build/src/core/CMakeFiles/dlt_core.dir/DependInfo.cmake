
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cc" "src/core/CMakeFiles/dlt_core.dir/campaign.cc.o" "gcc" "src/core/CMakeFiles/dlt_core.dir/campaign.cc.o.d"
  "/root/repo/src/core/coverage.cc" "src/core/CMakeFiles/dlt_core.dir/coverage.cc.o" "gcc" "src/core/CMakeFiles/dlt_core.dir/coverage.cc.o.d"
  "/root/repo/src/core/differ.cc" "src/core/CMakeFiles/dlt_core.dir/differ.cc.o" "gcc" "src/core/CMakeFiles/dlt_core.dir/differ.cc.o.d"
  "/root/repo/src/core/event.cc" "src/core/CMakeFiles/dlt_core.dir/event.cc.o" "gcc" "src/core/CMakeFiles/dlt_core.dir/event.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/core/CMakeFiles/dlt_core.dir/executor.cc.o" "gcc" "src/core/CMakeFiles/dlt_core.dir/executor.cc.o.d"
  "/root/repo/src/core/interaction_template.cc" "src/core/CMakeFiles/dlt_core.dir/interaction_template.cc.o" "gcc" "src/core/CMakeFiles/dlt_core.dir/interaction_template.cc.o.d"
  "/root/repo/src/core/package.cc" "src/core/CMakeFiles/dlt_core.dir/package.cc.o" "gcc" "src/core/CMakeFiles/dlt_core.dir/package.cc.o.d"
  "/root/repo/src/core/record_session.cc" "src/core/CMakeFiles/dlt_core.dir/record_session.cc.o" "gcc" "src/core/CMakeFiles/dlt_core.dir/record_session.cc.o.d"
  "/root/repo/src/core/replayer.cc" "src/core/CMakeFiles/dlt_core.dir/replayer.cc.o" "gcc" "src/core/CMakeFiles/dlt_core.dir/replayer.cc.o.d"
  "/root/repo/src/core/serialize_binary.cc" "src/core/CMakeFiles/dlt_core.dir/serialize_binary.cc.o" "gcc" "src/core/CMakeFiles/dlt_core.dir/serialize_binary.cc.o.d"
  "/root/repo/src/core/serialize_text.cc" "src/core/CMakeFiles/dlt_core.dir/serialize_text.cc.o" "gcc" "src/core/CMakeFiles/dlt_core.dir/serialize_text.cc.o.d"
  "/root/repo/src/core/template_builder.cc" "src/core/CMakeFiles/dlt_core.dir/template_builder.cc.o" "gcc" "src/core/CMakeFiles/dlt_core.dir/template_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sym/CMakeFiles/dlt_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dlt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/dlt_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
