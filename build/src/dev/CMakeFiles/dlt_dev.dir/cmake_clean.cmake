file(REMOVE_RECURSE
  "CMakeFiles/dlt_dev.dir/display/display_controller.cc.o"
  "CMakeFiles/dlt_dev.dir/display/display_controller.cc.o.d"
  "CMakeFiles/dlt_dev.dir/display/touch_controller.cc.o"
  "CMakeFiles/dlt_dev.dir/display/touch_controller.cc.o.d"
  "CMakeFiles/dlt_dev.dir/mmc/block_medium.cc.o"
  "CMakeFiles/dlt_dev.dir/mmc/block_medium.cc.o.d"
  "CMakeFiles/dlt_dev.dir/mmc/mmc_controller.cc.o"
  "CMakeFiles/dlt_dev.dir/mmc/mmc_controller.cc.o.d"
  "CMakeFiles/dlt_dev.dir/mmc/sd_card.cc.o"
  "CMakeFiles/dlt_dev.dir/mmc/sd_card.cc.o.d"
  "CMakeFiles/dlt_dev.dir/uart/uart_controller.cc.o"
  "CMakeFiles/dlt_dev.dir/uart/uart_controller.cc.o.d"
  "CMakeFiles/dlt_dev.dir/usb/dwc2_controller.cc.o"
  "CMakeFiles/dlt_dev.dir/usb/dwc2_controller.cc.o.d"
  "CMakeFiles/dlt_dev.dir/usb/usb_mass_storage.cc.o"
  "CMakeFiles/dlt_dev.dir/usb/usb_mass_storage.cc.o.d"
  "CMakeFiles/dlt_dev.dir/vc4/vc4_firmware.cc.o"
  "CMakeFiles/dlt_dev.dir/vc4/vc4_firmware.cc.o.d"
  "libdlt_dev.a"
  "libdlt_dev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_dev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
