# Empty compiler generated dependencies file for dlt_dev.
# This may be replaced when dependencies are built.
