
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dev/display/display_controller.cc" "src/dev/CMakeFiles/dlt_dev.dir/display/display_controller.cc.o" "gcc" "src/dev/CMakeFiles/dlt_dev.dir/display/display_controller.cc.o.d"
  "/root/repo/src/dev/display/touch_controller.cc" "src/dev/CMakeFiles/dlt_dev.dir/display/touch_controller.cc.o" "gcc" "src/dev/CMakeFiles/dlt_dev.dir/display/touch_controller.cc.o.d"
  "/root/repo/src/dev/mmc/block_medium.cc" "src/dev/CMakeFiles/dlt_dev.dir/mmc/block_medium.cc.o" "gcc" "src/dev/CMakeFiles/dlt_dev.dir/mmc/block_medium.cc.o.d"
  "/root/repo/src/dev/mmc/mmc_controller.cc" "src/dev/CMakeFiles/dlt_dev.dir/mmc/mmc_controller.cc.o" "gcc" "src/dev/CMakeFiles/dlt_dev.dir/mmc/mmc_controller.cc.o.d"
  "/root/repo/src/dev/mmc/sd_card.cc" "src/dev/CMakeFiles/dlt_dev.dir/mmc/sd_card.cc.o" "gcc" "src/dev/CMakeFiles/dlt_dev.dir/mmc/sd_card.cc.o.d"
  "/root/repo/src/dev/uart/uart_controller.cc" "src/dev/CMakeFiles/dlt_dev.dir/uart/uart_controller.cc.o" "gcc" "src/dev/CMakeFiles/dlt_dev.dir/uart/uart_controller.cc.o.d"
  "/root/repo/src/dev/usb/dwc2_controller.cc" "src/dev/CMakeFiles/dlt_dev.dir/usb/dwc2_controller.cc.o" "gcc" "src/dev/CMakeFiles/dlt_dev.dir/usb/dwc2_controller.cc.o.d"
  "/root/repo/src/dev/usb/usb_mass_storage.cc" "src/dev/CMakeFiles/dlt_dev.dir/usb/usb_mass_storage.cc.o" "gcc" "src/dev/CMakeFiles/dlt_dev.dir/usb/usb_mass_storage.cc.o.d"
  "/root/repo/src/dev/vc4/vc4_firmware.cc" "src/dev/CMakeFiles/dlt_dev.dir/vc4/vc4_firmware.cc.o" "gcc" "src/dev/CMakeFiles/dlt_dev.dir/vc4/vc4_firmware.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/dlt_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
