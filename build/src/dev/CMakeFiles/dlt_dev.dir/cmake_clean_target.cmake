file(REMOVE_RECURSE
  "libdlt_dev.a"
)
