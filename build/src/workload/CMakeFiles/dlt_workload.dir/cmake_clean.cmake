file(REMOVE_RECURSE
  "CMakeFiles/dlt_workload.dir/minidb.cc.o"
  "CMakeFiles/dlt_workload.dir/minidb.cc.o.d"
  "CMakeFiles/dlt_workload.dir/record_campaigns.cc.o"
  "CMakeFiles/dlt_workload.dir/record_campaigns.cc.o.d"
  "CMakeFiles/dlt_workload.dir/replay_block_device.cc.o"
  "CMakeFiles/dlt_workload.dir/replay_block_device.cc.o.d"
  "CMakeFiles/dlt_workload.dir/rpi3_testbed.cc.o"
  "CMakeFiles/dlt_workload.dir/rpi3_testbed.cc.o.d"
  "CMakeFiles/dlt_workload.dir/sqlite_scripts.cc.o"
  "CMakeFiles/dlt_workload.dir/sqlite_scripts.cc.o.d"
  "libdlt_workload.a"
  "libdlt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
