# Empty dependencies file for dlt_workload.
# This may be replaced when dependencies are built.
