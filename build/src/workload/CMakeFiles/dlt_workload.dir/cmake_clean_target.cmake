file(REMOVE_RECURSE
  "libdlt_workload.a"
)
