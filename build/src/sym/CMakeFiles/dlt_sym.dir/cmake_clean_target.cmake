file(REMOVE_RECURSE
  "libdlt_sym.a"
)
