
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sym/constraint.cc" "src/sym/CMakeFiles/dlt_sym.dir/constraint.cc.o" "gcc" "src/sym/CMakeFiles/dlt_sym.dir/constraint.cc.o.d"
  "/root/repo/src/sym/expr.cc" "src/sym/CMakeFiles/dlt_sym.dir/expr.cc.o" "gcc" "src/sym/CMakeFiles/dlt_sym.dir/expr.cc.o.d"
  "/root/repo/src/sym/tvalue.cc" "src/sym/CMakeFiles/dlt_sym.dir/tvalue.cc.o" "gcc" "src/sym/CMakeFiles/dlt_sym.dir/tvalue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/dlt_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
