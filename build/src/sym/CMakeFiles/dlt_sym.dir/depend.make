# Empty dependencies file for dlt_sym.
# This may be replaced when dependencies are built.
