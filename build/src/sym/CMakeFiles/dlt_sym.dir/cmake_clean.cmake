file(REMOVE_RECURSE
  "CMakeFiles/dlt_sym.dir/constraint.cc.o"
  "CMakeFiles/dlt_sym.dir/constraint.cc.o.d"
  "CMakeFiles/dlt_sym.dir/expr.cc.o"
  "CMakeFiles/dlt_sym.dir/expr.cc.o.d"
  "CMakeFiles/dlt_sym.dir/tvalue.cc.o"
  "CMakeFiles/dlt_sym.dir/tvalue.cc.o.d"
  "libdlt_sym.a"
  "libdlt_sym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
