# Empty compiler generated dependencies file for memory_overhead.
# This may be replaced when dependencies are built.
