file(REMOVE_RECURSE
  "CMakeFiles/memory_overhead.dir/memory_overhead.cc.o"
  "CMakeFiles/memory_overhead.dir/memory_overhead.cc.o.d"
  "memory_overhead"
  "memory_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
