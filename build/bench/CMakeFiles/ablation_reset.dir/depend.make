# Empty dependencies file for ablation_reset.
# This may be replaced when dependencies are built.
