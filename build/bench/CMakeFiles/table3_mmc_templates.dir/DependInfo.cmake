
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_mmc_templates.cc" "bench/CMakeFiles/table3_mmc_templates.dir/table3_mmc_templates.cc.o" "gcc" "bench/CMakeFiles/table3_mmc_templates.dir/table3_mmc_templates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/dlt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/drv/CMakeFiles/dlt_drv.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/CMakeFiles/dlt_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/dlt_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/kern/CMakeFiles/dlt_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dlt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sym/CMakeFiles/dlt_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dlt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/dlt_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
