# Empty compiler generated dependencies file for table3_mmc_templates.
# This may be replaced when dependencies are built.
