file(REMOVE_RECURSE
  "CMakeFiles/table3_mmc_templates.dir/table3_mmc_templates.cc.o"
  "CMakeFiles/table3_mmc_templates.dir/table3_mmc_templates.cc.o.d"
  "table3_mmc_templates"
  "table3_mmc_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_mmc_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
