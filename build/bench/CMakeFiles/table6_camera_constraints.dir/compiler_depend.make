# Empty compiler generated dependencies file for table6_camera_constraints.
# This may be replaced when dependencies are built.
