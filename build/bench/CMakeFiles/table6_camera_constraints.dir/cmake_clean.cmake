file(REMOVE_RECURSE
  "CMakeFiles/table6_camera_constraints.dir/table6_camera_constraints.cc.o"
  "CMakeFiles/table6_camera_constraints.dir/table6_camera_constraints.cc.o.d"
  "table6_camera_constraints"
  "table6_camera_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_camera_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
