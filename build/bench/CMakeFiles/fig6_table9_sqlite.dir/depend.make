# Empty dependencies file for fig6_table9_sqlite.
# This may be replaced when dependencies are built.
