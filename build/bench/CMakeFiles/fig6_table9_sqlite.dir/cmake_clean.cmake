file(REMOVE_RECURSE
  "CMakeFiles/fig6_table9_sqlite.dir/fig6_table9_sqlite.cc.o"
  "CMakeFiles/fig6_table9_sqlite.dir/fig6_table9_sqlite.cc.o.d"
  "fig6_table9_sqlite"
  "fig6_table9_sqlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_table9_sqlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
