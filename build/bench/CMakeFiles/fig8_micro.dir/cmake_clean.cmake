file(REMOVE_RECURSE
  "CMakeFiles/fig8_micro.dir/fig8_micro.cc.o"
  "CMakeFiles/fig8_micro.dir/fig8_micro.cc.o.d"
  "fig8_micro"
  "fig8_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
