# Empty dependencies file for fig8_micro.
# This may be replaced when dependencies are built.
