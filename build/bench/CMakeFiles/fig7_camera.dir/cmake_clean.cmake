file(REMOVE_RECURSE
  "CMakeFiles/fig7_camera.dir/fig7_camera.cc.o"
  "CMakeFiles/fig7_camera.dir/fig7_camera.cc.o.d"
  "fig7_camera"
  "fig7_camera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_camera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
