# Empty compiler generated dependencies file for fig7_camera.
# This may be replaced when dependencies are built.
