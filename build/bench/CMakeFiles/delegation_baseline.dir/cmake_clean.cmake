file(REMOVE_RECURSE
  "CMakeFiles/delegation_baseline.dir/delegation_baseline.cc.o"
  "CMakeFiles/delegation_baseline.dir/delegation_baseline.cc.o.d"
  "delegation_baseline"
  "delegation_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delegation_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
