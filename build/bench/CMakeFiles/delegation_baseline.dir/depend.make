# Empty dependencies file for delegation_baseline.
# This may be replaced when dependencies are built.
