file(REMOVE_RECURSE
  "CMakeFiles/table7_8_efforts.dir/table7_8_efforts.cc.o"
  "CMakeFiles/table7_8_efforts.dir/table7_8_efforts.cc.o.d"
  "table7_8_efforts"
  "table7_8_efforts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_8_efforts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
