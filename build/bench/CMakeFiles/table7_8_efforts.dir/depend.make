# Empty dependencies file for table7_8_efforts.
# This may be replaced when dependencies are built.
