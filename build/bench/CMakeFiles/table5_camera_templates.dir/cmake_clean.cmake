file(REMOVE_RECURSE
  "CMakeFiles/table5_camera_templates.dir/table5_camera_templates.cc.o"
  "CMakeFiles/table5_camera_templates.dir/table5_camera_templates.cc.o.d"
  "table5_camera_templates"
  "table5_camera_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_camera_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
