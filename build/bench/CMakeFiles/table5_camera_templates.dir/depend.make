# Empty dependencies file for table5_camera_templates.
# This may be replaced when dependencies are built.
