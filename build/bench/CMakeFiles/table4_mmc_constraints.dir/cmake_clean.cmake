file(REMOVE_RECURSE
  "CMakeFiles/table4_mmc_constraints.dir/table4_mmc_constraints.cc.o"
  "CMakeFiles/table4_mmc_constraints.dir/table4_mmc_constraints.cc.o.d"
  "table4_mmc_constraints"
  "table4_mmc_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_mmc_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
