# Empty compiler generated dependencies file for table4_mmc_constraints.
# This may be replaced when dependencies are built.
