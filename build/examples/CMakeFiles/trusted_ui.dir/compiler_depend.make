# Empty compiler generated dependencies file for trusted_ui.
# This may be replaced when dependencies are built.
