file(REMOVE_RECURSE
  "CMakeFiles/trusted_ui.dir/trusted_ui.cpp.o"
  "CMakeFiles/trusted_ui.dir/trusted_ui.cpp.o.d"
  "trusted_ui"
  "trusted_ui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trusted_ui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
