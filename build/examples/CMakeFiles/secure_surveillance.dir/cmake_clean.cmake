file(REMOVE_RECURSE
  "CMakeFiles/secure_surveillance.dir/secure_surveillance.cpp.o"
  "CMakeFiles/secure_surveillance.dir/secure_surveillance.cpp.o.d"
  "secure_surveillance"
  "secure_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
