# Empty dependencies file for secure_surveillance.
# This may be replaced when dependencies are built.
