# Empty compiler generated dependencies file for driverlet_inspector.
# This may be replaced when dependencies are built.
