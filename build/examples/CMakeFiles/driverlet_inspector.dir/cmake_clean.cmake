file(REMOVE_RECURSE
  "CMakeFiles/driverlet_inspector.dir/driverlet_inspector.cpp.o"
  "CMakeFiles/driverlet_inspector.dir/driverlet_inspector.cpp.o.d"
  "driverlet_inspector"
  "driverlet_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driverlet_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
