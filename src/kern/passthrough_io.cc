#include "src/kern/passthrough_io.h"

#include <algorithm>
#include <cstring>
#include <optional>

#include "src/soc/log.h"

namespace dlt {

PassthroughIo::PassthroughIo(Machine* machine, CmaPool* pool, World world, uint64_t rng_seed)
    : machine_(machine), pool_(pool), world_(world), rng_state_(rng_seed | 1) {}

void PassthroughIo::ChargeNs(uint64_t ns) {
  ns_accum_ += ns;
  if (ns_accum_ >= 1000) {
    machine_->clock().Advance(ns_accum_ / 1000);
    ns_accum_ %= 1000;
  }
}

Result<PhysAddr> PassthroughIo::DeviceAddr(uint16_t device, uint64_t offset) const {
  DLT_ASSIGN_OR_RETURN(Machine::DeviceEntry e, machine_->DeviceById(device));
  if (offset >= e.size) {
    return Status::kOutOfRange;
  }
  return e.base + offset;
}

TValue PassthroughIo::RegRead32(uint16_t device, uint64_t offset, SourceLoc loc) {
  (void)loc;
  ChargeNs(machine_->latency().mmio_access_ns);
  Result<PhysAddr> addr = DeviceAddr(device, offset);
  if (!addr.ok()) {
    return TValue(0);
  }
  Result<uint32_t> v = machine_->mem().Read32(world_, *addr);
  return TValue(v.value_or(0));
}

void PassthroughIo::RegWrite32(uint16_t device, uint64_t offset, const TValue& value,
                               SourceLoc loc) {
  (void)loc;
  ChargeNs(machine_->latency().mmio_access_ns);
  Result<PhysAddr> addr = DeviceAddr(device, offset);
  if (!addr.ok()) {
    return;
  }
  (void)machine_->mem().Write32(world_, *addr, value.value32());
}

TValue PassthroughIo::ShmRead32(const TValue& addr, SourceLoc loc) {
  (void)loc;
  Result<uint32_t> v = machine_->mem().Read32(world_, addr.value());
  return TValue(v.value_or(0));
}

void PassthroughIo::ShmWrite32(const TValue& addr, const TValue& value, SourceLoc loc) {
  (void)loc;
  (void)machine_->mem().Write32(world_, addr.value(), value.value32());
}

Status PassthroughIo::WaitForIrq(int line, uint64_t timeout_us, SourceLoc loc) {
  (void)loc;
  SimClock& clock = machine_->clock();
  uint64_t deadline = clock.now_us() + timeout_us;
  while (!machine_->irq().Pending(line)) {
    std::optional<uint64_t> next = clock.NextEventTime();
    if (!next.has_value() || *next > deadline) {
      clock.AdvanceTo(deadline);
      return Status::kTimeout;
    }
    clock.StepToNextEvent();
  }
  // Interrupt delivery + scheduler wakeup of the waiting task.
  clock.Advance(machine_->latency().irq_delivery_us + machine_->latency().kern_wakeup_us);
  return Status::kOk;
}

Status PassthroughIo::PollReg32(uint16_t device, uint64_t offset, uint32_t mask, uint32_t want,
                                bool negate, uint64_t timeout_us, uint64_t interval_us,
                                SourceLoc loc) {
  uint64_t waited = 0;
  while (true) {
    uint32_t v = RegRead32(device, offset, loc).value32();
    bool match = ((v & mask) == want);
    if (match != negate) {
      return Status::kOk;
    }
    if (waited >= timeout_us) {
      return Status::kTimeout;
    }
    DelayUs(interval_us == 0 ? 1 : interval_us, loc);
    waited += interval_us == 0 ? 1 : interval_us;
  }
}

void PassthroughIo::DelayUs(uint64_t us, SourceLoc loc) {
  (void)loc;
  machine_->clock().Advance(us);
}

TValue PassthroughIo::DmaAlloc(const TValue& size, SourceLoc loc) {
  (void)loc;
  Result<PhysAddr> addr = pool_->Alloc(size.value());
  if (!addr.ok()) {
    DLT_LOG(kError) << "DMA pool exhausted (" << pool_->used() << "/" << pool_->capacity() << ")";
    return TValue(0);
  }
  return TValue(*addr);
}

void PassthroughIo::DmaReleaseAll(SourceLoc loc) {
  (void)loc;
  pool_->ReleaseAll();
}

TValue PassthroughIo::GetRandomU32(SourceLoc loc) {
  (void)loc;
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  return TValue(static_cast<uint32_t>(rng_state_));
}

TValue PassthroughIo::GetTimestampUs(SourceLoc loc) {
  (void)loc;
  return TValue(machine_->clock().now_us());
}

void PassthroughIo::CopyToDma(const TValue& dst, const uint8_t* src_base, const TValue& src_off,
                              const TValue& len, SourceLoc loc) {
  (void)loc;
  (void)machine_->mem().WriteBytes(world_, dst.value(), src_base + src_off.value(),
                                   static_cast<size_t>(len.value()));
}

void PassthroughIo::CopyFromDma(uint8_t* dst_base, const TValue& dst_off, const TValue& src,
                                const TValue& len, SourceLoc loc) {
  (void)loc;
  (void)machine_->mem().ReadBytes(world_, src.value(), dst_base + dst_off.value(),
                                  static_cast<size_t>(len.value()));
}

void PassthroughIo::PioIn(uint16_t device, uint64_t offset, uint8_t* dst_base,
                          const TValue& dst_off, const TValue& len, SourceLoc loc) {
  uint64_t total = len.value();
  uint8_t* dst = dst_base + dst_off.value();
  for (uint64_t done = 0; done < total; done += 4) {
    uint32_t w = RegRead32(device, offset, loc).value32();
    size_t take = static_cast<size_t>(std::min<uint64_t>(4, total - done));
    std::memcpy(dst + done, &w, take);
  }
}

void PassthroughIo::PioOut(uint16_t device, uint64_t offset, const uint8_t* src_base,
                           const TValue& src_off, const TValue& len, SourceLoc loc) {
  uint64_t total = len.value();
  const uint8_t* src = src_base + src_off.value();
  for (uint64_t done = 0; done < total; done += 4) {
    uint32_t w = 0;
    size_t take = static_cast<size_t>(std::min<uint64_t>(4, total - done));
    std::memcpy(&w, src + done, take);
    RegWrite32(device, offset, TValue(w), loc);
  }
}

bool PassthroughIo::Branch(const TValue& lhs, Cmp cmp, const TValue& rhs, SourceLoc loc) {
  (void)loc;
  uint64_t a = lhs.value();
  uint64_t b = rhs.value();
  switch (cmp) {
    case Cmp::kEq: return a == b;
    case Cmp::kNe: return a != b;
    case Cmp::kLt: return a < b;
    case Cmp::kLe: return a <= b;
    case Cmp::kGt: return a > b;
    case Cmp::kGe: return a >= b;
  }
  return false;
}

uint64_t PassthroughIo::NowUs() { return machine_->clock().now_us(); }

}  // namespace dlt
