// PassthroughIo: the native (non-recording) DriverIo. Gold drivers run through
// it for baseline benchmarks and for the underlying IO of record sessions.
// Performs real accesses on the simulated machine, charges bus/IRQ/software
// latencies against the virtual clock, and pumps the discrete-event queue while
// waiting for interrupts.
#ifndef SRC_KERN_PASSTHROUGH_IO_H_
#define SRC_KERN_PASSTHROUGH_IO_H_

#include "src/core/driver_io.h"
#include "src/kern/cma_pool.h"
#include "src/soc/machine.h"

namespace dlt {

class PassthroughIo : public DriverIo {
 public:
  // |world| is the bus-master security world for CPU accesses: kNormal for the
  // Linux-side driver, kSecure when the TEE exercises a driver directly.
  PassthroughIo(Machine* machine, CmaPool* pool, World world, uint64_t rng_seed = 0x5eed);

  TValue RegRead32(uint16_t device, uint64_t offset, SourceLoc loc) override;
  void RegWrite32(uint16_t device, uint64_t offset, const TValue& value, SourceLoc loc) override;
  TValue ShmRead32(const TValue& addr, SourceLoc loc) override;
  void ShmWrite32(const TValue& addr, const TValue& value, SourceLoc loc) override;
  Status WaitForIrq(int line, uint64_t timeout_us, SourceLoc loc) override;
  Status PollReg32(uint16_t device, uint64_t offset, uint32_t mask, uint32_t want, bool negate,
                   uint64_t timeout_us, uint64_t interval_us, SourceLoc loc) override;
  void DelayUs(uint64_t us, SourceLoc loc) override;
  TValue DmaAlloc(const TValue& size, SourceLoc loc) override;
  void DmaReleaseAll(SourceLoc loc) override;
  TValue GetRandomU32(SourceLoc loc) override;
  TValue GetTimestampUs(SourceLoc loc) override;
  void CopyToDma(const TValue& dst, const uint8_t* src_base, const TValue& src_off,
                 const TValue& len, SourceLoc loc) override;
  void CopyFromDma(uint8_t* dst_base, const TValue& dst_off, const TValue& src, const TValue& len,
                   SourceLoc loc) override;
  void PioIn(uint16_t device, uint64_t offset, uint8_t* dst_base, const TValue& dst_off,
             const TValue& len, SourceLoc loc) override;
  void PioOut(uint16_t device, uint64_t offset, const uint8_t* src_base, const TValue& src_off,
              const TValue& len, SourceLoc loc) override;
  bool Branch(const TValue& lhs, Cmp cmp, const TValue& rhs, SourceLoc loc) override;
  uint64_t NowUs() override;

  void ReleaseDma() { pool_->ReleaseAll(); }
  CmaPool* pool() { return pool_; }
  Machine* machine() { return machine_; }

 private:
  void ChargeNs(uint64_t ns);
  Result<PhysAddr> DeviceAddr(uint16_t device, uint64_t offset) const;

  Machine* machine_;
  CmaPool* pool_;
  World world_;
  uint64_t rng_state_;
  uint64_t ns_accum_ = 0;
};

}  // namespace dlt

#endif  // SRC_KERN_PASSTHROUGH_IO_H_
