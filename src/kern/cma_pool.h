// Contiguous-memory allocator carving a fixed physical window: the normal-world
// DMA pool and (separately instantiated) the TEE's reserved pool — the paper
// reserves 3 MB of TEE RAM and uses the stock OPTEE allocator (§7.3.1).
#ifndef SRC_KERN_CMA_POOL_H_
#define SRC_KERN_CMA_POOL_H_

#include "src/soc/status.h"
#include "src/soc/types.h"

namespace dlt {

class CmaPool {
 public:
  // Allocations are aligned to |align| (16 KB default: the VCHIQ queue base is
  // exchanged as addr & ~0x3fff, which must round-trip losslessly).
  CmaPool(PhysAddr base, uint64_t size, uint64_t align = 0x4000)
      : base_(base), size_(size), align_(align), next_(base) {}

  Result<PhysAddr> Alloc(uint64_t size);
  void ReleaseAll() { next_ = base_; }

  PhysAddr base() const { return base_; }
  uint64_t capacity() const { return size_; }
  uint64_t used() const { return next_ - base_; }
  bool Contains(PhysAddr addr, uint64_t len) const {
    return addr >= base_ && addr + len <= base_ + size_;
  }

 private:
  PhysAddr base_;
  uint64_t size_;
  uint64_t align_;
  PhysAddr next_;
};

inline Result<PhysAddr> CmaPool::Alloc(uint64_t size) {
  PhysAddr aligned = (next_ + align_ - 1) & ~(align_ - 1);
  if (size == 0 || aligned + size > base_ + size_) {
    return Status::kNoMemory;
  }
  next_ = aligned + size;
  return aligned;
}

}  // namespace dlt

#endif  // SRC_KERN_CMA_POOL_H_
