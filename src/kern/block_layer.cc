#include "src/kern/block_layer.h"

#include <algorithm>
#include <cstring>

namespace dlt {

PageCacheBlockDevice::PageCacheBlockDevice(RawBlockDriver* driver, Machine* machine, SyncMode mode,
                                           size_t capacity_extents)
    : driver_(driver), machine_(machine), mode_(mode), capacity_extents_(capacity_extents) {}

void PageCacheBlockDevice::ChargeKernelCpu() {
  machine_->clock().Advance(machine_->latency().kern_block_layer_us);
}

Status PageCacheBlockDevice::EvictIfNeeded() {
  while (cache_.size() > capacity_extents_ && !lru_.empty()) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = cache_.find(victim);
    if (it == cache_.end()) {
      continue;
    }
    if (it->second.dirty) {
      DLT_RETURN_IF_ERROR(WriteExtents({victim}));
    }
    cache_.erase(victim);
  }
  return Status::kOk;
}

Result<PageCacheBlockDevice::Extent*> PageCacheBlockDevice::GetExtent(uint64_t index,
                                                                      bool for_write,
                                                                      bool whole_overwrite) {
  auto it = cache_.find(index);
  if (it != cache_.end()) {
    ++hits_;
    lru_.remove(index);
    lru_.push_front(index);
    return &it->second;
  }
  ++misses_;
  Extent e;
  e.data.resize(kExtentBytes);
  if (!(for_write && whole_overwrite)) {
    // Fill from the device: one aligned 8-sector read, charged per-page cost.
    machine_->clock().Advance(driver_->PerPageSchedulingUs());
    DLT_RETURN_IF_ERROR(driver_->ReadBlocks(index * kExtentSectors, kExtentSectors, e.data.data()));
  }
  auto [ins, ok] = cache_.emplace(index, std::move(e));
  (void)ok;
  lru_.push_front(index);
  DLT_RETURN_IF_ERROR(EvictIfNeeded());
  return &ins->second;
}

Status PageCacheBlockDevice::Read(uint64_t lba, uint32_t count, uint8_t* out) {
  ++ops_;
  ChargeKernelCpu();
  uint64_t end = lba + count;
  while (lba < end) {
    uint64_t index = lba / kExtentSectors;
    uint32_t in_off = static_cast<uint32_t>(lba % kExtentSectors);
    uint32_t take = std::min<uint32_t>(kExtentSectors - in_off, static_cast<uint32_t>(end - lba));
    DLT_ASSIGN_OR_RETURN(Extent * e, GetExtent(index, false, false));
    std::memcpy(out, e->data.data() + static_cast<size_t>(in_off) * 512,
                static_cast<size_t>(take) * 512);
    out += static_cast<size_t>(take) * 512;
    lba += take;
  }
  return Status::kOk;
}

Status PageCacheBlockDevice::Write(uint64_t lba, uint32_t count, const uint8_t* data) {
  ++ops_;
  ChargeKernelCpu();
  std::vector<uint64_t> touched;
  uint64_t end = lba + count;
  while (lba < end) {
    uint64_t index = lba / kExtentSectors;
    uint32_t in_off = static_cast<uint32_t>(lba % kExtentSectors);
    uint32_t take = std::min<uint32_t>(kExtentSectors - in_off, static_cast<uint32_t>(end - lba));
    bool whole = (in_off == 0 && take == kExtentSectors);
    DLT_ASSIGN_OR_RETURN(Extent * e, GetExtent(index, true, whole));
    std::memcpy(e->data.data() + static_cast<size_t>(in_off) * 512, data,
                static_cast<size_t>(take) * 512);
    e->dirty = true;
    touched.push_back(index);
    data += static_cast<size_t>(take) * 512;
    lba += take;
  }
  if (mode_ == SyncMode::kSync) {
    // O_SYNC: the write barrier + synchronous completion path on top of the
    // device wait itself (journal barriers, plug/unplug, wakeup chains).
    machine_->clock().Advance(machine_->latency().kern_sync_write_us);
    DLT_RETURN_IF_ERROR(WriteExtents(touched));
  }
  return Status::kOk;
}

Status PageCacheBlockDevice::WriteExtents(const std::vector<uint64_t>& sorted_indices) {
  // Merge adjacent dirty extents into requests up to the driver's max size —
  // the block-layer merging a synchronous driverlet forgoes.
  std::vector<uint64_t> indices;
  for (uint64_t idx : sorted_indices) {
    auto it = cache_.find(idx);
    if (it != cache_.end() && it->second.dirty) {
      indices.push_back(idx);
    }
  }
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());

  size_t i = 0;
  const uint32_t max_extents = std::max<uint32_t>(1, driver_->MaxBlocksPerRequest() / kExtentSectors);
  while (i < indices.size()) {
    size_t j = i + 1;
    while (j < indices.size() && indices[j] == indices[j - 1] + 1 && (j - i) < max_extents) {
      ++j;
    }
    size_t run = j - i;
    std::vector<uint8_t> buf(run * kExtentBytes);
    for (size_t k = 0; k < run; ++k) {
      Extent& e = cache_[indices[i + k]];
      std::memcpy(buf.data() + k * kExtentBytes, e.data.data(), kExtentBytes);
      e.dirty = false;
    }
    machine_->clock().Advance(driver_->PerPageSchedulingUs() * run);
    DLT_RETURN_IF_ERROR(driver_->WriteBlocks(indices[i] * kExtentSectors,
                                             static_cast<uint32_t>(run * kExtentSectors),
                                             buf.data()));
    ++device_writes_;
    i = j;
  }
  return Status::kOk;
}

Status PageCacheBlockDevice::Flush() {
  std::vector<uint64_t> dirty;
  for (const auto& [idx, e] : cache_) {
    if (e.dirty) {
      dirty.push_back(idx);
    }
  }
  return WriteExtents(dirty);
}

}  // namespace dlt
