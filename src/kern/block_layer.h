// Mini Linux block layer: the kernel machinery between a filesystem-level
// consumer (workload::MiniDb) and a gold storage driver. Provides 8-sector
// alignment (the source of the paper's blkid & ~0x7 taint, §6.1.3), request
// splitting to the driver's max transfer, a write-back page cache with request
// merging (the native baseline) and an O_SYNC mode (native-sync).
#ifndef SRC_KERN_BLOCK_LAYER_H_
#define SRC_KERN_BLOCK_LAYER_H_

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "src/soc/machine.h"
#include "src/soc/status.h"

namespace dlt {

// What gold storage drivers expose upward (blkid/blkcnt in 512 B sectors).
class RawBlockDriver {
 public:
  virtual ~RawBlockDriver() = default;
  virtual Status ReadBlocks(uint64_t blkid, uint32_t blkcnt, uint8_t* buf) = 0;
  virtual Status WriteBlocks(uint64_t blkid, uint32_t blkcnt, const uint8_t* buf) = 0;
  virtual uint32_t MaxBlocksPerRequest() const = 0;
  // CPU cost the kernel pays per data page when submitting to this driver
  // (e.g. USB per-4KB transfer scheduling, paper §7.3.3).
  virtual uint64_t PerPageSchedulingUs() const { return 0; }
};

// What workloads consume. Lba/count in 512 B sectors.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;
  virtual Status Read(uint64_t lba, uint32_t count, uint8_t* out) = 0;
  virtual Status Write(uint64_t lba, uint32_t count, const uint8_t* data) = 0;
  virtual Status Flush() = 0;
  virtual uint64_t io_ops() const = 0;
};

// The native path: syscall + VFS + block layer costs, 8-sector-aligned extents,
// write-back page cache (or O_SYNC), request merging on flush.
class PageCacheBlockDevice : public BlockDevice {
 public:
  enum class SyncMode {
    kWriteback,  // "native": writes complete at the cache
    kSync,       // "native-sync": every write waits for the device
  };

  PageCacheBlockDevice(RawBlockDriver* driver, Machine* machine, SyncMode mode,
                       size_t capacity_extents = 512);

  Status Read(uint64_t lba, uint32_t count, uint8_t* out) override;
  Status Write(uint64_t lba, uint32_t count, const uint8_t* data) override;
  Status Flush() override;
  uint64_t io_ops() const override { return ops_; }

  uint64_t cache_hits() const { return hits_; }
  uint64_t cache_misses() const { return misses_; }
  uint64_t device_writes() const { return device_writes_; }

 private:
  static constexpr uint32_t kExtentSectors = 8;  // 4 KB cache granule
  static constexpr size_t kExtentBytes = kExtentSectors * 512;

  struct Extent {
    std::vector<uint8_t> data;
    bool dirty = false;
  };

  void ChargeKernelCpu();
  Result<Extent*> GetExtent(uint64_t index, bool for_write, bool whole_overwrite);
  Status WriteExtents(const std::vector<uint64_t>& sorted_indices);
  Status EvictIfNeeded();

  RawBlockDriver* driver_;
  Machine* machine_;
  SyncMode mode_;
  size_t capacity_extents_;
  std::map<uint64_t, Extent> cache_;
  std::list<uint64_t> lru_;  // front = most recent
  uint64_t ops_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t device_writes_ = 0;
};

}  // namespace dlt

#endif  // SRC_KERN_BLOCK_LAYER_H_
