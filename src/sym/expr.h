// Symbolic expression trees. The recorder's dynamic taint tracking represents every
// tainted value as (concrete value, expression over named inputs); expressions become
// the parameterized output values of interaction templates ("taint sink & operations",
// paper Tables 4 and 6) and the replayer evaluates them against trustlet inputs.
#ifndef SRC_SYM_EXPR_H_
#define SRC_SYM_EXPR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>

#include "src/soc/status.h"

namespace dlt {

// Maps input symbol names (entry parameters, environment returns, device reads)
// to concrete values for one replay run.
using Bindings = std::map<std::string, uint64_t>;

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

enum class ExprOp : uint8_t {
  kConst,
  kInput,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kNot,  // unary bitwise not
};

class Expr {
 public:
  static ExprRef Const(uint64_t v);
  static ExprRef Input(std::string name);
  static ExprRef Binary(ExprOp op, ExprRef lhs, ExprRef rhs);  // constant-folds
  static ExprRef Not(ExprRef operand);

  ExprOp op() const { return op_; }
  uint64_t constant() const { return constant_; }
  const std::string& input_name() const { return input_name_; }
  const ExprRef& lhs() const { return lhs_; }
  const ExprRef& rhs() const { return rhs_; }

  bool is_const() const { return op_ == ExprOp::kConst; }
  bool is_input() const { return op_ == ExprOp::kInput; }

  Result<uint64_t> Eval(const Bindings& bindings) const;
  void CollectInputs(std::set<std::string>* out) const;
  std::string ToString() const;

  // Structural equality.
  static bool Equal(const ExprRef& a, const ExprRef& b);

  // Parses the ToString() grammar:
  //   expr   := term | '(' expr op expr ')' | '(~' expr ')'
  //   term   := 0x<hex> | <decimal> | identifier
  static Result<ExprRef> Parse(std::string_view text);

 private:
  Expr() = default;

  ExprOp op_ = ExprOp::kConst;
  uint64_t constant_ = 0;
  std::string input_name_;
  ExprRef lhs_;
  ExprRef rhs_;
};

const char* ExprOpToken(ExprOp op);

}  // namespace dlt

#endif  // SRC_SYM_EXPR_H_
