#include "src/sym/expr.h"

#include <cctype>
#include <sstream>

namespace dlt {

namespace {

Result<uint64_t> Apply(ExprOp op, uint64_t a, uint64_t b) {
  switch (op) {
    case ExprOp::kAnd: return a & b;
    case ExprOp::kOr: return a | b;
    case ExprOp::kXor: return a ^ b;
    case ExprOp::kShl: return b >= 64 ? uint64_t{0} : (a << b);
    case ExprOp::kShr: return b >= 64 ? uint64_t{0} : (a >> b);
    case ExprOp::kAdd: return a + b;
    case ExprOp::kSub: return a - b;
    case ExprOp::kMul: return a * b;
    case ExprOp::kDiv: return b == 0 ? Result<uint64_t>(Status::kInvalidArg) : Result<uint64_t>(a / b);
    case ExprOp::kMod: return b == 0 ? Result<uint64_t>(Status::kInvalidArg) : Result<uint64_t>(a % b);
    default: return Status::kInvalidArg;
  }
}

}  // namespace

const char* ExprOpToken(ExprOp op) {
  switch (op) {
    case ExprOp::kAnd: return "&";
    case ExprOp::kOr: return "|";
    case ExprOp::kXor: return "^";
    case ExprOp::kShl: return "<<";
    case ExprOp::kShr: return ">>";
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kDiv: return "/";
    case ExprOp::kMod: return "%";
    case ExprOp::kNot: return "~";
    case ExprOp::kConst: return "<const>";
    case ExprOp::kInput: return "<input>";
  }
  return "?";
}

ExprRef Expr::Const(uint64_t v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kConst;
  e->constant_ = v;
  return e;
}

ExprRef Expr::Input(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kInput;
  e->input_name_ = std::move(name);
  return e;
}

ExprRef Expr::Binary(ExprOp op, ExprRef lhs, ExprRef rhs) {
  if (lhs == nullptr || rhs == nullptr) {
    return nullptr;
  }
  if (lhs->is_const() && rhs->is_const()) {
    Result<uint64_t> folded = Apply(op, lhs->constant_, rhs->constant_);
    if (folded.ok()) {
      return Const(*folded);
    }
  }
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprRef Expr::Not(ExprRef operand) {
  if (operand == nullptr) {
    return nullptr;
  }
  if (operand->is_const()) {
    return Const(~operand->constant_);
  }
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kNot;
  e->lhs_ = std::move(operand);
  return e;
}

Result<uint64_t> Expr::Eval(const Bindings& bindings) const {
  switch (op_) {
    case ExprOp::kConst:
      return constant_;
    case ExprOp::kInput: {
      auto it = bindings.find(input_name_);
      if (it == bindings.end()) {
        return Status::kNotFound;
      }
      return it->second;
    }
    case ExprOp::kNot: {
      DLT_ASSIGN_OR_RETURN(uint64_t v, lhs_->Eval(bindings));
      return ~v;
    }
    default: {
      DLT_ASSIGN_OR_RETURN(uint64_t a, lhs_->Eval(bindings));
      DLT_ASSIGN_OR_RETURN(uint64_t b, rhs_->Eval(bindings));
      return Apply(op_, a, b);
    }
  }
}

void Expr::CollectInputs(std::set<std::string>* out) const {
  switch (op_) {
    case ExprOp::kConst:
      return;
    case ExprOp::kInput:
      out->insert(input_name_);
      return;
    case ExprOp::kNot:
      lhs_->CollectInputs(out);
      return;
    default:
      lhs_->CollectInputs(out);
      rhs_->CollectInputs(out);
      return;
  }
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (op_) {
    case ExprOp::kConst:
      os << "0x" << std::hex << constant_;
      break;
    case ExprOp::kInput:
      os << input_name_;
      break;
    case ExprOp::kNot:
      os << "(~" << lhs_->ToString() << ")";
      break;
    default:
      os << "(" << lhs_->ToString() << " " << ExprOpToken(op_) << " " << rhs_->ToString() << ")";
      break;
  }
  return os.str();
}

bool Expr::Equal(const ExprRef& a, const ExprRef& b) {
  if (a == b) {
    return true;
  }
  if (a == nullptr || b == nullptr || a->op_ != b->op_) {
    return false;
  }
  switch (a->op_) {
    case ExprOp::kConst: return a->constant_ == b->constant_;
    case ExprOp::kInput: return a->input_name_ == b->input_name_;
    case ExprOp::kNot: return Equal(a->lhs_, b->lhs_);
    default: return Equal(a->lhs_, b->lhs_) && Equal(a->rhs_, b->rhs_);
  }
}

namespace {

// Recursive-descent parser for the ToString() grammar.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<ExprRef> ParseExpr() {
    SkipWs();
    if (Eof()) {
      return Status::kCorrupt;
    }
    if (Peek() == '(') {
      ++pos_;
      SkipWs();
      if (!Eof() && Peek() == '~') {
        ++pos_;
        DLT_ASSIGN_OR_RETURN(ExprRef inner, ParseExpr());
        if (!Consume(')')) {
          return Status::kCorrupt;
        }
        return Expr::Not(std::move(inner));
      }
      DLT_ASSIGN_OR_RETURN(ExprRef lhs, ParseExpr());
      SkipWs();
      DLT_ASSIGN_OR_RETURN(ExprOp op, ParseOp());
      DLT_ASSIGN_OR_RETURN(ExprRef rhs, ParseExpr());
      if (!Consume(')')) {
        return Status::kCorrupt;
      }
      return Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return ParseTerm();
  }

  bool AtEnd() {
    SkipWs();
    return Eof();
  }

 private:
  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void SkipWs() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (Eof() || Peek() != c) {
      return false;
    }
    ++pos_;
    return true;
  }

  Result<ExprOp> ParseOp() {
    SkipWs();
    if (Eof()) {
      return Status::kCorrupt;
    }
    char c = Peek();
    switch (c) {
      case '&': ++pos_; return ExprOp::kAnd;
      case '|': ++pos_; return ExprOp::kOr;
      case '^': ++pos_; return ExprOp::kXor;
      case '+': ++pos_; return ExprOp::kAdd;
      case '-': ++pos_; return ExprOp::kSub;
      case '*': ++pos_; return ExprOp::kMul;
      case '/': ++pos_; return ExprOp::kDiv;
      case '%': ++pos_; return ExprOp::kMod;
      case '<':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '<') {
          pos_ += 2;
          return ExprOp::kShl;
        }
        return Status::kCorrupt;
      case '>':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
          pos_ += 2;
          return ExprOp::kShr;
        }
        return Status::kCorrupt;
      default:
        return Status::kCorrupt;
    }
  }

  Result<ExprRef> ParseTerm() {
    SkipWs();
    if (Eof()) {
      return Status::kCorrupt;
    }
    char c = Peek();
    if (std::isdigit(static_cast<unsigned char>(c))) {
      uint64_t v = 0;
      if (c == '0' && pos_ + 1 < text_.size() && (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
        pos_ += 2;
        size_t digits = 0;
        while (!Eof() && std::isxdigit(static_cast<unsigned char>(Peek()))) {
          char d = Peek();
          uint64_t nib = std::isdigit(static_cast<unsigned char>(d))
                             ? static_cast<uint64_t>(d - '0')
                             : static_cast<uint64_t>(std::tolower(d) - 'a' + 10);
          v = (v << 4) | nib;
          ++pos_;
          ++digits;
        }
        if (digits == 0) {
          return Status::kCorrupt;
        }
      } else {
        while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          v = v * 10 + static_cast<uint64_t>(Peek() - '0');
          ++pos_;
        }
      }
      return Expr::Const(v);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name;
      while (!Eof() && (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_' ||
                        Peek() == '.')) {
        name.push_back(Peek());
        ++pos_;
      }
      return Expr::Input(std::move(name));
    }
    return Status::kCorrupt;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprRef> Expr::Parse(std::string_view text) {
  Parser p(text);
  DLT_ASSIGN_OR_RETURN(ExprRef e, p.ParseExpr());
  if (!p.AtEnd()) {
    return Status::kCorrupt;
  }
  return e;
}

}  // namespace dlt
