#include "src/sym/constraint.h"

#include <sstream>

namespace dlt {

const char* CmpToken(Cmp c) {
  switch (c) {
    case Cmp::kEq: return "==";
    case Cmp::kNe: return "!=";
    case Cmp::kLt: return "<";
    case Cmp::kLe: return "<=";
    case Cmp::kGt: return ">";
    case Cmp::kGe: return ">=";
  }
  return "?";
}

Cmp NegateCmp(Cmp c) {
  switch (c) {
    case Cmp::kEq: return Cmp::kNe;
    case Cmp::kNe: return Cmp::kEq;
    case Cmp::kLt: return Cmp::kGe;
    case Cmp::kLe: return Cmp::kGt;
    case Cmp::kGt: return Cmp::kLe;
    case Cmp::kGe: return Cmp::kLt;
  }
  return Cmp::kEq;
}

bool CompareValues(Cmp cmp, uint64_t a, uint64_t b) {
  switch (cmp) {
    case Cmp::kEq: return a == b;
    case Cmp::kNe: return a != b;
    case Cmp::kLt: return a < b;
    case Cmp::kLe: return a <= b;
    case Cmp::kGt: return a > b;
    case Cmp::kGe: return a >= b;
  }
  return false;
}

Result<bool> ConstraintAtom::Eval(const Bindings& bindings) const {
  DLT_ASSIGN_OR_RETURN(uint64_t a, lhs->Eval(bindings));
  DLT_ASSIGN_OR_RETURN(uint64_t b, rhs->Eval(bindings));
  return CompareValues(cmp, a, b);
}

std::string ConstraintAtom::ToString() const {
  std::ostringstream os;
  os << lhs->ToString() << " " << CmpToken(cmp) << " " << rhs->ToString();
  return os.str();
}

bool ConstraintAtom::Equal(const ConstraintAtom& a, const ConstraintAtom& b) {
  return a.cmp == b.cmp && Expr::Equal(a.lhs, b.lhs) && Expr::Equal(a.rhs, b.rhs);
}

Result<ConstraintAtom> ConstraintAtom::Parse(std::string_view text) {
  // Find the comparison operator at the top nesting level.
  int depth = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
    } else if (depth == 0) {
      Cmp cmp;
      size_t op_len = 0;
      if (c == '=' && i + 1 < text.size() && text[i + 1] == '=') {
        cmp = Cmp::kEq;
        op_len = 2;
      } else if (c == '!' && i + 1 < text.size() && text[i + 1] == '=') {
        cmp = Cmp::kNe;
        op_len = 2;
      } else if (c == '<' && i + 1 < text.size() && text[i + 1] == '=') {
        cmp = Cmp::kLe;
        op_len = 2;
      } else if (c == '>' && i + 1 < text.size() && text[i + 1] == '=') {
        cmp = Cmp::kGe;
        op_len = 2;
      } else if (c == '<' && (i + 1 >= text.size() || text[i + 1] != '<')) {
        cmp = Cmp::kLt;
        op_len = 1;
      } else if (c == '>' && (i + 1 >= text.size() || text[i + 1] != '>')) {
        cmp = Cmp::kGt;
        op_len = 1;
      } else {
        continue;
      }
      DLT_ASSIGN_OR_RETURN(ExprRef lhs, Expr::Parse(text.substr(0, i)));
      DLT_ASSIGN_OR_RETURN(ExprRef rhs, Expr::Parse(text.substr(i + op_len)));
      return ConstraintAtom{std::move(lhs), cmp, std::move(rhs)};
    }
  }
  return Status::kCorrupt;
}

namespace {
ConstraintAtom MakeAtom(const TValue& lhs, Cmp cmp, const TValue& rhs) {
  return ConstraintAtom{lhs.expr(), cmp, rhs.expr()};
}
}  // namespace

ConstraintAtom CmpEq(const TValue& lhs, const TValue& rhs) { return MakeAtom(lhs, Cmp::kEq, rhs); }
ConstraintAtom CmpNe(const TValue& lhs, const TValue& rhs) { return MakeAtom(lhs, Cmp::kNe, rhs); }
ConstraintAtom CmpLt(const TValue& lhs, const TValue& rhs) { return MakeAtom(lhs, Cmp::kLt, rhs); }
ConstraintAtom CmpLe(const TValue& lhs, const TValue& rhs) { return MakeAtom(lhs, Cmp::kLe, rhs); }
ConstraintAtom CmpGt(const TValue& lhs, const TValue& rhs) { return MakeAtom(lhs, Cmp::kGt, rhs); }
ConstraintAtom CmpGe(const TValue& lhs, const TValue& rhs) { return MakeAtom(lhs, Cmp::kGe, rhs); }

void Constraint::AddAtom(ConstraintAtom atom) {
  for (const auto& existing : atoms_) {
    if (ConstraintAtom::Equal(existing, atom)) {
      return;
    }
  }
  atoms_.push_back(std::move(atom));
}

Result<bool> Constraint::Eval(const Bindings& bindings) const {
  for (const auto& a : atoms_) {
    DLT_ASSIGN_OR_RETURN(bool ok, a.Eval(bindings));
    if (!ok) {
      return false;
    }
  }
  return true;
}

void Constraint::Merge(const Constraint& other) {
  for (const auto& a : other.atoms_) {
    AddAtom(a);
  }
}

void Constraint::CollectInputs(std::set<std::string>* out) const {
  for (const auto& a : atoms_) {
    a.lhs->CollectInputs(out);
    a.rhs->CollectInputs(out);
  }
}

std::string Constraint::ToString() const {
  if (atoms_.empty()) {
    return "true";
  }
  std::ostringstream os;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) {
      os << " && ";
    }
    os << atoms_[i].ToString();
  }
  return os.str();
}

Result<Constraint> Constraint::Parse(std::string_view text) {
  Constraint c;
  // Trim.
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  if (text == "true" || text.empty()) {
    return c;
  }
  size_t start = 0;
  int depth = 0;
  for (size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] == '(') {
      ++depth;
    } else if (text[i] == ')') {
      --depth;
    } else if (depth == 0 && text[i] == '&' && text[i + 1] == '&') {
      DLT_ASSIGN_OR_RETURN(ConstraintAtom atom, ConstraintAtom::Parse(text.substr(start, i - start)));
      c.AddAtom(std::move(atom));
      start = i + 2;
      ++i;
    }
  }
  DLT_ASSIGN_OR_RETURN(ConstraintAtom atom, ConstraintAtom::Parse(text.substr(start)));
  c.AddAtom(std::move(atom));
  return c;
}

}  // namespace dlt
