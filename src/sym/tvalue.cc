#include "src/sym/tvalue.h"

namespace dlt {

namespace {

uint64_t ApplyConcrete(ExprOp op, uint64_t a, uint64_t b) {
  switch (op) {
    case ExprOp::kAnd: return a & b;
    case ExprOp::kOr: return a | b;
    case ExprOp::kXor: return a ^ b;
    case ExprOp::kShl: return b >= 64 ? 0 : a << b;
    case ExprOp::kShr: return b >= 64 ? 0 : a >> b;
    case ExprOp::kAdd: return a + b;
    case ExprOp::kSub: return a - b;
    case ExprOp::kMul: return a * b;
    case ExprOp::kDiv: return b == 0 ? 0 : a / b;
    case ExprOp::kMod: return b == 0 ? 0 : a % b;
    default: return 0;
  }
}

}  // namespace

TValue BinOp(ExprOp op, const TValue& a, const TValue& b) {
  uint64_t concrete = ApplyConcrete(op, a.value(), b.value());
  if (!a.tainted() && !b.tainted()) {
    return TValue(concrete);
  }
  return TValue(concrete, Expr::Binary(op, a.expr(), b.expr()));
}

TValue operator~(const TValue& a) {
  if (!a.tainted()) {
    return TValue(~a.value());
  }
  return TValue(~a.value(), Expr::Not(a.expr()));
}

}  // namespace dlt
