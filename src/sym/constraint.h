// Constraints: conjunctions of comparison atoms over symbolic expressions.
// They appear in two places of the template IR: per-template initial constraints
// (which inputs a template covers) and per-event constraints on state-changing
// device inputs (which values a faithful replay must observe).
#ifndef SRC_SYM_CONSTRAINT_H_
#define SRC_SYM_CONSTRAINT_H_

#include <string>
#include <vector>

#include "src/sym/expr.h"
#include "src/sym/tvalue.h"

namespace dlt {

enum class Cmp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpToken(Cmp c);
Cmp NegateCmp(Cmp c);
bool CompareValues(Cmp cmp, uint64_t a, uint64_t b);

struct ConstraintAtom {
  ExprRef lhs;
  Cmp cmp = Cmp::kEq;
  ExprRef rhs;

  Result<bool> Eval(const Bindings& bindings) const;
  ConstraintAtom Negated() const { return ConstraintAtom{lhs, NegateCmp(cmp), rhs}; }
  std::string ToString() const;
  static Result<ConstraintAtom> Parse(std::string_view text);
  static bool Equal(const ConstraintAtom& a, const ConstraintAtom& b);
};

// Convenience builders used at gold-driver branch points, e.g.
//   if (io.Branch(CmpLe(blkcnt, 8), DLT_HERE)) { ... }
ConstraintAtom CmpEq(const TValue& lhs, const TValue& rhs);
ConstraintAtom CmpNe(const TValue& lhs, const TValue& rhs);
ConstraintAtom CmpLt(const TValue& lhs, const TValue& rhs);
ConstraintAtom CmpLe(const TValue& lhs, const TValue& rhs);
ConstraintAtom CmpGt(const TValue& lhs, const TValue& rhs);
ConstraintAtom CmpGe(const TValue& lhs, const TValue& rhs);

class Constraint {
 public:
  Constraint() = default;

  void AddAtom(ConstraintAtom atom);
  bool empty() const { return atoms_.empty(); }
  const std::vector<ConstraintAtom>& atoms() const { return atoms_; }

  // True iff all atoms hold. Missing bindings are an error surfaced as kNotFound.
  Result<bool> Eval(const Bindings& bindings) const;

  // Drops atoms structurally identical to already-present ones.
  void Merge(const Constraint& other);

  void CollectInputs(std::set<std::string>* out) const;
  std::string ToString() const;  // "a && b && c" ("true" when empty)
  static Result<Constraint> Parse(std::string_view text);

 private:
  std::vector<ConstraintAtom> atoms_;
};

}  // namespace dlt

#endif  // SRC_SYM_CONSTRAINT_H_
