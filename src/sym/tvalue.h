// TValue: a concrete 64-bit value carrying an optional taint expression.
// Gold drivers compute request parameters with TValues; arithmetic/bitwise
// operators propagate taints exactly as the paper's dynamic taint tracking
// accumulates operations from source to sink (§4.2, Challenge II).
#ifndef SRC_SYM_TVALUE_H_
#define SRC_SYM_TVALUE_H_

#include <cstdint>

#include "src/sym/expr.h"

namespace dlt {

class TValue {
 public:
  TValue() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): untainted literals are pervasive.
  TValue(uint64_t v) : v_(v) {}
  TValue(uint64_t v, ExprRef e) : v_(v), e_(std::move(e)) {}

  static TValue Concrete(uint64_t v) { return TValue(v); }
  static TValue Input(const std::string& name, uint64_t concrete) {
    return TValue(concrete, Expr::Input(name));
  }

  uint64_t value() const { return v_; }
  uint32_t value32() const { return static_cast<uint32_t>(v_); }
  bool tainted() const { return e_ != nullptr; }

  // The symbolic form: the taint expression when tainted, a constant otherwise.
  ExprRef expr() const { return e_ != nullptr ? e_ : Expr::Const(v_); }
  ExprRef raw_expr() const { return e_; }

 private:
  friend TValue BinOp(ExprOp op, const TValue& a, const TValue& b);

  uint64_t v_ = 0;
  ExprRef e_;
};

TValue BinOp(ExprOp op, const TValue& a, const TValue& b);

inline TValue operator&(const TValue& a, const TValue& b) { return BinOp(ExprOp::kAnd, a, b); }
inline TValue operator|(const TValue& a, const TValue& b) { return BinOp(ExprOp::kOr, a, b); }
inline TValue operator^(const TValue& a, const TValue& b) { return BinOp(ExprOp::kXor, a, b); }
inline TValue operator<<(const TValue& a, const TValue& b) { return BinOp(ExprOp::kShl, a, b); }
inline TValue operator>>(const TValue& a, const TValue& b) { return BinOp(ExprOp::kShr, a, b); }
inline TValue operator+(const TValue& a, const TValue& b) { return BinOp(ExprOp::kAdd, a, b); }
inline TValue operator-(const TValue& a, const TValue& b) { return BinOp(ExprOp::kSub, a, b); }
inline TValue operator*(const TValue& a, const TValue& b) { return BinOp(ExprOp::kMul, a, b); }
inline TValue operator/(const TValue& a, const TValue& b) { return BinOp(ExprOp::kDiv, a, b); }
inline TValue operator%(const TValue& a, const TValue& b) { return BinOp(ExprOp::kMod, a, b); }
TValue operator~(const TValue& a);

}  // namespace dlt

#endif  // SRC_SYM_TVALUE_H_
