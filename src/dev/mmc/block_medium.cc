#include "src/dev/mmc/block_medium.h"

#include <cstring>

namespace dlt {

Status BlockMedium::ReadSector(uint64_t lba, uint8_t* out) {
  if (!present_) {
    return Status::kIoError;
  }
  if (lba >= num_sectors_) {
    return Status::kOutOfRange;
  }
  auto it = data_.find(lba);
  if (it == data_.end()) {
    std::memset(out, 0, kSectorSize);
  } else {
    std::memcpy(out, it->second.data(), kSectorSize);
  }
  ++sectors_read_;
  return Status::kOk;
}

Status BlockMedium::WriteSector(uint64_t lba, const uint8_t* data) {
  if (!present_) {
    return Status::kIoError;
  }
  if (lba >= num_sectors_) {
    return Status::kOutOfRange;
  }
  Sector& s = data_[lba];
  std::memcpy(s.data(), data, kSectorSize);
  ++sectors_written_;
  return Status::kOk;
}

Status BlockMedium::Read(uint64_t lba, uint32_t count, uint8_t* out) {
  for (uint32_t i = 0; i < count; ++i) {
    DLT_RETURN_IF_ERROR(ReadSector(lba + i, out + static_cast<size_t>(i) * kSectorSize));
  }
  return Status::kOk;
}

Status BlockMedium::Write(uint64_t lba, uint32_t count, const uint8_t* data) {
  for (uint32_t i = 0; i < count; ++i) {
    DLT_RETURN_IF_ERROR(WriteSector(lba + i, data + static_cast<size_t>(i) * kSectorSize));
  }
  return Status::kOk;
}

}  // namespace dlt
