#include "src/dev/mmc/mmc_controller.h"

#include <cstring>

#include "src/soc/log.h"

namespace dlt {

MmcController::MmcController(SimClock* clock, InterruptController* irq, const LatencyModel* lat,
                             SdCard* card, int irq_line)
    : clock_(clock), irq_(irq), lat_(lat), card_(card), irq_line_(irq_line) {}

uint32_t MmcController::EdmValue() const {
  uint32_t fifo_words = static_cast<uint32_t>(fifo_.size() / 4);
  if (fifo_words > kSdEdmFifoMask) {
    fifo_words = kSdEdmFifoMask;
  }
  return edm_state_ | (fifo_words << kSdEdmFifoShift);
}

uint32_t MmcController::MmioRead32(uint64_t offset) {
  switch (offset) {
    case kSdCmd: return sdcmd_;
    case kSdArg: return sdarg_;
    case kSdTout: return sdtout_;
    case kSdCdiv: return sdcdiv_;
    case kSdRsp0: return sdrsp0_;
    case kSdRsp1:
    case kSdRsp2:
    case kSdRsp3: return 0;
    case kSdHsts: return sdhsts_;
    case kSdVdd: return sdvdd_;
    case kSdEdm: return EdmValue();
    case kSdHcfg: return sdhcfg_;
    case kSdHbct: return sdhbct_;
    case kSdHblc: return sdhblc_;
    case kSdData: {
      uint32_t w = 0;
      size_t take = fifo_.size() < 4 ? fifo_.size() : 4;
      for (size_t i = 0; i < take; ++i) {
        w |= static_cast<uint32_t>(fifo_.front()) << (8 * i);
        fifo_.pop_front();
      }
      if (fifo_.empty() && edm_state_ == kSdEdmStateRead) {
        edm_state_ = kSdEdmStateIdle;
      }
      return w;
    }
    default:
      return 0;
  }
}

void MmcController::MmioWrite32(uint64_t offset, uint32_t value) {
  switch (offset) {
    case kSdCmd:
      if (value & kSdCmdNewFlag) {
        StartCommand(value);
      } else {
        sdcmd_ = value;
      }
      break;
    case kSdArg: sdarg_ = value; break;
    case kSdTout: sdtout_ = value; break;
    case kSdCdiv: sdcdiv_ = value; break;
    case kSdHsts:
      sdhsts_ &= ~value;  // write-1-to-clear
      UpdateIrq();
      break;
    case kSdVdd: sdvdd_ = value; break;
    case kSdHcfg: sdhcfg_ = value; break;
    case kSdHbct: sdhbct_ = value; break;
    case kSdHblc: sdhblc_ = value; break;
    case kSdData:
      for (int i = 0; i < 4; ++i) {
        fifo_.push_back(static_cast<uint8_t>(value >> (8 * i)));
      }
      CheckWriteCommit();
      break;
    default:
      break;
  }
}

void MmcController::StartCommand(uint32_t cmd) {
  sdcmd_ = cmd;  // NEW flag stays set while the command executes
  edm_state_ = kSdEdmStateCmd;
  pending_event_ = clock_->ScheduleIn(lat_->mmc_cmd_us, [this, cmd] {
    pending_event_ = SimClock::kInvalidEvent;
    CompleteCommand(cmd);
  });
}

void MmcController::CompleteCommand(uint32_t cmd) {
  ++commands_executed_;
  uint8_t index = static_cast<uint8_t>(cmd & kSdCmdIndexMask);
  SdCard::CmdResult r = card_->Command(index, sdarg_);
  if (!r.accepted) {
    sdcmd_ = (cmd & ~kSdCmdNewFlag) | kSdCmdFailFlag;
    sdhsts_ |= kSdHstsCmdTimeout;
    edm_state_ = kSdEdmStateIdle;
    UpdateIrq();
    return;
  }
  sdrsp0_ = r.response;
  sdcmd_ = cmd & ~(kSdCmdNewFlag | kSdCmdFailFlag);

  if (r.data_read) {
    uint32_t count = index == 17 ? 1 : sdhblc_;
    if (count == 0) {
      count = r.block_count;
    }
    uint64_t lba = sdarg_;
    edm_state_ = kSdEdmStateRead;
    uint64_t latency = static_cast<uint64_t>(count) * lat_->sd_read_block_us;
    pending_event_ = clock_->ScheduleIn(latency, [this, lba, count] {
      pending_event_ = SimClock::kInvalidEvent;
      std::vector<uint8_t> data;
      Status s = card_->ReadData(lba, count, &data);
      if (!Ok(s)) {
        // Medium vanished mid-transfer: surface a data timeout, no data IRQ.
        sdhsts_ |= kSdHstsRewTimeout;
        edm_state_ = kSdEdmStateIdle;
        UpdateIrq();
        return;
      }
      fifo_.insert(fifo_.end(), data.begin(), data.end());
      card_->FinishDataPhase();
      sdhsts_ |= kSdHstsDataFlag | kSdHstsBlockIrpt;
      UpdateIrq();
    });
  } else if (r.data_write) {
    write_pending_ = true;
    write_lba_ = sdarg_;
    write_count_ = index == 24 ? 1 : sdhblc_;
    if (write_count_ == 0) {
      write_count_ = 1;
    }
    write_expected_bytes_ = static_cast<size_t>(write_count_) * BlockMedium::kSectorSize;
    edm_state_ = kSdEdmStateWrite;
    CheckWriteCommit();
  } else {
    edm_state_ = kSdEdmStateIdle;
  }
}

void MmcController::CheckWriteCommit() {
  if (!write_pending_ || fifo_.size() < write_expected_bytes_) {
    return;
  }
  std::vector<uint8_t> data(write_expected_bytes_);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = fifo_.front();
    fifo_.pop_front();
  }
  write_pending_ = false;
  uint64_t lba = write_lba_;
  uint32_t count = write_count_;
  uint64_t latency =
      lat_->sd_write_setup_us + static_cast<uint64_t>(count) * lat_->sd_write_block_us;
  pending_event_ = clock_->ScheduleIn(latency, [this, lba, count, data = std::move(data)] {
    pending_event_ = SimClock::kInvalidEvent;
    Status s = card_->WriteData(lba, count, data.data());
    if (!Ok(s)) {
      sdhsts_ |= kSdHstsRewTimeout;
      edm_state_ = kSdEdmStateIdle;
      UpdateIrq();
      return;
    }
    card_->FinishDataPhase();
    edm_state_ = kSdEdmStateIdle;
    sdhsts_ |= kSdHstsBusyIrpt;
    UpdateIrq();
  });
}

void MmcController::UpdateIrq() {
  bool want = false;
  if ((sdhsts_ & kSdHstsBlockIrpt) && (sdhcfg_ & kSdHcfgBlockIrptEn)) {
    want = true;
  }
  if ((sdhsts_ & kSdHstsBusyIrpt) && (sdhcfg_ & kSdHcfgBusyIrptEn)) {
    want = true;
  }
  if ((sdhsts_ & kSdHstsDataFlag) && (sdhcfg_ & kSdHcfgDataIrptEn)) {
    want = true;
  }
  if (want) {
    irq_->Raise(irq_line_);
  } else {
    irq_->Clear(irq_line_);
  }
}

size_t MmcController::DmaPull(void* dst, size_t n) {
  uint8_t* out = static_cast<uint8_t*>(dst);
  size_t take = fifo_.size() < n ? fifo_.size() : n;
  for (size_t i = 0; i < take; ++i) {
    out[i] = fifo_.front();
    fifo_.pop_front();
  }
  return take;
}

size_t MmcController::DmaPush(const void* src, size_t n) {
  const uint8_t* in = static_cast<const uint8_t*>(src);
  fifo_.insert(fifo_.end(), in, in + n);
  CheckWriteCommit();
  return n;
}

void MmcController::SoftReset() {
  if (pending_event_ != SimClock::kInvalidEvent) {
    clock_->Cancel(pending_event_);
    pending_event_ = SimClock::kInvalidEvent;
  }
  fifo_.clear();
  write_pending_ = false;
  edm_state_ = kSdEdmStateIdle;
  sdcmd_ = 0;
  sdarg_ = 0;
  sdrsp0_ = 0;
  sdhsts_ = 0;
  sdhblc_ = 0;
  sdhbct_ = 512;
  // Post-init clean slate (paper §5): power on, default timeout/divisor; the
  // card returns to the selected transfer state established at boot init.
  sdvdd_ = 1;
  sdtout_ = 0xf00000;
  sdcdiv_ = 0x148;
  sdhcfg_ = 0;
  irq_->Clear(irq_line_);
  card_->ResetToTransferState();
}

}  // namespace dlt
