// SD card model: the command state machine behind the MMC controller
// (SD Physical Layer commands the Linux bcm2835-sdhost path exercises:
// CMD0/2/3/7/8/9/12/13/16/17/18/23/24/25 and ACMD41 via CMD55).
#ifndef SRC_DEV_MMC_SD_CARD_H_
#define SRC_DEV_MMC_SD_CARD_H_

#include <cstdint>
#include <vector>

#include "src/dev/mmc/block_medium.h"

namespace dlt {

// R1 card status bits (subset).
inline constexpr uint32_t kSdStatusReadyForData = 1u << 8;
inline constexpr uint32_t kSdStatusAppCmd = 1u << 5;
inline constexpr uint32_t kSdStatusIllegalCmd = 1u << 22;
inline constexpr uint32_t kSdStatusAddrError = 1u << 30;
inline constexpr int kSdStateShift = 9;

class SdCard {
 public:
  enum class State : uint8_t {
    kIdle = 0,
    kReady = 1,
    kIdent = 2,
    kStby = 3,
    kTran = 4,
    kData = 5,
    kRcv = 6,
    kPrg = 7,
  };

  struct CmdResult {
    bool accepted = false;   // card responded (false: no medium / illegal timing)
    uint32_t response = 0;   // R1/R3/R6/R7 payload
    bool data_read = false;  // command opens a read data phase
    bool data_write = false;
    uint32_t block_count = 0;  // transfer length for the data phase
  };

  explicit SdCard(BlockMedium* medium) : medium_(medium) {}

  CmdResult Command(uint8_t index, uint32_t arg);

  Status ReadData(uint64_t lba, uint32_t count, std::vector<uint8_t>* out);
  Status WriteData(uint64_t lba, uint32_t count, const uint8_t* data);

  // Ends an open data phase (CMD12 or natural completion).
  void FinishDataPhase();

  // Clean slate "as if initialization just finished": selected, transfer state.
  void ResetToTransferState();
  // Full power-on reset (used by Probe()-style full init).
  void PowerOnReset();

  State state() const { return state_; }
  uint16_t rca() const { return rca_; }
  BlockMedium* medium() { return medium_; }

  uint32_t StatusWord() const;

 private:
  BlockMedium* medium_;
  State state_ = State::kIdle;
  uint16_t rca_ = 0;
  bool app_cmd_ = false;
  uint32_t blocklen_ = 512;
  uint32_t set_block_count_ = 0;
};

}  // namespace dlt

#endif  // SRC_DEV_MMC_SD_CARD_H_
