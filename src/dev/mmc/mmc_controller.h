// MMC host controller modelled after the bcm2835-sdhost (the RPi3 controller the
// paper records, ref [49]): command FSM driven via SDCMD/SDARG, status via
// SDHSTS/SDEDM, data through the SDDATA FIFO port (PIO or system-DMA DREQ).
// Includes the SoC quirk the paper observes (§6.1.3): the DMA engine cannot move
// the last words of a read transfer, so drivers drain the final 3 words via
// SDDATA.
#ifndef SRC_DEV_MMC_MMC_CONTROLLER_H_
#define SRC_DEV_MMC_MMC_CONTROLLER_H_

#include <deque>
#include <vector>

#include "src/dev/mmc/sd_card.h"
#include "src/soc/device.h"
#include "src/soc/irq.h"
#include "src/soc/latency_model.h"
#include "src/soc/sim_clock.h"

namespace dlt {

// Register offsets.
inline constexpr uint64_t kSdCmd = 0x00;
inline constexpr uint64_t kSdArg = 0x04;
inline constexpr uint64_t kSdTout = 0x08;
inline constexpr uint64_t kSdCdiv = 0x0c;
inline constexpr uint64_t kSdRsp0 = 0x10;
inline constexpr uint64_t kSdRsp1 = 0x14;
inline constexpr uint64_t kSdRsp2 = 0x18;
inline constexpr uint64_t kSdRsp3 = 0x1c;
inline constexpr uint64_t kSdHsts = 0x20;
inline constexpr uint64_t kSdVdd = 0x30;
inline constexpr uint64_t kSdEdm = 0x34;
inline constexpr uint64_t kSdHcfg = 0x38;
inline constexpr uint64_t kSdHbct = 0x3c;
inline constexpr uint64_t kSdData = 0x40;
inline constexpr uint64_t kSdHblc = 0x50;

// SDCMD bits.
inline constexpr uint32_t kSdCmdNewFlag = 0x8000;
inline constexpr uint32_t kSdCmdFailFlag = 0x4000;
inline constexpr uint32_t kSdCmdReadCmd = 0x40;    // rw=0x1 << 6
inline constexpr uint32_t kSdCmdWriteCmd = 0x400;  // rw=0x10 << 6
inline constexpr uint32_t kSdCmdIndexMask = 0x3f;

// SDHSTS bits (write-1-to-clear).
inline constexpr uint32_t kSdHstsDataFlag = 0x01;
inline constexpr uint32_t kSdHstsFifoError = 0x08;
inline constexpr uint32_t kSdHstsCrc7Error = 0x10;
inline constexpr uint32_t kSdHstsCrc16Error = 0x20;
inline constexpr uint32_t kSdHstsCmdTimeout = 0x40;
inline constexpr uint32_t kSdHstsRewTimeout = 0x80;
inline constexpr uint32_t kSdHstsBlockIrpt = 0x200;
inline constexpr uint32_t kSdHstsBusyIrpt = 0x400;
inline constexpr uint32_t kSdHstsErrorMask = kSdHstsFifoError | kSdHstsCrc7Error |
                                             kSdHstsCrc16Error | kSdHstsCmdTimeout |
                                             kSdHstsRewTimeout;

// SDHCFG bits.
inline constexpr uint32_t kSdHcfgRelCmdLine = 0x1;
inline constexpr uint32_t kSdHcfgWideIntBus = 0x2;
inline constexpr uint32_t kSdHcfgWideExtBus = 0x4;
inline constexpr uint32_t kSdHcfgSlowCard = 0x8;
inline constexpr uint32_t kSdHcfgDataIrptEn = 0x10;
inline constexpr uint32_t kSdHcfgBlockIrptEn = 0x100;
inline constexpr uint32_t kSdHcfgBusyIrptEn = 0x400;

// SDEDM: low nibble = FSM state; bits [4:13] = FIFO word count.
inline constexpr uint32_t kSdEdmStateIdle = 0x0;
inline constexpr uint32_t kSdEdmStateCmd = 0x1;
inline constexpr uint32_t kSdEdmStateRead = 0x3;
inline constexpr uint32_t kSdEdmStateWrite = 0x4;
inline constexpr int kSdEdmFifoShift = 4;
inline constexpr uint32_t kSdEdmFifoMask = 0x3ff;

class MmcController : public MmioDevice, public DmaDataPort {
 public:
  MmcController(SimClock* clock, InterruptController* irq, const LatencyModel* lat, SdCard* card,
                int irq_line);

  std::string_view name() const override { return "mmc"; }
  uint32_t MmioRead32(uint64_t offset) override;
  void MmioWrite32(uint64_t offset, uint32_t value) override;
  void SoftReset() override;

  // DREQ-paced data port (the system DMA engine addresses SDDATA).
  size_t DmaPull(void* dst, size_t n) override;
  size_t DmaPush(const void* src, size_t n) override;

  int irq_line() const { return irq_line_; }
  SdCard* card() { return card_; }

  uint64_t commands_executed() const { return commands_executed_; }

 private:
  void StartCommand(uint32_t cmd);
  void CompleteCommand(uint32_t cmd);
  void CheckWriteCommit();
  void UpdateIrq();
  uint32_t EdmValue() const;

  SimClock* clock_;
  InterruptController* irq_;
  const LatencyModel* lat_;
  SdCard* card_;
  int irq_line_;

  // Registers.
  uint32_t sdcmd_ = 0;
  uint32_t sdarg_ = 0;
  uint32_t sdtout_ = 0;
  uint32_t sdcdiv_ = 0;
  uint32_t sdrsp0_ = 0;
  uint32_t sdhsts_ = 0;
  uint32_t sdvdd_ = 0;
  uint32_t sdhcfg_ = 0;
  uint32_t sdhbct_ = 512;
  uint32_t sdhblc_ = 0;

  // Data phase.
  std::deque<uint8_t> fifo_;
  uint32_t edm_state_ = kSdEdmStateIdle;
  bool write_pending_ = false;
  uint64_t write_lba_ = 0;
  uint32_t write_count_ = 0;
  size_t write_expected_bytes_ = 0;

  SimClock::EventId pending_event_ = SimClock::kInvalidEvent;
  uint64_t commands_executed_ = 0;
};

}  // namespace dlt

#endif  // SRC_DEV_MMC_MMC_CONTROLLER_H_
