// Sparse block storage backing the SD card and USB flash models. Capacity can
// be tens of millions of 512-byte sectors (the paper's media: 31M MMC sectors,
// 15M USB sectors) without committing memory: only written sectors are stored.
#ifndef SRC_DEV_MMC_BLOCK_MEDIUM_H_
#define SRC_DEV_MMC_BLOCK_MEDIUM_H_

#include <array>
#include <cstdint>
#include <unordered_map>

#include "src/soc/status.h"

namespace dlt {

class BlockMedium {
 public:
  static constexpr size_t kSectorSize = 512;

  explicit BlockMedium(uint64_t num_sectors) : num_sectors_(num_sectors) {}

  uint64_t num_sectors() const { return num_sectors_; }

  Status ReadSector(uint64_t lba, uint8_t* out);
  Status WriteSector(uint64_t lba, const uint8_t* data);
  Status Read(uint64_t lba, uint32_t count, uint8_t* out);
  Status Write(uint64_t lba, uint32_t count, const uint8_t* data);

  // Fault injection: an absent medium fails all IO (paper §7.2, unplugging the
  // storage medium amid a replay run).
  void set_present(bool present) { present_ = present; }
  bool present() const { return present_; }

  uint64_t sectors_written() const { return sectors_written_; }
  uint64_t sectors_read() const { return sectors_read_; }

 private:
  using Sector = std::array<uint8_t, kSectorSize>;

  uint64_t num_sectors_;
  bool present_ = true;
  std::unordered_map<uint64_t, Sector> data_;
  uint64_t sectors_written_ = 0;
  uint64_t sectors_read_ = 0;
};

}  // namespace dlt

#endif  // SRC_DEV_MMC_BLOCK_MEDIUM_H_
