#include "src/dev/mmc/sd_card.h"

namespace dlt {

uint32_t SdCard::StatusWord() const {
  uint32_t s = static_cast<uint32_t>(state_) << kSdStateShift;
  if (state_ == State::kTran || state_ == State::kStby) {
    s |= kSdStatusReadyForData;
  }
  if (app_cmd_) {
    s |= kSdStatusAppCmd;
  }
  return s;
}

SdCard::CmdResult SdCard::Command(uint8_t index, uint32_t arg) {
  CmdResult r;
  if (!medium_->present()) {
    return r;  // card gone: command times out
  }
  bool was_app = app_cmd_;
  app_cmd_ = false;

  if (was_app && index == 41) {  // ACMD41 SD_SEND_OP_COND
    r.accepted = true;
    r.response = 0xc0ff8000;  // powered up, CCS (SDHC), full voltage window
    if (state_ == State::kIdle) {
      state_ = State::kReady;
    }
    return r;
  }

  switch (index) {
    case 0:  // GO_IDLE_STATE
      state_ = State::kIdle;
      r.accepted = true;
      break;
    case 8:  // SEND_IF_COND: echo voltage + check pattern (R7)
      r.accepted = true;
      r.response = arg & 0xfff;
      break;
    case 55:  // APP_CMD
      app_cmd_ = true;
      r.accepted = true;
      r.response = StatusWord() | kSdStatusAppCmd;
      break;
    case 2:  // ALL_SEND_CID
      if (state_ == State::kReady) {
        state_ = State::kIdent;
      }
      r.accepted = true;
      r.response = 0x02544d53;  // CID fragment: "\x02TMS"
      break;
    case 3:  // SEND_RELATIVE_ADDR (R6)
      rca_ = 0x1234;
      state_ = State::kStby;
      r.accepted = true;
      r.response = static_cast<uint32_t>(rca_) << 16;
      break;
    case 9:  // SEND_CSD
      r.accepted = (arg >> 16) == rca_;
      r.response = static_cast<uint32_t>(medium_->num_sectors() >> 10);  // C_SIZE proxy
      break;
    case 7:  // SELECT_CARD
      if ((arg >> 16) == rca_) {
        state_ = State::kTran;
        r.accepted = true;
        r.response = StatusWord();
      }
      break;
    case 13:  // SEND_STATUS
      r.accepted = true;
      r.response = StatusWord();
      break;
    case 16:  // SET_BLOCKLEN
      blocklen_ = arg;
      r.accepted = true;
      r.response = StatusWord();
      break;
    case 23:  // SET_BLOCK_COUNT
      set_block_count_ = arg;
      r.accepted = true;
      r.response = StatusWord();
      break;
    case 17:  // READ_SINGLE_BLOCK
    case 18:  // READ_MULTIPLE_BLOCK
      if (state_ != State::kTran) {
        r.response = StatusWord() | kSdStatusIllegalCmd;
        r.accepted = true;
        break;
      }
      r.accepted = true;
      r.response = StatusWord();
      r.data_read = true;
      r.block_count = index == 17 ? 1 : (set_block_count_ != 0 ? set_block_count_ : 1);
      state_ = State::kData;
      break;
    case 24:  // WRITE_BLOCK
    case 25:  // WRITE_MULTIPLE_BLOCK
      if (state_ != State::kTran) {
        r.response = StatusWord() | kSdStatusIllegalCmd;
        r.accepted = true;
        break;
      }
      r.accepted = true;
      r.response = StatusWord();
      r.data_write = true;
      r.block_count = index == 24 ? 1 : 0;  // 0: until CMD12 (count set by host controller)
      state_ = State::kRcv;
      break;
    case 12:  // STOP_TRANSMISSION
      r.accepted = true;
      r.response = StatusWord();
      FinishDataPhase();
      break;
    default:
      r.accepted = true;
      r.response = StatusWord() | kSdStatusIllegalCmd;
      break;
  }
  return r;
}

Status SdCard::ReadData(uint64_t lba, uint32_t count, std::vector<uint8_t>* out) {
  out->resize(static_cast<size_t>(count) * BlockMedium::kSectorSize);
  return medium_->Read(lba, count, out->data());
}

Status SdCard::WriteData(uint64_t lba, uint32_t count, const uint8_t* data) {
  return medium_->Write(lba, count, data);
}

void SdCard::FinishDataPhase() {
  if (state_ == State::kData || state_ == State::kRcv || state_ == State::kPrg) {
    state_ = State::kTran;
  }
  set_block_count_ = 0;
}

void SdCard::ResetToTransferState() {
  state_ = State::kTran;
  rca_ = 0x1234;
  app_cmd_ = false;
  blocklen_ = 512;
  set_block_count_ = 0;
}

void SdCard::PowerOnReset() {
  state_ = State::kIdle;
  rca_ = 0;
  app_cmd_ = false;
  blocklen_ = 512;
  set_block_count_ = 0;
}

}  // namespace dlt
