// USB host controller modelled after the DWC2 (Synopsys DesignWare) core used
// on the RPi3: host channels programmed via HCCHARn/HCTSIZn/HCDMAn, completion
// via HCINTn -> HAINT -> GINTSTS, port management via HPRT, and the HFNUM frame
// counter (the paper's example of a non-state-changing statistic input, §6.2.3).
#ifndef SRC_DEV_USB_DWC2_CONTROLLER_H_
#define SRC_DEV_USB_DWC2_CONTROLLER_H_

#include <array>

#include "src/dev/usb/usb_device_model.h"
#include "src/soc/address_space.h"
#include "src/soc/device.h"
#include "src/soc/irq.h"
#include "src/soc/latency_model.h"
#include "src/soc/sim_clock.h"

namespace dlt {

// Global registers.
inline constexpr uint64_t kGrstCtl = 0x010;
inline constexpr uint64_t kGIntSts = 0x014;
inline constexpr uint64_t kGIntMsk = 0x018;
inline constexpr uint64_t kHfNum = 0x408;
inline constexpr uint64_t kHaInt = 0x414;
inline constexpr uint64_t kHaIntMsk = 0x418;
inline constexpr uint64_t kHPrt = 0x440;
inline constexpr uint64_t kHcBase = 0x500;
inline constexpr uint64_t kHcStride = 0x20;

// GINTSTS bits.
inline constexpr uint32_t kGIntStsSof = 1u << 3;
inline constexpr uint32_t kGIntStsPrtInt = 1u << 24;
inline constexpr uint32_t kGIntStsHcInt = 1u << 25;

// GRSTCTL bits.
inline constexpr uint32_t kGrstCtlCoreRst = 1u << 0;

// HPRT bits.
inline constexpr uint32_t kHPrtConnSts = 1u << 0;
inline constexpr uint32_t kHPrtConnDet = 1u << 1;
inline constexpr uint32_t kHPrtEna = 1u << 2;
inline constexpr uint32_t kHPrtRst = 1u << 8;
inline constexpr uint32_t kHPrtPwr = 1u << 12;

// Per-channel register offsets (relative to the channel base).
inline constexpr uint64_t kHcChar = 0x00;
inline constexpr uint64_t kHcInt = 0x08;
inline constexpr uint64_t kHcIntMsk = 0x0c;
inline constexpr uint64_t kHcTsiz = 0x10;
inline constexpr uint64_t kHcDma = 0x14;

// HCCHAR fields.
inline constexpr uint32_t kHcCharEna = 1u << 31;
inline constexpr uint32_t kHcCharDis = 1u << 30;
inline constexpr uint32_t kHcCharEpDirIn = 1u << 15;
inline constexpr int kHcCharEpNumShift = 11;
inline constexpr uint32_t kHcCharEpNumMask = 0xf;
inline constexpr int kHcCharEpTypeShift = 18;
inline constexpr int kHcCharDevAddrShift = 22;

// HCINT bits.
inline constexpr uint32_t kHcIntXferCompl = 1u << 0;
inline constexpr uint32_t kHcIntChHltd = 1u << 1;
inline constexpr uint32_t kHcIntStall = 1u << 3;
inline constexpr uint32_t kHcIntNak = 1u << 4;
inline constexpr uint32_t kHcIntXactErr = 1u << 7;

// HCTSIZ fields.
inline constexpr uint32_t kHcTsizXferSizeMask = 0x7ffff;
inline constexpr int kHcTsizPktCntShift = 19;
inline constexpr uint32_t kHcTsizPktCntMask = 0x3ff;
inline constexpr int kHcTsizPidShift = 29;
inline constexpr uint32_t kHcTsizPidSetup = 3;

class Dwc2Controller : public MmioDevice {
 public:
  static constexpr int kNumChannels = 8;

  Dwc2Controller(AddressSpace* mem, SimClock* clock, InterruptController* irq,
                 const LatencyModel* lat, int irq_line);

  void AttachDevice(UsbDeviceModel* dev) { device_ = dev; }

  std::string_view name() const override { return "usb"; }
  uint32_t MmioRead32(uint64_t offset) override;
  void MmioWrite32(uint64_t offset, uint32_t value) override;
  void SoftReset() override;

  int irq_line() const { return irq_line_; }
  uint64_t transactions() const { return transactions_; }

 private:
  struct Channel {
    uint32_t hcchar = 0;
    uint32_t hcint = 0;
    uint32_t hcintmsk = 0;
    uint32_t hctsiz = 0;
    uint32_t hcdma = 0;
    SimClock::EventId pending = SimClock::kInvalidEvent;
  };

  void StartChannel(int ch);
  void FinishChannel(int ch, uint32_t hcint_bits, size_t bytes_done);
  void UpdateIrq();

  AddressSpace* mem_;
  SimClock* clock_;
  InterruptController* irq_;
  const LatencyModel* lat_;
  int irq_line_;
  UsbDeviceModel* device_ = nullptr;

  uint32_t grstctl_ = 0;
  uint32_t gintsts_ = 0;
  uint32_t gintmsk_ = 0;
  uint32_t haint_ = 0;
  uint32_t haintmsk_ = 0;
  uint32_t hprt_ = kHPrtPwr;
  std::array<Channel, kNumChannels> channels_;
  UsbSetup pending_setup_{};
  bool have_setup_ = false;
  uint64_t transactions_ = 0;
};

}  // namespace dlt

#endif  // SRC_DEV_USB_DWC2_CONTROLLER_H_
