#include "src/dev/usb/usb_mass_storage.h"

#include <algorithm>

#include <cstring>

#include "src/soc/log.h"

namespace dlt {

namespace {

uint32_t Be32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

uint16_t Be16(const uint8_t* p) {
  return static_cast<uint16_t>((static_cast<uint16_t>(p[0]) << 8) | p[1]);
}

void PutBe32(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

}  // namespace

Status UsbMassStorage::ControlRequest(const UsbSetup& setup, const uint8_t* data_out,
                                      std::vector<uint8_t>* data_in) {
  (void)data_out;
  switch (setup.b_request) {
    case 0x05:  // SET_ADDRESS
      address_ = static_cast<uint8_t>(setup.w_value);
      return Status::kOk;
    case 0x09:  // SET_CONFIGURATION
      configuration_ = static_cast<uint8_t>(setup.w_value);
      return Status::kOk;
    case 0x06: {  // GET_DESCRIPTOR
      if (data_in == nullptr) {
        return Status::kOk;
      }
      uint8_t type = static_cast<uint8_t>(setup.w_value >> 8);
      if (type == 1) {  // device descriptor: VID 0x8644 PID 0x8003 (paper Table 2)
        *data_in = {18, 1, 0, 2, 0, 0, 0, 64, 0x44, 0x86, 0x03, 0x80, 0, 1, 1, 2, 3, 1};
      } else if (type == 2) {  // configuration descriptor (truncated, BOT interface)
        *data_in = {9, 2, 32, 0, 1, 1, 0, 0x80, 50, 9, 4, 0, 0, 2, 8, 6, 0x50, 0};
      }
      return Status::kOk;
    }
    case 0xff:  // Bulk-Only Mass Storage Reset
      state_ = BotState::kAwaitCbw;
      return Status::kOk;
    case 0xfe:  // GET_MAX_LUN
      if (data_in != nullptr) {
        *data_in = {0};
      }
      return Status::kOk;
    default:
      return Status::kUnsupported;
  }
}

void UsbMassStorage::QueueCsw(uint8_t status) {
  csw_.assign(kCswLength, 0);
  uint32_t sig = kCswSignature;
  std::memcpy(csw_.data(), &sig, 4);
  std::memcpy(csw_.data() + 4, &cbw_.tag, 4);
  uint32_t residue = 0;
  std::memcpy(csw_.data() + 8, &residue, 4);
  csw_[12] = status;
}

Status UsbMassStorage::ExecuteScsi(uint64_t* extra_us) {
  uint8_t op = cbw_.cb[0];
  switch (op) {
    case kScsiTestUnitReady:
      if (!medium_->present()) {
        sense_key_ = 0x02;  // NOT READY
        QueueCsw(1);
      } else {
        QueueCsw(0);
      }
      state_ = BotState::kAwaitCswRead;
      return Status::kOk;
    case kScsiInquiry: {
      data_in_.assign(36, 0);
      data_in_[1] = 0x80;  // removable
      data_in_[4] = 31;    // additional length
      std::memcpy(data_in_.data() + 8, "Intenso ", 8);
      std::memcpy(data_in_.data() + 16, "Micro Line      ", 16);
      std::memcpy(data_in_.data() + 32, "1.00", 4);
      data_in_pos_ = 0;
      QueueCsw(0);
      state_ = BotState::kDataIn;
      return Status::kOk;
    }
    case kScsiRequestSense: {
      data_in_.assign(18, 0);
      data_in_[0] = 0x70;
      data_in_[2] = sense_key_;
      data_in_[7] = 10;
      sense_key_ = 0;
      data_in_pos_ = 0;
      QueueCsw(0);
      state_ = BotState::kDataIn;
      return Status::kOk;
    }
    case kScsiModeSense6: {
      data_in_.assign(4, 0);
      data_in_[0] = 3;
      data_in_pos_ = 0;
      QueueCsw(0);
      state_ = BotState::kDataIn;
      return Status::kOk;
    }
    case kScsiReadCapacity10: {
      data_in_.assign(8, 0);
      uint32_t num_lba = static_cast<uint32_t>(medium_->num_sectors() / kSectorsPerLba);
      PutBe32(num_lba - 1, data_in_.data());
      PutBe32(kUsbLogicalBlock, data_in_.data() + 4);
      data_in_pos_ = 0;
      QueueCsw(0);
      state_ = BotState::kDataIn;
      return Status::kOk;
    }
    case kScsiRead10: {
      uint32_t lba = Be32(cbw_.cb + 2);
      uint16_t count = Be16(cbw_.cb + 7);
      data_in_.assign(static_cast<size_t>(count) * kUsbLogicalBlock, 0);
      Status s = medium_->Read(static_cast<uint64_t>(lba) * kSectorsPerLba,
                               count * kSectorsPerLba, data_in_.data());
      *extra_us = static_cast<uint64_t>(count) * kSectorsPerLba * lat_->usb_flash_read_block_us;
      if (!Ok(s)) {
        sense_key_ = 0x03;  // MEDIUM ERROR
        data_in_.clear();
        QueueCsw(1);
        state_ = BotState::kAwaitCswRead;
        return Status::kOk;
      }
      data_in_pos_ = 0;
      QueueCsw(0);
      state_ = BotState::kDataIn;
      return Status::kOk;
    }
    case kScsiWrite10: {
      data_out_.clear();
      if (cbw_.data_len == 0) {
        QueueCsw(0);
        state_ = BotState::kAwaitCswRead;
      } else {
        state_ = BotState::kDataOut;
      }
      return Status::kOk;
    }
    default:
      sense_key_ = 0x05;  // ILLEGAL REQUEST
      QueueCsw(1);
      state_ = BotState::kAwaitCswRead;
      return Status::kOk;
  }
}

Status UsbMassStorage::BulkOut(const uint8_t* data, size_t len, uint64_t* extra_us) {
  *extra_us = 0;
  if (!connected()) {
    return Status::kIoError;
  }
  if (state_ == BotState::kAwaitCbw) {
    if (len < kCbwLength) {
      return Status::kIoError;
    }
    uint32_t sig = 0;
    std::memcpy(&sig, data, 4);
    if (sig != kCbwSignature) {
      return Status::kIoError;
    }
    std::memcpy(&cbw_.tag, data + 4, 4);
    std::memcpy(&cbw_.data_len, data + 8, 4);
    cbw_.dir_in = (data[12] & 0x80) != 0;
    std::memcpy(cbw_.cb, data + 15, 16);
    ++cbw_count_;
    return ExecuteScsi(extra_us);
  }
  if (state_ == BotState::kDataOut) {
    data_out_.insert(data_out_.end(), data, data + len);
    if (data_out_.size() >= cbw_.data_len) {
      uint32_t lba = Be32(cbw_.cb + 2);
      uint16_t count = Be16(cbw_.cb + 7);
      Status s = medium_->Write(static_cast<uint64_t>(lba) * kSectorsPerLba,
                                count * kSectorsPerLba, data_out_.data());
      *extra_us = static_cast<uint64_t>(count) * kSectorsPerLba * lat_->usb_flash_write_block_us;
      QueueCsw(Ok(s) ? 0 : 1);
      if (!Ok(s)) {
        sense_key_ = 0x03;
      }
      state_ = BotState::kAwaitCswRead;
    }
    return Status::kOk;
  }
  return Status::kIoError;
}

Status UsbMassStorage::BulkIn(size_t max_len, std::vector<uint8_t>* data, uint64_t* extra_us) {
  *extra_us = 0;
  if (!connected()) {
    return Status::kIoError;
  }
  if (state_ == BotState::kDataIn) {
    size_t remaining = data_in_.size() - data_in_pos_;
    size_t take = std::min(remaining, max_len);
    data->assign(data_in_.begin() + static_cast<long>(data_in_pos_),
                 data_in_.begin() + static_cast<long>(data_in_pos_ + take));
    data_in_pos_ += take;
    if (data_in_pos_ >= data_in_.size()) {
      state_ = BotState::kAwaitCswRead;
    }
    return Status::kOk;
  }
  if (state_ == BotState::kAwaitCswRead) {
    if (max_len < kCswLength) {
      return Status::kIoError;
    }
    *data = csw_;
    state_ = BotState::kAwaitCbw;
    return Status::kOk;
  }
  return Status::kIoError;
}

void UsbMassStorage::Reset() {
  // Bus reset to the post-enumeration clean slate: configured and awaiting a CBW.
  state_ = BotState::kAwaitCbw;
  data_in_.clear();
  data_out_.clear();
  csw_.clear();
  sense_key_ = 0;
  address_ = 1;
  configuration_ = 1;
}

}  // namespace dlt
