// USB mass-storage device model: Bulk-Only Transport (CBW/CSW) carrying SCSI
// commands over a 4 KB-logical-block flash medium — mirrors the paper's Intenso
// Micro Line stick (Table 2) including the 4 KB LBA that forces the driver's
// read-modify-write path for sub-LBA writes (§6.2.3).
#ifndef SRC_DEV_USB_USB_MASS_STORAGE_H_
#define SRC_DEV_USB_USB_MASS_STORAGE_H_

#include <deque>

#include "src/dev/mmc/block_medium.h"
#include "src/dev/usb/usb_device_model.h"
#include "src/soc/latency_model.h"

namespace dlt {

inline constexpr uint32_t kCbwSignature = 0x43425355;  // 'USBC'
inline constexpr uint32_t kCswSignature = 0x53425355;  // 'USBS'
inline constexpr size_t kCbwLength = 31;
inline constexpr size_t kCswLength = 13;
inline constexpr uint32_t kUsbLogicalBlock = 4096;     // bytes per device LBA
inline constexpr uint32_t kSectorsPerLba = kUsbLogicalBlock / BlockMedium::kSectorSize;

// SCSI opcodes the device implements.
inline constexpr uint8_t kScsiTestUnitReady = 0x00;
inline constexpr uint8_t kScsiRequestSense = 0x03;
inline constexpr uint8_t kScsiInquiry = 0x12;
inline constexpr uint8_t kScsiModeSense6 = 0x1a;
inline constexpr uint8_t kScsiReadCapacity10 = 0x25;
inline constexpr uint8_t kScsiRead10 = 0x28;
inline constexpr uint8_t kScsiWrite10 = 0x2a;

class UsbMassStorage : public UsbDeviceModel {
 public:
  UsbMassStorage(BlockMedium* medium, const LatencyModel* lat)
      : medium_(medium), lat_(lat) {}

  bool connected() const override { return connected_ && medium_->present(); }
  void set_connected(bool c) { connected_ = c; }

  Status ControlRequest(const UsbSetup& setup, const uint8_t* data_out,
                        std::vector<uint8_t>* data_in) override;
  Status BulkOut(const uint8_t* data, size_t len, uint64_t* extra_us) override;
  Status BulkIn(size_t max_len, std::vector<uint8_t>* data, uint64_t* extra_us) override;
  void Reset() override;

  uint8_t usb_address() const { return address_; }
  uint8_t configuration() const { return configuration_; }
  uint32_t cbw_count() const { return cbw_count_; }

 private:
  enum class BotState : uint8_t { kAwaitCbw, kDataOut, kDataIn, kAwaitCswRead };

  struct Cbw {
    uint32_t tag = 0;
    uint32_t data_len = 0;
    bool dir_in = false;
    uint8_t cb[16] = {};
  };

  Status ExecuteScsi(uint64_t* extra_us);
  void QueueCsw(uint8_t status);

  BlockMedium* medium_;
  const LatencyModel* lat_;
  bool connected_ = true;
  uint8_t address_ = 0;
  uint8_t configuration_ = 0;

  BotState state_ = BotState::kAwaitCbw;
  Cbw cbw_{};
  std::vector<uint8_t> data_in_;   // staged device-to-host data
  size_t data_in_pos_ = 0;
  std::vector<uint8_t> data_out_;  // accumulated host-to-device data
  std::vector<uint8_t> csw_;
  uint8_t sense_key_ = 0;
  uint32_t cbw_count_ = 0;
};

}  // namespace dlt

#endif  // SRC_DEV_USB_USB_MASS_STORAGE_H_
