#include "src/dev/usb/dwc2_controller.h"

#include <algorithm>

#include <cstring>
#include <vector>

#include "src/soc/log.h"

namespace dlt {

Dwc2Controller::Dwc2Controller(AddressSpace* mem, SimClock* clock, InterruptController* irq,
                               const LatencyModel* lat, int irq_line)
    : mem_(mem), clock_(clock), irq_(irq), lat_(lat), irq_line_(irq_line) {}

uint32_t Dwc2Controller::MmioRead32(uint64_t offset) {
  if (offset >= kHcBase && offset < kHcBase + kNumChannels * kHcStride) {
    int ch = static_cast<int>((offset - kHcBase) / kHcStride);
    uint64_t reg = (offset - kHcBase) % kHcStride;
    const Channel& c = channels_[static_cast<size_t>(ch)];
    switch (reg) {
      case kHcChar: return c.hcchar;
      case kHcInt: return c.hcint;
      case kHcIntMsk: return c.hcintmsk;
      case kHcTsiz: return c.hctsiz;
      case kHcDma: return c.hcdma;
      default: return 0;
    }
  }
  switch (offset) {
    case kGrstCtl: return grstctl_;  // reset bit self-clears immediately
    case kGIntSts: return gintsts_;
    case kGIntMsk: return gintmsk_;
    case kHfNum:
      // Free-running microframe counter (125 us per microframe): a time-derived
      // statistic input that differs between record and replay runs.
      return static_cast<uint32_t>((clock_->now_us() / 125) & 0x3fff);
    case kHaInt: return haint_;
    case kHaIntMsk: return haintmsk_;
    case kHPrt: {
      uint32_t v = hprt_;
      if (device_ != nullptr && device_->connected()) {
        v |= kHPrtConnSts;
      }
      return v;
    }
    default:
      return 0;
  }
}

void Dwc2Controller::MmioWrite32(uint64_t offset, uint32_t value) {
  if (offset >= kHcBase && offset < kHcBase + kNumChannels * kHcStride) {
    int ch = static_cast<int>((offset - kHcBase) / kHcStride);
    uint64_t reg = (offset - kHcBase) % kHcStride;
    Channel& c = channels_[static_cast<size_t>(ch)];
    switch (reg) {
      case kHcChar:
        c.hcchar = value & ~kHcCharDis;
        if (value & kHcCharDis) {
          if (c.pending != SimClock::kInvalidEvent) {
            clock_->Cancel(c.pending);
            c.pending = SimClock::kInvalidEvent;
          }
          c.hcchar &= ~kHcCharEna;
          c.hcint |= kHcIntChHltd;
          UpdateIrq();
          break;
        }
        if (value & kHcCharEna) {
          StartChannel(ch);
        }
        break;
      case kHcInt:
        c.hcint &= ~value;  // write-1-to-clear
        UpdateIrq();
        break;
      case kHcIntMsk: c.hcintmsk = value; break;
      case kHcTsiz: c.hctsiz = value; break;
      case kHcDma: c.hcdma = value; break;
      default: break;
    }
    return;
  }
  switch (offset) {
    case kGrstCtl:
      if (value & kGrstCtlCoreRst) {
        SoftReset();
      }
      break;
    case kGIntSts:
      gintsts_ &= ~(value & (kGIntStsSof | kGIntStsPrtInt));  // HCINT is derived
      UpdateIrq();
      break;
    case kGIntMsk: gintmsk_ = value; break;
    case kHaIntMsk: haintmsk_ = value; break;
    case kHPrt: {
      if (value & kHPrtRst) {
        hprt_ |= kHPrtRst;
        if (device_ != nullptr) {
          device_->Reset();
        }
      } else if (hprt_ & kHPrtRst) {
        hprt_ &= ~kHPrtRst;
        hprt_ |= kHPrtEna;
      }
      hprt_ &= ~(value & kHPrtConnDet);  // W1C
      break;
    }
    default:
      break;
  }
}

void Dwc2Controller::StartChannel(int ch) {
  Channel& c = channels_[static_cast<size_t>(ch)];
  uint32_t epnum = (c.hcchar >> kHcCharEpNumShift) & kHcCharEpNumMask;
  bool dir_in = (c.hcchar & kHcCharEpDirIn) != 0;
  uint32_t xfersize = c.hctsiz & kHcTsizXferSizeMask;
  uint32_t pid = (c.hctsiz >> kHcTsizPidShift) & 0x3;
  uint32_t dma = c.hcdma;
  ++transactions_;

  uint64_t wire_us = lat_->usb_xact_us + (xfersize * lat_->usb_data_per_kb_us + 1023) / 1024;

  c.pending = clock_->ScheduleIn(wire_us, [this, ch, epnum, dir_in, xfersize, pid, dma] {
    Channel& cc = channels_[static_cast<size_t>(ch)];
    cc.pending = SimClock::kInvalidEvent;
    if (device_ == nullptr || !device_->connected()) {
      FinishChannel(ch, kHcIntXactErr | kHcIntChHltd, 0);
      return;
    }
    uint64_t extra_us = 0;
    uint32_t bits = kHcIntXferCompl | kHcIntChHltd;
    size_t done = 0;
    if (epnum == 0) {
      // Control endpoint: SETUP stage caches the request; IN data stage
      // executes it; zero-length stages complete trivially.
      if (pid == kHcTsizPidSetup && !dir_in && xfersize >= 8) {
        uint8_t raw[8];
        if (!Ok(mem_->DmaRead(dma, raw, 8))) {
          bits = kHcIntXactErr | kHcIntChHltd;
        } else {
          pending_setup_.bm_request_type = raw[0];
          pending_setup_.b_request = raw[1];
          std::memcpy(&pending_setup_.w_value, raw + 2, 2);
          std::memcpy(&pending_setup_.w_index, raw + 4, 2);
          std::memcpy(&pending_setup_.w_length, raw + 6, 2);
          have_setup_ = true;
          done = 8;
          // Host-to-device data rides along after the 8 setup bytes.
          if (pending_setup_.w_length > 0 && !(pending_setup_.bm_request_type & 0x80)) {
            std::vector<uint8_t> out(pending_setup_.w_length);
            if (Ok(mem_->DmaRead(dma + 8, out.data(), out.size()))) {
              (void)device_->ControlRequest(pending_setup_, out.data(), nullptr);
              have_setup_ = false;
            }
          } else if (pending_setup_.w_length == 0) {
            (void)device_->ControlRequest(pending_setup_, nullptr, nullptr);
            have_setup_ = false;
          }
        }
      } else if (dir_in && have_setup_) {
        std::vector<uint8_t> in;
        Status s = device_->ControlRequest(pending_setup_, nullptr, &in);
        have_setup_ = false;
        if (!Ok(s)) {
          bits = kHcIntStall | kHcIntChHltd;
        } else {
          size_t n = std::min<size_t>(in.size(), xfersize);
          if (n > 0 && !Ok(mem_->DmaWrite(dma, in.data(), n))) {
            bits = kHcIntXactErr | kHcIntChHltd;
          }
          done = n;
        }
      }
      // Zero-length status stages fall through with XferCompl.
    } else if (dir_in) {
      std::vector<uint8_t> in;
      Status s = device_->BulkIn(xfersize, &in, &extra_us);
      if (!Ok(s)) {
        bits = kHcIntXactErr | kHcIntChHltd;
      } else {
        if (!in.empty() && !Ok(mem_->DmaWrite(dma, in.data(), in.size()))) {
          bits = kHcIntXactErr | kHcIntChHltd;
        }
        done = in.size();
      }
    } else {
      std::vector<uint8_t> out(xfersize);
      if (!Ok(mem_->DmaRead(dma, out.data(), out.size()))) {
        bits = kHcIntXactErr | kHcIntChHltd;
      } else {
        Status s = device_->BulkOut(out.data(), out.size(), &extra_us);
        if (!Ok(s)) {
          bits = kHcIntXactErr | kHcIntChHltd;
        } else {
          done = out.size();
        }
      }
    }
    if (extra_us > 0) {
      cc.pending = clock_->ScheduleIn(extra_us, [this, ch, bits, done] {
        channels_[static_cast<size_t>(ch)].pending = SimClock::kInvalidEvent;
        FinishChannel(ch, bits, done);
      });
    } else {
      FinishChannel(ch, bits, done);
    }
  });
}

void Dwc2Controller::FinishChannel(int ch, uint32_t hcint_bits, size_t bytes_done) {
  Channel& c = channels_[static_cast<size_t>(ch)];
  c.hcchar &= ~kHcCharEna;
  c.hcint |= hcint_bits;
  uint32_t xfersize = c.hctsiz & kHcTsizXferSizeMask;
  uint32_t remaining = bytes_done >= xfersize ? 0 : xfersize - static_cast<uint32_t>(bytes_done);
  c.hctsiz = (c.hctsiz & ~kHcTsizXferSizeMask) | remaining;
  UpdateIrq();
}

void Dwc2Controller::UpdateIrq() {
  haint_ = 0;
  for (int ch = 0; ch < kNumChannels; ++ch) {
    const Channel& c = channels_[static_cast<size_t>(ch)];
    if ((c.hcint & c.hcintmsk) != 0 || (c.hcint != 0 && c.hcintmsk == 0)) {
      haint_ |= (1u << ch);
    }
  }
  if (haint_ != 0) {
    gintsts_ |= kGIntStsHcInt;
  } else {
    gintsts_ &= ~kGIntStsHcInt;
  }
  bool want = (gintsts_ & kGIntStsHcInt) != 0 &&
              (gintmsk_ == 0 || (gintmsk_ & kGIntStsHcInt) != 0);
  if (want) {
    irq_->Raise(irq_line_);
  } else {
    irq_->Clear(irq_line_);
  }
}

void Dwc2Controller::SoftReset() {
  for (auto& c : channels_) {
    if (c.pending != SimClock::kInvalidEvent) {
      clock_->Cancel(c.pending);
    }
    c = Channel{};
  }
  grstctl_ = 0;
  gintsts_ = 0;
  gintmsk_ = 0;
  haint_ = 0;
  haintmsk_ = 0;
  // Post-init clean slate: port powered and enabled, device configured at boot.
  hprt_ = kHPrtPwr | kHPrtEna;
  have_setup_ = false;
  irq_->Clear(irq_line_);
  if (device_ != nullptr) {
    device_->Reset();
  }
}

}  // namespace dlt
