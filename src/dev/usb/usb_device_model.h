// Interface between the DWC2 host controller model and attached USB devices.
#ifndef SRC_DEV_USB_USB_DEVICE_MODEL_H_
#define SRC_DEV_USB_USB_DEVICE_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/soc/status.h"

namespace dlt {

struct UsbSetup {
  uint8_t bm_request_type = 0;
  uint8_t b_request = 0;
  uint16_t w_value = 0;
  uint16_t w_index = 0;
  uint16_t w_length = 0;
};

class UsbDeviceModel {
 public:
  virtual ~UsbDeviceModel() = default;

  virtual bool connected() const = 0;

  // Control transfers on EP0. |data_in| is filled for device-to-host requests.
  virtual Status ControlRequest(const UsbSetup& setup, const uint8_t* data_out,
                                std::vector<uint8_t>* data_in) = 0;

  // Bulk endpoints. |extra_us| reports device-side latency (flash program time)
  // beyond the wire time, which the host controller adds to the transaction.
  virtual Status BulkOut(const uint8_t* data, size_t len, uint64_t* extra_us) = 0;
  virtual Status BulkIn(size_t max_len, std::vector<uint8_t>* data, uint64_t* extra_us) = 0;

  // Bus reset.
  virtual void Reset() = 0;
};

}  // namespace dlt

#endif  // SRC_DEV_USB_USB_DEVICE_MODEL_H_
