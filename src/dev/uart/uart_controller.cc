#include "src/dev/uart/uart_controller.h"

namespace dlt {

namespace {
// 115200 baud, 10 bits per byte: ~87 us per byte on the wire.
constexpr uint64_t kUsPerByte = 87;
}  // namespace

uint32_t UartController::MmioRead32(uint64_t offset) {
  switch (offset) {
    case kUartDr: {
      if (rx_.empty()) {
        return 0;
      }
      uint8_t b = rx_.front();
      rx_.pop_front();
      if (rx_.empty()) {
        irq_->Clear(irq_line_);
      }
      return b;
    }
    case kUartFr: {
      // Drain the transmit FIFO against the wire clock.
      uint64_t now = clock_->now_us();
      if (tx_in_flight_ > 0 && now >= tx_drain_at_us_) {
        tx_in_flight_ = 0;
      } else if (tx_in_flight_ > 0) {
        uint64_t remaining_us = tx_drain_at_us_ - now;
        tx_in_flight_ = static_cast<size_t>((remaining_us + kUsPerByte - 1) / kUsPerByte);
      }
      uint32_t fr = 0;
      if (tx_in_flight_ >= kTxFifoDepth) {
        fr |= kUartFrTxFull;
      }
      if (rx_.empty()) {
        fr |= kUartFrRxEmpty;
      }
      return fr;
    }
    case kUartCr:
      return cr_;
    default:
      return 0;
  }
}

void UartController::MmioWrite32(uint64_t offset, uint32_t value) {
  switch (offset) {
    case kUartDr:
      if (cr_ & kUartCrEnable) {
        tx_log_.push_back(static_cast<char>(value & 0xff));
        uint64_t now = clock_->now_us();
        tx_drain_at_us_ = std::max(tx_drain_at_us_, now) + kUsPerByte;
        ++tx_in_flight_;
      }
      break;
    case kUartCr:
      cr_ = value;
      break;
    default:
      break;
  }
}

void UartController::InjectRx(std::string_view data, uint64_t delay_us) {
  std::string copy(data);
  clock_->ScheduleIn(delay_us, [this, copy] {
    for (char c : copy) {
      rx_.push_back(static_cast<uint8_t>(c));
    }
    if (!rx_.empty()) {
      irq_->Raise(irq_line_);
    }
  });
}

void UartController::SoftReset() {
  cr_ = kUartCrEnable;
  tx_in_flight_ = 0;
  rx_.clear();
  irq_->Clear(irq_line_);
}

}  // namespace dlt
