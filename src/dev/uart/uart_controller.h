// PL011-style UART model. The paper's §2.2 taxonomy notes that the manual
// "trim down" approach IS viable for trivial drivers like a TEE UART — this
// device (and tee::TrimmedUartDriver) materialize that contrast: a device
// simple enough that ~60 lines of hand-written in-TEE driver suffice, unlike
// MMC/USB/VCHIQ where driverlets are the economical route.
#ifndef SRC_DEV_UART_UART_CONTROLLER_H_
#define SRC_DEV_UART_UART_CONTROLLER_H_

#include <deque>
#include <string>

#include "src/soc/device.h"
#include "src/soc/irq.h"
#include "src/soc/sim_clock.h"

namespace dlt {

inline constexpr uint64_t kUartDr = 0x00;  // data: write = tx, read = rx pop
inline constexpr uint64_t kUartFr = 0x18;  // flags
inline constexpr uint64_t kUartCr = 0x30;  // control: bit0 enable

inline constexpr uint32_t kUartFrTxFull = 1u << 5;
inline constexpr uint32_t kUartFrRxEmpty = 1u << 4;
inline constexpr uint32_t kUartCrEnable = 1u << 0;

class UartController : public MmioDevice {
 public:
  UartController(SimClock* clock, InterruptController* irq, int irq_line)
      : clock_(clock), irq_(irq), irq_line_(irq_line) {}

  std::string_view name() const override { return "uart"; }
  uint32_t MmioRead32(uint64_t offset) override;
  void MmioWrite32(uint64_t offset, uint32_t value) override;
  void SoftReset() override;

  // Test hooks: everything the UART transmitted; inject received bytes.
  const std::string& transmitted() const { return tx_log_; }
  void InjectRx(std::string_view data, uint64_t delay_us = 0);

 private:
  static constexpr size_t kTxFifoDepth = 16;

  SimClock* clock_;
  InterruptController* irq_;
  int irq_line_;
  uint32_t cr_ = kUartCrEnable;
  std::string tx_log_;
  size_t tx_in_flight_ = 0;  // bytes still "on the wire" (drains over time)
  uint64_t tx_drain_at_us_ = 0;
  std::deque<uint8_t> rx_;
};

}  // namespace dlt

#endif  // SRC_DEV_UART_UART_CONTROLLER_H_
