// Firmware-TPM device model — the fourth driverlet class (ROADMAP item 1).
// Mirrors the shape of the kernel's tpm_ftpm_tee driver target: a thin
// command/response pipe with variable-length request and response buffers and
// a busy/ready status register. The "firmware" executes a tiny deterministic
// TPM command set (get-random, PCR extend/read, quote) so record/replay tests
// can predict responses; PCR bank and DRBG state model the fTPM's NV storage
// and survive SoftReset like media do on the block devices.
#ifndef SRC_DEV_FTPM_FTPM_DEVICE_H_
#define SRC_DEV_FTPM_FTPM_DEVICE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/soc/device.h"
#include "src/soc/irq.h"
#include "src/soc/latency_model.h"
#include "src/soc/sim_clock.h"

namespace dlt {

// Register map (all 32-bit).
inline constexpr uint64_t kFtpmCtrl = 0x00;    // bit0: enable
inline constexpr uint64_t kFtpmStatus = 0x04;  // bit0 busy, bit1 ready (W1C), bit2 error
inline constexpr uint64_t kFtpmOrd = 0x08;     // command ordinal
inline constexpr uint64_t kFtpmArg = 0x0c;     // command argument (nbytes / pcr index / mask)
inline constexpr uint64_t kFtpmReqLen = 0x10;  // request payload bytes (write before data)
inline constexpr uint64_t kFtpmData = 0x14;    // FIFO: write pushes request, read pops response
inline constexpr uint64_t kFtpmGo = 0x18;      // write 1: execute the staged command
inline constexpr uint64_t kFtpmRspLen = 0x1c;  // response payload bytes (statistic input)
inline constexpr uint64_t kFtpmVer = 0x20;     // interface version, for probe checks

inline constexpr uint32_t kFtpmCtrlEnable = 0x1;
inline constexpr uint32_t kFtpmStatusBusy = 0x1;
inline constexpr uint32_t kFtpmStatusReady = 0x2;
inline constexpr uint32_t kFtpmStatusError = 0x4;
inline constexpr uint32_t kFtpmVersion = 0x46545031;  // "FTP1"

// Command ordinals (fTPM-profile subset).
inline constexpr uint32_t kFtpmOrdGetRandom = 1;  // arg: nbytes; rsp: nbytes
inline constexpr uint32_t kFtpmOrdPcrExtend = 2;  // arg: pcr; req: 32B digest; rsp: 4B status
inline constexpr uint32_t kFtpmOrdPcrRead = 3;    // arg: pcr; rsp: 32B value
inline constexpr uint32_t kFtpmOrdQuote = 4;      // arg: pcr mask; req: 16B nonce; rsp: 48B

inline constexpr uint32_t kFtpmPcrCount = 8;
inline constexpr uint32_t kFtpmPcrBytes = 32;
inline constexpr uint32_t kFtpmNonceBytes = 16;
inline constexpr uint32_t kFtpmMaxRandom = 256;

class FtpmDevice : public MmioDevice {
 public:
  FtpmDevice(SimClock* clock, InterruptController* irq, const LatencyModel* lat, int irq_line)
      : clock_(clock), irq_(irq), lat_(lat), irq_line_(irq_line) {}

  std::string_view name() const override { return "ftpm"; }
  uint32_t MmioRead32(uint64_t offset) override;
  void MmioWrite32(uint64_t offset, uint32_t value) override;
  void SoftReset() override;

  int irq_line() const { return irq_line_; }

  uint64_t commands_executed() const { return commands_executed_; }

  // The PCR bank state, for test oracles (validation scripts re-derive the
  // expected extend/read/quote bytes with the static helpers below).
  const std::array<uint8_t, kFtpmPcrBytes>& pcr(uint32_t index) const {
    return pcrs_[index % kFtpmPcrCount];
  }

  // pcr' = H(pcr || digest) — the deterministic extend mix.
  static std::array<uint8_t, kFtpmPcrBytes> ExtendMix(
      const std::array<uint8_t, kFtpmPcrBytes>& pcr, const uint8_t* digest, size_t len);

 private:
  void Execute();
  void Complete(bool error);
  void UpdateIrq();
  uint8_t NextDrbgByte();

  SimClock* clock_;
  InterruptController* irq_;
  const LatencyModel* lat_;
  int irq_line_;

  uint32_t ctrl_ = kFtpmCtrlEnable;
  uint32_t status_ = 0;
  uint32_t ord_ = 0;
  uint32_t arg_ = 0;
  uint32_t req_len_ = 0;
  std::vector<uint8_t> req_;
  std::vector<uint8_t> rsp_;
  size_t rsp_pos_ = 0;
  SimClock::EventId pending_ = SimClock::kInvalidEvent;

  // NV state: survives SoftReset (fTPM state lives in RPMB, not the mailbox).
  std::array<std::array<uint8_t, kFtpmPcrBytes>, kFtpmPcrCount> pcrs_{};
  uint64_t drbg_ = 0x66747061'74657374ull;  // deterministic DRBG seed

  uint64_t commands_executed_ = 0;
};

}  // namespace dlt

#endif  // SRC_DEV_FTPM_FTPM_DEVICE_H_
