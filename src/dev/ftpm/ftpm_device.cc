#include "src/dev/ftpm/ftpm_device.h"

#include <cstring>

namespace dlt {

namespace {

// FNV-1a over a running 64-bit state; the mixing primitive for ExtendMix and
// quote digests. Not cryptographic — deterministic and collision-decent is all
// the simulation needs.
uint64_t Fnv1a(uint64_t h, const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void ExpandDigest(uint64_t seed, std::array<uint8_t, kFtpmPcrBytes>* out) {
  uint64_t s = seed;
  for (size_t i = 0; i < kFtpmPcrBytes; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    (*out)[i] = static_cast<uint8_t>(s >> 56);
  }
}

}  // namespace

std::array<uint8_t, kFtpmPcrBytes> FtpmDevice::ExtendMix(
    const std::array<uint8_t, kFtpmPcrBytes>& pcr, const uint8_t* digest, size_t len) {
  uint64_t h = 0xcbf29ce484222325ull;
  h = Fnv1a(h, pcr.data(), pcr.size());
  h = Fnv1a(h, digest, len);
  std::array<uint8_t, kFtpmPcrBytes> out;
  ExpandDigest(h, &out);
  return out;
}

uint8_t FtpmDevice::NextDrbgByte() {
  drbg_ = drbg_ * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<uint8_t>(drbg_ >> 56);
}

uint32_t FtpmDevice::MmioRead32(uint64_t offset) {
  switch (offset) {
    case kFtpmCtrl:
      return ctrl_;
    case kFtpmStatus:
      return status_;
    case kFtpmOrd:
      return ord_;
    case kFtpmArg:
      return arg_;
    case kFtpmReqLen:
      return req_len_;
    case kFtpmData: {
      // Pop one response word (little-endian, zero-padded at the tail).
      uint32_t v = 0;
      for (int i = 0; i < 4; ++i) {
        uint8_t b = rsp_pos_ < rsp_.size() ? rsp_[rsp_pos_] : 0;
        if (rsp_pos_ < rsp_.size()) {
          ++rsp_pos_;
        }
        v |= static_cast<uint32_t>(b) << (8 * i);
      }
      return v;
    }
    case kFtpmRspLen:
      return static_cast<uint32_t>(rsp_.size());
    case kFtpmVer:
      return kFtpmVersion;
    default:
      return 0;
  }
}

void FtpmDevice::MmioWrite32(uint64_t offset, uint32_t value) {
  switch (offset) {
    case kFtpmCtrl:
      ctrl_ = value;
      UpdateIrq();
      break;
    case kFtpmStatus:
      // W1C: acking ready/error.
      status_ &= ~(value & (kFtpmStatusReady | kFtpmStatusError));
      UpdateIrq();
      break;
    case kFtpmOrd:
      ord_ = value;
      break;
    case kFtpmArg:
      arg_ = value;
      break;
    case kFtpmReqLen:
      req_len_ = value;
      req_.clear();
      break;
    case kFtpmData:
      // Push one request word; extra bytes beyond req_len_ are dropped.
      for (int i = 0; i < 4; ++i) {
        if (req_.size() < req_len_) {
          req_.push_back(static_cast<uint8_t>(value >> (8 * i)));
        }
      }
      break;
    case kFtpmGo:
      if ((value & 1) != 0 && (ctrl_ & kFtpmCtrlEnable) != 0 &&
          (status_ & kFtpmStatusBusy) == 0) {
        Execute();
      }
      break;
    default:
      break;
  }
}

void FtpmDevice::Execute() {
  status_ |= kFtpmStatusBusy;
  status_ &= ~(kFtpmStatusReady | kFtpmStatusError);
  rsp_.clear();
  rsp_pos_ = 0;

  bool error = false;
  switch (ord_) {
    case kFtpmOrdGetRandom: {
      uint32_t n = arg_;
      if (n == 0 || n > kFtpmMaxRandom) {
        error = true;
        break;
      }
      rsp_.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        rsp_[i] = NextDrbgByte();
      }
      break;
    }
    case kFtpmOrdPcrExtend: {
      if (req_.size() != kFtpmPcrBytes) {
        error = true;
        break;
      }
      auto& pcr = pcrs_[arg_ % kFtpmPcrCount];
      pcr = ExtendMix(pcr, req_.data(), req_.size());
      rsp_.assign(4, 0);  // TPM_RC_SUCCESS
      break;
    }
    case kFtpmOrdPcrRead: {
      const auto& pcr = pcrs_[arg_ % kFtpmPcrCount];
      rsp_.assign(pcr.begin(), pcr.end());
      break;
    }
    case kFtpmOrdQuote: {
      if (req_.size() != kFtpmNonceBytes) {
        error = true;
        break;
      }
      // Quote = nonce echo || digest over (nonce, selected PCR bank).
      rsp_.assign(req_.begin(), req_.end());
      uint64_t h = 0xcbf29ce484222325ull;
      h = Fnv1a(h, req_.data(), req_.size());
      for (uint32_t i = 0; i < kFtpmPcrCount; ++i) {
        if ((arg_ & (1u << i)) != 0) {
          h = Fnv1a(h, pcrs_[i].data(), pcrs_[i].size());
        }
      }
      std::array<uint8_t, kFtpmPcrBytes> digest;
      ExpandDigest(h, &digest);
      rsp_.insert(rsp_.end(), digest.begin(), digest.end());
      break;
    }
    default:
      error = true;
      break;
  }

  // Firmware cost: base command exchange plus marshalling per KB moved.
  uint64_t bytes = req_len_ + rsp_.size();
  uint64_t cost_us = lat_->ftpm_cmd_us + (bytes * lat_->ftpm_per_kb_us + 1023) / 1024;
  pending_ = clock_->ScheduleIn(cost_us, [this, error] { Complete(error); });
}

void FtpmDevice::Complete(bool error) {
  pending_ = SimClock::kInvalidEvent;
  status_ &= ~kFtpmStatusBusy;
  status_ |= error ? kFtpmStatusError : kFtpmStatusReady;
  if (error) {
    rsp_.clear();
  }
  ++commands_executed_;
  UpdateIrq();
}

void FtpmDevice::UpdateIrq() {
  if ((ctrl_ & kFtpmCtrlEnable) != 0 &&
      (status_ & (kFtpmStatusReady | kFtpmStatusError)) != 0) {
    irq_->Raise(irq_line_);
  } else {
    irq_->Clear(irq_line_);
  }
}

void FtpmDevice::SoftReset() {
  // Drop the in-flight command and mailbox buffers; the NV state (PCR bank,
  // DRBG) survives — it lives in RPMB, not in the mailbox interface.
  if (pending_ != SimClock::kInvalidEvent) {
    clock_->Cancel(pending_);
    pending_ = SimClock::kInvalidEvent;
  }
  ctrl_ = kFtpmCtrlEnable;
  status_ = 0;
  ord_ = 0;
  arg_ = 0;
  req_len_ = 0;
  req_.clear();
  rsp_.clear();
  rsp_pos_ = 0;
  UpdateIrq();
}

}  // namespace dlt
