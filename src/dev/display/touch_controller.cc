#include "src/dev/display/touch_controller.h"

namespace dlt {

uint32_t TouchController::MmioRead32(uint64_t offset) {
  switch (offset) {
    case kTouchCtrl:
      return ctrl_;
    case kTouchStatus:
      return fifo_.empty() ? 0 : kTouchStatusPending;
    case kTouchData: {
      if (fifo_.empty()) {
        return 0;
      }
      uint32_t v = fifo_.front();
      fifo_.pop_front();
      UpdateIrq();
      return v;
    }
    case kTouchFifoLvl:
      return static_cast<uint32_t>(fifo_.size());
    default:
      return 0;
  }
}

void TouchController::MmioWrite32(uint64_t offset, uint32_t value) {
  switch (offset) {
    case kTouchCtrl:
      ctrl_ = value;
      break;
    case kTouchStatus:
      // W1C has no stored bit here (status is FIFO-derived); ack just re-evaluates.
      (void)value;
      UpdateIrq();
      break;
    default:
      break;
  }
}

void TouchController::InjectTouch(uint32_t x, uint32_t y, uint64_t delay_us) {
  uint32_t sample = PackSample(x, y);
  if (delay_us == 0) {
    fifo_.push_back(sample);
    UpdateIrq();
    return;
  }
  clock_->ScheduleIn(delay_us, [this, sample] {
    fifo_.push_back(sample);
    UpdateIrq();
  });
}

void TouchController::UpdateIrq() {
  if ((ctrl_ & kTouchCtrlEnable) && !fifo_.empty()) {
    irq_->Raise(irq_line_);
  } else {
    irq_->Clear(irq_line_);
  }
}

void TouchController::SoftReset() {
  // Clean slate for the controller configuration; queued user input survives
  // (it is the "medium" here, like sectors on a card — a reset between
  // templates must not drop the press the user already made).
  ctrl_ = kTouchCtrlEnable;
  UpdateIrq();
}

}  // namespace dlt
