#include "src/dev/display/display_controller.h"

#include "src/soc/log.h"

namespace dlt {

DisplayController::DisplayController(AddressSpace* mem, SimClock* clock, InterruptController* irq,
                                     const LatencyModel* lat, int irq_line)
    : mem_(mem),
      clock_(clock),
      irq_(irq),
      lat_(lat),
      irq_line_(irq_line),
      panel_(static_cast<size_t>(kPanelWidth) * kPanelHeight, 0) {}

uint32_t DisplayController::MmioRead32(uint64_t offset) {
  switch (offset) {
    case kDispCtrl: return ctrl_;
    case kDispStatus: return status_;
    case kDispFbAddr: return fb_addr_;
    case kDispGeom: return geom_;
    case kDispPos: return pos_;
    case kDispStride: return stride_;
    case kDispScanline:
      // Free-running beam position: a time-derived statistic input (like the
      // USB HFNUM) that differs between record and replay runs.
      return static_cast<uint32_t>((clock_->now_us() / 21) % kPanelHeight);
    default:
      return 0;
  }
}

void DisplayController::MmioWrite32(uint64_t offset, uint32_t value) {
  switch (offset) {
    case kDispCtrl: ctrl_ = value; break;
    case kDispStatus:
      status_ &= ~(value & kDispStatusVsync);  // W1C
      if (!(status_ & kDispStatusVsync)) {
        irq_->Clear(irq_line_);
      }
      break;
    case kDispFbAddr: fb_addr_ = value; break;
    case kDispGeom: geom_ = value; break;
    case kDispPos: pos_ = value; break;
    case kDispStride: stride_ = value; break;
    case kDispCommit:
      if ((value & 1) && (ctrl_ & kDispCtrlEnable)) {
        Commit();
      }
      break;
    default:
      break;
  }
}

void DisplayController::Commit() {
  uint32_t w = geom_ & 0xffff;
  uint32_t h = geom_ >> 16;
  uint32_t x = pos_ & 0xffff;
  uint32_t y = pos_ >> 16;
  if (w == 0 || h == 0 || x + w > kPanelWidth || y + h > kPanelHeight) {
    return;  // blit rejected; no vsync completion -> the driver's wait times out
  }
  status_ |= kDispStatusBusy;
  ++commits_;
  uint32_t fb = fb_addr_;
  uint32_t stride = stride_ == 0 ? w * 4 : stride_;
  // Scanout latency: one frame period (60 Hz) plus DMA time for the pixels.
  uint64_t scan_us = 16'667 + (static_cast<uint64_t>(w) * h * 4 * lat_->dma_per_kb_us) / 1024;
  pending_ = clock_->ScheduleIn(scan_us, [this, w, h, x, y, fb, stride] {
    pending_ = SimClock::kInvalidEvent;
    std::vector<uint32_t> row(w);
    for (uint32_t r = 0; r < h; ++r) {
      if (!Ok(mem_->DmaRead(fb + static_cast<uint64_t>(r) * stride, row.data(),
                            static_cast<size_t>(w) * 4))) {
        break;
      }
      std::copy(row.begin(), row.end(),
                panel_.begin() + (static_cast<size_t>(y + r) * kPanelWidth + x));
    }
    status_ &= ~kDispStatusBusy;
    status_ |= kDispStatusVsync;
    irq_->Raise(irq_line_);
  });
}

uint32_t DisplayController::PanelPixel(uint32_t x, uint32_t y) const {
  if (x >= kPanelWidth || y >= kPanelHeight) {
    return 0;
  }
  return panel_[static_cast<size_t>(y) * kPanelWidth + x];
}

void DisplayController::SoftReset() {
  if (pending_ != SimClock::kInvalidEvent) {
    clock_->Cancel(pending_);
    pending_ = SimClock::kInvalidEvent;
  }
  // Post-init clean slate: controller enabled (the boot splash left it on),
  // panel content preserved (it is the physical screen).
  ctrl_ = kDispCtrlEnable;
  status_ = 0;
  fb_addr_ = 0;
  geom_ = 0;
  pos_ = 0;
  stride_ = 0;
  irq_->Clear(irq_line_);
}

}  // namespace dlt
