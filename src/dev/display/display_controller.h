// Display controller model (DSI-panel-like), the substrate for the paper's
// third secure-IO use case: trusted UI — "trustlets render to screen
// security-sensitive contents, such as service verification codes and bank
// account information" (§2.1), with the display controller isolated in the TEE
// (the Rushmore-style point solution the paper generalizes over, ref [43]).
//
// Programming model: the driver points DISP_FB at a framebuffer in DMA memory,
// sets the blit geometry, and kicks DISP_COMMIT; the controller bus-masters the
// pixels into its internal panel during the next scanout and raises a vsync
// interrupt. Pixels are 32-bit XRGB.
#ifndef SRC_DEV_DISPLAY_DISPLAY_CONTROLLER_H_
#define SRC_DEV_DISPLAY_DISPLAY_CONTROLLER_H_

#include <vector>

#include "src/soc/address_space.h"
#include "src/soc/device.h"
#include "src/soc/irq.h"
#include "src/soc/latency_model.h"
#include "src/soc/sim_clock.h"

namespace dlt {

// Register offsets.
inline constexpr uint64_t kDispCtrl = 0x00;     // bit0: controller enable
inline constexpr uint64_t kDispStatus = 0x04;   // bit0: vsync done (W1C), bit4: busy
inline constexpr uint64_t kDispFbAddr = 0x08;   // physical framebuffer base
inline constexpr uint64_t kDispGeom = 0x0c;     // blit w | h<<16 (pixels)
inline constexpr uint64_t kDispPos = 0x10;      // blit x | y<<16 (panel coords)
inline constexpr uint64_t kDispStride = 0x14;   // framebuffer stride in bytes
inline constexpr uint64_t kDispCommit = 0x18;   // write 1: latch + scan out
inline constexpr uint64_t kDispScanline = 0x1c; // free-running beam position (statistic)

inline constexpr uint32_t kDispCtrlEnable = 0x1;
inline constexpr uint32_t kDispStatusVsync = 0x1;
inline constexpr uint32_t kDispStatusBusy = 0x10;

inline constexpr uint32_t kPanelWidth = 800;
inline constexpr uint32_t kPanelHeight = 480;

class DisplayController : public MmioDevice {
 public:
  DisplayController(AddressSpace* mem, SimClock* clock, InterruptController* irq,
                    const LatencyModel* lat, int irq_line);

  std::string_view name() const override { return "display"; }
  uint32_t MmioRead32(uint64_t offset) override;
  void MmioWrite32(uint64_t offset, uint32_t value) override;
  void SoftReset() override;

  int irq_line() const { return irq_line_; }

  // Panel introspection for validation (what a camera pointed at the screen
  // would see).
  uint32_t PanelPixel(uint32_t x, uint32_t y) const;
  uint64_t commits() const { return commits_; }

 private:
  void Commit();

  AddressSpace* mem_;
  SimClock* clock_;
  InterruptController* irq_;
  const LatencyModel* lat_;
  int irq_line_;

  uint32_t ctrl_ = 0;
  uint32_t status_ = 0;
  uint32_t fb_addr_ = 0;
  uint32_t geom_ = 0;
  uint32_t pos_ = 0;
  uint32_t stride_ = 0;
  std::vector<uint32_t> panel_;
  SimClock::EventId pending_ = SimClock::kInvalidEvent;
  uint64_t commits_ = 0;
};

}  // namespace dlt

#endif  // SRC_DEV_DISPLAY_DISPLAY_CONTROLLER_H_
