// Touch input controller model — the input half of the paper's trusted-UI use
// case: "the UI reads in user inputs such as key presses and touch. Both the
// display controller and input devices are isolated in TEE" (§2.1, refs
// [43, 54]). A resistive touch panel posts (x, y, press) samples into a small
// FIFO and raises an interrupt.
#ifndef SRC_DEV_DISPLAY_TOUCH_CONTROLLER_H_
#define SRC_DEV_DISPLAY_TOUCH_CONTROLLER_H_

#include <deque>

#include "src/soc/device.h"
#include "src/soc/irq.h"
#include "src/soc/latency_model.h"
#include "src/soc/sim_clock.h"

namespace dlt {

inline constexpr uint64_t kTouchCtrl = 0x00;    // bit0: enable
inline constexpr uint64_t kTouchStatus = 0x04;  // bit0: sample pending (W1C)
inline constexpr uint64_t kTouchData = 0x08;    // x | y<<12 | pressed<<31; read pops
inline constexpr uint64_t kTouchFifoLvl = 0x0c; // samples queued (statistic input)

inline constexpr uint32_t kTouchCtrlEnable = 0x1;
inline constexpr uint32_t kTouchStatusPending = 0x1;

class TouchController : public MmioDevice {
 public:
  TouchController(SimClock* clock, InterruptController* irq, int irq_line)
      : clock_(clock), irq_(irq), irq_line_(irq_line) {}

  std::string_view name() const override { return "touch"; }
  uint32_t MmioRead32(uint64_t offset) override;
  void MmioWrite32(uint64_t offset, uint32_t value) override;
  void SoftReset() override;

  int irq_line() const { return irq_line_; }

  // Simulated user input: a press sample delivered after |delay_us|.
  void InjectTouch(uint32_t x, uint32_t y, uint64_t delay_us = 0);

  static uint32_t PackSample(uint32_t x, uint32_t y) {
    return (x & 0xfff) | ((y & 0xfff) << 12) | 0x80000000u;
  }

 private:
  void UpdateIrq();

  SimClock* clock_;
  InterruptController* irq_;
  int irq_line_;
  uint32_t ctrl_ = kTouchCtrlEnable;
  std::deque<uint32_t> fifo_;
};

}  // namespace dlt

#endif  // SRC_DEV_DISPLAY_TOUCH_CONTROLLER_H_
