// VC4 multimedia accelerator model: the "GPU side" of VCHIQ. Exposes only the
// mailbox/doorbell MMIO window (the paper found just 3 registers in use, §6.3.3);
// everything else happens through the shared-memory slot queue. Implements an
// MMAL-ish camera service that produces deterministic synthetic JPEG frames.
#ifndef SRC_DEV_VC4_VC4_FIRMWARE_H_
#define SRC_DEV_VC4_VC4_FIRMWARE_H_

#include <deque>
#include <vector>

#include "src/dev/vc4/vchiq_proto.h"
#include "src/soc/address_space.h"
#include "src/soc/device.h"
#include "src/soc/irq.h"
#include "src/soc/latency_model.h"
#include "src/soc/sim_clock.h"

namespace dlt {

class Vc4Firmware : public MmioDevice {
 public:
  Vc4Firmware(AddressSpace* mem, SimClock* clock, InterruptController* irq,
              const LatencyModel* lat, int irq_line);

  std::string_view name() const override { return "vchiq"; }
  uint32_t MmioRead32(uint64_t offset) override;
  void MmioWrite32(uint64_t offset, uint32_t value) override;
  void SoftReset() override;

  int irq_line() const { return irq_line_; }

  // Fault injection: the image sensor losing its connection (paper §3.3 cause 3).
  void set_sensor_connected(bool c) { sensor_connected_ = c; }

  uint64_t frames_produced() const { return frames_produced_; }
  uint64_t messages_handled() const { return messages_handled_; }

  // Deterministic synthetic JPEG produced for (sequence, resolution); exposed so
  // validation scripts can re-derive expected frame contents.
  static std::vector<uint8_t> MakeFrame(uint32_t seq, uint32_t resolution);
  static uint32_t FrameBytes(uint32_t resolution);

 private:
  void RingVc4();
  void ProcessQueue();
  void HandleMessage(uint32_t msgid, const uint8_t* payload, uint32_t size);
  void HandleMmal(const uint8_t* payload, uint32_t size);
  void PostMessage(VchiqMsgType type, const uint32_t* words, uint32_t nwords);
  void PostMmalReply(MmalMsgType type, uint32_t a, uint32_t b);
  void RingCpu();
  void ScheduleFrameDone(uint64_t cost_us, uint32_t seq, uint32_t res);

  uint32_t QRead32(uint32_t offset);
  void QWrite32(uint32_t offset, uint32_t value);

  AddressSpace* mem_;
  SimClock* clock_;
  InterruptController* irq_;
  const LatencyModel* lat_;
  int irq_line_;

  uint32_t queue_base_ = 0;  // physical base of the slot memory (0 = not set)
  bool connected_ = false;
  bool port_open_ = false;
  bool component_created_ = false;
  bool component_enabled_ = false;
  bool port_enabled_ = false;
  bool sensor_connected_ = true;
  bool camera_inited_ = false;  // first capture pays the sensor init cost
  bool capture_in_flight_ = false;
  bool capture_streaming_ = false;  // back-to-back captures keep the sensor streaming
  uint32_t resolution_ = 0;
  uint32_t slave_rx_pos_ = 0;  // how far VC4 has parsed the slave region
  uint32_t master_tx_ = 0;     // VC4-side write cursor (published to slot 0 lazily)
  uint32_t bell0_pending_ = 0;

  std::vector<uint8_t> current_frame_;
  uint32_t frame_seq_ = 0;
  uint64_t frames_produced_ = 0;
  uint64_t messages_handled_ = 0;
  SimClock::EventId pending_ = SimClock::kInvalidEvent;
};

}  // namespace dlt

#endif  // SRC_DEV_VC4_VC4_FIRMWARE_H_
