#include "src/dev/vc4/vc4_firmware.h"

#include <algorithm>

#include <cstring>

#include "src/soc/log.h"

namespace dlt {

namespace {

uint32_t Pad8(uint32_t n) { return (n + 7) & ~7u; }

struct Resolution {
  uint32_t w;
  uint32_t h;
};

bool LookupResolution(uint32_t res, Resolution* out) {
  switch (res) {
    case 720: *out = {1280, 720}; return true;
    case 1080: *out = {1920, 1080}; return true;
    case 1440: *out = {2560, 1440}; return true;
    default: return false;
  }
}

}  // namespace

Vc4Firmware::Vc4Firmware(AddressSpace* mem, SimClock* clock, InterruptController* irq,
                         const LatencyModel* lat, int irq_line)
    : mem_(mem), clock_(clock), irq_(irq), lat_(lat), irq_line_(irq_line) {}

uint32_t Vc4Firmware::FrameBytes(uint32_t resolution) {
  Resolution r{};
  if (!LookupResolution(resolution, &r)) {
    return 0;
  }
  // ~2/3 byte per pixel of "JPEG": 1080p lands in the paper's 1-2 MB range (§7.4).
  return r.w * r.h * 2 / 3;
}

std::vector<uint8_t> Vc4Firmware::MakeFrame(uint32_t seq, uint32_t resolution) {
  uint32_t n = FrameBytes(resolution);
  std::vector<uint8_t> f(n);
  if (n < 8) {
    return f;
  }
  // JPEG SOI + APP0 marker so integrity checks can validate the format.
  f[0] = 0xff;
  f[1] = 0xd8;
  f[2] = 0xff;
  f[3] = 0xe0;
  uint32_t x = seq * 2654435761u ^ resolution ^ 0x9e3779b9u;
  for (size_t i = 4; i + 2 < f.size(); ++i) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    uint8_t b = static_cast<uint8_t>(x);
    // Avoid embedding 0xff marker bytes in the entropy payload.
    f[i] = b == 0xff ? 0xfe : b;
  }
  f[f.size() - 2] = 0xff;
  f[f.size() - 1] = 0xd9;  // EOI
  return f;
}

uint32_t Vc4Firmware::QRead32(uint32_t offset) {
  uint32_t v = 0;
  if (queue_base_ != 0) {
    (void)mem_->DmaRead(queue_base_ + offset, &v, 4);
  }
  return v;
}

void Vc4Firmware::QWrite32(uint32_t offset, uint32_t value) {
  if (queue_base_ != 0) {
    (void)mem_->DmaWrite(queue_base_ + offset, &value, 4);
  }
}

uint32_t Vc4Firmware::MmioRead32(uint64_t offset) {
  switch (offset) {
    case kBell0: {
      uint32_t v = bell0_pending_;
      bell0_pending_ = 0;
      irq_->Clear(irq_line_);
      return v;
    }
    case kMboxStatus:
      return 0;  // never full/empty in this model
    case kMboxRead:
      return 0;
    default:
      return 0;
  }
}

void Vc4Firmware::MmioWrite32(uint64_t offset, uint32_t value) {
  switch (offset) {
    case kMboxWrite:
      queue_base_ = value;
      slave_rx_pos_ = 0;
      break;
    case kBell2:
      RingVc4();
      break;
    default:
      break;
  }
}

void Vc4Firmware::RingVc4() {
  clock_->ScheduleIn(lat_->vchiq_msg_us, [this] { ProcessQueue(); });
}

void Vc4Firmware::ProcessQueue() {
  if (queue_base_ == 0) {
    return;
  }
  uint32_t tx = QRead32(kSzSlaveTxPos);
  while (slave_rx_pos_ + kMsgHdrBytes <= tx && slave_rx_pos_ + kMsgHdrBytes <= kVchiqSlaveBytes) {
    uint32_t base = kVchiqSlaveBase + slave_rx_pos_;
    uint32_t msgid = QRead32(base);
    uint32_t size = QRead32(base + 4);
    if (size > kVchiqSlotSize) {
      break;  // malformed
    }
    std::vector<uint8_t> payload(size);
    if (size > 0) {
      (void)mem_->DmaRead(queue_base_ + base + kMsgHdrBytes, payload.data(), size);
    }
    slave_rx_pos_ += kMsgHdrBytes + Pad8(size);
    ++messages_handled_;
    HandleMessage(msgid, payload.data(), size);
  }
}

void Vc4Firmware::PostMessage(VchiqMsgType type, const uint32_t* words, uint32_t nwords) {
  uint32_t size = nwords * 4;
  if (master_tx_ + kMsgHdrBytes + Pad8(size) > kVchiqMasterBytes) {
    DLT_LOG(kWarn) << "vchiq master region full";
    return;
  }
  uint32_t base = kVchiqMasterBase + master_tx_;
  QWrite32(base, static_cast<uint32_t>(type) << kMsgTypeShift);
  QWrite32(base + 4, size);
  for (uint32_t i = 0; i < nwords; ++i) {
    QWrite32(base + kMsgHdrBytes + i * 4, words[i]);
  }
  master_tx_ += kMsgHdrBytes + Pad8(size);
  // The write cursor becomes visible to the CPU slightly after the doorbell:
  // VC4 batches its slot-zero sync (the "sync thread" of §6.3.3). This is why
  // the CPU-side slot handler actively polls after taking the interrupt.
  uint32_t publish = master_tx_;
  clock_->ScheduleIn(lat_->vchiq_msg_us / 2 + 40, [this, publish] {
    QWrite32(kSzMasterTxPos, publish);
  });
}

void Vc4Firmware::PostMmalReply(MmalMsgType type, uint32_t a, uint32_t b) {
  uint32_t words[3] = {static_cast<uint32_t>(type) | kMmalReplyFlag, a, b};
  PostMessage(VchiqMsgType::kData, words, 3);
}

void Vc4Firmware::RingCpu() {
  ++bell0_pending_;
  clock_->ScheduleIn(lat_->irq_delivery_us, [this] {
    if (bell0_pending_ > 0) {
      irq_->Raise(irq_line_);
    }
  });
}

void Vc4Firmware::HandleMessage(uint32_t msgid, const uint8_t* payload, uint32_t size) {
  VchiqMsgType type = static_cast<VchiqMsgType>(msgid >> kMsgTypeShift);
  switch (type) {
    case VchiqMsgType::kConnect: {
      connected_ = true;
      PostMessage(VchiqMsgType::kConnect, nullptr, 0);
      RingCpu();
      break;
    }
    case VchiqMsgType::kOpen: {
      if (connected_) {
        port_open_ = true;
        PostMessage(VchiqMsgType::kOpenAck, nullptr, 0);
        RingCpu();
      }
      break;
    }
    case VchiqMsgType::kData:
      if (port_open_ && size >= kMmalPayloadBytes) {
        HandleMmal(payload, size);
      }
      break;
    case VchiqMsgType::kBulkRx: {
      if (size < 8 || current_frame_.empty()) {
        uint32_t words[2] = {0, 1};  // status 1: nothing to transmit
        PostMessage(VchiqMsgType::kBulkRxDone, words, 2);
        RingCpu();
        break;
      }
      uint32_t dest = 0;
      uint32_t req = 0;
      std::memcpy(&dest, payload, 4);
      std::memcpy(&req, payload + 4, 4);
      uint32_t actual = static_cast<uint32_t>(current_frame_.size());
      uint32_t n = std::min(req, actual);
      std::vector<uint8_t> frame = std::move(current_frame_);
      current_frame_.clear();
      uint64_t copy_us = lat_->dma_setup_us + (n * lat_->dma_per_kb_us + 1023) / 1024;
      clock_->ScheduleIn(copy_us, [this, dest, n, actual, frame = std::move(frame)] {
        (void)mem_->DmaWrite(dest, frame.data(), n);
        uint32_t words[2] = {actual, 0};
        PostMessage(VchiqMsgType::kBulkRxDone, words, 2);
        RingCpu();
      });
      break;
    }
    case VchiqMsgType::kClose:
      port_open_ = false;
      break;
    default:
      break;
  }
}

void Vc4Firmware::HandleMmal(const uint8_t* payload, uint32_t size) {
  (void)size;
  uint32_t mmal_type = 0;
  uint32_t a = 0;
  uint32_t b = 0;
  std::memcpy(&mmal_type, payload, 4);
  std::memcpy(&a, payload + 4, 4);
  std::memcpy(&b, payload + 8, 4);
  switch (static_cast<MmalMsgType>(mmal_type)) {
    case MmalMsgType::kComponentCreate:
      component_created_ = (a == kMmalCameraComponent);
      PostMmalReply(MmalMsgType::kComponentCreate, component_created_ ? 0 : 1, 0);
      RingCpu();
      break;
    case MmalMsgType::kComponentEnable:
      component_enabled_ = component_created_;
      PostMmalReply(MmalMsgType::kComponentEnable, component_enabled_ ? 0 : 1, 0);
      RingCpu();
      break;
    case MmalMsgType::kPortParamSet: {
      uint32_t status = 1;
      Resolution r{};
      if (a == kMmalParamResolution && LookupResolution(b, &r)) {
        resolution_ = b;
        status = 0;
      }
      PostMmalReply(MmalMsgType::kPortParamSet, status, 0);
      RingCpu();
      break;
    }
    case MmalMsgType::kPortEnable:
      port_enabled_ = component_enabled_;
      PostMmalReply(MmalMsgType::kPortEnable, port_enabled_ ? 0 : 1, 0);
      RingCpu();
      break;
    case MmalMsgType::kCapture: {
      if (!port_enabled_ || resolution_ == 0 || !sensor_connected_) {
        // A disconnected sensor produces no BUFFER_DONE: the waiter times out
        // (the transient-failure class the paper recovers from by reset, §3.3).
        break;
      }
      // Back-to-back captures keep the sensor streaming: subsequent frames cost
      // only the pipeline time. One-shot (wait-per-frame) captures pay the full
      // exposure + ISP path — this asymmetry is what makes the native driver
      // 2.7x faster on 100-frame bursts (paper §7.3.2 Camera).
      uint32_t base_bytes = FrameBytes(720);
      uint32_t bytes = FrameBytes(resolution_);
      uint64_t extra_kb = bytes > base_bytes ? (bytes - base_bytes) / 1024 : 0;
      uint64_t full_frame_us = lat_->cam_frame_base_us + extra_kb * lat_->cam_frame_per_kb_us;
      uint64_t cost;
      if (!camera_inited_) {
        cost = lat_->cam_init_us + full_frame_us;
        camera_inited_ = true;
      } else if (capture_streaming_) {
        cost = lat_->cam_native_pipeline_us + extra_kb * lat_->cam_frame_per_kb_us / 4;
      } else {
        cost = full_frame_us;
      }
      capture_streaming_ = capture_in_flight_;
      capture_in_flight_ = true;
      uint32_t seq = frame_seq_++;
      uint32_t res = resolution_;
      ScheduleFrameDone(cost, seq, res);
      break;
    }
    default:
      PostMmalReply(static_cast<MmalMsgType>(mmal_type), 1, 0);
      RingCpu();
      break;
  }
}

void Vc4Firmware::ScheduleFrameDone(uint64_t cost_us, uint32_t seq, uint32_t res) {
  pending_ = clock_->ScheduleIn(cost_us, [this, seq, res] {
    pending_ = SimClock::kInvalidEvent;
    if (!current_frame_.empty()) {
      // The single frame buffer is still owned by the CPU; retry shortly.
      ScheduleFrameDone(5'000, seq, res);
      return;
    }
    capture_in_flight_ = false;
    current_frame_ = MakeFrame(seq, res);
    ++frames_produced_;
    PostMmalReply(MmalMsgType::kBufferDone, static_cast<uint32_t>(current_frame_.size()), seq);
    RingCpu();
  });
}

void Vc4Firmware::SoftReset() {
  if (pending_ != SimClock::kInvalidEvent) {
    clock_->Cancel(pending_);
    pending_ = SimClock::kInvalidEvent;
  }
  queue_base_ = 0;
  master_tx_ = 0;
  connected_ = false;
  port_open_ = false;
  component_created_ = false;
  component_enabled_ = false;
  port_enabled_ = false;
  camera_inited_ = false;
  capture_in_flight_ = false;
  capture_streaming_ = false;
  resolution_ = 0;
  slave_rx_pos_ = 0;
  bell0_pending_ = 0;
  current_frame_.clear();
  frame_seq_ = 0;
  irq_->Clear(irq_line_);
}

}  // namespace dlt
