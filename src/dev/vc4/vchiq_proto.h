// Wire format of the simulated VCHIQ shared-memory message queue and the
// MMAL-style camera service carried on top of it (paper §6.3: slot-based queue,
// slot 0 metadata updated by both sides, messages of tens of types, doorbell
// registers BELL0/BELL2 for CPU/VC4 signalling).
#ifndef SRC_DEV_VC4_VCHIQ_PROTO_H_
#define SRC_DEV_VC4_VCHIQ_PROTO_H_

#include <cstdint>

namespace dlt {

// Queue geometry: 16 slots of 4 KB. Slot 0 holds metadata; slots 1-7 carry
// CPU->VC4 (slave) messages, slots 8-15 VC4->CPU (master) messages.
inline constexpr uint32_t kVchiqSlotSize = 4096;
inline constexpr uint32_t kVchiqMaxSlots = 16;
inline constexpr uint32_t kVchiqQueueBytes = kVchiqSlotSize * kVchiqMaxSlots;
inline constexpr uint32_t kVchiqSlaveBase = kVchiqSlotSize;       // slots 1..7
inline constexpr uint32_t kVchiqSlaveBytes = 7 * kVchiqSlotSize;
inline constexpr uint32_t kVchiqMasterBase = 8 * kVchiqSlotSize;  // slots 8..15
inline constexpr uint32_t kVchiqMasterBytes = 8 * kVchiqSlotSize;

// Slot-zero metadata offsets.
inline constexpr uint32_t kSzMagic = 0x00;
inline constexpr uint32_t kSzVersion = 0x04;
inline constexpr uint32_t kSzSlotSize = 0x08;
inline constexpr uint32_t kSzMaxSlots = 0x0c;
inline constexpr uint32_t kSzMasterTxPos = 0x10;  // VC4 write cursor (bytes into master region)
inline constexpr uint32_t kSzSlaveTxPos = 0x14;   // CPU write cursor (bytes into slave region)

inline constexpr uint32_t kVchiqMagic = 0x56434851;  // "VCHQ"
inline constexpr uint32_t kVchiqVersion = 8;

// Message header: u32 msgid (type<<24), u32 payload size; payload padded to 8.
inline constexpr uint32_t kMsgHdrBytes = 8;
inline constexpr int kMsgTypeShift = 24;

enum class VchiqMsgType : uint8_t {
  kPadding = 0,
  kConnect = 1,
  kOpen = 2,
  kOpenAck = 3,
  kClose = 4,
  kData = 5,
  kBulkRx = 6,
  kBulkRxDone = 7,
};

// MMAL sub-protocol: DATA payload = {u32 mmal_type, u32 a, u32 b}.
inline constexpr uint32_t kMmalPayloadBytes = 12;

enum class MmalMsgType : uint8_t {
  kComponentCreate = 1,  // a = component id (1 = camera)
  kComponentEnable = 2,
  kPortParamSet = 3,  // a = param id (1 = resolution), b = value
  kPortEnable = 4,
  kCapture = 5,      // a = frame sequence number
  kBufferDone = 6,   // (VC4->CPU) a = img_size, b = sequence
};
inline constexpr uint32_t kMmalReplyFlag = 0x80;
inline constexpr uint32_t kMmalCameraComponent = 1;
inline constexpr uint32_t kMmalParamResolution = 1;

// Mailbox register offsets.
inline constexpr uint64_t kMboxRead = 0x00;
inline constexpr uint64_t kMboxStatus = 0x18;
inline constexpr uint64_t kMboxWrite = 0x20;
inline constexpr uint64_t kBell0 = 0x40;  // VC4 -> CPU doorbell (read to ack)
inline constexpr uint64_t kBell2 = 0x48;  // CPU -> VC4 doorbell (write to ring)

// The queue base handed to VC4 via MBOX_WRITE is 16 KB aligned (paper Table 6:
// MBOX_WRITE = queue & ~0x3fff).
inline constexpr uint32_t kMboxQueueAlignMask = 0x3fff;

}  // namespace dlt

#endif  // SRC_DEV_VC4_VCHIQ_PROTO_H_
