#include "src/dev/cryptoacc/cryptoacc_device.h"

#include <cstring>

namespace dlt {

namespace {

uint32_t ReadRamWord(AddressSpace* mem, PhysAddr a) {
  uint8_t b[4] = {0, 0, 0, 0};
  (void)mem->DmaRead(a, b, 4);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) | (static_cast<uint32_t>(b[3]) << 24);
}

}  // namespace

uint8_t CryptoaccDevice::KeystreamByte(uint32_t key, uint64_t index) {
  uint64_t s = (static_cast<uint64_t>(key) << 32) ^ (index * 0x9e3779b97f4a7c15ull);
  s ^= s >> 29;
  s *= 0xbf58476d1ce4e5b9ull;
  s ^= s >> 32;
  return static_cast<uint8_t>(s);
}

void CryptoaccDevice::DigestBytes(uint32_t key, const uint8_t* data, size_t n,
                                  uint8_t out[kCaDigestBytes]) {
  uint64_t h = 0xcbf29ce484222325ull ^ key;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  uint64_t s = h;
  for (uint32_t i = 0; i < kCaDigestBytes; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    out[i] = static_cast<uint8_t>(s >> 56);
  }
}

uint32_t CryptoaccDevice::MmioRead32(uint64_t offset) {
  switch (offset) {
    case kCaCtrl:
      return ctrl_;
    case kCaStatus:
      return status_;
    case kCaRingBase:
      return ring_base_;
    case kCaRingSize:
      return ring_size_;
    case kCaHead:
      return head_;
    case kCaTail:
      return tail_;
    case kCaKey:
      return key_;
    default:
      return 0;
  }
}

void CryptoaccDevice::MmioWrite32(uint64_t offset, uint32_t value) {
  switch (offset) {
    case kCaCtrl:
      ctrl_ = value;
      UpdateIrq();
      break;
    case kCaStatus:
      status_ &= ~(value & (kCaStatusDone | kCaStatusError));
      UpdateIrq();
      break;
    case kCaRingBase:
      ring_base_ = value;
      break;
    case kCaRingSize:
      ring_size_ = value;
      tail_ = 0;
      head_ = 0;
      break;
    case kCaHead:
      head_ = value;
      if ((ctrl_ & kCaCtrlEnable) != 0 && (status_ & kCaStatusBusy) == 0 && head_ != tail_) {
        Kick();
      }
      break;
    case kCaKey:
      key_ = value;
      break;
    default:
      break;
  }
}

void CryptoaccDevice::Kick() {
  // head/tail are free-running producer/consumer counters; the slot is the
  // counter modulo the ring capacity. The pending window must fit the ring.
  if (ring_size_ == 0 || ring_size_ > kCaMaxRing || head_ - tail_ > ring_size_) {
    status_ |= kCaStatusError;
    UpdateIrq();
    return;
  }
  status_ |= kCaStatusBusy;

  // Walk the pending window once to price the batch; the transforms happen at
  // completion time so mid-flight soft resets drop the job cleanly.
  uint64_t total_bytes = 0;
  bool want_irq = false;
  bool error = false;
  for (uint32_t i = tail_; i != head_; ++i) {
    PhysAddr d = ring_base_ + static_cast<uint64_t>(i % ring_size_) * kCaDescBytes;
    uint32_t dctrl = ReadRamWord(mem_, d);
    uint32_t len = ReadRamWord(mem_, d + 12);
    if ((dctrl & kCaDescValid) == 0 || len == 0) {
      error = true;
      break;
    }
    if ((dctrl & kCaDescIrq) != 0) {
      want_irq = true;
    }
    total_bytes += len;
  }
  uint64_t cost_us =
      lat_->crypto_setup_us + (total_bytes * lat_->crypto_per_kb_us + 1023) / 1024;
  pending_ = clock_->ScheduleIn(cost_us, [this, error, want_irq] { Complete(error, want_irq); });
}

void CryptoaccDevice::Complete(bool error, bool want_irq) {
  pending_ = SimClock::kInvalidEvent;
  if (!error) {
    std::vector<uint8_t> buf;
    for (uint32_t i = tail_; i != head_; ++i) {
      PhysAddr d = ring_base_ + static_cast<uint64_t>(i % ring_size_) * kCaDescBytes;
      uint32_t dctrl = ReadRamWord(mem_, d);
      PhysAddr src = ReadRamWord(mem_, d + 4);
      PhysAddr dst = ReadRamWord(mem_, d + 8);
      uint32_t len = ReadRamWord(mem_, d + 12);
      uint32_t dkey = ReadRamWord(mem_, d + 16);
      uint32_t op = (dctrl >> kCaOpShift) & kCaOpMask;

      buf.resize(len);
      if (!Ok(mem_->DmaRead(src, buf.data(), len))) {
        error = true;
        break;
      }
      if (op == kCaOpEncrypt || op == kCaOpDecrypt) {
        // Involutive XOR keystream: the same transform both ways.
        for (uint32_t b = 0; b < len; ++b) {
          buf[b] ^= KeystreamByte(dkey, b);
        }
        if (!Ok(mem_->DmaWrite(dst, buf.data(), len))) {
          error = true;
          break;
        }
      } else if (op == kCaOpDigest) {
        uint8_t digest[kCaDigestBytes];
        DigestBytes(dkey, buf.data(), len, digest);
        if (!Ok(mem_->DmaWrite(dst, digest, kCaDigestBytes))) {
          error = true;
          break;
        }
      } else {
        error = true;
        break;
      }
      // Clear the valid bit: the engine owns-and-returns each descriptor.
      uint8_t cleared[4];
      uint32_t done_ctrl = dctrl & ~kCaDescValid;
      std::memcpy(cleared, &done_ctrl, 4);
      (void)mem_->DmaWrite(d, cleared, 4);
      ++descriptors_processed_;
    }
  }
  tail_ = head_;
  status_ &= ~kCaStatusBusy;
  status_ |= error ? kCaStatusError : kCaStatusDone;
  if (want_irq || error) {
    UpdateIrq();
  }
}

void CryptoaccDevice::UpdateIrq() {
  if ((ctrl_ & kCaCtrlEnable) != 0 &&
      (status_ & (kCaStatusDone | kCaStatusError)) != 0) {
    irq_->Raise(irq_line_);
  } else {
    irq_->Clear(irq_line_);
  }
}

void CryptoaccDevice::SoftReset() {
  // Drop the in-flight batch and ring configuration; there is no NV state.
  if (pending_ != SimClock::kInvalidEvent) {
    clock_->Cancel(pending_);
    pending_ = SimClock::kInvalidEvent;
  }
  ctrl_ = kCaCtrlEnable;
  status_ = 0;
  ring_base_ = 0;
  ring_size_ = 0;
  head_ = 0;
  tail_ = 0;
  key_ = 0;
  UpdateIrq();
}

}  // namespace dlt
