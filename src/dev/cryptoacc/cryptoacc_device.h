// Crypto accelerator model — the fifth driverlet class (ROADMAP item 1).
// Modeled on the kernel crypto-queue idiom: the driver builds a ring of job
// descriptors in DMA memory, rings a doorbell (producer head register), and
// the engine walks the ring as a bus master, transforming src → dst and
// raising a completion IRQ on descriptors flagged for interrupt. The cipher
// is an involutive XOR keystream so encrypt∘decrypt round-trips exactly, and
// the digest op is a deterministic FNV expansion — both predictable oracles
// for record/replay tests.
#ifndef SRC_DEV_CRYPTOACC_CRYPTOACC_DEVICE_H_
#define SRC_DEV_CRYPTOACC_CRYPTOACC_DEVICE_H_

#include <cstdint>
#include <vector>

#include "src/soc/address_space.h"
#include "src/soc/device.h"
#include "src/soc/irq.h"
#include "src/soc/latency_model.h"
#include "src/soc/sim_clock.h"

namespace dlt {

// Register map (all 32-bit).
inline constexpr uint64_t kCaCtrl = 0x00;      // bit0: enable
inline constexpr uint64_t kCaStatus = 0x04;    // bit0 done (W1C), bit1 error (W1C), bit2 busy
inline constexpr uint64_t kCaRingBase = 0x08;  // physical base of the descriptor ring
inline constexpr uint64_t kCaRingSize = 0x0c;  // ring capacity in descriptors
inline constexpr uint64_t kCaHead = 0x10;      // producer index; writing is the doorbell
inline constexpr uint64_t kCaTail = 0x14;      // consumer index (statistic input)
inline constexpr uint64_t kCaKey = 0x18;       // 32-bit session key word

inline constexpr uint32_t kCaCtrlEnable = 0x1;
inline constexpr uint32_t kCaStatusDone = 0x1;
inline constexpr uint32_t kCaStatusError = 0x2;
inline constexpr uint32_t kCaStatusBusy = 0x4;

// Descriptor layout: 6 words (24 bytes), mirroring a DMA control block.
//   word0 ctrl:  bit0 valid, bit1 irq-on-complete, bits 8..9 op
//   word1 src_ad, word2 dst_ad, word3 len (bytes), word4 key, word5 reserved
inline constexpr uint32_t kCaDescBytes = 24;
inline constexpr uint32_t kCaDescValid = 0x1;
inline constexpr uint32_t kCaDescIrq = 0x2;
inline constexpr uint32_t kCaOpShift = 8;
inline constexpr uint32_t kCaOpMask = 0x3;
inline constexpr uint32_t kCaOpEncrypt = 0;
inline constexpr uint32_t kCaOpDecrypt = 1;
inline constexpr uint32_t kCaOpDigest = 2;

inline constexpr uint32_t kCaDigestBytes = 32;
inline constexpr uint32_t kCaMaxRing = 64;

class CryptoaccDevice : public MmioDevice {
 public:
  CryptoaccDevice(AddressSpace* mem, SimClock* clock, InterruptController* irq,
                  const LatencyModel* lat, int irq_line)
      : mem_(mem), clock_(clock), irq_(irq), lat_(lat), irq_line_(irq_line) {}

  std::string_view name() const override { return "cryptoacc"; }
  uint32_t MmioRead32(uint64_t offset) override;
  void MmioWrite32(uint64_t offset, uint32_t value) override;
  void SoftReset() override;

  int irq_line() const { return irq_line_; }

  uint64_t descriptors_processed() const { return descriptors_processed_; }

  // The XOR keystream byte for (key, index) — exposed so tests can derive
  // expected ciphertext without a device.
  static uint8_t KeystreamByte(uint32_t key, uint64_t index);
  // Deterministic 32-byte digest of (key, data) — the kCaOpDigest oracle.
  static void DigestBytes(uint32_t key, const uint8_t* data, size_t n, uint8_t out[kCaDigestBytes]);

 private:
  void Kick();
  void Complete(bool error, bool want_irq);
  void UpdateIrq();

  AddressSpace* mem_;
  SimClock* clock_;
  InterruptController* irq_;
  const LatencyModel* lat_;
  int irq_line_;

  uint32_t ctrl_ = kCaCtrlEnable;
  uint32_t status_ = 0;
  uint32_t ring_base_ = 0;
  uint32_t ring_size_ = 0;
  uint32_t head_ = 0;
  uint32_t tail_ = 0;
  uint32_t key_ = 0;
  SimClock::EventId pending_ = SimClock::kInvalidEvent;

  uint64_t descriptors_processed_ = 0;
};

}  // namespace dlt

#endif  // SRC_DEV_CRYPTOACC_CRYPTOACC_DEVICE_H_
