#include "src/fault/fault_plan.h"

#include <cstdio>

namespace dlt {

const char* FaultPlaneName(FaultPlane p) {
  switch (p) {
    case FaultPlane::kMmio: return "mmio";
    case FaultPlane::kDma: return "dma";
    case FaultPlane::kIrq: return "irq";
  }
  return "unknown";
}

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kMmioCorruptRead: return "mmio_corrupt_read";
    case FaultKind::kMmioStuckValue: return "mmio_stuck_value";
    case FaultKind::kDmaCorrupt: return "dma_corrupt";
    case FaultKind::kDmaTruncate: return "dma_truncate";
    case FaultKind::kBusCorruptRead: return "bus_corrupt_read";
    case FaultKind::kBusCorruptWrite: return "bus_corrupt_write";
    case FaultKind::kIrqDrop: return "irq_drop";
    case FaultKind::kIrqDelay: return "irq_delay";
    case FaultKind::kIrqSpurious: return "irq_spurious";
    case FaultKind::kKindCount: break;
  }
  return "unknown";
}

FaultPlane KindPlane(FaultKind k) {
  switch (k) {
    case FaultKind::kMmioCorruptRead:
    case FaultKind::kMmioStuckValue:
      return FaultPlane::kMmio;
    case FaultKind::kDmaCorrupt:
    case FaultKind::kDmaTruncate:
    case FaultKind::kBusCorruptRead:
    case FaultKind::kBusCorruptWrite:
      return FaultPlane::kDma;
    case FaultKind::kIrqDrop:
    case FaultKind::kIrqDelay:
    case FaultKind::kIrqSpurious:
    case FaultKind::kKindCount:
      break;
  }
  return FaultPlane::kIrq;
}

std::string FaultPlan::Describe() const {
  std::string out = "seed=" + std::to_string(seed_) + "\n";
  for (const FaultSpec& s : specs_) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-18s dev=%u line=%d prob=%u.%02u%% skip=%llu max=%llu arg=0x%llx\n",
                  FaultKindName(s.kind), s.device, s.irq_line, s.prob_bp / 100,
                  s.prob_bp % 100, static_cast<unsigned long long>(s.skip),
                  static_cast<unsigned long long>(
                      s.max_faults == UINT64_MAX ? 0 : s.max_faults),
                  static_cast<unsigned long long>(s.arg));
    out += line;
  }
  return out;
}

uint64_t FaultRng::Next() {
  // splitmix64 (Steele et al.): full-period, seedable with any value.
  state_ += 0x9e3779b97f4a7c15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool FaultRng::Draw(uint32_t prob_bp) {
  if (prob_bp >= 10000) {
    return true;
  }
  return Next() % 10000 < prob_bp;
}

FaultPlan MakePresetPlan(FaultPlane plane, uint64_t seed, const FaultTargets& targets) {
  FaultPlan plan(seed);
  // Seed-derived variation: where in the run the burst starts and what the
  // corruption payload looks like. A small skip spreads the faults away from
  // the first opportunity so different seeds hit different template events.
  FaultRng vary(seed * 0x9e3779b97f4a7c15ull + 1);
  uint64_t skip = vary.Next() % 24;
  uint64_t mask = (vary.Next() % 0xffff) | 0x1;  // never a zero XOR mask
  switch (plane) {
    case FaultPlane::kMmio: {
      FaultSpec s;
      s.kind = FaultKind::kMmioCorruptRead;
      s.device = targets.device;
      s.prob_bp = 400;  // 4% of register reads while the window is open
      s.skip = skip;
      s.max_faults = 1 + vary.Next() % 3;
      s.arg = mask;
      plan.Add(s);
      break;
    }
    case FaultPlane::kDma: {
      if (targets.dma_via_engine) {
        FaultSpec c;
        c.kind = FaultKind::kDmaCorrupt;
        c.prob_bp = 2500;
        c.skip = skip % 4;
        c.max_faults = 1 + vary.Next() % 2;
        c.arg = mask;
        plan.Add(c);
        FaultSpec t;
        t.kind = FaultKind::kDmaTruncate;
        t.prob_bp = 1500;
        t.skip = 1 + skip % 4;
        t.max_faults = 1;
        plan.Add(t);
      } else {
        FaultSpec r;
        r.kind = FaultKind::kBusCorruptRead;
        r.prob_bp = 500;
        r.skip = skip;
        r.max_faults = 1 + vary.Next() % 2;
        r.arg = mask;
        plan.Add(r);
        FaultSpec w;
        w.kind = FaultKind::kBusCorruptWrite;
        w.prob_bp = 500;
        w.skip = skip / 2;
        w.max_faults = 1;
        w.arg = mask;
        plan.Add(w);
      }
      break;
    }
    case FaultPlane::kIrq: {
      FaultSpec d;
      d.kind = FaultKind::kIrqDrop;
      d.irq_line = targets.irq_line;
      d.prob_bp = 2000;
      d.skip = skip % 8;
      d.max_faults = 1 + vary.Next() % 2;
      plan.Add(d);
      FaultSpec y;
      y.kind = FaultKind::kIrqDelay;
      y.irq_line = targets.irq_line;
      y.prob_bp = 2000;
      y.skip = 1 + skip % 8;
      y.max_faults = 2;
      y.arg = 50 + vary.Next() % 400;  // microseconds, well under wait timeouts
      plan.Add(y);
      break;
    }
  }
  return plan;
}

}  // namespace dlt
