// FaultInjector: arms a seeded FaultPlan against a Machine by interposing at
// the three SoC choke points every driverlet depends on — the AddressSpace
// MMIO windows (register-read corruption via a proxy MmioDevice), the DMA
// engine's control-block execution plus the bus-master copy path (payload
// corruption/truncation), and the interrupt controller's Raise edges
// (drop/delay/spurious). Any bench, test, or workload then runs under a
// reproducible fault schedule without knowing it is being injected.
//
// Soft reset deliberately bypasses the injector: Machine's device registry
// keeps the real device pointer, so the recovery ladder always reaches intact
// hardware (a reset that could itself be faulted would make every plan
// unrecoverable by construction).
//
// One injector per Machine at a time. Counters are deterministic and always
// on; telemetry (counters + kFaultInjected trace instants) is emitted when
// src/obs is armed.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <memory>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/soc/machine.h"

namespace dlt {

class FaultInjector : public IrqFaultHook, public DmaFaultHook, public BusFaultHook {
 public:
  // Both out of line: the proxies_ vector needs the full MmioProxy type.
  explicit FaultInjector(Machine* machine);
  ~FaultInjector() override;  // disarms
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Installs the plan's hooks and proxies; resets the injection counters and
  // the draw stream. MMIO specs must name an explicit, attached device and
  // kIrqSpurious specs an explicit line (kInvalidArg otherwise). Re-arming
  // replaces the previous plan.
  Status Arm(const FaultPlan& plan);

  // Removes every hook/proxy and cancels scheduled spurious/delayed raises.
  // Idempotent; the destructor disarms too.
  void Disarm();
  bool armed() const { return armed_flag_; }

  // Deterministic accounting (independent of telemetry being enabled).
  uint64_t injected_total() const;
  uint64_t injected(FaultKind k) const {
    return injected_[static_cast<size_t>(k)];
  }
  // Matching opportunities inspected (fired or not).
  uint64_t opportunities() const { return opportunities_; }

  // ---- SoC hook implementations (not for direct use) ----
  bool OnRaise(int line) override;
  void OnBlock(uint32_t ti, PhysAddr src, PhysAddr dst, uint8_t* data,
               size_t* len) override;
  void OnDmaRead(PhysAddr a, uint8_t* data, size_t n) override;
  void OnDmaWrite(PhysAddr a, uint8_t* data, size_t n) override;

 private:
  struct ArmedSpec {
    FaultSpec spec;
    uint64_t seen = 0;
    uint64_t fired = 0;
  };
  class MmioProxy;

  // Called by MmioProxy with the value the real device returned.
  uint32_t FilterMmioRead(uint16_t device, uint64_t offset, uint32_t observed);

  bool ShouldFire(ArmedSpec& a);
  void CountFault(FaultKind k, uint16_t device, uint64_t detail);
  void CorruptBytes(uint8_t* data, size_t len, uint64_t mask);

  Machine* machine_;
  FaultRng rng_{0};
  std::vector<ArmedSpec> armed_;
  std::vector<std::unique_ptr<MmioProxy>> proxies_;
  std::vector<SimClock::EventId> scheduled_;
  std::array<uint64_t, static_cast<size_t>(FaultKind::kKindCount)> injected_{};
  uint64_t opportunities_ = 0;
  bool redelivering_ = false;  // injector-originated raises bypass OnRaise
  bool armed_flag_ = false;
  bool hooked_irq_ = false;
  bool hooked_dma_ = false;
  bool hooked_bus_ = false;
};

}  // namespace dlt

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
