#include "src/fault/fault_injector.h"

#include <string>

#include "src/obs/telemetry.h"
#include "src/soc/log.h"

namespace dlt {

// Routes a device's MMIO window through the injector. Writes and soft resets
// pass straight through — the planes model misread status/data, not lost
// commands (a lost command shows up as a dropped IRQ or stuck status anyway).
class FaultInjector::MmioProxy : public MmioDevice {
 public:
  MmioProxy(FaultInjector* inj, MmioDevice* real, uint16_t device_id)
      : inj_(inj), real_(real), device_id_(device_id) {}

  std::string_view name() const override { return real_->name(); }
  uint32_t MmioRead32(uint64_t offset) override {
    return inj_->FilterMmioRead(device_id_, offset, real_->MmioRead32(offset));
  }
  void MmioWrite32(uint64_t offset, uint32_t value) override {
    real_->MmioWrite32(offset, value);
  }
  void SoftReset() override { real_->SoftReset(); }

  MmioDevice* real() const { return real_; }

 private:
  FaultInjector* inj_;
  MmioDevice* real_;
  uint16_t device_id_;
};

FaultInjector::FaultInjector(Machine* machine) : machine_(machine) {}

FaultInjector::~FaultInjector() { Disarm(); }

Status FaultInjector::Arm(const FaultPlan& plan) {
  // Validate before installing anything, so a rejected plan leaves no hooks.
  for (const FaultSpec& s : plan.specs()) {
    switch (s.kind) {
      case FaultKind::kMmioCorruptRead:
      case FaultKind::kMmioStuckValue:
        if (s.device == FaultSpec::kAnyDevice ||
            !machine_->DeviceById(s.device).ok()) {
          return Status::kInvalidArg;  // MMIO faults must name an attached device
        }
        break;
      case FaultKind::kIrqSpurious:
        if (s.irq_line == FaultSpec::kAnyLine) {
          return Status::kInvalidArg;  // a spurious raise needs a concrete line
        }
        break;
      case FaultKind::kKindCount:
        return Status::kInvalidArg;
      default:
        break;
    }
  }
  Disarm();
  rng_ = FaultRng(plan.seed());
  injected_.fill(0);
  opportunities_ = 0;
  armed_.clear();
  for (const FaultSpec& s : plan.specs()) {
    armed_.push_back(ArmedSpec{s, 0, 0});
  }

  bool want_irq = false;
  bool want_dma = false;
  bool want_bus = false;
  for (const ArmedSpec& a : armed_) {
    switch (a.spec.kind) {
      case FaultKind::kMmioCorruptRead:
      case FaultKind::kMmioStuckValue: {
        DLT_ASSIGN_OR_RETURN(Machine::DeviceEntry e,
                             machine_->DeviceById(a.spec.device));
        bool wrapped = false;
        for (const auto& p : proxies_) {
          if (p->real() == e.dev) {
            wrapped = true;  // an earlier spec already interposed this device
          }
        }
        if (!wrapped) {
          auto proxy = std::make_unique<MmioProxy>(this, e.dev, e.id);
          DLT_RETURN_IF_ERROR(machine_->mem().InterposeMmio(e.dev, proxy.get()));
          proxies_.push_back(std::move(proxy));
        }
        break;
      }
      case FaultKind::kDmaCorrupt:
      case FaultKind::kDmaTruncate:
        want_dma = true;
        break;
      case FaultKind::kBusCorruptRead:
      case FaultKind::kBusCorruptWrite:
        want_bus = true;
        break;
      case FaultKind::kIrqDrop:
      case FaultKind::kIrqDelay:
        want_irq = true;
        break;
      case FaultKind::kIrqSpurious: {
        int line = a.spec.irq_line;
        FaultKind kind = a.spec.kind;
        scheduled_.push_back(
            machine_->clock().ScheduleIn(a.spec.at_us, [this, line, kind] {
              redelivering_ = true;
              machine_->irq().Raise(line);
              redelivering_ = false;
              CountFault(kind, 0, static_cast<uint64_t>(line));
            }));
        break;
      }
      case FaultKind::kKindCount:
        return Status::kInvalidArg;
    }
  }
  if (want_irq) {
    machine_->irq().set_fault_hook(this);
    hooked_irq_ = true;
  }
  if (want_dma) {
    machine_->dma().set_fault_hook(this);
    hooked_dma_ = true;
  }
  if (want_bus) {
    machine_->mem().set_bus_fault_hook(this);
    hooked_bus_ = true;
  }
  armed_flag_ = true;
  return Status::kOk;
}

void FaultInjector::Disarm() {
  if (!armed_flag_) {
    return;
  }
  for (SimClock::EventId id : scheduled_) {
    machine_->clock().Cancel(id);  // false for already-fired events; fine
  }
  scheduled_.clear();
  for (auto& p : proxies_) {
    machine_->mem().InterposeMmio(p.get(), p->real());
  }
  proxies_.clear();
  if (hooked_irq_) {
    machine_->irq().set_fault_hook(nullptr);
    hooked_irq_ = false;
  }
  if (hooked_dma_) {
    machine_->dma().set_fault_hook(nullptr);
    hooked_dma_ = false;
  }
  if (hooked_bus_) {
    machine_->mem().set_bus_fault_hook(nullptr);
    hooked_bus_ = false;
  }
  armed_.clear();
  armed_flag_ = false;
}

uint64_t FaultInjector::injected_total() const {
  uint64_t total = 0;
  for (uint64_t n : injected_) {
    total += n;
  }
  return total;
}

bool FaultInjector::ShouldFire(ArmedSpec& a) {
  ++opportunities_;
  ++a.seen;
  if (a.seen <= a.spec.skip) {
    return false;
  }
  if (a.fired >= a.spec.max_faults) {
    return false;
  }
  if (!rng_.Draw(a.spec.prob_bp)) {
    return false;
  }
  ++a.fired;
  return true;
}

void FaultInjector::CountFault(FaultKind k, uint16_t device, uint64_t detail) {
  ++injected_[static_cast<size_t>(k)];
  Telemetry& t = Telemetry::Get();
  if (t.enabled()) {
    t.metrics().counter("fault.injected").Inc();
    t.metrics().counter(std::string("fault.injected.") + FaultKindName(k)).Inc();
    t.Instant(TraceKind::kFaultInjected, machine_->clock().now_us(),
              FaultKindName(k), detail, 0, device);
  }
}

void FaultInjector::CorruptBytes(uint8_t* data, size_t len, uint64_t mask) {
  if (len == 0) {
    return;
  }
  size_t pos = rng_.Next() % len;
  uint8_t flip = static_cast<uint8_t>(mask != 0 ? mask : 0xff);
  data[pos] ^= flip;
  // Burst corruption: also flip the neighbouring byte when there is one, so a
  // 16-bit field straddling |pos| cannot alias back to its original value.
  if (pos + 1 < len) {
    data[pos + 1] ^= static_cast<uint8_t>(mask >> 8 != 0 ? mask >> 8 : 0x55);
  }
}

uint32_t FaultInjector::FilterMmioRead(uint16_t device, uint64_t offset,
                                       uint32_t observed) {
  uint32_t v = observed;
  for (ArmedSpec& a : armed_) {
    if (a.spec.kind != FaultKind::kMmioCorruptRead &&
        a.spec.kind != FaultKind::kMmioStuckValue) {
      continue;
    }
    if (a.spec.device != device) {
      continue;
    }
    if (a.spec.reg_off != FaultSpec::kAnyReg && a.spec.reg_off != offset) {
      continue;
    }
    if (!ShouldFire(a)) {
      continue;
    }
    if (a.spec.kind == FaultKind::kMmioCorruptRead) {
      v ^= static_cast<uint32_t>(a.spec.arg != 0 ? a.spec.arg : 1);
    } else {
      v = static_cast<uint32_t>(a.spec.arg);
    }
    CountFault(a.spec.kind, device, offset);
  }
  return v;
}

bool FaultInjector::OnRaise(int line) {
  if (redelivering_) {
    return true;  // our own delayed/spurious raise: deliver unfiltered
  }
  for (ArmedSpec& a : armed_) {
    if (a.spec.kind != FaultKind::kIrqDrop && a.spec.kind != FaultKind::kIrqDelay) {
      continue;
    }
    if (a.spec.irq_line != FaultSpec::kAnyLine && a.spec.irq_line != line) {
      continue;
    }
    if (!ShouldFire(a)) {
      continue;
    }
    CountFault(a.spec.kind, 0, static_cast<uint64_t>(line));
    if (a.spec.kind == FaultKind::kIrqDrop) {
      return false;
    }
    uint64_t delay = a.spec.arg != 0 ? a.spec.arg : 100;
    scheduled_.push_back(machine_->clock().ScheduleIn(delay, [this, line] {
      redelivering_ = true;
      machine_->irq().Raise(line);
      redelivering_ = false;
    }));
    return false;  // suppressed now, re-raised |delay| later
  }
  return true;
}

void FaultInjector::OnBlock(uint32_t ti, PhysAddr src, PhysAddr dst, uint8_t* data,
                            size_t* len) {
  (void)ti;
  (void)src;
  for (ArmedSpec& a : armed_) {
    if (a.spec.kind == FaultKind::kDmaCorrupt) {
      if (!ShouldFire(a)) {
        continue;
      }
      CorruptBytes(data, *len, a.spec.arg);
      CountFault(a.spec.kind, 0, dst);
    } else if (a.spec.kind == FaultKind::kDmaTruncate) {
      if (!ShouldFire(a)) {
        continue;
      }
      *len /= 2;
      CountFault(a.spec.kind, 0, dst);
    }
  }
}

void FaultInjector::OnDmaRead(PhysAddr a, uint8_t* data, size_t n) {
  for (ArmedSpec& s : armed_) {
    if (s.spec.kind != FaultKind::kBusCorruptRead) {
      continue;
    }
    if (s.spec.addr_size != 0 &&
        !(a >= s.spec.addr && a + n <= s.spec.addr + s.spec.addr_size)) {
      continue;
    }
    if (!ShouldFire(s)) {
      continue;
    }
    CorruptBytes(data, n, s.spec.arg);
    CountFault(s.spec.kind, 0, a);
  }
}

void FaultInjector::OnDmaWrite(PhysAddr a, uint8_t* data, size_t n) {
  for (ArmedSpec& s : armed_) {
    if (s.spec.kind != FaultKind::kBusCorruptWrite) {
      continue;
    }
    if (s.spec.addr_size != 0 &&
        !(a >= s.spec.addr && a + n <= s.spec.addr + s.spec.addr_size)) {
      continue;
    }
    if (!ShouldFire(s)) {
      continue;
    }
    CorruptBytes(data, n, s.spec.arg);
    CountFault(s.spec.kind, 0, a);
  }
}

}  // namespace dlt
