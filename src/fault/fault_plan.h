// Seeded fault plans for the SoC-level fault-injection plane. A FaultPlan is a
// deterministic schedule of fault sources across the three IO planes the
// replayer depends on — MMIO register reads, DMA payload movement, and
// interrupt delivery. Same seed + same workload ⇒ the same faults fire at the
// same virtual times, so every campaign cell is exactly reproducible
// (docs/fault_injection.md). The plan is pure data; src/fault's FaultInjector
// arms it against a Machine.
#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/soc/types.h"

namespace dlt {

enum class FaultPlane : uint8_t {
  kMmio = 0,  // corrupted / stuck register reads
  kDma,       // corrupted or truncated payload transfers
  kIrq,       // dropped / delayed / spurious interrupt lines
};
const char* FaultPlaneName(FaultPlane p);

enum class FaultKind : uint8_t {
  // MMIO plane (CPU register reads through the interposed window).
  kMmioCorruptRead = 0,  // observed value XOR |arg|
  kMmioStuckValue,       // observed value forced to |arg| (stuck-busy status)
  // DMA plane.
  kDmaCorrupt,           // flip a byte in a DmaEngine control-block payload
  kDmaTruncate,          // halve the delivered length of a control block
  kBusCorruptRead,       // corrupt a bus-master read (dwc2/vc4 direct DMA)
  kBusCorruptWrite,      // corrupt RAM just written by a bus master
  // IRQ plane.
  kIrqDrop,              // suppress a Raise edge
  kIrqDelay,             // deliver a Raise edge |arg| microseconds late
  kIrqSpurious,          // assert |irq_line| unprompted, |at_us| after Arm()
  kKindCount,            // sentinel
};
const char* FaultKindName(FaultKind k);
FaultPlane KindPlane(FaultKind k);

// One fault source. Whether a matching opportunity fires is decided by the
// skip/max_faults window plus a draw from the plan's seeded stream — never by
// wall clock — so injection is a deterministic function of (plan, workload).
struct FaultSpec {
  static constexpr uint16_t kAnyDevice = 0xffff;
  static constexpr int kAnyLine = -1;
  static constexpr uint64_t kAnyReg = UINT64_MAX;

  FaultKind kind = FaultKind::kMmioCorruptRead;
  // Match filters. MMIO kinds require an explicit device; the rest default to
  // matching every opportunity on their plane.
  uint16_t device = kAnyDevice;  // MMIO target (Machine device id)
  int irq_line = kAnyLine;       // IRQ kinds (kIrqSpurious requires a line)
  uint64_t reg_off = kAnyReg;    // MMIO register-offset filter
  PhysAddr addr = 0;             // bus-master window base (size 0 = any address)
  uint64_t addr_size = 0;
  // Trigger policy.
  uint32_t prob_bp = 10000;          // basis points; 10000 = every opportunity
  uint64_t skip = 0;                 // ignore the first |skip| matching opportunities
  uint64_t max_faults = UINT64_MAX;  // stop injecting after this many
  uint64_t arg = 0;                  // kind-specific: XOR mask / stuck value / delay us
  uint64_t at_us = 0;                // kIrqSpurious: fire this long after Arm()
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(uint64_t seed) : seed_(seed) {}

  uint64_t seed() const { return seed_; }
  void set_seed(uint64_t s) { seed_ = s; }

  FaultPlan& Add(const FaultSpec& spec) {
    specs_.push_back(spec);
    return *this;
  }
  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }

  // One line per spec, for logs and the campaign table.
  std::string Describe() const;

 private:
  uint64_t seed_ = 1;
  std::vector<FaultSpec> specs_;
};

// Deterministic splitmix64 stream used for fault draws.
class FaultRng {
 public:
  explicit FaultRng(uint64_t seed) : state_(seed) {}
  uint64_t Next();
  bool Draw(uint32_t prob_bp);  // true with probability prob_bp / 10000

 private:
  uint64_t state_;
};

// What a preset plan aims at: the driverlet's primary MMIO device, its
// completion line(s), and whether its payload moves through the system DMA
// engine (MMC) or by direct bus mastering (dwc2 USB, vc4 camera).
struct FaultTargets {
  uint16_t device = FaultSpec::kAnyDevice;
  int irq_line = FaultSpec::kAnyLine;  // kAnyLine = fault every line
  bool dma_via_engine = true;
};

// The per-plane plans the fault-matrix campaign sweeps: a bounded burst of
// faults (seed-varied trigger points and payloads) that a healthy recovery
// ladder should ride out.
FaultPlan MakePresetPlan(FaultPlane plane, uint64_t seed, const FaultTargets& targets);

}  // namespace dlt

#endif  // SRC_FAULT_FAULT_PLAN_H_
