// Interfaces implemented by simulated IO devices.
#ifndef SRC_SOC_DEVICE_H_
#define SRC_SOC_DEVICE_H_

#include <cstdint>
#include <string_view>

#include "src/soc/types.h"

namespace dlt {

// A device with a 32-bit MMIO register window. Offsets are relative to the
// device's mapped base and 4-byte aligned.
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;

  virtual std::string_view name() const = 0;
  virtual uint32_t MmioRead32(uint64_t offset) = 0;
  virtual void MmioWrite32(uint64_t offset, uint32_t value) = 0;

  // Returns the device to a clean-slate state "as if it just finished
  // initialization in the boot up process" (paper §5, Resetting device states).
  // In-flight jobs are dropped; persistent media content is preserved.
  virtual void SoftReset() = 0;
};

// A peripheral data port that a DMA engine can pace against (DREQ). The bcm2835
// system DMA moves MMC block data by addressing the controller's data FIFO.
class DmaDataPort {
 public:
  virtual ~DmaDataPort() = default;
  // Device -> memory. Returns bytes produced (may be < n if the FIFO underruns).
  virtual size_t DmaPull(void* dst, size_t n) = 0;
  // Memory -> device. Returns bytes consumed.
  virtual size_t DmaPush(const void* src, size_t n) = 0;
};

}  // namespace dlt

#endif  // SRC_SOC_DEVICE_H_
