// Status codes and a small Result<T> — the error-handling idiom used across the
// library (no exceptions across library boundaries).
#ifndef SRC_SOC_STATUS_H_
#define SRC_SOC_STATUS_H_

#include <cassert>
#include <optional>
#include <utility>

namespace dlt {

enum class Status : int {
  kOk = 0,
  kTimeout,           // wait_for_irq / poll deadline exceeded
  kDiverged,          // replay observed a state-changing event mismatching the recording
  kInvalidArg,
  kNotFound,
  kNoTemplate,        // no interaction template covers the requested input (paper §5)
  kPermissionDenied,  // TZASC world check failed
  kIoError,           // device-reported error (CRC, sense, ...)
  kBadState,
  kOutOfRange,
  kCorrupt,           // package signature / framing mismatch
  kUnsupported,
  kNoMemory,
  kAborted,           // gave up after bounded divergence retries
  kBusy,              // service backpressure: session table or request queue full
  kQuarantined,       // session quarantined after repeated device-health failures
};

inline const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kTimeout: return "timeout";
    case Status::kDiverged: return "diverged";
    case Status::kInvalidArg: return "invalid-arg";
    case Status::kNotFound: return "not-found";
    case Status::kNoTemplate: return "no-template";
    case Status::kPermissionDenied: return "permission-denied";
    case Status::kIoError: return "io-error";
    case Status::kBadState: return "bad-state";
    case Status::kOutOfRange: return "out-of-range";
    case Status::kCorrupt: return "corrupt";
    case Status::kUnsupported: return "unsupported";
    case Status::kNoMemory: return "no-memory";
    case Status::kAborted: return "aborted";
    case Status::kBusy: return "busy";
    case Status::kQuarantined: return "quarantined";
  }
  return "unknown";
}

inline bool Ok(Status s) { return s == Status::kOk; }

// A value-or-status holder, in the spirit of zx::result.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors zx::result ergonomics.
  Result(Status s) : status_(s) { assert(s != Status::kOk); }
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : status_(Status::kOk), value_(std::move(value)) {}

  bool ok() const { return status_ == Status::kOk; }
  Status status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate-on-error helpers.
#define DLT_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::dlt::Status dlt_status_ = (expr);      \
    if (dlt_status_ != ::dlt::Status::kOk) { \
      return dlt_status_;                    \
    }                                        \
  } while (0)

#define DLT_CONCAT_INNER(a, b) a##b
#define DLT_CONCAT(a, b) DLT_CONCAT_INNER(a, b)

#define DLT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) {                                \
    return tmp.status();                          \
  }                                               \
  lhs = std::move(tmp.value())

#define DLT_ASSIGN_OR_RETURN(lhs, expr) \
  DLT_ASSIGN_OR_RETURN_IMPL(DLT_CONCAT(dlt_result_, __LINE__), lhs, expr)

}  // namespace dlt

#endif  // SRC_SOC_STATUS_H_
