// The SoC physical address space: RAM windows plus MMIO regions routed to devices.
// CPU accesses carry a World and are checked against the TZASC; bus-master (device
// DMA) accesses use RamPtr/DmaRead/DmaWrite and bypass world checks, matching the
// paper's model where whole device instances are assigned to the TEE.
#ifndef SRC_SOC_ADDRESS_SPACE_H_
#define SRC_SOC_ADDRESS_SPACE_H_

#include <cstring>
#include <memory>
#include <vector>

#include "src/soc/device.h"
#include "src/soc/status.h"
#include "src/soc/tzasc.h"
#include "src/soc/types.h"

namespace dlt {

class SimClock;

// Fault-injection hook over bus-master RAM accesses (src/fault's
// FaultInjector). OnDmaRead runs after the copy with the bytes the device is
// about to consume (corrupting them models a misread on the bus); OnDmaWrite
// runs after the copy with a pointer into backing RAM (corrupting it models a
// bad write landing in memory). Covers devices that master the bus directly
// (dwc2, vc4) — the system DMA engine has its own DmaFaultHook.
class BusFaultHook {
 public:
  virtual ~BusFaultHook() = default;
  virtual void OnDmaRead(PhysAddr a, uint8_t* data, size_t n) = 0;
  virtual void OnDmaWrite(PhysAddr a, uint8_t* data, size_t n) = 0;
};

class AddressSpace {
 private:
  struct RamWindow {
    PhysAddr base;
    uint64_t size;
    std::unique_ptr<uint8_t[]> bytes;
  };
  struct MmioWindow {
    PhysAddr base;
    uint64_t size;
    MmioDevice* dev;
  };

 public:
  explicit AddressSpace(Tzasc* tzasc) : tzasc_(tzasc) {}
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Optional: telemetry MMIO counters cache pointers on first use; the clock
  // is unused today but keeps the binding symmetric with InterruptController.
  void BindClock(const SimClock* clock) { clock_ = clock; }

  Status AddRam(PhysAddr base, uint64_t size);
  Status MapMmio(PhysAddr base, uint64_t size, MmioDevice* dev);

  // Fault injection: reroutes the MMIO window currently routed to |from| so it
  // routes to |to| instead (a proxy device wrapping |from|). kNotFound when no
  // window routes to |from|. Machine's device registry is untouched, so
  // SoftResetDevice still reaches the real device; calling again with the
  // arguments swapped restores the original routing.
  Status InterposeMmio(MmioDevice* from, MmioDevice* to);

  // Fault injection: nullptr uninstalls.
  void set_bus_fault_hook(BusFaultHook* hook) { bus_fault_hook_ = hook; }

  // CPU accesses (TZASC-checked). MMIO accesses must be 32-bit and aligned.
  Result<uint32_t> Read32(World w, PhysAddr a);
  Status Write32(World w, PhysAddr a, uint32_t v);
  Status ReadBytes(World w, PhysAddr a, void* dst, size_t n);
  Status WriteBytes(World w, PhysAddr a, const void* src, size_t n);

  // Bus-master access to RAM. Returns nullptr when [a, a+size) is not fully
  // RAM-backed. The returned pointer stays valid for the AddressSpace lifetime.
  uint8_t* RamPtr(PhysAddr a, uint64_t size);

  // Bus-master byte copies (used by the DMA engine). Fail on non-RAM targets.
  Status DmaRead(PhysAddr a, void* dst, size_t n);
  Status DmaWrite(PhysAddr a, const void* src, size_t n);

  // Returns the device mapped at |a| (if any) and its register offset.
  MmioDevice* DeviceAt(PhysAddr a, uint64_t* offset_out) const;

  // Resolve-once handle for repeated CPU accesses to one MMIO register (PIO
  // block transfers): the TZASC check, window walk and alignment check happen
  // once in MmioAt; each Read/Write still counts as a full MMIO access and is
  // routed through the window's current device, so fault-injection proxies
  // interposed on the window keep seeing every word.
  class MmioCursor {
   public:
    uint32_t Read();
    void Write(uint32_t v);

   private:
    friend class AddressSpace;
    MmioCursor(AddressSpace* owner, MmioWindow* win, uint64_t off)
        : owner_(owner), win_(win), off_(off) {}
    AddressSpace* owner_;
    MmioWindow* win_;
    uint64_t off_;
  };

  // kPermissionDenied on a TZASC refusal, kInvalidArg on misalignment,
  // kOutOfRange when no MMIO window covers |a|. The cursor borrows the window
  // slot; it must not outlive the AddressSpace or span MapMmio calls.
  Result<MmioCursor> MmioAt(World w, PhysAddr a);

  uint64_t mmio_access_count() const { return mmio_accesses_; }
  Tzasc* tzasc() const { return tzasc_; }

 private:
  RamWindow* RamAt(PhysAddr a, uint64_t size);
  bool Overlaps(PhysAddr base, uint64_t size) const;

  Tzasc* tzasc_;
  const SimClock* clock_ = nullptr;
  std::vector<RamWindow> ram_;
  std::vector<MmioWindow> mmio_;
  uint64_t mmio_accesses_ = 0;
  BusFaultHook* bus_fault_hook_ = nullptr;
};

}  // namespace dlt

#endif  // SRC_SOC_ADDRESS_SPACE_H_
