// Level-triggered interrupt controller. Devices Raise() a line; drivers clear the
// source in the device, then the device (or the driver via the controller) lowers it.
#ifndef SRC_SOC_IRQ_H_
#define SRC_SOC_IRQ_H_

#include <array>
#include <cstdint>

namespace dlt {

class SimClock;

// Fault-injection hook over Raise() edges (src/fault's FaultInjector). OnRaise
// runs before the line is asserted; returning false suppresses the edge — the
// injector either drops it outright or re-raises the line itself later (a
// delayed delivery). At most one hook is installed per controller.
class IrqFaultHook {
 public:
  virtual ~IrqFaultHook() = default;
  virtual bool OnRaise(int line) = 0;
};

class InterruptController {
 public:
  static constexpr int kMaxLines = 96;

  // Optional: lets Raise() stamp telemetry trace events with virtual time.
  // Machine binds its clock at assembly; a controller without a clock still
  // counts raises but emits no trace events.
  void BindClock(const SimClock* clock) { clock_ = clock; }

  // Fault injection: nullptr uninstalls.
  void set_fault_hook(IrqFaultHook* hook) { fault_hook_ = hook; }

  void Raise(int line);
  void Clear(int line);
  bool Pending(int line) const;
  bool AnyPending() const { return pending_mask_ != 0 || pending_hi_ != 0; }

  // Lifetime statistics: how many distinct Raise() edges a line has seen. The camera
  // benchmarks use this to quantify IRQ coalescing (native) vs per-event IRQs (replay).
  uint64_t raise_count(int line) const;

  void Reset();

 private:
  bool ValidLine(int line) const { return line >= 0 && line < kMaxLines; }

  uint64_t pending_mask_ = 0;  // lines 0..63
  uint32_t pending_hi_ = 0;    // lines 64..95
  std::array<uint64_t, kMaxLines> raise_counts_{};
  const SimClock* clock_ = nullptr;
  IrqFaultHook* fault_hook_ = nullptr;
};

}  // namespace dlt

#endif  // SRC_SOC_IRQ_H_
