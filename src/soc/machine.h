// Board assembly: clock + interrupt controller + TZASC + address space + system DMA
// engine + a registry of attached devices. Mirrors the paper's RPi3 test platform
// (Table 2) at the level of detail drivers and driverlets can observe.
#ifndef SRC_SOC_MACHINE_H_
#define SRC_SOC_MACHINE_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/soc/address_space.h"
#include "src/soc/dma_engine.h"
#include "src/soc/irq.h"
#include "src/soc/latency_model.h"
#include "src/soc/sim_clock.h"
#include "src/soc/status.h"
#include "src/soc/tzasc.h"

namespace dlt {

// Fixed board memory map (bcm2837-flavoured).
inline constexpr PhysAddr kRamBase = 0x0000'0000;
inline constexpr uint64_t kRamSize = 64ull << 20;  // 64 MB of simulated DRAM
inline constexpr PhysAddr kDmaEngineBase = 0x3F00'7000;
inline constexpr uint64_t kDmaEngineSize = 0x1000;
inline constexpr int kDmaIrqBase = 16;
inline constexpr PhysAddr kMailboxBase = 0x3F00'B800;
inline constexpr uint64_t kMailboxSize = 0x100;
inline constexpr int kMailboxIrq = 2;
inline constexpr PhysAddr kMmcBase = 0x3F20'2000;
inline constexpr uint64_t kMmcSize = 0x100;
inline constexpr int kMmcIrq = 56;
inline constexpr PhysAddr kUsbBase = 0x3F98'0000;
inline constexpr uint64_t kUsbSize = 0x1'0000;
inline constexpr int kUsbIrq = 9;
inline constexpr PhysAddr kDisplayBase = 0x3F40'0000;
inline constexpr uint64_t kDisplaySize = 0x100;
inline constexpr int kDisplayIrq = 40;
inline constexpr PhysAddr kTouchBase = 0x3F41'0000;
inline constexpr uint64_t kTouchSize = 0x100;
inline constexpr int kTouchIrq = 41;
inline constexpr PhysAddr kUartBase = 0x3F20'1000;
inline constexpr uint64_t kUartSize = 0x100;
inline constexpr int kUartIrq = 57;
inline constexpr PhysAddr kFtpmBase = 0x3F50'0000;
inline constexpr uint64_t kFtpmSize = 0x100;
inline constexpr int kFtpmIrq = 42;
inline constexpr PhysAddr kCryptoBase = 0x3F51'0000;
inline constexpr uint64_t kCryptoSize = 0x100;
inline constexpr int kCryptoIrq = 43;

class Machine {
 public:
  Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  SimClock& clock() { return clock_; }
  InterruptController& irq() { return irq_; }
  Tzasc& tzasc() { return tzasc_; }
  AddressSpace& mem() { return mem_; }
  DmaEngine& dma() { return *dma_; }
  LatencyModel& latency() { return latency_; }
  const LatencyModel& latency() const { return latency_; }

  struct DeviceEntry {
    uint16_t id;
    PhysAddr base;
    uint64_t size;
    MmioDevice* dev;
  };

  // Maps |dev| at [base, base+size) and registers it under a stable numeric id
  // used by interaction templates to name register interfaces.
  Result<uint16_t> AttachDevice(PhysAddr base, uint64_t size, MmioDevice* dev);

  const std::vector<DeviceEntry>& devices() const { return devices_; }
  Result<DeviceEntry> DeviceById(uint16_t id) const;
  Result<DeviceEntry> DeviceByName(std::string_view name) const;

  // Assigns a device's MMIO window (and optionally extra RAM) to the secure world.
  Status AssignToSecureWorld(uint16_t device_id);

 private:
  SimClock clock_;
  InterruptController irq_;
  Tzasc tzasc_;
  AddressSpace mem_;
  LatencyModel latency_;
  std::unique_ptr<DmaEngine> dma_;
  std::vector<DeviceEntry> devices_;
};

}  // namespace dlt

#endif  // SRC_SOC_MACHINE_H_
