#include "src/soc/address_space.h"

#include "src/obs/telemetry.h"
#include "src/soc/log.h"

namespace dlt {

namespace {
// Cached once: registrations are permanent, so the pointers never dangle.
void CountMmio(bool write) {
  Telemetry& t = Telemetry::Get();
  static Counter* reads = &t.metrics().counter("mmio.reads");
  static Counter* writes = &t.metrics().counter("mmio.writes");
  (write ? writes : reads)->Inc();
}
}  // namespace

bool AddressSpace::Overlaps(PhysAddr base, uint64_t size) const {
  auto hit = [&](PhysAddr b, uint64_t s) { return base < b + s && b < base + size; };
  for (const auto& w : ram_) {
    if (hit(w.base, w.size)) {
      return true;
    }
  }
  for (const auto& w : mmio_) {
    if (hit(w.base, w.size)) {
      return true;
    }
  }
  return false;
}

Status AddressSpace::AddRam(PhysAddr base, uint64_t size) {
  if (size == 0 || Overlaps(base, size)) {
    return Status::kInvalidArg;
  }
  RamWindow w;
  w.base = base;
  w.size = size;
  w.bytes = std::make_unique<uint8_t[]>(size);
  std::memset(w.bytes.get(), 0, size);
  ram_.push_back(std::move(w));
  return Status::kOk;
}

Status AddressSpace::MapMmio(PhysAddr base, uint64_t size, MmioDevice* dev) {
  if (size == 0 || dev == nullptr || Overlaps(base, size)) {
    return Status::kInvalidArg;
  }
  mmio_.push_back(MmioWindow{base, size, dev});
  return Status::kOk;
}

Status AddressSpace::InterposeMmio(MmioDevice* from, MmioDevice* to) {
  if (from == nullptr || to == nullptr) {
    return Status::kInvalidArg;
  }
  for (auto& w : mmio_) {
    if (w.dev == from) {
      w.dev = to;
      return Status::kOk;
    }
  }
  return Status::kNotFound;
}

AddressSpace::RamWindow* AddressSpace::RamAt(PhysAddr a, uint64_t size) {
  for (auto& w : ram_) {
    if (a >= w.base && a + size <= w.base + w.size) {
      return &w;
    }
  }
  return nullptr;
}

uint32_t AddressSpace::MmioCursor::Read() {
  ++owner_->mmio_accesses_;
  if (Telemetry::Get().enabled()) {
    CountMmio(/*write=*/false);
  }
  return win_->dev->MmioRead32(off_);
}

void AddressSpace::MmioCursor::Write(uint32_t v) {
  ++owner_->mmio_accesses_;
  if (Telemetry::Get().enabled()) {
    CountMmio(/*write=*/true);
  }
  win_->dev->MmioWrite32(off_, v);
}

Result<AddressSpace::MmioCursor> AddressSpace::MmioAt(World w, PhysAddr a) {
  if (tzasc_ != nullptr && !tzasc_->Allows(w, a)) {
    return Status::kPermissionDenied;
  }
  for (auto& win : mmio_) {
    if (a >= win.base && a < win.base + win.size) {
      if ((a & 3) != 0) {
        return Status::kInvalidArg;
      }
      return MmioCursor(this, &win, a - win.base);
    }
  }
  return Status::kOutOfRange;
}

MmioDevice* AddressSpace::DeviceAt(PhysAddr a, uint64_t* offset_out) const {
  for (const auto& w : mmio_) {
    if (a >= w.base && a < w.base + w.size) {
      if (offset_out != nullptr) {
        *offset_out = a - w.base;
      }
      return w.dev;
    }
  }
  return nullptr;
}

Result<uint32_t> AddressSpace::Read32(World w, PhysAddr a) {
  if (tzasc_ != nullptr && !tzasc_->Allows(w, a)) {
    return Status::kPermissionDenied;
  }
  uint64_t off = 0;
  if (MmioDevice* dev = DeviceAt(a, &off); dev != nullptr) {
    if ((a & 3) != 0) {
      return Status::kInvalidArg;
    }
    ++mmio_accesses_;
    if (Telemetry::Get().enabled()) {
      CountMmio(/*write=*/false);
    }
    return dev->MmioRead32(off);
  }
  if (RamWindow* ram = RamAt(a, 4); ram != nullptr) {
    uint32_t v = 0;
    std::memcpy(&v, ram->bytes.get() + (a - ram->base), 4);
    return v;
  }
  return Status::kOutOfRange;
}

Status AddressSpace::Write32(World w, PhysAddr a, uint32_t v) {
  if (tzasc_ != nullptr && !tzasc_->Allows(w, a)) {
    return Status::kPermissionDenied;
  }
  uint64_t off = 0;
  if (MmioDevice* dev = DeviceAt(a, &off); dev != nullptr) {
    if ((a & 3) != 0) {
      return Status::kInvalidArg;
    }
    ++mmio_accesses_;
    if (Telemetry::Get().enabled()) {
      CountMmio(/*write=*/true);
    }
    dev->MmioWrite32(off, v);
    return Status::kOk;
  }
  if (RamWindow* ram = RamAt(a, 4); ram != nullptr) {
    std::memcpy(ram->bytes.get() + (a - ram->base), &v, 4);
    return Status::kOk;
  }
  return Status::kOutOfRange;
}

Status AddressSpace::ReadBytes(World w, PhysAddr a, void* dst, size_t n) {
  if (tzasc_ != nullptr && !(tzasc_->Allows(w, a) && tzasc_->Allows(w, a + n - 1))) {
    return Status::kPermissionDenied;
  }
  if (RamWindow* ram = RamAt(a, n); ram != nullptr) {
    std::memcpy(dst, ram->bytes.get() + (a - ram->base), n);
    return Status::kOk;
  }
  return Status::kOutOfRange;
}

Status AddressSpace::WriteBytes(World w, PhysAddr a, const void* src, size_t n) {
  if (tzasc_ != nullptr && !(tzasc_->Allows(w, a) && tzasc_->Allows(w, a + n - 1))) {
    return Status::kPermissionDenied;
  }
  if (RamWindow* ram = RamAt(a, n); ram != nullptr) {
    std::memcpy(ram->bytes.get() + (a - ram->base), src, n);
    return Status::kOk;
  }
  return Status::kOutOfRange;
}

uint8_t* AddressSpace::RamPtr(PhysAddr a, uint64_t size) {
  RamWindow* ram = RamAt(a, size);
  if (ram == nullptr) {
    return nullptr;
  }
  return ram->bytes.get() + (a - ram->base);
}

Status AddressSpace::DmaRead(PhysAddr a, void* dst, size_t n) {
  if (RamWindow* ram = RamAt(a, n); ram != nullptr) {
    std::memcpy(dst, ram->bytes.get() + (a - ram->base), n);
    if (bus_fault_hook_ != nullptr) {
      bus_fault_hook_->OnDmaRead(a, static_cast<uint8_t*>(dst), n);
    }
    return Status::kOk;
  }
  return Status::kOutOfRange;
}

Status AddressSpace::DmaWrite(PhysAddr a, const void* src, size_t n) {
  if (RamWindow* ram = RamAt(a, n); ram != nullptr) {
    uint8_t* dst = ram->bytes.get() + (a - ram->base);
    std::memcpy(dst, src, n);
    if (bus_fault_hook_ != nullptr) {
      bus_fault_hook_->OnDmaWrite(a, dst, n);
    }
    return Status::kOk;
  }
  return Status::kOutOfRange;
}

}  // namespace dlt
