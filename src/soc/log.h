// Minimal leveled logging. Quiet by default so tests/benches stay readable;
// raise the level for debugging replays and device FSM traces.
#ifndef SRC_SOC_LOG_H_
#define SRC_SOC_LOG_H_

#include <cstdio>
#include <sstream>
#include <string>

namespace dlt {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kTrace = 3,
};

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace log_internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define DLT_LOG(level)                                \
  if (static_cast<int>(::dlt::LogLevel::level) <=     \
      static_cast<int>(::dlt::GetLogLevel()))         \
  ::dlt::log_internal::LogLine(::dlt::LogLevel::level, __FILE__, __LINE__)

}  // namespace dlt

#endif  // SRC_SOC_LOG_H_
