#include "src/soc/tzasc.h"

namespace dlt {

void Tzasc::AssignRegion(PhysAddr base, uint64_t size, World owner) {
  regions_.push_back(Region{base, size, owner});
}

World Tzasc::OwnerOf(PhysAddr addr) const {
  // Scan back-to-front so later assignments override earlier ones.
  for (auto it = regions_.rbegin(); it != regions_.rend(); ++it) {
    if (addr >= it->base && addr < it->base + it->size) {
      return it->owner;
    }
  }
  return World::kNormal;
}

bool Tzasc::Allows(World accessor, PhysAddr addr) const {
  if (accessor == World::kSecure) {
    return true;
  }
  bool ok = OwnerOf(addr) == World::kNormal;
  if (!ok) {
    NoteDenied();
  }
  return ok;
}

}  // namespace dlt
