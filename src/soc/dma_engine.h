// System DMA engine modelled after the bcm2835 DMA controller: 16 channels, each
// programmed with a chain of 32-byte control blocks in RAM. Peripheral data ports
// (DREQ pacing) let the engine move MMC block data by addressing the controller's
// data FIFO, which is exactly the descriptor topology the paper records (Figure 4).
#ifndef SRC_SOC_DMA_ENGINE_H_
#define SRC_SOC_DMA_ENGINE_H_

#include <array>
#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "src/soc/address_space.h"
#include "src/soc/device.h"
#include "src/soc/irq.h"
#include "src/soc/latency_model.h"
#include "src/soc/sim_clock.h"

namespace dlt {

// Register offsets within a channel's 0x100 window.
inline constexpr uint64_t kDmaCs = 0x00;
inline constexpr uint64_t kDmaConblkAd = 0x04;
inline constexpr uint64_t kDmaTi = 0x08;
inline constexpr uint64_t kDmaSourceAd = 0x0c;
inline constexpr uint64_t kDmaDestAd = 0x10;
inline constexpr uint64_t kDmaTxfrLen = 0x14;
inline constexpr uint64_t kDmaNextConbk = 0x1c;
inline constexpr uint64_t kDmaDebug = 0x20;

// CS bits.
inline constexpr uint32_t kDmaCsActive = 1u << 0;
inline constexpr uint32_t kDmaCsEnd = 1u << 1;
inline constexpr uint32_t kDmaCsInt = 1u << 2;
inline constexpr uint32_t kDmaCsError = 1u << 8;
inline constexpr uint32_t kDmaCsReset = 1u << 31;

// TI bits.
inline constexpr uint32_t kDmaTiIntEn = 1u << 0;
inline constexpr uint32_t kDmaTiDestInc = 1u << 4;
inline constexpr uint32_t kDmaTiDestDreq = 1u << 6;
inline constexpr uint32_t kDmaTiSrcInc = 1u << 8;
inline constexpr uint32_t kDmaTiSrcDreq = 1u << 10;

// In-memory control block layout (8 x u32 = 32 bytes, like bcm2835).
struct DmaControlBlock {
  uint32_t ti;
  uint32_t source_ad;
  uint32_t dest_ad;
  uint32_t txfr_len;
  uint32_t stride;
  uint32_t nextconbk;
  uint32_t reserved0;
  uint32_t reserved1;
};
static_assert(sizeof(DmaControlBlock) == 32);

// Fault-injection hook over executed control blocks (src/fault's
// FaultInjector). Called after the engine staged a block's payload and before
// delivery; the hook may corrupt |data| in place or shrink |*len| — a
// truncated transfer whose tail never reaches the destination.
class DmaFaultHook {
 public:
  virtual ~DmaFaultHook() = default;
  virtual void OnBlock(uint32_t ti, PhysAddr src, PhysAddr dst, uint8_t* data,
                       size_t* len) = 0;
};

class DmaEngine : public MmioDevice {
 public:
  static constexpr int kNumChannels = 16;

  DmaEngine(AddressSpace* mem, SimClock* clock, InterruptController* irq,
            const LatencyModel* lat, int irq_base);

  // Peripheral FIFO addresses the engine paces against (e.g. the MMC SDDATA port).
  void RegisterDataPort(PhysAddr addr, DmaDataPort* port);

  // Fault injection: nullptr uninstalls.
  void set_fault_hook(DmaFaultHook* hook) { fault_hook_ = hook; }

  std::string_view name() const override { return "dma"; }
  uint32_t MmioRead32(uint64_t offset) override;
  void MmioWrite32(uint64_t offset, uint32_t value) override;
  void SoftReset() override;

  int irq_line(int channel) const { return irq_base_ + channel; }
  uint64_t transfers_completed() const { return transfers_completed_; }
  uint64_t bytes_transferred() const { return bytes_transferred_; }

 private:
  struct Channel {
    uint32_t cs = 0;
    uint32_t conblk_ad = 0;
    // Shadow of the most recently executed control block.
    DmaControlBlock cb{};
    SimClock::EventId pending = SimClock::kInvalidEvent;
  };

  void StartChannel(int ch);
  // Executes the whole chain synchronously (data is visible immediately) and
  // returns the modelled duration; END/INT assert after that duration.
  uint64_t RunChain(Channel& c, bool* error_out);
  bool RunOneBlock(const DmaControlBlock& cb, uint64_t* cost_us);

  AddressSpace* mem_;
  SimClock* clock_;
  InterruptController* irq_;
  const LatencyModel* lat_;
  int irq_base_;
  std::array<Channel, kNumChannels> channels_;
  std::map<PhysAddr, DmaDataPort*> ports_;
  uint64_t transfers_completed_ = 0;
  uint64_t bytes_transferred_ = 0;
  std::vector<uint8_t> bounce_;
  DmaFaultHook* fault_hook_ = nullptr;
};

}  // namespace dlt

#endif  // SRC_SOC_DMA_ENGINE_H_
