#include "src/soc/irq.h"

#include <cstddef>

#include "src/obs/telemetry.h"
#include "src/soc/sim_clock.h"

namespace dlt {

void InterruptController::Raise(int line) {
  if (!ValidLine(line)) {
    return;
  }
  if (fault_hook_ != nullptr && !fault_hook_->OnRaise(line)) {
    return;  // dropped, or the injector re-raises it later (delayed delivery)
  }
  bool was_pending = Pending(line);
  if (line < 64) {
    pending_mask_ |= (uint64_t{1} << line);
  } else {
    pending_hi_ |= (uint32_t{1} << (line - 64));
  }
  if (!was_pending) {
    ++raise_counts_[static_cast<size_t>(line)];
    Telemetry& t = Telemetry::Get();
    if (t.enabled()) {
      t.metrics().counter("irq.raises").Inc();
      if (clock_ != nullptr) {
        t.Instant(TraceKind::kIrqRaise, clock_->now_us(), "irq_raise",
                  static_cast<uint64_t>(line));
      }
    }
  }
}

void InterruptController::Clear(int line) {
  if (!ValidLine(line)) {
    return;
  }
  if (line < 64) {
    pending_mask_ &= ~(uint64_t{1} << line);
  } else {
    pending_hi_ &= ~(uint32_t{1} << (line - 64));
  }
}

bool InterruptController::Pending(int line) const {
  if (!ValidLine(line)) {
    return false;
  }
  if (line < 64) {
    return (pending_mask_ >> line) & 1;
  }
  return (pending_hi_ >> (line - 64)) & 1;
}

uint64_t InterruptController::raise_count(int line) const {
  if (!ValidLine(line)) {
    return 0;
  }
  return raise_counts_[static_cast<size_t>(line)];
}

void InterruptController::Reset() {
  pending_mask_ = 0;
  pending_hi_ = 0;
  raise_counts_.fill(0);
}

}  // namespace dlt
