// Discrete-event virtual clock. All device latencies, IRQ deliveries and software
// costs in the simulation are expressed against this clock, which makes every
// benchmark fully deterministic (DESIGN.md §5.6/§5.7).
#ifndef SRC_SOC_SIM_CLOCK_H_
#define SRC_SOC_SIM_CLOCK_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

namespace dlt {

class SimClock {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  SimClock() = default;
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  uint64_t now_us() const { return now_us_; }

  // Schedules |fn| to fire at now + delay. Callbacks run when the clock advances
  // past their deadline; they may schedule further events.
  EventId ScheduleIn(uint64_t delay_us, std::function<void()> fn) {
    return ScheduleAt(now_us_ + delay_us, std::move(fn));
  }
  EventId ScheduleAt(uint64_t t_us, std::function<void()> fn);

  // Cancels a scheduled event. Returns false if it already fired or is unknown.
  bool Cancel(EventId id);

  // Advances virtual time by |delta_us|, firing every event due on the way.
  void Advance(uint64_t delta_us) { AdvanceTo(now_us_ + delta_us); }
  void AdvanceTo(uint64_t t_us);

  // Jumps to the next scheduled event and fires it. Returns false when the
  // queue is empty (time does not move).
  bool StepToNextEvent();

  // Deadline of the earliest live event; nullopt when none is scheduled.
  std::optional<uint64_t> NextEventTime();

  size_t pending_events() const { return live_events_; }

  // Total number of callbacks fired; handy for tests.
  uint64_t fired_count() const { return fired_; }

 private:
  struct Entry {
    uint64_t t;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Entry& other) const {
      return t != other.t ? t > other.t : id > other.id;
    }
  };

  void Fire(Entry& e);
  bool Cancelled(EventId id) const;

  uint64_t now_us_ = 0;
  EventId next_id_ = 1;
  uint64_t fired_ = 0;
  size_t live_events_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  std::vector<EventId> cancelled_;
};

}  // namespace dlt

#endif  // SRC_SOC_SIM_CLOCK_H_
