#include "src/soc/sim_clock.h"

#include <algorithm>

namespace dlt {

SimClock::EventId SimClock::ScheduleAt(uint64_t t_us, std::function<void()> fn) {
  EventId id = next_id_++;
  uint64_t t = std::max(t_us, now_us_);
  queue_.push(Entry{t, id, std::move(fn)});
  ++live_events_;
  return id;
}

bool SimClock::Cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) {
    return false;
  }
  if (Cancelled(id)) {
    return false;
  }
  cancelled_.push_back(id);
  if (live_events_ > 0) {
    --live_events_;
  }
  return true;
}

bool SimClock::Cancelled(EventId id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end();
}

void SimClock::Fire(Entry& e) {
  now_us_ = e.t;
  ++fired_;
  if (live_events_ > 0) {
    --live_events_;
  }
  auto fn = std::move(e.fn);
  fn();
}

void SimClock::AdvanceTo(uint64_t t_us) {
  if (t_us < now_us_) {
    return;
  }
  while (!queue_.empty() && queue_.top().t <= t_us) {
    Entry e = queue_.top();
    queue_.pop();
    if (Cancelled(e.id)) {
      cancelled_.erase(std::find(cancelled_.begin(), cancelled_.end(), e.id));
      continue;
    }
    Fire(e);
  }
  now_us_ = t_us;
}

std::optional<uint64_t> SimClock::NextEventTime() {
  while (!queue_.empty() && Cancelled(queue_.top().id)) {
    EventId id = queue_.top().id;
    queue_.pop();
    cancelled_.erase(std::find(cancelled_.begin(), cancelled_.end(), id));
  }
  if (queue_.empty()) {
    return std::nullopt;
  }
  return queue_.top().t;
}

bool SimClock::StepToNextEvent() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (Cancelled(e.id)) {
      cancelled_.erase(std::find(cancelled_.begin(), cancelled_.end(), e.id));
      continue;
    }
    Fire(e);
    return true;
  }
  return false;
}

}  // namespace dlt
