// Central timing knobs for the simulation. Values are calibrated so that the
// benchmark *shapes* match the paper's evaluation on RPi3 (EXPERIMENTS.md records
// the calibration). All durations are in virtual microseconds unless noted.
#ifndef SRC_SOC_LATENCY_MODEL_H_
#define SRC_SOC_LATENCY_MODEL_H_

#include <cstdint>

namespace dlt {

struct LatencyModel {
  // Bus / interconnect.
  uint64_t mmio_access_ns = 150;    // one device register read/write
  uint64_t irq_delivery_us = 25;    // device raises -> waiter observes
  uint64_t dma_setup_us = 6;        // DMA control-block fetch + channel start
  uint64_t dma_per_kb_us = 2;       // DMA copy throughput (~500 MB/s)

  // MMC controller + SD card.
  uint64_t mmc_cmd_us = 85;            // command/response exchange on the MMC bus
  uint64_t sd_read_block_us = 70;      // flash sense + bus transfer per 512 B sector
  uint64_t sd_write_block_us = 130;    // flash program per 512 B sector
  uint64_t sd_write_setup_us = 950;    // write command ramp-up (CMD24/25 busy)

  // DWC2 USB host + mass storage.
  uint64_t usb_xact_us = 110;        // per bulk transaction (CBW / CSW / data chunk)
  uint64_t usb_data_per_kb_us = 24;  // bulk data throughput on the wire
  uint64_t usb_flash_read_block_us = 70;
  uint64_t usb_flash_write_block_us = 110;

  // VC4 camera pipeline.
  uint64_t cam_init_us = 1'850'000;      // firmware boot + sensor power + AWB settle
  uint64_t cam_frame_base_us = 240'000;  // exposure + ISP at 720p, per frame
  uint64_t cam_frame_per_kb_us = 820;    // extra ISP/encode per KB beyond the 720p frame
  uint64_t vchiq_msg_us = 380;             // firmware handles one VCHIQ message
  uint64_t cam_native_pipeline_us = 95'000;  // per-frame cost once the native driver
                                             // streams with coalesced IRQs

  // Firmware TPM (mailbox command pipe).
  uint64_t ftpm_cmd_us = 650;     // secure-world firmware handles one TPM command
  uint64_t ftpm_per_kb_us = 90;   // marshalling per KB of request + response

  // Crypto accelerator (descriptor-ring engine).
  uint64_t crypto_setup_us = 8;     // descriptor fetch + engine start per doorbell
  uint64_t crypto_per_kb_us = 3;    // cipher/digest throughput (~330 MB/s)

  // Software costs.
  uint64_t kern_block_layer_us = 300;  // syscall + VFS + block layer, per request
  uint64_t kern_sync_write_us = 2'400; // extra O_SYNC barrier cost per write request
  uint64_t kern_wakeup_us = 45;        // completion -> task wakeup
  uint64_t usb_sched_per_page_us = 95;  // native USB transfer scheduling per 4 KB page
  uint64_t replay_event_ns = 800;       // replayer interpreter cost per event
  uint64_t driver_cpu_us = 14;          // gold driver per-request CPU time
  uint64_t world_switch_us = 11;        // one SMC world-switch crossing; charged by the
                                        // delegation baseline (2/request) and by the replay
                                        // service invoke path (2/doorbell batch)
  uint64_t device_reset_us = 800;       // soft reset to clean-slate state
};

}  // namespace dlt

#endif  // SRC_SOC_LATENCY_MODEL_H_
