#include "src/soc/machine.h"

namespace dlt {

Machine::Machine() : mem_(&tzasc_) {
  irq_.BindClock(&clock_);
  mem_.BindClock(&clock_);
  (void)mem_.AddRam(kRamBase, kRamSize);
  dma_ = std::make_unique<DmaEngine>(&mem_, &clock_, &irq_, &latency_, kDmaIrqBase);
  (void)AttachDevice(kDmaEngineBase, kDmaEngineSize, dma_.get());
}

Result<uint16_t> Machine::AttachDevice(PhysAddr base, uint64_t size, MmioDevice* dev) {
  DLT_RETURN_IF_ERROR(mem_.MapMmio(base, size, dev));
  uint16_t id = static_cast<uint16_t>(devices_.size());
  devices_.push_back(DeviceEntry{id, base, size, dev});
  return id;
}

Result<Machine::DeviceEntry> Machine::DeviceById(uint16_t id) const {
  if (id >= devices_.size()) {
    return Status::kNotFound;
  }
  return devices_[id];
}

Result<Machine::DeviceEntry> Machine::DeviceByName(std::string_view name) const {
  for (const auto& e : devices_) {
    if (e.dev->name() == name) {
      return e;
    }
  }
  return Status::kNotFound;
}

Status Machine::AssignToSecureWorld(uint16_t device_id) {
  DLT_ASSIGN_OR_RETURN(DeviceEntry e, DeviceById(device_id));
  tzasc_.AssignRegion(e.base, e.size, World::kSecure);
  return Status::kOk;
}

}  // namespace dlt
