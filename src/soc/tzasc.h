// TrustZone Address Space Controller model. The paper's testbed (RPi3) lacks a real
// TZASC; the authors patched ARM Trusted Firmware to assign whole device instances to
// the TEE (§7.3.1). We model the same policy: regions (RAM windows and device MMIO
// ranges) are assigned to a world; normal-world accesses to secure regions fault.
#ifndef SRC_SOC_TZASC_H_
#define SRC_SOC_TZASC_H_

#include <vector>

#include "src/soc/types.h"

namespace dlt {

class Tzasc {
 public:
  struct Region {
    PhysAddr base;
    uint64_t size;
    World owner;
  };

  // Later assignments take precedence over earlier overlapping ones.
  void AssignRegion(PhysAddr base, uint64_t size, World owner);

  // Unassigned addresses default to the normal world.
  World OwnerOf(PhysAddr addr) const;

  // Secure masters may access everything; normal masters only normal regions.
  bool Allows(World accessor, PhysAddr addr) const;

  const std::vector<Region>& regions() const { return regions_; }
  uint64_t denied_count() const { return denied_; }
  void NoteDenied() const { ++denied_; }

 private:
  std::vector<Region> regions_;
  mutable uint64_t denied_ = 0;
};

}  // namespace dlt

#endif  // SRC_SOC_TZASC_H_
