// Basic types shared across the driverlets codebase.
#ifndef SRC_SOC_TYPES_H_
#define SRC_SOC_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace dlt {

// Physical address on the simulated SoC bus.
using PhysAddr = uint64_t;

// TrustZone security world of a bus master.
enum class World : uint8_t {
  kNormal = 0,
  kSecure = 1,
};

inline const char* WorldName(World w) { return w == World::kSecure ? "secure" : "normal"; }

// Source location attached to recorded events so replay failures can report the
// originating line in the gold driver (paper §4.1, §5 "reporting their recording sites").
struct SourceLoc {
  const char* file = "";
  int line = 0;
};

#define DLT_HERE (::dlt::SourceLoc{__FILE__, __LINE__})

}  // namespace dlt

#endif  // SRC_SOC_TYPES_H_
