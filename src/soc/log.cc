#include "src/soc/log.h"

#include <atomic>

namespace dlt {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kTrace: return "T";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace log_internal {

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
}

LogLine::~LogLine() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace log_internal
}  // namespace dlt
