#include "src/soc/dma_engine.h"

#include "src/obs/telemetry.h"
#include "src/soc/log.h"

namespace dlt {

DmaEngine::DmaEngine(AddressSpace* mem, SimClock* clock, InterruptController* irq,
                     const LatencyModel* lat, int irq_base)
    : mem_(mem), clock_(clock), irq_(irq), lat_(lat), irq_base_(irq_base) {}

void DmaEngine::RegisterDataPort(PhysAddr addr, DmaDataPort* port) { ports_[addr] = port; }

uint32_t DmaEngine::MmioRead32(uint64_t offset) {
  int ch = static_cast<int>(offset / 0x100);
  uint64_t reg = offset % 0x100;
  if (ch < 0 || ch >= kNumChannels) {
    return 0;
  }
  Channel& c = channels_[static_cast<size_t>(ch)];
  switch (reg) {
    case kDmaCs: return c.cs;
    case kDmaConblkAd: return c.conblk_ad;
    case kDmaTi: return c.cb.ti;
    case kDmaSourceAd: return c.cb.source_ad;
    case kDmaDestAd: return c.cb.dest_ad;
    case kDmaTxfrLen: return c.cb.txfr_len;
    case kDmaNextConbk: return c.cb.nextconbk;
    case kDmaDebug: return 0;
    default: return 0;
  }
}

void DmaEngine::MmioWrite32(uint64_t offset, uint32_t value) {
  int ch = static_cast<int>(offset / 0x100);
  uint64_t reg = offset % 0x100;
  if (ch < 0 || ch >= kNumChannels) {
    return;
  }
  Channel& c = channels_[static_cast<size_t>(ch)];
  switch (reg) {
    case kDmaCs:
      if (value & kDmaCsReset) {
        if (c.pending != SimClock::kInvalidEvent) {
          clock_->Cancel(c.pending);
          c.pending = SimClock::kInvalidEvent;
        }
        c.cs = 0;
        irq_->Clear(irq_line(ch));
        return;
      }
      // Write-1-to-clear for END / INT; the per-channel line follows INT.
      c.cs &= ~(value & (kDmaCsEnd | kDmaCsInt));
      if (!(c.cs & kDmaCsInt)) {
        irq_->Clear(irq_line(ch));
      }
      if ((value & kDmaCsActive) && !(c.cs & kDmaCsActive)) {
        c.cs |= kDmaCsActive;
        StartChannel(ch);
      }
      break;
    case kDmaConblkAd:
      c.conblk_ad = value;
      break;
    default:
      break;
  }
}

void DmaEngine::StartChannel(int ch) {
  Channel& c = channels_[static_cast<size_t>(ch)];
  bool error = false;
  uint64_t bytes_before = bytes_transferred_;
  uint64_t cost_us = RunChain(c, &error);
  Telemetry& t = Telemetry::Get();
  if (t.enabled()) {
    uint64_t bytes = bytes_transferred_ - bytes_before;
    t.metrics().counter("dma.bytes").Inc(bytes);
    t.metrics().counter("dma.transfers").Inc();
    t.metrics().histogram("dma.xfer_us").Record(cost_us);
    t.Span(TraceKind::kDmaTransfer, clock_->now_us(), cost_us, "dma_xfer", bytes,
           static_cast<uint64_t>(ch));
  }
  int line = irq_line(ch);
  bool want_irq = (c.cb.ti & kDmaTiIntEn) != 0;
  c.pending = clock_->ScheduleIn(cost_us, [this, ch, line, want_irq, error] {
    Channel& cc = channels_[static_cast<size_t>(ch)];
    cc.pending = SimClock::kInvalidEvent;
    cc.cs &= ~kDmaCsActive;
    cc.cs |= kDmaCsEnd;
    if (error) {
      cc.cs |= kDmaCsError;
    }
    if (want_irq) {
      cc.cs |= kDmaCsInt;
      irq_->Raise(line);
    }
    ++transfers_completed_;
  });
}

uint64_t DmaEngine::RunChain(Channel& c, bool* error_out) {
  uint64_t total_us = 0;
  uint32_t cb_addr = c.conblk_ad;
  *error_out = false;
  int hops = 0;
  while (cb_addr != 0 && hops++ < 4096) {
    DmaControlBlock cb{};
    if (!Ok(mem_->DmaRead(cb_addr, &cb, sizeof(cb)))) {
      *error_out = true;
      break;
    }
    c.cb = cb;
    uint64_t cost = 0;
    if (!RunOneBlock(cb, &cost)) {
      *error_out = true;
      break;
    }
    total_us += lat_->dma_setup_us + cost;
    cb_addr = cb.nextconbk;
  }
  return total_us == 0 ? lat_->dma_setup_us : total_us;
}

bool DmaEngine::RunOneBlock(const DmaControlBlock& cb, uint64_t* cost_us) {
  size_t len = cb.txfr_len;
  *cost_us = (len * lat_->dma_per_kb_us + 1023) / 1024;
  if (len == 0) {
    return true;
  }
  bytes_transferred_ += len;
  bounce_.resize(len);
  bool src_dreq = (cb.ti & kDmaTiSrcDreq) != 0;
  bool dst_dreq = (cb.ti & kDmaTiDestDreq) != 0;
  if (src_dreq && dst_dreq) {
    return false;
  }
  if (src_dreq) {
    auto it = ports_.find(cb.source_ad);
    if (it == ports_.end()) {
      return false;
    }
    size_t got = it->second->DmaPull(bounce_.data(), len);
    if (got < len) {
      std::memset(bounce_.data() + got, 0, len - got);
    }
  } else {
    if (!Ok(mem_->DmaRead(cb.source_ad, bounce_.data(), len))) {
      return false;
    }
  }
  size_t deliver = len;
  if (fault_hook_ != nullptr) {
    fault_hook_->OnBlock(cb.ti, cb.source_ad, cb.dest_ad, bounce_.data(), &deliver);
    if (deliver > len) {
      deliver = len;
    }
  }
  if (dst_dreq) {
    auto it = ports_.find(cb.dest_ad);
    if (it == ports_.end()) {
      return false;
    }
    it->second->DmaPush(bounce_.data(), deliver);
  } else {
    if (!Ok(mem_->DmaWrite(cb.dest_ad, bounce_.data(), deliver))) {
      return false;
    }
  }
  return true;
}

void DmaEngine::SoftReset() {
  for (int ch = 0; ch < kNumChannels; ++ch) {
    Channel& c = channels_[static_cast<size_t>(ch)];
    if (c.pending != SimClock::kInvalidEvent) {
      clock_->Cancel(c.pending);
    }
    c = Channel{};
    irq_->Clear(irq_line(ch));
  }
}

}  // namespace dlt
