#include "src/tee/attestation.h"

#include <vector>

namespace dlt {

namespace {

constexpr char kQuoteHeader[] = "driverlet-attest v1";

std::string HexMac(const Sha256::Digest& d) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(d.size() * 2);
  for (uint8_t b : d) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xf]);
  }
  return s;
}

Result<uint64_t> ParseDec(std::string_view tok) {
  if (tok.empty()) {
    return Status::kCorrupt;
  }
  uint64_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') {
      return Status::kCorrupt;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

std::string QuoteBody(const AttestationQuote& q) {
  std::string s;
  s += kQuoteHeader;
  s += '\n';
  s += "driverlet " + q.driverlet + "\n";
  s += "session " + std::to_string(q.session_id) + "\n";
  s += "invokes " + std::to_string(q.invokes) + "\n";
  s += "failures " + std::to_string(q.failures) + "\n";
  s += "mismatches " + std::to_string(q.measurement_mismatches) + "\n";
  s += std::string("quarantined ") + (q.quarantined ? "1" : "0") + "\n";
  s += "measurement " + q.session_measurement + "\n";
  if (!q.last_measurement.empty()) {
    s += "last " + q.last_measurement + "\n";
  }
  s += "nonce " + q.nonce + "\n";
  return s;
}

std::string SerializeQuote(const AttestationQuote& q) {
  return QuoteBody(q) + "mac " + q.mac + "\n";
}

Result<AttestationQuote> ParseQuote(std::string_view text) {
  AttestationQuote q;
  bool saw_header = false;
  bool saw_mac = false;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) {
      eol = text.size();
    }
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (!saw_header) {
      if (line != kQuoteHeader) {
        return Status::kCorrupt;
      }
      saw_header = true;
      continue;
    }
    if (line.empty()) {
      continue;
    }
    size_t sp = line.find(' ');
    std::string_view key = line.substr(0, sp);
    std::string_view val = sp == std::string_view::npos ? std::string_view() : line.substr(sp + 1);
    if (key == "driverlet") {
      q.driverlet = std::string(val);
    } else if (key == "session") {
      DLT_ASSIGN_OR_RETURN(q.session_id, ParseDec(val));
    } else if (key == "invokes") {
      DLT_ASSIGN_OR_RETURN(q.invokes, ParseDec(val));
    } else if (key == "failures") {
      DLT_ASSIGN_OR_RETURN(q.failures, ParseDec(val));
    } else if (key == "mismatches") {
      DLT_ASSIGN_OR_RETURN(q.measurement_mismatches, ParseDec(val));
    } else if (key == "quarantined") {
      q.quarantined = val == "1";
    } else if (key == "measurement") {
      q.session_measurement = std::string(val);
    } else if (key == "last") {
      q.last_measurement = std::string(val);
    } else if (key == "nonce") {
      q.nonce = std::string(val);
    } else if (key == "mac") {
      q.mac = std::string(val);
      saw_mac = true;
    } else {
      return Status::kCorrupt;
    }
  }
  if (!saw_header || !saw_mac) {
    return Status::kCorrupt;
  }
  return q;
}

void SignQuote(AttestationQuote* q, std::string_view key) {
  std::string body = QuoteBody(*q);
  q->mac = HexMac(HmacSha256(key, body.data(), body.size()));
}

bool VerifyQuote(const AttestationQuote& q, std::string_view key) {
  std::string body = QuoteBody(q);
  return q.mac == HexMac(HmacSha256(key, body.data(), body.size()));
}

}  // namespace dlt
