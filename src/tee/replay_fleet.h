// ReplayFleet: N independent replay shards behind one front end, the repo's
// first real-thread subsystem (docs/replay_fleet.md). Each shard is a complete
// deployment machine — its own Machine + SimClock, SecureWorld, device stack
// and ReplayService — so shards never share mutable simulator state; the only
// cross-shard sharing is the read-only template population (every shard's
// service drives a TemplateStore::NewShardView() of shard 0's store) and the
// process-wide telemetry sinks, which are thread-safe.
//
// Dispatch model:
//   - a fixed pool of T worker threads; shard s is *homed* on worker s % T;
//   - per-shard bounded FIFO run queues (Submit returns kBusy when the
//     session's home-shard queue is full — explicit backpressure, no blocking);
//   - sessions are pinned to a home shard at OpenSession (least-loaded, or
//     explicit via OpenSessionOn), so a session's invokes always execute
//     against the same Machine and media — determinism is per-shard, and
//     pinning makes it per-session;
//   - idle workers *steal*: they scan other shards and, under the victim
//     shard's execution lock, pop work from the TAIL of its queue — skipping
//     any item with an earlier queued request from the same session, so
//     per-session FIFO order survives stealing;
//   - ring batches dispatch as a UNIT: a SubmitBatch vector occupies one
//     queue slot, never splits across shards, is stolen whole, and executes
//     as one ReplayService::InvokeBatch under a single continuous exec_mu
//     hold — two world switches for the whole batch.
//
// The execution invariant that makes this safe with single-threaded shard
// internals: popping a shard's queue requires holding that shard's exec_mu,
// and the popped invoke runs to completion under the same continuous lock
// hold. At most one thread ever touches a shard's Machine, and per-session
// order is the submission order.
#ifndef SRC_TEE_REPLAY_FLEET_H_
#define SRC_TEE_REPLAY_FLEET_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/tee/replay_service.h"
#include "src/workload/rpi3_testbed.h"

namespace dlt {

// Fleet-wide session handle: (shard index << 32) | shard-local SessionId.
using FleetSessionId = uint64_t;

inline constexpr size_t FleetShardOf(FleetSessionId id) {
  return static_cast<size_t>(id >> 32);
}
inline constexpr SessionId FleetLocalSession(FleetSessionId id) {
  return id & 0xffffffffu;
}

struct ReplayFleetConfig {
  size_t shards = 4;
  // Worker threads; 0 means one per shard. Fewer threads than shards is a
  // valid (and tested) configuration — stealing keeps all shards draining.
  size_t threads = 0;
  size_t queue_depth = 64;   // per-shard bounded run queue, in dispatch units
                             // (a whole SubmitBatch vector occupies one slot)
  bool stealing = true;      // idle workers steal from busy shards' tails
  size_t batch_limit = 8;    // max dispatch units one worker drains per visit
  // Wall-clock floor per queued invoke, microseconds. The simulator retires
  // device waits in zero host time; a nonzero floor re-introduces the real
  // per-invoke device/world-switch latency by sleeping out the remainder
  // (shard execution lock held — the shard's "device" is busy, exactly as on
  // hardware), so other shards overlap the wait. 0 = run at host speed.
  uint64_t invoke_floor_us = 0;
  ReplayServiceConfig service;  // applied to every shard's service
};

// Per-shard dispatch accounting (monotonic over the fleet's lifetime, except
// the two instantaneous levels). submitted/executed/stolen count *commands*,
// so a batch of 8 adds 8 — batch-of-1 traffic reads exactly as before.
struct ShardStats {
  uint64_t submitted = 0;
  uint64_t executed = 0;      // commands completed on this shard (home + stolen)
  uint64_t stolen = 0;        // of executed, how many a non-home worker ran
  uint64_t busy_rejects = 0;  // Submit attempts bounced off a full queue
  size_t queue_depth = 0;     // instantaneous, in queue slots (batches)
  size_t open_sessions = 0;   // instantaneous
};

struct FleetStats {
  uint64_t submitted = 0;
  uint64_t executed = 0;
  uint64_t stolen = 0;
  uint64_t busy_rejects = 0;
  std::vector<ShardStats> shards;
};

class ReplayFleet {
 public:
  ReplayFleet(std::string signing_key, ReplayFleetConfig cfg = {});
  ~ReplayFleet();

  ReplayFleet(const ReplayFleet&) = delete;
  ReplayFleet& operator=(const ReplayFleet&) = delete;

  // Verifies the sealed package once, then registers it with every shard's
  // service (N idempotent population publishes through the shared store, plus
  // one replayer per shard). Must precede OpenSession for that driverlet.
  Result<std::string> RegisterDriverlet(const uint8_t* data, size_t len);

  // Zero-copy fleet registration: maps + verifies the sealed v2 package once,
  // then registers the same mapping with every shard (the shared population
  // holds header-only templates hydrated on first selection, so fleet-wide
  // registration cost is O(directory), not O(shards x corpus)).
  Result<std::string> RegisterDriverletFile(const std::string& path);

  // ---- Worker pool lifecycle ----
  // Start launches the worker threads; before Start (or after Stop), Submit
  // still queues and Invoke/ProcessQueuedInline execute on the caller's
  // thread — useful for single-threaded deterministic tests.
  void Start();
  // Joins the pool. Requests still queued complete as kAborted (their
  // completions stay collectable), so no submitter is left waiting forever.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // ---- Sessions ----
  // Pins the session to the shard with the fewest open sessions.
  Result<FleetSessionId> OpenSession(std::string_view driverlet);
  // Pins the session to an explicit shard (benches use this to skew load).
  Result<FleetSessionId> OpenSessionOn(size_t shard, std::string_view driverlet);
  Status CloseSession(FleetSessionId id);

  // ---- Invocation ----
  // Enqueues onto the session's home shard; kBusy when that queue is full.
  // Buffer views inside |args| are borrowed until the completion is taken.
  Result<uint64_t> Submit(FleetSessionId id, std::string entry, ReplayArgs args);
  // Enqueues a whole ring batch as ONE dispatch unit: the vector occupies a
  // single queue slot on the session's home shard, never splits across
  // shards, and executes as one InvokeBatch (two world switches for the
  // batch). kBusy when the home queue is full; kInvalidArg for an empty
  // batch. Collect results with Take/WaitBatchCompletion.
  Result<uint64_t> SubmitBatch(FleetSessionId id, std::vector<RingCmd> cmds);
  // Non-blocking completion pickup; kNotFound while still queued/running.
  // For a SubmitBatch request of more than one command this returns
  // kInvalidArg (and leaves the completion collectable) — use
  // TakeBatchCompletion for positional per-command results.
  Result<ReplayStats> TakeCompletion(uint64_t request_id);
  Result<std::vector<Result<ReplayStats>>> TakeBatchCompletion(uint64_t request_id);
  // Blocks until the request completes (requires a running pool or a
  // concurrent ProcessQueuedInline caller), then takes the completion.
  Result<ReplayStats> WaitCompletion(uint64_t request_id);
  std::vector<Result<ReplayStats>> WaitBatchCompletion(uint64_t request_id);
  // Submit + WaitCompletion when the pool runs; direct inline execution on
  // the caller's thread otherwise.
  Result<ReplayStats> Invoke(FleetSessionId id, std::string_view entry,
                             const ReplayArgs& args);
  // Drains up to |max_requests| queued invokes on the caller's thread (home
  // order, no stealing). Returns how many ran. Intended for stopped-pool use.
  size_t ProcessQueuedInline(size_t max_requests = SIZE_MAX);

  // ---- Introspection ----
  FleetStats stats() const;
  // Wall-clock queue wait (submit → execution start), microseconds; one
  // sample per dispatch unit.
  const Histogram& queue_wait_us() const { return queue_wait_us_; }
  size_t shard_count() const { return shards_.size(); }
  size_t thread_count() const { return threads_target_; }
  ReplayService& shard_service(size_t i) { return *shards_[i]->service; }
  Rpi3Testbed& shard_testbed(size_t i) { return *shards_[i]->tb; }

 private:
  struct Pending {
    uint64_t id = 0;             // fleet-wide request id
    SessionId session = 0;       // shard-local session
    std::vector<RingCmd> cmds;   // whole batch; buffer views borrowed
    std::chrono::steady_clock::time_point submitted;
  };

  struct Shard {
    size_t index = 0;
    std::unique_ptr<Rpi3Testbed> tb;
    std::unique_ptr<ReplayService> service;

    // Execution lock: held across every service call and for the full
    // duration of each popped invoke. queue_mu nests inside exec-holders but
    // is also taken alone by submitters.
    std::mutex exec_mu;
    std::mutex queue_mu;
    std::deque<Pending> queue;

    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> executed{0};
    std::atomic<uint64_t> stolen{0};
    std::atomic<uint64_t> busy_rejects{0};
    std::atomic<size_t> open_sessions{0};

    // Telemetry handles resolved once at fleet construction when tracing is
    // armed (registrations are permanent); null when telemetry is off.
    Counter* tel_steals = nullptr;
    Counter* tel_executed = nullptr;
    Gauge* tel_queue_depth = nullptr;
    Gauge* tel_sessions = nullptr;
  };

  void WorkerLoop(size_t worker);
  // Drains up to batch_limit invokes from |s| under try-locked exec_mu.
  // Returns invokes run; 0 when the lock was busy or the queue empty.
  size_t RunShard(Shard& s, bool as_thief, size_t limit);
  // Pops the next runnable item for |s| (front for home, tail-respecting-
  // session-order for thieves). Caller holds exec_mu. False when none.
  bool PopWork(Shard& s, bool as_thief, Pending* out);
  // Runs one whole batch against |s| and files the completion. exec_mu held.
  void Execute(Shard& s, Pending p, bool as_thief);
  void CompleteAs(uint64_t request_id, std::vector<Result<ReplayStats>> r);

  std::string signing_key_;
  ReplayFleetConfig cfg_;
  size_t threads_target_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};

  // Wake signal for idle workers (new work or shutdown).
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  // Completion table shared by all shards, keyed by fleet request id; one
  // vector per dispatch unit (size 1 for plain Submit).
  mutable std::mutex comp_mu_;
  std::condition_variable comp_cv_;
  std::map<uint64_t, std::vector<Result<ReplayStats>>> completions_;

  std::atomic<uint64_t> next_request_{1};
  // Total queued across all shards — lets idle workers' wake predicate stay a
  // single relaxed load instead of walking every queue lock.
  std::atomic<size_t> queued_total_{0};
  Histogram queue_wait_us_;  // wall-clock

  Counter* tel_fleet_steals_ = nullptr;
  Gauge* tel_fleet_queue_depth_ = nullptr;
  Gauge* tel_fleet_sessions_ = nullptr;
};

}  // namespace dlt

#endif  // SRC_TEE_REPLAY_FLEET_H_
