// TrimmedUartDriver: the paper's §2.2 contrast case. For a device this simple,
// "developers may manually carve out only needed driver functions" — the whole
// in-TEE driver is the ~50 lines below, no recording machinery required. The
// same trim-down approach is what the paper shows to be impractical for
// MMC/USB/VCHIQ (Table 8), which is where driverlets earn their keep.
#ifndef SRC_TEE_TRIMMED_UART_H_
#define SRC_TEE_TRIMMED_UART_H_

#include <string_view>

#include "src/dev/uart/uart_controller.h"
#include "src/tee/secure_world.h"

namespace dlt {

class TrimmedUartDriver {
 public:
  TrimmedUartDriver(SecureWorld* tee, uint16_t uart_device)
      : tee_(tee), device_(uart_device) {}

  Status Putc(char c) {
    // Spin while the transmit FIFO is full.
    for (int spin = 0; spin < 10'000; ++spin) {
      DLT_ASSIGN_OR_RETURN(uint32_t fr, tee_->RegRead32(device_, kUartFr));
      if (!(fr & kUartFrTxFull)) {
        return tee_->RegWrite32(device_, kUartDr, static_cast<uint8_t>(c));
      }
      tee_->DelayUs(50);
    }
    return Status::kTimeout;
  }

  Status Puts(std::string_view s) {
    for (char c : s) {
      DLT_RETURN_IF_ERROR(Putc(c));
    }
    return Status::kOk;
  }

  Result<char> Getc(uint64_t timeout_us = 1'000'000) {
    uint64_t waited = 0;
    while (true) {
      DLT_ASSIGN_OR_RETURN(uint32_t fr, tee_->RegRead32(device_, kUartFr));
      if (!(fr & kUartFrRxEmpty)) {
        DLT_ASSIGN_OR_RETURN(uint32_t dr, tee_->RegRead32(device_, kUartDr));
        return static_cast<char>(dr & 0xff);
      }
      if (waited >= timeout_us) {
        return Status::kTimeout;
      }
      tee_->DelayUs(100);
      waited += 100;
    }
  }

 private:
  SecureWorld* tee_;
  uint16_t device_;
};

}  // namespace dlt

#endif  // SRC_TEE_TRIMMED_UART_H_
