#include "src/tee/replay_fleet.h"

#include <utility>

#include "src/core/package.h"
#include "src/obs/telemetry.h"
#include "src/soc/log.h"

namespace dlt {

ReplayFleet::ReplayFleet(std::string signing_key, ReplayFleetConfig cfg)
    : signing_key_(std::move(signing_key)), cfg_(cfg) {
  if (cfg_.shards == 0) {
    cfg_.shards = 1;
  }
  threads_target_ = cfg_.threads == 0 ? cfg_.shards : cfg_.threads;

  // Shard 0 owns the origin TemplateStore; every other shard's service drives
  // a view of it, so one RegisterDriverlet population publish is visible to
  // all shards while selection/compile caches stay shard-private.
  auto origin = std::make_unique<TemplateStore>();
  std::vector<std::unique_ptr<TemplateStore>> stores;
  stores.push_back(nullptr);  // placeholder; origin moves in below
  for (size_t i = 1; i < cfg_.shards; ++i) {
    stores.push_back(origin->NewShardView());
  }
  stores[0] = std::move(origin);

  Telemetry& tel = Telemetry::Get();
  if (tel.enabled()) {
    tel_fleet_steals_ = &tel.metrics().counter("fleet.steals");
    tel_fleet_queue_depth_ = &tel.metrics().gauge("fleet.queue_depth");
    tel_fleet_sessions_ = &tel.metrics().gauge("fleet.open_sessions");
  }
  for (size_t i = 0; i < cfg_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    shard->tb = std::make_unique<Rpi3Testbed>(opts);
    shard->service = std::make_unique<ReplayService>(&shard->tb->tee(), signing_key_,
                                                     cfg_.service, std::move(stores[i]));
    if (tel.enabled()) {
      std::string p = "fleet.shard" + std::to_string(i);
      shard->tel_steals = &tel.metrics().counter(p + ".steals");
      shard->tel_executed = &tel.metrics().counter(p + ".executed");
      shard->tel_queue_depth = &tel.metrics().gauge(p + ".queue_depth");
      shard->tel_sessions = &tel.metrics().gauge(p + ".open_sessions");
    }
    shards_.push_back(std::move(shard));
  }
}

ReplayFleet::~ReplayFleet() { Stop(); }

Result<std::string> ReplayFleet::RegisterDriverlet(const uint8_t* data, size_t len) {
  // Verify and parse once; each shard's service re-runs admission against its
  // own SecureWorld and installs its own replayer. The store publishes are
  // idempotent per-driverlet replacements through the shared population.
  DLT_ASSIGN_OR_RETURN(DriverletPackage pkg, OpenPackage(data, len, signing_key_));
  std::string name;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> exec(shard->exec_mu);
    DLT_ASSIGN_OR_RETURN(name, shard->service->RegisterDriverlet(pkg));
  }
  return name;
}

Result<std::string> ReplayFleet::RegisterDriverletFile(const std::string& path) {
  // Map and signature-check once; every shard shares the one mapping. Each
  // shard still re-runs admission against its own SecureWorld and installs its
  // own replayer; the store-level publish is idempotent per driverlet.
  DLT_ASSIGN_OR_RETURN(std::shared_ptr<const MappedPackage> pkg,
                       MappedPackage::Map(path, signing_key_));
  std::string name;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> exec(shard->exec_mu);
    DLT_ASSIGN_OR_RETURN(name, shard->service->RegisterDriverlet(pkg));
  }
  return name;
}

void ReplayFleet::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  workers_.reserve(threads_target_);
  for (size_t w = 0; w < threads_target_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

void ReplayFleet::Stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    wake_cv_.notify_all();
    for (auto& t : workers_) {
      t.join();
    }
    workers_.clear();
  }
  // Abort whatever is still queued so no submitter waits on a completion that
  // will never arrive. Taken after the join: the queues are quiescent.
  for (auto& shard : shards_) {
    std::deque<Pending> orphans;
    {
      std::scoped_lock lk(shard->exec_mu, shard->queue_mu);
      orphans.swap(shard->queue);
    }
    for (auto& p : orphans) {
      queued_total_.fetch_sub(1, std::memory_order_relaxed);
      if (shard->tel_queue_depth != nullptr) {
        shard->tel_queue_depth->Sub(1);
        tel_fleet_queue_depth_->Sub(1);
      }
      CompleteAs(p.id, std::vector<Result<ReplayStats>>(
                           p.cmds.size(), Result<ReplayStats>(Status::kAborted)));
    }
  }
}

Result<FleetSessionId> ReplayFleet::OpenSession(std::string_view driverlet) {
  size_t best = 0;
  size_t best_load = SIZE_MAX;
  for (size_t i = 0; i < shards_.size(); ++i) {
    size_t load = shards_[i]->open_sessions.load(std::memory_order_relaxed);
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  return OpenSessionOn(best, driverlet);
}

Result<FleetSessionId> ReplayFleet::OpenSessionOn(size_t shard, std::string_view driverlet) {
  if (shard >= shards_.size()) {
    return Status::kInvalidArg;
  }
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> exec(s.exec_mu);
  DLT_ASSIGN_OR_RETURN(SessionId local, s.service->OpenSession(driverlet));
  s.open_sessions.fetch_add(1, std::memory_order_relaxed);
  if (s.tel_sessions != nullptr) {
    s.tel_sessions->Add(1);
    tel_fleet_sessions_->Add(1);
  }
  return (static_cast<uint64_t>(shard) << 32) | local;
}

Status ReplayFleet::CloseSession(FleetSessionId id) {
  size_t shard = FleetShardOf(id);
  if (shard >= shards_.size()) {
    return Status::kNotFound;
  }
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> exec(s.exec_mu);
  Status st = s.service->CloseSession(FleetLocalSession(id));
  if (st == Status::kOk) {
    s.open_sessions.fetch_sub(1, std::memory_order_relaxed);
    if (s.tel_sessions != nullptr) {
      s.tel_sessions->Sub(1);
      tel_fleet_sessions_->Sub(1);
    }
  }
  return st;
}

Result<uint64_t> ReplayFleet::Submit(FleetSessionId id, std::string entry, ReplayArgs args) {
  std::vector<RingCmd> one(1);
  one[0].entry = std::move(entry);
  one[0].args = std::move(args);
  return SubmitBatch(id, std::move(one));
}

Result<uint64_t> ReplayFleet::SubmitBatch(FleetSessionId id, std::vector<RingCmd> cmds) {
  if (cmds.empty()) {
    return Status::kInvalidArg;  // an empty doorbell never reaches the fleet
  }
  size_t shard = FleetShardOf(id);
  if (shard >= shards_.size()) {
    return Status::kNotFound;
  }
  Shard& s = *shards_[shard];
  const uint64_t n_cmds = cmds.size();
  uint64_t request_id;
  {
    std::lock_guard<std::mutex> lk(s.queue_mu);
    if (s.queue.size() >= cfg_.queue_depth) {
      s.busy_rejects.fetch_add(1, std::memory_order_relaxed);
      return Status::kBusy;
    }
    Pending p;
    p.id = next_request_.fetch_add(1, std::memory_order_relaxed);
    p.session = FleetLocalSession(id);
    p.cmds = std::move(cmds);
    p.submitted = std::chrono::steady_clock::now();
    request_id = p.id;
    s.queue.push_back(std::move(p));
  }
  s.submitted.fetch_add(n_cmds, std::memory_order_relaxed);
  queued_total_.fetch_add(1, std::memory_order_relaxed);
  if (s.tel_queue_depth != nullptr) {
    s.tel_queue_depth->Add(1);
    tel_fleet_queue_depth_->Add(1);
  }
  wake_cv_.notify_all();
  return request_id;
}

Result<ReplayStats> ReplayFleet::TakeCompletion(uint64_t request_id) {
  std::lock_guard<std::mutex> lk(comp_mu_);
  auto it = completions_.find(request_id);
  if (it == completions_.end()) {
    return Status::kNotFound;
  }
  if (it->second.size() != 1) {
    // Batch request: per-command results don't collapse into one. Leave the
    // completion collectable via TakeBatchCompletion.
    return Status::kInvalidArg;
  }
  Result<ReplayStats> r = std::move(it->second.front());
  completions_.erase(it);
  return r;
}

Result<std::vector<Result<ReplayStats>>> ReplayFleet::TakeBatchCompletion(uint64_t request_id) {
  std::lock_guard<std::mutex> lk(comp_mu_);
  auto it = completions_.find(request_id);
  if (it == completions_.end()) {
    return Status::kNotFound;
  }
  std::vector<Result<ReplayStats>> r = std::move(it->second);
  completions_.erase(it);
  return r;
}

Result<ReplayStats> ReplayFleet::WaitCompletion(uint64_t request_id) {
  std::unique_lock<std::mutex> lk(comp_mu_);
  comp_cv_.wait(lk, [&] { return completions_.find(request_id) != completions_.end(); });
  auto it = completions_.find(request_id);
  if (it->second.size() != 1) {
    return Status::kInvalidArg;  // see TakeCompletion
  }
  Result<ReplayStats> r = std::move(it->second.front());
  completions_.erase(it);
  return r;
}

std::vector<Result<ReplayStats>> ReplayFleet::WaitBatchCompletion(uint64_t request_id) {
  std::unique_lock<std::mutex> lk(comp_mu_);
  comp_cv_.wait(lk, [&] { return completions_.find(request_id) != completions_.end(); });
  auto it = completions_.find(request_id);
  std::vector<Result<ReplayStats>> r = std::move(it->second);
  completions_.erase(it);
  return r;
}

Result<ReplayStats> ReplayFleet::Invoke(FleetSessionId id, std::string_view entry,
                                        const ReplayArgs& args) {
  if (running()) {
    DLT_ASSIGN_OR_RETURN(uint64_t req, Submit(id, std::string(entry), args));
    return WaitCompletion(req);
  }
  // Stopped-pool path: execute directly on the caller's thread, same locking
  // discipline as a worker (single-threaded tests never spin up the pool).
  size_t shard = FleetShardOf(id);
  if (shard >= shards_.size()) {
    return Status::kNotFound;
  }
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> exec(s.exec_mu);
  Result<ReplayStats> r = s.service->Invoke(FleetLocalSession(id), entry, args);
  s.executed.fetch_add(1, std::memory_order_relaxed);
  if (s.tel_executed != nullptr) {
    s.tel_executed->Inc();
  }
  return r;
}

size_t ReplayFleet::ProcessQueuedInline(size_t max_requests) {
  size_t total = 0;
  bool progress = true;
  while (total < max_requests && progress) {
    progress = false;
    for (auto& shard : shards_) {
      size_t n = RunShard(*shard, /*as_thief=*/false, max_requests - total);
      total += n;
      progress = progress || n > 0;
      if (total >= max_requests) {
        break;
      }
    }
  }
  return total;
}

FleetStats ReplayFleet::stats() const {
  FleetStats fs;
  for (const auto& shard : shards_) {
    ShardStats ss;
    ss.submitted = shard->submitted.load(std::memory_order_relaxed);
    ss.executed = shard->executed.load(std::memory_order_relaxed);
    ss.stolen = shard->stolen.load(std::memory_order_relaxed);
    ss.busy_rejects = shard->busy_rejects.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(shard->queue_mu);
      ss.queue_depth = shard->queue.size();
    }
    ss.open_sessions = shard->open_sessions.load(std::memory_order_relaxed);
    fs.submitted += ss.submitted;
    fs.executed += ss.executed;
    fs.stolen += ss.stolen;
    fs.busy_rejects += ss.busy_rejects;
    fs.shards.push_back(std::move(ss));
  }
  return fs;
}

void ReplayFleet::WorkerLoop(size_t worker) {
  while (running_.load(std::memory_order_acquire)) {
    size_t did = 0;
    // Home shards first: shard s lives on worker s mod T.
    for (size_t s = worker; s < shards_.size(); s += threads_target_) {
      did += RunShard(*shards_[s], /*as_thief=*/false, cfg_.batch_limit);
    }
    if (did == 0 && cfg_.stealing) {
      // Idle: steal one invoke at a time from someone else's backlog. One at
      // a time keeps the thief responsive to its own shards filling back up.
      for (size_t s = 0; s < shards_.size() && did == 0; ++s) {
        if (s % threads_target_ == worker) {
          continue;
        }
        did += RunShard(*shards_[s], /*as_thief=*/true, 1);
      }
    }
    if (did == 0) {
      std::unique_lock<std::mutex> lk(wake_mu_);
      wake_cv_.wait_for(lk, std::chrono::microseconds(200), [&] {
        return !running_.load(std::memory_order_acquire) ||
               queued_total_.load(std::memory_order_relaxed) > 0;
      });
    }
  }
}

size_t ReplayFleet::RunShard(Shard& s, bool as_thief, size_t limit) {
  std::unique_lock<std::mutex> exec(s.exec_mu, std::try_to_lock);
  if (!exec.owns_lock()) {
    return 0;  // someone else is driving this shard; don't block
  }
  size_t done = 0;
  Pending p;
  while (done < limit && PopWork(s, as_thief, &p)) {
    Execute(s, std::move(p), as_thief);
    ++done;
  }
  return done;
}

bool ReplayFleet::PopWork(Shard& s, bool as_thief, Pending* out) {
  std::lock_guard<std::mutex> lk(s.queue_mu);
  if (s.queue.empty()) {
    return false;
  }
  size_t victim = 0;
  if (!as_thief) {
    // Home order: the front, oldest first.
    victim = 0;
  } else {
    // Thieves take from the tail — but a session's invokes must run in
    // submission order, so a candidate is stealable only when no *earlier*
    // queued item belongs to the same session.
    bool found = false;
    for (size_t i = s.queue.size(); i-- > 0;) {
      bool blocked = false;
      for (size_t j = 0; j < i; ++j) {
        if (s.queue[j].session == s.queue[i].session) {
          blocked = true;
          break;
        }
      }
      if (!blocked) {
        victim = i;
        found = true;
        break;
      }
    }
    if (!found) {
      return false;  // every tail item has an older same-session sibling
    }
  }
  *out = std::move(s.queue[victim]);
  s.queue.erase(s.queue.begin() + static_cast<ptrdiff_t>(victim));
  queued_total_.fetch_sub(1, std::memory_order_relaxed);
  if (s.tel_queue_depth != nullptr) {
    s.tel_queue_depth->Sub(1);
    tel_fleet_queue_depth_->Sub(1);
  }
  return true;
}

void ReplayFleet::Execute(Shard& s, Pending p, bool as_thief) {
  auto start = std::chrono::steady_clock::now();
  auto wait = start - p.submitted;
  queue_wait_us_.Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(wait).count()));
  const uint64_t n = p.cmds.size();
  // The whole batch runs as one InvokeBatch under this continuous exec_mu
  // hold: two world switches total, and no other worker can interleave
  // commands into the batch.
  std::vector<Result<ReplayStats>> r = s.service->InvokeBatch(p.session, p.cmds.data(),
                                                              p.cmds.size());
  if (cfg_.invoke_floor_us != 0) {
    auto floor = std::chrono::microseconds(cfg_.invoke_floor_us * n);
    auto elapsed = std::chrono::steady_clock::now() - start;
    if (elapsed < floor) {
      // Device-latency pacing: hold the shard busy for the rest of the floor,
      // with exec_mu held — concurrent shards keep draining their own queues.
      std::this_thread::sleep_for(floor - elapsed);
    }
  }
  s.executed.fetch_add(n, std::memory_order_relaxed);
  if (s.tel_executed != nullptr) {
    s.tel_executed->Inc(n);
  }
  if (as_thief) {
    s.stolen.fetch_add(n, std::memory_order_relaxed);
    if (s.tel_steals != nullptr) {
      s.tel_steals->Inc();
      tel_fleet_steals_->Inc();
    }
  }
  CompleteAs(p.id, std::move(r));
}

void ReplayFleet::CompleteAs(uint64_t request_id, std::vector<Result<ReplayStats>> r) {
  {
    std::lock_guard<std::mutex> lk(comp_mu_);
    completions_.emplace(request_id, std::move(r));
  }
  comp_cv_.notify_all();
}

}  // namespace dlt
