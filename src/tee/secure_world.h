// SecureWorld: the OPTEE-like TEE runtime hosting trustlets and the replayer.
// Owns the reserved TEE RAM pool (the paper reserves 3 MB and uses the stock
// OPTEE allocator, §7.3.1), maps TZASC-assigned devices into the TEE, and
// implements core::ReplayContext — the only services the replayer needs from a
// TEE kernel (§5 "Instantiating the template").
#ifndef SRC_TEE_SECURE_WORLD_H_
#define SRC_TEE_SECURE_WORLD_H_

#include <set>

#include "src/core/replay_context.h"
#include "src/kern/cma_pool.h"
#include "src/soc/machine.h"

namespace dlt {

// Default TEE reservation mirroring the paper: 3 MB of RAM.
inline constexpr PhysAddr kTeePoolBase = 0x0300'0000;
inline constexpr uint64_t kTeePoolSize = 3ull << 20;

class SecureWorld : public ReplayContext {
 public:
  SecureWorld(Machine* machine, PhysAddr pool_base = kTeePoolBase,
              uint64_t pool_size = kTeePoolSize, uint64_t rng_seed = 0x7ee5eed);

  // Maps a device's registers into the TEE. The device instance must have been
  // assigned to the secure world by firmware (Machine::AssignToSecureWorld);
  // otherwise the mapping is refused.
  Status MapDevice(uint16_t device_id);
  bool DeviceMapped(uint16_t device_id) const { return mapped_.count(device_id) != 0; }

  CmaPool& pool() { return pool_; }
  Machine* machine() { return machine_; }

  // Charges one SMC boundary crossing (latency_model.h:world_switch_us) to the
  // virtual clock, bumps the local crossing counter, and — when telemetry is
  // armed — the `tee.world_switches` counter plus a kWorldSwitch trace
  // instant. |direction| is 0 for normal→secure entry, 1 for the return.
  void WorldSwitch(std::string_view label, uint64_t direction);
  // Total crossings charged through this SecureWorld (always counted, so
  // benches and tests can assert amortization without arming telemetry).
  uint64_t world_switches() const { return world_switches_; }

  // ---- ReplayContext ----
  Result<uint32_t> RegRead32(uint16_t device, uint64_t offset) override;
  Status RegWrite32(uint16_t device, uint64_t offset, uint32_t value) override;
  // Block PIO: permission/range checks and the window walk are resolved once,
  // then each word is charged and routed through the MMIO window individually,
  // so interposed fault proxies and telemetry see the same per-word access
  // stream as a loop of RegRead32/RegWrite32 calls.
  Status RegReadBlock32(uint16_t device, uint64_t offset, uint32_t* out,
                        size_t words) override;
  Status RegWriteBlock32(uint16_t device, uint64_t offset, const uint32_t* values,
                         size_t words) override;
  Result<uint32_t> MemRead32(PhysAddr addr) override;
  Status MemWrite32(PhysAddr addr, uint32_t value) override;
  Status MemCopyIn(PhysAddr dst, const uint8_t* src, size_t len) override;
  Status MemCopyOut(uint8_t* dst, PhysAddr src, size_t len) override;
  Result<PhysAddr> DmaAlloc(uint64_t size) override;
  void DmaReleaseAll() override;
  Result<uint32_t> RandomU32() override;
  uint64_t TimestampUs() override;
  Status WaitForIrq(int line, uint64_t timeout_us) override;
  void DelayUs(uint64_t us) override;
  Status SoftResetDevice(uint16_t device) override;
  bool AddressAllowed(PhysAddr addr, size_t len) override;
  void ChargeReplayOverheadNs(uint64_t ns) override;

 private:
  void ChargeNs(uint64_t ns);

  Machine* machine_;
  CmaPool pool_;
  std::set<uint16_t> mapped_;
  uint64_t rng_state_;
  uint64_t ns_accum_ = 0;
  uint64_t world_switches_ = 0;
};

// Base class for trustlets: small in-TEE programs that consume driverlets.
class Trustlet {
 public:
  virtual ~Trustlet() = default;
  virtual std::string_view name() const = 0;
  virtual Status Run(SecureWorld* tee) = 0;
};

}  // namespace dlt

#endif  // SRC_TEE_SECURE_WORLD_H_
