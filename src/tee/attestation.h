// Session attestation quotes (ROADMAP item 3, PDRIMA-style): a signed claim
// about what a replay session actually executed. The service keeps one
// PCR-style chain per session — extended with every completed invoke's
// integrity measurement (src/core/integrity.h) — and Attest() wraps that
// chain, the session counters and a caller-supplied nonce into a quote signed
// with the service's package key (HMAC-SHA256 stands in for the asymmetric
// scheme, exactly as package sealing does — see src/crypto/hmac.h).
//
// The quote serializes to a small text artifact (repro-file idiom) that
// `driverletc attest` prints and re-verifies; Parse + Verify round-trip it.
#ifndef SRC_TEE_ATTESTATION_H_
#define SRC_TEE_ATTESTATION_H_

#include <string>
#include <string_view>

#include "src/crypto/hmac.h"
#include "src/soc/status.h"

namespace dlt {

struct AttestationQuote {
  std::string driverlet;
  uint64_t session_id = 0;
  uint64_t invokes = 0;
  uint64_t failures = 0;
  uint64_t measurement_mismatches = 0;
  bool quarantined = false;
  // Session PCR: hex chain over per-invoke measurements, in invoke order.
  std::string session_measurement;
  // Golden-vs-measured hex of the most recent invoke (empty before the first).
  std::string last_measurement;
  std::string nonce;    // caller-chosen freshness token (no spaces/newlines)
  std::string mac;      // hex HMAC-SHA256 over the canonical body
};

// Canonical body the MAC covers (every field except |mac| itself).
std::string QuoteBody(const AttestationQuote& q);

// Full text artifact: body plus the trailing "mac <hex>" line.
std::string SerializeQuote(const AttestationQuote& q);
Result<AttestationQuote> ParseQuote(std::string_view text);

// Computes/refreshes |q->mac| with |key|.
void SignQuote(AttestationQuote* q, std::string_view key);
// True when |q.mac| is the valid MAC of the quote body under |key|.
bool VerifyQuote(const AttestationQuote& q, std::string_view key);

}  // namespace dlt

#endif  // SRC_TEE_ATTESTATION_H_
