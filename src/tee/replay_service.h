// ReplayService: the session-oriented secure IO service hosted by one
// SecureWorld. Clients open *sessions* against registered driverlets and issue
// commands through them, GlobalPlatform-style (OpenSession → Invoke →
// CloseSession), so multiple normal-world clients — an MMC block device, USB
// storage, a camera pipeline — coexist over a single TEE instance.
//
// The service owns one shared multi-package TemplateStore and one Replayer per
// registered device class; selection is indexed by (driverlet, entry), so its
// cost does not grow with the number of other registered packages.
//
// Admission: a package registers only if its signature verifies and every
// device its templates touch is mapped into the SecureWorld; a session opens
// only against a registered driverlet and while the session table has room.
// Backpressure is explicit: a full session table or request queue returns
// kBusy, never blocks.
//
// Request queue: Submit enqueues into a bounded FIFO shared by all sessions;
// ProcessQueued drains in submission order (the simulated single-core TEE
// serializes execution, as the paper's replayer does); completions are picked
// up by request id. Buffer views inside queued ReplayArgs are borrowed — the
// caller keeps them alive until the completion is taken.
//
// World-switch cost model: every invocation crosses the SMC boundary twice
// (doorbell in, completion reap out), charged via SecureWorld::WorldSwitch.
// The charge is per *batch*, not per command — the per-session InvocationRing
// lets a client amortize the two switches over a whole vector of commands
// (RingPush × N + one RingDoorbell), while Invoke / Submit are thin wrappers
// over a batch of 1. All three paths funnel into one DoInvokeBatch, so stats,
// quarantine and fault-ladder logic exist exactly once.
#ifndef SRC_TEE_REPLAY_SERVICE_H_
#define SRC_TEE_REPLAY_SERVICE_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/integrity.h"
#include "src/core/replayer.h"
#include "src/core/template_store.h"
#include "src/tee/attestation.h"
#include "src/tee/invocation_ring.h"
#include "src/tee/secure_world.h"

namespace dlt {

using SessionId = uint64_t;

struct ReplayServiceConfig {
  size_t max_sessions = 16;
  size_t queue_depth = 32;  // bounded FIFO across all sessions
  size_t ring_depth = 32;   // per-session invocation ring slots
  // Recovery policy ladder (docs/fault_injection.md). Each registered
  // replayer already retries with soft reset; these knobs add the service
  // rungs above it:
  //   - retry_backoff_us: virtual-time backoff applied to every registered
  //     replayer's divergence retries (0 = retry immediately);
  //   - quarantine_threshold: after this many *consecutive* device-health
  //     failures (aborted / timeout / diverged / io-error) a session is
  //     quarantined — further Invoke/Submit fail fast with kQuarantined and
  //     only CloseSession frees the slot. 0 disables quarantine.
  uint64_t retry_backoff_us = 0;
  uint64_t quarantine_threshold = 4;
  // Execution engine for every registered replayer: compiled programs with
  // per-template interpreter fallback (default), or the pure interpreter
  // (differential-testing oracle / ablation baseline).
  bool use_compiled = true;
  // Integrity policy (docs/architecture.md "Runtime integrity measurement"):
  // when set, a device-health failure whose runtime measurement diverges from
  // the template's golden hash quarantines the session immediately — rung 0
  // of the recovery ladder, below the consecutive-failure threshold. Off by
  // default: measurement is always recorded, enforcement is opt-in.
  bool enforce_integrity = false;
  // Directory for the disk-persisted program cache (program_cache.h). When
  // non-empty, the store loads previously compiled programs from here instead
  // of recompiling and persists fresh ones — fleet restarts over large
  // corpora skip the whole compile warm-up. Empty disables persistence.
  std::string compile_cache_dir;
};

// Per-session accounting, aggregated from each invoke's ReplayStats.
struct SessionStats {
  std::string driverlet;
  uint64_t invokes = 0;           // completed Invoke calls (direct + queued)
  uint64_t failures = 0;          // invokes that returned an error
  uint64_t events_executed = 0;
  uint64_t resets = 0;
  uint64_t attempts = 0;          // execution attempts incl. divergence retries
  uint64_t submitted = 0;         // requests admitted (FIFO Submit + RingPush)
  std::map<std::string, uint64_t> per_template;  // completed, by template name
  uint64_t opened_us = 0;
  uint64_t last_invoke_us = 0;
  // Quarantine ladder state: device-health failures since the last success,
  // and whether the session has been quarantined (terminal until closed).
  uint64_t consecutive_device_failures = 0;
  bool quarantined = false;
  // Runtime integrity (integrity.h): hex measurement of the most recent
  // invoke's final attempt, and how many invokes diverged from their
  // template's golden hash over the session lifetime.
  std::string last_measurement;
  uint64_t measurement_mismatches = 0;
};

class ReplayService {
 public:
  ReplayService(SecureWorld* tee, std::string signing_key, ReplayServiceConfig cfg = {});
  // Fleet-shard constructor: the service drives |store| — typically a
  // TemplateStore::NewShardView() of a population shared across shards —
  // instead of creating a private one. nullptr falls back to a private store.
  ReplayService(SecureWorld* tee, std::string signing_key, ReplayServiceConfig cfg,
                std::unique_ptr<TemplateStore> store);

  // Verifies + admission-checks + loads a driverlet package into the shared
  // store, creating the device class's replayer on first registration.
  // Returns the driverlet name. kCorrupt on signature/framing mismatch,
  // kPermissionDenied when a referenced device is not mapped into the TEE.
  Result<std::string> RegisterDriverlet(const uint8_t* data, size_t len);
  Result<std::string> RegisterDriverlet(const DriverletPackage& pkg);
  // Zero-copy registration of an already-mapped v2 package: admission runs
  // against the seal-time device directory, the store registers header-only
  // templates (event bodies hydrate on first selection), and no template is
  // deep-copied up front. Same replayer wiring as the eager overloads.
  Result<std::string> RegisterDriverlet(std::shared_ptr<const MappedPackage> pkg);
  // Maps + verifies a sealed v2 package file, then registers it zero-copy.
  Result<std::string> RegisterDriverletFile(const std::string& path);

  // ---- Session lifecycle ----
  // kNotFound for an unregistered driverlet; kBusy when the table is full.
  Result<SessionId> OpenSession(std::string_view driverlet);
  Status CloseSession(SessionId id);

  // Synchronous invoke on an open session: a batch of 1 (two world switches).
  // The entry must belong to the session's driverlet (scoped selection).
  Result<ReplayStats> Invoke(SessionId id, std::string_view entry, const ReplayArgs& args);

  // Executes |n| commands as one batch against one session — two world
  // switches total — returning per-command results positionally. This is the
  // transport ReplayFleet uses to dispatch whole ring batches to a shard.
  std::vector<Result<ReplayStats>> InvokeBatch(SessionId id, const RingCmd* cmds, size_t n);

  // ---- Bounded FIFO request queue ----
  // Enqueues a request; kBusy when the queue is full. Returns the request id.
  Result<uint64_t> Submit(SessionId id, std::string entry, ReplayArgs args);
  // Executes up to |max_requests| queued requests in FIFO order *as one
  // batch* (two world switches for the whole drain); requests of sessions
  // closed after submission complete as kNotFound. Returns how many ran.
  size_t ProcessQueued(size_t max_requests = SIZE_MAX);
  // Takes the completion for a processed request. kNotFound while the request
  // is still queued or the id is unknown; each completion is taken once.
  Result<ReplayStats> TakeCompletion(uint64_t request_id);

  // ---- Per-session invocation ring (batched submit/reap) ----
  // The session's ring, created lazily (depth = ReplayServiceConfig::
  // ring_depth). Descriptors pushed here cost no virtual time — the ring is
  // normal-world shared memory; the SMC boundary is crossed only by the
  // doorbell. kNotFound for an unknown session.
  Result<InvocationRing*> Ring(SessionId id);
  // Push one descriptor into the session's ring. kBusy when the ring is full
  // (reap completions to free slots); kQuarantined fails fast like Submit.
  Result<uint64_t> RingPush(SessionId id, std::string entry, ReplayArgs args);
  // Doorbell: drains every pending descriptor as ONE batch under two world
  // switches; per-command results land in the completion ring. Returns how
  // many commands ran — 0 for an empty ring, which charges no switch.
  Result<size_t> RingDoorbell(SessionId id);
  // Reaps the oldest completion in push order; kNotFound while none pending.
  Result<RingCompletion> RingPop(SessionId id);

  // ---- Introspection ----
  Result<SessionStats> Stats(SessionId id) const;
  // Signed attestation quote over the session's PCR chain, counters and the
  // caller's freshness nonce (attestation.h). kNotFound for unknown sessions.
  Result<AttestationQuote> Attest(SessionId id, std::string nonce) const;
  size_t open_sessions() const { return sessions_.size(); }
  // Sessions quarantined over the service lifetime (closed ones included).
  uint64_t quarantined_sessions() const { return quarantined_total_; }
  size_t queue_backlog() const { return queue_.size(); }
  size_t registered_driverlets() const { return replayers_.size(); }
  bool IsRegistered(std::string_view driverlet) const;
  TemplateStore& store() { return *store_; }
  const TemplateStore& store() const { return *store_; }
  // The device class's replayer (reset policy / retry knobs); nullptr when the
  // driverlet is not registered.
  Replayer* replayer(std::string_view driverlet);
  SecureWorld* tee() { return tee_; }

 private:
  struct Session {
    std::string driverlet;
    SessionStats stats;
    std::unique_ptr<InvocationRing> ring;  // lazily created by Ring()
    // Session PCR: extended with every completed invoke's measurement, so the
    // attestation quote commits to the whole execution history in order.
    IntegrityChain pcr;
  };
  struct Pending {
    uint64_t id = 0;
    SessionId session = 0;
    std::string entry;
    ReplayArgs args;   // buffer views borrowed from the submitter
    uint64_t submit_us = 0;
  };
  // One command of a batch, resolved to its execution inputs/output. A null
  // session means the session closed between submit and drain — the command
  // completes as kNotFound without touching the device.
  struct BatchItem {
    Session* session = nullptr;
    std::string_view entry;
    const ReplayArgs* args = nullptr;
    Result<ReplayStats>* out = nullptr;
  };

  // THE execution path: charges the two world switches around a non-empty
  // batch and runs each command through DoInvokeOne. Invoke, ProcessQueued,
  // InvokeBatch and RingDoorbell all funnel here.
  void DoInvokeBatch(BatchItem* items, size_t n);
  // Per-command core: quarantine ladder, replayer invoke, per-session stats.
  Result<ReplayStats> DoInvokeOne(Session& s, std::string_view entry, const ReplayArgs& args);

  SecureWorld* tee_;
  std::string signing_key_;
  ReplayServiceConfig cfg_;
  std::unique_ptr<TemplateStore> store_;
  std::map<std::string, std::unique_ptr<Replayer>, std::less<>> replayers_;
  std::map<SessionId, Session> sessions_;
  std::deque<Pending> queue_;
  std::map<uint64_t, Result<ReplayStats>> completions_;
  SessionId next_session_ = 1;
  uint64_t next_request_ = 1;
  uint64_t quarantined_total_ = 0;
};

}  // namespace dlt

#endif  // SRC_TEE_REPLAY_SERVICE_H_
