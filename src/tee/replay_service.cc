#include "src/tee/replay_service.h"

#include <utility>

#include "src/obs/telemetry.h"
#include "src/soc/log.h"

namespace dlt {

ReplayService::ReplayService(SecureWorld* tee, std::string signing_key,
                             ReplayServiceConfig cfg)
    : ReplayService(tee, std::move(signing_key), cfg, nullptr) {}

ReplayService::ReplayService(SecureWorld* tee, std::string signing_key,
                             ReplayServiceConfig cfg, std::unique_ptr<TemplateStore> store)
    : tee_(tee),
      signing_key_(std::move(signing_key)),
      cfg_(cfg),
      store_(store != nullptr ? std::move(store) : std::make_unique<TemplateStore>()) {}

Result<std::string> ReplayService::RegisterDriverlet(const uint8_t* data, size_t len) {
  DLT_ASSIGN_OR_RETURN(DriverletPackage pkg, OpenPackage(data, len, signing_key_));
  return RegisterDriverlet(pkg);
}

Result<std::string> ReplayService::RegisterDriverlet(const DriverletPackage& pkg) {
  // Admission: every device the templates touch must already be mapped into
  // this SecureWorld — a package naming an unmapped device would fail deep in
  // replay; refuse it at the door instead.
  for (uint16_t dev : TemplateStore::PackageDevices(pkg)) {
    if (!tee_->DeviceMapped(dev)) {
      DLT_LOG(kWarn) << "driverlet " << pkg.driverlet << " refused: device " << dev
                     << " not mapped into the TEE";
      return Status::kPermissionDenied;
    }
  }
  auto it = replayers_.find(pkg.driverlet);
  if (it == replayers_.end()) {
    auto replayer =
        std::make_unique<Replayer>(tee_, signing_key_, store_.get(), pkg.driverlet);
    replayer->set_retry_backoff_us(cfg_.retry_backoff_us);
    replayer->set_engine(cfg_.use_compiled ? ReplayEngine::kCompiled
                                           : ReplayEngine::kInterpreter);
    DLT_RETURN_IF_ERROR(replayer->LoadPackage(pkg));
    replayers_.emplace(pkg.driverlet, std::move(replayer));
  } else {
    // Re-registering a device class replaces its templates only; re-apply the
    // engine in case the config changed between service instances sharing one
    // replayer map (defensive — the map is per-service today).
    it->second->set_engine(cfg_.use_compiled ? ReplayEngine::kCompiled
                                             : ReplayEngine::kInterpreter);
    DLT_RETURN_IF_ERROR(it->second->LoadPackage(pkg));
  }
  Telemetry& tel = Telemetry::Get();
  if (tel.enabled()) {
    tel.metrics().counter("service.packages_registered").Inc();
  }
  return pkg.driverlet;
}

bool ReplayService::IsRegistered(std::string_view driverlet) const {
  return replayers_.find(driverlet) != replayers_.end();
}

Replayer* ReplayService::replayer(std::string_view driverlet) {
  auto it = replayers_.find(driverlet);
  return it == replayers_.end() ? nullptr : it->second.get();
}

Result<SessionId> ReplayService::OpenSession(std::string_view driverlet) {
  Telemetry& tel = Telemetry::Get();
  auto it = replayers_.find(driverlet);
  if (it == replayers_.end()) {
    if (tel.enabled()) {
      tel.metrics().counter("service.sessions_rejected").Inc();
    }
    return Status::kNotFound;  // admission: only verified, registered packages
  }
  if (sessions_.size() >= cfg_.max_sessions) {
    if (tel.enabled()) {
      tel.metrics().counter("service.sessions_rejected").Inc();
    }
    return Status::kBusy;
  }
  SessionId id = next_session_++;
  Session& s = sessions_[id];
  s.driverlet = it->first;
  s.stats.driverlet = it->first;
  s.stats.opened_us = tee_->TimestampUs();
  if (tel.enabled()) {
    tel.metrics().counter("service.sessions_opened").Inc();
  }
  return id;
}

Status ReplayService::CloseSession(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::kNotFound;
  }
  sessions_.erase(it);
  // Requests still queued under this session complete as kNotFound when
  // processed — the submitter learns its session died, FIFO order is kept.
  Telemetry& tel = Telemetry::Get();
  if (tel.enabled()) {
    tel.metrics().counter("service.sessions_closed").Inc();
  }
  return Status::kOk;
}

// Device-health failures climb the quarantine ladder; client errors (uncovered
// input, bad arguments, policy rejections) say nothing about the device and
// neither count nor clear the streak.
static bool IsDeviceHealthFailure(Status s) {
  return s == Status::kAborted || s == Status::kTimeout || s == Status::kDiverged ||
         s == Status::kIoError;
}

Result<ReplayStats> ReplayService::DoInvoke(Session& s, std::string_view entry,
                                            const ReplayArgs& args) {
  Replayer* rep = replayer(s.driverlet);
  if (rep == nullptr) {
    return Status::kBadState;  // registration cannot be revoked; defensive
  }
  Telemetry& tel = Telemetry::Get();
  if (s.stats.quarantined) {
    // Ladder rung 3: fail fast, never touch the device again on this session.
    if (tel.enabled()) {
      tel.metrics().counter("service.quarantine_rejects").Inc();
    }
    return Status::kQuarantined;
  }
  uint64_t t0 = tel.enabled() ? tee_->TimestampUs() : 0;
  Result<ReplayStats> r = rep->Invoke(entry, args);
  ++s.stats.invokes;
  s.stats.last_invoke_us = tee_->TimestampUs();
  if (r.ok()) {
    s.stats.events_executed += r->events_executed;
    s.stats.resets += static_cast<uint64_t>(r->resets);
    s.stats.attempts += static_cast<uint64_t>(r->attempts);
    s.stats.consecutive_device_failures = 0;
    ++s.stats.per_template[r->template_name];
  } else {
    ++s.stats.failures;
    if (IsDeviceHealthFailure(r.status()) && cfg_.quarantine_threshold > 0 &&
        ++s.stats.consecutive_device_failures >= cfg_.quarantine_threshold) {
      s.stats.quarantined = true;
      ++quarantined_total_;
      DLT_LOG(kWarn) << "session on " << s.driverlet << " quarantined after "
                     << s.stats.consecutive_device_failures
                     << " consecutive device failures (last: "
                     << StatusName(r.status()) << ")";
      if (tel.enabled()) {
        tel.metrics().counter("service.quarantines").Inc();
      }
    }
  }
  if (tel.enabled()) {
    tel.metrics().counter("service.invokes").Inc();
    tel.metrics().counter("service.invokes." + s.driverlet).Inc();
    if (!r.ok()) {
      tel.metrics().counter("service.failures").Inc();
    }
    tel.metrics().histogram("service.invoke_us").Record(tee_->TimestampUs() - t0);
  }
  return r;
}

Result<ReplayStats> ReplayService::Invoke(SessionId id, std::string_view entry,
                                          const ReplayArgs& args) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::kNotFound;
  }
  return DoInvoke(it->second, entry, args);
}

Result<uint64_t> ReplayService::Submit(SessionId id, std::string entry, ReplayArgs args) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::kNotFound;
  }
  if (it->second.stats.quarantined) {
    Telemetry& tel = Telemetry::Get();
    if (tel.enabled()) {
      tel.metrics().counter("service.quarantine_rejects").Inc();
    }
    return Status::kQuarantined;  // fail fast instead of occupying the queue
  }
  if (queue_.size() >= cfg_.queue_depth) {
    Telemetry& tel = Telemetry::Get();
    if (tel.enabled()) {
      tel.metrics().counter("service.queue_rejects").Inc();
    }
    return Status::kBusy;
  }
  Pending p;
  p.id = next_request_++;
  p.session = id;
  p.entry = std::move(entry);
  p.args = std::move(args);
  p.submit_us = tee_->TimestampUs();
  queue_.push_back(std::move(p));
  ++it->second.stats.submitted;
  return queue_.back().id;
}

size_t ReplayService::ProcessQueued(size_t max_requests) {
  Telemetry& tel = Telemetry::Get();
  size_t processed = 0;
  while (processed < max_requests && !queue_.empty()) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    if (tel.enabled()) {
      tel.metrics().histogram("service.queue_wait_us").Record(tee_->TimestampUs() -
                                                              p.submit_us);
    }
    auto it = sessions_.find(p.session);
    if (it == sessions_.end()) {
      completions_.emplace(p.id, Result<ReplayStats>(Status::kNotFound));
    } else {
      completions_.emplace(p.id, DoInvoke(it->second, p.entry, p.args));
    }
    ++processed;
  }
  return processed;
}

Result<ReplayStats> ReplayService::TakeCompletion(uint64_t request_id) {
  auto it = completions_.find(request_id);
  if (it == completions_.end()) {
    return Status::kNotFound;
  }
  Result<ReplayStats> r = std::move(it->second);
  completions_.erase(it);
  return r;
}

Result<SessionStats> ReplayService::Stats(SessionId id) const {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::kNotFound;
  }
  return it->second.stats;
}

}  // namespace dlt
