#include "src/tee/replay_service.h"

#include <utility>

#include "src/obs/edge.h"
#include "src/obs/telemetry.h"
#include "src/soc/log.h"

namespace dlt {

namespace {
bool g_ring_wrap_quirk = false;
}  // namespace

void SetRingWrapQuirkForTest(bool enabled) { g_ring_wrap_quirk = enabled; }
bool RingWrapQuirkForTest() { return g_ring_wrap_quirk; }

ReplayService::ReplayService(SecureWorld* tee, std::string signing_key,
                             ReplayServiceConfig cfg)
    : ReplayService(tee, std::move(signing_key), cfg, nullptr) {}

ReplayService::ReplayService(SecureWorld* tee, std::string signing_key,
                             ReplayServiceConfig cfg, std::unique_ptr<TemplateStore> store)
    : tee_(tee),
      signing_key_(std::move(signing_key)),
      cfg_(cfg),
      store_(store != nullptr ? std::move(store) : std::make_unique<TemplateStore>()) {
  if (!cfg_.compile_cache_dir.empty()) {
    store_->set_compile_cache_dir(cfg_.compile_cache_dir);
  }
}

Result<std::string> ReplayService::RegisterDriverlet(const uint8_t* data, size_t len) {
  DLT_ASSIGN_OR_RETURN(DriverletPackage pkg, OpenPackage(data, len, signing_key_));
  return RegisterDriverlet(pkg);
}

Result<std::string> ReplayService::RegisterDriverlet(const DriverletPackage& pkg) {
  // Admission: every device the templates touch must already be mapped into
  // this SecureWorld — a package naming an unmapped device would fail deep in
  // replay; refuse it at the door instead.
  for (uint16_t dev : TemplateStore::PackageDevices(pkg)) {
    if (!tee_->DeviceMapped(dev)) {
      DLT_LOG(kWarn) << "driverlet " << pkg.driverlet << " refused: device " << dev
                     << " not mapped into the TEE";
      EdgeCoverage::Get().Hit(Edge::kServiceRegisterReject);
      return Status::kPermissionDenied;
    }
  }
  auto it = replayers_.find(pkg.driverlet);
  if (it == replayers_.end()) {
    auto replayer =
        std::make_unique<Replayer>(tee_, signing_key_, store_.get(), pkg.driverlet);
    replayer->set_retry_backoff_us(cfg_.retry_backoff_us);
    replayer->set_engine(cfg_.use_compiled ? ReplayEngine::kCompiled
                                           : ReplayEngine::kInterpreter);
    DLT_RETURN_IF_ERROR(replayer->LoadPackage(pkg));
    replayers_.emplace(pkg.driverlet, std::move(replayer));
  } else {
    // Re-registering a device class replaces its templates only; re-apply the
    // engine in case the config changed between service instances sharing one
    // replayer map (defensive — the map is per-service today).
    it->second->set_engine(cfg_.use_compiled ? ReplayEngine::kCompiled
                                             : ReplayEngine::kInterpreter);
    DLT_RETURN_IF_ERROR(it->second->LoadPackage(pkg));
  }
  EdgeCoverage::Get().Hit(Edge::kServiceRegister);
  Telemetry& tel = Telemetry::Get();
  if (tel.enabled()) {
    tel.metrics().counter("service.packages_registered").Inc();
  }
  return pkg.driverlet;
}

Result<std::string> ReplayService::RegisterDriverletFile(const std::string& path) {
  DLT_ASSIGN_OR_RETURN(std::shared_ptr<const MappedPackage> pkg,
                       MappedPackage::Map(path, signing_key_));
  return RegisterDriverlet(std::move(pkg));
}

Result<std::string> ReplayService::RegisterDriverlet(std::shared_ptr<const MappedPackage> pkg) {
  if (pkg == nullptr) {
    return Status::kInvalidArg;
  }
  // Same admission gate as the eager path, fed from the seal-time device
  // directory — the whole point is to not parse 100k event bodies here.
  const PackageView& view = pkg->view();
  std::set<uint16_t> devs;
  for (size_t i = 0; i < view.size(); ++i) {
    const std::vector<uint16_t>& d = view.devices(i);
    devs.insert(d.begin(), d.end());
  }
  std::string name = pkg->driverlet();
  for (uint16_t dev : devs) {
    if (!tee_->DeviceMapped(dev)) {
      DLT_LOG(kWarn) << "driverlet " << name << " refused: device " << dev
                     << " not mapped into the TEE";
      EdgeCoverage::Get().Hit(Edge::kServiceRegisterReject);
      return Status::kPermissionDenied;
    }
  }
  DLT_RETURN_IF_ERROR(store_->AddMappedPackage(std::move(pkg)));
  auto it = replayers_.find(name);
  if (it == replayers_.end()) {
    auto replayer = std::make_unique<Replayer>(tee_, signing_key_, store_.get(), name);
    replayer->set_retry_backoff_us(cfg_.retry_backoff_us);
    replayer->set_engine(cfg_.use_compiled ? ReplayEngine::kCompiled
                                           : ReplayEngine::kInterpreter);
    replayers_.emplace(name, std::move(replayer));
  } else {
    it->second->set_engine(cfg_.use_compiled ? ReplayEngine::kCompiled
                                             : ReplayEngine::kInterpreter);
  }
  EdgeCoverage::Get().Hit(Edge::kServiceRegister);
  Telemetry& tel = Telemetry::Get();
  if (tel.enabled()) {
    tel.metrics().counter("service.packages_registered").Inc();
  }
  return name;
}

bool ReplayService::IsRegistered(std::string_view driverlet) const {
  return replayers_.find(driverlet) != replayers_.end();
}

Replayer* ReplayService::replayer(std::string_view driverlet) {
  auto it = replayers_.find(driverlet);
  return it == replayers_.end() ? nullptr : it->second.get();
}

Result<SessionId> ReplayService::OpenSession(std::string_view driverlet) {
  Telemetry& tel = Telemetry::Get();
  auto it = replayers_.find(driverlet);
  if (it == replayers_.end()) {
    EdgeCoverage::Get().Hit(Edge::kServiceOpenReject);
    if (tel.enabled()) {
      tel.metrics().counter("service.sessions_rejected").Inc();
    }
    return Status::kNotFound;  // admission: only verified, registered packages
  }
  if (sessions_.size() >= cfg_.max_sessions) {
    EdgeCoverage::Get().Hit(Edge::kServiceOpenReject);
    if (tel.enabled()) {
      tel.metrics().counter("service.sessions_rejected").Inc();
    }
    return Status::kBusy;
  }
  SessionId id = next_session_++;
  Session& s = sessions_[id];
  s.driverlet = it->first;
  s.stats.driverlet = it->first;
  s.stats.opened_us = tee_->TimestampUs();
  EdgeCoverage::Get().Hit(Edge::kServiceOpen);
  if (tel.enabled()) {
    tel.metrics().counter("service.sessions_opened").Inc();
  }
  return id;
}

Status ReplayService::CloseSession(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::kNotFound;
  }
  sessions_.erase(it);
  // Requests still queued under this session complete as kNotFound when
  // processed — the submitter learns its session died, FIFO order is kept.
  EdgeCoverage::Get().Hit(Edge::kServiceClose);
  Telemetry& tel = Telemetry::Get();
  if (tel.enabled()) {
    tel.metrics().counter("service.sessions_closed").Inc();
  }
  return Status::kOk;
}

// Device-health failures climb the quarantine ladder; client errors (uncovered
// input, bad arguments, policy rejections) say nothing about the device and
// neither count nor clear the streak.
static bool IsDeviceHealthFailure(Status s) {
  return s == Status::kAborted || s == Status::kTimeout || s == Status::kDiverged ||
         s == Status::kIoError;
}

Result<ReplayStats> ReplayService::DoInvokeOne(Session& s, std::string_view entry,
                                               const ReplayArgs& args) {
  Replayer* rep = replayer(s.driverlet);
  if (rep == nullptr) {
    return Status::kBadState;  // registration cannot be revoked; defensive
  }
  Telemetry& tel = Telemetry::Get();
  if (s.stats.quarantined) {
    // Ladder rung 3: fail fast, never touch the device again on this session.
    EdgeCoverage::Get().Hit(Edge::kServiceQuarantineReject);
    if (tel.enabled()) {
      tel.metrics().counter("service.quarantine_rejects").Inc();
    }
    return Status::kQuarantined;
  }
  uint64_t t0 = tel.enabled() ? tee_->TimestampUs() : 0;
  Result<ReplayStats> r = rep->Invoke(entry, args);
  ++s.stats.invokes;
  s.stats.last_invoke_us = tee_->TimestampUs();
  // Runtime integrity: fold the final attempt's measurement into the session
  // PCR and record it, whether or not the invoke succeeded — the attestation
  // quote commits to failures too. A divergence from the template's golden
  // hash is counted here; whether it *quarantines* depends on the policy knob.
  const MeasurementRecord& m = rep->last_measurement();
  bool mismatch = false;
  if (m.valid) {
    s.pcr.Extend(m.digest);
    s.stats.last_measurement = m.Hex();
    if (!m.matches_golden) {
      mismatch = true;
      ++s.stats.measurement_mismatches;
      EdgeCoverage::Get().Hit(Edge::kServiceMeasurementMismatch);
      if (tel.enabled()) {
        tel.metrics().counter("service.integrity_mismatches").Inc();
      }
    }
  }
  if (r.ok()) {
    EdgeCoverage::Get().Hit(Edge::kServiceInvokeOk);
    s.stats.events_executed += r->events_executed;
    s.stats.resets += static_cast<uint64_t>(r->resets);
    s.stats.attempts += static_cast<uint64_t>(r->attempts);
    s.stats.consecutive_device_failures = 0;
    ++s.stats.per_template[r->template_name];
  } else {
    EdgeCoverage::Get().Hit(Edge::kServiceInvokeFail);
    ++s.stats.failures;
    if (cfg_.enforce_integrity && mismatch && IsDeviceHealthFailure(r.status())) {
      // Ladder rung 0: the execution trace itself diverged from the template's
      // golden measurement — quarantine immediately, below the consecutive-
      // failure threshold. The streak still advances so telemetry stays
      // comparable with the threshold-only policy.
      ++s.stats.consecutive_device_failures;
      s.stats.quarantined = true;
      ++quarantined_total_;
      DLT_LOG(kWarn) << "session on " << s.driverlet
                     << " quarantined: runtime measurement diverged from golden ("
                     << StatusName(r.status()) << ")";
      EdgeCoverage::Get().Hit(Edge::kServiceIntegrityQuarantine);
      if (tel.enabled()) {
        tel.metrics().counter("service.integrity_quarantines").Inc();
        tel.metrics().counter("service.quarantines").Inc();
      }
    } else if (IsDeviceHealthFailure(r.status()) && cfg_.quarantine_threshold > 0 &&
               ++s.stats.consecutive_device_failures >= cfg_.quarantine_threshold) {
      s.stats.quarantined = true;
      ++quarantined_total_;
      DLT_LOG(kWarn) << "session on " << s.driverlet << " quarantined after "
                     << s.stats.consecutive_device_failures
                     << " consecutive device failures (last: "
                     << StatusName(r.status()) << ")";
      EdgeCoverage::Get().Hit(Edge::kServiceQuarantine);
      if (tel.enabled()) {
        tel.metrics().counter("service.quarantines").Inc();
      }
    }
  }
  if (tel.enabled()) {
    tel.metrics().counter("service.invokes").Inc();
    tel.metrics().counter("service.invokes." + s.driverlet).Inc();
    if (!r.ok()) {
      tel.metrics().counter("service.failures").Inc();
    }
    tel.metrics().histogram("service.invoke_us").Record(tee_->TimestampUs() - t0);
  }
  return r;
}

void ReplayService::DoInvokeBatch(BatchItem* items, size_t n) {
  if (n == 0) {
    return;  // nothing pending: the SMC boundary is not crossed at all
  }
  Telemetry& tel = Telemetry::Get();
  EdgeCoverage::Get().Hit(Edge::kServiceBatch);
  tee_->WorldSwitch("smc_invoke", 0);
  uint64_t batch_t0 = tee_->TimestampUs();
  for (size_t i = 0; i < n; ++i) {
    if (tel.enabled()) {
      // In-batch queue wait: how long this command sat behind its batch
      // siblings after the doorbell (virtual time). Grows with batch size —
      // the latency cost that buys the switch amortization.
      tel.metrics().histogram("ring.queue_wait_us").Record(tee_->TimestampUs() - batch_t0);
    }
    if (items[i].session == nullptr) {
      EdgeCoverage::Get().Hit(Edge::kServiceSessionGone);
      *items[i].out = Status::kNotFound;  // session closed before the drain
    } else {
      *items[i].out = DoInvokeOne(*items[i].session, items[i].entry, *items[i].args);
    }
  }
  tee_->WorldSwitch("smc_return", 1);
}

Result<ReplayStats> ReplayService::Invoke(SessionId id, std::string_view entry,
                                          const ReplayArgs& args) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::kNotFound;
  }
  Result<ReplayStats> out{Status::kBadState};
  BatchItem item{&it->second, entry, &args, &out};
  DoInvokeBatch(&item, 1);
  return out;
}

std::vector<Result<ReplayStats>> ReplayService::InvokeBatch(SessionId id, const RingCmd* cmds,
                                                            size_t n) {
  std::vector<Result<ReplayStats>> out(n, Result<ReplayStats>(Status::kBadState));
  if (n == 0) {
    return out;
  }
  auto it = sessions_.find(id);
  Session* s = it == sessions_.end() ? nullptr : &it->second;
  std::vector<BatchItem> items(n);
  for (size_t i = 0; i < n; ++i) {
    items[i] = BatchItem{s, cmds[i].entry, &cmds[i].args, &out[i]};
  }
  DoInvokeBatch(items.data(), n);
  return out;
}

Result<uint64_t> ReplayService::Submit(SessionId id, std::string entry, ReplayArgs args) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::kNotFound;
  }
  if (it->second.stats.quarantined) {
    Telemetry& tel = Telemetry::Get();
    if (tel.enabled()) {
      tel.metrics().counter("service.quarantine_rejects").Inc();
    }
    return Status::kQuarantined;  // fail fast instead of occupying the queue
  }
  if (queue_.size() >= cfg_.queue_depth) {
    EdgeCoverage::Get().Hit(Edge::kServiceQueueReject);
    Telemetry& tel = Telemetry::Get();
    if (tel.enabled()) {
      tel.metrics().counter("service.queue_rejects").Inc();
    }
    return Status::kBusy;
  }
  EdgeCoverage::Get().Hit(Edge::kServiceQueueSubmit);
  Pending p;
  p.id = next_request_++;
  p.session = id;
  p.entry = std::move(entry);
  p.args = std::move(args);
  p.submit_us = tee_->TimestampUs();
  queue_.push_back(std::move(p));
  ++it->second.stats.submitted;
  return queue_.back().id;
}

size_t ReplayService::ProcessQueued(size_t max_requests) {
  Telemetry& tel = Telemetry::Get();
  // Pop the whole drain up front, then execute it as ONE batch — the FIFO
  // path pays two world switches per drain, not per request. queue_wait_us
  // measures submit → drain start; the in-batch wait behind earlier commands
  // of the same drain lands in ring.queue_wait_us (recorded by the batch).
  std::vector<Pending> drain;
  while (drain.size() < max_requests && !queue_.empty()) {
    drain.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  if (drain.empty()) {
    return 0;
  }
  EdgeCoverage::Get().Hit(Edge::kServiceQueueDrain);
  std::vector<Result<ReplayStats>> results(drain.size(),
                                           Result<ReplayStats>(Status::kBadState));
  std::vector<BatchItem> items(drain.size());
  for (size_t i = 0; i < drain.size(); ++i) {
    if (tel.enabled()) {
      tel.metrics().histogram("service.queue_wait_us").Record(tee_->TimestampUs() -
                                                              drain[i].submit_us);
    }
    auto it = sessions_.find(drain[i].session);
    items[i] = BatchItem{it == sessions_.end() ? nullptr : &it->second, drain[i].entry,
                         &drain[i].args, &results[i]};
  }
  DoInvokeBatch(items.data(), items.size());
  for (size_t i = 0; i < drain.size(); ++i) {
    completions_.emplace(drain[i].id, std::move(results[i]));
  }
  return drain.size();
}

Result<InvocationRing*> ReplayService::Ring(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::kNotFound;
  }
  if (it->second.ring == nullptr) {
    it->second.ring = std::make_unique<InvocationRing>(cfg_.ring_depth);
  }
  return it->second.ring.get();
}

Result<uint64_t> ReplayService::RingPush(SessionId id, std::string entry, ReplayArgs args) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::kNotFound;
  }
  Telemetry& tel = Telemetry::Get();
  if (it->second.stats.quarantined) {
    if (tel.enabled()) {
      tel.metrics().counter("service.quarantine_rejects").Inc();
    }
    return Status::kQuarantined;  // fail fast instead of occupying a slot
  }
  if (it->second.ring == nullptr) {
    it->second.ring = std::make_unique<InvocationRing>(cfg_.ring_depth);
  }
  Result<uint64_t> seq = it->second.ring->Push(std::move(entry), std::move(args));
  if (seq.ok()) {
    ++it->second.stats.submitted;
    if (tel.enabled()) {
      tel.metrics().gauge("ring.sq_depth").Set(it->second.ring->submission_depth());
    }
  } else {
    EdgeCoverage::Get().Hit(Edge::kRingFull);
    if (tel.enabled()) {
      tel.metrics().counter("ring.full_rejects").Inc();
    }
  }
  return seq;
}

Result<size_t> ReplayService::RingDoorbell(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::kNotFound;
  }
  Session& s = it->second;
  if (s.ring == nullptr) {
    return size_t{0};
  }
  InvocationRing& ring = *s.ring;
  const uint64_t begin = ring.drain_begin();
  const uint64_t end = ring.drain_end();
  const size_t n = static_cast<size_t>(end - begin);
  Telemetry& tel = Telemetry::Get();
  if (tel.enabled()) {
    tel.metrics().counter("ring.doorbells").Inc();
    tel.metrics().histogram("ring.batch_size").Record(n);
  }
  if (n == 0) {
    EdgeCoverage::Get().Hit(Edge::kRingEmptyDoorbell);
    return size_t{0};  // empty doorbell: no switch charged, nothing to do
  }
  EdgeCoverage::Get().Hit(Edge::kRingDoorbell);
  std::vector<BatchItem> items;
  items.reserve(n);
  for (uint64_t seq = begin; seq != end; ++seq) {
    RingCmd& c = ring.command(seq);
    items.push_back(BatchItem{&s, c.entry, &c.args, &ring.result_slot(seq)});
  }
  DoInvokeBatch(items.data(), items.size());
  ring.FinishDrain(end);
  if (tel.enabled()) {
    tel.metrics().gauge("ring.sq_depth").Set(ring.submission_depth());
    tel.metrics().gauge("ring.cq_depth").Set(ring.completion_depth());
  }
  return n;
}

Result<RingCompletion> ReplayService::RingPop(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::kNotFound;
  }
  if (it->second.ring == nullptr) {
    return Status::kNotFound;
  }
  Result<RingCompletion> c = it->second.ring->PopCompletion();
  if (c.ok()) {
    EdgeCoverage::Get().Hit(Edge::kRingPop);
    Telemetry& tel = Telemetry::Get();
    if (tel.enabled()) {
      tel.metrics().gauge("ring.cq_depth").Set(it->second.ring->completion_depth());
    }
  } else {
    EdgeCoverage::Get().Hit(Edge::kRingPopEmpty);
  }
  return c;
}

Result<ReplayStats> ReplayService::TakeCompletion(uint64_t request_id) {
  auto it = completions_.find(request_id);
  if (it == completions_.end()) {
    return Status::kNotFound;
  }
  Result<ReplayStats> r = std::move(it->second);
  completions_.erase(it);
  return r;
}

Result<SessionStats> ReplayService::Stats(SessionId id) const {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::kNotFound;
  }
  return it->second.stats;
}

Result<AttestationQuote> ReplayService::Attest(SessionId id, std::string nonce) const {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::kNotFound;
  }
  const Session& s = it->second;
  AttestationQuote q;
  q.driverlet = s.driverlet;
  q.session_id = id;
  q.invokes = s.stats.invokes;
  q.failures = s.stats.failures;
  q.measurement_mismatches = s.stats.measurement_mismatches;
  q.quarantined = s.stats.quarantined;
  q.session_measurement = s.pcr.Hex();
  q.last_measurement = s.stats.last_measurement;
  q.nonce = std::move(nonce);
  SignQuote(&q, signing_key_);
  return q;
}

}  // namespace dlt
