#include "src/tee/secure_world.h"

#include "src/obs/telemetry.h"
#include "src/soc/log.h"

namespace dlt {

SecureWorld::SecureWorld(Machine* machine, PhysAddr pool_base, uint64_t pool_size,
                         uint64_t rng_seed)
    : machine_(machine), pool_(pool_base, pool_size), rng_state_(rng_seed | 1) {
  // Carve the TEE RAM reservation out of the normal world.
  machine_->tzasc().AssignRegion(pool_base, pool_size, World::kSecure);
}

Status SecureWorld::MapDevice(uint16_t device_id) {
  DLT_ASSIGN_OR_RETURN(Machine::DeviceEntry e, machine_->DeviceById(device_id));
  if (machine_->tzasc().OwnerOf(e.base) != World::kSecure) {
    // Firmware did not assign this instance to the TEE; mapping it would let
    // the normal world interfere with secure IO.
    return Status::kPermissionDenied;
  }
  mapped_.insert(device_id);
  return Status::kOk;
}

void SecureWorld::ChargeNs(uint64_t ns) {
  ns_accum_ += ns;
  if (ns_accum_ >= 1000) {
    machine_->clock().Advance(ns_accum_ / 1000);
    ns_accum_ %= 1000;
  }
}

Result<uint32_t> SecureWorld::RegRead32(uint16_t device, uint64_t offset) {
  if (!DeviceMapped(device)) {
    return Status::kPermissionDenied;
  }
  DLT_ASSIGN_OR_RETURN(Machine::DeviceEntry e, machine_->DeviceById(device));
  if (offset >= e.size) {
    return Status::kOutOfRange;
  }
  ChargeNs(machine_->latency().mmio_access_ns);
  return machine_->mem().Read32(World::kSecure, e.base + offset);
}

Status SecureWorld::RegWrite32(uint16_t device, uint64_t offset, uint32_t value) {
  if (!DeviceMapped(device)) {
    return Status::kPermissionDenied;
  }
  DLT_ASSIGN_OR_RETURN(Machine::DeviceEntry e, machine_->DeviceById(device));
  if (offset >= e.size) {
    return Status::kOutOfRange;
  }
  ChargeNs(machine_->latency().mmio_access_ns);
  return machine_->mem().Write32(World::kSecure, e.base + offset, value);
}

Status SecureWorld::RegReadBlock32(uint16_t device, uint64_t offset, uint32_t* out,
                                   size_t words) {
  if (words == 0) {
    return Status::kOk;
  }
  if (!DeviceMapped(device)) {
    return Status::kPermissionDenied;
  }
  DLT_ASSIGN_OR_RETURN(Machine::DeviceEntry e, machine_->DeviceById(device));
  if (offset >= e.size) {
    return Status::kOutOfRange;
  }
  Result<AddressSpace::MmioCursor> cur = machine_->mem().MmioAt(World::kSecure, e.base + offset);
  if (!cur.ok()) {
    // Register not backed by an MMIO window (test fixtures): keep the exact
    // per-word base-class semantics.
    return ReplayContext::RegReadBlock32(device, offset, out, words);
  }
  for (size_t i = 0; i < words; ++i) {
    ChargeNs(machine_->latency().mmio_access_ns);
    out[i] = cur->Read();
  }
  return Status::kOk;
}

Status SecureWorld::RegWriteBlock32(uint16_t device, uint64_t offset, const uint32_t* values,
                                    size_t words) {
  if (words == 0) {
    return Status::kOk;
  }
  if (!DeviceMapped(device)) {
    return Status::kPermissionDenied;
  }
  DLT_ASSIGN_OR_RETURN(Machine::DeviceEntry e, machine_->DeviceById(device));
  if (offset >= e.size) {
    return Status::kOutOfRange;
  }
  Result<AddressSpace::MmioCursor> cur = machine_->mem().MmioAt(World::kSecure, e.base + offset);
  if (!cur.ok()) {
    return ReplayContext::RegWriteBlock32(device, offset, values, words);
  }
  for (size_t i = 0; i < words; ++i) {
    ChargeNs(machine_->latency().mmio_access_ns);
    cur->Write(values[i]);
  }
  return Status::kOk;
}

Result<uint32_t> SecureWorld::MemRead32(PhysAddr addr) {
  if (!AddressAllowed(addr, 4)) {
    return Status::kPermissionDenied;
  }
  return machine_->mem().Read32(World::kSecure, addr);
}

Status SecureWorld::MemWrite32(PhysAddr addr, uint32_t value) {
  if (!AddressAllowed(addr, 4)) {
    return Status::kPermissionDenied;
  }
  return machine_->mem().Write32(World::kSecure, addr, value);
}

Status SecureWorld::MemCopyIn(PhysAddr dst, const uint8_t* src, size_t len) {
  if (!AddressAllowed(dst, len)) {
    return Status::kPermissionDenied;
  }
  return machine_->mem().WriteBytes(World::kSecure, dst, src, len);
}

Status SecureWorld::MemCopyOut(uint8_t* dst, PhysAddr src, size_t len) {
  if (!AddressAllowed(src, len)) {
    return Status::kPermissionDenied;
  }
  return machine_->mem().ReadBytes(World::kSecure, src, dst, len);
}

Result<PhysAddr> SecureWorld::DmaAlloc(uint64_t size) { return pool_.Alloc(size); }

void SecureWorld::DmaReleaseAll() { pool_.ReleaseAll(); }

Result<uint32_t> SecureWorld::RandomU32() {
  // Hardware RNG, as provided by the TEE kernel (paper §5).
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  return static_cast<uint32_t>(rng_state_);
}

uint64_t SecureWorld::TimestampUs() { return machine_->clock().now_us(); }

void SecureWorld::WorldSwitch(std::string_view label, uint64_t direction) {
  machine_->clock().Advance(machine_->latency().world_switch_us);
  ++world_switches_;
  Telemetry& t = Telemetry::Get();
  if (t.enabled()) {
    t.metrics().counter("tee.world_switches").Inc();
    t.Instant(TraceKind::kWorldSwitch, machine_->clock().now_us(), label, direction);
  }
}

Status SecureWorld::WaitForIrq(int line, uint64_t timeout_us) {
  SimClock& clock = machine_->clock();
  uint64_t t0 = clock.now_us();
  uint64_t deadline = t0 + timeout_us;
  Status result = Status::kOk;
  while (!machine_->irq().Pending(line)) {
    std::optional<uint64_t> next = clock.NextEventTime();
    if (!next.has_value() || *next > deadline) {
      clock.AdvanceTo(deadline);
      result = Status::kTimeout;
      break;
    }
    clock.StepToNextEvent();
  }
  if (Ok(result)) {
    clock.Advance(machine_->latency().irq_delivery_us);
  }
  Telemetry& t = Telemetry::Get();
  if (t.enabled()) {
    uint64_t dur = clock.now_us() - t0;
    t.metrics().histogram("tee.irq_wait_us").Record(dur);
    if (!Ok(result)) {
      t.metrics().counter("tee.irq_wait_timeouts").Inc();
    }
    t.Span(TraceKind::kIrqWait, t0, dur, "irq_wait", static_cast<uint64_t>(line),
           Ok(result) ? 0 : 1);
  }
  return result;
}

void SecureWorld::DelayUs(uint64_t us) { machine_->clock().Advance(us); }

Status SecureWorld::SoftResetDevice(uint16_t device) {
  if (!DeviceMapped(device)) {
    return Status::kPermissionDenied;
  }
  DLT_ASSIGN_OR_RETURN(Machine::DeviceEntry e, machine_->DeviceById(device));
  machine_->clock().Advance(machine_->latency().device_reset_us);
  e.dev->SoftReset();
  return Status::kOk;
}

bool SecureWorld::AddressAllowed(PhysAddr addr, size_t len) {
  return pool_.Contains(addr, len);
}

void SecureWorld::ChargeReplayOverheadNs(uint64_t ns) { ChargeNs(ns); }

}  // namespace dlt
