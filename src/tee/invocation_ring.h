// InvocationRing: a bounded per-session submission/completion ring — the
// batched invoke transport of the replay service (docs/replay_service.md).
// Clients write {entry, args} descriptors into submission slots and ring a
// doorbell; the service drains every pending descriptor as ONE batch under two
// world switches and files per-command ReplayStats into the matching
// completion slots, which the client reaps in sequence order.
//
// Slot accounting follows the VCHIQ slot queue simulated in src/soc (and
// io_uring's SQ/CQ): a slot is occupied from Push until its completion is
// reaped, so the completion side can never overflow — Push is the only place
// backpressure (kBusy) appears. Counters are monotonic sequence numbers
// (pushed/drained/reaped); slot index is seq % depth, so wrap-around is the
// normal steady state, not a special case.
#ifndef SRC_TEE_INVOCATION_RING_H_
#define SRC_TEE_INVOCATION_RING_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/replay_args.h"
#include "src/obs/edge.h"
#include "src/soc/status.h"

namespace dlt {

// Test hook for the boundary fuzzer's regression guard: when set, PopCompletion
// mis-orders reaps after the ring has wrapped (it reads the *sibling* slot of
// the wrapped index), breaking the strictly-increasing-seq invariant the fuzzer
// asserts. Never enabled in production paths.
void SetRingWrapQuirkForTest(bool enabled);
bool RingWrapQuirkForTest();

// One submission descriptor. Buffer views inside |args| are borrowed — the
// client keeps the memory alive until the command's completion is reaped.
struct RingCmd {
  std::string entry;
  ReplayArgs args;
};

// One reaped completion: the sequence number assigned at Push plus the
// per-command replay result.
struct RingCompletion {
  uint64_t seq = 0;
  Result<ReplayStats> result{Status::kBadState};
};

class InvocationRing {
 public:
  explicit InvocationRing(size_t depth) : slots_(depth == 0 ? 1 : depth) {}

  size_t depth() const { return slots_.size(); }
  // SQ depth: pushed, but the doorbell has not drained them yet.
  size_t submission_depth() const { return static_cast<size_t>(pushed_ - drained_); }
  // CQ depth: executed, but the client has not reaped the completion yet.
  size_t completion_depth() const { return static_cast<size_t>(drained_ - reaped_); }
  // Occupied slots (pending descriptor or un-reaped completion).
  size_t in_flight() const { return static_cast<size_t>(pushed_ - reaped_); }

  // Client side: writes one descriptor; returns its sequence number. kBusy
  // when every slot is occupied — reaping completions frees slots.
  Result<uint64_t> Push(std::string entry, ReplayArgs args) {
    if (in_flight() >= slots_.size()) {
      return Status::kBusy;
    }
    EdgeCoverage::Get().Hit(Edge::kRingPush);
    if (pushed_ >= slots_.size()) {
      EdgeCoverage::Get().Hit(Edge::kRingWrap);  // slot index has wrapped
    }
    Slot& s = slots_[pushed_ % slots_.size()];
    s.seq = pushed_;
    s.cmd.entry = std::move(entry);
    s.cmd.args = std::move(args);
    s.result = Status::kBadState;
    return pushed_++;
  }

  // Client side: reaps the oldest completion, in sequence order. kNotFound
  // while no drained command is waiting to be reaped.
  Result<RingCompletion> PopCompletion() {
    if (reaped_ == drained_) {
      return Status::kNotFound;
    }
    uint64_t idx = reaped_;
    if (RingWrapQuirkForTest() && reaped_ >= slots_.size() && slots_.size() > 1) {
      // Planted wrap bug (see SetRingWrapQuirkForTest): reap the sibling slot
      // once the sequence space has wrapped past the slot array.
      idx = reaped_ ^ 1;
    }
    Slot& s = slots_[idx % slots_.size()];
    RingCompletion c;
    c.seq = s.seq;
    c.result = std::move(s.result);
    ++reaped_;
    return c;
  }

  // ---- Service drain side (doorbell) ----
  // The batch a doorbell executes is the sequence window [drain_begin,
  // drain_end). The service writes each command's result into result_slot(seq)
  // and then publishes the whole batch with FinishDrain(drain_end).
  uint64_t drain_begin() const { return drained_; }
  uint64_t drain_end() const { return pushed_; }
  // Monotonic sequence counters — the fuzzer's ring-accounting invariant
  // asserts pushed() >= drained() >= reaped() and all three never regress.
  uint64_t pushed() const { return pushed_; }
  uint64_t drained() const { return drained_; }
  uint64_t reaped() const { return reaped_; }
  RingCmd& command(uint64_t seq) { return slots_[seq % slots_.size()].cmd; }
  Result<ReplayStats>& result_slot(uint64_t seq) { return slots_[seq % slots_.size()].result; }
  void FinishDrain(uint64_t upto) { drained_ = upto; }

 private:
  struct Slot {
    uint64_t seq = 0;
    RingCmd cmd;
    Result<ReplayStats> result{Status::kBadState};
  };

  std::vector<Slot> slots_;
  uint64_t pushed_ = 0;   // next sequence number to assign
  uint64_t drained_ = 0;  // commands executed with their completion filed
  uint64_t reaped_ = 0;   // completions handed back to the client
};

}  // namespace dlt

#endif  // SRC_TEE_INVOCATION_RING_H_
