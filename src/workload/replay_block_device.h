// BlockDevice adapter over a driverlet Replayer: the storage path trustlets use
// (paper §7.3.1: "the tests issue their disk accesses in TEE"). Requests are
// split into chunks whose block counts the recorded templates cover; every
// operation is synchronous — the overhead source the paper identifies (§7.3.2).
#ifndef SRC_WORKLOAD_REPLAY_BLOCK_DEVICE_H_
#define SRC_WORKLOAD_REPLAY_BLOCK_DEVICE_H_

#include <string>

#include "src/core/replayer.h"
#include "src/kern/block_layer.h"

namespace dlt {

class ReplayBlockDevice : public BlockDevice {
 public:
  ReplayBlockDevice(Replayer* replayer, std::string entry)
      : replayer_(replayer), entry_(std::move(entry)) {}

  Status Read(uint64_t lba, uint32_t count, uint8_t* out) override;
  Status Write(uint64_t lba, uint32_t count, const uint8_t* data) override;
  Status Flush() override { return Status::kOk; }  // every write is synchronous
  uint64_t io_ops() const override { return ops_; }

  // Per-template invocation counts, for the Table 9 breakdown.
  const std::map<std::string, uint64_t>& invocations() const { return invocations_; }

 private:
  Status DoOp(uint64_t rw, uint64_t lba, uint32_t count, uint8_t* buf);

  Replayer* replayer_;
  std::string entry_;
  uint64_t ops_ = 0;
  std::map<std::string, uint64_t> invocations_;
};

}  // namespace dlt

#endif  // SRC_WORKLOAD_REPLAY_BLOCK_DEVICE_H_
