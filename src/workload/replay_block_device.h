// BlockDevice adapter over a ReplayService session: the storage path trustlets
// use (paper §7.3.1: "the tests issue their disk accesses in TEE"). The device
// holds one open session against its driverlet and issues every chunk through
// the session-scoped Invoke. Requests are split into chunks whose block counts
// the recorded templates cover; every operation is synchronous — the overhead
// source the paper identifies (§7.3.2).
#ifndef SRC_WORKLOAD_REPLAY_BLOCK_DEVICE_H_
#define SRC_WORKLOAD_REPLAY_BLOCK_DEVICE_H_

#include <string>

#include "src/kern/block_layer.h"
#include "src/tee/replay_service.h"

namespace dlt {

class ReplayBlockDevice : public BlockDevice {
 public:
  ReplayBlockDevice(ReplayService* service, SessionId session, std::string entry)
      : service_(service), session_(session), entry_(std::move(entry)) {}

  Status Read(uint64_t lba, uint32_t count, uint8_t* out) override;
  Status Write(uint64_t lba, uint32_t count, const uint8_t* data) override;
  Status Flush() override { return Status::kOk; }  // every write is synchronous
  uint64_t io_ops() const override { return ops_; }

  SessionId session() const { return session_; }

  // Per-template invocation counts, for the Table 9 breakdown.
  const std::map<std::string, uint64_t>& invocations() const { return invocations_; }

 private:
  // Exactly one of |out| (read) / |in| (write) is set; the write payload stays
  // const all the way down — the executor enforces the read-only view.
  Status DoOp(uint64_t rw, uint64_t lba, uint32_t count, uint8_t* out, const uint8_t* in);

  ReplayService* service_;
  SessionId session_;
  std::string entry_;
  uint64_t ops_ = 0;
  std::map<std::string, uint64_t> invocations_;
};

}  // namespace dlt

#endif  // SRC_WORKLOAD_REPLAY_BLOCK_DEVICE_H_
