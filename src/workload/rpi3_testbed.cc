#include "src/workload/rpi3_testbed.h"

#include "src/soc/log.h"

namespace dlt {

Rpi3Testbed::Rpi3Testbed(const TestbedOptions& opts) {
  LatencyModel& lat = machine_.latency();

  mmc_ = std::make_unique<MmcController>(&machine_.clock(), &machine_.irq(), &lat, &sd_card_,
                                         kMmcIrq);
  usb_ = std::make_unique<Dwc2Controller>(&machine_.mem(), &machine_.clock(), &machine_.irq(),
                                          &lat, kUsbIrq);
  usb_storage_ = std::make_unique<UsbMassStorage>(&usb_medium_, &lat);
  usb_->AttachDevice(usb_storage_.get());
  vc4_ = std::make_unique<Vc4Firmware>(&machine_.mem(), &machine_.clock(), &machine_.irq(), &lat,
                                       kMailboxIrq);
  display_ = std::make_unique<DisplayController>(&machine_.mem(), &machine_.clock(),
                                                 &machine_.irq(), &lat, kDisplayIrq);
  touch_ = std::make_unique<TouchController>(&machine_.clock(), &machine_.irq(), kTouchIrq);
  uart_ = std::make_unique<UartController>(&machine_.clock(), &machine_.irq(), kUartIrq);
  ftpm_ = std::make_unique<FtpmDevice>(&machine_.clock(), &machine_.irq(), &lat, kFtpmIrq);
  cryptoacc_ = std::make_unique<CryptoaccDevice>(&machine_.mem(), &machine_.clock(),
                                                 &machine_.irq(), &lat, kCryptoIrq);

  mmc_id_ = *machine_.AttachDevice(kMmcBase, kMmcSize, mmc_.get());
  usb_id_ = *machine_.AttachDevice(kUsbBase, kUsbSize, usb_.get());
  vchiq_id_ = *machine_.AttachDevice(kMailboxBase, kMailboxSize, vc4_.get());
  display_id_ = *machine_.AttachDevice(kDisplayBase, kDisplaySize, display_.get());
  touch_id_ = *machine_.AttachDevice(kTouchBase, kTouchSize, touch_.get());
  uart_id_ = *machine_.AttachDevice(kUartBase, kUartSize, uart_.get());
  ftpm_id_ = *machine_.AttachDevice(kFtpmBase, kFtpmSize, ftpm_.get());
  crypto_id_ = *machine_.AttachDevice(kCryptoBase, kCryptoSize, cryptoacc_.get());
  machine_.dma().RegisterDataPort(kMmcBase + kSdData, mmc_.get());

  kern_io_ = std::make_unique<PassthroughIo>(&machine_, &kern_pool_, World::kNormal);
  tee_ = std::make_unique<SecureWorld>(&machine_);

  mmc_cfg_ = BcmSdhostDriver::Config{
      .mmc_device = mmc_id_,
      .dma_device = dma_id(),
      .mmc_irq = kMmcIrq,
      .dma_channel = 15,  // the paper reserves the 15th DMA channel (§6.1.2)
      .dma_irq = kDmaIrqBase + 15,
      .data_port = kMmcBase + kSdData,
      .max_sectors = kSdSectors,
      .sched_per_page_us = 35,
  };
  usb_cfg_ = Dwc2StorageDriver::Config{
      .usb_device = usb_id_,
      .usb_irq = kUsbIrq,
      .channel = 1,
      .max_sectors = kUsbSectors,
      .sched_per_page_us = lat.usb_sched_per_page_us,
  };
  cam_cfg_ = VchiqCameraDriver::Config{
      .vchiq_device = vchiq_id_,
      .bell_irq = kMailboxIrq,
      .pipelined = opts.pipelined_camera,
  };
  display_cfg_ = DsiDisplayDriver::Config{
      .display_device = display_id_,
      .vsync_irq = kDisplayIrq,
  };
  touch_cfg_ = TouchDriver::Config{
      .touch_device = touch_id_,
      .touch_irq = kTouchIrq,
  };
  ftpm_cfg_ = FtpmDriver::Config{
      .ftpm_device = ftpm_id_,
      .ftpm_irq = kFtpmIrq,
  };
  crypto_cfg_ = CryptoaccDriver::Config{
      .crypto_device = crypto_id_,
      .crypto_irq = kCryptoIrq,
  };
  mmc_driver_ = std::make_unique<BcmSdhostDriver>(kern_io_.get(), mmc_cfg_);
  usb_driver_ = std::make_unique<Dwc2StorageDriver>(kern_io_.get(), usb_cfg_);
  cam_driver_ = std::make_unique<VchiqCameraDriver>(kern_io_.get(), cam_cfg_);
  display_driver_ = std::make_unique<DsiDisplayDriver>(kern_io_.get(), display_cfg_);
  touch_driver_ = std::make_unique<TouchDriver>(kern_io_.get(), touch_cfg_);
  ftpm_driver_ = std::make_unique<FtpmDriver>(kern_io_.get(), ftpm_cfg_);
  crypto_driver_ = std::make_unique<CryptoaccDriver>(kern_io_.get(), crypto_cfg_);

  if (opts.probe_drivers && !opts.secure_io) {
    Status s = mmc_driver_->Probe();
    if (!Ok(s)) {
      DLT_LOG(kError) << "MMC probe failed: " << StatusName(s);
    }
    s = usb_driver_->Probe();
    if (!Ok(s)) {
      DLT_LOG(kError) << "USB probe failed: " << StatusName(s);
    }
    kern_pool_.ReleaseAll();
  } else {
    // Deployment machine: devices start from the post-boot clean state.
    ResetDevices();
  }

  if (opts.secure_io) {
    // Firmware (patched ATF in the paper, §7.3.1) assigns whole instances to
    // the TEE; the TEE then maps them.
    (void)machine_.AssignToSecureWorld(mmc_id_);
    (void)machine_.AssignToSecureWorld(usb_id_);
    (void)machine_.AssignToSecureWorld(vchiq_id_);
    (void)machine_.AssignToSecureWorld(display_id_);
    (void)machine_.AssignToSecureWorld(touch_id_);
    (void)machine_.AssignToSecureWorld(uart_id_);
    (void)machine_.AssignToSecureWorld(ftpm_id_);
    (void)machine_.AssignToSecureWorld(crypto_id_);
    (void)machine_.AssignToSecureWorld(dma_id());
    (void)tee_->MapDevice(mmc_id_);
    (void)tee_->MapDevice(usb_id_);
    (void)tee_->MapDevice(vchiq_id_);
    (void)tee_->MapDevice(display_id_);
    (void)tee_->MapDevice(touch_id_);
    (void)tee_->MapDevice(uart_id_);
    (void)tee_->MapDevice(ftpm_id_);
    (void)tee_->MapDevice(crypto_id_);
    (void)tee_->MapDevice(dma_id());
  }
}

void Rpi3Testbed::ResetDevices() {
  mmc_->SoftReset();
  usb_->SoftReset();
  vc4_->SoftReset();
  display_->SoftReset();
  touch_->SoftReset();
  uart_->SoftReset();
  ftpm_->SoftReset();
  cryptoacc_->SoftReset();
}

}  // namespace dlt
