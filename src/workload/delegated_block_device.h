// Delegation baseline from the paper's related work: lacking in-TEE storage
// drivers, "the trustlets delegate IO to OS [24, 28, 46]" — every request pays
// two world switches (SMC to the OS and back) plus marshalling through shared
// memory, and the normal-world OS observes every plaintext byte (which is what
// driverlets exist to prevent). bench/delegation_baseline quantifies both.
#ifndef SRC_WORKLOAD_DELEGATED_BLOCK_DEVICE_H_
#define SRC_WORKLOAD_DELEGATED_BLOCK_DEVICE_H_

#include "src/kern/block_layer.h"
#include "src/obs/telemetry.h"

namespace dlt {

class DelegatedBlockDevice : public BlockDevice {
 public:
  // |os_side| is the normal-world storage path (page cache over a gold driver).
  DelegatedBlockDevice(BlockDevice* os_side, Machine* machine)
      : os_side_(os_side), machine_(machine) {}

  Status Read(uint64_t lba, uint32_t count, uint8_t* out) override {
    ChargeCrossing(count);
    DLT_RETURN_IF_ERROR(os_side_->Read(lba, count, out));
    exposed_bytes_ += static_cast<uint64_t>(count) * 512;
    ++ops_;
    return Status::kOk;
  }

  Status Write(uint64_t lba, uint32_t count, const uint8_t* data) override {
    ChargeCrossing(count);
    DLT_RETURN_IF_ERROR(os_side_->Write(lba, count, data));
    exposed_bytes_ += static_cast<uint64_t>(count) * 512;
    ++ops_;
    return Status::kOk;
  }

  Status Flush() override { return os_side_->Flush(); }
  uint64_t io_ops() const override { return ops_; }

  // Plaintext bytes the untrusted OS observed — the security cost of
  // delegation; a driverlet path keeps this at zero.
  uint64_t exposed_bytes() const { return exposed_bytes_; }

 private:
  void ChargeCrossing(uint32_t count) {
    const LatencyModel& lat = machine_->latency();
    // SMC into the OS, marshal the payload through the shared buffer, SMC back.
    uint64_t marshal_us = (static_cast<uint64_t>(count) * 512) / 2048;  // ~2 GB/s memcpy
    Telemetry& t = Telemetry::Get();
    if (t.enabled()) {
      uint64_t now = machine_->clock().now_us();
      t.metrics().counter("tee.world_switches").Inc(2);
      t.Instant(TraceKind::kWorldSwitch, now, "smc_to_os", /*arg0=*/0);
      t.Instant(TraceKind::kWorldSwitch,
                now + 2 * lat.world_switch_us + marshal_us + lat.kern_wakeup_us, "smc_return",
                /*arg0=*/1);
    }
    machine_->clock().Advance(2 * lat.world_switch_us + marshal_us + lat.kern_wakeup_us);
  }

  BlockDevice* os_side_;
  Machine* machine_;
  uint64_t ops_ = 0;
  uint64_t exposed_bytes_ = 0;
};

}  // namespace dlt

#endif  // SRC_WORKLOAD_DELEGATED_BLOCK_DEVICE_H_
