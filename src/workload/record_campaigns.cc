#include "src/workload/record_campaigns.h"

#include <vector>

#include "src/core/record_session.h"
#include "src/soc/log.h"

namespace dlt {

namespace {

// The sample block address used by record runs; any covered address works, the
// templates generalize it (paper Fig. 2's "write 10 blocks at block address 42").
constexpr uint64_t kSampleBlkId = 2048;

void FillPattern(std::vector<uint8_t>* buf, uint64_t seed) {
  for (size_t i = 0; i < buf->size(); ++i) {
    (*buf)[i] = static_cast<uint8_t>((seed * 131 + i * 7) & 0xff);
  }
}

}  // namespace

Result<InteractionTemplate> RecordMmcRun(Rpi3Testbed* tb, const std::string& name, uint64_t rw,
                                         uint64_t blkcnt, uint64_t blkid) {
  // Constrain the device state space before every record run (paper §3.2).
  tb->ResetDevices();
  tb->kern_io().ReleaseDma();

  RecordSession sess(&tb->kern_io(), kMmcEntry, name, tb->mmc_id());
  TValue rw_v = sess.ScalarParam("rw", rw);
  TValue cnt_v = sess.ScalarParam("blkcnt", blkcnt);
  TValue id_v = sess.ScalarParam("blkid", blkid);
  TValue flag_v = sess.ScalarParam("flag", 0);
  std::vector<uint8_t> buf(blkcnt * 512);
  FillPattern(&buf, blkid);
  sess.BufferParam("buf", buf.data(), buf.size());

  BcmSdhostDriver driver(&sess, tb->mmc_config());
  Status s = driver.Transfer(rw_v, cnt_v, id_v, flag_v, buf.data(), buf.size());
  if (!Ok(s)) {
    DLT_LOG(kError) << "MMC record run " << name << " failed: " << StatusName(s);
    return s;
  }
  return sess.Finish();
}

Result<InteractionTemplate> RecordUsbRun(Rpi3Testbed* tb, const std::string& name, uint64_t rw,
                                         uint64_t blkcnt, uint64_t blkid) {
  tb->ResetDevices();
  tb->kern_io().ReleaseDma();

  RecordSession sess(&tb->kern_io(), kUsbEntry, name, tb->usb_id());
  TValue rw_v = sess.ScalarParam("rw", rw);
  TValue cnt_v = sess.ScalarParam("blkcnt", blkcnt);
  TValue id_v = sess.ScalarParam("blkid", blkid);
  TValue flag_v = sess.ScalarParam("flag", 0);
  std::vector<uint8_t> buf(blkcnt * 512);
  FillPattern(&buf, blkid + 1);
  sess.BufferParam("buf", buf.data(), buf.size());

  Dwc2StorageDriver driver(&sess, tb->usb_config());
  Status s = driver.Transfer(rw_v, cnt_v, id_v, flag_v, buf.data(), buf.size());
  if (!Ok(s)) {
    DLT_LOG(kError) << "USB record run " << name << " failed: " << StatusName(s);
    return s;
  }
  return sess.Finish();
}

Result<InteractionTemplate> RecordCameraRun(Rpi3Testbed* tb, const std::string& name,
                                            uint64_t frames, uint64_t resolution) {
  tb->ResetDevices();
  tb->kern_io().ReleaseDma();

  RecordSession sess(&tb->kern_io(), kCameraEntry, name, tb->vchiq_id());
  TValue frames_v = sess.ScalarParam("frame", frames);
  TValue res_v = sess.ScalarParam("resolution", resolution);
  uint64_t buf_size = Vc4Firmware::FrameBytes(1440) + 4096;  // covers every resolution
  TValue buf_size_v = sess.ScalarParam("buf_size", buf_size);
  std::vector<uint8_t> buf(buf_size);
  sess.BufferParam("buf", buf.data(), buf.size());
  std::vector<uint8_t> img_size(4);
  sess.BufferParam("img_size", img_size.data(), img_size.size());

  VchiqCameraDriver driver(&sess, tb->cam_config());
  Status s = driver.Capture(frames_v, res_v, buf.data(), buf.size(), buf_size_v, img_size.data());
  if (!Ok(s)) {
    DLT_LOG(kError) << "camera record run " << name << " failed: " << StatusName(s);
    return s;
  }
  return sess.Finish();
}

Result<InteractionTemplate> RecordDisplayRun(Rpi3Testbed* tb, const std::string& name, uint64_t x,
                                             uint64_t y, uint64_t w, uint64_t h) {
  tb->ResetDevices();
  tb->kern_io().ReleaseDma();

  RecordSession sess(&tb->kern_io(), kDisplayEntry, name, tb->display_id());
  TValue x_v = sess.ScalarParam("x", x);
  TValue y_v = sess.ScalarParam("y", y);
  TValue w_v = sess.ScalarParam("w", w);
  TValue h_v = sess.ScalarParam("h", h);
  std::vector<uint8_t> buf(w * h * 4);
  FillPattern(&buf, x ^ y);
  sess.BufferParam("buf", buf.data(), buf.size());

  DsiDisplayDriver driver(&sess, tb->display_config());
  Status s = driver.Blit(x_v, y_v, w_v, h_v, buf.data(), buf.size());
  if (!Ok(s)) {
    DLT_LOG(kError) << "display record run " << name << " failed: " << StatusName(s);
    return s;
  }
  return sess.Finish();
}

Result<RecordCampaign> RecordTouchCampaign(Rpi3Testbed* tb) {
  RecordCampaign campaign("touch");
  tb->ResetDevices();
  tb->kern_io().ReleaseDma();
  // The record run needs a user: inject a sample press shortly after the wait
  // begins (the developer taps the panel during recording).
  tb->touch().InjectTouch(400, 240, /*delay_us=*/3'000);
  RecordSession sess(&tb->kern_io(), kTouchEntry, "Sample", tb->touch_id());
  std::vector<uint8_t> evt(4);
  sess.BufferParam("evt", evt.data(), evt.size());
  TouchDriver driver(&sess, tb->touch_config());
  Status s = driver.ReadEvent(evt.data());
  if (!Ok(s)) {
    DLT_LOG(kError) << "touch record run failed: " << StatusName(s);
    return s;
  }
  DLT_ASSIGN_OR_RETURN(InteractionTemplate t, sess.Finish());
  campaign.AddTemplate(std::move(t));
  return campaign;
}

Result<RecordCampaign> RecordDisplayCampaign(Rpi3Testbed* tb) {
  RecordCampaign campaign("display");
  struct Run {
    const char* name;
    uint64_t x, y, w, h;
  };
  const Run kRuns[] = {
      {"Banner", 0, 0, 800, 64},      // status/verification-code strip
      {"Dialog", 200, 160, 400, 160}, // centered confirmation dialog
      {"Icon", 736, 416, 64, 64},     // secure-indicator badge
  };
  for (const Run& run : kRuns) {
    DLT_ASSIGN_OR_RETURN(InteractionTemplate t,
                         RecordDisplayRun(tb, run.name, run.x, run.y, run.w, run.h));
    bool kept = campaign.AddTemplate(std::move(t));
    if (!kept) {
      DLT_LOG(kInfo) << "display run " << run.name << " merged (same transition path)";
    }
  }
  return campaign;
}

Result<InteractionTemplate> RecordFtpmRun(Rpi3Testbed* tb, const std::string& name, uint64_t ord,
                                          uint64_t arg) {
  tb->ResetDevices();
  tb->kern_io().ReleaseDma();

  RecordSession sess(&tb->kern_io(), kFtpmEntry, name, tb->ftpm_id());
  TValue ord_v = sess.ScalarParam("ord", ord);
  TValue arg_v = sess.ScalarParam("arg", arg);
  // Request payload sized for the largest ordinal payload (PCR digest);
  // response sized for the largest response (get-random cap).
  std::vector<uint8_t> req(kFtpmPcrBytes);
  FillPattern(&req, ord * 17 + arg);
  std::vector<uint8_t> rsp(kFtpmMaxRandom);
  sess.BufferParam("req", req.data(), req.size());
  sess.BufferParam("rsp", rsp.data(), rsp.size());

  FtpmDriver driver(&sess, tb->ftpm_config());
  Status s = driver.Execute(ord_v, arg_v, req.data(), rsp.data());
  if (!Ok(s)) {
    DLT_LOG(kError) << "ftpm record run " << name << " failed: " << StatusName(s);
    return s;
  }
  return sess.Finish();
}

Result<InteractionTemplate> RecordCryptoaccRun(Rpi3Testbed* tb, const std::string& name,
                                               uint64_t op, uint64_t key, uint64_t len) {
  tb->ResetDevices();
  tb->kern_io().ReleaseDma();

  RecordSession sess(&tb->kern_io(), kCryptoaccEntry, name, tb->crypto_id());
  TValue op_v = sess.ScalarParam("op", op);
  TValue key_v = sess.ScalarParam("key", key);
  TValue len_v = sess.ScalarParam("len", len);
  std::vector<uint8_t> buf(len);
  FillPattern(&buf, key + len);
  std::vector<uint8_t> out(len < kCaDigestBytes ? kCaDigestBytes : len);
  sess.BufferParam("buf", buf.data(), buf.size());
  sess.BufferParam("out", out.data(), out.size());

  CryptoaccDriver driver(&sess, tb->crypto_config());
  Status s = driver.Transform(op_v, key_v, len_v, buf.data(), buf.size(), out.data());
  if (!Ok(s)) {
    DLT_LOG(kError) << "cryptoacc record run " << name << " failed: " << StatusName(s);
    return s;
  }
  return sess.Finish();
}

Result<RecordCampaign> RecordFtpmCampaign(Rpi3Testbed* tb) {
  RecordCampaign campaign("ftpm");
  struct Run {
    const char* name;
    uint64_t ord, arg;
  };
  const Run kRuns[] = {
      {"GetRandom32", kFtpmOrdGetRandom, 32},
      {"GetRandom128", kFtpmOrdGetRandom, 128},  // merges: same transition path
      {"PcrExtend", kFtpmOrdPcrExtend, 0},
      {"PcrRead", kFtpmOrdPcrRead, 0},
      {"Quote", kFtpmOrdQuote, 0x3},
  };
  for (const Run& run : kRuns) {
    DLT_ASSIGN_OR_RETURN(InteractionTemplate t, RecordFtpmRun(tb, run.name, run.ord, run.arg));
    bool kept = campaign.AddTemplate(std::move(t));
    if (!kept) {
      DLT_LOG(kInfo) << "ftpm run " << run.name << " merged (same transition path)";
    }
  }
  return campaign;
}

Result<RecordCampaign> RecordCryptoaccCampaign(Rpi3Testbed* tb) {
  RecordCampaign campaign("cryptoacc");
  struct Run {
    const char* name;
    uint64_t op, key, len;
  };
  const Run kRuns[] = {
      {"Enc1", kCaOpEncrypt, 0xc0ffee01, 256},     // 1 ring chunk
      {"Dec1", kCaOpDecrypt, 0xc0ffee01, 4096},    // merges with Enc1 (same path)
      {"Enc2", kCaOpEncrypt, 0xc0ffee02, 8192},    // 2 chunks
      {"Enc3", kCaOpEncrypt, 0xc0ffee03, 12288},   // 3 chunks
      {"Enc4", kCaOpEncrypt, 0xc0ffee04, 16384},   // 4 chunks
      {"Digest", kCaOpDigest, 0xd16e5701, 4096},   // single descriptor
  };
  for (const Run& run : kRuns) {
    DLT_ASSIGN_OR_RETURN(InteractionTemplate t,
                         RecordCryptoaccRun(tb, run.name, run.op, run.key, run.len));
    bool kept = campaign.AddTemplate(std::move(t));
    if (!kept) {
      DLT_LOG(kInfo) << "cryptoacc run " << run.name << " merged (same transition path)";
    }
  }
  return campaign;
}

Result<RecordCampaign> RecordMmcCampaign(Rpi3Testbed* tb) {
  RecordCampaign campaign("mmc");
  const uint64_t kCounts[] = {1, 8, 32, 128, 256};
  for (uint64_t count : kCounts) {
    DLT_ASSIGN_OR_RETURN(
        InteractionTemplate rd,
        RecordMmcRun(tb, "RD_" + std::to_string(count), kMmcRwRead, count, kSampleBlkId));
    campaign.AddTemplate(std::move(rd));
    DLT_ASSIGN_OR_RETURN(
        InteractionTemplate wr,
        RecordMmcRun(tb, "WR_" + std::to_string(count), kMmcRwWrite, count, kSampleBlkId));
    campaign.AddTemplate(std::move(wr));
  }
  return campaign;
}

Result<RecordCampaign> RecordUsbCampaign(Rpi3Testbed* tb) {
  RecordCampaign campaign("usb");
  const uint64_t kCounts[] = {1, 8, 32, 128, 256};
  for (uint64_t count : kCounts) {
    DLT_ASSIGN_OR_RETURN(
        InteractionTemplate rd,
        RecordUsbRun(tb, "RD_" + std::to_string(count), kMmcRwRead, count, kSampleBlkId));
    campaign.AddTemplate(std::move(rd));
    DLT_ASSIGN_OR_RETURN(
        InteractionTemplate wr,
        RecordUsbRun(tb, "WR_" + std::to_string(count), kMmcRwWrite, count, kSampleBlkId));
    campaign.AddTemplate(std::move(wr));
  }
  return campaign;
}

Result<RecordCampaign> RecordCameraCampaign(Rpi3Testbed* tb) {
  RecordCampaign campaign("camera");
  struct Run {
    const char* name;
    uint64_t frames;
  };
  const Run kRuns[] = {{"OneShot", 1}, {"ShortBurst", 10}, {"LongBurst", 100}};
  const uint64_t kResolutions[] = {720, 1080, 1440};
  for (const Run& run : kRuns) {
    for (uint64_t res : kResolutions) {
      DLT_ASSIGN_OR_RETURN(InteractionTemplate t, RecordCameraRun(tb, run.name, run.frames, res));
      bool kept = campaign.AddTemplate(std::move(t));
      if (!kept) {
        DLT_LOG(kInfo) << "camera run " << run.name << "@" << res
                       << "p merged into an existing template (same transition path)";
      }
    }
  }
  return campaign;
}

}  // namespace dlt
