// The six storage benchmark scripts of paper Table 9 (drawn from the SQLite
// test suites to diversify read/write ratios), implemented against MiniDb.
// Scripts run on any BlockDevice — the driverlet path (ReplayBlockDevice), the
// native write-back page cache, or native-sync — and report IOPS/QPS plus the
// measured read:write mix.
#ifndef SRC_WORKLOAD_SQLITE_SCRIPTS_H_
#define SRC_WORKLOAD_SQLITE_SCRIPTS_H_

#include <string>
#include <vector>

#include "src/soc/sim_clock.h"
#include "src/workload/minidb.h"

namespace dlt {

// Decorator counting block-level reads/writes on any BlockDevice.
class CountingBlockDevice : public BlockDevice {
 public:
  explicit CountingBlockDevice(BlockDevice* inner) : inner_(inner) {}

  Status Read(uint64_t lba, uint32_t count, uint8_t* out) override {
    ++reads_;
    read_sectors_ += count;
    return inner_->Read(lba, count, out);
  }
  Status Write(uint64_t lba, uint32_t count, const uint8_t* data) override {
    ++writes_;
    write_sectors_ += count;
    return inner_->Write(lba, count, data);
  }
  Status Flush() override { return inner_->Flush(); }
  uint64_t io_ops() const override { return reads_ + writes_; }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t read_sectors() const { return read_sectors_; }
  uint64_t write_sectors() const { return write_sectors_; }

 private:
  BlockDevice* inner_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t read_sectors_ = 0;
  uint64_t write_sectors_ = 0;
};

inline const std::vector<std::string>& SqliteScriptNames() {
  static const std::vector<std::string> kNames = {"select3",  "delete",  "indexedby",
                                                  "io",       "selectG", "insert3"};
  return kNames;
}

struct ScriptResult {
  std::string name;
  uint64_t queries = 0;
  uint64_t io_requests = 0;  // block-device requests the script issued
  uint64_t elapsed_us = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;

  double iops() const {
    return elapsed_us == 0 ? 0.0 : static_cast<double>(io_requests) * 1e6 /
                                       static_cast<double>(elapsed_us);
  }
  double qps() const {
    return elapsed_us == 0 ? 0.0 : static_cast<double>(queries) * 1e6 /
                                       static_cast<double>(elapsed_us);
  }
};

// Populates |db| with the working set the scripts expect (idempotent-ish:
// call once per fresh database).
Status PopulateDb(MiniDb* db, size_t rows, uint64_t seed);

// Runs one named script for |queries| query units. |clock| supplies virtual
// time, |counter| the block-level statistics.
Result<ScriptResult> RunSqliteScript(const std::string& name, MiniDb* db,
                                     CountingBlockDevice* counter, SimClock* clock,
                                     size_t queries, uint64_t seed);

}  // namespace dlt

#endif  // SRC_WORKLOAD_SQLITE_SCRIPTS_H_
