#include "src/workload/fault_campaign.h"

#include <cstdarg>
#include <cstring>

#include "src/drv/bcm_sdhost_driver.h"
#include "src/fault/fault_injector.h"
#include "src/workload/deploy_util.h"

namespace dlt {

namespace {

// One write-then-readback-verify op against a block driverlet. Status alone is
// not enough: DMA corruption is silent at the replay layer (constraints cover
// control-flow inputs, not payload bytes — docs/fault_injection.md), so the
// campaign verifies content end to end.
struct OpOutcome {
  bool recovered = false;
  bool retried = false;
  bool data_error = false;
  bool quarantined = false;
  uint64_t attempts = 0;
};

OpOutcome RunBlockOp(Deployment& d, const char* entry, uint64_t seed, int op) {
  OpOutcome out;
  uint64_t blkid = 2048 + static_cast<uint64_t>(op) * 64;
  std::vector<uint8_t> pattern = PatternBuf(8 * 512, seed * 1000 + static_cast<uint64_t>(op));
  ReplayArgs wargs;
  wargs.scalars = {{"rw", kMmcRwWrite}, {"blkcnt", 8}, {"blkid", blkid}, {"flag", 0}};
  wargs.ro_buffers["buf"] = ConstBufferView{pattern.data(), pattern.size()};
  Result<ReplayStats> w = d.service->Invoke(d.session, entry, wargs);
  if (!w.ok()) {
    out.quarantined = w.status() == Status::kQuarantined;
    return out;
  }
  out.attempts += w->attempts;
  std::vector<uint8_t> readback(8 * 512, 0);
  ReplayArgs rargs;
  rargs.scalars = {{"rw", kMmcRwRead}, {"blkcnt", 8}, {"blkid", blkid}, {"flag", 0}};
  rargs.buffers["buf"] = BufferView{readback.data(), readback.size()};
  Result<ReplayStats> r = d.service->Invoke(d.session, entry, rargs);
  if (!r.ok()) {
    out.quarantined = r.status() == Status::kQuarantined;
    return out;
  }
  out.attempts += r->attempts;
  if (readback != pattern) {
    out.data_error = true;
    return out;
  }
  out.recovered = true;
  out.retried = w->attempts > 1 || r->attempts > 1;
  return out;
}

// GetRandom at a covered length: content is DRBG output so the end-to-end
// check is shape, not bytes — the response window must be written and the
// tail must stay untouched.
OpOutcome RunFtpmOp(Deployment& d, uint64_t seed, int op) {
  OpOutcome out;
  uint64_t arg = 32 + ((seed + static_cast<uint64_t>(op)) % 8) * 32;
  std::vector<uint8_t> req(kFtpmPcrBytes, 0);
  std::vector<uint8_t> rsp(kFtpmMaxRandom, 0);
  ReplayArgs args;
  args.scalars = {{"ord", kFtpmOrdGetRandom}, {"arg", arg}};
  args.ro_buffers["req"] = ConstBufferView{req.data(), req.size()};
  args.buffers["rsp"] = BufferView{rsp.data(), rsp.size()};
  Result<ReplayStats> r = d.service->Invoke(d.session, kFtpmEntry, args);
  if (!r.ok()) {
    out.quarantined = r.status() == Status::kQuarantined;
    return out;
  }
  out.attempts = r->attempts;
  bool payload_written = false;
  for (uint64_t i = 0; i < arg; ++i) {
    payload_written |= rsp[i] != 0;
  }
  bool tail_clean = true;
  for (size_t i = arg; i < rsp.size(); ++i) {
    tail_clean &= rsp[i] == 0;
  }
  if (!payload_written || !tail_clean) {
    out.data_error = true;
    return out;
  }
  out.recovered = true;
  out.retried = r->attempts > 1;
  return out;
}

// Encrypt-then-decrypt round trip through the descriptor ring: like the block
// classes, payload corruption is silent at the replay layer, so the campaign
// verifies the plaintext comes back byte-identical.
OpOutcome RunCryptoaccOp(Deployment& d, uint64_t seed, int op) {
  OpOutcome out;
  uint64_t key = 0xc0ffee00 + (seed % 16);
  std::vector<uint8_t> pattern =
      PatternBuf(kCryptoChunkBytes, seed * 1000 + static_cast<uint64_t>(op));
  std::vector<uint8_t> ct(pattern.size(), 0);
  ReplayArgs eargs;
  eargs.scalars = {{"op", kCaOpEncrypt}, {"key", key}, {"len", pattern.size()}};
  eargs.ro_buffers["buf"] = ConstBufferView{pattern.data(), pattern.size()};
  eargs.buffers["out"] = BufferView{ct.data(), ct.size()};
  Result<ReplayStats> e = d.service->Invoke(d.session, kCryptoaccEntry, eargs);
  if (!e.ok()) {
    out.quarantined = e.status() == Status::kQuarantined;
    return out;
  }
  out.attempts += e->attempts;
  std::vector<uint8_t> rt(pattern.size(), 0);
  ReplayArgs dargs;
  dargs.scalars = {{"op", kCaOpDecrypt}, {"key", key}, {"len", ct.size()}};
  dargs.ro_buffers["buf"] = ConstBufferView{ct.data(), ct.size()};
  dargs.buffers["out"] = BufferView{rt.data(), rt.size()};
  Result<ReplayStats> dec = d.service->Invoke(d.session, kCryptoaccEntry, dargs);
  if (!dec.ok()) {
    out.quarantined = dec.status() == Status::kQuarantined;
    return out;
  }
  out.attempts += dec->attempts;
  if (rt != pattern) {
    out.data_error = true;
    return out;
  }
  out.recovered = true;
  out.retried = e->attempts > 1 || dec->attempts > 1;
  return out;
}

OpOutcome RunCameraOp(Deployment& d, uint64_t /*seed*/, int /*op*/) {
  OpOutcome out;
  std::vector<uint8_t> buf(Vc4Firmware::FrameBytes(1440) + 4096);
  std::vector<uint8_t> img_size(4, 0);
  ReplayArgs args;
  args.scalars = {{"frame", 1}, {"resolution", 720}, {"buf_size", buf.size()}};
  args.buffers["buf"] = BufferView{buf.data(), buf.size()};
  args.buffers["img_size"] = BufferView{img_size.data(), img_size.size()};
  Result<ReplayStats> r = d.service->Invoke(d.session, kCameraEntry, args);
  if (!r.ok()) {
    out.quarantined = r.status() == Status::kQuarantined;
    return out;
  }
  out.attempts = r->attempts;
  uint32_t size = 0;
  std::memcpy(&size, img_size.data(), 4);
  if (size == 0) {
    out.data_error = true;
    return out;
  }
  out.recovered = true;
  out.retried = r->attempts > 1;
  return out;
}

FaultMatrixCell RunCell(FaultPlane plane, const std::string& driverlet, uint64_t seed,
                        const std::vector<uint8_t>& pkg, const FaultMatrixConfig& cfg) {
  FaultMatrixCell cell;
  cell.plane = plane;
  cell.driverlet = driverlet;
  cell.seed = seed;

  ReplayServiceConfig scfg;
  scfg.retry_backoff_us = cfg.retry_backoff_us;
  scfg.quarantine_threshold = cfg.quarantine_threshold;
  scfg.use_compiled = cfg.use_compiled;
  Deployment d = MakeDeployment(pkg, scfg);
  if (d.session == 0) {
    return cell;  // registration failed; zero-op cell is visible in the matrix
  }

  FaultTargets targets;
  if (driverlet == "mmc") {
    targets.device = d.tb->mmc_id();
    targets.dma_via_engine = true;
  } else if (driverlet == "usb") {
    targets.device = d.tb->usb_id();
    targets.dma_via_engine = false;
  } else if (driverlet == "ftpm") {
    targets.device = d.tb->ftpm_id();
    targets.dma_via_engine = false;
  } else if (driverlet == "cryptoacc") {
    // The crypto engine masters its own descriptor ring, so its DMA plane is
    // the device itself, not the system engine.
    targets.device = d.tb->crypto_id();
    targets.dma_via_engine = false;
  } else {
    targets.device = d.tb->vchiq_id();
    targets.dma_via_engine = false;
  }

  FaultInjector injector(&d.tb->machine());
  FaultPlan plan = MakePresetPlan(plane, seed, targets);
  if (!Ok(injector.Arm(plan))) {
    return cell;
  }

  for (int op = 0; op < cfg.ops_per_cell; ++op) {
    OpOutcome out;
    if (driverlet == "camera") {
      out = RunCameraOp(d, seed, op);
    } else if (driverlet == "ftpm") {
      out = RunFtpmOp(d, seed, op);
    } else if (driverlet == "cryptoacc") {
      out = RunCryptoaccOp(d, seed, op);
    } else {
      out = RunBlockOp(d, driverlet == "mmc" ? kMmcEntry : kUsbEntry, seed, op);
    }
    ++cell.ops;
    cell.attempts += out.attempts;
    if (out.recovered) {
      ++cell.recovered;
      if (out.retried) {
        ++cell.retried;
      }
    } else {
      ++cell.failed;
      if (out.data_error) {
        ++cell.data_errors;
      }
      if (out.quarantined) {
        // Ladder rung 3 fired: the client's only move is a fresh session.
        d.service->CloseSession(d.session);
        Result<SessionId> sid = d.service->OpenSession(d.driverlet);
        d.session = sid.ok() ? *sid : 0;
        if (d.session == 0) {
          break;
        }
      }
    }
  }

  cell.quarantines = d.service->quarantined_sessions();
  cell.faults_injected = injector.injected_total();
  cell.resets = d.replayer != nullptr ? d.replayer->total_resets() : 0;
  cell.sim_end_us = d.tb->clock().now_us();
  injector.Disarm();
  return cell;
}

}  // namespace

FaultMatrix RunFaultMatrix(const FaultMatrixConfig& cfg) {
  FaultMatrix m;
  m.config = cfg;
  if (m.config.driverlets.empty()) {
    m.config.driverlets = RegisteredDriverletClassNames();
  }

  std::vector<std::pair<std::string, std::vector<uint8_t>>> packages;
  for (const std::string& drv : m.config.driverlets) {
    const DriverletClassSpec* spec = FindDriverletClass(drv);
    if (spec != nullptr) {
      packages.emplace_back(drv, spec->build_package());
    }
  }

  const FaultPlane kPlanes[] = {FaultPlane::kMmio, FaultPlane::kDma, FaultPlane::kIrq};
  for (FaultPlane plane : kPlanes) {
    for (const auto& [drv, pkg] : packages) {
      FaultMatrixSummary sum;
      sum.plane = plane;
      sum.driverlet = drv;
      for (uint64_t seed : cfg.seeds) {
        FaultMatrixCell cell = RunCell(plane, drv, seed, pkg, cfg);
        sum.ops += cell.ops;
        sum.recovered += cell.recovered;
        sum.faults_injected += cell.faults_injected;
        sum.quarantines += cell.quarantines;
        m.cells.push_back(std::move(cell));
      }
      sum.recovery_rate = sum.ops > 0 ? static_cast<double>(sum.recovered) / sum.ops : 0.0;
      m.summary.push_back(std::move(sum));
    }
  }
  return m;
}

namespace {
void Append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}
}  // namespace

std::string FaultMatrixToJson(const FaultMatrix& m) {
  std::string out;
  out += "{\n  \"config\": {\"seeds\": [";
  for (size_t i = 0; i < m.config.seeds.size(); ++i) {
    Append(out, "%s%llu", i == 0 ? "" : ", ",
           static_cast<unsigned long long>(m.config.seeds[i]));
  }
  Append(out, "], \"ops_per_cell\": %d, \"retry_backoff_us\": %llu, "
              "\"quarantine_threshold\": %llu},\n",
         m.config.ops_per_cell, static_cast<unsigned long long>(m.config.retry_backoff_us),
         static_cast<unsigned long long>(m.config.quarantine_threshold));
  out += "  \"matrix\": [\n";
  for (size_t i = 0; i < m.summary.size(); ++i) {
    const FaultMatrixSummary& s = m.summary[i];
    Append(out,
           "    {\"plane\": \"%s\", \"driverlet\": \"%s\", \"ops\": %d, "
           "\"recovered\": %d, \"recovery_rate\": %.4f, \"faults_injected\": %llu, "
           "\"quarantines\": %llu}%s\n",
           FaultPlaneName(s.plane), s.driverlet.c_str(), s.ops, s.recovered,
           s.recovery_rate, static_cast<unsigned long long>(s.faults_injected),
           static_cast<unsigned long long>(s.quarantines),
           i + 1 < m.summary.size() ? "," : "");
  }
  out += "  ],\n  \"cells\": [\n";
  for (size_t i = 0; i < m.cells.size(); ++i) {
    const FaultMatrixCell& c = m.cells[i];
    Append(out,
           "    {\"plane\": \"%s\", \"driverlet\": \"%s\", \"seed\": %llu, "
           "\"ops\": %d, \"recovered\": %d, \"retried\": %d, \"failed\": %d, "
           "\"data_errors\": %llu, \"faults_injected\": %llu, \"resets\": %llu, "
           "\"attempts\": %llu, \"quarantines\": %llu, \"sim_end_us\": %llu}%s\n",
           FaultPlaneName(c.plane), c.driverlet.c_str(),
           static_cast<unsigned long long>(c.seed), c.ops, c.recovered, c.retried,
           c.failed, static_cast<unsigned long long>(c.data_errors),
           static_cast<unsigned long long>(c.faults_injected),
           static_cast<unsigned long long>(c.resets),
           static_cast<unsigned long long>(c.attempts),
           static_cast<unsigned long long>(c.quarantines),
           static_cast<unsigned long long>(c.sim_end_us),
           i + 1 < m.cells.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

void PrintFaultMatrix(const FaultMatrix& m, std::FILE* out) {
  std::fprintf(out, "%-6s %-8s %6s %10s %10s %8s %12s\n", "plane", "driverlet", "ops",
               "recovered", "rate", "faults", "quarantines");
  for (const FaultMatrixSummary& s : m.summary) {
    std::fprintf(out, "%-6s %-8s %6d %10d %9.1f%% %8llu %12llu\n", FaultPlaneName(s.plane),
                 s.driverlet.c_str(), s.ops, s.recovered, 100.0 * s.recovery_rate,
                 static_cast<unsigned long long>(s.faults_injected),
                 static_cast<unsigned long long>(s.quarantines));
  }
}

}  // namespace dlt
