#include "src/workload/sqlite_scripts.h"

#include "src/soc/log.h"

namespace dlt {

namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed | 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

std::vector<uint8_t> MakePayload(uint64_t key, size_t len) {
  std::vector<uint8_t> p(len);
  for (size_t i = 0; i < len; ++i) {
    p[i] = static_cast<uint8_t>((key * 31 + i) & 0xff);
  }
  return p;
}

constexpr size_t kPayloadLen = 100;

}  // namespace

Status PopulateDb(MiniDb* db, size_t rows, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    uint64_t key = i + 1;
    std::vector<uint8_t> payload = MakePayload(key, kPayloadLen);
    DLT_RETURN_IF_ERROR(db->Insert(key, payload.data(), payload.size()));
    if ((i + 1) % 16 == 0) {
      DLT_RETURN_IF_ERROR(db->Commit());
    }
  }
  return db->Commit();
}

Result<ScriptResult> RunSqliteScript(const std::string& name, MiniDb* db,
                                     CountingBlockDevice* counter, SimClock* clock,
                                     size_t queries, uint64_t seed) {
  Rng rng(seed);
  ScriptResult result;
  result.name = name;
  result.queries = queries;
  uint64_t t0 = clock->now_us();
  uint64_t ops0 = counter->io_ops();
  uint64_t reads0 = counter->reads();
  uint64_t writes0 = counter->writes();
  size_t rows = db->row_count();
  uint64_t next_key = 1'000'000 + seed % 1000;

  for (size_t q = 0; q < queries; ++q) {
    if (name == "select3") {
      // Read-mostly: three point lookups per query.
      for (int i = 0; i < 3; ++i) {
        (void)db->Lookup(rng.Below(rows) + 1);
      }
    } else if (name == "delete") {
      // Lookup then delete one row; committed per query.
      uint64_t key = rng.Below(rows) + 1;
      (void)db->Lookup(key);
      (void)db->Delete(key);
      DLT_RETURN_IF_ERROR(db->Commit());
    } else if (name == "indexedby") {
      // Indexed selects ("INDEXED BY" queries): five index lookups.
      for (int i = 0; i < 5; ++i) {
        (void)db->Lookup(rng.Below(rows) + 1);
      }
    } else if (name == "io") {
      // Mixed IO: two lookups + one in-place update per query.
      (void)db->Lookup(rng.Below(rows) + 1);
      (void)db->Lookup(rng.Below(rows) + 1);
      uint64_t key = rng.Below(rows) + 1;
      std::vector<uint8_t> payload = MakePayload(key ^ q, kPayloadLen);
      (void)db->Update(key, payload.data(), payload.size());
      DLT_RETURN_IF_ERROR(db->Commit());
    } else if (name == "selectG") {
      // Grouped select: one range scan plus an aggregate row update.
      uint64_t lo = rng.Below(rows) + 1;
      (void)db->Scan(lo, lo + 64);
      std::vector<uint8_t> payload = MakePayload(lo, kPayloadLen);
      (void)db->Update(rng.Below(rows) + 1, payload.data(), payload.size());
      DLT_RETURN_IF_ERROR(db->Commit());
    } else if (name == "insert3") {
      // Write-mostly: three inserts per query, committed.
      for (int i = 0; i < 3; ++i) {
        uint64_t key = next_key++;
        std::vector<uint8_t> payload = MakePayload(key, kPayloadLen);
        DLT_RETURN_IF_ERROR(db->Insert(key, payload.data(), payload.size()));
      }
      DLT_RETURN_IF_ERROR(db->Commit());
    } else {
      return Status::kInvalidArg;
    }
  }
  DLT_RETURN_IF_ERROR(db->Commit());

  result.elapsed_us = clock->now_us() - t0;
  result.io_requests = counter->io_ops() - ops0;
  result.reads = counter->reads() - reads0;
  result.writes = counter->writes() - writes0;
  return result;
}

}  // namespace dlt
