#include "src/workload/minidb.h"

#include <algorithm>
#include <cstring>

#include "src/soc/log.h"

namespace dlt {

namespace {

constexpr uint32_t kMagic = 0x3142444d;  // "MDB1"

// Heap page: [u32 next][u16 nrec][u16 free_off] then records.
constexpr uint32_t kHeapHdr = 8;
// Record: [u64 key][u16 len][u8 deleted][u8 pad] + payload.
constexpr uint32_t kRecHdr = 12;
// Index page: [u32 next][u16 nentries][u16 pad] then 16-byte entries.
constexpr uint32_t kIdxHdr = 8;
constexpr uint32_t kIdxEntry = 16;
constexpr uint32_t kIdxCapacity = (Pager::kPageSize - kIdxHdr) / kIdxEntry;

template <typename T>
T Load(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void Store(uint8_t* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

}  // namespace

// ---------------------------------------------------------------- Pager ----

Result<uint8_t*> Pager::GetPage(uint32_t pgno) {
  if (pgno >= max_pages_) {
    return Status::kOutOfRange;
  }
  auto it = cache_.find(pgno);
  if (it != cache_.end()) {
    lru_.remove(pgno);
    lru_.push_front(pgno);
    return it->second.data.data();
  }
  CachedPage page;
  page.data.resize(kPageSize);
  DLT_RETURN_IF_ERROR(dev_->Read(static_cast<uint64_t>(pgno) * kSectorsPerPage, kSectorsPerPage,
                                 page.data.data()));
  auto [ins, ok] = cache_.emplace(pgno, std::move(page));
  (void)ok;
  lru_.push_front(pgno);
  DLT_RETURN_IF_ERROR(Evict());
  return ins->second.data.data();
}

Result<uint8_t*> Pager::GetPageForWrite(uint32_t pgno) {
  DLT_RETURN_IF_ERROR(BeginTxn());
  DLT_ASSIGN_OR_RETURN(uint8_t * data, GetPage(pgno));
  CachedPage& page = cache_[pgno];
  if (!page.dirty) {
    page.dirty = true;
    journaled_.push_back(pgno);
  }
  return data;
}

Result<uint32_t> Pager::AllocatePage() {
  if (next_page_ >= max_pages_) {
    return Status::kNoMemory;
  }
  uint32_t pgno = next_page_++;
  CachedPage page;
  page.data.assign(kPageSize, 0);
  page.dirty = true;
  cache_[pgno] = std::move(page);
  lru_.push_front(pgno);
  DLT_RETURN_IF_ERROR(BeginTxn());
  journaled_.push_back(pgno);
  return pgno;
}

Status Pager::BeginTxn() {
  in_txn_ = true;
  return Status::kOk;
}

Status Pager::CommitTxn() {
  if (!in_txn_) {
    return Status::kOk;
  }
  // Rollback-journal protocol (like SQLite's): 1) persist pre-images and the
  // journal header, 2) write the dirty pages in place, 3) clear the header.
  std::sort(journaled_.begin(), journaled_.end());
  journaled_.erase(std::unique(journaled_.begin(), journaled_.end()), journaled_.end());
  // The journal header is one 512 B sector (as SQLite's is), producing the
  // single-block requests of the paper's Table 9 mixes.
  std::vector<uint8_t> hdr(512, 0);
  uint32_t count = static_cast<uint32_t>(std::min<size_t>(journaled_.size(), kJournalSlots));
  Store<uint32_t>(hdr.data(), count);
  for (uint32_t i = 0; i < count && i < 120; ++i) {
    Store<uint32_t>(hdr.data() + 4 + i * 4, journaled_[i]);
  }
  DLT_RETURN_IF_ERROR(
      dev_->Write(static_cast<uint64_t>(kJournalHeaderPage) * kSectorsPerPage, 1, hdr.data()));
  // Pre-images land in contiguous journal slots: write them as one request
  // (the block layer would merge them anyway) — larger counts exercise the
  // RW_32/128/256 templates on the driverlet path.
  if (count > 0) {
    std::vector<uint8_t> batch(static_cast<size_t>(count) * kPageSize);
    for (uint32_t i = 0; i < count; ++i) {
      auto it = cache_.find(journaled_[i]);
      if (it != cache_.end()) {
        std::memcpy(batch.data() + static_cast<size_t>(i) * kPageSize, it->second.data.data(),
                    kPageSize);
      }
    }
    DLT_RETURN_IF_ERROR(dev_->Write(
        static_cast<uint64_t>(kJournalHeaderPage + 1) * kSectorsPerPage,
        count * kSectorsPerPage, batch.data()));
  }
  for (uint32_t pgno : journaled_) {
    auto it = cache_.find(pgno);
    if (it == cache_.end() || !it->second.dirty) {
      continue;
    }
    DLT_RETURN_IF_ERROR(dev_->Write(static_cast<uint64_t>(pgno) * kSectorsPerPage, kSectorsPerPage,
                                    it->second.data.data()));
    it->second.dirty = false;
  }
  std::memset(hdr.data(), 0, 8);
  DLT_RETURN_IF_ERROR(
      dev_->Write(static_cast<uint64_t>(kJournalHeaderPage) * kSectorsPerPage, 1, hdr.data()));
  // Durability barrier, as SQLite's default synchronous=FULL issues fsync at
  // every commit — also on the "native" (write-back) path.
  DLT_RETURN_IF_ERROR(dev_->Flush());
  journaled_.clear();
  in_txn_ = false;
  // With everything clean again, trim the cache to its configured capacity.
  return Evict();
}

Status Pager::Evict() {
  while (cache_.size() > cache_capacity_) {
    // Evict the least-recently-used clean page; dirty pages stay until commit.
    uint32_t victim = UINT32_MAX;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto c = cache_.find(*it);
      if (c != cache_.end() && !c->second.dirty) {
        victim = *it;
        break;
      }
    }
    if (victim == UINT32_MAX) {
      return Status::kOk;  // everything dirty: let the cache grow until commit
    }
    lru_.remove(victim);
    cache_.erase(victim);
  }
  return Status::kOk;
}

// ---------------------------------------------------------------- MiniDb ----

MiniDb::MiniDb(BlockDevice* dev, uint32_t max_pages) : pager_(dev, max_pages) {}

Status MiniDb::Open() {
  DLT_ASSIGN_OR_RETURN(uint8_t * hdr, pager_.GetPage(0));
  if (Load<uint32_t>(hdr) == kMagic) {
    table_head_ = Load<uint32_t>(hdr + 4);
    table_tail_ = Load<uint32_t>(hdr + 8);
    index_head_ = Load<uint32_t>(hdr + 12);
    row_count_ = Load<uint64_t>(hdr + 16);
    pager_.set_next_page(Load<uint32_t>(hdr + 24));
    open_ = true;
    return Status::kOk;
  }
  // Format a fresh database.
  DLT_ASSIGN_OR_RETURN(uint32_t heap, pager_.AllocatePage());
  DLT_ASSIGN_OR_RETURN(uint32_t idx, pager_.AllocatePage());
  table_head_ = table_tail_ = heap;
  index_head_ = idx;
  row_count_ = 0;
  DLT_ASSIGN_OR_RETURN(uint8_t * heap_page, pager_.GetPageForWrite(heap));
  Store<uint16_t>(heap_page + 6, static_cast<uint16_t>(kHeapHdr));  // free_off
  DLT_ASSIGN_OR_RETURN(uint8_t * idx_page, pager_.GetPageForWrite(idx));
  Store<uint16_t>(idx_page + 4, 0);
  DLT_ASSIGN_OR_RETURN(uint8_t * h, pager_.GetPageForWrite(0));
  Store<uint32_t>(h, kMagic);
  Store<uint32_t>(h + 4, table_head_);
  Store<uint32_t>(h + 8, table_tail_);
  Store<uint32_t>(h + 12, index_head_);
  Store<uint64_t>(h + 16, 0);
  Store<uint32_t>(h + 24, pager_.allocated_pages());
  DLT_RETURN_IF_ERROR(pager_.CommitTxn());
  open_ = true;
  return Status::kOk;
}

Status MiniDb::Insert(uint64_t key, const void* payload, size_t len) {
  if (!open_ || len > Pager::kPageSize - kHeapHdr - kRecHdr) {
    return Status::kInvalidArg;
  }
  DLT_ASSIGN_OR_RETURN(uint8_t * tail, pager_.GetPage(table_tail_));
  uint16_t free_off = Load<uint16_t>(tail + 6);
  if (free_off + kRecHdr + len > Pager::kPageSize) {
    DLT_ASSIGN_OR_RETURN(uint32_t fresh, pager_.AllocatePage());
    DLT_ASSIGN_OR_RETURN(uint8_t * old_tail, pager_.GetPageForWrite(table_tail_));
    Store<uint32_t>(old_tail, fresh);  // link
    DLT_ASSIGN_OR_RETURN(uint8_t * fresh_page, pager_.GetPageForWrite(fresh));
    Store<uint16_t>(fresh_page + 6, static_cast<uint16_t>(kHeapHdr));
    table_tail_ = fresh;
    free_off = kHeapHdr;
  }
  DLT_ASSIGN_OR_RETURN(uint8_t * page, pager_.GetPageForWrite(table_tail_));
  uint16_t nrec = Load<uint16_t>(page + 4);
  Store<uint64_t>(page + free_off, key);
  Store<uint16_t>(page + free_off + 8, static_cast<uint16_t>(len));
  page[free_off + 10] = 0;  // deleted flag
  page[free_off + 11] = 0;
  std::memcpy(page + free_off + kRecHdr, payload, len);
  Store<uint16_t>(page + 4, static_cast<uint16_t>(nrec + 1));
  Store<uint16_t>(page + 6, static_cast<uint16_t>(free_off + kRecHdr + len));

  DLT_RETURN_IF_ERROR(IndexInsert(key, RecordAddr{table_tail_, free_off}));
  ++row_count_;
  DLT_ASSIGN_OR_RETURN(uint8_t * h, pager_.GetPageForWrite(0));
  Store<uint32_t>(h + 8, table_tail_);
  Store<uint64_t>(h + 16, row_count_);
  Store<uint32_t>(h + 24, pager_.allocated_pages());
  return Status::kOk;
}

Status MiniDb::IndexInsert(uint64_t key, RecordAddr addr) {
  // Walk the run list to the last page; append, allocating a new run if full.
  uint32_t pgno = index_head_;
  while (true) {
    DLT_ASSIGN_OR_RETURN(uint8_t * page, pager_.GetPage(pgno));
    uint32_t next = Load<uint32_t>(page);
    uint16_t n = Load<uint16_t>(page + 4);
    if (next == 0 && n < kIdxCapacity) {
      DLT_ASSIGN_OR_RETURN(uint8_t * w, pager_.GetPageForWrite(pgno));
      uint32_t off = kIdxHdr + n * kIdxEntry;
      Store<uint64_t>(w + off, key);
      Store<uint32_t>(w + off + 8, addr.page);
      Store<uint16_t>(w + off + 12, addr.offset);
      Store<uint16_t>(w + off + 14, 0);
      Store<uint16_t>(w + 4, static_cast<uint16_t>(n + 1));
      return Status::kOk;
    }
    if (next == 0) {
      DLT_ASSIGN_OR_RETURN(uint32_t fresh, pager_.AllocatePage());
      DLT_ASSIGN_OR_RETURN(uint8_t * w, pager_.GetPageForWrite(pgno));
      Store<uint32_t>(w, fresh);
      pgno = fresh;
      continue;
    }
    pgno = next;
  }
}

Result<MiniDb::RecordAddr> MiniDb::IndexLookup(uint64_t key) {
  uint32_t pgno = index_head_;
  while (pgno != 0) {
    DLT_ASSIGN_OR_RETURN(uint8_t * page, pager_.GetPage(pgno));
    uint16_t n = Load<uint16_t>(page + 4);
    for (uint16_t i = 0; i < n; ++i) {
      uint32_t off = kIdxHdr + i * kIdxEntry;
      if (Load<uint64_t>(page + off) == key && Load<uint32_t>(page + off + 8) != 0) {
        return RecordAddr{Load<uint32_t>(page + off + 8), Load<uint16_t>(page + off + 12)};
      }
    }
    pgno = Load<uint32_t>(page);
  }
  return Status::kNotFound;
}

Status MiniDb::IndexRemove(uint64_t key) {
  uint32_t pgno = index_head_;
  while (pgno != 0) {
    DLT_ASSIGN_OR_RETURN(uint8_t * page, pager_.GetPage(pgno));
    uint16_t n = Load<uint16_t>(page + 4);
    for (uint16_t i = 0; i < n; ++i) {
      uint32_t off = kIdxHdr + i * kIdxEntry;
      if (Load<uint64_t>(page + off) == key && Load<uint32_t>(page + off + 8) != 0) {
        DLT_ASSIGN_OR_RETURN(uint8_t * w, pager_.GetPageForWrite(pgno));
        Store<uint32_t>(w + off + 8, 0);  // tombstone
        return Status::kOk;
      }
    }
    pgno = Load<uint32_t>(page);
  }
  return Status::kNotFound;
}

Result<std::vector<uint8_t>> MiniDb::Lookup(uint64_t key) {
  DLT_ASSIGN_OR_RETURN(RecordAddr addr, IndexLookup(key));
  DLT_ASSIGN_OR_RETURN(uint8_t * page, pager_.GetPage(addr.page));
  if (Load<uint64_t>(page + addr.offset) != key || page[addr.offset + 10] != 0) {
    return Status::kNotFound;
  }
  uint16_t len = Load<uint16_t>(page + addr.offset + 8);
  std::vector<uint8_t> out(len);
  std::memcpy(out.data(), page + addr.offset + kRecHdr, len);
  return out;
}

Result<size_t> MiniDb::Scan(uint64_t min_key, uint64_t max_key) {
  size_t matches = 0;
  uint32_t pgno = table_head_;
  while (pgno != 0) {
    DLT_ASSIGN_OR_RETURN(uint8_t * page, pager_.GetPage(pgno));
    uint16_t nrec = Load<uint16_t>(page + 4);
    uint32_t off = kHeapHdr;
    for (uint16_t i = 0; i < nrec; ++i) {
      uint64_t key = Load<uint64_t>(page + off);
      uint16_t len = Load<uint16_t>(page + off + 8);
      bool deleted = page[off + 10] != 0;
      if (!deleted && key >= min_key && key <= max_key) {
        ++matches;
      }
      off += kRecHdr + len;
    }
    pgno = Load<uint32_t>(page);
  }
  return matches;
}

Status MiniDb::Delete(uint64_t key) {
  DLT_ASSIGN_OR_RETURN(RecordAddr addr, IndexLookup(key));
  DLT_ASSIGN_OR_RETURN(uint8_t * page, pager_.GetPageForWrite(addr.page));
  if (Load<uint64_t>(page + addr.offset) != key) {
    return Status::kCorrupt;
  }
  page[addr.offset + 10] = 1;
  DLT_RETURN_IF_ERROR(IndexRemove(key));
  --row_count_;
  DLT_ASSIGN_OR_RETURN(uint8_t * h, pager_.GetPageForWrite(0));
  Store<uint64_t>(h + 16, row_count_);
  return Status::kOk;
}

Status MiniDb::Update(uint64_t key, const void* payload, size_t len) {
  DLT_ASSIGN_OR_RETURN(RecordAddr addr, IndexLookup(key));
  DLT_ASSIGN_OR_RETURN(uint8_t * page, pager_.GetPageForWrite(addr.page));
  uint16_t old_len = Load<uint16_t>(page + addr.offset + 8);
  if (old_len == len) {
    std::memcpy(page + addr.offset + kRecHdr, payload, len);
    return Status::kOk;
  }
  // Size change: delete + reinsert (the heap stores records inline).
  DLT_RETURN_IF_ERROR(Delete(key));
  return Insert(key, payload, len);
}

}  // namespace dlt
