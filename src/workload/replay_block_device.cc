#include "src/workload/replay_block_device.h"

#include "src/drv/bcm_sdhost_driver.h"

namespace dlt {

namespace {
// Greedy chunking into the granularities the record campaign covered:
// exactly 1, (1,8], (24,32], (120,128], (248,256] blocks.
uint32_t PickChunk(uint32_t remaining) {
  if (remaining >= 256) {
    return 256;
  }
  if (remaining >= 128) {
    return 128;
  }
  if (remaining >= 32) {
    return 32;
  }
  if (remaining >= 8) {
    return 8;
  }
  return remaining;  // 1..7, covered by the RW_1 / RW_8 templates
}
}  // namespace

Status ReplayBlockDevice::DoOp(uint64_t rw, uint64_t lba, uint32_t count, uint8_t* out,
                               const uint8_t* in) {
  while (count > 0) {
    uint32_t chunk = PickChunk(count);
    size_t chunk_bytes = static_cast<size_t>(chunk) * 512;
    ReplayArgs args;
    args.scalars["rw"] = rw;
    args.scalars["blkcnt"] = chunk;
    args.scalars["blkid"] = lba;
    args.scalars["flag"] = 0;
    if (out != nullptr) {
      args.buffers["buf"] = BufferView{out, chunk_bytes};
    } else {
      args.ro_buffers["buf"] = ConstBufferView{in, chunk_bytes};
    }
    Result<ReplayStats> stats = service_->Invoke(session_, entry_, args);
    if (!stats.ok()) {
      return stats.status();
    }
    ++invocations_[stats->template_name];
    ++ops_;
    lba += chunk;
    if (out != nullptr) {
      out += chunk_bytes;
    } else {
      in += chunk_bytes;
    }
    count -= chunk;
  }
  return Status::kOk;
}

Status ReplayBlockDevice::Read(uint64_t lba, uint32_t count, uint8_t* out) {
  return DoOp(kMmcRwRead, lba, count, out, nullptr);
}

Status ReplayBlockDevice::Write(uint64_t lba, uint32_t count, const uint8_t* data) {
  return DoOp(kMmcRwWrite, lba, count, nullptr, data);
}

}  // namespace dlt
