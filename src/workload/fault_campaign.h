// The seeded fault-matrix campaign: sweeps fault planes × driverlets × seeds,
// each cell a fresh deployment machine running a fixed op sequence under a
// preset FaultPlan, and reports per-cell recovery rates. Every quantity is a
// deterministic function of the configuration — two runs with the same seeds
// produce byte-identical JSON (docs/fault_injection.md describes the format).
// Shared by bench/fault_matrix and `driverletc faultsweep`.
#ifndef SRC_WORKLOAD_FAULT_CAMPAIGN_H_
#define SRC_WORKLOAD_FAULT_CAMPAIGN_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/fault/fault_plan.h"

namespace dlt {

struct FaultMatrixConfig {
  std::vector<uint64_t> seeds{1, 2, 3, 4};
  int ops_per_cell = 6;  // one op = a verified request pair/capture per class
  // Which driverlets to sweep. Empty (the default) means every registered
  // class — RunFaultMatrix resolves it against RegisteredDriverletClasses()
  // (src/workload/deploy_util.h), so new classes join the sweep automatically.
  std::vector<std::string> driverlets;
  // Recovery ladder configuration for every cell's service.
  uint64_t retry_backoff_us = 100;
  uint64_t quarantine_threshold = 3;
  // Replay engine for every cell's service (compiled programs by default; the
  // interpreter is the differential oracle). Not part of the JSON: both
  // engines must produce identical matrices, and the differential tests
  // compare the serialized bytes across engines to prove it.
  bool use_compiled = true;
};

struct FaultMatrixCell {
  FaultPlane plane = FaultPlane::kMmio;
  std::string driverlet;
  uint64_t seed = 0;
  int ops = 0;
  int recovered = 0;       // op finished with correct data/status
  int retried = 0;         // recovered ops that needed divergence retries
  int failed = 0;          // ops - recovered
  uint64_t data_errors = 0;  // ok status but wrong bytes (silent corruption)
  uint64_t faults_injected = 0;
  uint64_t resets = 0;       // replayer soft resets over the cell
  uint64_t attempts = 0;     // execution attempts incl. retries
  uint64_t quarantines = 0;  // sessions quarantined (and reopened) mid-cell
  uint64_t sim_end_us = 0;   // virtual time when the cell finished
};

// Per (plane, driverlet) aggregation across seeds.
struct FaultMatrixSummary {
  FaultPlane plane = FaultPlane::kMmio;
  std::string driverlet;
  int ops = 0;
  int recovered = 0;
  uint64_t faults_injected = 0;
  uint64_t quarantines = 0;
  double recovery_rate = 0.0;  // recovered / ops
};

struct FaultMatrix {
  FaultMatrixConfig config;
  std::vector<FaultMatrixCell> cells;      // plane-major, then driverlet, then seed
  std::vector<FaultMatrixSummary> summary;  // the per-cell matrix of the issue
};

FaultMatrix RunFaultMatrix(const FaultMatrixConfig& cfg);

// Stable-ordered JSON (no wall-clock anywhere: same seeds ⇒ identical bytes).
std::string FaultMatrixToJson(const FaultMatrix& m);

// Human-readable summary table.
void PrintFaultMatrix(const FaultMatrix& m, std::FILE* out);

}  // namespace dlt

#endif  // SRC_WORKLOAD_FAULT_CAMPAIGN_H_
