// Shared deployment/package helpers used by the test suite, the benchmark
// binaries and the fault-matrix campaign: record-and-seal one package per
// driverlet on a fresh developer machine, and stand up a deployment machine
// (devices assigned to the TEE, a ReplayService hosting the package, one open
// session) in a single call.
#ifndef SRC_WORKLOAD_DEPLOY_UTIL_H_
#define SRC_WORKLOAD_DEPLOY_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/kern/block_layer.h"
#include "src/tee/replay_service.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"

namespace dlt {

// A deployment machine with devices assigned to the TEE and a ReplayService
// hosting the given sealed package, with one session already open against it.
// |replayer| is the registered device class's replayer inside the service
// (reset/retry knobs and divergence reports for the ablation benches).
struct Deployment {
  std::unique_ptr<Rpi3Testbed> tb;
  std::unique_ptr<ReplayService> service;
  std::string driverlet;
  SessionId session = 0;
  Replayer* replayer = nullptr;  // owned by |service|
};

inline Deployment MakeDeployment(const std::vector<uint8_t>& sealed,
                                 ReplayServiceConfig cfg = {}) {
  Deployment d;
  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  d.tb = std::make_unique<Rpi3Testbed>(opts);
  d.service = std::make_unique<ReplayService>(&d.tb->tee(), kDeveloperKey, cfg);
  Result<std::string> name = d.service->RegisterDriverlet(sealed.data(), sealed.size());
  if (!name.ok()) {
    std::fprintf(stderr, "package registration failed: %s\n", StatusName(name.status()));
    return d;
  }
  d.driverlet = *name;
  d.replayer = d.service->replayer(d.driverlet);
  Result<SessionId> sid = d.service->OpenSession(d.driverlet);
  if (!sid.ok()) {
    std::fprintf(stderr, "session open failed: %s\n", StatusName(sid.status()));
    return d;
  }
  d.session = *sid;
  return d;
}

// Records a campaign on a fresh developer machine and returns the sealed package.
inline std::vector<uint8_t> BuildMmcPackage() {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordMmcCampaign(&dev);
  return c.ok() ? c->Seal(PackageFormat::kText, kDeveloperKey) : std::vector<uint8_t>{};
}
inline std::vector<uint8_t> BuildUsbPackage() {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordUsbCampaign(&dev);
  return c.ok() ? c->Seal(PackageFormat::kText, kDeveloperKey) : std::vector<uint8_t>{};
}
inline std::vector<uint8_t> BuildCameraPackage() {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordCameraCampaign(&dev);
  return c.ok() ? c->Seal(PackageFormat::kText, kDeveloperKey) : std::vector<uint8_t>{};
}
inline std::vector<uint8_t> BuildDisplayPackage() {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordDisplayCampaign(&dev);
  return c.ok() ? c->Seal(PackageFormat::kText, kDeveloperKey) : std::vector<uint8_t>{};
}
inline std::vector<uint8_t> BuildTouchPackage() {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordTouchCampaign(&dev);
  return c.ok() ? c->Seal(PackageFormat::kText, kDeveloperKey) : std::vector<uint8_t>{};
}
inline std::vector<uint8_t> BuildFtpmPackage() {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordFtpmCampaign(&dev);
  return c.ok() ? c->Seal(PackageFormat::kText, kDeveloperKey) : std::vector<uint8_t>{};
}
inline std::vector<uint8_t> BuildCryptoaccPackage() {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordCryptoaccCampaign(&dev);
  return c.ok() ? c->Seal(PackageFormat::kText, kDeveloperKey) : std::vector<uint8_t>{};
}

// The registered driverlet classes — THE class list. Everything that sweeps
// "all driverlets" (bench/fig8_micro, `driverletc record/trace/faultsweep`,
// the boundary fuzzer's class tables, the fault matrix) iterates this table
// instead of hard-coding {mmc, usb, camera}; adding a class here is the only
// registration step a new device class needs outside its own sources.
struct DriverletClassSpec {
  const char* name;    // campaign/driverlet name ("mmc")
  const char* entry;   // replay entry ("replay_mmc")
  std::vector<uint8_t> (*build_package)();
  Result<RecordCampaign> (*record)(Rpi3Testbed*);
};

inline const std::vector<DriverletClassSpec>& RegisteredDriverletClasses() {
  static const std::vector<DriverletClassSpec> kClasses = {
      {"mmc", kMmcEntry, &BuildMmcPackage, &RecordMmcCampaign},
      {"usb", kUsbEntry, &BuildUsbPackage, &RecordUsbCampaign},
      {"camera", kCameraEntry, &BuildCameraPackage, &RecordCameraCampaign},
      {"ftpm", kFtpmEntry, &BuildFtpmPackage, &RecordFtpmCampaign},
      {"cryptoacc", kCryptoaccEntry, &BuildCryptoaccPackage, &RecordCryptoaccCampaign},
  };
  return kClasses;
}

inline const DriverletClassSpec* FindDriverletClass(std::string_view name) {
  for (const DriverletClassSpec& c : RegisteredDriverletClasses()) {
    if (name == c.name) {
      return &c;
    }
  }
  return nullptr;
}

inline std::vector<std::string> RegisteredDriverletClassNames() {
  std::vector<std::string> names;
  for (const DriverletClassSpec& c : RegisteredDriverletClasses()) {
    names.emplace_back(c.name);
  }
  return names;
}

// Synthesizes one covered invoke (scalars + buffers) for a driverlet entry —
// the shared per-class arg table behind `driverletc smoke/trace/fleet/ring`
// and the registry-driven benches. |buf|/|aux| back the BufferViews and must
// outlive the invoke; |round| varies addresses and payloads across repeated
// calls while staying inside each class's recorded coverage. Returns false
// for entries with no synthesizable load (touch needs injected input events).
inline bool CoveredArgsFor(const std::string& entry, int round, std::vector<uint8_t>* buf,
                           std::vector<uint8_t>* aux, ReplayArgs* args) {
  *args = ReplayArgs{};
  if (entry == kMmcEntry || entry == kUsbEntry) {
    buf->assign(8 * 512, static_cast<uint8_t>(0x40 + round % 64));
    args->scalars = {{"rw", kMmcRwWrite},
                     {"blkcnt", 8},
                     {"blkid", 2048 + static_cast<uint64_t>(round % 8) * 8},
                     {"flag", 0}};
    args->buffers["buf"] = BufferView{buf->data(), buf->size()};
    return true;
  }
  if (entry == kCameraEntry) {
    buf->assign(Vc4Firmware::FrameBytes(1440) + 4096, 0);
    aux->assign(4, 0);
    args->scalars = {{"frame", 1}, {"resolution", 720}, {"buf_size", buf->size()}};
    args->buffers["buf"] = BufferView{buf->data(), buf->size()};
    args->buffers["img_size"] = BufferView{aux->data(), aux->size()};
    return true;
  }
  if (entry == kDisplayEntry) {
    buf->assign(64 * 64 * 4, 0x33);
    args->scalars = {{"x", 0}, {"y", 0}, {"w", 64}, {"h", 64}};
    args->buffers["buf"] = BufferView{buf->data(), buf->size()};
    return true;
  }
  if (entry == kFtpmEntry) {
    buf->assign(kFtpmPcrBytes, 0);
    aux->assign(kFtpmMaxRandom, 0);
    args->scalars = {{"ord", kFtpmOrdGetRandom},
                     {"arg", 32 + static_cast<uint64_t>(round % 8) * 32}};
    args->ro_buffers["req"] = ConstBufferView{buf->data(), buf->size()};
    args->buffers["rsp"] = BufferView{aux->data(), aux->size()};
    return true;
  }
  if (entry == kCryptoaccEntry) {
    buf->assign(kCryptoChunkBytes, static_cast<uint8_t>(0x21 + round % 64));
    aux->assign(kCryptoChunkBytes, 0);
    args->scalars = {{"op", kCaOpEncrypt},
                     {"key", 0xc0ffee00 + static_cast<uint64_t>(round % 16)},
                     {"len", buf->size()}};
    args->ro_buffers["buf"] = ConstBufferView{buf->data(), buf->size()};
    args->buffers["out"] = BufferView{aux->data(), aux->size()};
    return true;
  }
  return false;
}

// The --seeds/--base-seed flag pair every seeded sweep driver accepts
// (bench/conformance_sweep, bench/fault_matrix, `driverletc faultsweep` and
// `driverletc check`): a contiguous range of |count| seeds starting at |base|.
struct SeedRange {
  int count = 4;
  uint64_t base = 1;

  bool valid() const { return count >= 1; }
  std::vector<uint64_t> List() const {
    std::vector<uint64_t> seeds;
    if (count > 0) {
      seeds.reserve(static_cast<size_t>(count));
      for (int i = 0; i < count; ++i) {
        seeds.push_back(base + static_cast<uint64_t>(i));
      }
    }
    return seeds;
  }
};

inline bool IsSeedRangeFlag(const char* flag) {
  return std::strcmp(flag, "--seeds") == 0 || std::strcmp(flag, "--base-seed") == 0;
}

// Applies one flag/value pair; call only when IsSeedRangeFlag(flag) is true.
inline void ApplySeedRangeFlag(SeedRange* r, const char* flag, const char* value) {
  if (std::strcmp(flag, "--seeds") == 0) {
    r->count = std::atoi(value);
  } else if (std::strcmp(flag, "--base-seed") == 0) {
    r->base = std::strtoull(value, nullptr, 0);
  }
}

// Deterministic test payload: |len| bytes derived from |seed|.
inline std::vector<uint8_t> PatternBuf(size_t len, uint64_t seed) {
  std::vector<uint8_t> buf(len);
  for (size_t i = 0; i < len; ++i) {
    buf[i] = static_cast<uint8_t>((seed * 131 + i * 7 + (i >> 8)) & 0xff);
  }
  return buf;
}

// Horizontal rule for bench/tool table output.
inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

// In-memory BlockDevice with no timing model; for engine-level tests (MiniDb,
// page cache) that do not need the simulated machine.
class MemBlockDevice : public BlockDevice {
 public:
  explicit MemBlockDevice(uint64_t sectors) : sectors_(sectors) {}

  Status Read(uint64_t lba, uint32_t count, uint8_t* out) override {
    if (lba + count > sectors_) {
      return Status::kOutOfRange;
    }
    for (uint32_t i = 0; i < count; ++i) {
      auto it = data_.find(lba + i);
      if (it == data_.end()) {
        std::memset(out + i * 512, 0, 512);
      } else {
        std::memcpy(out + i * 512, it->second.data(), 512);
      }
    }
    ++ops_;
    return Status::kOk;
  }

  Status Write(uint64_t lba, uint32_t count, const uint8_t* data) override {
    if (lba + count > sectors_) {
      return Status::kOutOfRange;
    }
    for (uint32_t i = 0; i < count; ++i) {
      auto& sector = data_[lba + i];
      sector.resize(512);
      std::memcpy(sector.data(), data + i * 512, 512);
    }
    ++ops_;
    return Status::kOk;
  }

  Status Flush() override { return Status::kOk; }
  uint64_t io_ops() const override { return ops_; }

 private:
  uint64_t sectors_;
  std::map<uint64_t, std::vector<uint8_t>> data_;
  uint64_t ops_ = 0;
};

}  // namespace dlt

#endif  // SRC_WORKLOAD_DEPLOY_UTIL_H_
