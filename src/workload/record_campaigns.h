// The paper's three record campaigns (§6), runnable on a developer-machine
// testbed. Each exercises the gold driver through RecordSessions and returns a
// campaign holding the distilled interaction templates:
//   MMC    — 10 runs: RD/WR x {1,8,32,128,256} blocks (Table 3);
//   USB    — same 10 runs against the mass-storage driver (§6.2.2);
//   Camera — 9 runs: {1,10,100} frames x {720,1080,1440}p, which merge into 3
//            templates (OneShot/ShortBurst/LongBurst, Table 5) because the
//            driver's state-transition path is resolution-independent.
#ifndef SRC_WORKLOAD_RECORD_CAMPAIGNS_H_
#define SRC_WORKLOAD_RECORD_CAMPAIGNS_H_

#include "src/core/campaign.h"
#include "src/workload/rpi3_testbed.h"

namespace dlt {

inline constexpr const char* kMmcEntry = "replay_mmc";
inline constexpr const char* kUsbEntry = "replay_usb";
inline constexpr const char* kCameraEntry = "replay_camera";
inline constexpr const char* kDisplayEntry = "replay_display";
inline constexpr const char* kTouchEntry = "replay_touch";
inline constexpr const char* kFtpmEntry = "replay_ftpm";
inline constexpr const char* kCryptoaccEntry = "replay_cryptoacc";

// The developer signing key used throughout examples/tests/benches.
inline constexpr const char* kDeveloperKey = "driverlet-developer-key-v1";

Result<RecordCampaign> RecordMmcCampaign(Rpi3Testbed* tb);
Result<RecordCampaign> RecordUsbCampaign(Rpi3Testbed* tb);
Result<RecordCampaign> RecordCameraCampaign(Rpi3Testbed* tb);
// Trusted-UI display driverlet (paper §2.1 third use case): blit a bitmap to
// given panel coordinates. All geometries share one transition path, so the
// campaign's runs merge into a single template.
Result<RecordCampaign> RecordDisplayCampaign(Rpi3Testbed* tb);
// Trusted-input driverlet (the other half of trusted UI): wait for and deliver
// one touch sample.
Result<RecordCampaign> RecordTouchCampaign(Rpi3Testbed* tb);
// fTPM driverlet (fourth class): one template per ordinal — get-random with a
// variable-length response, PCR extend/read, and quote.
Result<RecordCampaign> RecordFtpmCampaign(Rpi3Testbed* tb);
// Crypto-accelerator driverlet (fifth class): cipher jobs at 1/2/3/4
// descriptor-ring chunks (encrypt and decrypt merge — the op is a symbolic
// descriptor operand) plus a single-descriptor digest.
Result<RecordCampaign> RecordCryptoaccCampaign(Rpi3Testbed* tb);

// One MMC record run (exposed for targeted tests): records template |name| for
// the given request and returns the distilled template.
Result<InteractionTemplate> RecordMmcRun(Rpi3Testbed* tb, const std::string& name, uint64_t rw,
                                         uint64_t blkcnt, uint64_t blkid);
Result<InteractionTemplate> RecordUsbRun(Rpi3Testbed* tb, const std::string& name, uint64_t rw,
                                         uint64_t blkcnt, uint64_t blkid);
Result<InteractionTemplate> RecordCameraRun(Rpi3Testbed* tb, const std::string& name,
                                            uint64_t frames, uint64_t resolution);
Result<InteractionTemplate> RecordDisplayRun(Rpi3Testbed* tb, const std::string& name, uint64_t x,
                                             uint64_t y, uint64_t w, uint64_t h);
Result<InteractionTemplate> RecordFtpmRun(Rpi3Testbed* tb, const std::string& name, uint64_t ord,
                                          uint64_t arg);
Result<InteractionTemplate> RecordCryptoaccRun(Rpi3Testbed* tb, const std::string& name,
                                               uint64_t op, uint64_t key, uint64_t len);

}  // namespace dlt

#endif  // SRC_WORKLOAD_RECORD_CAMPAIGNS_H_
