// MiniDb: a small embedded database standing in for SQLite in the paper's
// storage benchmarks (§7.3.1). Provides a journaled pager over a BlockDevice
// (4 KB pages = 8 sectors, matching the block-layer alignment the templates
// encode), a heap table of keyed records, and an ISAM-style two-level index.
// The six Table 9 scripts run on top of this engine.
#ifndef SRC_WORKLOAD_MINIDB_H_
#define SRC_WORKLOAD_MINIDB_H_

#include <list>
#include <map>
#include <vector>

#include "src/kern/block_layer.h"

namespace dlt {

class Pager {
 public:
  static constexpr uint32_t kPageSize = 4096;
  static constexpr uint32_t kSectorsPerPage = kPageSize / 512;
  static constexpr uint32_t kJournalHeaderPage = 1;
  static constexpr uint32_t kJournalSlots = 64;
  static constexpr uint32_t kFirstDataPage = 2 + kJournalSlots;

  Pager(BlockDevice* dev, uint32_t max_pages, size_t cache_pages = 12)
      : dev_(dev), max_pages_(max_pages), cache_capacity_(cache_pages) {}

  Result<uint8_t*> GetPage(uint32_t pgno);
  // Journals the page's pre-image on first modification in the transaction.
  Result<uint8_t*> GetPageForWrite(uint32_t pgno);
  Result<uint32_t> AllocatePage();

  Status BeginTxn();
  Status CommitTxn();  // write journal, flush dirty pages, clear journal

  uint32_t allocated_pages() const { return next_page_; }
  void set_next_page(uint32_t p) { next_page_ = p; }

 private:
  struct CachedPage {
    std::vector<uint8_t> data;
    bool dirty = false;
  };

  Status Evict();

  BlockDevice* dev_;
  uint32_t max_pages_;
  size_t cache_capacity_;
  uint32_t next_page_ = kFirstDataPage;
  std::map<uint32_t, CachedPage> cache_;
  std::list<uint32_t> lru_;
  bool in_txn_ = false;
  std::vector<uint32_t> journaled_;  // pages with a pre-image this txn
};

class MiniDb {
 public:
  explicit MiniDb(BlockDevice* dev, uint32_t max_pages = 4096);

  Status Open();  // formats an empty database

  Status Insert(uint64_t key, const void* payload, size_t len);
  // Point lookup through the index.
  Result<std::vector<uint8_t>> Lookup(uint64_t key);
  // Range scan over the table heap; returns the number of matching records.
  Result<size_t> Scan(uint64_t min_key, uint64_t max_key);
  Status Delete(uint64_t key);
  Status Update(uint64_t key, const void* payload, size_t len);
  Status Commit() { return pager_.CommitTxn(); }

  size_t row_count() const { return row_count_; }

 private:
  struct RecordAddr {
    uint32_t page = 0;
    uint16_t offset = 0;
  };

  Result<RecordAddr> IndexLookup(uint64_t key);
  Status IndexInsert(uint64_t key, RecordAddr addr);
  Status IndexRemove(uint64_t key);

  Pager pager_;
  uint32_t table_head_ = 0;   // first heap page
  uint32_t table_tail_ = 0;
  uint32_t index_head_ = 0;   // first index page (linked list of sorted runs)
  size_t row_count_ = 0;
  bool open_ = false;
};

}  // namespace dlt

#endif  // SRC_WORKLOAD_MINIDB_H_
