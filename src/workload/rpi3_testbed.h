// Rpi3Testbed: assembles the full simulated platform of paper Table 2 — the
// machine, the three devices + media, the normal-world kernel io + gold
// drivers, and (optionally) the TEE with devices assigned via TZASC. Reused by
// tests, benches and examples.
//
// Two roles, mirroring the paper's workflow:
//   - developer machine (secure_io=false): gold drivers run natively; record
//     campaigns execute here and produce signed driverlet packages;
//   - deployment machine (secure_io=true): device instances are assigned to
//     the TEE; normal-world access faults and the replayer serves secure IO.
#ifndef SRC_WORKLOAD_RPI3_TESTBED_H_
#define SRC_WORKLOAD_RPI3_TESTBED_H_

#include <memory>

#include "src/dev/display/display_controller.h"
#include "src/dev/display/touch_controller.h"
#include "src/dev/uart/uart_controller.h"
#include "src/dev/mmc/mmc_controller.h"
#include "src/dev/usb/dwc2_controller.h"
#include "src/dev/usb/usb_mass_storage.h"
#include "src/dev/vc4/vc4_firmware.h"
#include "src/dev/ftpm/ftpm_device.h"
#include "src/dev/cryptoacc/cryptoacc_device.h"
#include "src/drv/bcm_sdhost_driver.h"
#include "src/drv/ftpm_driver.h"
#include "src/drv/cryptoacc_driver.h"
#include "src/drv/dsi_display_driver.h"
#include "src/drv/touch_driver.h"
#include "src/drv/dwc2_storage_driver.h"
#include "src/drv/vchiq_camera_driver.h"
#include "src/kern/passthrough_io.h"
#include "src/tee/secure_world.h"

namespace dlt {

// Media capacities from the paper: >31M MMC sectors, >15M USB sectors (§7.2).
inline constexpr uint64_t kSdSectors = 0x1df7800;    // ~31.4M sectors (16 GB card)
inline constexpr uint64_t kUsbSectors = 0xf00000;    // ~15.7M sectors (8 GB stick)
inline constexpr PhysAddr kKernPoolBase = 0x0200'0000;
inline constexpr uint64_t kKernPoolSize = 8ull << 20;

struct TestbedOptions {
  bool secure_io = false;        // assign MMC/DMA/USB/VC4 instances to the TEE
  bool probe_drivers = true;     // run full native init (developer machine)
  bool pipelined_camera = false; // native streaming capture mode
};

class Rpi3Testbed {
 public:
  explicit Rpi3Testbed(const TestbedOptions& opts = {});

  Machine& machine() { return machine_; }
  SimClock& clock() { return machine_.clock(); }
  PassthroughIo& kern_io() { return *kern_io_; }
  SecureWorld& tee() { return *tee_; }

  uint16_t dma_id() const { return 0; }
  uint16_t mmc_id() const { return mmc_id_; }
  uint16_t usb_id() const { return usb_id_; }
  uint16_t vchiq_id() const { return vchiq_id_; }
  uint16_t display_id() const { return display_id_; }
  uint16_t touch_id() const { return touch_id_; }
  uint16_t uart_id() const { return uart_id_; }
  uint16_t ftpm_id() const { return ftpm_id_; }
  uint16_t crypto_id() const { return crypto_id_; }

  MmcController& mmc() { return *mmc_; }
  SdCard& sd_card() { return sd_card_; }
  BlockMedium& sd_medium() { return sd_medium_; }
  Dwc2Controller& usb() { return *usb_; }
  UsbMassStorage& usb_storage() { return *usb_storage_; }
  BlockMedium& usb_medium() { return usb_medium_; }
  Vc4Firmware& vc4() { return *vc4_; }
  DisplayController& display() { return *display_; }
  TouchController& touch() { return *touch_; }
  UartController& uart() { return *uart_; }
  FtpmDevice& ftpm() { return *ftpm_; }
  CryptoaccDevice& cryptoacc() { return *cryptoacc_; }

  BcmSdhostDriver& mmc_driver() { return *mmc_driver_; }
  Dwc2StorageDriver& usb_driver() { return *usb_driver_; }
  VchiqCameraDriver& cam_driver() { return *cam_driver_; }
  DsiDisplayDriver& display_driver() { return *display_driver_; }
  TouchDriver& touch_driver() { return *touch_driver_; }
  FtpmDriver& ftpm_driver() { return *ftpm_driver_; }
  CryptoaccDriver& crypto_driver() { return *crypto_driver_; }

  // Driver configs, for constructing per-record-run driver instances that
  // route through a RecordSession instead of the kernel io.
  BcmSdhostDriver::Config mmc_config() const { return mmc_cfg_; }
  Dwc2StorageDriver::Config usb_config() const { return usb_cfg_; }
  VchiqCameraDriver::Config cam_config() const { return cam_cfg_; }
  DsiDisplayDriver::Config display_config() const { return display_cfg_; }
  TouchDriver::Config touch_config() const { return touch_cfg_; }
  FtpmDriver::Config ftpm_config() const { return ftpm_cfg_; }
  CryptoaccDriver::Config crypto_config() const { return crypto_cfg_; }

  // Returns every IO device (not the DMA engine) to the post-init clean state.
  void ResetDevices();

 private:
  Machine machine_;
  BlockMedium sd_medium_{kSdSectors};
  BlockMedium usb_medium_{kUsbSectors};
  SdCard sd_card_{&sd_medium_};
  std::unique_ptr<MmcController> mmc_;
  std::unique_ptr<Dwc2Controller> usb_;
  std::unique_ptr<UsbMassStorage> usb_storage_;
  std::unique_ptr<Vc4Firmware> vc4_;
  std::unique_ptr<DisplayController> display_;
  std::unique_ptr<TouchController> touch_;
  std::unique_ptr<UartController> uart_;
  std::unique_ptr<FtpmDevice> ftpm_;
  std::unique_ptr<CryptoaccDevice> cryptoacc_;
  uint16_t mmc_id_ = 0;
  uint16_t uart_id_ = 0;
  uint16_t display_id_ = 0;
  uint16_t touch_id_ = 0;
  uint16_t usb_id_ = 0;
  uint16_t vchiq_id_ = 0;
  uint16_t ftpm_id_ = 0;
  uint16_t crypto_id_ = 0;

  CmaPool kern_pool_{kKernPoolBase, kKernPoolSize};
  std::unique_ptr<PassthroughIo> kern_io_;
  std::unique_ptr<SecureWorld> tee_;

  BcmSdhostDriver::Config mmc_cfg_;
  Dwc2StorageDriver::Config usb_cfg_;
  VchiqCameraDriver::Config cam_cfg_;
  DsiDisplayDriver::Config display_cfg_;
  TouchDriver::Config touch_cfg_;
  FtpmDriver::Config ftpm_cfg_;
  CryptoaccDriver::Config crypto_cfg_;
  std::unique_ptr<BcmSdhostDriver> mmc_driver_;
  std::unique_ptr<Dwc2StorageDriver> usb_driver_;
  std::unique_ptr<VchiqCameraDriver> cam_driver_;
  std::unique_ptr<DsiDisplayDriver> display_driver_;
  std::unique_ptr<TouchDriver> touch_driver_;
  std::unique_ptr<FtpmDriver> ftpm_driver_;
  std::unique_ptr<CryptoaccDriver> crypto_driver_;
};

}  // namespace dlt

#endif  // SRC_WORKLOAD_RPI3_TESTBED_H_
