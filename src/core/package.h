// Driverlet packages: serialized interaction templates, LZSS-compressed and
// HMAC-signed. The trustlet statically links the replayer plus a "compressed
// package of interaction templates" (paper §5); the replayer verifies the
// developer signature before use and decompresses inside the TEE.
#ifndef SRC_CORE_PACKAGE_H_
#define SRC_CORE_PACKAGE_H_

#include <string>
#include <vector>

#include "src/core/interaction_template.h"

namespace dlt {

enum class PackageFormat : uint8_t {
  kText = 0,    // the recorder's human-readable documents (paper §7.3.4)
  kBinary = 1,  // the paper's suggested binary form
};

struct DriverletPackage {
  std::string driverlet;  // e.g. "mmc", "usb", "camera"
  std::vector<InteractionTemplate> templates;
};

struct PackageSizes {
  size_t serialized = 0;  // before compression
  size_t compressed = 0;  // LZSS payload
  size_t sealed = 0;      // full envelope incl. signature
};

// Serializes + compresses + signs. |key| is the developer signing key.
std::vector<uint8_t> SealPackage(const DriverletPackage& pkg, PackageFormat format,
                                 std::string_view key, PackageSizes* sizes = nullptr);

// Verifies the signature, decompresses and parses. Any tampering yields kCorrupt.
Result<DriverletPackage> OpenPackage(const uint8_t* data, size_t len, std::string_view key);

}  // namespace dlt

#endif  // SRC_CORE_PACKAGE_H_
