// Driverlet packages: serialized interaction templates, LZSS-compressed and
// HMAC-signed. The trustlet statically links the replayer plus a "compressed
// package of interaction templates" (paper §5); the replayer verifies the
// developer signature before use and decompresses inside the TEE.
//
// Two envelope generations (docs/template_store.md):
//  - v1 ("DLTPKG01"): text or binary-v1 payload, LZSS-compressed. Must be
//    decompressed and fully parsed before any template is usable.
//  - v2 ("DLTPKG02"): binary-v2 payload (serialize_binary.h PackageView
//    layout), stored UNCOMPRESSED so the sealed file can be mmap'ed and read
//    in place — signature check + directory parse at load, event bodies
//    hydrated on first use. The size cost of skipping LZSS is the price of
//    zero-copy; bench/store_scale quantifies the trade.
#ifndef SRC_CORE_PACKAGE_H_
#define SRC_CORE_PACKAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/interaction_template.h"
#include "src/core/serialize_binary.h"

namespace dlt {

enum class PackageFormat : uint8_t {
  kText = 0,    // the recorder's human-readable documents (paper §7.3.4)
  kBinary = 1,  // the paper's suggested binary form
};

struct DriverletPackage {
  std::string driverlet;  // e.g. "mmc", "usb", "camera"
  std::vector<InteractionTemplate> templates;
};

struct PackageSizes {
  size_t serialized = 0;  // before compression
  size_t compressed = 0;  // LZSS payload (== serialized for v2: uncompressed)
  size_t sealed = 0;      // full envelope incl. signature
};

// Serializes + compresses + signs. |key| is the developer signing key.
std::vector<uint8_t> SealPackage(const DriverletPackage& pkg, PackageFormat format,
                                 std::string_view key, PackageSizes* sizes = nullptr);

// Seals into the v2 zero-copy envelope: binary-v2 payload, uncompressed.
std::vector<uint8_t> SealPackageV2(const DriverletPackage& pkg, std::string_view key,
                                   PackageSizes* sizes = nullptr);

// Package wire framings, for callers (fuzzer, tools) that speak bytes.
enum class PackageWire : uint8_t {
  kV1Text = 0,    // v1 envelope, text payload
  kV1Binary = 1,  // v1 envelope, binary-v1 payload
  kV2 = 2,        // v2 envelope, binary-v2 payload
};

// Seals a caller-supplied SERIALIZED payload (pre-compression bytes for v1
// framings, raw binary-v2 bytes for kV2) into a correctly signed envelope.
// This exists so the boundary fuzzer can mutate the payload the parser sees
// while keeping the signature valid — a correctly signed envelope with a
// garbage interior is exactly the adversarial input RegisterDriverlet must
// reject cleanly.
std::vector<uint8_t> SealPackageRaw(std::string_view driverlet, PackageWire wire,
                                    const std::vector<uint8_t>& payload, std::string_view key);

// Verifies the signature and parses either envelope generation (v2 payloads
// are hydrated eagerly here). Any tampering yields kCorrupt.
Result<DriverletPackage> OpenPackage(const uint8_t* data, size_t len, std::string_view key);

// Zero-copy open of a v2 envelope: verifies the signature and parses only the
// directory. |data| must outlive the returned view. v1 envelopes yield
// kUnsupported (they cannot be read in place).
struct SealedView {
  std::string driverlet;
  PackageView view;
};
Result<SealedView> OpenPackageView(const uint8_t* data, size_t len, std::string_view key);

// A verified v2 package mapped read-only from disk. Owns the mapping (mmap,
// with a heap-read fallback); the embedded PackageView points into it, so the
// object must outlive every template hydrated from it — TemplateStore keeps a
// shared_ptr in each Population snapshot that references the package.
class MappedPackage {
 public:
  static Result<std::shared_ptr<const MappedPackage>> Map(const std::string& path,
                                                          std::string_view key);
  ~MappedPackage();

  MappedPackage(const MappedPackage&) = delete;
  MappedPackage& operator=(const MappedPackage&) = delete;

  const std::string& driverlet() const { return driverlet_; }
  const PackageView& view() const { return view_; }
  size_t file_bytes() const { return len_; }
  bool mmapped() const { return mapped_; }

 private:
  MappedPackage() = default;

  const uint8_t* data_ = nullptr;
  size_t len_ = 0;
  bool mapped_ = false;            // mmap'ed vs heap fallback
  std::vector<uint8_t> fallback_;  // owns bytes when !mapped_
  std::string driverlet_;
  PackageView view_;
};

}  // namespace dlt

#endif  // SRC_CORE_PACKAGE_H_
