// DriverIo: the interposition boundary where driver/device interactions are
// observable — exactly the three interfaces the paper records (§4.1):
//   Program <-> Driver   (entry arguments, data buffers)
//   Env     <-> Driver   (DMA allocation, random bytes, timekeeping)
//   Device  <-> Driver   (registers, shared-memory descriptors, interrupts)
//
// Gold drivers perform ALL such traffic through this facade. Three
// implementations exist:
//   kern::PassthroughIo  — native execution (baselines), zero recording cost;
//   core::RecordingIo    — logs raw events + taints + path conditions (§4);
//   (the replayer does not use DriverIo — it interprets template events, §5).
#ifndef SRC_CORE_DRIVER_IO_H_
#define SRC_CORE_DRIVER_IO_H_

#include <cstdint>

#include "src/soc/status.h"
#include "src/soc/types.h"
#include "src/sym/constraint.h"
#include "src/sym/tvalue.h"

namespace dlt {

class DriverIo {
 public:
  virtual ~DriverIo() = default;

  // ---- Device <-> Driver: registers ----
  virtual TValue RegRead32(uint16_t device, uint64_t offset, SourceLoc loc) = 0;
  virtual void RegWrite32(uint16_t device, uint64_t offset, const TValue& value,
                          SourceLoc loc) = 0;

  // ---- Device <-> Driver: shared memory (descriptors, message queues) ----
  // Addresses are TValues so descriptor topology stays symbolic (paper Fig. 4).
  virtual TValue ShmRead32(const TValue& addr, SourceLoc loc) = 0;
  virtual void ShmWrite32(const TValue& addr, const TValue& value, SourceLoc loc) = 0;

  // ---- Device <-> Driver: interrupts ----
  virtual Status WaitForIrq(int line, uint64_t timeout_us, SourceLoc loc) = 0;

  // ---- Meta: polling loops (the readl_poll_timeout analogue) ----
  // Spins until (*reg & mask) == want (negate=false) or != want (negate=true).
  virtual Status PollReg32(uint16_t device, uint64_t offset, uint32_t mask, uint32_t want,
                           bool negate, uint64_t timeout_us, uint64_t interval_us,
                           SourceLoc loc) = 0;
  virtual void DelayUs(uint64_t us, SourceLoc loc) = 0;

  // ---- Env <-> Driver ----
  // Returns the physical address of |size| bytes of DMA-able contiguous memory.
  virtual TValue DmaAlloc(const TValue& size, SourceLoc loc) = 0;
  // Releases every allocation of the current request. Not a recorded event: the
  // replayer frees a template's allocations when its execution ends (§5).
  virtual void DmaReleaseAll(SourceLoc loc) = 0;
  virtual TValue GetRandomU32(SourceLoc loc) = 0;
  virtual TValue GetTimestampUs(SourceLoc loc) = 0;

  // ---- Program <-> Driver: IO data plane ----
  // Bulk data moves between a program buffer (registered with the session) and
  // DMA memory / a device PIO data port. Data content is not state-changing
  // (§3.1); offsets/lengths may be symbolic.
  virtual void CopyToDma(const TValue& dst, const uint8_t* src_base, const TValue& src_off,
                         const TValue& len, SourceLoc loc) = 0;
  virtual void CopyFromDma(uint8_t* dst_base, const TValue& dst_off, const TValue& src,
                           const TValue& len, SourceLoc loc) = 0;
  virtual void PioIn(uint16_t device, uint64_t offset, uint8_t* dst_base, const TValue& dst_off,
                     const TValue& len, SourceLoc loc) = 0;
  virtual void PioOut(uint16_t device, uint64_t offset, const uint8_t* src_base,
                      const TValue& src_off, const TValue& len, SourceLoc loc) = 0;

  // ---- Control-flow observation ----
  // Drivers branch on tainted values through Branch(); the recorder logs the
  // (possibly negated) comparison as a path condition — the concolic-execution
  // step that discovers constraints and state-changing inputs (§4.2, Challenge I).
  virtual bool Branch(const TValue& lhs, Cmp cmp, const TValue& rhs, SourceLoc loc) = 0;

  // Virtual time, for drivers that pace themselves (e.g. periodic bus tuning).
  virtual uint64_t NowUs() = 0;
};

}  // namespace dlt

#endif  // SRC_CORE_DRIVER_IO_H_
