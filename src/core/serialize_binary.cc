#include "src/core/serialize_binary.h"

#include <algorithm>
#include <cstring>
#include <set>

namespace dlt {

namespace {

constexpr uint32_t kMagic = 0x544c4442;  // "BDLT"
constexpr uint8_t kVersion = 1;
constexpr uint8_t kVersionV2 = 2;
// v2 fixed header: magic(4) version(1) count(4, LE) dir_len(4, LE).
constexpr size_t kV2HeaderBytes = 13;

void PutVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

void PutString(const std::string& s, std::vector<uint8_t>* out) {
  PutVarint(s.size(), out);
  out->insert(out->end(), s.begin(), s.end());
}

void PutExpr(const ExprRef& e, std::vector<uint8_t>* out) {
  if (e == nullptr) {
    out->push_back(0xff);  // absent marker
    return;
  }
  out->push_back(static_cast<uint8_t>(e->op()));
  switch (e->op()) {
    case ExprOp::kConst:
      PutVarint(e->constant(), out);
      break;
    case ExprOp::kInput:
      PutString(e->input_name(), out);
      break;
    case ExprOp::kNot:
      PutExpr(e->lhs(), out);
      break;
    default:
      PutExpr(e->lhs(), out);
      PutExpr(e->rhs(), out);
      break;
  }
}

void PutConstraint(const Constraint& c, std::vector<uint8_t>* out) {
  PutVarint(c.atoms().size(), out);
  for (const auto& a : c.atoms()) {
    PutExpr(a.lhs, out);
    out->push_back(static_cast<uint8_t>(a.cmp));
    PutExpr(a.rhs, out);
  }
}

void PutEvent(const TemplateEvent& e, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(e.kind));
  PutVarint(e.device, out);
  PutVarint(e.reg_off, out);
  PutExpr(e.addr, out);
  PutString(e.bind, out);
  out->push_back(e.state_changing ? 1 : 0);
  PutConstraint(e.constraint, out);
  PutExpr(e.value, out);
  PutString(e.buffer, out);
  PutExpr(e.buf_offset, out);
  PutVarint(static_cast<uint64_t>(e.irq_line + 1), out);
  PutVarint(e.mask, out);
  PutVarint(e.want, out);
  out->push_back(static_cast<uint8_t>(e.poll_cmp));
  PutVarint(e.timeout_us, out);
  PutVarint(e.interval_us, out);
  PutVarint(e.recorded_iters, out);
  PutString(e.file, out);
  PutVarint(static_cast<uint64_t>(e.line), out);
  PutVarint(e.body.size(), out);
  for (const auto& child : e.body) {
    PutEvent(child, out);
  }
}

class Cursor {
 public:
  Cursor(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  Result<uint64_t> Varint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= len_ || shift > 63) {
        return Status::kCorrupt;
      }
      uint8_t b = data_[pos_++];
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) {
        return v;
      }
      shift += 7;
    }
  }

  Result<uint8_t> Byte() {
    if (pos_ >= len_) {
      return Status::kCorrupt;
    }
    return data_[pos_++];
  }

  Result<std::string> String() {
    DLT_ASSIGN_OR_RETURN(uint64_t n, Varint());
    if (pos_ + n > len_) {
      return Status::kCorrupt;
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  Result<ExprRef> ExprTree(int depth = 0) {
    if (depth > 64) {
      return Status::kCorrupt;
    }
    DLT_ASSIGN_OR_RETURN(uint8_t tag, Byte());
    if (tag == 0xff) {
      return ExprRef(nullptr);
    }
    if (tag > static_cast<uint8_t>(ExprOp::kNot)) {
      return Status::kCorrupt;
    }
    ExprOp op = static_cast<ExprOp>(tag);
    switch (op) {
      case ExprOp::kConst: {
        DLT_ASSIGN_OR_RETURN(uint64_t v, Varint());
        return Expr::Const(v);
      }
      case ExprOp::kInput: {
        DLT_ASSIGN_OR_RETURN(std::string name, String());
        return Expr::Input(std::move(name));
      }
      case ExprOp::kNot: {
        DLT_ASSIGN_OR_RETURN(ExprRef inner, ExprTree(depth + 1));
        if (inner == nullptr) {
          return Status::kCorrupt;
        }
        return Expr::Not(std::move(inner));
      }
      default: {
        DLT_ASSIGN_OR_RETURN(ExprRef lhs, ExprTree(depth + 1));
        DLT_ASSIGN_OR_RETURN(ExprRef rhs, ExprTree(depth + 1));
        if (lhs == nullptr || rhs == nullptr) {
          return Status::kCorrupt;
        }
        return Expr::Binary(op, std::move(lhs), std::move(rhs));
      }
    }
  }

  Result<Constraint> ConstraintSet() {
    DLT_ASSIGN_OR_RETURN(uint64_t n, Varint());
    Constraint c;
    for (uint64_t i = 0; i < n; ++i) {
      ConstraintAtom a;
      DLT_ASSIGN_OR_RETURN(a.lhs, ExprTree());
      DLT_ASSIGN_OR_RETURN(uint8_t cmp, Byte());
      if (cmp > static_cast<uint8_t>(Cmp::kGe)) {
        return Status::kCorrupt;
      }
      a.cmp = static_cast<Cmp>(cmp);
      DLT_ASSIGN_OR_RETURN(a.rhs, ExprTree());
      if (a.lhs == nullptr || a.rhs == nullptr) {
        return Status::kCorrupt;
      }
      c.AddAtom(std::move(a));
    }
    return c;
  }

  Result<TemplateEvent> Event(int depth = 0) {
    if (depth > 8) {
      return Status::kCorrupt;
    }
    TemplateEvent e;
    DLT_ASSIGN_OR_RETURN(uint8_t kind, Byte());
    if (kind > static_cast<uint8_t>(EventKind::kPollShm)) {
      return Status::kCorrupt;
    }
    e.kind = static_cast<EventKind>(kind);
    DLT_ASSIGN_OR_RETURN(uint64_t dev, Varint());
    e.device = static_cast<uint16_t>(dev);
    DLT_ASSIGN_OR_RETURN(e.reg_off, Varint());
    DLT_ASSIGN_OR_RETURN(e.addr, ExprTree());
    DLT_ASSIGN_OR_RETURN(e.bind, String());
    DLT_ASSIGN_OR_RETURN(uint8_t sc, Byte());
    e.state_changing = (sc != 0);
    DLT_ASSIGN_OR_RETURN(e.constraint, ConstraintSet());
    DLT_ASSIGN_OR_RETURN(e.value, ExprTree());
    DLT_ASSIGN_OR_RETURN(e.buffer, String());
    DLT_ASSIGN_OR_RETURN(e.buf_offset, ExprTree());
    DLT_ASSIGN_OR_RETURN(uint64_t irq, Varint());
    e.irq_line = static_cast<int>(irq) - 1;
    DLT_ASSIGN_OR_RETURN(uint64_t mask, Varint());
    e.mask = static_cast<uint32_t>(mask);
    DLT_ASSIGN_OR_RETURN(uint64_t want, Varint());
    e.want = static_cast<uint32_t>(want);
    DLT_ASSIGN_OR_RETURN(uint8_t pcmp, Byte());
    if (pcmp > static_cast<uint8_t>(Cmp::kGe)) {
      return Status::kCorrupt;
    }
    e.poll_cmp = static_cast<Cmp>(pcmp);
    DLT_ASSIGN_OR_RETURN(e.timeout_us, Varint());
    DLT_ASSIGN_OR_RETURN(e.interval_us, Varint());
    DLT_ASSIGN_OR_RETURN(uint64_t iters, Varint());
    e.recorded_iters = static_cast<uint32_t>(iters);
    DLT_ASSIGN_OR_RETURN(e.file, String());
    DLT_ASSIGN_OR_RETURN(uint64_t line, Varint());
    e.line = static_cast<int>(line);
    DLT_ASSIGN_OR_RETURN(uint64_t nbody, Varint());
    for (uint64_t i = 0; i < nbody; ++i) {
      DLT_ASSIGN_OR_RETURN(TemplateEvent child, Event(depth + 1));
      e.body.push_back(std::move(child));
    }
    return e;
  }

  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

// Mirrors TemplateStore's admission-time device walk so a v2 directory can
// answer PackageDevices without touching event bodies.
void CollectEventDevices(const std::vector<TemplateEvent>& events, std::set<uint16_t>* out) {
  for (const TemplateEvent& e : events) {
    switch (e.kind) {
      case EventKind::kRegRead:
      case EventKind::kRegWrite:
      case EventKind::kPollReg:
      case EventKind::kPioIn:
      case EventKind::kPioOut:
        out->insert(e.device);
        break;
      default:
        break;
    }
    if (!e.body.empty()) {
      CollectEventDevices(e.body, out);
    }
  }
}

// Directory content for one template: everything selection and admission need,
// without the event bodies. Shared by the v2 writer and PackageView::Parse.
void PutDirectoryEntry(const InteractionTemplate& t, const std::vector<uint16_t>& devices,
                       uint64_t body_off, uint64_t body_len, std::vector<uint8_t>* out) {
  PutString(t.name, out);
  PutString(t.entry, out);
  PutVarint(t.primary_device, out);
  PutVarint(t.params.size(), out);
  for (const auto& p : t.params) {
    PutString(p.name, out);
    out->push_back(p.is_buffer ? 1 : 0);
  }
  PutConstraint(t.initial, out);
  PutVarint(devices.size(), out);
  for (uint16_t d : devices) {
    PutVarint(d, out);
  }
  PutVarint(body_off, out);
  PutVarint(body_len, out);
}

}  // namespace

void AppendTemplateBinary(const InteractionTemplate& t, std::vector<uint8_t>* out) {
  PutString(t.name, out);
  PutString(t.entry, out);
  PutVarint(t.primary_device, out);
  PutVarint(t.params.size(), out);
  for (const auto& p : t.params) {
    PutString(p.name, out);
    out->push_back(p.is_buffer ? 1 : 0);
  }
  PutConstraint(t.initial, out);
  PutVarint(t.events.size(), out);
  for (const auto& e : t.events) {
    PutEvent(e, out);
  }
}

Sha256::Digest TemplateContentHash(const InteractionTemplate& t) {
  std::vector<uint8_t> bytes;
  AppendTemplateBinary(t, &bytes);
  return Sha256::Hash(bytes.data(), bytes.size());
}

std::vector<uint8_t> TemplatesToBinary(const std::vector<InteractionTemplate>& templates) {
  std::vector<uint8_t> out;
  uint32_t magic = kMagic;
  out.resize(4);
  std::memcpy(out.data(), &magic, 4);
  out.push_back(kVersion);
  PutVarint(templates.size(), &out);
  for (const auto& t : templates) {
    AppendTemplateBinary(t, &out);
  }
  return out;
}

std::vector<uint8_t> TemplatesToBinaryV2(const std::vector<InteractionTemplate>& templates) {
  // Body section first: each template's events as one varint-prefixed blob,
  // so the directory can carry final offsets.
  std::vector<uint8_t> body;
  std::vector<std::pair<uint64_t, uint64_t>> ranges;  // (off, len) per template
  ranges.reserve(templates.size());
  for (const auto& t : templates) {
    uint64_t off = body.size();
    PutVarint(t.events.size(), &body);
    for (const auto& e : t.events) {
      PutEvent(e, &body);
    }
    ranges.emplace_back(off, body.size() - off);
  }

  std::vector<uint8_t> dir;
  for (size_t i = 0; i < templates.size(); ++i) {
    const InteractionTemplate& t = templates[i];
    std::set<uint16_t> devs;
    devs.insert(t.primary_device);
    CollectEventDevices(t.events, &devs);
    PutDirectoryEntry(t, std::vector<uint16_t>(devs.begin(), devs.end()), ranges[i].first,
                      ranges[i].second, &dir);
  }

  std::vector<uint8_t> out;
  out.reserve(kV2HeaderBytes + dir.size() + body.size());
  uint32_t magic = kMagic;
  out.resize(4);
  std::memcpy(out.data(), &magic, 4);
  out.push_back(kVersionV2);
  PutU32(static_cast<uint32_t>(templates.size()), &out);
  PutU32(static_cast<uint32_t>(dir.size()), &out);
  out.insert(out.end(), dir.begin(), dir.end());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Result<PackageView> PackageView::Parse(const uint8_t* data, size_t len) {
  if (len < kV2HeaderBytes) {
    return Status::kCorrupt;
  }
  uint32_t magic = 0;
  std::memcpy(&magic, data, 4);
  if (magic != kMagic || data[4] != kVersionV2) {
    return Status::kCorrupt;
  }
  uint32_t count = GetU32(data + 5);
  uint32_t dir_len = GetU32(data + 9);
  if (kV2HeaderBytes + static_cast<size_t>(dir_len) > len) {
    return Status::kCorrupt;
  }
  // Every directory entry occupies at least one byte, so a count beyond
  // dir_len is provably corrupt — and must be rejected BEFORE reserve(count)
  // turns a flipped header byte into a multi-gigabyte allocation.
  if (count > dir_len) {
    return Status::kCorrupt;
  }
  PackageView view;
  view.body_ = data + kV2HeaderBytes + dir_len;
  view.body_len_ = len - kV2HeaderBytes - dir_len;
  view.total_bytes_ = len;

  Cursor cur(data + kV2HeaderBytes, dir_len);
  view.entries_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Entry ent;
    InteractionTemplate& t = ent.header;
    DLT_ASSIGN_OR_RETURN(t.name, cur.String());
    DLT_ASSIGN_OR_RETURN(t.entry, cur.String());
    DLT_ASSIGN_OR_RETURN(uint64_t dev, cur.Varint());
    t.primary_device = static_cast<uint16_t>(dev);
    DLT_ASSIGN_OR_RETURN(uint64_t nparams, cur.Varint());
    for (uint64_t p = 0; p < nparams; ++p) {
      ParamSpec spec;
      DLT_ASSIGN_OR_RETURN(spec.name, cur.String());
      DLT_ASSIGN_OR_RETURN(uint8_t is_buf, cur.Byte());
      spec.is_buffer = (is_buf != 0);
      t.params.push_back(std::move(spec));
    }
    DLT_ASSIGN_OR_RETURN(t.initial, cur.ConstraintSet());
    DLT_ASSIGN_OR_RETURN(uint64_t ndevs, cur.Varint());
    for (uint64_t d = 0; d < ndevs; ++d) {
      DLT_ASSIGN_OR_RETURN(uint64_t dv, cur.Varint());
      ent.devices.push_back(static_cast<uint16_t>(dv));
    }
    if (!std::is_sorted(ent.devices.begin(), ent.devices.end())) {
      return Status::kCorrupt;
    }
    DLT_ASSIGN_OR_RETURN(uint64_t body_off, cur.Varint());
    DLT_ASSIGN_OR_RETURN(uint64_t body_len, cur.Varint());
    if (body_off > view.body_len_ || body_len > view.body_len_ - body_off) {
      return Status::kCorrupt;
    }
    ent.body_off = body_off;
    ent.body_len = body_len;
    view.entries_.push_back(std::move(ent));
  }
  if (!cur.AtEnd()) {
    return Status::kCorrupt;
  }
  view.directory_bytes_ = kV2HeaderBytes + dir_len;
  return view;
}

Status PackageView::HydrateEvents(size_t i, InteractionTemplate* tpl) const {
  if (i >= entries_.size()) {
    return Status::kInvalidArg;
  }
  const Entry& ent = entries_[i];
  Cursor cur(body_ + ent.body_off, ent.body_len);
  DLT_ASSIGN_OR_RETURN(uint64_t nevents, cur.Varint());
  std::vector<TemplateEvent> events;
  for (uint64_t e = 0; e < nevents; ++e) {
    DLT_ASSIGN_OR_RETURN(TemplateEvent ev, cur.Event());
    events.push_back(std::move(ev));
  }
  if (!cur.AtEnd()) {
    return Status::kCorrupt;
  }
  tpl->events = std::move(events);
  return Status::kOk;
}

Result<std::vector<InteractionTemplate>> TemplatesFromBinary(const uint8_t* data, size_t len) {
  if (len < 5) {
    return Status::kCorrupt;
  }
  uint32_t magic = 0;
  std::memcpy(&magic, data, 4);
  if (magic != kMagic) {
    return Status::kCorrupt;
  }
  if (data[4] == kVersionV2) {
    // Eager v2 decode: directory + every body, for callers that want the
    // whole package in memory (lazy loads go through PackageView directly).
    DLT_ASSIGN_OR_RETURN(PackageView view, PackageView::Parse(data, len));
    std::vector<InteractionTemplate> out;
    out.reserve(view.size());
    for (size_t i = 0; i < view.size(); ++i) {
      InteractionTemplate t = view.header(i);
      DLT_RETURN_IF_ERROR(view.HydrateEvents(i, &t));
      out.push_back(std::move(t));
    }
    return out;
  }
  if (data[4] != kVersion) {
    return Status::kCorrupt;
  }
  Cursor cur(data + 5, len - 5);
  DLT_ASSIGN_OR_RETURN(uint64_t count, cur.Varint());
  std::vector<InteractionTemplate> out;
  for (uint64_t i = 0; i < count; ++i) {
    InteractionTemplate t;
    DLT_ASSIGN_OR_RETURN(t.name, cur.String());
    DLT_ASSIGN_OR_RETURN(t.entry, cur.String());
    DLT_ASSIGN_OR_RETURN(uint64_t dev, cur.Varint());
    t.primary_device = static_cast<uint16_t>(dev);
    DLT_ASSIGN_OR_RETURN(uint64_t nparams, cur.Varint());
    for (uint64_t p = 0; p < nparams; ++p) {
      ParamSpec spec;
      DLT_ASSIGN_OR_RETURN(spec.name, cur.String());
      DLT_ASSIGN_OR_RETURN(uint8_t is_buf, cur.Byte());
      spec.is_buffer = (is_buf != 0);
      t.params.push_back(std::move(spec));
    }
    DLT_ASSIGN_OR_RETURN(t.initial, cur.ConstraintSet());
    DLT_ASSIGN_OR_RETURN(uint64_t nevents, cur.Varint());
    for (uint64_t e = 0; e < nevents; ++e) {
      DLT_ASSIGN_OR_RETURN(TemplateEvent ev, cur.Event());
      t.events.push_back(std::move(ev));
    }
    out.push_back(std::move(t));
  }
  if (!cur.AtEnd()) {
    return Status::kCorrupt;
  }
  return out;
}

}  // namespace dlt
