#include "src/core/compiled_program.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace dlt {

namespace {
// Test hook: when armed, constant steps inside compound operands lower with an
// off-by-one — a planted miscompile the conformance harness must catch, shrink
// and repro (tests/conformance_test.cc). Immediate and slot operands are left
// intact so only kSteps-shaped operands misbehave.
bool g_fold_quirk = false;
}  // namespace

void SetCompiledFoldQuirkForTest(bool on) { g_fold_quirk = on; }
bool CompiledFoldQuirkForTest() { return g_fold_quirk; }

namespace {

// Mirror of Expr::Apply (expr.cc): shifts >= 64 yield 0, div/mod by zero is
// kInvalidArg. Kept in sync so compiled evaluation is bit-identical.
Result<uint64_t> ApplyOp(ExprOp op, uint64_t a, uint64_t b) {
  switch (op) {
    case ExprOp::kAnd: return a & b;
    case ExprOp::kOr: return a | b;
    case ExprOp::kXor: return a ^ b;
    case ExprOp::kShl: return b >= 64 ? 0 : a << b;
    case ExprOp::kShr: return b >= 64 ? 0 : a >> b;
    case ExprOp::kAdd: return a + b;
    case ExprOp::kSub: return a - b;
    case ExprOp::kMul: return a * b;
    case ExprOp::kDiv:
      if (b == 0) {
        return Status::kInvalidArg;
      }
      return a / b;
    case ExprOp::kMod:
      if (b == 0) {
        return Status::kInvalidArg;
      }
      return a % b;
    case ExprOp::kConst:
    case ExprOp::kInput:
    case ExprOp::kNot:
      break;
  }
  return Status::kInvalidArg;
}

Result<uint64_t> EvalSteps(const std::vector<ExprStep>& pool, uint32_t begin, uint32_t end,
                           const uint64_t* slots, const uint8_t* bound) {
  uint64_t st[kMaxExprStack];
  size_t sp = 0;
  for (uint32_t i = begin; i < end; ++i) {
    const ExprStep& s = pool[i];
    switch (s.op) {
      case ExprOp::kConst:
        st[sp++] = s.imm;
        break;
      case ExprOp::kInput:
        if (bound[s.slot] == 0) {
          return Status::kNotFound;
        }
        st[sp++] = slots[s.slot];
        break;
      case ExprOp::kNot:
        st[sp - 1] = ~st[sp - 1];
        break;
      default: {
        uint64_t b = st[--sp];
        DLT_ASSIGN_OR_RETURN(st[sp - 1], ApplyOp(s.op, st[sp - 1], b));
        break;
      }
    }
  }
  return st[0];
}

// Splits |addr| into (base expression, constant offset): (dma0 + 0x18) becomes
// (dma0, 0x18). Non-additive shapes keep the whole expression with offset 0.
struct SplitAddr {
  ExprRef base;
  uint64_t off = 0;
};

SplitAddr SplitBase(const ExprRef& addr) {
  if (addr != nullptr && addr->op() == ExprOp::kAdd) {
    if (addr->rhs() != nullptr && addr->rhs()->is_const() && addr->lhs() != nullptr) {
      return SplitAddr{addr->lhs(), addr->rhs()->constant()};
    }
    if (addr->lhs() != nullptr && addr->lhs()->is_const() && addr->rhs() != nullptr) {
      return SplitAddr{addr->rhs(), addr->lhs()->constant()};
    }
  }
  return SplitAddr{addr, 0};
}

class Compiler {
 public:
  explicit Compiler(const InteractionTemplate* tpl) : tpl_(tpl) {
    prog_ = std::make_shared<CompiledProgram>();
    prog_->source = tpl;
  }

  Result<std::shared_ptr<const CompiledProgram>> Build() {
    prog_->initial_atom_begin = 0;
    DLT_RETURN_IF_ERROR(AddAtoms(tpl_->initial, &prog_->initial_atom_begin,
                                 &prog_->initial_atom_end));
    DLT_RETURN_IF_ERROR(CompileSeq(tpl_->events));
    prog_->main_end = MainEnd();
    if (slots_.size() > kNoSlot) {
      return Status::kUnsupported;
    }
    prog_->slot_count = static_cast<uint16_t>(slots_.size());
    prog_->scalar_loads.reserve(slots_.size());
    for (const auto& [name, slot] : slots_) {
      prog_->scalar_loads.emplace_back(name, slot);  // std::map: sorted by name
    }
    return std::shared_ptr<const CompiledProgram>(std::move(prog_));
  }

 private:
  // The top-level op range ends where the first deferred poll body begins; all
  // bodies are appended after their owning level finishes.
  uint32_t MainEnd() const { return main_end_; }

  uint16_t Slot(const std::string& name) {
    auto it = slots_.find(name);
    if (it != slots_.end()) {
      return it->second;
    }
    uint16_t id = static_cast<uint16_t>(slots_.size());
    slots_.emplace(name, id);
    return id;
  }

  uint16_t SlotOrNone(const std::string& name) { return name.empty() ? kNoSlot : Slot(name); }

  uint16_t BufferIndex(const std::string& name) {
    for (size_t i = 0; i < prog_->buffer_names.size(); ++i) {
      if (prog_->buffer_names[i] == name) {
        return static_cast<uint16_t>(i);
      }
    }
    prog_->buffer_names.push_back(name);
    return static_cast<uint16_t>(prog_->buffer_names.size() - 1);
  }

  uint32_t AddSrc(const TemplateEvent* e, size_t index) {
    prog_->src.push_back(SrcEvent{e, static_cast<uint32_t>(index)});
    ++prog_->source_events;
    return static_cast<uint32_t>(prog_->src.size() - 1);
  }

  Status Walk(const Expr* e, size_t* cur, size_t* mx) {
    if (e == nullptr) {
      return Status::kUnsupported;  // malformed tree; interpreter owns it
    }
    switch (e->op()) {
      case ExprOp::kConst:
        prog_->steps.push_back(
            ExprStep{ExprOp::kConst, 0, e->constant() + (g_fold_quirk ? 1 : 0)});
        ++*cur;
        break;
      case ExprOp::kInput:
        prog_->steps.push_back(ExprStep{ExprOp::kInput, Slot(e->input_name()), 0});
        ++*cur;
        break;
      case ExprOp::kNot:
        DLT_RETURN_IF_ERROR(Walk(e->lhs().get(), cur, mx));
        prog_->steps.push_back(ExprStep{ExprOp::kNot, 0, 0});
        break;
      default:
        DLT_RETURN_IF_ERROR(Walk(e->lhs().get(), cur, mx));
        DLT_RETURN_IF_ERROR(Walk(e->rhs().get(), cur, mx));
        prog_->steps.push_back(ExprStep{e->op(), 0, 0});
        --*cur;
        break;
    }
    *mx = std::max(*mx, *cur);
    if (*mx > kMaxExprStack) {
      return Status::kUnsupported;
    }
    return Status::kOk;
  }

  Result<Operand> Flatten(const ExprRef& e) {
    Operand o;
    if (e == nullptr) {
      return o;  // kNone: evaluates to kCorrupt, like the interpreter
    }
    if (e->is_const()) {
      o.kind = Operand::Kind::kImm;
      o.imm = e->constant();
      return o;
    }
    if (e->is_input()) {
      o.kind = Operand::Kind::kSlot;
      o.slot = Slot(e->input_name());
      return o;
    }
    o.kind = Operand::Kind::kSteps;
    o.begin = static_cast<uint32_t>(prog_->steps.size());
    size_t cur = 0;
    size_t mx = 0;
    DLT_RETURN_IF_ERROR(Walk(e.get(), &cur, &mx));
    o.end = static_cast<uint32_t>(prog_->steps.size());
    return o;
  }

  Status AddAtoms(const Constraint& c, uint32_t* begin, uint32_t* end) {
    *begin = static_cast<uint32_t>(prog_->atoms.size());
    for (const ConstraintAtom& a : c.atoms()) {
      CompiledAtom ca;
      DLT_ASSIGN_OR_RETURN(ca.lhs, Flatten(a.lhs));
      DLT_ASSIGN_OR_RETURN(ca.rhs, Flatten(a.rhs));
      ca.cmp = a.cmp;
      prog_->atoms.push_back(ca);
    }
    *end = static_cast<uint32_t>(prog_->atoms.size());
    return Status::kOk;
  }

  // Length of the coalescible run starting at evs[i]: same kind, structurally
  // equal base expression, constant offsets stepping by exactly 4. A read that
  // binds one of the base expression's inputs ends the run after itself (the
  // next word's interpreted address evaluation would see the new binding).
  size_t MeasureRun(const std::vector<TemplateEvent>& evs, size_t i) {
    const TemplateEvent& first = evs[i];
    if (first.addr == nullptr) {
      return 1;
    }
    SplitAddr head = SplitBase(first.addr);
    std::set<std::string> base_inputs;
    head.base->CollectInputs(&base_inputs);
    size_t run = 0;
    for (size_t j = i; j < evs.size(); ++j) {
      const TemplateEvent& e = evs[j];
      if (e.kind != first.kind || e.addr == nullptr) {
        break;
      }
      SplitAddr s = SplitBase(e.addr);
      if (!Expr::Equal(s.base, head.base) || s.off != head.off + 4 * (j - i)) {
        break;
      }
      ++run;
      if (!e.bind.empty() && base_inputs.count(e.bind) != 0) {
        break;
      }
    }
    return run;
  }

  Status EmitBulk(const std::vector<TemplateEvent>& evs, size_t i, size_t run) {
    const TemplateEvent& first = evs[i];
    SplitAddr head = SplitBase(first.addr);
    CompiledOp op;
    op.code = first.kind == EventKind::kShmRead ? COp::kShmReadBulk : COp::kShmWriteBulk;
    op.device = first.device;
    DLT_ASSIGN_OR_RETURN(op.addr, Flatten(head.base));
    op.base_off = head.off;
    op.word_begin = static_cast<uint32_t>(prog_->words.size());
    for (size_t w = 0; w < run; ++w) {
      const TemplateEvent& e = evs[i + w];
      CompiledWord cw;
      cw.bind_slot = SlotOrNone(e.bind);
      DLT_RETURN_IF_ERROR(AddAtoms(e.constraint, &cw.atom_begin, &cw.atom_end));
      DLT_ASSIGN_OR_RETURN(cw.value, Flatten(e.value));
      cw.src_event = AddSrc(&e, i + w);
      prog_->words.push_back(cw);
    }
    op.word_end = static_cast<uint32_t>(prog_->words.size());
    op.src_event = prog_->words[op.word_begin].src_event;
    prog_->ops.push_back(op);
    return Status::kOk;
  }

  Status CompileOne(const TemplateEvent& e, size_t index,
                    std::vector<std::pair<uint32_t, const std::vector<TemplateEvent>*>>* bodies) {
    CompiledOp op;
    op.device = e.device;
    op.reg_off = e.reg_off;
    op.irq_line = e.irq_line;
    op.src_event = AddSrc(&e, index);
    switch (e.kind) {
      case EventKind::kRegRead: {
        op.code = COp::kRegRead;
        op.bind_slot = SlotOrNone(e.bind);
        DLT_RETURN_IF_ERROR(AddAtoms(e.constraint, &op.atom_begin, &op.atom_end));
        break;
      }
      case EventKind::kShmRead: {
        op.code = COp::kShmRead;
        DLT_ASSIGN_OR_RETURN(op.addr, Flatten(e.addr));
        op.bind_slot = SlotOrNone(e.bind);
        DLT_RETURN_IF_ERROR(AddAtoms(e.constraint, &op.atom_begin, &op.atom_end));
        break;
      }
      case EventKind::kDmaAlloc: {
        op.code = COp::kDmaAlloc;
        DLT_ASSIGN_OR_RETURN(op.value, Flatten(e.value));
        op.bind_slot = SlotOrNone(e.bind);
        DLT_RETURN_IF_ERROR(AddAtoms(e.constraint, &op.atom_begin, &op.atom_end));
        break;
      }
      case EventKind::kGetRandBytes: {
        op.code = COp::kRandom;
        op.bind_slot = SlotOrNone(e.bind);
        DLT_RETURN_IF_ERROR(AddAtoms(e.constraint, &op.atom_begin, &op.atom_end));
        break;
      }
      case EventKind::kGetTimestamp: {
        op.code = COp::kTimestamp;
        op.bind_slot = SlotOrNone(e.bind);
        DLT_RETURN_IF_ERROR(AddAtoms(e.constraint, &op.atom_begin, &op.atom_end));
        break;
      }
      case EventKind::kWaitIrq: {
        op.code = COp::kWaitIrq;
        op.timeout_us = e.timeout_us == 0 ? 1'000'000 : e.timeout_us;
        break;
      }
      case EventKind::kCopyFromDma:
      case EventKind::kCopyToDma: {
        op.code = e.kind == EventKind::kCopyFromDma ? COp::kCopyFromDma : COp::kCopyToDma;
        op.buffer = BufferIndex(e.buffer);
        DLT_ASSIGN_OR_RETURN(op.buf_off, Flatten(e.buf_offset));
        DLT_ASSIGN_OR_RETURN(op.value, Flatten(e.value));
        DLT_ASSIGN_OR_RETURN(op.addr, Flatten(e.addr));
        break;
      }
      case EventKind::kPioIn:
      case EventKind::kPioOut: {
        op.code = e.kind == EventKind::kPioIn ? COp::kPioIn : COp::kPioOut;
        op.buffer = BufferIndex(e.buffer);
        DLT_ASSIGN_OR_RETURN(op.buf_off, Flatten(e.buf_offset));
        DLT_ASSIGN_OR_RETURN(op.value, Flatten(e.value));
        break;
      }
      case EventKind::kRegWrite: {
        op.code = COp::kRegWrite;
        DLT_ASSIGN_OR_RETURN(op.value, Flatten(e.value));
        break;
      }
      case EventKind::kShmWrite: {
        op.code = COp::kShmWrite;
        DLT_ASSIGN_OR_RETURN(op.addr, Flatten(e.addr));
        DLT_ASSIGN_OR_RETURN(op.value, Flatten(e.value));
        break;
      }
      case EventKind::kDelay: {
        op.code = COp::kDelay;
        DLT_ASSIGN_OR_RETURN(op.value, Flatten(e.value));
        break;
      }
      case EventKind::kPollReg:
      case EventKind::kPollShm: {
        op.code = e.kind == EventKind::kPollReg ? COp::kPollReg : COp::kPollShm;
        if (e.kind == EventKind::kPollShm) {
          DLT_ASSIGN_OR_RETURN(op.addr, Flatten(e.addr));
        }
        op.bind_slot = SlotOrNone(e.bind);
        op.mask = e.mask;
        op.want = e.want;
        op.poll_cmp = e.poll_cmp;
        op.timeout_us = e.timeout_us == 0 ? 1'000'000 : e.timeout_us;
        op.interval_us = e.interval_us == 0 ? 1 : e.interval_us;
        bodies->emplace_back(static_cast<uint32_t>(prog_->ops.size()), &e.body);
        break;
      }
    }
    prog_->ops.push_back(op);
    return Status::kOk;
  }

  Status CompileSeq(const std::vector<TemplateEvent>& evs) {
    std::vector<std::pair<uint32_t, const std::vector<TemplateEvent>*>> bodies;
    for (size_t i = 0; i < evs.size();) {
      const TemplateEvent& e = evs[i];
      if (e.kind == EventKind::kShmRead || e.kind == EventKind::kShmWrite) {
        size_t run = MeasureRun(evs, i);
        if (run >= 2) {
          DLT_RETURN_IF_ERROR(EmitBulk(evs, i, run));
          i += run;
          continue;
        }
      }
      DLT_RETURN_IF_ERROR(CompileOne(e, i, &bodies));
      ++i;
    }
    if (depth_ == 0) {
      main_end_ = static_cast<uint32_t>(prog_->ops.size());
    }
    // Poll bodies compile after the level's own ops so every sequence occupies
    // a contiguous op range; nested bodies land after their parent level.
    ++depth_;
    for (const auto& [op_index, body] : bodies) {
      prog_->ops[op_index].body_begin = static_cast<uint32_t>(prog_->ops.size());
      DLT_RETURN_IF_ERROR(CompileSeq(*body));
      prog_->ops[op_index].body_end = static_cast<uint32_t>(prog_->ops.size());
    }
    --depth_;
    return Status::kOk;
  }

  const InteractionTemplate* tpl_;
  std::shared_ptr<CompiledProgram> prog_;
  std::map<std::string, uint16_t> slots_;
  uint32_t main_end_ = 0;
  int depth_ = 0;
};

}  // namespace

const char* COpName(COp c) {
  switch (c) {
    case COp::kRegRead: return "reg_read";
    case COp::kRegWrite: return "reg_write";
    case COp::kShmRead: return "shm_read";
    case COp::kShmWrite: return "shm_write";
    case COp::kShmReadBulk: return "shm_read_bulk";
    case COp::kShmWriteBulk: return "shm_write_bulk";
    case COp::kDmaAlloc: return "dma_alloc";
    case COp::kRandom: return "get_rand";
    case COp::kTimestamp: return "get_timestamp";
    case COp::kWaitIrq: return "wait_irq";
    case COp::kCopyFromDma: return "copy_from_dma";
    case COp::kCopyToDma: return "copy_to_dma";
    case COp::kPioIn: return "pio_in";
    case COp::kPioOut: return "pio_out";
    case COp::kDelay: return "delay";
    case COp::kPollReg: return "poll_reg";
    case COp::kPollShm: return "poll_shm";
  }
  return "?";
}

void CompiledProgram::LoadScalars(const Bindings& scalars, uint64_t* slots,
                                  uint8_t* bound) const {
  auto it = scalars.begin();
  for (const auto& [name, slot] : scalar_loads) {
    while (it != scalars.end() && it->first < name) {
      ++it;
    }
    if (it == scalars.end()) {
      return;
    }
    if (it->first == name) {
      slots[slot] = it->second;
      bound[slot] = 1;
    }
  }
}

Result<uint64_t> CompiledProgram::EvalOperand(const Operand& o, const uint64_t* slots,
                                              const uint8_t* bound) const {
  switch (o.kind) {
    case Operand::Kind::kImm:
      return o.imm;
    case Operand::Kind::kSlot:
      if (bound[o.slot] == 0) {
        return Status::kNotFound;
      }
      return slots[o.slot];
    case Operand::Kind::kSteps:
      return EvalSteps(steps, o.begin, o.end, slots, bound);
    case Operand::Kind::kNone:
      break;
  }
  return Status::kCorrupt;  // null source expression (interpreter: kCorrupt)
}

Result<bool> CompiledProgram::EvalAtoms(uint32_t begin, uint32_t end, const uint64_t* slots,
                                        const uint8_t* bound) const {
  for (uint32_t i = begin; i < end; ++i) {
    const CompiledAtom& a = atoms[i];
    DLT_ASSIGN_OR_RETURN(uint64_t lhs, EvalOperand(a.lhs, slots, bound));
    DLT_ASSIGN_OR_RETURN(uint64_t rhs, EvalOperand(a.rhs, slots, bound));
    if (!CompareValues(a.cmp, lhs, rhs)) {
      return false;
    }
  }
  return true;
}

Result<bool> CompiledProgram::EvalInitial(const Bindings& scalars) const {
  constexpr size_t kInline = 64;
  uint64_t sbuf[kInline];
  uint8_t bbuf[kInline] = {};
  std::vector<uint64_t> hs;
  std::vector<uint8_t> hb;
  uint64_t* slots = sbuf;
  uint8_t* bound = bbuf;
  if (slot_count > kInline) {
    hs.resize(slot_count);
    hb.assign(slot_count, 0);
    slots = hs.data();
    bound = hb.data();
  }
  LoadScalars(scalars, slots, bound);
  return EvalAtoms(initial_atom_begin, initial_atom_end, slots, bound);
}

uint64_t CompiledProgram::StaticCompiledNs() const {
  uint64_t total = 0;
  for (const CompiledOp& op : ops) {
    uint64_t w = 1;
    if (op.code == COp::kShmReadBulk || op.code == COp::kShmWriteBulk) {
      w = op.word_end - op.word_begin;
    }
    total += kCompiledOpNs + kCompiledWordNs * w;
  }
  return total;
}

std::string CompiledProgram::Disassemble() const {
  std::string out;
  char line[256];
  auto slot_name = [this](uint16_t slot) -> const char* {
    for (const auto& [name, s] : scalar_loads) {
      if (s == slot) {
        return name.c_str();
      }
    }
    return "?";
  };
  std::snprintf(line, sizeof(line), "program %s/%s: %u ops (%u main), %zu words, %zu atoms, %zu steps, %u slots\n",
                source != nullptr ? source->entry.c_str() : "?",
                source != nullptr ? source->name.c_str() : "?",
                static_cast<unsigned>(ops.size()), main_end, words.size(), atoms.size(),
                steps.size(), static_cast<unsigned>(slot_count));
  out += line;
  for (size_t i = 0; i < ops.size(); ++i) {
    const CompiledOp& op = ops[i];
    std::snprintf(line, sizeof(line), "  #%03zu %-14s", i, COpName(op.code));
    out += line;
    switch (op.code) {
      case COp::kRegRead:
      case COp::kRegWrite:
      case COp::kPioIn:
      case COp::kPioOut:
      case COp::kPollReg:
        std::snprintf(line, sizeof(line), " dev%u+0x%llx", op.device,
                      static_cast<unsigned long long>(op.reg_off));
        out += line;
        break;
      case COp::kWaitIrq:
        std::snprintf(line, sizeof(line), " irq%d timeout=%lluus", op.irq_line,
                      static_cast<unsigned long long>(op.timeout_us));
        out += line;
        break;
      default:
        break;
    }
    if (op.code == COp::kShmReadBulk || op.code == COp::kShmWriteBulk) {
      std::snprintf(line, sizeof(line), " base+0x%llx words=%u",
                    static_cast<unsigned long long>(op.base_off), op.word_end - op.word_begin);
      out += line;
    }
    if (op.code == COp::kPollReg || op.code == COp::kPollShm) {
      std::snprintf(line, sizeof(line), " mask=0x%x %s 0x%x body=[%u,%u)", op.mask,
                    CmpToken(op.poll_cmp), op.want, op.body_begin, op.body_end);
      out += line;
    }
    if (op.bind_slot != kNoSlot) {
      std::snprintf(line, sizeof(line), " bind=%s", slot_name(op.bind_slot));
      out += line;
    }
    if (op.atom_end > op.atom_begin) {
      std::snprintf(line, sizeof(line), " atoms=%u", op.atom_end - op.atom_begin);
      out += line;
    }
    if (op.buffer != kNoBuffer) {
      std::snprintf(line, sizeof(line), " buf=%s", buffer_names[op.buffer].c_str());
      out += line;
    }
    out += "\n";
  }
  return out;
}

Result<std::shared_ptr<const CompiledProgram>> CompileTemplate(const InteractionTemplate* tpl) {
  if (tpl == nullptr) {
    return Status::kInvalidArg;
  }
  return Compiler(tpl).Build();
}

}  // namespace dlt
