#include "src/core/coverage.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace dlt {

namespace {

constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();

// Per-template, per-param interval implied by the conjunction of simple atoms.
struct Interval {
  uint64_t lo = 0;
  uint64_t hi = kMax;
  bool empty = false;
  bool constrained = false;
};

void Tighten(Interval* iv, Cmp cmp, uint64_t c) {
  iv->constrained = true;
  switch (cmp) {
    case Cmp::kEq:
      iv->lo = std::max(iv->lo, c);
      iv->hi = std::min(iv->hi, c);
      break;
    case Cmp::kLe:
      iv->hi = std::min(iv->hi, c);
      break;
    case Cmp::kLt:
      iv->hi = std::min(iv->hi, c == 0 ? 0 : c - 1);
      if (c == 0) {
        iv->empty = true;
      }
      break;
    case Cmp::kGe:
      iv->lo = std::max(iv->lo, c);
      break;
    case Cmp::kGt:
      iv->lo = std::max(iv->lo, c == kMax ? kMax : c + 1);
      if (c == kMax) {
        iv->empty = true;
      }
      break;
    case Cmp::kNe:
      // A punctured interval is not representable; ignore (conservative-wide).
      break;
  }
  if (iv->lo > iv->hi) {
    iv->empty = true;
  }
}

void MergeRanges(std::vector<CoverageRange>* ranges) {
  std::sort(ranges->begin(), ranges->end(),
            [](const CoverageRange& a, const CoverageRange& b) { return a.lo < b.lo; });
  std::vector<CoverageRange> merged;
  for (const auto& r : *ranges) {
    if (!merged.empty() && (r.lo <= merged.back().hi ||
                            (merged.back().hi != kMax && r.lo == merged.back().hi + 1))) {
      merged.back().hi = std::max(merged.back().hi, r.hi);
    } else {
      merged.push_back(r);
    }
  }
  *ranges = std::move(merged);
}

}  // namespace

// Extracts an affine form  a*param + b  from |e| when possible. Arithmetic is
// carried in signed __int128 so subtraction chains like (p*512 - 0x3000) work.
bool ExtractAffine(const ExprRef& e, const std::string& param, __int128* a, __int128* b) {
  if (e == nullptr) {
    return false;
  }
  switch (e->op()) {
    case ExprOp::kConst:
      *a = 0;
      *b = static_cast<__int128>(e->constant());
      return true;
    case ExprOp::kInput:
      if (e->input_name() != param) {
        return false;
      }
      *a = 1;
      *b = 0;
      return true;
    case ExprOp::kAdd:
    case ExprOp::kSub: {
      __int128 a1, b1, a2, b2;
      if (!ExtractAffine(e->lhs(), param, &a1, &b1) ||
          !ExtractAffine(e->rhs(), param, &a2, &b2)) {
        return false;
      }
      if (e->op() == ExprOp::kAdd) {
        *a = a1 + a2;
        *b = b1 + b2;
      } else {
        *a = a1 - a2;
        *b = b1 - b2;
      }
      return true;
    }
    case ExprOp::kMul: {
      __int128 a1, b1, a2, b2;
      if (!ExtractAffine(e->lhs(), param, &a1, &b1) ||
          !ExtractAffine(e->rhs(), param, &a2, &b2)) {
        return false;
      }
      if (a1 != 0 && a2 != 0) {
        return false;  // quadratic
      }
      *a = a1 * b2 + a2 * b1;
      *b = b1 * b2;
      return true;
    }
    case ExprOp::kShl: {
      __int128 a1, b1, a2, b2;
      if (!ExtractAffine(e->lhs(), param, &a1, &b1) ||
          !ExtractAffine(e->rhs(), param, &a2, &b2) || a2 != 0 || b2 > 63) {
        return false;
      }
      __int128 f = static_cast<__int128>(1) << static_cast<int>(b2);
      *a = a1 * f;
      *b = b1 * f;
      return true;
    }
    default:
      return false;
  }
}

// Tightens |iv| with the constraint  a*p + b  <cmp>  c.
void TightenAffine(Interval* iv, __int128 a, __int128 b, Cmp cmp, __int128 c) {
  if (a < 0) {
    a = -a;
    b = -b;
    c = -c;
    switch (cmp) {
      case Cmp::kLt: cmp = Cmp::kGt; break;
      case Cmp::kLe: cmp = Cmp::kGe; break;
      case Cmp::kGt: cmp = Cmp::kLt; break;
      case Cmp::kGe: cmp = Cmp::kLe; break;
      default: break;
    }
  }
  if (a == 0) {
    return;
  }
  __int128 rhs = c - b;
  auto floor_div = [](__int128 x, __int128 y) {
    __int128 q = x / y;
    if ((x % y != 0) && ((x < 0) != (y < 0))) {
      --q;
    }
    return q;
  };
  auto clamp_u64 = [](__int128 v) -> uint64_t {
    if (v < 0) {
      return 0;
    }
    if (v > static_cast<__int128>(kMax)) {
      return kMax;
    }
    return static_cast<uint64_t>(v);
  };
  iv->constrained = true;
  switch (cmp) {
    case Cmp::kEq:
      if (rhs % a != 0 || rhs < 0) {
        iv->empty = true;
      } else {
        Tighten(iv, Cmp::kEq, clamp_u64(rhs / a));
      }
      break;
    case Cmp::kLe:
      if (rhs < 0) {
        iv->empty = true;
      } else {
        Tighten(iv, Cmp::kLe, clamp_u64(floor_div(rhs, a)));
      }
      break;
    case Cmp::kLt:
      if (rhs <= 0) {
        iv->empty = true;
      } else {
        Tighten(iv, Cmp::kLe, clamp_u64(floor_div(rhs - 1, a)));
      }
      break;
    case Cmp::kGe:
      Tighten(iv, Cmp::kGe, clamp_u64(floor_div(rhs + a - 1, a)));
      break;
    case Cmp::kGt:
      Tighten(iv, Cmp::kGe, clamp_u64(floor_div(rhs, a) + 1));
      break;
    case Cmp::kNe:
      break;  // punctured interval: not representable, kept conservative-wide
  }
}

Coverage ComputeCoverage(const std::vector<InteractionTemplate>& templates) {
  Coverage cov;
  for (const auto& t : templates) {
    std::map<std::string, Interval> per_param;
    for (const auto& p : t.params) {
      if (!p.is_buffer) {
        per_param[p.name] = Interval{};
      }
    }
    for (const auto& atom : t.initial.atoms()) {
      std::set<std::string> syms;
      atom.lhs->CollectInputs(&syms);
      atom.rhs->CollectInputs(&syms);
      if (syms.size() != 1) {
        continue;
      }
      auto it = per_param.find(*syms.begin());
      if (it == per_param.end()) {
        continue;
      }
      // Solve  lhs cmp rhs  as  (a_l - a_r)*p + b_l  cmp  b_r.
      __int128 al, bl, ar, br;
      if (!ExtractAffine(atom.lhs, it->first, &al, &bl) ||
          !ExtractAffine(atom.rhs, it->first, &ar, &br)) {
        continue;  // non-affine (e.g. alignment masks): not interval-representable
      }
      TightenAffine(&it->second, al - ar, bl, atom.cmp, br);
    }
    for (const auto& [name, iv] : per_param) {
      ParamCoverage& pc = cov[name];
      if (iv.empty) {
        continue;
      }
      if (!iv.constrained) {
        pc.unconstrained = true;
        continue;
      }
      pc.ranges.push_back(CoverageRange{iv.lo, iv.hi});
    }
  }
  for (auto& [name, pc] : cov) {
    MergeRanges(&pc.ranges);
  }
  return cov;
}

bool Covers(const Coverage& cov, const std::string& param, uint64_t value) {
  auto it = cov.find(param);
  if (it == cov.end() || it->second.unconstrained) {
    return true;
  }
  for (const auto& r : it->second.ranges) {
    if (value >= r.lo && value <= r.hi) {
      return true;
    }
  }
  return false;
}

std::string CoverageReport(const Coverage& cov) {
  std::ostringstream os;
  bool first_param = true;
  for (const auto& [name, pc] : cov) {
    if (!first_param) {
      os << ", ";
    }
    first_param = false;
    os << name << " in ";
    if (pc.unconstrained) {
      os << "[any]";
      continue;
    }
    if (pc.ranges.empty()) {
      os << "{}";
      continue;
    }
    for (size_t i = 0; i < pc.ranges.size(); ++i) {
      if (i > 0) {
        os << " U ";
      }
      const auto& r = pc.ranges[i];
      if (r.lo == r.hi) {
        os << "{0x" << std::hex << r.lo << std::dec << "}";
      } else if (r.hi == kMax) {
        os << "[0x" << std::hex << r.lo << std::dec << ", inf)";
      } else {
        os << "[0x" << std::hex << r.lo << ", 0x" << r.hi << std::dec << "]";
      }
    }
  }
  return os.str();
}

}  // namespace dlt
