// Differential re-execution: the validation role concolic forking plays in the
// paper (§4.2, Challenge I). Two record runs of the same entry with different
// inputs either externalize the same device state transition path (their output
// event sequences are structurally identical) or a state-changing input was
// crossed. Campaign tooling uses this to confirm constraint boundaries.
#ifndef SRC_CORE_DIFFER_H_
#define SRC_CORE_DIFFER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/record_session.h"

namespace dlt {

// Renders the externalized state-transition path of a raw recording: the
// ordered identities of output events, DMA allocations and IRQ waits. Symbolic
// values (register offsets, descriptor address shapes) participate; concrete
// data content does not.
std::string TransitionSignature(const RawRecording& raw);

// True iff both recordings took the same device state-transition path.
bool SameTransitionPath(const RawRecording& a, const RawRecording& b);

// Differential validation of a template's constraint region (what the paper's
// concolic forking establishes at record time, validated experimentally as in
// §7.2 "stress testing templates"): inputs inside the covered region must
// reproduce the recorded transition path; inputs outside must take a different
// one. |probe| re-runs the gold driver with the given scalar inputs and returns
// the externalized TransitionSignature.
struct RegionValidation {
  int in_region_total = 0;
  int in_region_same = 0;
  int out_region_total = 0;
  int out_region_diverged = 0;
  std::vector<std::string> violations;

  bool ok() const {
    // violations catches failures the counters can't express, e.g. the
    // reference run itself failing before any probe ran.
    return violations.empty() && in_region_same == in_region_total &&
           out_region_diverged == out_region_total;
  }
};

using TransitionProbe = std::function<Result<std::string>(const Bindings&)>;

RegionValidation ValidateTransitionRegion(const TransitionProbe& probe,
                                          const Bindings& recorded_inputs,
                                          const std::vector<Bindings>& in_region_probes,
                                          const std::vector<Bindings>& out_region_probes);

}  // namespace dlt

#endif  // SRC_CORE_DIFFER_H_
