// ReplayContext: what the replayer needs from its hosting TEE runtime (paper §5,
// "Instantiating the template"): secure device register mappings, a contiguous
// DMA pool, RNG, timestamps, IRQ waits, and a soft-reset hook. tee::SecureWorld
// provides the production implementation; tests may substitute fakes.
#ifndef SRC_CORE_REPLAY_CONTEXT_H_
#define SRC_CORE_REPLAY_CONTEXT_H_

#include <cstdint>

#include "src/soc/status.h"
#include "src/soc/types.h"

namespace dlt {

class ReplayContext {
 public:
  virtual ~ReplayContext() = default;

  // Device registers, by the template's device id. The context enforces that
  // the device is mapped into the TEE (TZASC) and the offset is in range.
  virtual Result<uint32_t> RegRead32(uint16_t device, uint64_t offset) = 0;
  virtual Status RegWrite32(uint16_t device, uint64_t offset, uint32_t value) = 0;

  // PIO block transfers: |words| repeated accesses of the same register.
  // Contexts may override to resolve the device mapping once per block
  // (SecureWorld uses AddressSpace::MmioAt); the defaults preserve the exact
  // per-word semantics for contexts that don't.
  virtual Status RegReadBlock32(uint16_t device, uint64_t offset, uint32_t* out, size_t words) {
    for (size_t i = 0; i < words; ++i) {
      DLT_ASSIGN_OR_RETURN(out[i], RegRead32(device, offset));
    }
    return Status::kOk;
  }
  virtual Status RegWriteBlock32(uint16_t device, uint64_t offset, const uint32_t* values,
                                 size_t words) {
    for (size_t i = 0; i < words; ++i) {
      DLT_RETURN_IF_ERROR(RegWrite32(device, offset, values[i]));
    }
    return Status::kOk;
  }

  // DMA / shared memory (physical addresses within this context's pool).
  virtual Result<uint32_t> MemRead32(PhysAddr addr) = 0;
  virtual Status MemWrite32(PhysAddr addr, uint32_t value) = 0;
  virtual Status MemCopyIn(PhysAddr dst, const uint8_t* src, size_t len) = 0;
  virtual Status MemCopyOut(uint8_t* dst, PhysAddr src, size_t len) = 0;

  // Env interface (paper: "likely supported by an existing TEE kernel").
  virtual Result<PhysAddr> DmaAlloc(uint64_t size) = 0;
  virtual void DmaReleaseAll() = 0;
  virtual Result<uint32_t> RandomU32() = 0;
  virtual uint64_t TimestampUs() = 0;

  virtual Status WaitForIrq(int line, uint64_t timeout_us) = 0;
  virtual void DelayUs(uint64_t us) = 0;

  // Soft-resets the device to its post-init clean state (divergence recovery).
  virtual Status SoftResetDevice(uint16_t device) = 0;

  // Security hardening: pervasive boundary check on device physical addresses
  // computed from symbolic expressions (paper §5, self security hardening).
  virtual bool AddressAllowed(PhysAddr addr, size_t len) = 0;

  // Timing-model hook: the interpreter charges its per-event CPU cost here.
  virtual void ChargeReplayOverheadNs(uint64_t ns) = 0;
};

}  // namespace dlt

#endif  // SRC_CORE_REPLAY_CONTEXT_H_
