#include "src/core/executor.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <sstream>

#include "src/core/compiled_program.h"
#include "src/core/integrity.h"
#include "src/obs/telemetry.h"
#include "src/soc/log.h"

namespace dlt {

// Per-kind replay latency histograms, resolved once per kind (registrations
// are permanent, so the cached pointers stay valid across Telemetry::Reset).
// Atomic slots: fleet shards replay concurrently, and a racing double-resolve
// is harmless — histogram(name) is idempotent, both writers store the same
// pointer.
Histogram& ReplayKindHistogram(EventKind k) {
  static std::array<std::atomic<Histogram*>, 16> cache{};
  size_t i = static_cast<size_t>(k);
  Histogram* h = cache[i].load(std::memory_order_acquire);
  if (h == nullptr) {
    h = &Telemetry::Get().metrics().histogram(std::string("replay.us.") + EventKindName(k));
    cache[i].store(h, std::memory_order_release);
  }
  return *h;
}

std::string DescribeEvent(const TemplateEvent& e) {
  std::ostringstream os;
  os << EventKindName(e.kind);
  switch (e.kind) {
    case EventKind::kRegRead:
    case EventKind::kRegWrite:
    case EventKind::kPollReg:
    case EventKind::kPioIn:
    case EventKind::kPioOut:
      os << " dev" << e.device << "+0x" << std::hex << e.reg_off << std::dec;
      break;
    case EventKind::kWaitIrq:
      os << " irq" << e.irq_line;
      break;
    default:
      if (e.addr != nullptr) {
        os << " " << e.addr->ToString();
      }
      break;
  }
  if (!e.file.empty()) {
    os << " @" << e.file << ":" << e.line;
  }
  return os.str();
}

Executor::Executor(ReplayContext* ctx, const InteractionTemplate* tpl, const ReplayArgs* args)
    : ctx_(ctx), tpl_(tpl), args_(args) {
  for (const auto& [name, value] : args->scalars) {
    bindings_[name] = value;
  }
}

Result<uint64_t> Executor::EvalExpr(const ExprRef& e) const {
  if (e == nullptr) {
    return Status::kCorrupt;
  }
  Result<uint64_t> r = e->Eval(bindings_);
  if (!r.ok()) {
    return Status::kCorrupt;  // template references a symbol that never bound
  }
  return r;
}

Result<PhysAddr> Executor::EvalAddr(const ExprRef& e, size_t access_len) const {
  DLT_ASSIGN_OR_RETURN(uint64_t addr, EvalExpr(e));
  // Security hardening: symbolic addresses must land inside this run's own
  // allocations AND inside the TEE pool (pervasive boundary checks, paper §5).
  bool inside = false;
  for (const auto& a : allocs_) {
    if (addr >= a.base && addr + access_len <= a.base + a.size) {
      inside = true;
      break;
    }
  }
  if (!inside || !ctx_->AddressAllowed(addr, access_len)) {
    return Status::kPermissionDenied;
  }
  return addr;
}

void FillDivergenceReport(ReplayContext* ctx, const InteractionTemplate& tpl,
                          const TemplateEvent& e, size_t index, uint64_t observed,
                          DivergenceReport* report) {
  // Single choke point for every divergence flavour (constraint violation,
  // poll/IRQ timeout, allocation failure) across both replay engines —
  // telemetry taps it here.
  Telemetry& t = Telemetry::Get();
  if (t.enabled()) {
    t.metrics().counter("replay.divergences").Inc();
    t.metrics().counter("replay.constraint_failures." + tpl.name).Inc();
    t.Instant(TraceKind::kDivergence, ctx->TimestampUs(), tpl.name, observed, index, e.device);
  }
  report->valid = true;
  report->template_name = tpl.name;
  report->event_index = index;
  report->event_desc = DescribeEvent(e);
  report->file = e.file;
  report->line = e.line;
  report->observed = observed;
  report->expected_constraint = e.constraint.ToString();
  report->rewound.clear();
  for (size_t i = 0; i <= index && i < tpl.events.size(); ++i) {
    report->rewound.push_back(DescribeEvent(tpl.events[i]));
  }
}

void Executor::FillDivergence(const TemplateEvent& e, size_t index, uint64_t observed,
                              DivergenceReport* report) const {
  FillDivergenceReport(ctx_, *tpl_, e, index, observed, report);
}

Status Executor::BindAndCheck(const TemplateEvent& e, size_t index, uint64_t observed,
                              DivergenceReport* report) {
  if (!e.bind.empty()) {
    bindings_[e.bind] = observed;
  }
  return CheckConstraint(e, index, observed, report);
}

Status Executor::CheckConstraint(const TemplateEvent& e, size_t index, uint64_t observed,
                                 DivergenceReport* report) {
  if (e.constraint.empty()) {
    return Status::kOk;
  }
  Telemetry& t = Telemetry::Get();
  if (t.enabled()) {
    t.metrics().counter("replay.constraint_evals").Inc();
    t.Instant(TraceKind::kConstraintEval, ctx_->TimestampUs(),
              e.bind.empty() ? EventKindName(e.kind) : e.bind, observed, index, e.device);
  }
  Result<bool> ok = e.constraint.Eval(bindings_);
  if (!ok.ok()) {
    return Status::kCorrupt;
  }
  if (!*ok) {
    // A state-changing input deviated from the recording: device state
    // transition divergence (paper §3.3).
    FillDivergence(e, index, observed, report);
    return Status::kDiverged;
  }
  return Status::kOk;
}

Status Executor::CheckBufferSpan(const ConstBufferView& buf, const TemplateEvent& e,
                                 uint64_t* offset, uint64_t* len) const {
  if (buf.data == nullptr) {
    return Status::kInvalidArg;
  }
  DLT_ASSIGN_OR_RETURN(*offset, EvalExpr(e.buf_offset));
  DLT_ASSIGN_OR_RETURN(*len, EvalExpr(e.value));
  // Boundary check trustlet-provided buffers (paper §5 security hardening).
  if (*offset + *len < *offset || *offset + *len > buf.len) {
    return Status::kInvalidArg;
  }
  return Status::kOk;
}

Result<BufferView> Executor::ResolveWritable(const TemplateEvent& e, uint64_t* offset,
                                             uint64_t* len) const {
  auto it = args_->buffers.find(e.buffer);
  if (it == args_->buffers.end()) {
    // The template wants to fill this buffer; a read-only view under the same
    // name is a caller error, not a license to cast constness away.
    return args_->ro_buffers.count(e.buffer) != 0 ? Status::kPermissionDenied
                                                  : Status::kInvalidArg;
  }
  DLT_RETURN_IF_ERROR(CheckBufferSpan(it->second, e, offset, len));
  return it->second;
}

Result<ConstBufferView> Executor::ResolveReadable(const TemplateEvent& e, uint64_t* offset,
                                                  uint64_t* len) const {
  auto it = args_->buffers.find(e.buffer);
  if (it != args_->buffers.end()) {
    DLT_RETURN_IF_ERROR(CheckBufferSpan(it->second, e, offset, len));
    return ConstBufferView(it->second);
  }
  auto ro = args_->ro_buffers.find(e.buffer);
  if (ro == args_->ro_buffers.end()) {
    return Status::kInvalidArg;
  }
  DLT_RETURN_IF_ERROR(CheckBufferSpan(ro->second, e, offset, len));
  return ro->second;
}

Status Executor::RunOne(const TemplateEvent& e, size_t index, DivergenceReport* report) {
  Telemetry& t = Telemetry::Get();
  if (!t.enabled()) {
    return ExecuteOne(e, index, report);
  }
  uint64_t t0 = ctx_->TimestampUs();
  Status s = ExecuteOne(e, index, report);
  uint64_t dur = ctx_->TimestampUs() - t0;
  t.metrics().counter("replay.events").Inc();
  ReplayKindHistogram(e.kind).Record(dur);
  t.Span(TraceKind::kReplayEvent, t0, dur, EventKindName(e.kind), index,
         static_cast<uint64_t>(s), e.device);
  return s;
}

Status Executor::ExecuteOne(const TemplateEvent& e, size_t index, DivergenceReport* report) {
  ctx_->ChargeReplayOverheadNs(kReplayInterpEventNs);
  ++events_executed_;
  switch (e.kind) {
    case EventKind::kRegRead: {
      DLT_ASSIGN_OR_RETURN(uint32_t v, ctx_->RegRead32(e.device, e.reg_off));
      return BindAndCheck(e, index, v, report);
    }
    case EventKind::kShmRead: {
      DLT_ASSIGN_OR_RETURN(PhysAddr addr, EvalAddr(e.addr, 4));
      DLT_ASSIGN_OR_RETURN(uint32_t v, ctx_->MemRead32(addr));
      return BindAndCheck(e, index, v, report);
    }
    case EventKind::kDmaAlloc: {
      DLT_ASSIGN_OR_RETURN(uint64_t size, EvalExpr(e.value));
      Result<PhysAddr> addr = ctx_->DmaAlloc(size);
      if (!addr.ok()) {
        FillDivergence(e, index, 0, report);
        return Status::kDiverged;  // allocation failure diverges from recording
      }
      allocs_.push_back(Alloc{*addr, size});
      return BindAndCheck(e, index, *addr, report);
    }
    case EventKind::kGetRandBytes: {
      DLT_ASSIGN_OR_RETURN(uint32_t v, ctx_->RandomU32());
      return BindAndCheck(e, index, v, report);
    }
    case EventKind::kGetTimestamp: {
      uint64_t v = ctx_->TimestampUs();
      return BindAndCheck(e, index, v, report);
    }
    case EventKind::kWaitIrq: {
      Status s = ctx_->WaitForIrq(e.irq_line, e.timeout_us == 0 ? 1'000'000 : e.timeout_us);
      if (!Ok(s)) {
        FillDivergence(e, index, 0, report);
        return Status::kDiverged;
      }
      return Status::kOk;
    }
    case EventKind::kCopyFromDma: {
      uint64_t off = 0;
      uint64_t len = 0;
      DLT_ASSIGN_OR_RETURN(BufferView buf, ResolveWritable(e, &off, &len));
      DLT_ASSIGN_OR_RETURN(PhysAddr src, EvalAddr(e.addr, len));
      return ctx_->MemCopyOut(buf.data + off, src, len);
    }
    case EventKind::kPioIn: {
      uint64_t off = 0;
      uint64_t len = 0;
      DLT_ASSIGN_OR_RETURN(BufferView buf, ResolveWritable(e, &off, &len));
      if (len == 0) {
        return Status::kOk;
      }
      size_t words = static_cast<size_t>((len + 3) / 4);
      pio_scratch_.assign(words, 0);
      DLT_RETURN_IF_ERROR(ctx_->RegReadBlock32(e.device, e.reg_off, pio_scratch_.data(), words));
      std::memcpy(buf.data + off, pio_scratch_.data(), static_cast<size_t>(len));
      return Status::kOk;
    }
    case EventKind::kRegWrite: {
      DLT_ASSIGN_OR_RETURN(uint64_t v, EvalExpr(e.value));
      return ctx_->RegWrite32(e.device, e.reg_off, static_cast<uint32_t>(v));
    }
    case EventKind::kShmWrite: {
      DLT_ASSIGN_OR_RETURN(PhysAddr addr, EvalAddr(e.addr, 4));
      DLT_ASSIGN_OR_RETURN(uint64_t v, EvalExpr(e.value));
      return ctx_->MemWrite32(addr, static_cast<uint32_t>(v));
    }
    case EventKind::kDelay: {
      DLT_ASSIGN_OR_RETURN(uint64_t us, EvalExpr(e.value));
      ctx_->DelayUs(us);
      return Status::kOk;
    }
    case EventKind::kCopyToDma: {
      uint64_t off = 0;
      uint64_t len = 0;
      DLT_ASSIGN_OR_RETURN(ConstBufferView buf, ResolveReadable(e, &off, &len));
      DLT_ASSIGN_OR_RETURN(PhysAddr dst, EvalAddr(e.addr, len));
      return ctx_->MemCopyIn(dst, buf.data + off, len);
    }
    case EventKind::kPioOut: {
      uint64_t off = 0;
      uint64_t len = 0;
      DLT_ASSIGN_OR_RETURN(ConstBufferView buf, ResolveReadable(e, &off, &len));
      if (len == 0) {
        return Status::kOk;
      }
      size_t words = static_cast<size_t>((len + 3) / 4);
      pio_scratch_.assign(words, 0);  // zero-pads the tail word
      std::memcpy(pio_scratch_.data(), buf.data + off, static_cast<size_t>(len));
      return ctx_->RegWriteBlock32(e.device, e.reg_off, pio_scratch_.data(), words);
    }
    case EventKind::kPollReg:
    case EventKind::kPollShm: {
      uint64_t timeout = e.timeout_us == 0 ? 1'000'000 : e.timeout_us;
      uint64_t waited = 0;
      while (true) {
        uint32_t v = 0;
        if (e.kind == EventKind::kPollReg) {
          DLT_ASSIGN_OR_RETURN(v, ctx_->RegRead32(e.device, e.reg_off));
        } else {
          DLT_ASSIGN_OR_RETURN(PhysAddr addr, EvalAddr(e.addr, 4));
          DLT_ASSIGN_OR_RETURN(v, ctx_->MemRead32(addr));
        }
        if (CompareValues(e.poll_cmp, v & e.mask, e.want)) {
          if (!e.bind.empty()) {
            bindings_[e.bind] = v;
          }
          return Status::kOk;
        }
        if (waited >= timeout) {
          FillDivergence(e, index, v, report);
          return Status::kDiverged;
        }
        DLT_RETURN_IF_ERROR(RunEvents(e.body, report));
        uint64_t step = e.interval_us == 0 ? 1 : e.interval_us;
        ctx_->DelayUs(step);
        waited += step;
      }
    }
  }
  return Status::kUnsupported;
}

Status Executor::RunEvents(const std::vector<TemplateEvent>& events, DivergenceReport* report) {
  for (size_t i = 0; i < events.size(); ++i) {
    DLT_RETURN_IF_ERROR(RunOne(events[i], i, report));
  }
  return Status::kOk;
}

Status Executor::Run(DivergenceReport* report) {
  // Top-level loop folds the integrity chain itself (RunEvents also serves
  // poll bodies, which the measurement parity contract excludes).
  const std::vector<TemplateEvent>& events = tpl_->events;
  for (size_t i = 0; i < events.size(); ++i) {
    DLT_RETURN_IF_ERROR(RunOne(events[i], i, report));
    if (chain_ != nullptr) {
      chain_->FoldEvent(events[i], i);
    }
  }
  return Status::kOk;
}

}  // namespace dlt
