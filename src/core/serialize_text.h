// Human-readable template serialization. The paper's recorder "emits templates
// as human-readable documents" (§7.3.4); this is that format. A binary form
// (serialize_binary.h) exists as the paper's suggested size optimization.
#ifndef SRC_CORE_SERIALIZE_TEXT_H_
#define SRC_CORE_SERIALIZE_TEXT_H_

#include <string>
#include <vector>

#include "src/core/interaction_template.h"

namespace dlt {

std::string TemplateToText(const InteractionTemplate& t);
std::string TemplatesToText(const std::vector<InteractionTemplate>& templates);

Result<std::vector<InteractionTemplate>> TemplatesFromText(std::string_view text);

}  // namespace dlt

#endif  // SRC_CORE_SERIALIZE_TEXT_H_
