// CompiledProgram: an interaction template lowered to one contiguous vector of
// fixed-size ops for the hot replay path. Lowering happens once per template
// (cached by the TemplateStore): operand expressions are flattened to postfix
// step sequences over a dense slot table (constant subtrees fold to immediates),
// constraint checks are specialized to flat atom ranges with the comparison
// baked in, poll/irq timeout defaults are resolved, and consecutive same-base
// shm word accesses are coalesced into bulk ops backed by the AddressSpace
// block transfer path. The CompiledExecutor (compiled_executor.h) dispatches
// the op vector with semantics byte-identical to the interpreter in
// executor.cc — docs/replay_compiler.md spells out the contract.
#ifndef SRC_CORE_COMPILED_PROGRAM_H_
#define SRC_CORE_COMPILED_PROGRAM_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/interaction_template.h"

namespace dlt {

// Deterministic replay CPU cost model (docs/replay_compiler.md). The
// interpreter charges kReplayInterpEventNs per source event (executor.cc); the
// compiled engine dispatches one fixed-size op per coalesced run at
// kCompiledOpNs plus kCompiledWordNs per covered source word, which is strictly
// cheaper for every op shape (120 + 6k < 800k for all k >= 1).
inline constexpr uint64_t kReplayInterpEventNs = 800;
inline constexpr uint64_t kCompiledOpNs = 120;
inline constexpr uint64_t kCompiledWordNs = 6;

// Flattened postfix expression step. kConst pushes |imm|, kInput pushes the
// slot's bound value (kNotFound when unbound), kNot is unary, everything else
// pops two operands and pushes Apply(op, a, b) with expr.cc semantics
// (shift >= 64 yields 0, div/mod by zero is kInvalidArg).
struct ExprStep {
  ExprOp op = ExprOp::kConst;
  uint16_t slot = 0;
  uint64_t imm = 0;
};

// Maximum postfix evaluation stack depth the executor provisions; templates
// with deeper operand expressions fail to compile and fall back to the
// interpreter (Status::kUnsupported from CompileTemplate).
inline constexpr size_t kMaxExprStack = 24;

inline constexpr uint16_t kNoSlot = 0xffff;
inline constexpr uint16_t kNoBuffer = 0xffff;

// A pre-lowered operand: immediate, single slot load, or a postfix step range.
// kNone mirrors a null ExprRef (the interpreter surfaces it as kCorrupt).
struct Operand {
  enum class Kind : uint8_t { kNone, kImm, kSlot, kSteps };
  Kind kind = Kind::kNone;
  uint16_t slot = 0;
  uint64_t imm = 0;
  uint32_t begin = 0;  // ExprStep pool range when kSteps
  uint32_t end = 0;
};

// One specialized constraint comparison: cmp baked in, operands pre-lowered.
struct CompiledAtom {
  Operand lhs;
  Operand rhs;
  Cmp cmp = Cmp::kEq;
};

// Compiled opcodes. kShmReadBulk/kShmWriteBulk cover a run of >= 2 consecutive
// same-base word accesses (CompiledWord carries the per-word metadata); every
// other op covers exactly one source event.
enum class COp : uint8_t {
  kRegRead,
  kRegWrite,
  kShmRead,
  kShmWrite,
  kShmReadBulk,
  kShmWriteBulk,
  kDmaAlloc,
  kRandom,
  kTimestamp,
  kWaitIrq,
  kCopyFromDma,
  kCopyToDma,
  kPioIn,
  kPioOut,
  kDelay,
  kPollReg,
  kPollShm,
};

const char* COpName(COp c);

// Per-word metadata of a bulk shm op: bind slot, constraint atoms, the value
// operand (writes), and the source event (divergence reports / trace parity).
struct CompiledWord {
  uint16_t bind_slot = kNoSlot;
  uint32_t atom_begin = 0;
  uint32_t atom_end = 0;
  Operand value;
  uint32_t src_event = 0;  // index into CompiledProgram::src
};

struct CompiledOp {
  COp code = COp::kRegRead;
  uint16_t device = 0;
  uint16_t bind_slot = kNoSlot;
  uint16_t buffer = kNoBuffer;  // index into CompiledProgram::buffer_names
  uint64_t reg_off = 0;
  Operand addr;     // shm address (bulk: the shared base expression)
  Operand value;    // write value / alloc size / delay us / copy+pio length
  Operand buf_off;  // copies + PIO: offset into the program buffer
  uint32_t atom_begin = 0;  // event constraint atoms (non-bulk ops)
  uint32_t atom_end = 0;
  int irq_line = -1;
  // Poll meta ops: mask/compare baked in, defaults resolved at compile time.
  uint32_t mask = 0;
  uint32_t want = 0;
  Cmp poll_cmp = Cmp::kEq;
  uint64_t timeout_us = 0;   // resolved: never 0
  uint64_t interval_us = 0;  // resolved: never 0
  uint32_t body_begin = 0;   // compiled body op range (polls)
  uint32_t body_end = 0;
  // Bulk shm ops: CompiledWord range plus the first word's constant offset
  // from the base expression (word w lives at base + base_off + 4w).
  uint32_t word_begin = 0;
  uint32_t word_end = 0;
  uint64_t base_off = 0;
  uint32_t src_event = 0;  // index into CompiledProgram::src (non-bulk ops)
};

// Source-event back reference: the template event an op (or bulk word) covers
// plus its index within its own event sequence — divergence reports and trace
// spans must match the interpreter's per-sequence indices exactly.
struct SrcEvent {
  const TemplateEvent* ev = nullptr;
  uint32_t index = 0;
};

class CompiledProgram {
 public:
  const InteractionTemplate* source = nullptr;

  std::vector<CompiledOp> ops;
  std::vector<CompiledWord> words;
  std::vector<CompiledAtom> atoms;
  std::vector<ExprStep> steps;
  std::vector<SrcEvent> src;
  // Every slot name paired with its slot id, sorted by name: Run and
  // EvalInitial merge-join this against the invoke's (sorted) scalar map, so
  // programs are independent of which scalar signature selected them.
  std::vector<std::pair<std::string, uint16_t>> scalar_loads;
  std::vector<std::string> buffer_names;
  uint32_t main_end = 0;  // ops[0, main_end) is the top-level sequence
  uint16_t slot_count = 0;
  uint32_t initial_atom_begin = 0;  // template initial constraint, specialized
  uint32_t initial_atom_end = 0;
  uint32_t source_events = 0;  // events covered, poll bodies counted once

  // Loads |scalars| into the slot arrays (callers provide slot_count-sized
  // buffers, zeroed |bound|).
  void LoadScalars(const Bindings& scalars, uint64_t* slots, uint8_t* bound) const;

  // Evaluates an operand against bound slots. Errors mirror Expr::Eval:
  // kNotFound for an unbound input, kInvalidArg for div/mod by zero, kCorrupt
  // for a kNone operand (null source expression).
  Result<uint64_t> EvalOperand(const Operand& o, const uint64_t* slots,
                               const uint8_t* bound) const;

  // Evaluates atoms [begin, end) as a conjunction with Constraint::Eval
  // semantics: in order, first false short-circuits, first error propagates.
  Result<bool> EvalAtoms(uint32_t begin, uint32_t end, const uint64_t* slots,
                         const uint8_t* bound) const;

  // Evaluates the specialized initial constraint against invoke scalars only —
  // the compiled selection check. Same result as source->initial.Eval(scalars).
  Result<bool> EvalInitial(const Bindings& scalars) const;

  // Static cost-model totals (poll iterations excluded from both).
  uint64_t StaticInterpNs() const { return uint64_t{source_events} * kReplayInterpEventNs; }
  uint64_t StaticCompiledNs() const;

  // Human-readable op listing for `driverletc compile`.
  std::string Disassemble() const;
};

// Lowers a template. kUnsupported when an operand expression exceeds
// kMaxExprStack (the caller keeps the interpreter as fallback).
Result<std::shared_ptr<const CompiledProgram>> CompileTemplate(const InteractionTemplate* tpl);

// Test hook: arms a deliberate constant-folding miscompile (constants inside
// compound operands lower off by one). Exists so the conformance harness can
// prove the cross-engine oracle catches real codegen bugs; never set outside
// tests. Armed state only affects templates compiled while it is on — caches
// holding programs compiled earlier are unaffected.
void SetCompiledFoldQuirkForTest(bool on);
bool CompiledFoldQuirkForTest();

}  // namespace dlt

#endif  // SRC_CORE_COMPILED_PROGRAM_H_
