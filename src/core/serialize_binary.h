// Compact binary template serialization (varint/TLV). The paper ships templates
// as human-readable documents and notes "further converting them to binary form
// is likely to reduce their sizes" (§7.3.4) — this implements that conversion;
// bench/memory_overhead quantifies the win.
//
// Two wire versions share the "BDLT" magic (docs/template_store.md):
//  - v1: templates stored back to back, parsed eagerly and in full.
//  - v2: a length-prefixed, offset-table layout built for zero-copy loads. A
//    fixed header carries the template count and directory length; the
//    directory holds everything selection and admission need (name, entry,
//    params, the initial constraint, touched devices) plus each template's
//    body offset/length; event bodies live in a separate section that is only
//    parsed when a template is actually executed. PackageView is the
//    non-owning reader: Parse() touches header + directory bytes only,
//    HydrateEvents() decodes one body on demand.
#ifndef SRC_CORE_SERIALIZE_BINARY_H_
#define SRC_CORE_SERIALIZE_BINARY_H_

#include <cstdint>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/core/interaction_template.h"

namespace dlt {

std::vector<uint8_t> TemplatesToBinary(const std::vector<InteractionTemplate>& templates);

// v2: directory + body sections (see PackageView). Byte-stable for equal input.
std::vector<uint8_t> TemplatesToBinaryV2(const std::vector<InteractionTemplate>& templates);

// Parses either wire version (dispatches on the version byte); v2 inputs are
// hydrated eagerly. Existing callers keep working with both encodings.
Result<std::vector<InteractionTemplate>> TemplatesFromBinary(const uint8_t* data, size_t len);

// Appends one template's canonical v1 encoding (the unit the v2 body section
// and the compile-cache content hash are built from).
void AppendTemplateBinary(const InteractionTemplate& t, std::vector<uint8_t>* out);

// Content identity of a template: SHA-256 over its canonical v1 encoding.
// Keys the disk-persisted compile cache (src/core/program_cache.h).
Sha256::Digest TemplateContentHash(const InteractionTemplate& t);

// Zero-copy reader over a v2 payload. Non-owning: |data| must outlive the
// view (the mmap'ed package file, see package.h MappedPackage). Parse()
// validates the header, bounds-checks every directory entry against the body
// section and materializes the cheap per-template metadata; event bodies stay
// untouched until HydrateEvents().
class PackageView {
 public:
  static Result<PackageView> Parse(const uint8_t* data, size_t len);

  size_t size() const { return entries_.size(); }
  // Template metadata with an EMPTY events vector (directory content only).
  const InteractionTemplate& header(size_t i) const { return entries_[i].header; }
  // Devices the template's events touch (recorded at seal time), sorted.
  const std::vector<uint16_t>& devices(size_t i) const { return entries_[i].devices; }
  // Decodes template |i|'s event body into |tpl->events| (replacing it).
  // kCorrupt when the body slice does not decode to exactly one event list.
  Status HydrateEvents(size_t i, InteractionTemplate* tpl) const;

  // Bytes Parse() actually decoded (header + directory) vs the whole payload —
  // the zero-copy accounting bench/store_scale reports.
  size_t directory_bytes() const { return directory_bytes_; }
  size_t total_bytes() const { return total_bytes_; }

 private:
  struct Entry {
    InteractionTemplate header;
    std::vector<uint16_t> devices;
    size_t body_off = 0;  // into |body_|
    size_t body_len = 0;
  };

  const uint8_t* body_ = nullptr;
  size_t body_len_ = 0;
  std::vector<Entry> entries_;
  size_t directory_bytes_ = 0;
  size_t total_bytes_ = 0;
};

}  // namespace dlt

#endif  // SRC_CORE_SERIALIZE_BINARY_H_
