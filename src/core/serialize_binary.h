// Compact binary template serialization (varint/TLV). The paper ships templates
// as human-readable documents and notes "further converting them to binary form
// is likely to reduce their sizes" (§7.3.4) — this implements that conversion;
// bench/memory_overhead quantifies the win.
#ifndef SRC_CORE_SERIALIZE_BINARY_H_
#define SRC_CORE_SERIALIZE_BINARY_H_

#include <cstdint>
#include <vector>

#include "src/core/interaction_template.h"

namespace dlt {

std::vector<uint8_t> TemplatesToBinary(const std::vector<InteractionTemplate>& templates);

Result<std::vector<InteractionTemplate>> TemplatesFromBinary(const uint8_t* data, size_t len);

}  // namespace dlt

#endif  // SRC_CORE_SERIALIZE_BINARY_H_
