#include "src/core/constraint_index.h"

#include <algorithm>
#include <limits>
#include <map>

namespace dlt {

namespace {

constexpr uint64_t kU64Max = std::numeric_limits<uint64_t>::max();

// c cmp x  ≡  x mirror(cmp) c
Cmp MirrorCmp(Cmp c) {
  switch (c) {
    case Cmp::kLt:
      return Cmp::kGt;
    case Cmp::kLe:
      return Cmp::kGe;
    case Cmp::kGt:
      return Cmp::kLt;
    case Cmp::kGe:
      return Cmp::kLe;
    default:
      return c;  // Eq/Ne are symmetric
  }
}

void EmitScalarGate(const std::string& field, Cmp cmp, uint64_t v,
                    std::vector<ConstraintGate>* out) {
  ConstraintGate g;
  g.field = field;
  switch (cmp) {
    case Cmp::kEq:
      g.kind = ConstraintGate::Kind::kEq;
      g.eq = v;
      break;
    case Cmp::kLe:
      g.kind = ConstraintGate::Kind::kRange;
      g.lo = 0;
      g.hi = v;
      break;
    case Cmp::kLt:
      g.kind = ConstraintGate::Kind::kRange;
      if (v == 0) {  // x < 0 over uint64: never true
        g.lo = 1;
        g.hi = 0;
      } else {
        g.lo = 0;
        g.hi = v - 1;
      }
      break;
    case Cmp::kGe:
      g.kind = ConstraintGate::Kind::kRange;
      g.lo = v;
      g.hi = kU64Max;
      break;
    case Cmp::kGt:
      g.kind = ConstraintGate::Kind::kRange;
      if (v == kU64Max) {  // x > max: never true
        g.lo = 1;
        g.hi = 0;
      } else {
        g.lo = v + 1;
        g.hi = kU64Max;
      }
      break;
    case Cmp::kNe:
      return;  // excludes one value out of 2^64 — not discriminating
  }
  out->push_back(std::move(g));
}

// Splits an And node into (input, const) children regardless of operand order.
bool SplitMaskAnd(const Expr* e, std::string* field, uint64_t* mask) {
  if (e == nullptr || e->op() != ExprOp::kAnd) {
    return false;
  }
  const Expr* l = e->lhs().get();
  const Expr* r = e->rhs().get();
  if (l->is_input() && r->is_const()) {
    *field = l->input_name();
    *mask = r->constant();
    return true;
  }
  if (l->is_const() && r->is_input()) {
    *field = r->input_name();
    *mask = l->constant();
    return true;
  }
  return false;
}

}  // namespace

std::vector<ConstraintGate> FactorGates(const Constraint& c) {
  std::vector<ConstraintGate> out;
  for (const ConstraintAtom& a : c.atoms()) {
    const Expr* l = a.lhs.get();
    const Expr* r = a.rhs.get();
    if (l == nullptr || r == nullptr) {
      continue;
    }
    if (l->is_input() && r->is_const()) {
      EmitScalarGate(l->input_name(), a.cmp, r->constant(), &out);
      continue;
    }
    if (l->is_const() && r->is_input()) {
      EmitScalarGate(r->input_name(), MirrorCmp(a.cmp), l->constant(), &out);
      continue;
    }
    if (a.cmp == Cmp::kEq) {
      std::string field;
      uint64_t mask = 0;
      uint64_t want = 0;
      bool got = false;
      if (r->is_const() && SplitMaskAnd(l, &field, &mask)) {
        want = r->constant();
        got = true;
      } else if (l->is_const() && SplitMaskAnd(r, &field, &mask)) {
        want = l->constant();
        got = true;
      }
      if (got) {
        ConstraintGate g;
        g.kind = ConstraintGate::Kind::kMask;
        g.field = std::move(field);
        g.mask = mask;
        g.want = want;
        out.push_back(std::move(g));
      }
    }
  }
  return out;
}

void EntryConstraintIndex::Build(const std::vector<const Constraint*>& initials) {
  const size_t n = initials.size();
  std::vector<std::vector<ConstraintGate>> gates(n);
  for (size_t i = 0; i < n; ++i) {
    gates[i] = FactorGates(*initials[i]);
  }
  // 0 = unassigned, 1 = claimed by a dimension, 2 = dropped (unsatisfiable).
  std::vector<uint8_t> state(n, 0);

  // Per-field candidate coverage for one gate kind. std::map keeps field
  // choice deterministic (ties break to the lexicographically smallest).
  auto best_field = [&](auto&& counts) -> std::string {
    std::string best;
    size_t best_n = 0;
    for (const auto& [field, cnt] : counts) {
      if (cnt > best_n) {
        best = field;
        best_n = cnt;
      }
    }
    return best;
  };

  // ---- dimension 1: eq buckets on the most-covering field ----
  {
    std::map<std::string, size_t> counts;
    for (size_t i = 0; i < n; ++i) {
      std::map<std::string, bool> seen;
      for (const ConstraintGate& g : gates[i]) {
        if (g.kind == ConstraintGate::Kind::kEq && !seen[g.field]) {
          seen[g.field] = true;
          ++counts[g.field];
        }
      }
    }
    eq_field_ = best_field(counts);
    if (!eq_field_.empty()) {
      for (size_t i = 0; i < n; ++i) {
        bool has = false;
        bool contradicted = false;
        uint64_t value = 0;
        for (const ConstraintGate& g : gates[i]) {
          if (g.kind != ConstraintGate::Kind::kEq || g.field != eq_field_) {
            continue;
          }
          if (has && g.eq != value) {
            contradicted = true;  // x == a && x == b, a != b: never selectable
          }
          has = true;
          value = g.eq;
        }
        if (!has) {
          continue;
        }
        if (contradicted) {
          state[i] = 2;
          ++dropped_;
        } else {
          state[i] = 1;
          eq_buckets_[value].push_back(static_cast<uint32_t>(i));
          ++indexed_candidates_;
        }
      }
    }
  }

  // ---- dimension 2: interval list on the best range field among the rest ----
  {
    std::map<std::string, size_t> counts;
    for (size_t i = 0; i < n; ++i) {
      if (state[i] != 0) {
        continue;
      }
      std::map<std::string, bool> seen;
      for (const ConstraintGate& g : gates[i]) {
        if (g.kind == ConstraintGate::Kind::kRange && !seen[g.field]) {
          seen[g.field] = true;
          ++counts[g.field];
        }
      }
    }
    range_field_ = best_field(counts);
    if (!range_field_.empty()) {
      struct Interval {
        uint64_t lo, hi;
        uint32_t cand;
      };
      std::vector<Interval> intervals;
      std::vector<uint32_t> members;
      for (size_t i = 0; i < n; ++i) {
        if (state[i] != 0) {
          continue;
        }
        bool has = false;
        uint64_t lo = 0;
        uint64_t hi = kU64Max;
        for (const ConstraintGate& g : gates[i]) {
          if (g.kind != ConstraintGate::Kind::kRange || g.field != range_field_) {
            continue;
          }
          has = true;
          lo = std::max(lo, g.lo);
          hi = std::min(hi, g.hi);
        }
        if (!has) {
          continue;
        }
        if (lo > hi) {  // intersected to empty: never selectable
          state[i] = 2;
          ++dropped_;
          continue;
        }
        state[i] = 1;
        intervals.push_back({lo, hi, static_cast<uint32_t>(i)});
        members.push_back(static_cast<uint32_t>(i));
      }
      if (!intervals.empty()) {
        // Elementary segments: between consecutive distinct endpoints the
        // covering set is constant, so a binary search on the segment start
        // answers a point query.
        std::vector<uint64_t> bounds;
        for (const Interval& iv : intervals) {
          bounds.push_back(iv.lo);
          if (iv.hi != kU64Max) {
            bounds.push_back(iv.hi + 1);
          }
        }
        std::sort(bounds.begin(), bounds.end());
        bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
        std::vector<std::vector<uint32_t>> cands(bounds.size());
        size_t total_refs = 0;
        for (size_t k = 0; k < bounds.size(); ++k) {
          uint64_t s = bounds[k];
          for (const Interval& iv : intervals) {
            if (iv.lo <= s && s <= iv.hi) {
              cands[k].push_back(iv.cand);
              ++total_refs;
            }
          }
        }
        // Heavily overlapping windows can blow segment storage up to O(n^2);
        // past 8 refs per interval on average the dimension stops paying for
        // itself — demote its members to the residual list instead.
        if (total_refs > std::max<size_t>(64, 8 * intervals.size())) {
          range_field_.clear();
          for (uint32_t i : members) {
            state[i] = 0;
          }
        } else {
          seg_starts_ = std::move(bounds);
          seg_cands_ = std::move(cands);
          indexed_candidates_ += intervals.size();
        }
      } else {
        range_field_.clear();
      }
    }
  }

  // ---- dimension 3: mask buckets on the best (field, mask) among the rest ----
  {
    std::map<std::pair<std::string, uint64_t>, size_t> counts;
    for (size_t i = 0; i < n; ++i) {
      if (state[i] != 0) {
        continue;
      }
      std::map<std::pair<std::string, uint64_t>, bool> seen;
      for (const ConstraintGate& g : gates[i]) {
        std::pair<std::string, uint64_t> key(g.field, g.mask);
        if (g.kind == ConstraintGate::Kind::kMask && !seen[key]) {
          seen[key] = true;
          ++counts[key];
        }
      }
    }
    std::pair<std::string, uint64_t> best;
    size_t best_n = 0;
    for (const auto& [key, cnt] : counts) {
      if (cnt > best_n) {
        best = key;
        best_n = cnt;
      }
    }
    if (best_n > 0) {
      mask_field_ = best.first;
      mask_ = best.second;
      for (size_t i = 0; i < n; ++i) {
        if (state[i] != 0) {
          continue;
        }
        bool has = false;
        bool contradicted = false;
        uint64_t want = 0;
        for (const ConstraintGate& g : gates[i]) {
          if (g.kind != ConstraintGate::Kind::kMask || g.field != mask_field_ ||
              g.mask != mask_) {
            continue;
          }
          uint64_t w = g.want & mask_;  // bits outside the mask can never match
          if ((g.want & ~mask_) != 0) {
            contradicted = true;  // (x & m) == c with c ⊄ m: never true
          }
          if (has && w != want) {
            contradicted = true;
          }
          has = true;
          want = w;
        }
        if (!has) {
          continue;
        }
        if (contradicted) {
          state[i] = 2;
          ++dropped_;
        } else {
          state[i] = 1;
          mask_buckets_[want].push_back(static_cast<uint32_t>(i));
          ++indexed_candidates_;
        }
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (state[i] == 0) {
      residual_.push_back(static_cast<uint32_t>(i));
    }
  }
}

void EntryConstraintIndex::Probe(const Bindings& scalars, std::vector<uint32_t>* out) const {
  out->clear();
  if (!eq_field_.empty()) {
    auto it = scalars.find(eq_field_);
    if (it != scalars.end()) {
      auto b = eq_buckets_.find(it->second);
      if (b != eq_buckets_.end()) {
        out->insert(out->end(), b->second.begin(), b->second.end());
      }
    }
    // Field unbound: every eq-gated candidate would Eval to error (or be
    // missing-param-skipped) under the linear scan — correctly pruned.
  }
  if (!range_field_.empty()) {
    auto it = scalars.find(range_field_);
    if (it != scalars.end() && !seg_starts_.empty() && it->second >= seg_starts_.front()) {
      size_t k = static_cast<size_t>(
          std::upper_bound(seg_starts_.begin(), seg_starts_.end(), it->second) -
          seg_starts_.begin() - 1);
      out->insert(out->end(), seg_cands_[k].begin(), seg_cands_[k].end());
    }
  }
  if (!mask_field_.empty()) {
    auto it = scalars.find(mask_field_);
    if (it != scalars.end()) {
      auto b = mask_buckets_.find(it->second & mask_);
      if (b != mask_buckets_.end()) {
        out->insert(out->end(), b->second.begin(), b->second.end());
      }
    }
  }
  out->insert(out->end(), residual_.begin(), residual_.end());
  // The dimensions partition the candidates, so the concatenation is
  // duplicate-free; sorting restores slot order for first-match-wins parity.
  std::sort(out->begin(), out->end());
}

}  // namespace dlt
