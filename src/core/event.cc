#include "src/core/event.h"

namespace dlt {

EventClass ClassOf(EventKind k) {
  switch (k) {
    case EventKind::kRegRead:
    case EventKind::kShmRead:
    case EventKind::kDmaAlloc:
    case EventKind::kGetRandBytes:
    case EventKind::kGetTimestamp:
    case EventKind::kWaitIrq:
    case EventKind::kCopyFromDma:
    case EventKind::kPioIn:
      return EventClass::kInput;
    case EventKind::kRegWrite:
    case EventKind::kShmWrite:
    case EventKind::kDelay:
    case EventKind::kCopyToDma:
    case EventKind::kPioOut:
      return EventClass::kOutput;
    case EventKind::kPollReg:
    case EventKind::kPollShm:
      return EventClass::kMeta;
  }
  return EventClass::kMeta;
}

const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kRegRead: return "reg_read";
    case EventKind::kShmRead: return "shm_read";
    case EventKind::kDmaAlloc: return "dma_alloc";
    case EventKind::kGetRandBytes: return "get_rand_bytes";
    case EventKind::kGetTimestamp: return "get_ts";
    case EventKind::kWaitIrq: return "wait_for_irq";
    case EventKind::kCopyFromDma: return "copy_from_dma";
    case EventKind::kPioIn: return "pio_in";
    case EventKind::kRegWrite: return "reg_write";
    case EventKind::kShmWrite: return "shm_write";
    case EventKind::kDelay: return "delay";
    case EventKind::kCopyToDma: return "copy_to_dma";
    case EventKind::kPioOut: return "pio_out";
    case EventKind::kPollReg: return "poll_reg";
    case EventKind::kPollShm: return "poll_shm";
  }
  return "?";
}

Result<EventKind> EventKindFromName(std::string_view name) {
  static constexpr EventKind kAll[] = {
      EventKind::kRegRead,     EventKind::kShmRead,   EventKind::kDmaAlloc,
      EventKind::kGetRandBytes, EventKind::kGetTimestamp, EventKind::kWaitIrq,
      EventKind::kCopyFromDma, EventKind::kPioIn,     EventKind::kRegWrite,
      EventKind::kShmWrite,    EventKind::kDelay,     EventKind::kCopyToDma,
      EventKind::kPioOut,      EventKind::kPollReg,   EventKind::kPollShm,
  };
  for (EventKind k : kAll) {
    if (name == EventKindName(k)) {
      return k;
    }
  }
  return Status::kCorrupt;
}

namespace {

bool ExprSame(const ExprRef& a, const ExprRef& b) {
  if (a == nullptr && b == nullptr) {
    return true;
  }
  return Expr::Equal(a, b);
}

}  // namespace

bool SameStateTransition(const TemplateEvent& a, const TemplateEvent& b) {
  if (a.kind != b.kind || a.device != b.device || a.reg_off != b.reg_off ||
      a.irq_line != b.irq_line || a.mask != b.mask || a.want != b.want ||
      a.poll_cmp != b.poll_cmp || a.state_changing != b.state_changing ||
      a.buffer != b.buffer) {
    return false;
  }
  if (!ExprSame(a.addr, b.addr) || !ExprSame(a.value, b.value) ||
      !ExprSame(a.buf_offset, b.buf_offset)) {
    return false;
  }
  if (a.constraint.ToString() != b.constraint.ToString()) {
    return false;
  }
  return SameStateTransition(a.body, b.body);
}

bool SameStateTransition(const std::vector<TemplateEvent>& a,
                         const std::vector<TemplateEvent>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameStateTransition(a[i], b[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace dlt
