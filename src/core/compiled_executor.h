// CompiledExecutor: dispatches a CompiledProgram against a ReplayContext with
// semantics byte-identical to the interpreter (executor.cc) — same device
// access sequence, same virtual-time charges, same divergence reports, same
// telemetry events — while the deterministic CPU cost model (cpu_model_ns)
// captures the dispatch win. See docs/replay_compiler.md for the equivalence
// contract and the fallback rules.
#ifndef SRC_CORE_COMPILED_EXECUTOR_H_
#define SRC_CORE_COMPILED_EXECUTOR_H_

#include <vector>

#include "src/core/compiled_program.h"
#include "src/core/replay_args.h"
#include "src/core/replay_context.h"

namespace dlt {

class IntegrityChain;

class CompiledExecutor {
 public:
  CompiledExecutor(ReplayContext* ctx, const CompiledProgram* prog, const ReplayArgs* args);

  // Executes the whole program once. kDiverged / kTimeout fill the report.
  Status Run(DivergenceReport* report);

  size_t events_executed() const { return events_executed_; }
  // Deterministic model cost of the ops dispatched so far (docs/replay_compiler.md).
  uint64_t cpu_model_ns() const { return cpu_model_ns_; }
  // Coalesced block transfers executed (shm bulk + multi-word PIO).
  uint64_t bulk_ops() const { return bulk_ops_; }

  // When set, charges the context's replay-overhead hook with the compiled
  // cost model instead of the interpreter-parity charge. Default off: parity
  // charging keeps virtual timelines (poll budgets, IRQ deadlines, seeded
  // fault-opportunity streams) byte-identical between engines.
  void set_model_clock(bool on) { model_clock_ = on; }

  // Optional integrity measurement (integrity.h): folds every completed
  // top-level source event — bulk ops fold per covered word — producing the
  // same chain the interpreter builds for the same template, including the
  // prefix of a diverged attempt. Poll bodies are excluded.
  void set_integrity_chain(IntegrityChain* chain) { chain_ = chain; }

 private:
  struct BufSlot {
    uint8_t* w = nullptr;
    size_t wlen = 0;
    const uint8_t* r = nullptr;
    size_t rlen = 0;
    bool have_w = false;
    bool have_ro = false;
  };

  Status ExecRange(uint32_t begin, uint32_t end, DivergenceReport* report);
  Status ExecOp(const CompiledOp& op, DivergenceReport* report);
  Status Dispatch(const CompiledOp& op, DivergenceReport* report);
  Status ExecBulk(const CompiledOp& op, DivergenceReport* report, bool telemetry);
  Status ExecBulkExact(const CompiledOp& op, DivergenceReport* report, bool telemetry);
  Status ExecPoll(const CompiledOp& op, DivergenceReport* report);

  // Operand evaluation with the interpreter's error mapping: any failure
  // surfaces as kCorrupt (Executor::EvalExpr).
  Result<uint64_t> EvalValue(const Operand& o) const;
  Result<PhysAddr> EvalAddrChecked(const Operand& o, size_t access_len) const;
  Status CheckAddr(PhysAddr addr, size_t access_len) const;
  Status BindAndCheck(const CompiledOp& op, uint64_t observed, DivergenceReport* report);
  Status CheckAtoms(uint32_t begin, uint32_t end, const SrcEvent& se, uint64_t observed,
                    DivergenceReport* report);
  // Buffer resolution mirrors Executor::ResolveWritable/ResolveReadable +
  // CheckBufferSpan, including the status flavours and their ordering.
  Status ResolveWritableBuf(const CompiledOp& op, uint8_t** data, uint64_t* off, uint64_t* len);
  Status ResolveReadableBuf(const CompiledOp& op, const uint8_t** data, uint64_t* off,
                            uint64_t* len);
  Status CheckSpanRaw(const uint8_t* data, size_t buflen, const CompiledOp& op, uint64_t* off,
                      uint64_t* len) const;

  // Interpreter-parity virtual-time charge for one covered source event.
  void ChargeEvent() {
    if (!model_clock_) {
      ctx_->ChargeReplayOverheadNs(kReplayInterpEventNs);
    }
  }
  // Model accounting for one op covering |words| source events; charges the
  // clock instead of the parity charge when the model clock is selected.
  void AccountOp(uint64_t words) {
    uint64_t cost = kCompiledOpNs + kCompiledWordNs * words;
    cpu_model_ns_ += cost;
    if (model_clock_) {
      ctx_->ChargeReplayOverheadNs(cost);
    }
  }

  ReplayContext* ctx_;
  const CompiledProgram* prog_;
  const ReplayArgs* args_;

  std::vector<uint64_t> slots_;
  std::vector<uint8_t> bound_;
  std::vector<BufSlot> bufs_;
  struct Alloc {
    PhysAddr base;
    uint64_t size;
  };
  std::vector<Alloc> allocs_;
  std::vector<uint32_t> scratch_;  // staging words for bulk/PIO transfers

  // Folds the source event an op/word covers once it completed successfully.
  void FoldSrc(const SrcEvent& se);

  size_t events_executed_ = 0;
  uint64_t cpu_model_ns_ = 0;
  uint64_t bulk_ops_ = 0;
  bool model_clock_ = false;
  IntegrityChain* chain_ = nullptr;
};

}  // namespace dlt

#endif  // SRC_CORE_COMPILED_EXECUTOR_H_
