#include "src/core/template_builder.h"

#include <optional>

#include "src/soc/log.h"

namespace dlt {

namespace {

enum class SymClass { kParam, kDevice, kEnv };

SymClass ClassifySymbol(const std::string& name, const std::vector<ParamSpec>& params) {
  for (const auto& p : params) {
    if (p.name == name) {
      return SymClass::kParam;
    }
  }
  if (name.rfind("din", 0) == 0) {
    return SymClass::kDevice;
  }
  return SymClass::kEnv;
}

// Renders |e| with occurrences of Input(bind) replaced by "$" — used to compare
// loop-iteration atoms that differ only in their iteration-local bind symbol.
std::string RenderRenamed(const ExprRef& e, const std::string& bind) {
  if (e == nullptr) {
    return "<null>";
  }
  switch (e->op()) {
    case ExprOp::kConst:
      return e->ToString();
    case ExprOp::kInput:
      return e->input_name() == bind ? "$" : e->input_name();
    case ExprOp::kNot:
      return "(~" + RenderRenamed(e->lhs(), bind) + ")";
    default:
      return "(" + RenderRenamed(e->lhs(), bind) + " " + ExprOpToken(e->op()) + " " +
             RenderRenamed(e->rhs(), bind) + ")";
  }
}

// Matches atoms of the form  bind <cmp> C  or  (bind & M) <cmp> C.
bool ExtractPollCond(const ConstraintAtom& atom, const std::string& bind, uint32_t* mask,
                     uint32_t* want, Cmp* cmp) {
  if (atom.rhs == nullptr || !atom.rhs->is_const()) {
    return false;
  }
  const ExprRef& l = atom.lhs;
  if (l == nullptr) {
    return false;
  }
  uint64_t m = 0xffffffffull;
  if (l->op() == ExprOp::kAnd) {
    if (l->lhs() != nullptr && l->lhs()->is_input() && l->lhs()->input_name() == bind &&
        l->rhs() != nullptr && l->rhs()->is_const()) {
      m = l->rhs()->constant();
    } else if (l->rhs() != nullptr && l->rhs()->is_input() && l->rhs()->input_name() == bind &&
               l->lhs() != nullptr && l->lhs()->is_const()) {
      m = l->lhs()->constant();
    } else {
      return false;
    }
  } else if (l->is_input() && l->input_name() == bind) {
    m = 0xffffffffull;
  } else {
    return false;
  }
  *mask = static_cast<uint32_t>(m);
  *want = static_cast<uint32_t>(atom.rhs->constant());
  *cmp = atom.cmp;
  return true;
}

struct PollUnit {
  size_t start;         // index of the read event
  size_t len;           // 1 (read) or 2 (read + delay)
  std::string sig;      // structural signature excluding cmp polarity
  uint32_t mask = 0;
  uint32_t want = 0;
  Cmp cmp = Cmp::kEq;  // this iteration's atom comparison
  uint64_t delay_us = 0;
  std::string bind;
};

// Tries to parse a poll unit starting at |i|. Returns nullopt when the event is
// not a candidate (wrong kind, no single own-bind condition, ...).
std::optional<PollUnit> ParseUnit(const std::vector<TemplateEvent>& events, size_t i) {
  const TemplateEvent& e = events[i];
  if (e.kind != EventKind::kShmRead && e.kind != EventKind::kRegRead) {
    return std::nullopt;
  }
  if (e.constraint.atoms().size() != 1 || e.bind.empty()) {
    return std::nullopt;
  }
  PollUnit u;
  u.start = i;
  u.len = 1;
  u.bind = e.bind;
  if (!ExtractPollCond(e.constraint.atoms()[0], e.bind, &u.mask, &u.want, &u.cmp)) {
    return std::nullopt;
  }
  if (i + 1 < events.size() && events[i + 1].kind == EventKind::kDelay &&
      events[i + 1].value != nullptr && events[i + 1].value->is_const()) {
    u.len = 2;
    u.delay_us = events[i + 1].value->constant();
  }
  std::string addr_sig = e.kind == EventKind::kShmRead
                             ? RenderRenamed(e.addr, e.bind)
                             : std::to_string(e.device) + "+" + std::to_string(e.reg_off);
  u.sig = std::string(EventKindName(e.kind)) + "|" + addr_sig + "|" + std::to_string(u.mask) +
          "|" + std::to_string(u.want);
  return u;
}

}  // namespace

int LiftPollingLoops(std::vector<TemplateEvent>* events) {
  std::vector<TemplateEvent> out;
  int lifted = 0;
  size_t i = 0;
  const std::vector<TemplateEvent>& in = *events;
  while (i < in.size()) {
    std::optional<PollUnit> first = ParseUnit(in, i);
    if (!first.has_value()) {
      out.push_back(in[i]);
      ++i;
      continue;
    }
    // Gather the maximal run of same-signature units.
    std::vector<PollUnit> run{*first};
    size_t j = i + first->len;
    while (j < in.size()) {
      std::optional<PollUnit> u = ParseUnit(in, j);
      if (!u.has_value() || u->sig != first->sig) {
        break;
      }
      run.push_back(*u);
      j += u->len;
      if (u->cmp == first->cmp) {
        continue;  // still failing iterations
      }
      break;  // polarity flipped: terminal iteration reached
    }
    // A loop = >= 1 failing iteration followed by a terminal one whose atom is
    // exactly the negation of the failing iterations'. Anything else is kept.
    bool is_loop = run.size() >= 2;
    if (is_loop) {
      for (size_t k = 0; k + 1 < run.size(); ++k) {
        if (run[k].cmp != NegateCmp(run.back().cmp)) {
          is_loop = false;
          break;
        }
      }
    }
    if (!is_loop) {
      out.push_back(in[i]);
      ++i;
      continue;
    }
    const PollUnit& terminal = run.back();
    const TemplateEvent& read0 = in[run.front().start];
    TemplateEvent poll;
    poll.kind = read0.kind == EventKind::kShmRead ? EventKind::kPollShm : EventKind::kPollReg;
    poll.device = read0.device;
    poll.reg_off = read0.reg_off;
    poll.addr = read0.addr;
    poll.bind = terminal.bind;  // the terminal value may feed later events
    poll.mask = terminal.mask;
    poll.want = terminal.want;
    poll.poll_cmp = terminal.cmp;
    poll.interval_us = run.front().delay_us;
    poll.timeout_us = 1'000'000;
    poll.recorded_iters = static_cast<uint32_t>(run.size());
    poll.state_changing = true;
    poll.file = read0.file;
    poll.line = read0.line;
    out.push_back(std::move(poll));
    ++lifted;
    i = terminal.start + 1;  // terminal iteration has no trailing delay consumed
  }
  *events = std::move(out);
  return lifted;
}

Result<InteractionTemplate> BuildTemplate(RawRecording&& raw) {
  InteractionTemplate t;
  t.entry = std::move(raw.entry);
  t.name = std::move(raw.name);
  t.primary_device = raw.primary_device;
  t.params = raw.params;

  // Index events by bind symbol (bind -> last event index binding it).
  // Binds are unique per recording, so a simple map suffices.
  std::map<std::string, size_t> bind_event;
  for (size_t i = 0; i < raw.events.size(); ++i) {
    if (!raw.events[i].bind.empty()) {
      bind_event[raw.events[i].bind] = i;
    }
  }

  // Attach path conditions.
  for (const PathCond& pc : raw.path_conds) {
    std::set<std::string> syms;
    pc.atom.lhs->CollectInputs(&syms);
    pc.atom.rhs->CollectInputs(&syms);
    std::optional<size_t> target;
    for (const auto& s : syms) {
      if (ClassifySymbol(s, raw.params) == SymClass::kParam) {
        continue;
      }
      auto it = bind_event.find(s);
      if (it == bind_event.end() || it->second >= pc.after_event) {
        DLT_LOG(kWarn) << "path condition references unbound symbol " << s;
        return Status::kBadState;
      }
      target = target.has_value() ? std::max(*target, it->second) : it->second;
    }
    if (!target.has_value()) {
      // Conditions purely over entry parameters become selection constraints.
      t.initial.AddAtom(pc.atom);
      continue;
    }
    TemplateEvent& ev = raw.events[*target];
    ev.constraint.AddAtom(pc.atom);
    ev.state_changing = true;
  }

  LiftPollingLoops(&raw.events);
  t.events = std::move(raw.events);
  return t;
}

}  // namespace dlt
