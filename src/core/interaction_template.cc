#include "src/core/interaction_template.h"

namespace dlt {

EventBreakdown InteractionTemplate::CountEvents() const {
  EventBreakdown b;
  for (const auto& e : events) {
    switch (ClassOf(e.kind)) {
      case EventClass::kInput: ++b.input; break;
      case EventClass::kOutput: ++b.output; break;
      case EventClass::kMeta: ++b.meta; break;
    }
  }
  return b;
}

std::vector<std::string> InteractionTemplate::ScalarParams() const {
  std::vector<std::string> out;
  for (const auto& p : params) {
    if (!p.is_buffer) {
      out.push_back(p.name);
    }
  }
  return out;
}

bool InteractionTemplate::Mergeable(const InteractionTemplate& a, const InteractionTemplate& b) {
  if (a.entry != b.entry || a.primary_device != b.primary_device) {
    return false;
  }
  if (a.initial.ToString() != b.initial.ToString()) {
    return false;
  }
  return SameStateTransition(a.events, b.events);
}

}  // namespace dlt
