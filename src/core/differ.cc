#include "src/core/differ.h"

#include <sstream>

namespace dlt {

std::string TransitionSignature(const RawRecording& raw) {
  std::ostringstream os;
  for (const auto& e : raw.events) {
    switch (e.kind) {
      case EventKind::kRegWrite:
      case EventKind::kPioOut:
        os << EventKindName(e.kind) << ":" << e.device << ":0x" << std::hex << e.reg_off
           << std::dec << ";";
        break;
      case EventKind::kShmWrite:
      case EventKind::kCopyToDma:
        os << EventKindName(e.kind) << ":" << (e.addr != nullptr ? e.addr->ToString() : "?")
           << ";";
        break;
      case EventKind::kDmaAlloc:
        os << "dma_alloc:" << (e.value != nullptr ? e.value->ToString() : "?") << ";";
        break;
      case EventKind::kWaitIrq:
        os << "irq:" << e.irq_line << ";";
        break;
      default:
        break;  // plain inputs and delays do not identify the transition path
    }
  }
  return os.str();
}

bool SameTransitionPath(const RawRecording& a, const RawRecording& b) {
  return TransitionSignature(a) == TransitionSignature(b);
}

namespace {
std::string RenderBindings(const Bindings& b) {
  std::ostringstream os;
  for (const auto& [k, v] : b) {
    os << k << "=" << v << " ";
  }
  return os.str();
}
}  // namespace

RegionValidation ValidateTransitionRegion(const TransitionProbe& probe,
                                          const Bindings& recorded_inputs,
                                          const std::vector<Bindings>& in_region_probes,
                                          const std::vector<Bindings>& out_region_probes) {
  RegionValidation v;
  Result<std::string> reference = probe(recorded_inputs);
  if (!reference.ok()) {
    v.violations.push_back("reference run failed");
    return v;
  }
  for (const Bindings& b : in_region_probes) {
    ++v.in_region_total;
    Result<std::string> sig = probe(b);
    if (sig.ok() && *sig == *reference) {
      ++v.in_region_same;
    } else {
      v.violations.push_back("in-region probe took a different path: " + RenderBindings(b));
    }
  }
  for (const Bindings& b : out_region_probes) {
    ++v.out_region_total;
    Result<std::string> sig = probe(b);
    // A rejected run (driver refuses the input) also counts as diverged: the
    // input provably cannot ride the recorded path.
    if (!sig.ok() || *sig != *reference) {
      ++v.out_region_diverged;
    } else {
      v.violations.push_back("out-region probe reproduced the path: " + RenderBindings(b));
    }
  }
  return v;
}

}  // namespace dlt
