// The interaction-template event IR (paper Table 1). A template is a linear
// sequence of these events; poll meta events may carry a body replayed per
// failed iteration.
#ifndef SRC_CORE_EVENT_H_
#define SRC_CORE_EVENT_H_

#include <string>
#include <vector>

#include "src/soc/types.h"
#include "src/sym/constraint.h"

namespace dlt {

enum class EventKind : uint8_t {
  // Input events (driver's perspective).
  kRegRead,
  kShmRead,
  kDmaAlloc,
  kGetRandBytes,
  kGetTimestamp,
  kWaitIrq,
  kCopyFromDma,
  kPioIn,
  // Output events.
  kRegWrite,
  kShmWrite,
  kDelay,
  kCopyToDma,
  kPioOut,
  // Meta events.
  kPollReg,
  kPollShm,
};

enum class EventClass : uint8_t { kInput, kOutput, kMeta };

EventClass ClassOf(EventKind k);
const char* EventKindName(EventKind k);
Result<EventKind> EventKindFromName(std::string_view name);

struct TemplateEvent {
  EventKind kind = EventKind::kRegRead;

  // Register interface (kReg*, kPollReg, kPio*).
  uint16_t device = 0;
  uint64_t reg_off = 0;

  // Shared-memory interface (kShm*, kPollShm): symbolic address over earlier
  // dma_alloc bindings, e.g. (dma0 + 0x18).
  ExprRef addr;

  // Inputs bind their observed value to this symbol for later events.
  std::string bind;

  // True when deviation from |constraint| means device-state divergence (§3.3).
  bool state_changing = false;
  Constraint constraint;

  // Outputs: value expression. dma_alloc: size. delay: microseconds.
  // wait_irq: unused. copies/pio: length expression.
  ExprRef value;

  // Copies / PIO: program buffer parameter and symbolic offset into it.
  std::string buffer;
  ExprRef buf_offset;

  // wait_irq.
  int irq_line = -1;

  // Poll meta events: terminate when Compare(poll_cmp, v & mask, want) holds.
  uint32_t mask = 0;
  uint32_t want = 0;
  Cmp poll_cmp = Cmp::kEq;
  uint64_t timeout_us = 0;
  uint64_t interval_us = 0;
  std::vector<TemplateEvent> body;  // executed per failed poll iteration
  uint32_t recorded_iters = 0;      // iterations observed at record time (stats)

  // Recording site in the gold driver, for divergence reports (§5).
  std::string file;
  int line = 0;

  bool is_input() const { return ClassOf(kind) == EventClass::kInput; }
  bool is_output() const { return ClassOf(kind) == EventClass::kOutput; }
  bool is_meta() const { return ClassOf(kind) == EventClass::kMeta; }
};

// Structural equality ignoring recorded concrete artifacts (used for template
// merging and by the differ's state-transition comparison).
bool SameStateTransition(const TemplateEvent& a, const TemplateEvent& b);
bool SameStateTransition(const std::vector<TemplateEvent>& a, const std::vector<TemplateEvent>& b);

}  // namespace dlt

#endif  // SRC_CORE_EVENT_H_
