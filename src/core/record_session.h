// RecordSession: a DriverIo that exercises the gold driver while logging raw
// interaction events, taint flows and path conditions — one record run of a
// record campaign (paper §4). Finish() distills the raw log into an
// interaction template via the template builder.
#ifndef SRC_CORE_RECORD_SESSION_H_
#define SRC_CORE_RECORD_SESSION_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/driver_io.h"
#include "src/core/event.h"
#include "src/core/interaction_template.h"

namespace dlt {

// A path condition logged at a tainted branch: the (possibly negated) comparison
// that held on the recorded path, positioned after the raw event it follows.
struct PathCond {
  ConstraintAtom atom;
  size_t after_event = 0;  // index into RawRecording::events (count of events before it)
  SourceLoc loc;
};

// Everything one record run produces; input to BuildTemplate().
struct RawRecording {
  std::string entry;
  std::string name;
  uint16_t primary_device = 0;
  std::vector<ParamSpec> params;
  std::vector<TemplateEvent> events;
  std::vector<PathCond> path_conds;
  // Concrete values observed for each input event (parallel to input events'
  // order of appearance); used by the differ and by tests.
  std::map<std::string, uint64_t> concrete_inputs;
};

class RecordSession : public DriverIo {
 public:
  // |base| performs the actual IO (normally kern::PassthroughIo over the
  // machine); the session interposes and logs.
  RecordSession(DriverIo* base, std::string entry, std::string template_name,
                uint16_t primary_device);

  // ---- Program <-> Driver seeding ----
  TValue ScalarParam(const std::string& name, uint64_t concrete);
  void BufferParam(const std::string& name, uint8_t* base_ptr, size_t len);

  // Distills the raw log into a template (constraint attachment, state-changing
  // classification, loop lifting). The session is spent afterwards.
  Result<InteractionTemplate> Finish();

  // Raw access for the differ and tests.
  const RawRecording& raw() const { return raw_; }
  bool failed() const { return failed_; }

  // ---- DriverIo ----
  TValue RegRead32(uint16_t device, uint64_t offset, SourceLoc loc) override;
  void RegWrite32(uint16_t device, uint64_t offset, const TValue& value, SourceLoc loc) override;
  TValue ShmRead32(const TValue& addr, SourceLoc loc) override;
  void ShmWrite32(const TValue& addr, const TValue& value, SourceLoc loc) override;
  Status WaitForIrq(int line, uint64_t timeout_us, SourceLoc loc) override;
  Status PollReg32(uint16_t device, uint64_t offset, uint32_t mask, uint32_t want, bool negate,
                   uint64_t timeout_us, uint64_t interval_us, SourceLoc loc) override;
  void DelayUs(uint64_t us, SourceLoc loc) override;
  TValue DmaAlloc(const TValue& size, SourceLoc loc) override;
  void DmaReleaseAll(SourceLoc loc) override;
  TValue GetRandomU32(SourceLoc loc) override;
  TValue GetTimestampUs(SourceLoc loc) override;
  void CopyToDma(const TValue& dst, const uint8_t* src_base, const TValue& src_off,
                 const TValue& len, SourceLoc loc) override;
  void CopyFromDma(uint8_t* dst_base, const TValue& dst_off, const TValue& src, const TValue& len,
                   SourceLoc loc) override;
  void PioIn(uint16_t device, uint64_t offset, uint8_t* dst_base, const TValue& dst_off,
             const TValue& len, SourceLoc loc) override;
  void PioOut(uint16_t device, uint64_t offset, const uint8_t* src_base, const TValue& src_off,
              const TValue& len, SourceLoc loc) override;
  bool Branch(const TValue& lhs, Cmp cmp, const TValue& rhs, SourceLoc loc) override;
  uint64_t NowUs() override;

 private:
  std::string NewBind(const char* prefix);
  TemplateEvent& Emit(TemplateEvent e);
  // Resolves a raw data pointer to a registered buffer param name; empty if
  // the pointer is not inside a registered program buffer.
  std::string BufferOf(const uint8_t* ptr, size_t len, uint64_t* offset_out) const;

  DriverIo* base_;
  RawRecording raw_;
  bool failed_ = false;
  int din_count_ = 0;
  int dma_count_ = 0;
  int rand_count_ = 0;
  int ts_count_ = 0;

  struct BufferReg {
    std::string name;
    uint8_t* base;
    size_t len;
  };
  std::vector<BufferReg> buffers_;
};

}  // namespace dlt

#endif  // SRC_CORE_RECORD_SESSION_H_
