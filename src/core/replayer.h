// The in-TEE replayer (paper §5): selects an interaction template by
// constraint matching through an indexed TemplateStore, instantiates it, and
// executes its events with a transactional, single-threaded executor. Device
// state divergence triggers soft reset + bounded re-execution; persistent
// divergence aborts with a rewound event report.
//
// A replayer either owns a private store (standalone use: one trustlet, its
// own packages) or attaches to a shared store scoped to one driverlet — the
// ReplayService wires one such replayer per mapped device class over a single
// multi-package store. Loading a package *adds* it to the store; it never
// overwrites previously loaded driverlets.
#ifndef SRC_CORE_REPLAYER_H_
#define SRC_CORE_REPLAYER_H_

#include <string>
#include <vector>

#include "src/core/integrity.h"
#include "src/core/interaction_template.h"
#include "src/core/package.h"
#include "src/core/replay_args.h"
#include "src/core/replay_context.h"
#include "src/core/template_store.h"

namespace dlt {

// Which execution engine Invoke uses. kCompiled (the default) runs the
// template's CompiledProgram via the store's caches, falling back to the
// interpreter per template when compilation is unsupported; kInterpreter
// forces the event-by-event Executor (the differential-testing oracle).
enum class ReplayEngine : uint8_t { kCompiled, kInterpreter };

class Replayer {
 public:
  // Standalone replayer owning a private TemplateStore. |signing_key| is the
  // developer key packages must verify against.
  Replayer(ReplayContext* ctx, std::string signing_key);

  // Service-wired replayer over a shared |store| (not owned, must outlive
  // this), restricted to |driverlet|: selection only considers templates that
  // driverlet's packages registered, and LoadPackage refuses other packages.
  Replayer(ReplayContext* ctx, std::string signing_key, TemplateStore* store,
           std::string driverlet);

  // Verifies the signature, decompresses and parses the package in-TEE, then
  // adds it to the store. Reloading a driverlet replaces only that driverlet.
  Status LoadPackage(const uint8_t* data, size_t len);
  Status LoadPackage(const DriverletPackage& pkg);  // pre-parsed (tests)

  // Invokes the driverlet entry: selects the template whose initial constraints
  // are satisfied by |args|, then executes it. kNoTemplate when the input is
  // uncovered. kAborted after max_attempts divergences.
  Result<ReplayStats> Invoke(std::string_view entry, const ReplayArgs& args);

  // Templates visible to this replayer (the scoped driverlet's, or every
  // loaded package's for a standalone replayer), in load order.
  std::vector<const InteractionTemplate*> templates() const;
  const std::string& driverlet_name() const { return driverlet_name_; }
  TemplateStore& store() { return *store_; }
  const TemplateStore& store() const { return *store_; }
  const DivergenceReport& last_report() const { return report_; }
  // Integrity measurement of the last Invoke's final attempt (valid after the
  // engines actually ran — a selection miss leaves it invalid). Failed invokes
  // return a bare Status, so the chain of a diverged/aborted run is only
  // reachable here; the service's quarantine policy reads it.
  const MeasurementRecord& last_measurement() const { return measurement_; }

  int max_attempts() const { return max_attempts_; }
  void set_max_attempts(int n) { max_attempts_ = n; }

  // Virtual-time backoff before each divergence retry, doubling per attempt
  // (retry n waits backoff << (n-2) microseconds). 0 — the default — retries
  // immediately after the soft reset, the paper's behaviour; the ReplayService
  // raises it so a flapping device is not hammered at full rate.
  uint64_t retry_backoff_us() const { return retry_backoff_us_; }
  void set_retry_backoff_us(uint64_t us) { retry_backoff_us_ = us; }

  // Ablation knob: skip the soft reset before first execution of a template
  // (divergence recovery still resets). The paper's design always resets
  // between templates (§5); disabling shows why — residue state diverges.
  void set_reset_between_templates(bool v) { reset_between_templates_ = v; }

  // Cumulative statistics.
  uint64_t total_events_executed() const { return total_events_; }
  uint64_t total_resets() const { return total_resets_; }

  ReplayEngine engine() const { return engine_; }
  void set_engine(ReplayEngine e) { engine_ = e; }

  // Bench/ablation knob: charge the compiled engine's deterministic cost model
  // to the virtual clock instead of the interpreter-parity charge. Off by
  // default — parity charging keeps both engines' virtual timelines (and the
  // seeded fault-opportunity streams derived from them) byte-identical.
  void set_compiled_model_clock(bool v) { compiled_model_clock_ = v; }

 private:
  ReplayContext* ctx_;
  std::string signing_key_;
  TemplateStore owned_store_;
  TemplateStore* store_;   // &owned_store_ unless attached to a shared store
  std::string scope_;      // restrict selection to this driverlet; empty = any
  std::string driverlet_name_;
  DivergenceReport report_;
  MeasurementRecord measurement_;
  int max_attempts_ = 3;
  uint64_t retry_backoff_us_ = 0;
  bool reset_between_templates_ = true;
  ReplayEngine engine_ = ReplayEngine::kCompiled;
  bool compiled_model_clock_ = false;
  uint64_t total_events_ = 0;
  uint64_t total_resets_ = 0;
};

}  // namespace dlt

#endif  // SRC_CORE_REPLAYER_H_
