// The in-TEE replayer (paper §5): verifies and loads a driverlet package,
// selects an interaction template by constraint matching, instantiates it, and
// executes its events with a transactional, single-threaded executor. Device
// state divergence triggers soft reset + bounded re-execution; persistent
// divergence aborts with a rewound event report.
#ifndef SRC_CORE_REPLAYER_H_
#define SRC_CORE_REPLAYER_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/interaction_template.h"
#include "src/core/package.h"
#include "src/core/replay_context.h"

namespace dlt {

struct BufferView {
  uint8_t* data = nullptr;
  size_t len = 0;
};

struct ReplayArgs {
  std::map<std::string, uint64_t> scalars;
  std::map<std::string, BufferView> buffers;
};

struct ReplayStats {
  std::string template_name;
  int attempts = 0;
  size_t events_executed = 0;
  int resets = 0;
};

// Diagnostic produced when the executor gives up: the divergent event plus the
// rewound prefix, each with its recording site (paper §5, §7.2 fault injection).
struct DivergenceReport {
  bool valid = false;
  std::string template_name;
  size_t event_index = 0;
  std::string event_desc;
  std::string file;
  int line = 0;
  uint64_t observed = 0;
  std::string expected_constraint;
  std::vector<std::string> rewound;  // "<kind> <iface> @file:line" oldest-first
};

class Replayer {
 public:
  // |signing_key| is the developer key packages must verify against.
  Replayer(ReplayContext* ctx, std::string signing_key);

  // Verifies the signature, decompresses and parses the package in-TEE.
  Status LoadPackage(const uint8_t* data, size_t len);
  Status LoadPackage(const DriverletPackage& pkg);  // pre-parsed (tests)

  // Invokes the driverlet entry: selects the template whose initial constraints
  // are satisfied by |args|, then executes it. kNoTemplate when the input is
  // uncovered. kAborted after max_attempts divergences.
  Result<ReplayStats> Invoke(std::string_view entry, const ReplayArgs& args);

  const std::vector<InteractionTemplate>& templates() const { return templates_; }
  const std::string& driverlet_name() const { return driverlet_name_; }
  const DivergenceReport& last_report() const { return report_; }

  int max_attempts() const { return max_attempts_; }
  void set_max_attempts(int n) { max_attempts_ = n; }

  // Ablation knob: skip the soft reset before first execution of a template
  // (divergence recovery still resets). The paper's design always resets
  // between templates (§5); disabling shows why — residue state diverges.
  void set_reset_between_templates(bool v) { reset_between_templates_ = v; }

  // Cumulative statistics.
  uint64_t total_events_executed() const { return total_events_; }
  uint64_t total_resets() const { return total_resets_; }

 private:
  Result<const InteractionTemplate*> SelectTemplate(std::string_view entry,
                                                    const ReplayArgs& args) const;

  ReplayContext* ctx_;
  std::string signing_key_;
  std::string driverlet_name_;
  std::vector<InteractionTemplate> templates_;
  DivergenceReport report_;
  int max_attempts_ = 3;
  bool reset_between_templates_ = true;
  uint64_t total_events_ = 0;
  uint64_t total_resets_ = 0;
};

}  // namespace dlt

#endif  // SRC_CORE_REPLAYER_H_
