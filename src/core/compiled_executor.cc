#include "src/core/compiled_executor.h"

#include <cstring>

#include "src/core/executor.h"
#include "src/core/integrity.h"
#include "src/obs/edge.h"
#include "src/obs/telemetry.h"

namespace dlt {

CompiledExecutor::CompiledExecutor(ReplayContext* ctx, const CompiledProgram* prog,
                                   const ReplayArgs* args)
    : ctx_(ctx), prog_(prog), args_(args) {}

void CompiledExecutor::FoldSrc(const SrcEvent& se) {
  if (chain_ != nullptr) {
    chain_->FoldEvent(*se.ev, se.index);
  }
}

Result<uint64_t> CompiledExecutor::EvalValue(const Operand& o) const {
  Result<uint64_t> r = prog_->EvalOperand(o, slots_.data(), bound_.data());
  if (!r.ok()) {
    return Status::kCorrupt;  // template references a symbol that never bound
  }
  return r;
}

Status CompiledExecutor::CheckAddr(PhysAddr addr, size_t access_len) const {
  bool inside = false;
  for (const Alloc& a : allocs_) {
    if (addr >= a.base && addr + access_len <= a.base + a.size) {
      inside = true;
      break;
    }
  }
  if (!inside || !ctx_->AddressAllowed(addr, access_len)) {
    return Status::kPermissionDenied;
  }
  return Status::kOk;
}

Result<PhysAddr> CompiledExecutor::EvalAddrChecked(const Operand& o, size_t access_len) const {
  DLT_ASSIGN_OR_RETURN(uint64_t addr, EvalValue(o));
  DLT_RETURN_IF_ERROR(CheckAddr(addr, access_len));
  return static_cast<PhysAddr>(addr);
}

Status CompiledExecutor::CheckAtoms(uint32_t begin, uint32_t end, const SrcEvent& se,
                                    uint64_t observed, DivergenceReport* report) {
  if (begin == end) {
    return Status::kOk;
  }
  Telemetry& t = Telemetry::Get();
  if (t.enabled()) {
    t.metrics().counter("replay.constraint_evals").Inc();
    t.Instant(TraceKind::kConstraintEval, ctx_->TimestampUs(),
              se.ev->bind.empty() ? EventKindName(se.ev->kind) : se.ev->bind, observed,
              se.index, se.ev->device);
  }
  Result<bool> ok = prog_->EvalAtoms(begin, end, slots_.data(), bound_.data());
  if (!ok.ok()) {
    return Status::kCorrupt;
  }
  if (!*ok) {
    FillDivergenceReport(ctx_, *prog_->source, *se.ev, se.index, observed, report);
    return Status::kDiverged;
  }
  return Status::kOk;
}

Status CompiledExecutor::BindAndCheck(const CompiledOp& op, uint64_t observed,
                                      DivergenceReport* report) {
  if (op.bind_slot != kNoSlot) {
    slots_[op.bind_slot] = observed;
    bound_[op.bind_slot] = 1;
  }
  return CheckAtoms(op.atom_begin, op.atom_end, prog_->src[op.src_event], observed, report);
}

Status CompiledExecutor::CheckSpanRaw(const uint8_t* data, size_t buflen, const CompiledOp& op,
                                      uint64_t* off, uint64_t* len) const {
  if (data == nullptr) {
    return Status::kInvalidArg;
  }
  DLT_ASSIGN_OR_RETURN(*off, EvalValue(op.buf_off));
  DLT_ASSIGN_OR_RETURN(*len, EvalValue(op.value));
  if (*off + *len < *off || *off + *len > buflen) {
    return Status::kInvalidArg;
  }
  return Status::kOk;
}

Status CompiledExecutor::ResolveWritableBuf(const CompiledOp& op, uint8_t** data, uint64_t* off,
                                            uint64_t* len) {
  const BufSlot& b = bufs_[op.buffer];
  if (!b.have_w) {
    return b.have_ro ? Status::kPermissionDenied : Status::kInvalidArg;
  }
  DLT_RETURN_IF_ERROR(CheckSpanRaw(b.w, b.wlen, op, off, len));
  *data = b.w;
  return Status::kOk;
}

Status CompiledExecutor::ResolveReadableBuf(const CompiledOp& op, const uint8_t** data,
                                            uint64_t* off, uint64_t* len) {
  const BufSlot& b = bufs_[op.buffer];
  if (b.have_w) {
    DLT_RETURN_IF_ERROR(CheckSpanRaw(b.w, b.wlen, op, off, len));
    *data = b.w;
    return Status::kOk;
  }
  if (!b.have_ro) {
    return Status::kInvalidArg;
  }
  DLT_RETURN_IF_ERROR(CheckSpanRaw(b.r, b.rlen, op, off, len));
  *data = b.r;
  return Status::kOk;
}

Status CompiledExecutor::ExecPoll(const CompiledOp& op, DivergenceReport* report) {
  uint64_t waited = 0;
  while (true) {
    uint32_t v = 0;
    if (op.code == COp::kPollReg) {
      DLT_ASSIGN_OR_RETURN(v, ctx_->RegRead32(op.device, op.reg_off));
    } else {
      DLT_ASSIGN_OR_RETURN(PhysAddr addr, EvalAddrChecked(op.addr, 4));
      DLT_ASSIGN_OR_RETURN(v, ctx_->MemRead32(addr));
    }
    if (CompareValues(op.poll_cmp, v & op.mask, op.want)) {
      if (op.bind_slot != kNoSlot) {
        slots_[op.bind_slot] = v;
        bound_[op.bind_slot] = 1;
      }
      return Status::kOk;
    }
    if (waited >= op.timeout_us) {
      const SrcEvent& se = prog_->src[op.src_event];
      FillDivergenceReport(ctx_, *prog_->source, *se.ev, se.index, v, report);
      return Status::kDiverged;
    }
    EdgeCoverage::Get().Hit(Edge::kCompiledPollIter);
    // Poll bodies are outside the measurement (iteration counts are device
    // timing, not template structure) — suppress folds for the body range.
    IntegrityChain* saved_chain = chain_;
    chain_ = nullptr;
    Status body = ExecRange(op.body_begin, op.body_end, report);
    chain_ = saved_chain;
    DLT_RETURN_IF_ERROR(body);
    ctx_->DelayUs(op.interval_us);
    waited += op.interval_us;
  }
}

Status CompiledExecutor::Dispatch(const CompiledOp& op, DivergenceReport* report) {
  switch (op.code) {
    case COp::kRegRead: {
      DLT_ASSIGN_OR_RETURN(uint32_t v, ctx_->RegRead32(op.device, op.reg_off));
      return BindAndCheck(op, v, report);
    }
    case COp::kShmRead: {
      DLT_ASSIGN_OR_RETURN(PhysAddr addr, EvalAddrChecked(op.addr, 4));
      DLT_ASSIGN_OR_RETURN(uint32_t v, ctx_->MemRead32(addr));
      return BindAndCheck(op, v, report);
    }
    case COp::kDmaAlloc: {
      DLT_ASSIGN_OR_RETURN(uint64_t size, EvalValue(op.value));
      Result<PhysAddr> addr = ctx_->DmaAlloc(size);
      if (!addr.ok()) {
        const SrcEvent& se = prog_->src[op.src_event];
        FillDivergenceReport(ctx_, *prog_->source, *se.ev, se.index, 0, report);
        return Status::kDiverged;  // allocation failure diverges from recording
      }
      allocs_.push_back(Alloc{*addr, size});
      return BindAndCheck(op, *addr, report);
    }
    case COp::kRandom: {
      DLT_ASSIGN_OR_RETURN(uint32_t v, ctx_->RandomU32());
      return BindAndCheck(op, v, report);
    }
    case COp::kTimestamp:
      return BindAndCheck(op, ctx_->TimestampUs(), report);
    case COp::kWaitIrq: {
      Status s = ctx_->WaitForIrq(op.irq_line, op.timeout_us);
      if (!Ok(s)) {
        const SrcEvent& se = prog_->src[op.src_event];
        FillDivergenceReport(ctx_, *prog_->source, *se.ev, se.index, 0, report);
        return Status::kDiverged;
      }
      return Status::kOk;
    }
    case COp::kCopyFromDma: {
      uint8_t* data = nullptr;
      uint64_t off = 0;
      uint64_t len = 0;
      DLT_RETURN_IF_ERROR(ResolveWritableBuf(op, &data, &off, &len));
      DLT_ASSIGN_OR_RETURN(PhysAddr src, EvalAddrChecked(op.addr, len));
      return ctx_->MemCopyOut(data + off, src, len);
    }
    case COp::kPioIn: {
      uint8_t* data = nullptr;
      uint64_t off = 0;
      uint64_t len = 0;
      DLT_RETURN_IF_ERROR(ResolveWritableBuf(op, &data, &off, &len));
      if (len == 0) {
        return Status::kOk;
      }
      size_t words = static_cast<size_t>((len + 3) / 4);
      scratch_.assign(words, 0);
      if (words > 1) {
        ++bulk_ops_;
      }
      DLT_RETURN_IF_ERROR(ctx_->RegReadBlock32(op.device, op.reg_off, scratch_.data(), words));
      std::memcpy(data + off, scratch_.data(), static_cast<size_t>(len));
      return Status::kOk;
    }
    case COp::kRegWrite: {
      DLT_ASSIGN_OR_RETURN(uint64_t v, EvalValue(op.value));
      return ctx_->RegWrite32(op.device, op.reg_off, static_cast<uint32_t>(v));
    }
    case COp::kShmWrite: {
      DLT_ASSIGN_OR_RETURN(PhysAddr addr, EvalAddrChecked(op.addr, 4));
      DLT_ASSIGN_OR_RETURN(uint64_t v, EvalValue(op.value));
      return ctx_->MemWrite32(addr, static_cast<uint32_t>(v));
    }
    case COp::kDelay: {
      DLT_ASSIGN_OR_RETURN(uint64_t us, EvalValue(op.value));
      ctx_->DelayUs(us);
      return Status::kOk;
    }
    case COp::kCopyToDma: {
      const uint8_t* data = nullptr;
      uint64_t off = 0;
      uint64_t len = 0;
      DLT_RETURN_IF_ERROR(ResolveReadableBuf(op, &data, &off, &len));
      DLT_ASSIGN_OR_RETURN(PhysAddr dst, EvalAddrChecked(op.addr, len));
      return ctx_->MemCopyIn(dst, data + off, len);
    }
    case COp::kPioOut: {
      const uint8_t* data = nullptr;
      uint64_t off = 0;
      uint64_t len = 0;
      DLT_RETURN_IF_ERROR(ResolveReadableBuf(op, &data, &off, &len));
      if (len == 0) {
        return Status::kOk;
      }
      size_t words = static_cast<size_t>((len + 3) / 4);
      scratch_.assign(words, 0);  // zero-pads the tail word
      std::memcpy(scratch_.data(), data + off, static_cast<size_t>(len));
      if (words > 1) {
        ++bulk_ops_;
      }
      return ctx_->RegWriteBlock32(op.device, op.reg_off, scratch_.data(), words);
    }
    case COp::kPollReg:
    case COp::kPollShm:
      return ExecPoll(op, report);
    case COp::kShmReadBulk:
    case COp::kShmWriteBulk:
      break;  // handled by ExecBulk, never dispatched here
  }
  return Status::kUnsupported;
}

Status CompiledExecutor::ExecBulkExact(const CompiledOp& op, DivergenceReport* report,
                                       bool telemetry) {
  Telemetry& t = Telemetry::Get();
  const bool is_read = op.code == COp::kShmReadBulk;
  const size_t words = op.word_end - op.word_begin;
  uint64_t base_val = 0;
  bool base_ok = false;
  for (size_t w = 0; w < words; ++w) {
    const CompiledWord& cw = prog_->words[op.word_begin + w];
    const SrcEvent& se = prog_->src[cw.src_event];
    uint64_t t0 = telemetry ? ctx_->TimestampUs() : 0;
    ChargeEvent();
    ++events_executed_;
    Status s = Status::kOk;
    if (!base_ok) {
      // The interpreter re-evaluates the address expression per word; the
      // compiler guarantees no event in the run rebinds a base input, so one
      // evaluation at the first word is exact.
      Result<uint64_t> b = EvalValue(op.addr);
      if (!b.ok()) {
        s = b.status();
      } else {
        base_val = *b;
        base_ok = true;
      }
    }
    PhysAddr addr = 0;
    if (Ok(s)) {
      addr = static_cast<PhysAddr>(base_val + op.base_off + 4 * w);
      s = CheckAddr(addr, 4);
    }
    if (Ok(s)) {
      if (is_read) {
        Result<uint32_t> v = ctx_->MemRead32(addr);
        if (!v.ok()) {
          s = v.status();
        } else {
          if (cw.bind_slot != kNoSlot) {
            slots_[cw.bind_slot] = *v;
            bound_[cw.bind_slot] = 1;
          }
          s = CheckAtoms(cw.atom_begin, cw.atom_end, se, *v, report);
        }
      } else {
        Result<uint64_t> v = EvalValue(cw.value);
        if (!v.ok()) {
          s = v.status();
        } else {
          s = ctx_->MemWrite32(addr, static_cast<uint32_t>(*v));
        }
      }
    }
    if (telemetry) {
      uint64_t dur = ctx_->TimestampUs() - t0;
      t.metrics().counter("replay.events").Inc();
      ReplayKindHistogram(se.ev->kind).Record(dur);
      t.Span(TraceKind::kReplayEvent, t0, dur, EventKindName(se.ev->kind), se.index,
             static_cast<uint64_t>(s), se.ev->device);
    }
    if (!Ok(s)) {
      return s;
    }
    FoldSrc(se);
  }
  return Status::kOk;
}

Status CompiledExecutor::ExecBulk(const CompiledOp& op, DivergenceReport* report,
                                  bool telemetry) {
  const size_t words = op.word_end - op.word_begin;
  AccountOp(words);
  ++bulk_ops_;
  if (telemetry) {
    // Per-word traces and histograms must match the interpreter event for
    // event, so traced runs take the exact path.
    EdgeCoverage::Get().Hit(Edge::kCompiledBulkExact);
    return ExecBulkExact(op, report, true);
  }
  // Side-effect-free pre-pass: the fast path is only safe when the base
  // evaluates and the whole range is inside one allocation and the pool.
  Result<uint64_t> base = EvalValue(op.addr);
  if (!base.ok() || !Ok(CheckAddr(static_cast<PhysAddr>(*base + op.base_off), 4 * words))) {
    EdgeCoverage::Get().Hit(Edge::kCompiledBulkExact);
    return ExecBulkExact(op, report, false);
  }
  EdgeCoverage::Get().Hit(Edge::kCompiledBulkFast);
  PhysAddr a0 = static_cast<PhysAddr>(*base + op.base_off);
  if (op.code == COp::kShmWriteBulk) {
    scratch_.assign(words, 0);
    for (size_t w = 0; w < words; ++w) {
      const CompiledWord& cw = prog_->words[op.word_begin + w];
      ChargeEvent();
      ++events_executed_;
      Result<uint64_t> v = EvalValue(cw.value);
      if (!v.ok()) {
        // The interpreter wrote the preceding words before failing here;
        // flush the staged prefix so device-visible state matches.
        if (w > 0) {
          ctx_->MemCopyIn(a0, reinterpret_cast<const uint8_t*>(scratch_.data()), 4 * w);
        }
        return v.status();
      }
      scratch_[w] = static_cast<uint32_t>(*v);
      // Measurement parity with the interpreter's per-word write: the word is
      // folded once staged — the pre-pass already admitted the whole range, so
      // the deferred block transfer cannot reject it.
      FoldSrc(prog_->src[cw.src_event]);
    }
    Status s =
        ctx_->MemCopyIn(a0, reinterpret_cast<const uint8_t*>(scratch_.data()), 4 * words);
    if (!Ok(s)) {
      // Pre-pass allowed the range but the block transfer refused (e.g. a
      // window seam); replay per word for exact per-access status.
      for (size_t w = 0; w < words; ++w) {
        DLT_RETURN_IF_ERROR(ctx_->MemWrite32(static_cast<PhysAddr>(a0 + 4 * w), scratch_[w]));
      }
    }
    return Status::kOk;
  }
  scratch_.assign(words, 0);
  Status s = ctx_->MemCopyOut(reinterpret_cast<uint8_t*>(scratch_.data()), a0, 4 * words);
  if (!Ok(s)) {
    return ExecBulkExact(op, report, false);  // nothing charged or bound yet
  }
  for (size_t w = 0; w < words; ++w) {
    const CompiledWord& cw = prog_->words[op.word_begin + w];
    ChargeEvent();
    ++events_executed_;
    uint32_t v = scratch_[w];
    if (cw.bind_slot != kNoSlot) {
      slots_[cw.bind_slot] = v;
      bound_[cw.bind_slot] = 1;
    }
    DLT_RETURN_IF_ERROR(
        CheckAtoms(cw.atom_begin, cw.atom_end, prog_->src[cw.src_event], v, report));
    FoldSrc(prog_->src[cw.src_event]);
  }
  return Status::kOk;
}

Status CompiledExecutor::ExecOp(const CompiledOp& op, DivergenceReport* report) {
  Telemetry& t = Telemetry::Get();
  // Fuzzer coverage signal: one map cell per opcode (docs/fuzzing.md).
  EdgeCoverage::Get().HitIndex(kEdgeOpBase + static_cast<size_t>(op.code));
  if (op.code == COp::kShmReadBulk || op.code == COp::kShmWriteBulk) {
    return ExecBulk(op, report, t.enabled());
  }
  if (!t.enabled()) {
    ChargeEvent();
    AccountOp(1);
    ++events_executed_;
    Status s = Dispatch(op, report);
    if (Ok(s)) {
      FoldSrc(prog_->src[op.src_event]);
    }
    return s;
  }
  const SrcEvent& se = prog_->src[op.src_event];
  uint64_t t0 = ctx_->TimestampUs();
  ChargeEvent();
  AccountOp(1);
  ++events_executed_;
  Status s = Dispatch(op, report);
  uint64_t dur = ctx_->TimestampUs() - t0;
  t.metrics().counter("replay.events").Inc();
  ReplayKindHistogram(se.ev->kind).Record(dur);
  t.Span(TraceKind::kReplayEvent, t0, dur, EventKindName(se.ev->kind), se.index,
         static_cast<uint64_t>(s), se.ev->device);
  if (Ok(s)) {
    FoldSrc(se);
  }
  return s;
}

Status CompiledExecutor::ExecRange(uint32_t begin, uint32_t end, DivergenceReport* report) {
  for (uint32_t i = begin; i < end; ++i) {
    DLT_RETURN_IF_ERROR(ExecOp(prog_->ops[i], report));
  }
  return Status::kOk;
}

Status CompiledExecutor::Run(DivergenceReport* report) {
  slots_.assign(prog_->slot_count, 0);
  bound_.assign(prog_->slot_count, 0);
  prog_->LoadScalars(args_->scalars, slots_.data(), bound_.data());
  bufs_.assign(prog_->buffer_names.size(), BufSlot{});
  for (size_t i = 0; i < prog_->buffer_names.size(); ++i) {
    auto it = args_->buffers.find(prog_->buffer_names[i]);
    if (it != args_->buffers.end()) {
      bufs_[i].w = it->second.data;
      bufs_[i].wlen = it->second.len;
      bufs_[i].have_w = true;
    }
    auto ro = args_->ro_buffers.find(prog_->buffer_names[i]);
    if (ro != args_->ro_buffers.end()) {
      bufs_[i].r = ro->second.data;
      bufs_[i].rlen = ro->second.len;
      bufs_[i].have_ro = true;
    }
  }
  allocs_.clear();
  return ExecRange(0, prog_->main_end, report);
}

}  // namespace dlt
