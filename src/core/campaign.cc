#include "src/core/campaign.h"

namespace dlt {

bool RecordCampaign::AddTemplate(InteractionTemplate t) {
  for (const auto& existing : templates_) {
    if (InteractionTemplate::Mergeable(existing, t)) {
      return false;
    }
  }
  templates_.push_back(std::move(t));
  return true;
}

DriverletPackage RecordCampaign::MakePackage() const {
  DriverletPackage pkg;
  pkg.driverlet = driverlet_name_;
  pkg.templates = templates_;
  return pkg;
}

std::vector<uint8_t> RecordCampaign::Seal(PackageFormat format, std::string_view key,
                                          PackageSizes* sizes) const {
  return SealPackage(MakePackage(), format, key, sizes);
}

}  // namespace dlt
