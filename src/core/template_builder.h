// Distills a raw recording into an interaction template:
//  1. attaches path conditions (constraint discovery, paper §4.2 Challenge I):
//     conditions over params become the template's initial constraints;
//     conditions over device/env inputs attach to the binding event and mark
//     it state-changing;
//  2. lifts open-coded polling loops into poll meta events (Challenge III);
//  3. symbolic output values arrived via taint tracking in the session
//     (Challenge II) and are kept as-is.
#ifndef SRC_CORE_TEMPLATE_BUILDER_H_
#define SRC_CORE_TEMPLATE_BUILDER_H_

#include "src/core/record_session.h"

namespace dlt {

Result<InteractionTemplate> BuildTemplate(RawRecording&& raw);

// Exposed for targeted testing: collapses repeated read(+delay)+condition
// sequences into poll meta events. Returns the number of loops lifted.
int LiftPollingLoops(std::vector<TemplateEvent>* events);

}  // namespace dlt

#endif  // SRC_CORE_TEMPLATE_BUILDER_H_
