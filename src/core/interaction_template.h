// InteractionTemplate: the record outcome (paper §4.1). Exposes a callable
// interface with the same signature as the recorded kernel entry; prescribes
// the linear sequence of input/output/meta events a faithful replay executes.
#ifndef SRC_CORE_INTERACTION_TEMPLATE_H_
#define SRC_CORE_INTERACTION_TEMPLATE_H_

#include <string>
#include <vector>

#include "src/core/event.h"

namespace dlt {

struct ParamSpec {
  std::string name;
  bool is_buffer = false;  // scalar (constraint-checked) vs data buffer
};

struct EventBreakdown {
  int input = 0;
  int output = 0;
  int meta = 0;
  int total() const { return input + output + meta; }
};

struct InteractionTemplate {
  // Template name within its driverlet, e.g. "RD_8", "WR_256", "OneShot".
  std::string name;
  // Replay entry this template implements, e.g. "replay_mmc".
  std::string entry;
  std::vector<ParamSpec> params;

  // Initial constraints over scalar params; template selection evaluates these
  // against trustlet inputs (paper §5 "Selecting an interaction template").
  Constraint initial;

  // Device to soft-reset between executions and upon divergence.
  uint16_t primary_device = 0;

  std::vector<TemplateEvent> events;

  EventBreakdown CountEvents() const;

  // Names of scalar params in declaration order.
  std::vector<std::string> ScalarParams() const;

  // True when both templates externalize the same device state transition path
  // (the recorder merges such duplicates, §4.3).
  static bool Mergeable(const InteractionTemplate& a, const InteractionTemplate& b);
};

}  // namespace dlt

#endif  // SRC_CORE_INTERACTION_TEMPLATE_H_
