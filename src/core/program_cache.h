// Disk-persisted compile cache (ISSUE 9 tentpole, part c).
//
// Lowering a template (CompileTemplate) is pure — the program depends only on
// the template's content — so compiled programs can outlive the process:
// TemplateStore keys this cache by TemplateContentHash (SHA-256 over the
// canonical binary encoding, serialize_binary.h) and consults it before
// recompiling, which turns fleet cold starts over large corpora into disk
// reads. One file per program under the configured directory,
// <hex-hash>.dcp, written via temp-file + rename so concurrent shard views
// racing on the same template produce a whole file or none.
//
// A cache file is advisory: Load() re-validates magic, version and the hash
// echo, and the decoder bounds-checks every index against the program's own
// tables, so a stale/corrupt/truncated file is treated as a miss and the
// template is simply recompiled. SrcEvent back references are encoded as
// event-tree paths and re-resolved against the (hydrated) template at load,
// keeping divergence reports and trace parity intact.
#ifndef SRC_CORE_PROGRAM_CACHE_H_
#define SRC_CORE_PROGRAM_CACHE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/compiled_program.h"
#include "src/crypto/sha256.h"

namespace dlt {

// Flat byte encoding of a program (relative to its source template).
// kInvalidArg when the program's src entries do not point into
// |p.source->events| (never the case for CompileTemplate output).
Result<std::vector<uint8_t>> SerializeProgram(const CompiledProgram& p);

// Decodes and fully validates; |tpl| must be the hydrated source template the
// program was compiled from. kCorrupt on any malformed input.
Result<std::shared_ptr<const CompiledProgram>> DeserializeProgram(const uint8_t* data, size_t len,
                                                                  const InteractionTemplate* tpl);

class DiskProgramCache {
 public:
  explicit DiskProgramCache(std::string dir) : dir_(std::move(dir)) {}

  // nullptr on miss (absent, unreadable, corrupt, or hash mismatch).
  std::shared_ptr<const CompiledProgram> Load(const Sha256::Digest& content_hash,
                                              const InteractionTemplate* tpl) const;

  // Best-effort persist; false when the directory is unwritable.
  bool Store(const Sha256::Digest& content_hash, const CompiledProgram& p) const;

  const std::string& dir() const { return dir_; }

 private:
  std::string path_for(const Sha256::Digest& h) const;

  std::string dir_;
};

}  // namespace dlt

#endif  // SRC_CORE_PROGRAM_CACHE_H_
