// Record campaign bookkeeping (paper §4, "How to use"): accumulate templates
// from record runs, merge duplicates that externalize the same state-transition
// path (§4.3), report cumulative input coverage, and seal the signed package.
#ifndef SRC_CORE_CAMPAIGN_H_
#define SRC_CORE_CAMPAIGN_H_

#include <string>
#include <vector>

#include "src/core/coverage.h"
#include "src/core/package.h"

namespace dlt {

class RecordCampaign {
 public:
  explicit RecordCampaign(std::string driverlet_name)
      : driverlet_name_(std::move(driverlet_name)) {}

  // Adds a template produced by a record run. Returns false when an existing
  // template already covers the same state-transition path (merged away).
  bool AddTemplate(InteractionTemplate t);

  const std::vector<InteractionTemplate>& templates() const { return templates_; }

  Coverage ComputeCoverage() const { return ::dlt::ComputeCoverage(templates_); }
  std::string CoverageReport() const { return ::dlt::CoverageReport(ComputeCoverage()); }

  // Concludes the campaign: signs the (immutable) templates into a package.
  DriverletPackage MakePackage() const;
  std::vector<uint8_t> Seal(PackageFormat format, std::string_view key,
                            PackageSizes* sizes = nullptr) const;

 private:
  std::string driverlet_name_;
  std::vector<InteractionTemplate> templates_;
};

}  // namespace dlt

#endif  // SRC_CORE_CAMPAIGN_H_
