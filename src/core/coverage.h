// Input-space coverage accounting for record campaigns (paper §4 "How to use"):
// after each record run the developer sees the cumulative covered region, e.g.
// "0 < blkcnt <= 0x100, rw = {0x0 | 0x1}", and records more runs until satisfied.
#ifndef SRC_CORE_COVERAGE_H_
#define SRC_CORE_COVERAGE_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/interaction_template.h"

namespace dlt {

struct CoverageRange {
  uint64_t lo = 0;
  uint64_t hi = 0;  // inclusive
};

struct ParamCoverage {
  std::vector<CoverageRange> ranges;  // sorted, disjoint, merged
  bool unconstrained = false;         // some template accepts any value
};

using Coverage = std::map<std::string, ParamCoverage>;

// Computes coverage from the templates' initial constraints. Only atoms of the
// form  param <cmp> const  contribute; other atoms conservatively shrink nothing.
Coverage ComputeCoverage(const std::vector<InteractionTemplate>& templates);

// True iff |value| lies inside the covered region of |param| (an uncovered
// param is treated as fully covered — there is no constraint to violate).
bool Covers(const Coverage& cov, const std::string& param, uint64_t value);

std::string CoverageReport(const Coverage& cov);

}  // namespace dlt

#endif  // SRC_CORE_COVERAGE_H_
