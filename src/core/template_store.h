// TemplateStore: the indexed template population behind the replay pipeline.
// Holds interaction templates from *multiple* loaded driverlet packages keyed
// by (driverlet, entry); loading a second package never evicts the first (the
// old Replayer::LoadPackage overwrite semantics are gone). Selection resolves
// an entry through the index and probes only that entry's candidates — cost is
// independent of how many other packages/entries are loaded — and, at scale,
// only the *constraint-indexed subset* of the entry's own candidates: each
// slot with enough candidates carries an EntryConstraintIndex (eq buckets /
// interval list / mask buckets / residual, constraint_index.h) built at
// registration, so per-invoke work stays O(log n) in the slot size with
// selection semantics identical to the linear scan. SelectLinear keeps the
// full scan as the differential oracle, and it also serves every call that
// asks for rejected-candidate telemetry (pruned candidates never evaluate, so
// the subset cannot reproduce that report).
//
// Packages load two ways (docs/template_store.md):
//  - AddPackage: eager — templates deep-copied into the population.
//  - AddPackageFile / AddMappedPackage: zero-copy — a sealed v2 package is
//    mmap'ed, signature-verified, and only its *directory* is parsed; the
//    population holds header-only templates whose event bodies hydrate on
//    first selection (EnsureHydrated, double-checked per-template latch).
//    Registration cost is O(directory), not O(corpus).
//
// Concurrency model (the multi-shard replay fleet, docs/replay_fleet.md):
// the post-registration state — packages, the (driverlet, entry) index, the
// precompiled candidate param lists, the constraint indexes — is an immutable
// Population published RCU-style: AddPackage builds a fresh Population and
// swaps one atomic pointer; readers load the pointer once per call and never
// take a lock. Retired populations are kept alive for the store's lifetime
// (registration is rare), so template pointers handed out by Select never
// dangle even across a concurrent package reload. Lazy event bodies are the
// one mutation after publish; they are guarded by a per-template mutex +
// acquire/release latch, and a rebuild re-parses lazy directories into fresh
// unhydrated states instead of copying possibly-mid-hydration templates.
//
// A store created with the default constructor owns its population. Shards of
// a replay fleet call NewShardView() instead: every view shares the same
// population (and candidates_scanned aggregate) but keeps its *own* selection
// and compile caches — the mutable hot-path state — so concurrent shards never
// contend on a cache lock. A view that observes a population swap lazily
// flushes its caches on the next SelectCompiled.
#ifndef SRC_CORE_TEMPLATE_STORE_H_
#define SRC_CORE_TEMPLATE_STORE_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/core/compiled_program.h"
#include "src/core/constraint_index.h"
#include "src/core/interaction_template.h"
#include "src/core/package.h"

namespace dlt {

class TemplateStore {
 public:
  // Hydration bookkeeping for one lazily-loaded template: which mapped package
  // byte range its events come from and whether they have been parsed yet.
  struct LazyState {
    std::shared_ptr<const MappedPackage> pkg;
    uint32_t tpl_index = 0;             // into pkg->view()
    InteractionTemplate* tpl = nullptr;  // population storage this state fills
    std::atomic<bool> hydrated{false};
    std::mutex mu;  // serializes the one-time body parse
  };

  // One selectable template plus everything precompiled about it at load time.
  struct Candidate {
    const InteractionTemplate* tpl = nullptr;
    // Scalar params the initial constraints bind, in declaration order. A
    // candidate whose params are not all present in the invoke args is skipped
    // (it cannot match), never an argument error — other same-entry templates
    // with a different param set remain eligible.
    std::vector<std::string> scalar_params;
    // Non-null for lazily-loaded templates: hydrate before handing out tpl.
    LazyState* lazy = nullptr;
  };

  TemplateStore();

  // A facade over the same shared population with fresh per-shard caches.
  // Packages registered through any view (or the origin) become visible to
  // all of them; cache counters and cache contents stay per-view. The origin
  // store must outlive nothing in particular — views keep the shared state
  // alive on their own.
  std::unique_ptr<TemplateStore> NewShardView() const;

  // Verifies, decompresses and parses a sealed package, then adds it.
  Status AddPackage(const uint8_t* data, size_t len, std::string_view signing_key);
  // Adds (or, for an already-loaded driverlet, atomically replaces) one
  // driverlet's templates. Replacement is per-driverlet only: other loaded
  // packages are untouched. Publishes a new population snapshot; concurrent
  // readers keep using the one they pinned at call entry.
  Status AddPackage(const DriverletPackage& pkg);

  // Zero-copy registration: mmaps + verifies a sealed v2 package and registers
  // its directory; event bodies hydrate on first selection. Same replacement
  // semantics as AddPackage (an eager re-registration of the driverlet drops
  // the mapping, and vice versa).
  Status AddPackageFile(const std::string& path, std::string_view signing_key);
  Status AddMappedPackage(std::shared_ptr<const MappedPackage> pkg);

  // Arms the disk-persisted compile cache (program_cache.h): ProgramFor
  // consults |dir| before compiling and persists fresh programs there. Set it
  // before serving traffic; the directory must exist. Shared by every view.
  void set_compile_cache_dir(std::string dir);

  bool HasDriverlet(std::string_view driverlet) const;
  size_t package_count() const;
  size_t template_count() const;
  std::vector<std::string> driverlets() const;

  // All templates in load order, optionally restricted to one driverlet.
  // Lazily-loaded templates appear with their events still empty until first
  // selection touches them.
  std::vector<const InteractionTemplate*> templates() const;
  std::vector<const InteractionTemplate*> templates(std::string_view driverlet) const;

  // Device ids referenced by a driverlet's templates (primary reset devices
  // plus every register-touching event) — the service's admission check. For
  // mapped packages this comes from the seal-time directory, no hydration.
  std::vector<uint16_t> DevicesOf(std::string_view driverlet) const;
  // Same, computed from a not-yet-loaded package (admission before load).
  static std::vector<uint16_t> PackageDevices(const DriverletPackage& pkg);

  // Selects the template registered under (driverlet, entry) whose initial
  // constraints accept |scalars|. An empty |driverlet| considers every package
  // that registered the entry. kNoTemplate when nothing covers the input.
  // When |rejected| is non-null, candidates whose constraints evaluated false
  // are appended (telemetry) — such calls take the linear path so the report
  // covers every candidate; param-set mismatches are not reported there.
  Result<const InteractionTemplate*> Select(
      std::string_view driverlet, std::string_view entry, const Bindings& scalars,
      std::vector<const InteractionTemplate*>* rejected = nullptr) const;

  // The full linear scan, bypassing every constraint index: the differential
  // oracle for the indexed path (tests, bench digest parity) and the
  // implementation behind rejected-candidate reporting. Selection semantics
  // are the reference ones; candidates_scanned counts every candidate.
  Result<const InteractionTemplate*> SelectLinear(
      std::string_view driverlet, std::string_view entry, const Bindings& scalars,
      std::vector<const InteractionTemplate*>* rejected = nullptr) const;

  // Cumulative number of candidates examined by Select — the mixed-traffic
  // bench divides this by invokes to show selection cost stays flat as the
  // template population grows. Aggregated across every view of the population.
  uint64_t candidates_scanned() const {
    return shared_->candidates_scanned.load(std::memory_order_relaxed);
  }
  // Selections served through a constraint-index probe (vs a linear walk).
  uint64_t index_probes() const {
    return shared_->index_probes.load(std::memory_order_relaxed);
  }
  // Lazily-registered templates whose bodies have been parsed so far,
  // cumulative across population rebuilds (a rebuild re-registers lazy
  // driverlets unhydrated). Aggregated across views.
  uint64_t hydrated_templates() const {
    return shared_->hydrated_templates.load(std::memory_order_relaxed);
  }
  // Header-only templates in the current population (0 when everything loaded
  // eagerly).
  size_t lazy_template_count() const;
  // Entry slots carrying a discriminating constraint index.
  size_t indexed_slot_count() const;

  // Compiled selection result: the selected template plus its compiled program.
  // A null |program| means the template didn't compile (kUnsupported shapes);
  // callers fall back to the interpreter for that template.
  struct CompiledSelection {
    const InteractionTemplate* tpl = nullptr;
    std::shared_ptr<const CompiledProgram> program;
  };

  // Select + compile with two caches in front (docs/replay_compiler.md):
  //  - a per-(driverlet, entry, scalar-name signature) selection cache holding
  //    the param-filtered candidate list with programs attached, so repeat
  //    invokes skip the index walk, the param-subset filter and all compile
  //    lookups. Initial constraints are still evaluated per invoke — selection
  //    depends on scalar *values*, which are deliberately not part of the key.
  //  - a per-template compile cache (programs are immutable per load), which
  //    also remembers failed compiles as interpreter-fallback markers, and is
  //    optionally backed by the on-disk program cache (set_compile_cache_dir).
  // Constraint-indexed slots take a faster route when no rejected report is
  // requested: probe the index, evaluate the handful of survivors, hydrate and
  // compile only the winner — the signature cache is skipped because probing
  // is already cheaper than its lookup would be at scale, and materializing a
  // 100k-candidate compiled list per signature is exactly the cold-start cost
  // this store exists to avoid.
  // Semantics match Select exactly, including rejected reporting, ambiguity
  // warnings and candidates_scanned accounting. Both caches belong to this
  // view only and are guarded by a per-view mutex (uncontended when each
  // fleet shard drives its own view).
  Result<CompiledSelection> SelectCompiled(
      std::string_view driverlet, std::string_view entry, const Bindings& scalars,
      std::vector<const InteractionTemplate*>* rejected = nullptr) const;

  // Cache observability (also exported as replay.select_cache.* /
  // replay.compile_cache.* telemetry counters when tracing is armed).
  // Per-view: a fleet sums these over its shards.
  uint64_t select_cache_hits() const { return select_cache_hits_.load(std::memory_order_relaxed); }
  uint64_t select_cache_misses() const {
    return select_cache_misses_.load(std::memory_order_relaxed);
  }
  uint64_t select_cache_evictions() const {
    return select_cache_evictions_.load(std::memory_order_relaxed);
  }
  uint64_t compile_cache_hits() const {
    return compile_cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t compile_cache_misses() const {
    return compile_cache_misses_.load(std::memory_order_relaxed);
  }
  uint64_t compile_cache_evictions() const {
    return compile_cache_evictions_.load(std::memory_order_relaxed);
  }
  // Disk program-cache traffic (0 unless set_compile_cache_dir was called).
  uint64_t disk_compile_hits() const {
    return disk_compile_hits_.load(std::memory_order_relaxed);
  }
  uint64_t disk_compile_stores() const {
    return disk_compile_stores_.load(std::memory_order_relaxed);
  }

  // True when |other| reads the same shared population (fleet shard views).
  bool SharesPopulationWith(const TemplateStore& other) const {
    return shared_ == other.shared_;
  }

 private:
  struct EntrySlot {
    std::string driverlet;
    std::string entry;
    std::vector<Candidate> candidates;
    // Discriminating-probe structure; built when the slot is large enough and
    // at least one candidate factored into a usable gate.
    EntryConstraintIndex index;
    bool indexed = false;
  };

  // The frozen post-registration state. Built once per AddPackage, published
  // via one atomic pointer swap, never mutated afterwards (lazy event bodies
  // excepted — see LazyState). Slot and template addresses are stable for the
  // population's lifetime (node-based maps and deques), and populations live
  // as long as the shared state does.
  struct Population {
    // Owning storage; deque gives stable template addresses.
    std::map<std::string, std::deque<InteractionTemplate>, std::less<>> by_driverlet;
    // Primary index, keyed (driverlet, entry).
    std::map<std::pair<std::string, std::string>, EntrySlot> index;
    // Secondary index for driverlet-agnostic lookup: entry → slots, load order.
    std::map<std::string, std::vector<const EntrySlot*>, std::less<>> by_entry;
    // Devices each driverlet's templates touch, collected at load time.
    std::map<std::string, std::set<uint16_t>, std::less<>> devices;
    std::vector<std::string> load_order;
    // Zero-copy sources by driverlet; the shared_ptr keeps each mapping alive
    // as long as any snapshot (or hydrated template pointer) references it.
    std::map<std::string, std::shared_ptr<const MappedPackage>, std::less<>> mapped;
    // Hydration latches for this snapshot's lazy templates (deque: stable
    // addresses, LazyState is neither movable nor copyable).
    std::deque<LazyState> lazy_states;
  };

  // State shared by every view of one population.
  struct Shared {
    std::mutex swap_mu;  // serializes AddPackage writers
    // RCU publish pointer; readers load it once per call, lock-free.
    std::atomic<const Population*> pop{nullptr};
    // Every population ever published, newest last. Retired snapshots are kept
    // alive so template pointers pinned by readers (or sitting in per-view
    // caches that have not resynced yet) never dangle. Registration is rare —
    // this grows by one small snapshot per AddPackage call.
    std::vector<std::unique_ptr<const Population>> epochs;
    std::atomic<uint64_t> candidates_scanned{0};
    std::atomic<uint64_t> index_probes{0};
    std::atomic<uint64_t> hydrated_templates{0};
    // Disk program-cache directory; empty = disabled. Guarded by cfg_mu (set
    // once at deploy time, read on compile misses only).
    std::mutex cfg_mu;
    std::string compile_cache_dir;
  };

  // One param-filtered candidate with its program attached (selection cache).
  struct CachedCandidate {
    const InteractionTemplate* tpl = nullptr;
    std::shared_ptr<const CompiledProgram> program;
  };
  struct SelectCacheEntry {
    std::vector<CachedCandidate> candidates;
    uint64_t tick = 0;  // LRU stamp
  };

  explicit TemplateStore(std::shared_ptr<Shared> shared);

  const Population* population() const {
    return shared_->pop.load(std::memory_order_acquire);
  }
  static const EntrySlot* FindSlot(const Population& pop, std::string_view driverlet,
                                   std::string_view entry);
  // The one selection loop: resolves slots, walks either the index probe set
  // (use_index, for slots that have one) or the full candidate list, applies
  // the param check / Eval / first-match-wins / ambiguity-warning protocol,
  // and returns the winning candidate (kNoTemplate when none).
  Result<const Candidate*> SelectCandidate(
      std::string_view driverlet, std::string_view entry, const Bindings& scalars,
      std::vector<const InteractionTemplate*>* rejected, bool use_index) const;
  // Parses a lazy template's event body on first use (no-op for eager ones).
  Status EnsureHydrated(const Candidate& c) const;
  // Registration core: exactly one of |eager| / |mapped| is set.
  Status AddPackageInternal(const DriverletPackage* eager,
                            std::shared_ptr<const MappedPackage> mapped);
  // Compile-cache lookup; remembers failures as null programs, consults the
  // disk cache when configured. cache_mu_ held; |tpl| must be hydrated.
  std::shared_ptr<const CompiledProgram> ProgramFor(const InteractionTemplate* tpl) const;
  // Drops both caches, counting evictions. cache_mu_ held.
  void FlushCachesLocked() const;

  std::shared_ptr<Shared> shared_;

  // Per-view mutable state: the selection/compile caches and the population
  // generation they were built against. Guarded by cache_mu_ — uncontended in
  // the fleet (one shard, one view, one executing thread at a time).
  static constexpr size_t kSelectCacheCapacity = 128;
  mutable std::mutex cache_mu_;
  mutable const Population* cache_pop_ = nullptr;
  mutable std::map<const InteractionTemplate*, std::shared_ptr<const CompiledProgram>>
      compile_cache_;
  mutable std::map<std::string, SelectCacheEntry, std::less<>> select_cache_;
  mutable uint64_t select_cache_tick_ = 0;
  mutable std::atomic<uint64_t> select_cache_hits_{0};
  mutable std::atomic<uint64_t> select_cache_misses_{0};
  mutable std::atomic<uint64_t> select_cache_evictions_{0};
  mutable std::atomic<uint64_t> compile_cache_hits_{0};
  mutable std::atomic<uint64_t> compile_cache_misses_{0};
  mutable std::atomic<uint64_t> compile_cache_evictions_{0};
  mutable std::atomic<uint64_t> disk_compile_hits_{0};
  mutable std::atomic<uint64_t> disk_compile_stores_{0};
};

}  // namespace dlt

#endif  // SRC_CORE_TEMPLATE_STORE_H_
