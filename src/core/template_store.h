// TemplateStore: the indexed template population behind the replay pipeline.
// Holds interaction templates from *multiple* loaded driverlet packages keyed
// by (driverlet, entry); loading a second package never evicts the first (the
// old Replayer::LoadPackage overwrite semantics are gone). Selection resolves
// an entry through the index and scans only that entry's candidates — cost is
// independent of how many other packages/entries are loaded — using per-entry
// candidate lists whose scalar-param requirements are precompiled at load time.
//
// Concurrency model (the multi-shard replay fleet, docs/replay_fleet.md):
// the post-registration state — packages, the (driverlet, entry) index, the
// precompiled candidate param lists — is an immutable Population published
// RCU-style: AddPackage builds a fresh Population and swaps one atomic
// pointer; readers load the pointer once per call and never take a lock.
// Retired populations are kept alive for the store's lifetime (registration
// is rare and populations are small), so template pointers handed out by
// Select never dangle even across a concurrent package reload.
//
// A store created with the default constructor owns its population. Shards of
// a replay fleet call NewShardView() instead: every view shares the same
// population (and candidates_scanned aggregate) but keeps its *own* selection
// and compile caches — the mutable hot-path state — so concurrent shards never
// contend on a cache lock. A view that observes a population swap lazily
// flushes its caches on the next SelectCompiled.
#ifndef SRC_CORE_TEMPLATE_STORE_H_
#define SRC_CORE_TEMPLATE_STORE_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/core/compiled_program.h"
#include "src/core/interaction_template.h"
#include "src/core/package.h"

namespace dlt {

class TemplateStore {
 public:
  // One selectable template plus everything precompiled about it at load time.
  struct Candidate {
    const InteractionTemplate* tpl = nullptr;
    // Scalar params the initial constraints bind, in declaration order. A
    // candidate whose params are not all present in the invoke args is skipped
    // (it cannot match), never an argument error — other same-entry templates
    // with a different param set remain eligible.
    std::vector<std::string> scalar_params;
  };

  TemplateStore();

  // A facade over the same shared population with fresh per-shard caches.
  // Packages registered through any view (or the origin) become visible to
  // all of them; cache counters and cache contents stay per-view. The origin
  // store must outlive nothing in particular — views keep the shared state
  // alive on their own.
  std::unique_ptr<TemplateStore> NewShardView() const;

  // Verifies, decompresses and parses a sealed package, then adds it.
  Status AddPackage(const uint8_t* data, size_t len, std::string_view signing_key);
  // Adds (or, for an already-loaded driverlet, atomically replaces) one
  // driverlet's templates. Replacement is per-driverlet only: other loaded
  // packages are untouched. Publishes a new population snapshot; concurrent
  // readers keep using the one they pinned at call entry.
  Status AddPackage(const DriverletPackage& pkg);

  bool HasDriverlet(std::string_view driverlet) const;
  size_t package_count() const;
  size_t template_count() const;
  std::vector<std::string> driverlets() const;

  // All templates in load order, optionally restricted to one driverlet.
  std::vector<const InteractionTemplate*> templates() const;
  std::vector<const InteractionTemplate*> templates(std::string_view driverlet) const;

  // Device ids referenced by a driverlet's templates (primary reset devices
  // plus every register-touching event) — the service's admission check.
  std::vector<uint16_t> DevicesOf(std::string_view driverlet) const;
  // Same, computed from a not-yet-loaded package (admission before load).
  static std::vector<uint16_t> PackageDevices(const DriverletPackage& pkg);

  // Selects the template registered under (driverlet, entry) whose initial
  // constraints accept |scalars|. An empty |driverlet| considers every package
  // that registered the entry. kNoTemplate when nothing covers the input.
  // When |rejected| is non-null, candidates whose constraints evaluated false
  // are appended (telemetry); param-set mismatches are not reported there.
  Result<const InteractionTemplate*> Select(
      std::string_view driverlet, std::string_view entry, const Bindings& scalars,
      std::vector<const InteractionTemplate*>* rejected = nullptr) const;

  // Cumulative number of candidates examined by Select — the mixed-traffic
  // bench divides this by invokes to show selection cost stays flat as the
  // template population grows. Aggregated across every view of the population.
  uint64_t candidates_scanned() const {
    return shared_->candidates_scanned.load(std::memory_order_relaxed);
  }

  // Compiled selection result: the selected template plus its compiled program.
  // A null |program| means the template didn't compile (kUnsupported shapes);
  // callers fall back to the interpreter for that template.
  struct CompiledSelection {
    const InteractionTemplate* tpl = nullptr;
    std::shared_ptr<const CompiledProgram> program;
  };

  // Select + compile with two caches in front (docs/replay_compiler.md):
  //  - a per-(driverlet, entry, scalar-name signature) selection cache holding
  //    the param-filtered candidate list with programs attached, so repeat
  //    invokes skip the index walk, the param-subset filter and all compile
  //    lookups. Initial constraints are still evaluated per invoke — selection
  //    depends on scalar *values*, which are deliberately not part of the key.
  //  - a per-template compile cache (programs are immutable per load), which
  //    also remembers failed compiles as interpreter-fallback markers.
  // Semantics match Select exactly, including rejected reporting, ambiguity
  // warnings and candidates_scanned accounting. Both caches belong to this
  // view only and are guarded by a per-view mutex (uncontended when each
  // fleet shard drives its own view).
  Result<CompiledSelection> SelectCompiled(
      std::string_view driverlet, std::string_view entry, const Bindings& scalars,
      std::vector<const InteractionTemplate*>* rejected = nullptr) const;

  // Cache observability (also exported as replay.select_cache.* /
  // replay.compile_cache.* telemetry counters when tracing is armed).
  // Per-view: a fleet sums these over its shards.
  uint64_t select_cache_hits() const { return select_cache_hits_.load(std::memory_order_relaxed); }
  uint64_t select_cache_misses() const {
    return select_cache_misses_.load(std::memory_order_relaxed);
  }
  uint64_t select_cache_evictions() const {
    return select_cache_evictions_.load(std::memory_order_relaxed);
  }
  uint64_t compile_cache_hits() const {
    return compile_cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t compile_cache_misses() const {
    return compile_cache_misses_.load(std::memory_order_relaxed);
  }
  uint64_t compile_cache_evictions() const {
    return compile_cache_evictions_.load(std::memory_order_relaxed);
  }

  // True when |other| reads the same shared population (fleet shard views).
  bool SharesPopulationWith(const TemplateStore& other) const {
    return shared_ == other.shared_;
  }

 private:
  struct EntrySlot {
    std::string driverlet;
    std::string entry;
    std::vector<Candidate> candidates;
  };

  // The frozen post-registration state. Built once per AddPackage, published
  // via one atomic pointer swap, never mutated afterwards. Slot and template
  // addresses are stable for the population's lifetime (node-based maps and
  // deques), and populations live as long as the shared state does.
  struct Population {
    // Owning storage; deque gives stable template addresses.
    std::map<std::string, std::deque<InteractionTemplate>, std::less<>> by_driverlet;
    // Primary index, keyed (driverlet, entry).
    std::map<std::pair<std::string, std::string>, EntrySlot> index;
    // Secondary index for driverlet-agnostic lookup: entry → slots, load order.
    std::map<std::string, std::vector<const EntrySlot*>, std::less<>> by_entry;
    // Devices each driverlet's templates touch, collected at load time.
    std::map<std::string, std::set<uint16_t>, std::less<>> devices;
    std::vector<std::string> load_order;
  };

  // State shared by every view of one population.
  struct Shared {
    std::mutex swap_mu;  // serializes AddPackage writers
    // RCU publish pointer; readers load it once per call, lock-free.
    std::atomic<const Population*> pop{nullptr};
    // Every population ever published, newest last. Retired snapshots are kept
    // alive so template pointers pinned by readers (or sitting in per-view
    // caches that have not resynced yet) never dangle. Registration is rare —
    // this grows by one small snapshot per AddPackage call.
    std::vector<std::unique_ptr<const Population>> epochs;
    std::atomic<uint64_t> candidates_scanned{0};
  };

  // One param-filtered candidate with its program attached (selection cache).
  struct CachedCandidate {
    const InteractionTemplate* tpl = nullptr;
    std::shared_ptr<const CompiledProgram> program;
  };
  struct SelectCacheEntry {
    std::vector<CachedCandidate> candidates;
    uint64_t tick = 0;  // LRU stamp
  };

  explicit TemplateStore(std::shared_ptr<Shared> shared);

  const Population* population() const {
    return shared_->pop.load(std::memory_order_acquire);
  }
  static const EntrySlot* FindSlot(const Population& pop, std::string_view driverlet,
                                   std::string_view entry);
  // Compile-cache lookup; remembers failures as null programs. cache_mu_ held.
  std::shared_ptr<const CompiledProgram> ProgramFor(const InteractionTemplate* tpl) const;
  // Drops both caches, counting evictions. cache_mu_ held.
  void FlushCachesLocked() const;

  std::shared_ptr<Shared> shared_;

  // Per-view mutable state: the selection/compile caches and the population
  // generation they were built against. Guarded by cache_mu_ — uncontended in
  // the fleet (one shard, one view, one executing thread at a time).
  static constexpr size_t kSelectCacheCapacity = 128;
  mutable std::mutex cache_mu_;
  mutable const Population* cache_pop_ = nullptr;
  mutable std::map<const InteractionTemplate*, std::shared_ptr<const CompiledProgram>>
      compile_cache_;
  mutable std::map<std::string, SelectCacheEntry, std::less<>> select_cache_;
  mutable uint64_t select_cache_tick_ = 0;
  mutable std::atomic<uint64_t> select_cache_hits_{0};
  mutable std::atomic<uint64_t> select_cache_misses_{0};
  mutable std::atomic<uint64_t> select_cache_evictions_{0};
  mutable std::atomic<uint64_t> compile_cache_hits_{0};
  mutable std::atomic<uint64_t> compile_cache_misses_{0};
  mutable std::atomic<uint64_t> compile_cache_evictions_{0};
};

}  // namespace dlt

#endif  // SRC_CORE_TEMPLATE_STORE_H_
