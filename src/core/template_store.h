// TemplateStore: the indexed template population behind the replay pipeline.
// Holds interaction templates from *multiple* loaded driverlet packages keyed
// by (driverlet, entry); loading a second package never evicts the first (the
// old Replayer::LoadPackage overwrite semantics are gone). Selection resolves
// an entry through the index and scans only that entry's candidates — cost is
// independent of how many other packages/entries are loaded — using per-entry
// candidate lists whose scalar-param requirements are precompiled at load time.
#ifndef SRC_CORE_TEMPLATE_STORE_H_
#define SRC_CORE_TEMPLATE_STORE_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/compiled_program.h"
#include "src/core/interaction_template.h"
#include "src/core/package.h"

namespace dlt {

class TemplateStore {
 public:
  // One selectable template plus everything precompiled about it at load time.
  struct Candidate {
    const InteractionTemplate* tpl = nullptr;
    // Scalar params the initial constraints bind, in declaration order. A
    // candidate whose params are not all present in the invoke args is skipped
    // (it cannot match), never an argument error — other same-entry templates
    // with a different param set remain eligible.
    std::vector<std::string> scalar_params;
  };

  // Verifies, decompresses and parses a sealed package, then adds it.
  Status AddPackage(const uint8_t* data, size_t len, std::string_view signing_key);
  // Adds (or, for an already-loaded driverlet, atomically replaces) one
  // driverlet's templates. Replacement is per-driverlet only: other loaded
  // packages are untouched.
  Status AddPackage(const DriverletPackage& pkg);

  bool HasDriverlet(std::string_view driverlet) const;
  size_t package_count() const { return by_driverlet_.size(); }
  size_t template_count() const;
  std::vector<std::string> driverlets() const;

  // All templates in load order, optionally restricted to one driverlet.
  std::vector<const InteractionTemplate*> templates() const;
  std::vector<const InteractionTemplate*> templates(std::string_view driverlet) const;

  // Device ids referenced by a driverlet's templates (primary reset devices
  // plus every register-touching event) — the service's admission check.
  std::vector<uint16_t> DevicesOf(std::string_view driverlet) const;
  // Same, computed from a not-yet-loaded package (admission before load).
  static std::vector<uint16_t> PackageDevices(const DriverletPackage& pkg);

  // Selects the template registered under (driverlet, entry) whose initial
  // constraints accept |scalars|. An empty |driverlet| considers every package
  // that registered the entry. kNoTemplate when nothing covers the input.
  // When |rejected| is non-null, candidates whose constraints evaluated false
  // are appended (telemetry); param-set mismatches are not reported there.
  Result<const InteractionTemplate*> Select(
      std::string_view driverlet, std::string_view entry, const Bindings& scalars,
      std::vector<const InteractionTemplate*>* rejected = nullptr) const;

  // Cumulative number of candidates examined by Select — the mixed-traffic
  // bench divides this by invokes to show selection cost stays flat as the
  // template population grows.
  uint64_t candidates_scanned() const {
    return candidates_scanned_.load(std::memory_order_relaxed);
  }

  // Compiled selection result: the selected template plus its compiled program.
  // A null |program| means the template didn't compile (kUnsupported shapes);
  // callers fall back to the interpreter for that template.
  struct CompiledSelection {
    const InteractionTemplate* tpl = nullptr;
    std::shared_ptr<const CompiledProgram> program;
  };

  // Select + compile with two caches in front (docs/replay_compiler.md):
  //  - a per-(driverlet, entry, scalar-name signature) selection cache holding
  //    the param-filtered candidate list with programs attached, so repeat
  //    invokes skip the index walk, the param-subset filter and all compile
  //    lookups. Initial constraints are still evaluated per invoke — selection
  //    depends on scalar *values*, which are deliberately not part of the key.
  //  - a per-template compile cache (programs are immutable per load), which
  //    also remembers failed compiles as interpreter-fallback markers.
  // Semantics match Select exactly, including rejected reporting, ambiguity
  // warnings and candidates_scanned accounting.
  Result<CompiledSelection> SelectCompiled(
      std::string_view driverlet, std::string_view entry, const Bindings& scalars,
      std::vector<const InteractionTemplate*>* rejected = nullptr) const;

  // Cache observability (also exported as replay.select_cache.* /
  // replay.compile_cache.* telemetry counters when tracing is armed).
  uint64_t select_cache_hits() const { return select_cache_hits_.load(std::memory_order_relaxed); }
  uint64_t select_cache_misses() const {
    return select_cache_misses_.load(std::memory_order_relaxed);
  }
  uint64_t select_cache_evictions() const {
    return select_cache_evictions_.load(std::memory_order_relaxed);
  }
  uint64_t compile_cache_hits() const {
    return compile_cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t compile_cache_misses() const {
    return compile_cache_misses_.load(std::memory_order_relaxed);
  }
  uint64_t compile_cache_evictions() const {
    return compile_cache_evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct EntrySlot {
    std::string driverlet;
    std::string entry;
    std::vector<Candidate> candidates;
  };

  // One param-filtered candidate with its program attached (selection cache).
  struct CachedCandidate {
    const InteractionTemplate* tpl = nullptr;
    std::shared_ptr<const CompiledProgram> program;
  };
  struct SelectCacheEntry {
    std::vector<CachedCandidate> candidates;
    uint64_t tick = 0;  // LRU stamp
  };

  const EntrySlot* FindSlot(std::string_view driverlet, std::string_view entry) const;
  // Compile-cache lookup; remembers failures as null programs.
  std::shared_ptr<const CompiledProgram> ProgramFor(const InteractionTemplate* tpl) const;
  void InvalidateCaches(const std::deque<InteractionTemplate>& replaced) const;

  // Owning storage; deque gives stable template addresses across AddPackage.
  std::map<std::string, std::deque<InteractionTemplate>, std::less<>> by_driverlet_;
  // Primary index, keyed (driverlet, entry).
  std::map<std::pair<std::string, std::string>, EntrySlot> index_;
  // Secondary index for driverlet-agnostic lookup: entry → slots, load order.
  std::map<std::string, std::vector<const EntrySlot*>, std::less<>> by_entry_;
  // Devices each driverlet's templates touch, collected at load time.
  std::map<std::string, std::set<uint16_t>, std::less<>> devices_;
  std::vector<std::string> load_order_;

  mutable std::atomic<uint64_t> candidates_scanned_{0};

  // Compiled-path caches (lazily populated by SelectCompiled, invalidated by
  // AddPackage). Capacity-bounded LRU on the selection cache.
  static constexpr size_t kSelectCacheCapacity = 128;
  mutable std::map<const InteractionTemplate*, std::shared_ptr<const CompiledProgram>>
      compile_cache_;
  mutable std::map<std::string, SelectCacheEntry, std::less<>> select_cache_;
  mutable uint64_t select_cache_tick_ = 0;
  mutable std::atomic<uint64_t> select_cache_hits_{0};
  mutable std::atomic<uint64_t> select_cache_misses_{0};
  mutable std::atomic<uint64_t> select_cache_evictions_{0};
  mutable std::atomic<uint64_t> compile_cache_hits_{0};
  mutable std::atomic<uint64_t> compile_cache_misses_{0};
  mutable std::atomic<uint64_t> compile_cache_evictions_{0};
};

}  // namespace dlt

#endif  // SRC_CORE_TEMPLATE_STORE_H_
