// Trustlet-facing replay argument types, shared by the replayer, the executor
// and the TEE service layer. Buffers come in two const-correct flavours:
// writable views (outputs and in/out data) and read-only views (pure inputs,
// e.g. the payload of a block write). The executor enforces the split — a
// template event that stores into a read-only buffer is refused, it does not
// cast the qualifier away.
#ifndef SRC_CORE_REPLAY_ARGS_H_
#define SRC_CORE_REPLAY_ARGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dlt {

// A writable span of trustlet memory the template may fill (kCopyFromDma,
// kPioIn) or read back out of (kCopyToDma, kPioOut).
struct BufferView {
  uint8_t* data = nullptr;
  size_t len = 0;
};

// A read-only span: usable wherever the template only consumes bytes. A
// writable view widens into one implicitly, mirroring `T*` → `const T*`.
struct ConstBufferView {
  const uint8_t* data = nullptr;
  size_t len = 0;

  ConstBufferView() = default;
  ConstBufferView(const uint8_t* d, size_t l) : data(d), len(l) {}
  // NOLINTNEXTLINE(google-explicit-constructor): deliberate widening.
  ConstBufferView(const BufferView& b) : data(b.data), len(b.len) {}
};

struct ReplayArgs {
  std::map<std::string, uint64_t> scalars;
  std::map<std::string, BufferView> buffers;          // writable / in-out
  std::map<std::string, ConstBufferView> ro_buffers;  // read-only inputs
};

struct ReplayStats {
  std::string template_name;
  int attempts = 0;
  size_t events_executed = 0;
  int resets = 0;
  // Engine accounting: whether the compiled engine ran the successful attempt,
  // its deterministic model cost, and the coalesced block transfers it issued
  // (see docs/replay_compiler.md). All zero on interpreter runs.
  bool compiled = false;
  uint64_t cpu_model_ns = 0;
  uint64_t bulk_ops = 0;
  // Runtime integrity measurement of the successful attempt (integrity.h):
  // hex SHA-256 chain over the executed top-level events and how many were
  // folded. A successful invoke's chain always equals the template's golden
  // measurement; the failed-invoke chain lives in Replayer::last_measurement.
  std::string measurement;
  size_t events_measured = 0;
};

// Diagnostic produced when the executor gives up: the divergent event plus the
// rewound prefix, each with its recording site (paper §5, §7.2 fault injection).
struct DivergenceReport {
  bool valid = false;
  std::string template_name;
  size_t event_index = 0;
  std::string event_desc;
  std::string file;
  int line = 0;
  uint64_t observed = 0;
  std::string expected_constraint;
  std::vector<std::string> rewound;  // "<kind> <iface> @file:line" oldest-first
};

}  // namespace dlt

#endif  // SRC_CORE_REPLAY_ARGS_H_
