#include "src/core/record_session.h"

#include "src/core/template_builder.h"
#include "src/soc/log.h"

namespace dlt {

RecordSession::RecordSession(DriverIo* base, std::string entry, std::string template_name,
                             uint16_t primary_device)
    : base_(base) {
  raw_.entry = std::move(entry);
  raw_.name = std::move(template_name);
  raw_.primary_device = primary_device;
}

std::string RecordSession::NewBind(const char* prefix) {
  int* counter = nullptr;
  if (prefix[0] == 'd' && prefix[1] == 'i') {
    counter = &din_count_;
  } else if (prefix[0] == 'd') {
    counter = &dma_count_;
  } else if (prefix[0] == 'r') {
    counter = &rand_count_;
  } else {
    counter = &ts_count_;
  }
  return std::string(prefix) + std::to_string((*counter)++);
}

TemplateEvent& RecordSession::Emit(TemplateEvent e) {
  raw_.events.push_back(std::move(e));
  return raw_.events.back();
}

std::string RecordSession::BufferOf(const uint8_t* ptr, size_t len, uint64_t* offset_out) const {
  for (const auto& b : buffers_) {
    if (ptr >= b.base && ptr + len <= b.base + b.len) {
      *offset_out = static_cast<uint64_t>(ptr - b.base);
      return b.name;
    }
  }
  return "";
}

TValue RecordSession::ScalarParam(const std::string& name, uint64_t concrete) {
  raw_.params.push_back(ParamSpec{name, /*is_buffer=*/false});
  raw_.concrete_inputs[name] = concrete;
  return TValue::Input(name, concrete);
}

void RecordSession::BufferParam(const std::string& name, uint8_t* base_ptr, size_t len) {
  raw_.params.push_back(ParamSpec{name, /*is_buffer=*/true});
  buffers_.push_back(BufferReg{name, base_ptr, len});
}

Result<InteractionTemplate> RecordSession::Finish() {
  if (failed_) {
    return Status::kBadState;
  }
  return BuildTemplate(std::move(raw_));
}

TValue RecordSession::RegRead32(uint16_t device, uint64_t offset, SourceLoc loc) {
  TValue v = base_->RegRead32(device, offset, loc);
  std::string bind = NewBind("din");
  TemplateEvent e;
  e.kind = EventKind::kRegRead;
  e.device = device;
  e.reg_off = offset;
  e.bind = bind;
  e.file = loc.file;
  e.line = loc.line;
  Emit(std::move(e));
  raw_.concrete_inputs[bind] = v.value();
  return TValue::Input(bind, v.value());
}

void RecordSession::RegWrite32(uint16_t device, uint64_t offset, const TValue& value,
                               SourceLoc loc) {
  base_->RegWrite32(device, offset, value, loc);
  TemplateEvent e;
  e.kind = EventKind::kRegWrite;
  e.device = device;
  e.reg_off = offset;
  e.value = value.expr();
  e.file = loc.file;
  e.line = loc.line;
  Emit(std::move(e));
}

TValue RecordSession::ShmRead32(const TValue& addr, SourceLoc loc) {
  TValue v = base_->ShmRead32(addr, loc);
  std::string bind = NewBind("din");
  TemplateEvent e;
  e.kind = EventKind::kShmRead;
  e.addr = addr.expr();
  e.bind = bind;
  e.file = loc.file;
  e.line = loc.line;
  Emit(std::move(e));
  raw_.concrete_inputs[bind] = v.value();
  return TValue::Input(bind, v.value());
}

void RecordSession::ShmWrite32(const TValue& addr, const TValue& value, SourceLoc loc) {
  base_->ShmWrite32(addr, value, loc);
  TemplateEvent e;
  e.kind = EventKind::kShmWrite;
  e.addr = addr.expr();
  e.value = value.expr();
  e.file = loc.file;
  e.line = loc.line;
  Emit(std::move(e));
}

Status RecordSession::WaitForIrq(int line, uint64_t timeout_us, SourceLoc loc) {
  Status s = base_->WaitForIrq(line, timeout_us, loc);
  TemplateEvent e;
  e.kind = EventKind::kWaitIrq;
  e.irq_line = line;
  e.timeout_us = timeout_us;
  e.state_changing = true;  // a missing interrupt is always a divergence
  e.file = loc.file;
  e.line = loc.line;
  Emit(std::move(e));
  if (!Ok(s)) {
    DLT_LOG(kWarn) << "record run: wait_for_irq(" << line << ") " << StatusName(s);
    failed_ = true;
  }
  return s;
}

Status RecordSession::PollReg32(uint16_t device, uint64_t offset, uint32_t mask, uint32_t want,
                                bool negate, uint64_t timeout_us, uint64_t interval_us,
                                SourceLoc loc) {
  // Execute the poll against the base io one read at a time so the recorder can
  // observe the iteration count; the lifted meta event replaces the whole loop
  // (paper §4.2, Challenge III).
  uint64_t waited = 0;
  uint32_t iters = 0;
  Status result = Status::kTimeout;
  while (true) {
    TValue v = base_->RegRead32(device, offset, loc);
    ++iters;
    if (CompareValues(negate ? Cmp::kNe : Cmp::kEq, v.value32() & mask, want)) {
      result = Status::kOk;
      break;
    }
    if (waited >= timeout_us) {
      break;
    }
    base_->DelayUs(interval_us, loc);
    waited += interval_us;
  }
  TemplateEvent e;
  e.kind = EventKind::kPollReg;
  e.device = device;
  e.reg_off = offset;
  e.mask = mask;
  e.want = want;
  e.poll_cmp = negate ? Cmp::kNe : Cmp::kEq;
  e.timeout_us = timeout_us;
  e.interval_us = interval_us;
  e.recorded_iters = iters;
  e.state_changing = true;  // poll timeout at replay is a divergence
  e.file = loc.file;
  e.line = loc.line;
  Emit(std::move(e));
  if (!Ok(result)) {
    failed_ = true;
  }
  return result;
}

void RecordSession::DelayUs(uint64_t us, SourceLoc loc) {
  base_->DelayUs(us, loc);
  TemplateEvent e;
  e.kind = EventKind::kDelay;
  e.value = Expr::Const(us);
  e.file = loc.file;
  e.line = loc.line;
  Emit(std::move(e));
}

TValue RecordSession::DmaAlloc(const TValue& size, SourceLoc loc) {
  TValue addr = base_->DmaAlloc(size, loc);
  std::string bind = NewBind("dma");
  TemplateEvent e;
  e.kind = EventKind::kDmaAlloc;
  e.bind = bind;
  e.value = size.expr();
  // The recorder mandates a fixed number of DMA allocations per template so the
  // descriptor topology can be reconstructed faithfully (paper Fig. 4).
  e.state_changing = true;
  e.file = loc.file;
  e.line = loc.line;
  Emit(std::move(e));
  raw_.concrete_inputs[bind] = addr.value();
  return TValue::Input(bind, addr.value());
}

void RecordSession::DmaReleaseAll(SourceLoc loc) {
  // Allocation lifetime is the whole template; the replayer releases at the end
  // of each execution, so no event is emitted.
  base_->DmaReleaseAll(loc);
}

TValue RecordSession::GetRandomU32(SourceLoc loc) {
  TValue v = base_->GetRandomU32(loc);
  std::string bind = NewBind("rand");
  TemplateEvent e;
  e.kind = EventKind::kGetRandBytes;
  e.bind = bind;
  e.value = Expr::Const(4);
  e.file = loc.file;
  e.line = loc.line;
  Emit(std::move(e));
  raw_.concrete_inputs[bind] = v.value();
  return TValue::Input(bind, v.value());
}

TValue RecordSession::GetTimestampUs(SourceLoc loc) {
  TValue v = base_->GetTimestampUs(loc);
  std::string bind = NewBind("ts");
  TemplateEvent e;
  e.kind = EventKind::kGetTimestamp;
  e.bind = bind;
  e.value = Expr::Const(8);
  e.file = loc.file;
  e.line = loc.line;
  Emit(std::move(e));
  raw_.concrete_inputs[bind] = v.value();
  return TValue::Input(bind, v.value());
}

void RecordSession::CopyToDma(const TValue& dst, const uint8_t* src_base, const TValue& src_off,
                              const TValue& len, SourceLoc loc) {
  base_->CopyToDma(dst, src_base, src_off, len, loc);
  uint64_t reg_off = 0;
  std::string buffer = BufferOf(src_base + src_off.value(), len.value(), &reg_off);
  TemplateEvent e;
  e.kind = EventKind::kCopyToDma;
  e.addr = dst.expr();
  e.buffer = buffer;
  e.buf_offset = src_off.expr();
  e.value = len.expr();
  e.file = loc.file;
  e.line = loc.line;
  if (buffer.empty()) {
    DLT_LOG(kWarn) << "record: CopyToDma from unregistered buffer";
    failed_ = true;
  }
  Emit(std::move(e));
}

void RecordSession::CopyFromDma(uint8_t* dst_base, const TValue& dst_off, const TValue& src,
                                const TValue& len, SourceLoc loc) {
  base_->CopyFromDma(dst_base, dst_off, src, len, loc);
  uint64_t reg_off = 0;
  std::string buffer = BufferOf(dst_base + dst_off.value(), len.value(), &reg_off);
  TemplateEvent e;
  e.kind = EventKind::kCopyFromDma;
  e.addr = src.expr();
  e.buffer = buffer;
  e.buf_offset = dst_off.expr();
  e.value = len.expr();
  e.file = loc.file;
  e.line = loc.line;
  if (buffer.empty()) {
    DLT_LOG(kWarn) << "record: CopyFromDma into unregistered buffer";
    failed_ = true;
  }
  Emit(std::move(e));
}

void RecordSession::PioIn(uint16_t device, uint64_t offset, uint8_t* dst_base,
                          const TValue& dst_off, const TValue& len, SourceLoc loc) {
  base_->PioIn(device, offset, dst_base, dst_off, len, loc);
  uint64_t reg_off = 0;
  std::string buffer = BufferOf(dst_base + dst_off.value(), len.value(), &reg_off);
  TemplateEvent e;
  e.kind = EventKind::kPioIn;
  e.device = device;
  e.reg_off = offset;
  e.buffer = buffer;
  e.buf_offset = dst_off.expr();
  e.value = len.expr();
  e.file = loc.file;
  e.line = loc.line;
  if (buffer.empty()) {
    failed_ = true;
  }
  Emit(std::move(e));
}

void RecordSession::PioOut(uint16_t device, uint64_t offset, const uint8_t* src_base,
                           const TValue& src_off, const TValue& len, SourceLoc loc) {
  base_->PioOut(device, offset, src_base, src_off, len, loc);
  uint64_t reg_off = 0;
  std::string buffer = BufferOf(src_base + src_off.value(), len.value(), &reg_off);
  TemplateEvent e;
  e.kind = EventKind::kPioOut;
  e.device = device;
  e.reg_off = offset;
  e.buffer = buffer;
  e.buf_offset = src_off.expr();
  e.value = len.expr();
  e.file = loc.file;
  e.line = loc.line;
  if (buffer.empty()) {
    failed_ = true;
  }
  Emit(std::move(e));
}

bool RecordSession::Branch(const TValue& lhs, Cmp cmp, const TValue& rhs, SourceLoc loc) {
  bool truth = base_->Branch(lhs, cmp, rhs, loc);
  if (lhs.tainted() || rhs.tainted()) {
    ConstraintAtom atom{lhs.expr(), cmp, rhs.expr()};
    if (!truth) {
      atom = atom.Negated();
    }
    raw_.path_conds.push_back(PathCond{std::move(atom), raw_.events.size(), loc});
  }
  return truth;
}

uint64_t RecordSession::NowUs() { return base_->NowUs(); }

}  // namespace dlt
