#include "src/core/program_cache.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <map>

namespace dlt {

namespace {

constexpr uint32_t kMagic = 0x43544c44;  // "DLTC"
constexpr uint8_t kVersion = 1;

void PutVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

void PutString(const std::string& s, std::vector<uint8_t>* out) {
  PutVarint(s.size(), out);
  out->insert(out->end(), s.begin(), s.end());
}

void PutOperand(const Operand& o, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(o.kind));
  PutVarint(o.slot, out);
  PutVarint(o.imm, out);
  PutVarint(o.begin, out);
  PutVarint(o.end, out);
}

class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  Result<uint64_t> Varint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= len_ || shift > 63) {
        return Status::kCorrupt;
      }
      uint8_t b = data_[pos_++];
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) {
        return v;
      }
      shift += 7;
    }
  }

  Result<uint8_t> Byte() {
    if (pos_ >= len_) {
      return Status::kCorrupt;
    }
    return data_[pos_++];
  }

  Result<std::string> String() {
    DLT_ASSIGN_OR_RETURN(uint64_t n, Varint());
    if (n > len_ - pos_) {
      return Status::kCorrupt;
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  Result<Operand> ReadOperand() {
    Operand o;
    DLT_ASSIGN_OR_RETURN(uint8_t kind, Byte());
    if (kind > static_cast<uint8_t>(Operand::Kind::kSteps)) {
      return Status::kCorrupt;
    }
    o.kind = static_cast<Operand::Kind>(kind);
    DLT_ASSIGN_OR_RETURN(uint64_t slot, Varint());
    o.slot = static_cast<uint16_t>(slot);
    DLT_ASSIGN_OR_RETURN(o.imm, Varint());
    DLT_ASSIGN_OR_RETURN(uint64_t begin, Varint());
    o.begin = static_cast<uint32_t>(begin);
    DLT_ASSIGN_OR_RETURN(uint64_t end, Varint());
    o.end = static_cast<uint32_t>(end);
    return o;
  }

  bool AtEnd() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

// Maps each event in the template's tree to its path of body indices.
void MapEventPaths(const std::vector<TemplateEvent>& events, std::vector<uint32_t>* prefix,
                   std::map<const TemplateEvent*, std::vector<uint32_t>>* out) {
  for (size_t i = 0; i < events.size(); ++i) {
    prefix->push_back(static_cast<uint32_t>(i));
    (*out)[&events[i]] = *prefix;
    if (!events[i].body.empty()) {
      MapEventPaths(events[i].body, prefix, out);
    }
    prefix->pop_back();
  }
}

const TemplateEvent* ResolveEventPath(const std::vector<TemplateEvent>& events,
                                      const std::vector<uint32_t>& path) {
  const std::vector<TemplateEvent>* level = &events;
  const TemplateEvent* ev = nullptr;
  for (uint32_t idx : path) {
    if (idx >= level->size()) {
      return nullptr;
    }
    ev = &(*level)[idx];
    level = &ev->body;
  }
  return ev;
}

// Cross-table index validation: a corrupt cache file must become a miss, not
// an out-of-bounds dispatch.
bool OperandValid(const Operand& o, const CompiledProgram& p) {
  switch (o.kind) {
    case Operand::Kind::kSlot:
      return o.slot < p.slot_count;
    case Operand::Kind::kSteps:
      return o.begin <= o.end && o.end <= p.steps.size();
    default:
      return true;
  }
}

bool ProgramValid(const CompiledProgram& p) {
  for (const ExprStep& s : p.steps) {
    if (s.op == ExprOp::kInput && s.slot >= p.slot_count) {
      return false;
    }
  }
  for (const CompiledAtom& a : p.atoms) {
    if (!OperandValid(a.lhs, p) || !OperandValid(a.rhs, p)) {
      return false;
    }
  }
  for (const CompiledWord& w : p.words) {
    if (w.bind_slot != kNoSlot && w.bind_slot >= p.slot_count) {
      return false;
    }
    if (w.atom_begin > w.atom_end || w.atom_end > p.atoms.size()) {
      return false;
    }
    if (!OperandValid(w.value, p) || w.src_event >= p.src.size()) {
      return false;
    }
  }
  for (const CompiledOp& op : p.ops) {
    if (op.bind_slot != kNoSlot && op.bind_slot >= p.slot_count) {
      return false;
    }
    if (op.buffer != kNoBuffer && op.buffer >= p.buffer_names.size()) {
      return false;
    }
    if (!OperandValid(op.addr, p) || !OperandValid(op.value, p) || !OperandValid(op.buf_off, p)) {
      return false;
    }
    if (op.atom_begin > op.atom_end || op.atom_end > p.atoms.size()) {
      return false;
    }
    if (op.body_begin > op.body_end || op.body_end > p.ops.size()) {
      return false;
    }
    if (op.word_begin > op.word_end || op.word_end > p.words.size()) {
      return false;
    }
    bool bulk = op.code == COp::kShmReadBulk || op.code == COp::kShmWriteBulk;
    if (!bulk && op.src_event >= p.src.size()) {
      return false;
    }
  }
  for (const auto& [name, slot] : p.scalar_loads) {
    if (slot >= p.slot_count) {
      return false;
    }
  }
  if (p.main_end > p.ops.size()) {
    return false;
  }
  if (p.initial_atom_begin > p.initial_atom_end || p.initial_atom_end > p.atoms.size()) {
    return false;
  }
  return true;
}

}  // namespace

Result<std::vector<uint8_t>> SerializeProgram(const CompiledProgram& p) {
  if (p.source == nullptr) {
    return Status::kInvalidArg;
  }
  std::map<const TemplateEvent*, std::vector<uint32_t>> paths;
  std::vector<uint32_t> prefix;
  MapEventPaths(p.source->events, &prefix, &paths);

  std::vector<uint8_t> out;
  PutVarint(p.ops.size(), &out);
  PutVarint(p.words.size(), &out);
  PutVarint(p.atoms.size(), &out);
  PutVarint(p.steps.size(), &out);
  PutVarint(p.src.size(), &out);
  PutVarint(p.scalar_loads.size(), &out);
  PutVarint(p.buffer_names.size(), &out);
  PutVarint(p.main_end, &out);
  PutVarint(p.slot_count, &out);
  PutVarint(p.initial_atom_begin, &out);
  PutVarint(p.initial_atom_end, &out);
  PutVarint(p.source_events, &out);

  for (const ExprStep& s : p.steps) {
    out.push_back(static_cast<uint8_t>(s.op));
    PutVarint(s.slot, &out);
    PutVarint(s.imm, &out);
  }
  for (const CompiledAtom& a : p.atoms) {
    PutOperand(a.lhs, &out);
    PutOperand(a.rhs, &out);
    out.push_back(static_cast<uint8_t>(a.cmp));
  }
  for (const SrcEvent& se : p.src) {
    auto it = paths.find(se.ev);
    if (it == paths.end()) {
      return Status::kInvalidArg;
    }
    PutVarint(it->second.size(), &out);
    for (uint32_t idx : it->second) {
      PutVarint(idx, &out);
    }
    PutVarint(se.index, &out);
  }
  for (const CompiledWord& w : p.words) {
    PutVarint(w.bind_slot, &out);
    PutVarint(w.atom_begin, &out);
    PutVarint(w.atom_end, &out);
    PutOperand(w.value, &out);
    PutVarint(w.src_event, &out);
  }
  for (const CompiledOp& op : p.ops) {
    out.push_back(static_cast<uint8_t>(op.code));
    PutVarint(op.device, &out);
    PutVarint(op.bind_slot, &out);
    PutVarint(op.buffer, &out);
    PutVarint(op.reg_off, &out);
    PutOperand(op.addr, &out);
    PutOperand(op.value, &out);
    PutOperand(op.buf_off, &out);
    PutVarint(op.atom_begin, &out);
    PutVarint(op.atom_end, &out);
    PutVarint(static_cast<uint64_t>(op.irq_line + 1), &out);
    PutVarint(op.mask, &out);
    PutVarint(op.want, &out);
    out.push_back(static_cast<uint8_t>(op.poll_cmp));
    PutVarint(op.timeout_us, &out);
    PutVarint(op.interval_us, &out);
    PutVarint(op.body_begin, &out);
    PutVarint(op.body_end, &out);
    PutVarint(op.word_begin, &out);
    PutVarint(op.word_end, &out);
    PutVarint(op.base_off, &out);
    PutVarint(op.src_event, &out);
  }
  for (const auto& [name, slot] : p.scalar_loads) {
    PutString(name, &out);
    PutVarint(slot, &out);
  }
  for (const std::string& name : p.buffer_names) {
    PutString(name, &out);
  }
  return out;
}

Result<std::shared_ptr<const CompiledProgram>> DeserializeProgram(const uint8_t* data, size_t len,
                                                                  const InteractionTemplate* tpl) {
  if (tpl == nullptr) {
    return Status::kInvalidArg;
  }
  Reader r(data, len);
  auto prog = std::make_shared<CompiledProgram>();
  CompiledProgram& p = *prog;
  p.source = tpl;

  DLT_ASSIGN_OR_RETURN(uint64_t nops, r.Varint());
  DLT_ASSIGN_OR_RETURN(uint64_t nwords, r.Varint());
  DLT_ASSIGN_OR_RETURN(uint64_t natoms, r.Varint());
  DLT_ASSIGN_OR_RETURN(uint64_t nsteps, r.Varint());
  DLT_ASSIGN_OR_RETURN(uint64_t nsrc, r.Varint());
  DLT_ASSIGN_OR_RETURN(uint64_t nloads, r.Varint());
  DLT_ASSIGN_OR_RETURN(uint64_t nbuffers, r.Varint());
  // A varint decodes in at least one byte, so table sizes beyond the input
  // length are corrupt by construction — reject before reserving.
  if (nops > len || nwords > len || natoms > len || nsteps > len || nsrc > len || nloads > len ||
      nbuffers > len) {
    return Status::kCorrupt;
  }
  DLT_ASSIGN_OR_RETURN(uint64_t main_end, r.Varint());
  p.main_end = static_cast<uint32_t>(main_end);
  DLT_ASSIGN_OR_RETURN(uint64_t slot_count, r.Varint());
  p.slot_count = static_cast<uint16_t>(slot_count);
  DLT_ASSIGN_OR_RETURN(uint64_t ia_begin, r.Varint());
  p.initial_atom_begin = static_cast<uint32_t>(ia_begin);
  DLT_ASSIGN_OR_RETURN(uint64_t ia_end, r.Varint());
  p.initial_atom_end = static_cast<uint32_t>(ia_end);
  DLT_ASSIGN_OR_RETURN(uint64_t sev, r.Varint());
  p.source_events = static_cast<uint32_t>(sev);

  p.steps.reserve(nsteps);
  for (uint64_t i = 0; i < nsteps; ++i) {
    ExprStep s;
    DLT_ASSIGN_OR_RETURN(uint8_t op, r.Byte());
    if (op > static_cast<uint8_t>(ExprOp::kNot)) {
      return Status::kCorrupt;
    }
    s.op = static_cast<ExprOp>(op);
    DLT_ASSIGN_OR_RETURN(uint64_t slot, r.Varint());
    s.slot = static_cast<uint16_t>(slot);
    DLT_ASSIGN_OR_RETURN(s.imm, r.Varint());
    p.steps.push_back(s);
  }
  p.atoms.reserve(natoms);
  for (uint64_t i = 0; i < natoms; ++i) {
    CompiledAtom a;
    DLT_ASSIGN_OR_RETURN(a.lhs, r.ReadOperand());
    DLT_ASSIGN_OR_RETURN(a.rhs, r.ReadOperand());
    DLT_ASSIGN_OR_RETURN(uint8_t cmp, r.Byte());
    if (cmp > static_cast<uint8_t>(Cmp::kGe)) {
      return Status::kCorrupt;
    }
    a.cmp = static_cast<Cmp>(cmp);
    p.atoms.push_back(a);
  }
  p.src.reserve(nsrc);
  for (uint64_t i = 0; i < nsrc; ++i) {
    DLT_ASSIGN_OR_RETURN(uint64_t plen, r.Varint());
    if (plen > 16) {  // event nesting is depth-limited at 8; be generous
      return Status::kCorrupt;
    }
    std::vector<uint32_t> path;
    for (uint64_t k = 0; k < plen; ++k) {
      DLT_ASSIGN_OR_RETURN(uint64_t idx, r.Varint());
      path.push_back(static_cast<uint32_t>(idx));
    }
    SrcEvent se;
    se.ev = ResolveEventPath(tpl->events, path);
    if (se.ev == nullptr) {
      return Status::kCorrupt;
    }
    DLT_ASSIGN_OR_RETURN(uint64_t index, r.Varint());
    se.index = static_cast<uint32_t>(index);
    p.src.push_back(se);
  }
  p.words.reserve(nwords);
  for (uint64_t i = 0; i < nwords; ++i) {
    CompiledWord w;
    DLT_ASSIGN_OR_RETURN(uint64_t bind, r.Varint());
    w.bind_slot = static_cast<uint16_t>(bind);
    DLT_ASSIGN_OR_RETURN(uint64_t ab, r.Varint());
    w.atom_begin = static_cast<uint32_t>(ab);
    DLT_ASSIGN_OR_RETURN(uint64_t ae, r.Varint());
    w.atom_end = static_cast<uint32_t>(ae);
    DLT_ASSIGN_OR_RETURN(w.value, r.ReadOperand());
    DLT_ASSIGN_OR_RETURN(uint64_t se, r.Varint());
    w.src_event = static_cast<uint32_t>(se);
    p.words.push_back(w);
  }
  p.ops.reserve(nops);
  for (uint64_t i = 0; i < nops; ++i) {
    CompiledOp op;
    DLT_ASSIGN_OR_RETURN(uint8_t code, r.Byte());
    if (code > static_cast<uint8_t>(COp::kPollShm)) {
      return Status::kCorrupt;
    }
    op.code = static_cast<COp>(code);
    DLT_ASSIGN_OR_RETURN(uint64_t device, r.Varint());
    op.device = static_cast<uint16_t>(device);
    DLT_ASSIGN_OR_RETURN(uint64_t bind, r.Varint());
    op.bind_slot = static_cast<uint16_t>(bind);
    DLT_ASSIGN_OR_RETURN(uint64_t buffer, r.Varint());
    op.buffer = static_cast<uint16_t>(buffer);
    DLT_ASSIGN_OR_RETURN(op.reg_off, r.Varint());
    DLT_ASSIGN_OR_RETURN(op.addr, r.ReadOperand());
    DLT_ASSIGN_OR_RETURN(op.value, r.ReadOperand());
    DLT_ASSIGN_OR_RETURN(op.buf_off, r.ReadOperand());
    DLT_ASSIGN_OR_RETURN(uint64_t ab, r.Varint());
    op.atom_begin = static_cast<uint32_t>(ab);
    DLT_ASSIGN_OR_RETURN(uint64_t ae, r.Varint());
    op.atom_end = static_cast<uint32_t>(ae);
    DLT_ASSIGN_OR_RETURN(uint64_t irq, r.Varint());
    op.irq_line = static_cast<int>(irq) - 1;
    DLT_ASSIGN_OR_RETURN(uint64_t mask, r.Varint());
    op.mask = static_cast<uint32_t>(mask);
    DLT_ASSIGN_OR_RETURN(uint64_t want, r.Varint());
    op.want = static_cast<uint32_t>(want);
    DLT_ASSIGN_OR_RETURN(uint8_t pcmp, r.Byte());
    if (pcmp > static_cast<uint8_t>(Cmp::kGe)) {
      return Status::kCorrupt;
    }
    op.poll_cmp = static_cast<Cmp>(pcmp);
    DLT_ASSIGN_OR_RETURN(op.timeout_us, r.Varint());
    DLT_ASSIGN_OR_RETURN(op.interval_us, r.Varint());
    DLT_ASSIGN_OR_RETURN(uint64_t bb, r.Varint());
    op.body_begin = static_cast<uint32_t>(bb);
    DLT_ASSIGN_OR_RETURN(uint64_t be, r.Varint());
    op.body_end = static_cast<uint32_t>(be);
    DLT_ASSIGN_OR_RETURN(uint64_t wb, r.Varint());
    op.word_begin = static_cast<uint32_t>(wb);
    DLT_ASSIGN_OR_RETURN(uint64_t we, r.Varint());
    op.word_end = static_cast<uint32_t>(we);
    DLT_ASSIGN_OR_RETURN(op.base_off, r.Varint());
    DLT_ASSIGN_OR_RETURN(uint64_t se, r.Varint());
    op.src_event = static_cast<uint32_t>(se);
    p.ops.push_back(op);
  }
  p.scalar_loads.reserve(nloads);
  for (uint64_t i = 0; i < nloads; ++i) {
    DLT_ASSIGN_OR_RETURN(std::string name, r.String());
    DLT_ASSIGN_OR_RETURN(uint64_t slot, r.Varint());
    p.scalar_loads.emplace_back(std::move(name), static_cast<uint16_t>(slot));
  }
  p.buffer_names.reserve(nbuffers);
  for (uint64_t i = 0; i < nbuffers; ++i) {
    DLT_ASSIGN_OR_RETURN(std::string name, r.String());
    p.buffer_names.push_back(std::move(name));
  }
  if (!r.AtEnd() || !ProgramValid(p)) {
    return Status::kCorrupt;
  }
  return std::shared_ptr<const CompiledProgram>(std::move(prog));
}

std::string DiskProgramCache::path_for(const Sha256::Digest& h) const {
  return dir_ + "/" + Sha256::HexDigest(h) + ".dcp";
}

std::shared_ptr<const CompiledProgram> DiskProgramCache::Load(
    const Sha256::Digest& content_hash, const InteractionTemplate* tpl) const {
  FILE* f = std::fopen(path_for(content_hash).c_str(), "rb");
  if (f == nullptr) {
    return nullptr;
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);

  constexpr size_t kHeader = 4 + 1 + Sha256::kDigestSize;
  if (bytes.size() < kHeader) {
    return nullptr;
  }
  uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), 4);
  if (magic != kMagic || bytes[4] != kVersion) {
    return nullptr;
  }
  if (std::memcmp(bytes.data() + 5, content_hash.data(), Sha256::kDigestSize) != 0) {
    return nullptr;
  }
  Result<std::shared_ptr<const CompiledProgram>> prog =
      DeserializeProgram(bytes.data() + kHeader, bytes.size() - kHeader, tpl);
  if (!prog.ok()) {
    return nullptr;
  }
  return *prog;
}

bool DiskProgramCache::Store(const Sha256::Digest& content_hash, const CompiledProgram& p) const {
  Result<std::vector<uint8_t>> body = SerializeProgram(p);
  if (!body.ok()) {
    return false;
  }
  std::vector<uint8_t> bytes;
  uint32_t magic = kMagic;
  bytes.resize(4);
  std::memcpy(bytes.data(), &magic, 4);
  bytes.push_back(kVersion);
  bytes.insert(bytes.end(), content_hash.begin(), content_hash.end());
  bytes.insert(bytes.end(), body->begin(), body->end());

  std::string final_path = path_for(content_hash);
  // Per-process temp name: concurrent processes warming the same cache each
  // write their own file and the rename is atomic either way.
  std::string tmp_path = final_path + ".tmp" + std::to_string(::getpid());
  FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (wrote != bytes.size()) {
    std::remove(tmp_path.c_str());
    return false;
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

}  // namespace dlt
