// Single-threaded, transactional event executor (paper §5, "Executing events").
// Executes one instantiated template against a ReplayContext. On the happy path
// all state-changing input constraints hold; any violation is reported as a
// divergence for the replayer to handle (soft reset + re-execution).
#ifndef SRC_CORE_EXECUTOR_H_
#define SRC_CORE_EXECUTOR_H_

#include <vector>

#include "src/core/interaction_template.h"
#include "src/core/replay_args.h"
#include "src/core/replay_context.h"

namespace dlt {

class Histogram;
class IntegrityChain;

class Executor {
 public:
  Executor(ReplayContext* ctx, const InteractionTemplate* tpl, const ReplayArgs* args);

  // Executes all events once. kDiverged / kTimeout fill the report.
  Status Run(DivergenceReport* report);

  size_t events_executed() const { return events_executed_; }

  // Optional integrity measurement: Run folds every completed top-level event
  // into |chain| (integrity.h). Poll bodies are excluded by the parity
  // contract — only Run's own loop folds.
  void set_integrity_chain(IntegrityChain* chain) { chain_ = chain; }

 private:
  Status RunEvents(const std::vector<TemplateEvent>& events, DivergenceReport* report);
  // RunOne wraps ExecuteOne with telemetry (per-event trace span + latency
  // histogram); the disabled path costs one branch before dispatch.
  Status RunOne(const TemplateEvent& e, size_t index, DivergenceReport* report);
  Status ExecuteOne(const TemplateEvent& e, size_t index, DivergenceReport* report);

  Result<uint64_t> EvalExpr(const ExprRef& e) const;
  Result<PhysAddr> EvalAddr(const ExprRef& e, size_t access_len) const;
  Status CheckConstraint(const TemplateEvent& e, size_t index, uint64_t observed,
                         DivergenceReport* report);
  Status BindAndCheck(const TemplateEvent& e, size_t index, uint64_t observed,
                      DivergenceReport* report);
  void FillDivergence(const TemplateEvent& e, size_t index, uint64_t observed,
                      DivergenceReport* report) const;
  // Buffer resolution is const-correct: events that store into the program
  // buffer (kCopyFromDma, kPioIn) need a writable view and are refused with
  // kPermissionDenied when the trustlet passed the buffer read-only; events
  // that only consume bytes (kCopyToDma, kPioOut) accept either flavour.
  Result<BufferView> ResolveWritable(const TemplateEvent& e, uint64_t* offset,
                                     uint64_t* len) const;
  Result<ConstBufferView> ResolveReadable(const TemplateEvent& e, uint64_t* offset,
                                          uint64_t* len) const;
  Status CheckBufferSpan(const ConstBufferView& buf, const TemplateEvent& e, uint64_t* offset,
                         uint64_t* len) const;

  ReplayContext* ctx_;
  const InteractionTemplate* tpl_;
  const ReplayArgs* args_;
  Bindings bindings_;
  // Allocations made during this run, for symbolic-address bounds checking.
  struct Alloc {
    PhysAddr base;
    uint64_t size;
  };
  std::vector<Alloc> allocs_;
  std::vector<uint32_t> pio_scratch_;  // staging words for PIO block transfers
  size_t events_executed_ = 0;
  IntegrityChain* chain_ = nullptr;
};

// Renders an event for reports: "reg_write mmc+0x34 @bcm_sdhost.cc:210".
std::string DescribeEvent(const TemplateEvent& e);

// Divergence-report choke point shared by the interpreter and the compiled
// executor (compiled_executor.cc): telemetry taps, report fields, and the
// rewound-event listing must stay byte-identical between engines.
void FillDivergenceReport(ReplayContext* ctx, const InteractionTemplate& tpl,
                          const TemplateEvent& e, size_t index, uint64_t observed,
                          DivergenceReport* report);

// Per-kind replay latency histogram, shared between engines so both record
// into the same "replay.us.<kind>" series.
Histogram& ReplayKindHistogram(EventKind k);

}  // namespace dlt

#endif  // SRC_CORE_EXECUTOR_H_
