// Constraint-indexed template selection (ISSUE 9, ROADMAP item 1).
//
// The paper selects "the one interaction template whose initial constraints
// match the invoke" (§5) — a linear scan in the seed store. At fleet scale
// (10k–100k templates per entry) that collapses, so at registration we factor
// each candidate's initial-constraint conjunction into per-scalar
// *discriminating gates* — necessary conditions of three machine-checkable
// shapes, mirroring the baked compare forms CompileTemplate lowers:
//
//   eq     input == C            (either operand order)
//   range  input <= / < / >= / > C   → an inclusive [lo, hi] window
//   mask   (input & M) == C      (the And either operand order)
//
// and assemble one decision structure per (driverlet, entry) slot:
//   dimension 1: exact-value hash buckets on the eq field covering the most
//                candidates;
//   dimension 2: an elementary-segment interval list on the best range field
//                among the rest;
//   dimension 3: hash buckets on (value & M) for the best (field, M) mask
//                among the rest;
//   residual:    candidates with no usable gate — always probed, exactly the
//                old Eval path.
//
// Soundness (why probing a subset preserves selection semantics byte-for-byte):
// a gate is a *necessary* condition, so a candidate pruned by its gate can
// never be chosen by the linear scan — if the gate's field is bound to a
// non-matching value its conjunction evaluates false (rejected, not selected);
// if the field is unbound, Eval errors or the missing-param check skips it.
// Every candidate the linear scan *could* select is probed, in the same slot
// order (the probe result is sorted by candidate position), so the selected
// template, first-match-wins, the ambiguity warning and kNoTemplate are
// identical. The rejected-candidates report is the one observable the subset
// cannot reproduce (pruned candidates never Eval), so TemplateStore routes
// rejected!=nullptr calls through the linear path. See docs/template_store.md.
#ifndef SRC_CORE_CONSTRAINT_INDEX_H_
#define SRC_CORE_CONSTRAINT_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sym/constraint.h"

namespace dlt {

// One discriminating compare factored out of a conjunction.
struct ConstraintGate {
  enum class Kind : uint8_t { kEq, kRange, kMask };
  Kind kind = Kind::kEq;
  std::string field;
  uint64_t eq = 0;              // kEq: field == eq
  uint64_t lo = 0;              // kRange: lo <= field <= hi (inclusive);
  uint64_t hi = 0;              //   lo > hi encodes "never satisfiable"
  uint64_t mask = 0;            // kMask: (field & mask) == want
  uint64_t want = 0;
};

// Extracts every gate from |c|'s atoms. Atoms that do not match a gate shape
// (Ne, input-vs-input, compound arithmetic, ...) contribute nothing — a
// candidate with no gates lands in the residual list.
std::vector<ConstraintGate> FactorGates(const Constraint& c);

// The per-slot decision structure. Built once at registration (Population
// build time, under the store's swap mutex), immutable afterwards — shard
// views share it read-only through Population snapshots.
class EntryConstraintIndex {
 public:
  // Slots smaller than this keep the plain linear scan: the probe set-up costs
  // more than it saves, and small slots already meet the scan bound.
  static constexpr size_t kMinIndexedCandidates = 9;

  // |initials| is the slot's candidate list in slot order (position == the
  // candidate index Probe reports).
  void Build(const std::vector<const Constraint*>& initials);

  // True when at least one candidate was captured by a discriminating
  // dimension (i.e. probing beats scanning).
  bool discriminating() const { return indexed_candidates_ > 0; }

  // Appends, in ascending candidate order, every candidate that could match
  // |scalars|. The caller runs the ordinary per-candidate selection loop
  // (param check + Eval) over the result.
  void Probe(const Bindings& scalars, std::vector<uint32_t>* out) const;

  // Introspection (tests, bench, docs).
  size_t residual_count() const { return residual_.size(); }
  size_t indexed_count() const { return indexed_candidates_; }
  size_t dropped_count() const { return dropped_; }
  const std::string& eq_field() const { return eq_field_; }
  const std::string& range_field() const { return range_field_; }
  const std::string& mask_field() const { return mask_field_; }

 private:
  std::string eq_field_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> eq_buckets_;

  std::string range_field_;
  std::vector<uint64_t> seg_starts_;             // sorted elementary-segment starts
  std::vector<std::vector<uint32_t>> seg_cands_;  // candidates covering each segment

  std::string mask_field_;
  uint64_t mask_ = 0;
  std::unordered_map<uint64_t, std::vector<uint32_t>> mask_buckets_;

  std::vector<uint32_t> residual_;
  size_t indexed_candidates_ = 0;
  size_t dropped_ = 0;  // provably unsatisfiable candidates (never selectable)
};

}  // namespace dlt

#endif  // SRC_CORE_CONSTRAINT_INDEX_H_
