#include "src/core/package.h"

#include <cstring>

#include "src/core/serialize_binary.h"
#include "src/core/serialize_text.h"
#include "src/crypto/hmac.h"
#include "src/crypto/lzss.h"

namespace dlt {

namespace {
constexpr char kMagic[8] = {'D', 'L', 'T', 'P', 'K', 'G', '0', '1'};
}  // namespace

// GCC 12 reports a spurious -Wstringop-overflow deep inside std::vector growth
// for the byte-appends below; the accesses are fully bounded.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"

std::vector<uint8_t> SealPackage(const DriverletPackage& pkg, PackageFormat format,
                                 std::string_view key, PackageSizes* sizes) {
  std::vector<uint8_t> serialized;
  if (format == PackageFormat::kText) {
    std::string text = TemplatesToText(pkg.templates);
    const uint8_t* begin = reinterpret_cast<const uint8_t*>(text.data());
    serialized.insert(serialized.end(), begin, begin + text.size());
  } else {
    serialized = TemplatesToBinary(pkg.templates);
  }
  std::vector<uint8_t> compressed = LzssCompress(serialized.data(), serialized.size());

  std::vector<uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  out.push_back(static_cast<uint8_t>(format));
  out.push_back(static_cast<uint8_t>(pkg.driverlet.size()));
  out.insert(out.end(), pkg.driverlet.begin(), pkg.driverlet.end());
  uint32_t payload_len = static_cast<uint32_t>(compressed.size());
  size_t len_at = out.size();
  out.resize(out.size() + 4);
  std::memcpy(out.data() + len_at, &payload_len, 4);
  out.insert(out.end(), compressed.begin(), compressed.end());
  Sha256::Digest mac = HmacSha256(key, out.data(), out.size());
  out.insert(out.end(), mac.begin(), mac.end());

  if (sizes != nullptr) {
    sizes->serialized = serialized.size();
    sizes->compressed = compressed.size();
    sizes->sealed = out.size();
  }
  return out;
}

#pragma GCC diagnostic pop

Result<DriverletPackage> OpenPackage(const uint8_t* data, size_t len, std::string_view key) {
  constexpr size_t kMinLen = sizeof(kMagic) + 2 + 4 + Sha256::kDigestSize;
  if (len < kMinLen || std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::kCorrupt;
  }
  size_t body_len = len - Sha256::kDigestSize;
  Sha256::Digest mac;
  std::memcpy(mac.data(), data + body_len, Sha256::kDigestSize);
  if (!HmacVerify(key, data, body_len, mac)) {
    return Status::kCorrupt;
  }
  size_t pos = sizeof(kMagic);
  uint8_t format_byte = data[pos++];
  if (format_byte > static_cast<uint8_t>(PackageFormat::kBinary)) {
    return Status::kCorrupt;
  }
  uint8_t name_len = data[pos++];
  if (pos + name_len + 4 > body_len) {
    return Status::kCorrupt;
  }
  DriverletPackage pkg;
  pkg.driverlet.assign(reinterpret_cast<const char*>(data + pos), name_len);
  pos += name_len;
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, data + pos, 4);
  pos += 4;
  if (pos + payload_len != body_len) {
    return Status::kCorrupt;
  }
  DLT_ASSIGN_OR_RETURN(std::vector<uint8_t> serialized, LzssDecompress(data + pos, payload_len));
  if (format_byte == static_cast<uint8_t>(PackageFormat::kText)) {
    std::string_view text(reinterpret_cast<const char*>(serialized.data()), serialized.size());
    DLT_ASSIGN_OR_RETURN(pkg.templates, TemplatesFromText(text));
  } else {
    DLT_ASSIGN_OR_RETURN(pkg.templates, TemplatesFromBinary(serialized.data(), serialized.size()));
  }
  return pkg;
}

}  // namespace dlt
