#include "src/core/package.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "src/core/serialize_text.h"
#include "src/crypto/hmac.h"
#include "src/crypto/lzss.h"

namespace dlt {

namespace {
constexpr char kMagic[8] = {'D', 'L', 'T', 'P', 'K', 'G', '0', '1'};
constexpr char kMagicV2[8] = {'D', 'L', 'T', 'P', 'K', 'G', '0', '2'};

// Envelope body shared by both generations: magic | name_len | name |
// payload_len(u32) | payload, followed by the HMAC trailer.
std::vector<uint8_t> SealEnvelope(const char (&magic)[8], uint8_t format_byte,
                                  std::string_view driverlet,
                                  const std::vector<uint8_t>& payload, std::string_view key) {
  std::vector<uint8_t> out;
  out.insert(out.end(), magic, magic + 8);
  out.push_back(format_byte);
  out.push_back(static_cast<uint8_t>(driverlet.size()));
  out.insert(out.end(), driverlet.begin(), driverlet.end());
  uint32_t payload_len = static_cast<uint32_t>(payload.size());
  size_t len_at = out.size();
  out.resize(out.size() + 4);
  std::memcpy(out.data() + len_at, &payload_len, 4);
  out.insert(out.end(), payload.begin(), payload.end());
  Sha256::Digest mac = HmacSha256(key, out.data(), out.size());
  out.insert(out.end(), mac.begin(), mac.end());
  return out;
}

// Verifies the HMAC and locates the payload; shared by all open paths.
struct Envelope {
  bool v2 = false;
  uint8_t format_byte = 0;
  std::string driverlet;
  const uint8_t* payload = nullptr;
  size_t payload_len = 0;
};

Result<Envelope> VerifyEnvelope(const uint8_t* data, size_t len, std::string_view key) {
  constexpr size_t kMinLen = 8 + 2 + 4 + Sha256::kDigestSize;
  if (len < kMinLen) {
    return Status::kCorrupt;
  }
  Envelope env;
  if (std::memcmp(data, kMagic, 8) == 0) {
    env.v2 = false;
  } else if (std::memcmp(data, kMagicV2, 8) == 0) {
    env.v2 = true;
  } else {
    return Status::kCorrupt;
  }
  size_t body_len = len - Sha256::kDigestSize;
  Sha256::Digest mac;
  std::memcpy(mac.data(), data + body_len, Sha256::kDigestSize);
  if (!HmacVerify(key, data, body_len, mac)) {
    return Status::kCorrupt;
  }
  size_t pos = 8;
  env.format_byte = data[pos++];
  uint8_t name_len = data[pos++];
  if (pos + name_len + 4 > body_len) {
    return Status::kCorrupt;
  }
  env.driverlet.assign(reinterpret_cast<const char*>(data + pos), name_len);
  pos += name_len;
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, data + pos, 4);
  pos += 4;
  if (pos + payload_len != body_len) {
    return Status::kCorrupt;
  }
  env.payload = data + pos;
  env.payload_len = payload_len;
  return env;
}

}  // namespace

// GCC 12 reports a spurious -Wstringop-overflow deep inside std::vector growth
// for the byte-appends below; the accesses are fully bounded.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"

std::vector<uint8_t> SealPackage(const DriverletPackage& pkg, PackageFormat format,
                                 std::string_view key, PackageSizes* sizes) {
  std::vector<uint8_t> serialized;
  if (format == PackageFormat::kText) {
    std::string text = TemplatesToText(pkg.templates);
    const uint8_t* begin = reinterpret_cast<const uint8_t*>(text.data());
    serialized.insert(serialized.end(), begin, begin + text.size());
  } else {
    serialized = TemplatesToBinary(pkg.templates);
  }
  std::vector<uint8_t> compressed = LzssCompress(serialized.data(), serialized.size());
  std::vector<uint8_t> out =
      SealEnvelope(kMagic, static_cast<uint8_t>(format), pkg.driverlet, compressed, key);

  if (sizes != nullptr) {
    sizes->serialized = serialized.size();
    sizes->compressed = compressed.size();
    sizes->sealed = out.size();
  }
  return out;
}

std::vector<uint8_t> SealPackageV2(const DriverletPackage& pkg, std::string_view key,
                                   PackageSizes* sizes) {
  // Uncompressed on purpose: LZSS would force a decompress copy and defeat the
  // mmap-in-place load path.
  std::vector<uint8_t> payload = TemplatesToBinaryV2(pkg.templates);
  std::vector<uint8_t> out = SealEnvelope(kMagicV2, /*format_byte=*/2, pkg.driverlet, payload, key);
  if (sizes != nullptr) {
    sizes->serialized = payload.size();
    sizes->compressed = payload.size();
    sizes->sealed = out.size();
  }
  return out;
}

std::vector<uint8_t> SealPackageRaw(std::string_view driverlet, PackageWire wire,
                                    const std::vector<uint8_t>& payload, std::string_view key) {
  if (wire == PackageWire::kV2) {
    return SealEnvelope(kMagicV2, /*format_byte=*/2, driverlet, payload, key);
  }
  std::vector<uint8_t> compressed = LzssCompress(payload.data(), payload.size());
  return SealEnvelope(kMagic, static_cast<uint8_t>(wire), driverlet, compressed, key);
}

#pragma GCC diagnostic pop

Result<DriverletPackage> OpenPackage(const uint8_t* data, size_t len, std::string_view key) {
  DLT_ASSIGN_OR_RETURN(Envelope env, VerifyEnvelope(data, len, key));
  DriverletPackage pkg;
  pkg.driverlet = std::move(env.driverlet);
  if (env.v2) {
    DLT_ASSIGN_OR_RETURN(pkg.templates, TemplatesFromBinary(env.payload, env.payload_len));
    return pkg;
  }
  if (env.format_byte > static_cast<uint8_t>(PackageFormat::kBinary)) {
    return Status::kCorrupt;
  }
  DLT_ASSIGN_OR_RETURN(std::vector<uint8_t> serialized,
                       LzssDecompress(env.payload, env.payload_len));
  if (env.format_byte == static_cast<uint8_t>(PackageFormat::kText)) {
    std::string_view text(reinterpret_cast<const char*>(serialized.data()), serialized.size());
    DLT_ASSIGN_OR_RETURN(pkg.templates, TemplatesFromText(text));
  } else {
    DLT_ASSIGN_OR_RETURN(pkg.templates, TemplatesFromBinary(serialized.data(), serialized.size()));
  }
  return pkg;
}

Result<SealedView> OpenPackageView(const uint8_t* data, size_t len, std::string_view key) {
  DLT_ASSIGN_OR_RETURN(Envelope env, VerifyEnvelope(data, len, key));
  if (!env.v2) {
    return Status::kUnsupported;
  }
  SealedView out;
  out.driverlet = std::move(env.driverlet);
  DLT_ASSIGN_OR_RETURN(out.view, PackageView::Parse(env.payload, env.payload_len));
  return out;
}

Result<std::shared_ptr<const MappedPackage>> MappedPackage::Map(const std::string& path,
                                                                std::string_view key) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::kNotFound;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return Status::kCorrupt;
  }
  std::shared_ptr<MappedPackage> pkg(new MappedPackage());
  pkg->len_ = static_cast<size_t>(st.st_size);
  void* map = ::mmap(nullptr, pkg->len_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map != MAP_FAILED) {
    pkg->data_ = static_cast<const uint8_t*>(map);
    pkg->mapped_ = true;
  } else {
    // Heap fallback keeps the API working on hosts without mmap semantics.
    pkg->fallback_.resize(pkg->len_);
    size_t got = 0;
    while (got < pkg->len_) {
      ssize_t n = ::read(fd, pkg->fallback_.data() + got, pkg->len_ - got);
      if (n <= 0) {
        ::close(fd);
        return Status::kCorrupt;
      }
      got += static_cast<size_t>(n);
    }
    pkg->data_ = pkg->fallback_.data();
  }
  ::close(fd);

  DLT_ASSIGN_OR_RETURN(SealedView sealed, OpenPackageView(pkg->data_, pkg->len_, key));
  pkg->driverlet_ = std::move(sealed.driverlet);
  pkg->view_ = std::move(sealed.view);
  return std::shared_ptr<const MappedPackage>(std::move(pkg));
}

MappedPackage::~MappedPackage() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), len_);
  }
}

}  // namespace dlt
