#include "src/core/serialize_text.h"

#include <charconv>
#include <sstream>

namespace dlt {

namespace {

void AppendEvent(const TemplateEvent& e, int indent, std::ostringstream* os) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  *os << pad << "ev kind=" << EventKindName(e.kind);
  switch (e.kind) {
    case EventKind::kRegRead:
    case EventKind::kRegWrite:
    case EventKind::kPollReg:
    case EventKind::kPioIn:
    case EventKind::kPioOut:
      *os << "; dev=" << e.device << "; off=0x" << std::hex << e.reg_off << std::dec;
      break;
    default:
      break;
  }
  if (e.addr != nullptr) {
    *os << "; addr=" << e.addr->ToString();
  }
  if (!e.bind.empty()) {
    *os << "; bind=" << e.bind;
  }
  if (e.state_changing) {
    *os << "; sc=1";
  }
  if (!e.constraint.empty()) {
    *os << "; c=" << e.constraint.ToString();
  }
  if (e.value != nullptr) {
    *os << "; value=" << e.value->ToString();
  }
  if (!e.buffer.empty()) {
    *os << "; buffer=" << e.buffer;
  }
  if (e.buf_offset != nullptr) {
    *os << "; bufoff=" << e.buf_offset->ToString();
  }
  if (e.irq_line >= 0) {
    *os << "; irq=" << e.irq_line;
  }
  if (e.kind == EventKind::kPollReg || e.kind == EventKind::kPollShm) {
    *os << "; mask=0x" << std::hex << e.mask << "; want=0x" << e.want << std::dec
        << "; pcmp=" << static_cast<int>(e.poll_cmp) << "; interval=" << e.interval_us
        << "; iters=" << e.recorded_iters;
  }
  if (e.timeout_us != 0) {
    *os << "; timeout=" << e.timeout_us;
  }
  if (!e.file.empty()) {
    *os << "; loc=" << e.file << ":" << e.line;
  }
  if (!e.body.empty()) {
    *os << " {\n";
    for (const auto& child : e.body) {
      AppendEvent(child, indent + 1, os);
    }
    *os << pad << "end\n";
  } else {
    *os << "\n";
  }
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

Result<uint64_t> ParseU64(std::string_view s) {
  uint64_t v = 0;
  std::from_chars_result r{};
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    r = std::from_chars(s.data() + 2, s.data() + s.size(), v, 16);
  } else {
    r = std::from_chars(s.data(), s.data() + s.size(), v, 10);
  }
  if (r.ec != std::errc{} || r.ptr != s.data() + s.size()) {
    return Status::kCorrupt;
  }
  return v;
}

// Parses an "ev ..." line (without the body) into |out|.
Status ParseEventLine(std::string_view line, TemplateEvent* out) {
  // Split on "; " — expression values never contain ';'.
  std::vector<std::pair<std::string_view, std::string_view>> kvs;
  size_t start = 0;
  while (start <= line.size()) {
    size_t semi = line.find(';', start);
    std::string_view field = Trim(line.substr(start, semi == std::string_view::npos
                                                          ? std::string_view::npos
                                                          : semi - start));
    if (!field.empty()) {
      size_t eq = field.find('=');
      if (eq == std::string_view::npos) {
        return Status::kCorrupt;
      }
      kvs.emplace_back(Trim(field.substr(0, eq)), Trim(field.substr(eq + 1)));
    }
    if (semi == std::string_view::npos) {
      break;
    }
    start = semi + 1;
  }
  for (auto [key, val] : kvs) {
    if (key == "kind") {
      DLT_ASSIGN_OR_RETURN(out->kind, EventKindFromName(val));
    } else if (key == "dev") {
      DLT_ASSIGN_OR_RETURN(uint64_t v, ParseU64(val));
      out->device = static_cast<uint16_t>(v);
    } else if (key == "off") {
      DLT_ASSIGN_OR_RETURN(out->reg_off, ParseU64(val));
    } else if (key == "addr") {
      DLT_ASSIGN_OR_RETURN(out->addr, Expr::Parse(val));
    } else if (key == "bind") {
      out->bind = std::string(val);
    } else if (key == "sc") {
      out->state_changing = (val == "1");
    } else if (key == "c") {
      DLT_ASSIGN_OR_RETURN(out->constraint, Constraint::Parse(val));
    } else if (key == "value") {
      DLT_ASSIGN_OR_RETURN(out->value, Expr::Parse(val));
    } else if (key == "buffer") {
      out->buffer = std::string(val);
    } else if (key == "bufoff") {
      DLT_ASSIGN_OR_RETURN(out->buf_offset, Expr::Parse(val));
    } else if (key == "irq") {
      DLT_ASSIGN_OR_RETURN(uint64_t v, ParseU64(val));
      out->irq_line = static_cast<int>(v);
    } else if (key == "mask") {
      DLT_ASSIGN_OR_RETURN(uint64_t v, ParseU64(val));
      out->mask = static_cast<uint32_t>(v);
    } else if (key == "want") {
      DLT_ASSIGN_OR_RETURN(uint64_t v, ParseU64(val));
      out->want = static_cast<uint32_t>(v);
    } else if (key == "pcmp") {
      DLT_ASSIGN_OR_RETURN(uint64_t v, ParseU64(val));
      if (v > static_cast<uint64_t>(Cmp::kGe)) {
        return Status::kCorrupt;
      }
      out->poll_cmp = static_cast<Cmp>(v);
    } else if (key == "interval") {
      DLT_ASSIGN_OR_RETURN(out->interval_us, ParseU64(val));
    } else if (key == "iters") {
      DLT_ASSIGN_OR_RETURN(uint64_t v, ParseU64(val));
      out->recorded_iters = static_cast<uint32_t>(v);
    } else if (key == "timeout") {
      DLT_ASSIGN_OR_RETURN(out->timeout_us, ParseU64(val));
    } else if (key == "loc") {
      size_t colon = val.rfind(':');
      if (colon == std::string_view::npos) {
        return Status::kCorrupt;
      }
      out->file = std::string(val.substr(0, colon));
      DLT_ASSIGN_OR_RETURN(uint64_t ln, ParseU64(val.substr(colon + 1)));
      out->line = static_cast<int>(ln);
    } else {
      return Status::kCorrupt;
    }
  }
  return Status::kOk;
}

class LineReader {
 public:
  explicit LineReader(std::string_view text) : text_(text) {}
  bool Next(std::string_view* line) {
    while (pos_ < text_.size()) {
      size_t nl = text_.find('\n', pos_);
      std::string_view raw = text_.substr(pos_, nl == std::string_view::npos ? std::string_view::npos
                                                                             : nl - pos_);
      pos_ = (nl == std::string_view::npos) ? text_.size() : nl + 1;
      std::string_view trimmed = Trim(raw);
      if (trimmed.empty() || trimmed.front() == '#') {
        continue;
      }
      *line = trimmed;
      return true;
    }
    return false;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

// Parses events until a terminator line ("end" for bodies, "endtemplate" for
// the top level) is consumed.
Status ParseEvents(LineReader* reader, std::string_view terminator,
                   std::vector<TemplateEvent>* out) {
  std::string_view line;
  while (reader->Next(&line)) {
    if (line == terminator) {
      return Status::kOk;
    }
    if (line.substr(0, 3) != "ev ") {
      return Status::kCorrupt;
    }
    std::string_view payload = line.substr(3);
    bool has_body = false;
    if (payload.size() >= 1 && payload.back() == '{') {
      has_body = true;
      payload = Trim(payload.substr(0, payload.size() - 1));
    }
    TemplateEvent e;
    DLT_RETURN_IF_ERROR(ParseEventLine(payload, &e));
    if (has_body) {
      DLT_RETURN_IF_ERROR(ParseEvents(reader, "end", &e.body));
    }
    out->push_back(std::move(e));
  }
  return Status::kCorrupt;  // missing terminator
}

}  // namespace

std::string TemplateToText(const InteractionTemplate& t) {
  std::ostringstream os;
  os << "template " << t.name << "\n";
  os << "entry " << t.entry << "\n";
  os << "device " << t.primary_device << "\n";
  for (const auto& p : t.params) {
    os << "param " << p.name << " " << (p.is_buffer ? "buffer" : "scalar") << "\n";
  }
  os << "require " << t.initial.ToString() << "\n";
  for (const auto& e : t.events) {
    AppendEvent(e, 0, &os);
  }
  os << "endtemplate\n";
  return os.str();
}

std::string TemplatesToText(const std::vector<InteractionTemplate>& templates) {
  std::string out;
  for (const auto& t : templates) {
    out += TemplateToText(t);
  }
  return out;
}

Result<std::vector<InteractionTemplate>> TemplatesFromText(std::string_view text) {
  std::vector<InteractionTemplate> out;
  LineReader reader(text);
  std::string_view line;
  while (reader.Next(&line)) {
    if (line.substr(0, 9) != "template ") {
      return Status::kCorrupt;
    }
    InteractionTemplate t;
    t.name = std::string(Trim(line.substr(9)));
    bool saw_require = false;
    // Header lines until "require", then events until "endtemplate".
    while (reader.Next(&line)) {
      if (line.substr(0, 6) == "entry ") {
        t.entry = std::string(Trim(line.substr(6)));
      } else if (line.substr(0, 7) == "device ") {
        DLT_ASSIGN_OR_RETURN(uint64_t v, ParseU64(Trim(line.substr(7))));
        t.primary_device = static_cast<uint16_t>(v);
      } else if (line.substr(0, 6) == "param ") {
        std::string_view rest = Trim(line.substr(6));
        size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) {
          return Status::kCorrupt;
        }
        ParamSpec p;
        p.name = std::string(rest.substr(0, sp));
        p.is_buffer = (Trim(rest.substr(sp + 1)) == "buffer");
        t.params.push_back(std::move(p));
      } else if (line.substr(0, 8) == "require ") {
        DLT_ASSIGN_OR_RETURN(t.initial, Constraint::Parse(Trim(line.substr(8))));
        saw_require = true;
        break;
      } else {
        return Status::kCorrupt;
      }
    }
    if (!saw_require) {
      return Status::kCorrupt;
    }
    DLT_RETURN_IF_ERROR(ParseEvents(&reader, "endtemplate", &t.events));
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace dlt
