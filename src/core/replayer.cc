#include "src/core/replayer.h"

#include "src/core/compiled_executor.h"
#include "src/core/executor.h"
#include "src/obs/telemetry.h"
#include "src/soc/log.h"

namespace dlt {

Replayer::Replayer(ReplayContext* ctx, std::string signing_key)
    : ctx_(ctx), signing_key_(std::move(signing_key)), store_(&owned_store_) {}

Replayer::Replayer(ReplayContext* ctx, std::string signing_key, TemplateStore* store,
                   std::string driverlet)
    : ctx_(ctx),
      signing_key_(std::move(signing_key)),
      store_(store),
      scope_(std::move(driverlet)),
      driverlet_name_(scope_) {}

Status Replayer::LoadPackage(const uint8_t* data, size_t len) {
  DLT_ASSIGN_OR_RETURN(DriverletPackage pkg, OpenPackage(data, len, signing_key_));
  return LoadPackage(pkg);
}

Status Replayer::LoadPackage(const DriverletPackage& pkg) {
  if (!scope_.empty() && pkg.driverlet != scope_) {
    return Status::kInvalidArg;  // scoped replayers serve exactly one driverlet
  }
  DLT_RETURN_IF_ERROR(store_->AddPackage(pkg));
  driverlet_name_ = pkg.driverlet;
  return Status::kOk;
}

std::vector<const InteractionTemplate*> Replayer::templates() const {
  if (!scope_.empty()) {
    return store_->templates(scope_);
  }
  return store_->templates();
}

Result<ReplayStats> Replayer::Invoke(std::string_view entry, const ReplayArgs& args) {
  Telemetry& tel = Telemetry::Get();
  uint64_t invoke_t0 = tel.enabled() ? ctx_->TimestampUs() : 0;
  // Reset before selection: a selection miss must not leave the previous
  // invoke's measurement looking like this one's.
  measurement_ = MeasurementRecord{};

  // Selection goes through the store's (driverlet, entry) index; args.scalars
  // doubles as the constraint bindings (no per-invoke rebuild). The compiled
  // engine uses the cached selection path, which also hands back the
  // template's compiled program (null = interpreter fallback).
  std::vector<const InteractionTemplate*> rejected;
  const InteractionTemplate* tpl = nullptr;
  std::shared_ptr<const CompiledProgram> prog;
  if (engine_ == ReplayEngine::kCompiled) {
    Result<TemplateStore::CompiledSelection> sel =
        store_->SelectCompiled(scope_, entry, args.scalars, tel.enabled() ? &rejected : nullptr);
    if (!sel.ok()) {
      if (tel.enabled() && sel.status() == Status::kNoTemplate) {
        tel.metrics().counter("replay.template_miss").Inc();
      }
      return sel.status();
    }
    tpl = sel->tpl;
    prog = sel->program;
    if (prog == nullptr && tel.enabled()) {
      tel.metrics().counter("replay.compile_fallbacks").Inc();
    }
  } else {
    Result<const InteractionTemplate*> sel =
        store_->Select(scope_, entry, args.scalars, tel.enabled() ? &rejected : nullptr);
    if (!sel.ok()) {
      if (tel.enabled() && sel.status() == Status::kNoTemplate) {
        tel.metrics().counter("replay.template_miss").Inc();
      }
      return sel.status();
    }
    tpl = *sel;
  }
  if (tel.enabled()) {
    for (const InteractionTemplate* r : rejected) {
      tel.Instant(TraceKind::kTemplateRejected, ctx_->TimestampUs(), r->name, 0, 0,
                  r->primary_device);
    }
    tel.metrics().counter("replay.template_hit").Inc();
    tel.Instant(TraceKind::kTemplateSelected, ctx_->TimestampUs(), tpl->name, 0, 0,
                tpl->primary_device);
  }

  ReplayStats stats;
  stats.template_name = tpl->name;
  stats.compiled = prog != nullptr;
  report_ = DivergenceReport{};

  for (int attempt = 1; attempt <= max_attempts_; ++attempt) {
    stats.attempts = attempt;
    if (attempt > 1 && retry_backoff_us_ > 0) {
      // Policy ladder rung 1: give the device virtual time to settle before
      // the reset + re-execution, doubling per failed attempt.
      uint64_t backoff = retry_backoff_us_ << (attempt - 2);
      if (tel.enabled()) {
        tel.metrics().counter("replay.backoffs").Inc();
        tel.metrics().histogram("replay.backoff_us").Record(backoff);
      }
      ctx_->DelayUs(backoff);
    }
    // Reset the device before executing each template and upon divergence —
    // constrains the device state space exactly as a record run did (§3.3, §5).
    if (reset_between_templates_ || attempt > 1) {
      if (tel.enabled()) {
        tel.metrics().counter("replay.soft_resets").Inc();
        tel.Instant(TraceKind::kSoftReset, ctx_->TimestampUs(),
                    attempt > 1 ? "divergence_retry" : "between_templates", 0, 0,
                    tpl->primary_device);
      }
      Status reset = ctx_->SoftResetDevice(tpl->primary_device);
      if (!Ok(reset)) {
        return reset;
      }
      ++stats.resets;
      ++total_resets_;
    }
    ctx_->DmaReleaseAll();

    // Fresh chain per attempt: the measurement describes the final attempt's
    // execution, not the union of retries.
    IntegrityChain chain;
    chain.Begin(*tpl);
    Status s = Status::kOk;
    size_t events = 0;
    if (prog != nullptr) {
      CompiledExecutor exec(ctx_, prog.get(), &args);
      exec.set_model_clock(compiled_model_clock_);
      exec.set_integrity_chain(&chain);
      s = exec.Run(&report_);
      events = exec.events_executed();
      stats.cpu_model_ns += exec.cpu_model_ns();
      stats.bulk_ops += exec.bulk_ops();
    } else {
      Executor exec(ctx_, tpl, &args);
      exec.set_integrity_chain(&chain);
      s = exec.Run(&report_);
      events = exec.events_executed();
    }
    stats.events_executed += events;
    total_events_ += events;
    measurement_.valid = true;
    measurement_.template_name = tpl->name;
    measurement_.events_measured = chain.folded();
    measurement_.digest = chain.digest();
    // A complete run's chain equals the golden measurement by construction;
    // anything that stopped early folded a strict prefix, whose chain value
    // cannot collide with the full one.
    measurement_.matches_golden = Ok(s);
    if (Ok(s)) {
      stats.measurement = measurement_.Hex();
      stats.events_measured = measurement_.events_measured;
      if (tel.enabled()) {
        uint64_t now = ctx_->TimestampUs();
        tel.metrics().histogram("replay.invoke_us").Record(now - invoke_t0);
        tel.Span(TraceKind::kReplayInvoke, invoke_t0, now - invoke_t0, tpl->name,
                 stats.events_executed, static_cast<uint64_t>(stats.attempts),
                 tpl->primary_device);
      }
      return stats;
    }
    if (s != Status::kDiverged && s != Status::kTimeout) {
      return s;  // hard errors (bounds violation, corrupt template) do not retry
    }
    DLT_LOG(kInfo) << "replay divergence in " << tpl->name << " at event #" << report_.event_index
                   << " (" << report_.event_desc << "), attempt " << attempt;
  }
  // Persistent divergence: give up and surface the rewound report (§5).
  if (tel.enabled()) {
    uint64_t now = ctx_->TimestampUs();
    tel.metrics().counter("replay.aborts").Inc();
    tel.Span(TraceKind::kReplayInvoke, invoke_t0, now - invoke_t0, tpl->name,
             stats.events_executed, static_cast<uint64_t>(stats.attempts),
             tpl->primary_device);
  }
  return Status::kAborted;
}

}  // namespace dlt
