#include "src/core/integrity.h"

#include <cstring>

namespace dlt {

namespace {

void PutU64(Sha256* h, uint64_t v) {
  uint8_t b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  h->Update(b, sizeof(b));
}

void PutStr(Sha256* h, const std::string& s) {
  PutU64(h, s.size());
  h->Update(s.data(), s.size());
}

}  // namespace

IntegrityChain::IntegrityChain() {
  value_ = Sha256::Hash(kIntegritySeed, std::strlen(kIntegritySeed));
}

void IntegrityChain::Begin(const InteractionTemplate& tpl) {
  Sha256 h;
  h.Update(value_.data(), value_.size());
  PutStr(&h, tpl.name);
  PutStr(&h, tpl.entry);
  PutU64(&h, tpl.events.size());
  value_ = h.Finalize();
}

void IntegrityChain::FoldEvent(const TemplateEvent& e, size_t index) {
  Sha256 h;
  h.Update(value_.data(), value_.size());
  // Static template structure only — runtime values (bound reads, timestamps,
  // poll iteration counts) would break cross-engine and cross-run parity.
  PutU64(&h, index);
  PutU64(&h, static_cast<uint64_t>(e.kind));
  PutU64(&h, e.device);
  PutU64(&h, e.reg_off);
  PutU64(&h, static_cast<uint64_t>(static_cast<int64_t>(e.irq_line)));
  PutStr(&h, e.bind);
  PutStr(&h, e.buffer);
  value_ = h.Finalize();
  ++folded_;
}

void IntegrityChain::Extend(const Sha256::Digest& d) {
  Sha256 h;
  h.Update(value_.data(), value_.size());
  h.Update(d.data(), d.size());
  value_ = h.Finalize();
  ++folded_;
}

Sha256::Digest GoldenMeasurement(const InteractionTemplate& tpl) {
  IntegrityChain chain;
  chain.Begin(tpl);
  for (size_t i = 0; i < tpl.events.size(); ++i) {
    chain.FoldEvent(tpl.events[i], i);
  }
  return chain.digest();
}

std::string GoldenMeasurementHex(const InteractionTemplate& tpl) {
  return Sha256::HexDigest(GoldenMeasurement(tpl));
}

}  // namespace dlt
