// Runtime integrity measurement for replay (ROADMAP item 3, PDRIMA-style):
// every invoke folds the events it actually executed into a SHA-256 hash
// chain, and the chain of a clean run is — by construction — computable
// statically from the template alone (GoldenMeasurement). Comparing the two
// tells a verifier not just *that* an invoke failed but exactly how much of
// the golden trace executed before it stopped.
//
// Parity contract: both engines fold one descriptor per completed *top-level*
// template event, in template order. The descriptor covers only the fields
// that are static template structure (kind, index, device, register offset,
// irq line, bind/buffer names) — never runtime values — so interpreter and
// compiled runs of one template produce byte-identical chains, including the
// failure prefix when an attempt diverges mid-template. Poll bodies are
// excluded: their iteration count is device timing, not template structure,
// and the poll event itself is folded once on success.
#ifndef SRC_CORE_INTEGRITY_H_
#define SRC_CORE_INTEGRITY_H_

#include <string>

#include "src/core/event.h"
#include "src/core/interaction_template.h"
#include "src/crypto/sha256.h"

namespace dlt {

// Domain separator folded into every chain's initial value.
inline constexpr const char kIntegritySeed[] = "dlt-integrity-v1";

class IntegrityChain {
 public:
  IntegrityChain();

  // Folds the template identity (name, entry, top-level event count) into the
  // chain. Call once, before any FoldEvent.
  void Begin(const InteractionTemplate& tpl);

  // Extends the chain with the structural descriptor of one completed
  // top-level event: value = SHA256(value || descriptor).
  void FoldEvent(const TemplateEvent& e, size_t index);

  // Generic PCR-style extend (session chains over per-invoke measurements).
  void Extend(const Sha256::Digest& d);

  const Sha256::Digest& digest() const { return value_; }
  std::string Hex() const { return Sha256::HexDigest(value_); }
  size_t folded() const { return folded_; }

 private:
  Sha256::Digest value_;
  size_t folded_ = 0;
};

// The chain a complete, divergence-free execution of |tpl| produces: Begin +
// FoldEvent over every top-level event in order.
Sha256::Digest GoldenMeasurement(const InteractionTemplate& tpl);
std::string GoldenMeasurementHex(const InteractionTemplate& tpl);

// What one Invoke measured, surfaced by Replayer::last_measurement() for the
// service's attestation/quarantine policy (failed invokes return a bare
// Status, so the record cannot ride on ReplayStats alone).
struct MeasurementRecord {
  bool valid = false;
  std::string template_name;
  size_t events_measured = 0;     // top-level events folded on the final attempt
  Sha256::Digest digest{};        // final-attempt chain value
  bool matches_golden = false;    // digest == GoldenMeasurement(template)
  std::string Hex() const { return Sha256::HexDigest(digest); }
};

}  // namespace dlt

#endif  // SRC_CORE_INTEGRITY_H_
