#include "src/core/template_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/core/program_cache.h"
#include "src/core/serialize_binary.h"
#include "src/obs/telemetry.h"
#include "src/soc/log.h"

namespace dlt {

namespace {

// Register-interface events are the ones that name a device; walk poll bodies
// too so nested PIO drains are accounted for.
void CollectDevices(const std::vector<TemplateEvent>& events, std::set<uint16_t>* out) {
  for (const TemplateEvent& e : events) {
    switch (e.kind) {
      case EventKind::kRegRead:
      case EventKind::kRegWrite:
      case EventKind::kPollReg:
      case EventKind::kPioIn:
      case EventKind::kPioOut:
        out->insert(e.device);
        break;
      default:
        break;
    }
    if (!e.body.empty()) {
      CollectDevices(e.body, out);
    }
  }
}

// Bumps a cache counter and mirrors it into telemetry when tracing is armed.
void CountCache(std::atomic<uint64_t>* plain, const char* metric) {
  plain->fetch_add(1, std::memory_order_relaxed);
  Telemetry& t = Telemetry::Get();
  if (t.enabled()) {
    t.metrics().counter(metric).Inc();
  }
}

}  // namespace

TemplateStore::TemplateStore() : shared_(std::make_shared<Shared>()) {}

TemplateStore::TemplateStore(std::shared_ptr<Shared> shared) : shared_(std::move(shared)) {}

std::unique_ptr<TemplateStore> TemplateStore::NewShardView() const {
  return std::unique_ptr<TemplateStore>(new TemplateStore(shared_));
}

Status TemplateStore::AddPackage(const uint8_t* data, size_t len,
                                 std::string_view signing_key) {
  DLT_ASSIGN_OR_RETURN(DriverletPackage pkg, OpenPackage(data, len, signing_key));
  return AddPackage(pkg);
}

Status TemplateStore::AddPackage(const DriverletPackage& pkg) {
  return AddPackageInternal(&pkg, nullptr);
}

Status TemplateStore::AddPackageFile(const std::string& path, std::string_view signing_key) {
  DLT_ASSIGN_OR_RETURN(std::shared_ptr<const MappedPackage> pkg,
                       MappedPackage::Map(path, signing_key));
  return AddMappedPackage(std::move(pkg));
}

Status TemplateStore::AddMappedPackage(std::shared_ptr<const MappedPackage> pkg) {
  if (pkg == nullptr) {
    return Status::kInvalidArg;
  }
  return AddPackageInternal(nullptr, std::move(pkg));
}

Status TemplateStore::AddPackageInternal(const DriverletPackage* eager,
                                         std::shared_ptr<const MappedPackage> mapped) {
  const std::string& name = eager != nullptr ? eager->driverlet : mapped->driverlet();
  if (name.empty()) {
    return Status::kInvalidArg;
  }
  std::lock_guard<std::mutex> swap(shared_->swap_mu);
  const Population* cur = population();

  // Copy-on-write: clone the owning storage, splice the new driverlet in, then
  // rebuild the derived indexes against the clone's stable addresses. Eagerly
  // loaded driverlets are copied template-by-template (immutable since load);
  // lazy driverlets are re-parsed from their mapped directories into *fresh
  // unhydrated* states — copying a template whose body a concurrent reader is
  // hydrating right now would race, and the directory parse is cheap.
  auto next = std::make_unique<Population>();
  if (cur != nullptr) {
    next->load_order = cur->load_order;
    next->mapped = cur->mapped;
    for (const auto& [dname, owned] : cur->by_driverlet) {
      if (dname == name || cur->mapped.find(dname) != cur->mapped.end()) {
        continue;
      }
      next->by_driverlet[dname] = owned;
    }
  }
  if (std::find(next->load_order.begin(), next->load_order.end(), name) ==
      next->load_order.end()) {
    next->load_order.push_back(name);
  }
  if (eager != nullptr) {
    next->mapped.erase(name);  // an eager re-registration drops the mapping
    next->by_driverlet[name].assign(eager->templates.begin(), eager->templates.end());
  } else {
    next->mapped[name] = std::move(mapped);
  }

  // Materialize lazy driverlets: directory headers + fresh hydration latches.
  std::map<std::string, std::vector<LazyState*>, std::less<>> lazy_of;
  for (const auto& [dname, mp] : next->mapped) {
    std::deque<InteractionTemplate>& owned = next->by_driverlet[dname];
    owned.clear();
    const PackageView& view = mp->view();
    std::vector<LazyState*>& states = lazy_of[dname];
    states.reserve(view.size());
    for (size_t i = 0; i < view.size(); ++i) {
      owned.push_back(view.header(i));
      next->lazy_states.emplace_back();
      LazyState& ls = next->lazy_states.back();
      ls.pkg = mp;
      ls.tpl_index = static_cast<uint32_t>(i);
      ls.tpl = &owned.back();
      states.push_back(&ls);
    }
  }

  for (const std::string& dname : next->load_order) {
    std::deque<InteractionTemplate>& owned = next->by_driverlet.find(dname)->second;
    std::set<uint16_t>& devs = next->devices[dname];
    auto mapped_it = next->mapped.find(dname);
    const PackageView* view =
        mapped_it != next->mapped.end() ? &mapped_it->second->view() : nullptr;
    std::vector<LazyState*>* states = view != nullptr ? &lazy_of[dname] : nullptr;
    size_t ti = 0;
    for (const InteractionTemplate& t : owned) {
      if (view != nullptr) {
        // Seal-time directory devices: admission without hydrating any body.
        const std::vector<uint16_t>& tdevs = view->devices(ti);
        devs.insert(tdevs.begin(), tdevs.end());
      } else {
        devs.insert(t.primary_device);
        CollectDevices(t.events, &devs);
      }

      auto [it, inserted] = next->index.try_emplace(std::make_pair(dname, t.entry));
      EntrySlot& slot = it->second;
      if (inserted) {
        slot.driverlet = dname;
        slot.entry = t.entry;
        next->by_entry[t.entry].push_back(&slot);
      }
      Candidate c;
      c.tpl = &t;
      c.scalar_params = t.ScalarParams();  // precompiled: never rebuilt per invoke
      if (states != nullptr) {
        c.lazy = (*states)[ti];
      }
      slot.candidates.push_back(std::move(c));
      ++ti;
    }
  }

  // Constraint indexes: built per slot once the candidate set is final, for
  // slots large enough that probing beats scanning.
  for (auto& [key, slot] : next->index) {
    if (slot.candidates.size() < EntryConstraintIndex::kMinIndexedCandidates) {
      continue;
    }
    std::vector<const Constraint*> initials;
    initials.reserve(slot.candidates.size());
    for (const Candidate& c : slot.candidates) {
      initials.push_back(&c.tpl->initial);
    }
    slot.index.Build(initials);
    slot.indexed = slot.index.discriminating();
  }

  // Publish. Readers that pinned the old population keep using it; it stays
  // alive in |epochs|. This view's caches flush eagerly, other views notice
  // the generation change on their next SelectCompiled.
  shared_->pop.store(next.get(), std::memory_order_release);
  shared_->epochs.push_back(std::move(next));
  {
    std::lock_guard<std::mutex> cache(cache_mu_);
    FlushCachesLocked();
    cache_pop_ = population();
  }
  return Status::kOk;
}

void TemplateStore::set_compile_cache_dir(std::string dir) {
  std::lock_guard<std::mutex> cfg(shared_->cfg_mu);
  shared_->compile_cache_dir = std::move(dir);
}

bool TemplateStore::HasDriverlet(std::string_view driverlet) const {
  const Population* pop = population();
  return pop != nullptr && pop->by_driverlet.find(driverlet) != pop->by_driverlet.end();
}

size_t TemplateStore::package_count() const {
  const Population* pop = population();
  return pop == nullptr ? 0 : pop->by_driverlet.size();
}

size_t TemplateStore::template_count() const {
  const Population* pop = population();
  if (pop == nullptr) {
    return 0;
  }
  size_t n = 0;
  for (const auto& [name, templates] : pop->by_driverlet) {
    n += templates.size();
  }
  return n;
}

size_t TemplateStore::lazy_template_count() const {
  const Population* pop = population();
  if (pop == nullptr) {
    return 0;
  }
  size_t n = 0;
  for (const LazyState& ls : pop->lazy_states) {
    if (!ls.hydrated.load(std::memory_order_acquire)) {
      ++n;
    }
  }
  return n;
}

size_t TemplateStore::indexed_slot_count() const {
  const Population* pop = population();
  if (pop == nullptr) {
    return 0;
  }
  size_t n = 0;
  for (const auto& [key, slot] : pop->index) {
    if (slot.indexed) {
      ++n;
    }
  }
  return n;
}

std::vector<std::string> TemplateStore::driverlets() const {
  const Population* pop = population();
  return pop == nullptr ? std::vector<std::string>{} : pop->load_order;
}

std::vector<const InteractionTemplate*> TemplateStore::templates() const {
  std::vector<const InteractionTemplate*> out;
  const Population* pop = population();
  if (pop == nullptr) {
    return out;
  }
  for (const std::string& name : pop->load_order) {
    auto it = pop->by_driverlet.find(name);
    for (const InteractionTemplate& t : it->second) {
      out.push_back(&t);
    }
  }
  return out;
}

std::vector<const InteractionTemplate*> TemplateStore::templates(
    std::string_view driverlet) const {
  std::vector<const InteractionTemplate*> out;
  const Population* pop = population();
  if (pop == nullptr) {
    return out;
  }
  auto it = pop->by_driverlet.find(driverlet);
  if (it == pop->by_driverlet.end()) {
    return out;
  }
  for (const InteractionTemplate& t : it->second) {
    out.push_back(&t);
  }
  return out;
}

std::vector<uint16_t> TemplateStore::PackageDevices(const DriverletPackage& pkg) {
  std::set<uint16_t> devs;
  for (const InteractionTemplate& t : pkg.templates) {
    devs.insert(t.primary_device);
    CollectDevices(t.events, &devs);
  }
  return std::vector<uint16_t>(devs.begin(), devs.end());
}

std::vector<uint16_t> TemplateStore::DevicesOf(std::string_view driverlet) const {
  const Population* pop = population();
  if (pop == nullptr) {
    return {};
  }
  auto it = pop->devices.find(driverlet);
  if (it == pop->devices.end()) {
    return {};
  }
  return std::vector<uint16_t>(it->second.begin(), it->second.end());
}

const TemplateStore::EntrySlot* TemplateStore::FindSlot(const Population& pop,
                                                        std::string_view driverlet,
                                                        std::string_view entry) {
  // index is keyed by std::pair<std::string, std::string>; avoid constructing
  // the pair key for the common scoped lookup via the secondary index.
  auto it = pop.by_entry.find(entry);
  if (it == pop.by_entry.end()) {
    return nullptr;
  }
  for (const EntrySlot* slot : it->second) {
    if (slot->driverlet == driverlet) {
      return slot;
    }
  }
  return nullptr;
}

Status TemplateStore::EnsureHydrated(const Candidate& c) const {
  LazyState* ls = c.lazy;
  if (ls == nullptr || ls->hydrated.load(std::memory_order_acquire)) {
    return Status::kOk;
  }
  std::lock_guard<std::mutex> lk(ls->mu);
  if (ls->hydrated.load(std::memory_order_relaxed)) {
    return Status::kOk;
  }
  // Parse the event body out of the mapped bytes. The release store pairs
  // with the acquire load above: a reader that sees hydrated==true also sees
  // the fully written events vector.
  DLT_RETURN_IF_ERROR(ls->pkg->view().HydrateEvents(ls->tpl_index, ls->tpl));
  shared_->hydrated_templates.fetch_add(1, std::memory_order_relaxed);
  Telemetry& t = Telemetry::Get();
  if (t.enabled()) {
    t.metrics().counter("replay.store.hydrate").Inc();
  }
  ls->hydrated.store(true, std::memory_order_release);
  return Status::kOk;
}

Result<const TemplateStore::Candidate*> TemplateStore::SelectCandidate(
    std::string_view driverlet, std::string_view entry, const Bindings& scalars,
    std::vector<const InteractionTemplate*>* rejected, bool use_index) const {
  const Population* pop = population();
  if (pop == nullptr) {
    return Status::kNoTemplate;
  }
  const EntrySlot* single = nullptr;
  const std::vector<const EntrySlot*>* many = nullptr;
  if (!driverlet.empty()) {
    single = FindSlot(*pop, driverlet, entry);
    if (single == nullptr) {
      return Status::kNoTemplate;
    }
  } else {
    auto it = pop->by_entry.find(entry);
    if (it == pop->by_entry.end() || it->second.empty()) {
      return Status::kNoTemplate;
    }
    many = &it->second;
  }

  const Candidate* selected = nullptr;
  uint64_t scanned = 0;
  // The reference per-candidate protocol, shared verbatim between the linear
  // walk and the index probe subset so the two paths cannot drift.
  auto consider = [&](const Candidate& c) {
    ++scanned;
    // A template whose param set this invoke does not provide cannot match;
    // skip it and keep considering the rest (same-entry templates may bind
    // different param sets).
    bool have_all = true;
    for (const std::string& p : c.scalar_params) {
      if (scalars.find(p) == scalars.end()) {
        have_all = false;
        break;
      }
    }
    if (!have_all) {
      return;
    }
    Result<bool> ok = c.tpl->initial.Eval(scalars);
    if (!ok.ok()) {
      return;  // constraint over non-initial symbols cannot gate selection
    }
    if (!*ok) {
      if (rejected != nullptr) {
        rejected->push_back(c.tpl);
      }
      return;
    }
    if (selected != nullptr) {
      // By construction no two templates cover the same inputs (the recorder
      // merges same-path templates, §4.3); tolerate but warn.
      DLT_LOG(kWarn) << "template selection ambiguous: " << selected->tpl->name << " vs "
                     << c.tpl->name;
      return;
    }
    selected = &c;
  };

  std::vector<uint32_t> probe;
  size_t slot_count = single != nullptr ? 1 : many->size();
  for (size_t si = 0; si < slot_count; ++si) {
    const EntrySlot* slot = single != nullptr ? single : (*many)[si];
    if (use_index && slot->indexed) {
      slot->index.Probe(scalars, &probe);
      shared_->index_probes.fetch_add(1, std::memory_order_relaxed);
      Telemetry& t = Telemetry::Get();
      if (t.enabled()) {
        t.metrics().counter("replay.select_index.probe").Inc();
      }
      for (uint32_t idx : probe) {
        consider(slot->candidates[idx]);
      }
    } else {
      for (const Candidate& c : slot->candidates) {
        consider(c);
      }
    }
  }
  shared_->candidates_scanned.fetch_add(scanned, std::memory_order_relaxed);
  if (selected == nullptr) {
    return Status::kNoTemplate;
  }
  return selected;
}

Result<const InteractionTemplate*> TemplateStore::Select(
    std::string_view driverlet, std::string_view entry, const Bindings& scalars,
    std::vector<const InteractionTemplate*>* rejected) const {
  // Rejected-candidate reporting needs the full scan: index-pruned candidates
  // never evaluate, so the subset cannot reproduce the report.
  DLT_ASSIGN_OR_RETURN(const Candidate* c, SelectCandidate(driverlet, entry, scalars, rejected,
                                                           /*use_index=*/rejected == nullptr));
  DLT_RETURN_IF_ERROR(EnsureHydrated(*c));
  return c->tpl;
}

Result<const InteractionTemplate*> TemplateStore::SelectLinear(
    std::string_view driverlet, std::string_view entry, const Bindings& scalars,
    std::vector<const InteractionTemplate*>* rejected) const {
  DLT_ASSIGN_OR_RETURN(const Candidate* c, SelectCandidate(driverlet, entry, scalars, rejected,
                                                           /*use_index=*/false));
  DLT_RETURN_IF_ERROR(EnsureHydrated(*c));
  return c->tpl;
}

void TemplateStore::FlushCachesLocked() const {
  // A population swap retires every cached template pointer at once: the
  // copy-on-write rebuild gives all templates fresh addresses, so both caches
  // drop whole (the old granularity — per-replaced-driverlet compile
  // eviction — predates sharing).
  for (size_t i = 0; i < compile_cache_.size(); ++i) {
    CountCache(&compile_cache_evictions_, "replay.compile_cache.evict");
  }
  compile_cache_.clear();
  for (size_t i = 0; i < select_cache_.size(); ++i) {
    CountCache(&select_cache_evictions_, "replay.select_cache.evict");
  }
  select_cache_.clear();
}

std::shared_ptr<const CompiledProgram> TemplateStore::ProgramFor(
    const InteractionTemplate* tpl) const {
  auto it = compile_cache_.find(tpl);
  if (it != compile_cache_.end()) {
    CountCache(&compile_cache_hits_, "replay.compile_cache.hit");
    return it->second;
  }
  CountCache(&compile_cache_misses_, "replay.compile_cache.miss");
  std::string dir;
  {
    std::lock_guard<std::mutex> cfg(shared_->cfg_mu);
    dir = shared_->compile_cache_dir;
  }
  Sha256::Digest hash{};
  if (!dir.empty()) {
    hash = TemplateContentHash(*tpl);
    DiskProgramCache disk(dir);
    if (std::shared_ptr<const CompiledProgram> p = disk.Load(hash, tpl)) {
      CountCache(&disk_compile_hits_, "replay.compile_cache.disk_hit");
      compile_cache_.emplace(tpl, p);
      return p;
    }
  }
  Result<std::shared_ptr<const CompiledProgram>> prog = CompileTemplate(tpl);
  // Failed compiles are cached as null: a permanent interpreter-fallback
  // marker, re-probing would fail identically every invoke.
  std::shared_ptr<const CompiledProgram> p = prog.ok() ? *prog : nullptr;
  if (p != nullptr && !dir.empty() && DiskProgramCache(dir).Store(hash, *p)) {
    CountCache(&disk_compile_stores_, "replay.compile_cache.disk_store");
  }
  compile_cache_.emplace(tpl, p);
  return p;
}

Result<TemplateStore::CompiledSelection> TemplateStore::SelectCompiled(
    std::string_view driverlet, std::string_view entry, const Bindings& scalars,
    std::vector<const InteractionTemplate*>* rejected) const {
  const Population* pop = population();
  if (pop == nullptr) {
    return Status::kNoTemplate;
  }
  std::lock_guard<std::mutex> cache(cache_mu_);
  // RCU reader resync: another view republished the population since this
  // view's caches were built — every cached pointer refers to the retired
  // snapshot, so start over against the current one.
  if (cache_pop_ != pop) {
    FlushCachesLocked();
    cache_pop_ = pop;
  }

  // Constraint-indexed fast path: probe the slot's decision structure and
  // touch only the surviving candidates — then hydrate + compile the winner
  // alone. The signature cache is bypassed: at scale, materializing the
  // param-filtered candidate list (and compiling all of it) per signature is
  // exactly the cold-start cliff the index removes.
  if (rejected == nullptr && !driverlet.empty()) {
    const EntrySlot* slot = FindSlot(*pop, driverlet, entry);
    if (slot == nullptr) {
      return Status::kNoTemplate;
    }
    if (slot->indexed) {
      DLT_ASSIGN_OR_RETURN(const Candidate* c,
                           SelectCandidate(driverlet, entry, scalars, nullptr,
                                           /*use_index=*/true));
      DLT_RETURN_IF_ERROR(EnsureHydrated(*c));
      CompiledSelection out;
      out.tpl = c->tpl;
      out.program = ProgramFor(c->tpl);
      return out;
    }
  }

  // Cache key: (driverlet, entry, scalar-name signature). Values are excluded
  // on purpose — initial constraints gate on them, so they are evaluated per
  // invoke against the cached candidate list instead. The hit path builds the
  // key on the stack and looks it up via the map's transparent comparator: no
  // allocation per invoke (keys longer than the stack buffer — pathological
  // signatures — fall back to one heap build).
  char stack_key[192];
  size_t key_len = 0;
  auto append = [&](std::string_view s) {
    if (key_len + s.size() <= sizeof(stack_key)) {
      std::memcpy(stack_key + key_len, s.data(), s.size());
    }
    key_len += s.size();
  };
  append(driverlet);
  append(std::string_view("\x1e", 1));
  append(entry);
  append(std::string_view("\x1e", 1));
  for (const auto& [name, value] : scalars) {
    append(name);
    append(std::string_view("\x1f", 1));
  }
  std::string heap_key;
  std::string_view key;
  if (key_len <= sizeof(stack_key)) {
    key = std::string_view(stack_key, key_len);
  } else {
    heap_key.reserve(key_len);
    heap_key.append(driverlet);
    heap_key.push_back('\x1e');
    heap_key.append(entry);
    heap_key.push_back('\x1e');
    for (const auto& [name, value] : scalars) {
      heap_key.append(name);
      heap_key.push_back('\x1f');
    }
    key = heap_key;
  }

  const std::vector<CachedCandidate>* cands = nullptr;
  auto hit = select_cache_.find(key);
  if (hit != select_cache_.end()) {
    CountCache(&select_cache_hits_, "replay.select_cache.hit");
    hit->second.tick = ++select_cache_tick_;
    cands = &hit->second.candidates;
  } else {
    CountCache(&select_cache_misses_, "replay.select_cache.miss");
    // Build the param-filtered candidate list the way Select walks the index.
    const EntrySlot* single = nullptr;
    const std::vector<const EntrySlot*>* many = nullptr;
    if (!driverlet.empty()) {
      single = FindSlot(*pop, driverlet, entry);
      if (single == nullptr) {
        return Status::kNoTemplate;
      }
    } else {
      auto it = pop->by_entry.find(entry);
      if (it == pop->by_entry.end() || it->second.empty()) {
        return Status::kNoTemplate;
      }
      many = &it->second;
    }
    SelectCacheEntry fresh;
    size_t slot_count = single != nullptr ? 1 : many->size();
    for (size_t si = 0; si < slot_count; ++si) {
      const EntrySlot* slot = single != nullptr ? single : (*many)[si];
      for (const Candidate& c : slot->candidates) {
        bool have_all = true;
        for (const std::string& p : c.scalar_params) {
          if (scalars.find(p) == scalars.end()) {
            have_all = false;
            break;
          }
        }
        if (!have_all) {
          continue;
        }
        // Compiling needs the event body; kCorrupt here means the mapped file
        // decayed under us after its signature check (effectively unreachable:
        // bodies were bounds-checked at Parse).
        DLT_RETURN_IF_ERROR(EnsureHydrated(c));
        fresh.candidates.push_back(CachedCandidate{c.tpl, ProgramFor(c.tpl)});
      }
    }
    if (select_cache_.size() >= kSelectCacheCapacity) {
      auto victim = select_cache_.begin();
      for (auto it = select_cache_.begin(); it != select_cache_.end(); ++it) {
        if (it->second.tick < victim->second.tick) {
          victim = it;
        }
      }
      select_cache_.erase(victim);
      CountCache(&select_cache_evictions_, "replay.select_cache.evict");
    }
    fresh.tick = ++select_cache_tick_;
    auto [ins, inserted] = select_cache_.emplace(std::string(key), std::move(fresh));
    cands = &ins->second.candidates;
  }

  // Per-invoke value gate, same semantics as Select: evaluation errors skip
  // the candidate, false goes to |rejected|, the first match wins and later
  // matches only produce the ambiguity warning. The compiled initial check
  // runs when a program exists; fallback templates use the tree evaluator.
  CompiledSelection selected;
  uint64_t scanned = 0;
  for (const CachedCandidate& c : *cands) {
    ++scanned;
    Result<bool> ok = c.program != nullptr ? c.program->EvalInitial(scalars)
                                           : c.tpl->initial.Eval(scalars);
    if (!ok.ok()) {
      continue;  // constraint over non-initial symbols cannot gate selection
    }
    if (!*ok) {
      if (rejected != nullptr) {
        rejected->push_back(c.tpl);
      }
      continue;
    }
    if (selected.tpl != nullptr) {
      DLT_LOG(kWarn) << "template selection ambiguous: " << selected.tpl->name << " vs "
                     << c.tpl->name;
      continue;
    }
    selected.tpl = c.tpl;
    selected.program = c.program;
  }
  shared_->candidates_scanned.fetch_add(scanned, std::memory_order_relaxed);
  if (selected.tpl == nullptr) {
    return Status::kNoTemplate;
  }
  return selected;
}

}  // namespace dlt
