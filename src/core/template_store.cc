#include "src/core/template_store.h"

#include <algorithm>
#include <utility>

#include "src/obs/telemetry.h"
#include "src/soc/log.h"

namespace dlt {

namespace {

// Register-interface events are the ones that name a device; walk poll bodies
// too so nested PIO drains are accounted for.
void CollectDevices(const std::vector<TemplateEvent>& events, std::set<uint16_t>* out) {
  for (const TemplateEvent& e : events) {
    switch (e.kind) {
      case EventKind::kRegRead:
      case EventKind::kRegWrite:
      case EventKind::kPollReg:
      case EventKind::kPioIn:
      case EventKind::kPioOut:
        out->insert(e.device);
        break;
      default:
        break;
    }
    if (!e.body.empty()) {
      CollectDevices(e.body, out);
    }
  }
}

// Bumps a cache counter and mirrors it into telemetry when tracing is armed.
void CountCache(std::atomic<uint64_t>* plain, const char* metric) {
  plain->fetch_add(1, std::memory_order_relaxed);
  Telemetry& t = Telemetry::Get();
  if (t.enabled()) {
    t.metrics().counter(metric).Inc();
  }
}

}  // namespace

TemplateStore::TemplateStore() : shared_(std::make_shared<Shared>()) {}

TemplateStore::TemplateStore(std::shared_ptr<Shared> shared) : shared_(std::move(shared)) {}

std::unique_ptr<TemplateStore> TemplateStore::NewShardView() const {
  return std::unique_ptr<TemplateStore>(new TemplateStore(shared_));
}

Status TemplateStore::AddPackage(const uint8_t* data, size_t len,
                                 std::string_view signing_key) {
  DLT_ASSIGN_OR_RETURN(DriverletPackage pkg, OpenPackage(data, len, signing_key));
  return AddPackage(pkg);
}

Status TemplateStore::AddPackage(const DriverletPackage& pkg) {
  if (pkg.driverlet.empty()) {
    return Status::kInvalidArg;
  }
  std::lock_guard<std::mutex> swap(shared_->swap_mu);
  const Population* cur = population();

  // Copy-on-write: clone the owning storage, splice the new driverlet in, then
  // rebuild the derived indexes against the clone's stable addresses.
  auto next = std::make_unique<Population>();
  if (cur != nullptr) {
    next->by_driverlet = cur->by_driverlet;
    next->load_order = cur->load_order;
  }
  if (next->by_driverlet.count(pkg.driverlet) == 0) {
    next->load_order.push_back(pkg.driverlet);
  }
  next->by_driverlet[pkg.driverlet].assign(pkg.templates.begin(), pkg.templates.end());

  for (const std::string& name : next->load_order) {
    const std::deque<InteractionTemplate>& owned = next->by_driverlet.find(name)->second;
    std::set<uint16_t>& devs = next->devices[name];
    for (const InteractionTemplate& t : owned) {
      devs.insert(t.primary_device);
      CollectDevices(t.events, &devs);

      auto [it, inserted] = next->index.try_emplace(std::make_pair(name, t.entry));
      EntrySlot& slot = it->second;
      if (inserted) {
        slot.driverlet = name;
        slot.entry = t.entry;
        next->by_entry[t.entry].push_back(&slot);
      }
      Candidate c;
      c.tpl = &t;
      c.scalar_params = t.ScalarParams();  // precompiled: never rebuilt per invoke
      slot.candidates.push_back(std::move(c));
    }
  }

  // Publish. Readers that pinned the old population keep using it; it stays
  // alive in |epochs|. This view's caches flush eagerly, other views notice
  // the generation change on their next SelectCompiled.
  shared_->pop.store(next.get(), std::memory_order_release);
  shared_->epochs.push_back(std::move(next));
  {
    std::lock_guard<std::mutex> cache(cache_mu_);
    FlushCachesLocked();
    cache_pop_ = population();
  }
  return Status::kOk;
}

bool TemplateStore::HasDriverlet(std::string_view driverlet) const {
  const Population* pop = population();
  return pop != nullptr && pop->by_driverlet.find(driverlet) != pop->by_driverlet.end();
}

size_t TemplateStore::package_count() const {
  const Population* pop = population();
  return pop == nullptr ? 0 : pop->by_driverlet.size();
}

size_t TemplateStore::template_count() const {
  const Population* pop = population();
  if (pop == nullptr) {
    return 0;
  }
  size_t n = 0;
  for (const auto& [name, templates] : pop->by_driverlet) {
    n += templates.size();
  }
  return n;
}

std::vector<std::string> TemplateStore::driverlets() const {
  const Population* pop = population();
  return pop == nullptr ? std::vector<std::string>{} : pop->load_order;
}

std::vector<const InteractionTemplate*> TemplateStore::templates() const {
  std::vector<const InteractionTemplate*> out;
  const Population* pop = population();
  if (pop == nullptr) {
    return out;
  }
  for (const std::string& name : pop->load_order) {
    auto it = pop->by_driverlet.find(name);
    for (const InteractionTemplate& t : it->second) {
      out.push_back(&t);
    }
  }
  return out;
}

std::vector<const InteractionTemplate*> TemplateStore::templates(
    std::string_view driverlet) const {
  std::vector<const InteractionTemplate*> out;
  const Population* pop = population();
  if (pop == nullptr) {
    return out;
  }
  auto it = pop->by_driverlet.find(driverlet);
  if (it == pop->by_driverlet.end()) {
    return out;
  }
  for (const InteractionTemplate& t : it->second) {
    out.push_back(&t);
  }
  return out;
}

std::vector<uint16_t> TemplateStore::PackageDevices(const DriverletPackage& pkg) {
  std::set<uint16_t> devs;
  for (const InteractionTemplate& t : pkg.templates) {
    devs.insert(t.primary_device);
    CollectDevices(t.events, &devs);
  }
  return std::vector<uint16_t>(devs.begin(), devs.end());
}

std::vector<uint16_t> TemplateStore::DevicesOf(std::string_view driverlet) const {
  const Population* pop = population();
  if (pop == nullptr) {
    return {};
  }
  auto it = pop->devices.find(driverlet);
  if (it == pop->devices.end()) {
    return {};
  }
  return std::vector<uint16_t>(it->second.begin(), it->second.end());
}

const TemplateStore::EntrySlot* TemplateStore::FindSlot(const Population& pop,
                                                        std::string_view driverlet,
                                                        std::string_view entry) {
  // index is keyed by std::pair<std::string, std::string>; avoid constructing
  // the pair key for the common scoped lookup via the secondary index.
  auto it = pop.by_entry.find(entry);
  if (it == pop.by_entry.end()) {
    return nullptr;
  }
  for (const EntrySlot* slot : it->second) {
    if (slot->driverlet == driverlet) {
      return slot;
    }
  }
  return nullptr;
}

Result<const InteractionTemplate*> TemplateStore::Select(
    std::string_view driverlet, std::string_view entry, const Bindings& scalars,
    std::vector<const InteractionTemplate*>* rejected) const {
  const Population* pop = population();
  if (pop == nullptr) {
    return Status::kNoTemplate;
  }
  const EntrySlot* single = nullptr;
  const std::vector<const EntrySlot*>* many = nullptr;
  if (!driverlet.empty()) {
    single = FindSlot(*pop, driverlet, entry);
    if (single == nullptr) {
      return Status::kNoTemplate;
    }
  } else {
    auto it = pop->by_entry.find(entry);
    if (it == pop->by_entry.end() || it->second.empty()) {
      return Status::kNoTemplate;
    }
    many = &it->second;
  }

  const InteractionTemplate* selected = nullptr;
  uint64_t scanned = 0;
  size_t slot_count = single != nullptr ? 1 : many->size();
  for (size_t si = 0; si < slot_count; ++si) {
    const EntrySlot* slot = single != nullptr ? single : (*many)[si];
    for (const Candidate& c : slot->candidates) {
      ++scanned;
      // A template whose param set this invoke does not provide cannot match;
      // skip it and keep considering the rest (same-entry templates may bind
      // different param sets).
      bool have_all = true;
      for (const std::string& p : c.scalar_params) {
        if (scalars.find(p) == scalars.end()) {
          have_all = false;
          break;
        }
      }
      if (!have_all) {
        continue;
      }
      Result<bool> ok = c.tpl->initial.Eval(scalars);
      if (!ok.ok()) {
        continue;  // constraint over non-initial symbols cannot gate selection
      }
      if (!*ok) {
        if (rejected != nullptr) {
          rejected->push_back(c.tpl);
        }
        continue;
      }
      if (selected != nullptr) {
        // By construction no two templates cover the same inputs (the recorder
        // merges same-path templates, §4.3); tolerate but warn.
        DLT_LOG(kWarn) << "template selection ambiguous: " << selected->name << " vs "
                       << c.tpl->name;
        continue;
      }
      selected = c.tpl;
    }
  }
  shared_->candidates_scanned.fetch_add(scanned, std::memory_order_relaxed);
  if (selected == nullptr) {
    return Status::kNoTemplate;
  }
  return selected;
}

void TemplateStore::FlushCachesLocked() const {
  // A population swap retires every cached template pointer at once: the
  // copy-on-write rebuild gives all templates fresh addresses, so both caches
  // drop whole (the old granularity — per-replaced-driverlet compile
  // eviction — predates sharing).
  for (size_t i = 0; i < compile_cache_.size(); ++i) {
    CountCache(&compile_cache_evictions_, "replay.compile_cache.evict");
  }
  compile_cache_.clear();
  for (size_t i = 0; i < select_cache_.size(); ++i) {
    CountCache(&select_cache_evictions_, "replay.select_cache.evict");
  }
  select_cache_.clear();
}

std::shared_ptr<const CompiledProgram> TemplateStore::ProgramFor(
    const InteractionTemplate* tpl) const {
  auto it = compile_cache_.find(tpl);
  if (it != compile_cache_.end()) {
    CountCache(&compile_cache_hits_, "replay.compile_cache.hit");
    return it->second;
  }
  CountCache(&compile_cache_misses_, "replay.compile_cache.miss");
  Result<std::shared_ptr<const CompiledProgram>> prog = CompileTemplate(tpl);
  // Failed compiles are cached as null: a permanent interpreter-fallback
  // marker, re-probing would fail identically every invoke.
  std::shared_ptr<const CompiledProgram> p = prog.ok() ? *prog : nullptr;
  compile_cache_.emplace(tpl, p);
  return p;
}

Result<TemplateStore::CompiledSelection> TemplateStore::SelectCompiled(
    std::string_view driverlet, std::string_view entry, const Bindings& scalars,
    std::vector<const InteractionTemplate*>* rejected) const {
  const Population* pop = population();
  if (pop == nullptr) {
    return Status::kNoTemplate;
  }
  std::lock_guard<std::mutex> cache(cache_mu_);
  // RCU reader resync: another view republished the population since this
  // view's caches were built — every cached pointer refers to the retired
  // snapshot, so start over against the current one.
  if (cache_pop_ != pop) {
    FlushCachesLocked();
    cache_pop_ = pop;
  }

  // Cache key: (driverlet, entry, scalar-name signature). Values are excluded
  // on purpose — initial constraints gate on them, so they are evaluated per
  // invoke against the cached candidate list instead.
  std::string key;
  key.reserve(driverlet.size() + entry.size() + scalars.size() * 8 + 2);
  key.append(driverlet);
  key.push_back('\x1e');
  key.append(entry);
  key.push_back('\x1e');
  for (const auto& [name, value] : scalars) {
    key.append(name);
    key.push_back('\x1f');
  }

  const std::vector<CachedCandidate>* cands = nullptr;
  auto hit = select_cache_.find(key);
  if (hit != select_cache_.end()) {
    CountCache(&select_cache_hits_, "replay.select_cache.hit");
    hit->second.tick = ++select_cache_tick_;
    cands = &hit->second.candidates;
  } else {
    CountCache(&select_cache_misses_, "replay.select_cache.miss");
    // Build the param-filtered candidate list the way Select walks the index.
    const EntrySlot* single = nullptr;
    const std::vector<const EntrySlot*>* many = nullptr;
    if (!driverlet.empty()) {
      single = FindSlot(*pop, driverlet, entry);
      if (single == nullptr) {
        return Status::kNoTemplate;
      }
    } else {
      auto it = pop->by_entry.find(entry);
      if (it == pop->by_entry.end() || it->second.empty()) {
        return Status::kNoTemplate;
      }
      many = &it->second;
    }
    SelectCacheEntry fresh;
    size_t slot_count = single != nullptr ? 1 : many->size();
    for (size_t si = 0; si < slot_count; ++si) {
      const EntrySlot* slot = single != nullptr ? single : (*many)[si];
      for (const Candidate& c : slot->candidates) {
        bool have_all = true;
        for (const std::string& p : c.scalar_params) {
          if (scalars.find(p) == scalars.end()) {
            have_all = false;
            break;
          }
        }
        if (!have_all) {
          continue;
        }
        fresh.candidates.push_back(CachedCandidate{c.tpl, ProgramFor(c.tpl)});
      }
    }
    if (select_cache_.size() >= kSelectCacheCapacity) {
      auto victim = select_cache_.begin();
      for (auto it = select_cache_.begin(); it != select_cache_.end(); ++it) {
        if (it->second.tick < victim->second.tick) {
          victim = it;
        }
      }
      select_cache_.erase(victim);
      CountCache(&select_cache_evictions_, "replay.select_cache.evict");
    }
    fresh.tick = ++select_cache_tick_;
    auto [ins, inserted] = select_cache_.emplace(std::move(key), std::move(fresh));
    cands = &ins->second.candidates;
  }

  // Per-invoke value gate, same semantics as Select: evaluation errors skip
  // the candidate, false goes to |rejected|, the first match wins and later
  // matches only produce the ambiguity warning. The compiled initial check
  // runs when a program exists; fallback templates use the tree evaluator.
  CompiledSelection selected;
  uint64_t scanned = 0;
  for (const CachedCandidate& c : *cands) {
    ++scanned;
    Result<bool> ok = c.program != nullptr ? c.program->EvalInitial(scalars)
                                           : c.tpl->initial.Eval(scalars);
    if (!ok.ok()) {
      continue;  // constraint over non-initial symbols cannot gate selection
    }
    if (!*ok) {
      if (rejected != nullptr) {
        rejected->push_back(c.tpl);
      }
      continue;
    }
    if (selected.tpl != nullptr) {
      DLT_LOG(kWarn) << "template selection ambiguous: " << selected.tpl->name << " vs "
                     << c.tpl->name;
      continue;
    }
    selected.tpl = c.tpl;
    selected.program = c.program;
  }
  shared_->candidates_scanned.fetch_add(scanned, std::memory_order_relaxed);
  if (selected.tpl == nullptr) {
    return Status::kNoTemplate;
  }
  return selected;
}

}  // namespace dlt
