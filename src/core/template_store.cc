#include "src/core/template_store.h"

#include <algorithm>

#include "src/obs/telemetry.h"
#include "src/soc/log.h"

namespace dlt {

namespace {

// Register-interface events are the ones that name a device; walk poll bodies
// too so nested PIO drains are accounted for.
void CollectDevices(const std::vector<TemplateEvent>& events, std::set<uint16_t>* out) {
  for (const TemplateEvent& e : events) {
    switch (e.kind) {
      case EventKind::kRegRead:
      case EventKind::kRegWrite:
      case EventKind::kPollReg:
      case EventKind::kPioIn:
      case EventKind::kPioOut:
        out->insert(e.device);
        break;
      default:
        break;
    }
    if (!e.body.empty()) {
      CollectDevices(e.body, out);
    }
  }
}

// Bumps a cache counter and mirrors it into telemetry when tracing is armed.
void CountCache(std::atomic<uint64_t>* plain, const char* metric) {
  plain->fetch_add(1, std::memory_order_relaxed);
  Telemetry& t = Telemetry::Get();
  if (t.enabled()) {
    t.metrics().counter(metric).Inc();
  }
}

}  // namespace

Status TemplateStore::AddPackage(const uint8_t* data, size_t len,
                                 std::string_view signing_key) {
  DLT_ASSIGN_OR_RETURN(DriverletPackage pkg, OpenPackage(data, len, signing_key));
  return AddPackage(pkg);
}

Status TemplateStore::AddPackage(const DriverletPackage& pkg) {
  if (pkg.driverlet.empty()) {
    return Status::kInvalidArg;
  }
  // Reloading a driverlet replaces that driverlet only; drop its old slots.
  if (by_driverlet_.count(pkg.driverlet) != 0) {
    for (auto it = index_.begin(); it != index_.end();) {
      if (it->first.first == pkg.driverlet) {
        auto& slots = by_entry_[it->first.second];
        slots.erase(std::remove(slots.begin(), slots.end(), &it->second), slots.end());
        it = index_.erase(it);
      } else {
        ++it;
      }
    }
  } else {
    load_order_.push_back(pkg.driverlet);
  }

  std::deque<InteractionTemplate>& owned = by_driverlet_[pkg.driverlet];
  InvalidateCaches(owned);  // old template addresses die with the assign below
  owned.assign(pkg.templates.begin(), pkg.templates.end());

  std::set<uint16_t>& devs = devices_[pkg.driverlet];
  devs.clear();
  for (const InteractionTemplate& t : owned) {
    devs.insert(t.primary_device);
    CollectDevices(t.events, &devs);

    auto [it, inserted] = index_.try_emplace(std::make_pair(pkg.driverlet, t.entry));
    EntrySlot& slot = it->second;
    if (inserted) {
      slot.driverlet = pkg.driverlet;
      slot.entry = t.entry;
      by_entry_[t.entry].push_back(&slot);
    }
    Candidate c;
    c.tpl = &t;
    c.scalar_params = t.ScalarParams();  // precompiled: never rebuilt per invoke
    slot.candidates.push_back(std::move(c));
  }
  return Status::kOk;
}

bool TemplateStore::HasDriverlet(std::string_view driverlet) const {
  return by_driverlet_.find(driverlet) != by_driverlet_.end();
}

size_t TemplateStore::template_count() const {
  size_t n = 0;
  for (const auto& [name, templates] : by_driverlet_) {
    n += templates.size();
  }
  return n;
}

std::vector<std::string> TemplateStore::driverlets() const { return load_order_; }

std::vector<const InteractionTemplate*> TemplateStore::templates() const {
  std::vector<const InteractionTemplate*> out;
  for (const std::string& name : load_order_) {
    auto it = by_driverlet_.find(name);
    for (const InteractionTemplate& t : it->second) {
      out.push_back(&t);
    }
  }
  return out;
}

std::vector<const InteractionTemplate*> TemplateStore::templates(
    std::string_view driverlet) const {
  std::vector<const InteractionTemplate*> out;
  auto it = by_driverlet_.find(driverlet);
  if (it == by_driverlet_.end()) {
    return out;
  }
  for (const InteractionTemplate& t : it->second) {
    out.push_back(&t);
  }
  return out;
}

std::vector<uint16_t> TemplateStore::PackageDevices(const DriverletPackage& pkg) {
  std::set<uint16_t> devs;
  for (const InteractionTemplate& t : pkg.templates) {
    devs.insert(t.primary_device);
    CollectDevices(t.events, &devs);
  }
  return std::vector<uint16_t>(devs.begin(), devs.end());
}

std::vector<uint16_t> TemplateStore::DevicesOf(std::string_view driverlet) const {
  auto it = devices_.find(driverlet);
  if (it == devices_.end()) {
    return {};
  }
  return std::vector<uint16_t>(it->second.begin(), it->second.end());
}

const TemplateStore::EntrySlot* TemplateStore::FindSlot(std::string_view driverlet,
                                                        std::string_view entry) const {
  // index_ is keyed by std::pair<std::string, std::string>; avoid constructing
  // the pair key for the common scoped lookup via the secondary index.
  auto it = by_entry_.find(entry);
  if (it == by_entry_.end()) {
    return nullptr;
  }
  for (const EntrySlot* slot : it->second) {
    if (slot->driverlet == driverlet) {
      return slot;
    }
  }
  return nullptr;
}

Result<const InteractionTemplate*> TemplateStore::Select(
    std::string_view driverlet, std::string_view entry, const Bindings& scalars,
    std::vector<const InteractionTemplate*>* rejected) const {
  const EntrySlot* single = nullptr;
  const std::vector<const EntrySlot*>* many = nullptr;
  if (!driverlet.empty()) {
    single = FindSlot(driverlet, entry);
    if (single == nullptr) {
      return Status::kNoTemplate;
    }
  } else {
    auto it = by_entry_.find(entry);
    if (it == by_entry_.end() || it->second.empty()) {
      return Status::kNoTemplate;
    }
    many = &it->second;
  }

  const InteractionTemplate* selected = nullptr;
  uint64_t scanned = 0;
  size_t slot_count = single != nullptr ? 1 : many->size();
  for (size_t si = 0; si < slot_count; ++si) {
    const EntrySlot* slot = single != nullptr ? single : (*many)[si];
    for (const Candidate& c : slot->candidates) {
      ++scanned;
      // A template whose param set this invoke does not provide cannot match;
      // skip it and keep considering the rest (same-entry templates may bind
      // different param sets).
      bool have_all = true;
      for (const std::string& p : c.scalar_params) {
        if (scalars.find(p) == scalars.end()) {
          have_all = false;
          break;
        }
      }
      if (!have_all) {
        continue;
      }
      Result<bool> ok = c.tpl->initial.Eval(scalars);
      if (!ok.ok()) {
        continue;  // constraint over non-initial symbols cannot gate selection
      }
      if (!*ok) {
        if (rejected != nullptr) {
          rejected->push_back(c.tpl);
        }
        continue;
      }
      if (selected != nullptr) {
        // By construction no two templates cover the same inputs (the recorder
        // merges same-path templates, §4.3); tolerate but warn.
        DLT_LOG(kWarn) << "template selection ambiguous: " << selected->name << " vs "
                       << c.tpl->name;
        continue;
      }
      selected = c.tpl;
    }
  }
  candidates_scanned_.fetch_add(scanned, std::memory_order_relaxed);
  if (selected == nullptr) {
    return Status::kNoTemplate;
  }
  return selected;
}

void TemplateStore::InvalidateCaches(const std::deque<InteractionTemplate>& replaced) const {
  for (const InteractionTemplate& t : replaced) {
    if (compile_cache_.erase(&t) != 0) {
      CountCache(&compile_cache_evictions_, "replay.compile_cache.evict");
    }
  }
  // The selection cache holds template pointers from any package; a reload can
  // also change which candidates a signature resolves to, so drop it whole.
  for (size_t i = 0; i < select_cache_.size(); ++i) {
    CountCache(&select_cache_evictions_, "replay.select_cache.evict");
  }
  select_cache_.clear();
}

std::shared_ptr<const CompiledProgram> TemplateStore::ProgramFor(
    const InteractionTemplate* tpl) const {
  auto it = compile_cache_.find(tpl);
  if (it != compile_cache_.end()) {
    CountCache(&compile_cache_hits_, "replay.compile_cache.hit");
    return it->second;
  }
  CountCache(&compile_cache_misses_, "replay.compile_cache.miss");
  Result<std::shared_ptr<const CompiledProgram>> prog = CompileTemplate(tpl);
  // Failed compiles are cached as null: a permanent interpreter-fallback
  // marker, re-probing would fail identically every invoke.
  std::shared_ptr<const CompiledProgram> p = prog.ok() ? *prog : nullptr;
  compile_cache_.emplace(tpl, p);
  return p;
}

Result<TemplateStore::CompiledSelection> TemplateStore::SelectCompiled(
    std::string_view driverlet, std::string_view entry, const Bindings& scalars,
    std::vector<const InteractionTemplate*>* rejected) const {
  // Cache key: (driverlet, entry, scalar-name signature). Values are excluded
  // on purpose — initial constraints gate on them, so they are evaluated per
  // invoke against the cached candidate list instead.
  std::string key;
  key.reserve(driverlet.size() + entry.size() + scalars.size() * 8 + 2);
  key.append(driverlet);
  key.push_back('\x1e');
  key.append(entry);
  key.push_back('\x1e');
  for (const auto& [name, value] : scalars) {
    key.append(name);
    key.push_back('\x1f');
  }

  const std::vector<CachedCandidate>* cands = nullptr;
  auto hit = select_cache_.find(key);
  if (hit != select_cache_.end()) {
    CountCache(&select_cache_hits_, "replay.select_cache.hit");
    hit->second.tick = ++select_cache_tick_;
    cands = &hit->second.candidates;
  } else {
    CountCache(&select_cache_misses_, "replay.select_cache.miss");
    // Build the param-filtered candidate list the way Select walks the index.
    const EntrySlot* single = nullptr;
    const std::vector<const EntrySlot*>* many = nullptr;
    if (!driverlet.empty()) {
      single = FindSlot(driverlet, entry);
      if (single == nullptr) {
        return Status::kNoTemplate;
      }
    } else {
      auto it = by_entry_.find(entry);
      if (it == by_entry_.end() || it->second.empty()) {
        return Status::kNoTemplate;
      }
      many = &it->second;
    }
    SelectCacheEntry fresh;
    size_t slot_count = single != nullptr ? 1 : many->size();
    for (size_t si = 0; si < slot_count; ++si) {
      const EntrySlot* slot = single != nullptr ? single : (*many)[si];
      for (const Candidate& c : slot->candidates) {
        bool have_all = true;
        for (const std::string& p : c.scalar_params) {
          if (scalars.find(p) == scalars.end()) {
            have_all = false;
            break;
          }
        }
        if (!have_all) {
          continue;
        }
        fresh.candidates.push_back(CachedCandidate{c.tpl, ProgramFor(c.tpl)});
      }
    }
    if (select_cache_.size() >= kSelectCacheCapacity) {
      auto victim = select_cache_.begin();
      for (auto it = select_cache_.begin(); it != select_cache_.end(); ++it) {
        if (it->second.tick < victim->second.tick) {
          victim = it;
        }
      }
      select_cache_.erase(victim);
      CountCache(&select_cache_evictions_, "replay.select_cache.evict");
    }
    fresh.tick = ++select_cache_tick_;
    auto [ins, inserted] = select_cache_.emplace(std::move(key), std::move(fresh));
    cands = &ins->second.candidates;
  }

  // Per-invoke value gate, same semantics as Select: evaluation errors skip
  // the candidate, false goes to |rejected|, the first match wins and later
  // matches only produce the ambiguity warning. The compiled initial check
  // runs when a program exists; fallback templates use the tree evaluator.
  CompiledSelection selected;
  uint64_t scanned = 0;
  for (const CachedCandidate& c : *cands) {
    ++scanned;
    Result<bool> ok = c.program != nullptr ? c.program->EvalInitial(scalars)
                                           : c.tpl->initial.Eval(scalars);
    if (!ok.ok()) {
      continue;  // constraint over non-initial symbols cannot gate selection
    }
    if (!*ok) {
      if (rejected != nullptr) {
        rejected->push_back(c.tpl);
      }
      continue;
    }
    if (selected.tpl != nullptr) {
      DLT_LOG(kWarn) << "template selection ambiguous: " << selected.tpl->name << " vs "
                     << c.tpl->name;
      continue;
    }
    selected.tpl = c.tpl;
    selected.program = c.program;
  }
  candidates_scanned_.fetch_add(scanned, std::memory_order_relaxed);
  if (selected.tpl == nullptr) {
    return Status::kNoTemplate;
  }
  return selected;
}

}  // namespace dlt
