#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace dlt {

namespace {
int BucketOf(uint64_t v) {
  if (v == 0) {
    return 0;
  }
  int b = 64 - std::countl_zero(v);  // v in [2^(b-1), 2^b)
  return b < Histogram::kBuckets ? b : Histogram::kBuckets - 1;
}

// Relaxed CAS-min/max; exact under any interleaving.
void AtomicMin(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void AtomicMax(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace

void Histogram::Record(uint64_t v) {
  buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  AtomicMin(min_, v);
  AtomicMax(max_, v);
}

uint64_t Histogram::min() const {
  uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::Percentile(double p) const {
  uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen >= rank) {
      return i == 0 ? 0 : (1ull << i) - 1;  // inclusive upper bound of bucket i
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, c] : counters_) {
    if (n == name) {
      return *c;
    }
  }
  counters_.emplace_back(std::string(name), std::make_unique<Counter>());
  return *counters_.back().second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, g] : gauges_) {
    if (n == name) {
      return *g;
    }
  }
  gauges_.emplace_back(std::string(name), std::make_unique<Gauge>());
  return *gauges_.back().second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, h] : histograms_) {
    if (n == name) {
      return *h;
    }
  }
  histograms_.emplace_back(std::string(name), std::make_unique<Histogram>());
  return *histograms_.back().second;
}

void MetricsRegistry::ForEachCounter(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [n, c] : counters_) {
    fn(n, *c);
  }
}

void MetricsRegistry::ForEachGauge(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [n, g] : gauges_) {
    fn(n, *g);
  }
}

void MetricsRegistry::ForEachHistogram(
    const std::function<void(const std::string&, const Histogram&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [n, h] : histograms_) {
    fn(n, *h);
  }
}

std::string MetricsRegistry::Summary() const {
  std::ostringstream os;
  os << "counters:\n";
  ForEachCounter([&os](const std::string& n, const Counter& c) {
    if (c.value() != 0) {
      os << "  " << n;
      for (size_t i = n.size(); i < 32; ++i) {
        os << ' ';
      }
      os << c.value() << "\n";
    }
  });
  os << "gauges: value / max\n";
  ForEachGauge([&os](const std::string& n, const Gauge& g) {
    if (g.value() != 0 || g.max() != 0) {
      os << "  " << n;
      for (size_t i = n.size(); i < 32; ++i) {
        os << ' ';
      }
      os << g.value() << " / " << g.max() << "\n";
    }
  });
  os << "histograms (us): count / mean / p50 / p99 / max\n";
  ForEachHistogram([&os](const std::string& n, const Histogram& h) {
    if (h.count() != 0) {
      os << "  " << n;
      for (size_t i = n.size(); i < 32; ++i) {
        os << ' ';
      }
      os << h.count() << " / " << static_cast<uint64_t>(h.mean()) << " / " << h.Percentile(50)
         << " / " << h.Percentile(99) << " / " << h.max() << "\n";
    }
  });
  return os.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, c] : counters_) {
    c->Reset();
  }
  for (auto& [n, g] : gauges_) {
    g->Reset();
  }
  for (auto& [n, h] : histograms_) {
    h->Reset();
  }
}

}  // namespace dlt
