#include "src/obs/trace_event.h"

namespace dlt {

const char* TraceKindName(TraceKind k) {
  switch (k) {
    case TraceKind::kReplayInvoke: return "replay_invoke";
    case TraceKind::kTemplateSelected: return "template_selected";
    case TraceKind::kTemplateRejected: return "template_rejected";
    case TraceKind::kConstraintEval: return "constraint_eval";
    case TraceKind::kReplayEvent: return "replay_event";
    case TraceKind::kDivergence: return "divergence";
    case TraceKind::kSoftReset: return "soft_reset";
    case TraceKind::kDmaTransfer: return "dma_transfer";
    case TraceKind::kIrqRaise: return "irq_raise";
    case TraceKind::kIrqWait: return "irq_wait";
    case TraceKind::kWorldSwitch: return "world_switch";
    case TraceKind::kFaultInjected: return "fault_injected";
    case TraceKind::kCount: break;
  }
  return "unknown";
}

const char* TraceKindCategory(TraceKind k) {
  switch (k) {
    case TraceKind::kReplayInvoke:
    case TraceKind::kTemplateSelected:
    case TraceKind::kTemplateRejected:
    case TraceKind::kConstraintEval:
    case TraceKind::kReplayEvent:
    case TraceKind::kDivergence:
    case TraceKind::kSoftReset:
      return "replay";
    case TraceKind::kDmaTransfer:
      return "dma";
    case TraceKind::kIrqRaise:
    case TraceKind::kIrqWait:
      return "irq";
    case TraceKind::kWorldSwitch:
      return "tee";
    case TraceKind::kFaultInjected:
      return "fault";
    case TraceKind::kCount:
      break;
  }
  return "misc";
}

}  // namespace dlt
