#include "src/obs/chrome_trace.h"

#include <cstdio>
#include <map>
#include <sstream>

namespace dlt {

namespace {

void JsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Stable tid per category so every category renders as its own track.
int TidOf(TraceKind k, std::map<std::string, int>* tids) {
  std::string cat = TraceKindCategory(k);
  auto it = tids->find(cat);
  if (it != tids->end()) {
    return it->second;
  }
  int tid = static_cast<int>(tids->size()) + 1;
  (*tids)[cat] = tid;
  return tid;
}

}  // namespace

void ExportChromeTrace(const std::vector<TraceEvent>& events, const MetricsRegistry* metrics,
                       std::ostream& os) {
  std::map<std::string, int> tids;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) {
      os << ",";
    }
    first = false;
    bool span = e.dur_us != 0 || e.kind == TraceKind::kReplayInvoke ||
                e.kind == TraceKind::kReplayEvent || e.kind == TraceKind::kDmaTransfer ||
                e.kind == TraceKind::kIrqWait;
    os << "{\"name\":";
    JsonString(os, e.name[0] != '\0' ? std::string_view(e.name) : TraceKindName(e.kind));
    os << ",\"cat\":";
    JsonString(os, TraceKindCategory(e.kind));
    os << ",\"ph\":\"" << (span ? 'X' : 'I') << "\",\"ts\":" << e.ts_us;
    if (span) {
      os << ",\"dur\":" << e.dur_us;
    } else {
      os << ",\"s\":\"t\"";  // instant scope: thread
    }
    os << ",\"pid\":1,\"tid\":" << TidOf(e.kind, &tids);
    os << ",\"args\":{\"kind\":";
    JsonString(os, TraceKindName(e.kind));
    os << ",\"arg0\":" << e.arg0 << ",\"arg1\":" << e.arg1 << ",\"device\":" << e.device << "}}";
  }
  // Name the per-category tracks.
  for (const auto& [cat, tid] : tids) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":";
    JsonString(os, cat);
    os << "}}";
  }
  os << "]";
  if (metrics != nullptr) {
    os << ",\"otherData\":{\"counters\":{";
    bool c_first = true;
    metrics->ForEachCounter([&os, &c_first](const std::string& n, const Counter& c) {
      if (!c_first) {
        os << ",";
      }
      c_first = false;
      JsonString(os, n);
      os << ":" << c.value();
    });
    os << "},\"histograms\":{";
    bool h_first = true;
    metrics->ForEachHistogram([&os, &h_first](const std::string& n, const Histogram& h) {
      if (!h_first) {
        os << ",";
      }
      h_first = false;
      JsonString(os, n);
      os << ":{\"count\":" << h.count() << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
         << ",\"max\":" << h.max() << ",\"p50\":" << h.Percentile(50)
         << ",\"p99\":" << h.Percentile(99) << "}";
    });
    os << "}}";
  }
  os << "}";
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const MetricsRegistry* metrics) {
  std::ostringstream os;
  ExportChromeTrace(events, metrics, os);
  return os.str();
}

}  // namespace dlt
