#include "src/obs/telemetry.h"

#include <cstdlib>

namespace dlt {

Telemetry& Telemetry::Get() {
  static Telemetry* instance = new Telemetry();  // leaked: outlives static dtors
  return *instance;
}

Telemetry::Telemetry() : ring_(std::make_unique<TraceRing>()) {
  const char* env = std::getenv("DLT_TRACE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') {
    Enable();
  }
}

void Telemetry::Enable(size_t ring_capacity) {
  if (ring_->capacity() < ring_capacity) {
    ring_ = std::make_unique<TraceRing>(ring_capacity);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Telemetry::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Telemetry::Reset() {
  ring_->Clear();
  metrics_.Reset();
}

void Telemetry::Instant(TraceKind k, uint64_t ts_us, std::string_view name, uint64_t arg0,
                        uint64_t arg1, uint16_t device) {
  TraceEvent e;
  e.kind = k;
  e.ts_us = ts_us;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.device = device;
  e.set_name(name);
  ring_->Push(e);
}

void Telemetry::Span(TraceKind k, uint64_t ts_us, uint64_t dur_us, std::string_view name,
                     uint64_t arg0, uint64_t arg1, uint16_t device) {
  TraceEvent e;
  e.kind = k;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.device = device;
  e.set_name(name);
  ring_->Push(e);
}

}  // namespace dlt
