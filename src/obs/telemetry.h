// Telemetry: the process-wide observability facade instrumentation points talk
// to. Disabled by default — the disabled fast path is one relaxed atomic load
// and a branch, cheap enough to leave compiled into every hot path (SimClock
// virtual time is untouched either way, so benchmarks on manual time see zero
// drift). Enable() arms the trace ring + metrics registry; setting DLT_TRACE=1
// in the environment arms it at first use (how `fig8_micro` and ad-hoc runs
// opt in without code changes).
//
// Zero dependencies on the rest of the tree: src/obs sits below src/soc in the
// layering, and emit sites pass SimClock timestamps in explicitly.
#ifndef SRC_OBS_TELEMETRY_H_
#define SRC_OBS_TELEMETRY_H_

#include <atomic>
#include <memory>

#include "src/obs/metrics.h"
#include "src/obs/trace_ring.h"

namespace dlt {

class Telemetry {
 public:
  static Telemetry& Get();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Arms tracing. Reallocates the ring when the capacity changes; metrics
  // registrations always survive (hot paths cache Counter*/Histogram*).
  void Enable(size_t ring_capacity = 1 << 16);
  void Disable();
  // Clears ring contents and zeroes metrics; enabled state is unchanged.
  void Reset();

  TraceRing& ring() { return *ring_; }
  MetricsRegistry& metrics() { return metrics_; }

  // Emit helpers; callers must check enabled() first (keeps the disabled path
  // free of argument marshalling).
  void Instant(TraceKind k, uint64_t ts_us, std::string_view name, uint64_t arg0 = 0,
               uint64_t arg1 = 0, uint16_t device = 0);
  void Span(TraceKind k, uint64_t ts_us, uint64_t dur_us, std::string_view name,
            uint64_t arg0 = 0, uint64_t arg1 = 0, uint16_t device = 0);

 private:
  Telemetry();

  std::atomic<bool> enabled_{false};
  std::unique_ptr<TraceRing> ring_;
  MetricsRegistry metrics_;
};

}  // namespace dlt

#endif  // SRC_OBS_TELEMETRY_H_
