// Chrome trace-event JSON exporter: renders a TraceRing snapshot in the
// format chrome://tracing and Perfetto load natively. Spans become "X"
// (complete) events with virtual-microsecond timestamps/durations; instants
// become "I" events; each TraceKind category gets its own named track.
// Metrics, when provided, ride along under the "otherData" key viewers ignore.
#ifndef SRC_OBS_CHROME_TRACE_H_
#define SRC_OBS_CHROME_TRACE_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace_event.h"

namespace dlt {

void ExportChromeTrace(const std::vector<TraceEvent>& events, const MetricsRegistry* metrics,
                       std::ostream& os);

std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const MetricsRegistry* metrics = nullptr);

}  // namespace dlt

#endif  // SRC_OBS_CHROME_TRACE_H_
