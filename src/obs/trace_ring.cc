#include "src/obs/trace_ring.h"

namespace dlt {

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}
}  // namespace

TraceRing::TraceRing(size_t capacity)
    : slots_(RoundUpPow2(capacity < 2 ? 2 : capacity)), mask_(slots_.size() - 1) {}

uint64_t TraceRing::dropped() const {
  uint64_t pushed = head_.load(std::memory_order_relaxed);
  return pushed > slots_.size() ? pushed - slots_.size() : 0;
}

size_t TraceRing::size() const {
  uint64_t pushed = head_.load(std::memory_order_relaxed);
  return pushed < slots_.size() ? static_cast<size_t>(pushed) : slots_.size();
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  uint64_t pushed = head_.load(std::memory_order_relaxed);
  uint64_t first = pushed > slots_.size() ? pushed - slots_.size() : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(pushed - first));
  for (uint64_t seq = first; seq < pushed; ++seq) {
    out.push_back(slots_[seq & mask_]);
  }
  return out;
}

}  // namespace dlt
