// Typed trace events for the observability subsystem. Every event is a
// fixed-size POD stamped with SimClock virtual time so a replay's trace is
// deterministic; spans additionally carry a virtual duration. The taxonomy
// follows the replay pipeline: template selection, per-event execution, the
// SoC's MMIO/DMA/IRQ activity underneath, and the failure path (divergence,
// soft reset). docs/observability.md is the reference.
#ifndef SRC_OBS_TRACE_EVENT_H_
#define SRC_OBS_TRACE_EVENT_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace dlt {

enum class TraceKind : uint8_t {
  // Replayer / executor.
  kReplayInvoke = 0,     // span: one Replayer::Invoke (name = template)
  kTemplateSelected,     // instant: constraint match won (name = template)
  kTemplateRejected,     // instant: initial constraints unsatisfied
  kConstraintEval,       // instant: state-changing input checked (arg0 = observed)
  kReplayEvent,          // span: one template event executed (name = kind)
  kDivergence,           // instant: constraint violated (arg0 = observed)
  kSoftReset,            // instant: device reset (name = cause, device set)
  // SoC substrate.
  kDmaTransfer,          // span: one DMA chain (arg0 = bytes, arg1 = channel)
  kIrqRaise,             // instant: line asserted (arg0 = line)
  kIrqWait,              // span: replay waited for a line (arg0 = line)
  kWorldSwitch,          // instant: SMC boundary crossing (arg0 = direction)
  kFaultInjected,        // instant: injected fault fired (name = kind, arg0 = detail)
  kCount,                // sentinel
};

const char* TraceKindName(TraceKind k);

// Chrome trace-event category each kind exports under (also its tid lane).
const char* TraceKindCategory(TraceKind k);

struct TraceEvent {
  uint64_t ts_us = 0;    // SimClock virtual time at emission
  uint64_t dur_us = 0;   // spans only; 0 for instants
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  TraceKind kind = TraceKind::kReplayEvent;
  uint16_t device = 0;   // template device id when applicable
  char name[36] = {};    // NUL-terminated label (template name, event kind, ...)

  void set_name(std::string_view s) {
    size_t n = s.size() < sizeof(name) - 1 ? s.size() : sizeof(name) - 1;
    std::memcpy(name, s.data(), n);
    name[n] = '\0';
  }
};
static_assert(sizeof(TraceEvent) == 72, "keep trace slots cache-friendly");

}  // namespace dlt

#endif  // SRC_OBS_TRACE_EVENT_H_
