// EdgeCoverage: a tiny process-wide edge-counter map — the cheap coverage
// signal the boundary fuzzer (src/check/fuzz.h, docs/fuzzing.md) feeds on.
// Unlike the Telemetry counters (string-keyed, registration-order visited),
// this is a fixed array of relaxed atomics indexed by a compile-time site id,
// so instrumented hot paths (ReplayService, InvocationRing, CompiledExecutor
// dispatch) pay one predictable branch when the map is disarmed and one
// relaxed fetch_add when armed. The fuzzer arms it around each boundary
// program, buckets the counts, and keeps inputs that light new cells.
#ifndef SRC_OBS_EDGE_H_
#define SRC_OBS_EDGE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dlt {

// Named instrumentation sites. Keep appending — ids are not persisted
// anywhere except within one fuzzing process.
enum class Edge : uint32_t {
  // ReplayService boundary.
  kServiceRegister,
  kServiceRegisterReject,
  kServiceOpen,
  kServiceOpenReject,
  kServiceClose,
  kServiceInvokeOk,
  kServiceInvokeFail,
  kServiceQuarantine,
  kServiceIntegrityQuarantine,
  kServiceQuarantineReject,
  kServiceMeasurementMismatch,
  kServiceQueueSubmit,
  kServiceQueueReject,
  kServiceQueueDrain,
  kServiceBatch,
  kServiceSessionGone,
  // InvocationRing.
  kRingPush,
  kRingFull,
  kRingWrap,
  kRingDoorbell,
  kRingEmptyDoorbell,
  kRingPop,
  kRingPopEmpty,
  // CompiledExecutor paths (per-opcode hits live at kEdgeOpBase + COp).
  kCompiledBulkFast,
  kCompiledBulkExact,
  kCompiledPollIter,

  kNamedCount,
};

// Compiled opcode hits occupy [kEdgeOpBase, kEdgeOpBase + 32).
inline constexpr size_t kEdgeOpBase = 64;
inline constexpr size_t kEdgeMapSize = 96;
static_assert(static_cast<size_t>(Edge::kNamedCount) <= kEdgeOpBase);

class EdgeCoverage {
 public:
  static EdgeCoverage& Get();

  void Arm() { armed_.store(true, std::memory_order_relaxed); }
  void Disarm() { armed_.store(false, std::memory_order_relaxed); }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  void Hit(Edge e) { HitIndex(static_cast<size_t>(e)); }
  void HitIndex(size_t i) {
    if (!armed() || i >= kEdgeMapSize) {
      return;
    }
    cells_[i].fetch_add(1, std::memory_order_relaxed);
  }

  uint32_t count(size_t i) const {
    return i < kEdgeMapSize ? cells_[i].load(std::memory_order_relaxed) : 0;
  }
  size_t map_size() const { return kEdgeMapSize; }
  // Cells with at least one hit since the last Reset.
  size_t distinct() const;
  void Reset();

 private:
  EdgeCoverage() = default;

  std::atomic<bool> armed_{false};
  std::array<std::atomic<uint32_t>, kEdgeMapSize> cells_{};
};

// Human-readable site label for fuzz logs ("cop+17" for the opcode range).
const char* EdgeName(size_t index);

}  // namespace dlt

#endif  // SRC_OBS_EDGE_H_
