// Fixed-capacity lock-free trace ring. Producers claim a slot with one atomic
// fetch_add and write the event in place; when the ring is full the oldest
// events are overwritten (tracing must never block or abort a replay). The
// simulator is single-threaded today, but record campaigns and replays may
// move onto worker threads (ROADMAP north-star), so the ring is written to the
// multi-producer contract from the start.
#ifndef SRC_OBS_TRACE_RING_H_
#define SRC_OBS_TRACE_RING_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "src/obs/trace_event.h"

namespace dlt {

class TraceRing {
 public:
  // |capacity| is rounded up to a power of two (slot index = seq & mask).
  explicit TraceRing(size_t capacity = 1 << 16);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Push(const TraceEvent& e) {
    uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
    slots_[seq & mask_] = e;
  }

  size_t capacity() const { return slots_.size(); }
  // Total events ever pushed (monotonic, survives wrap-around).
  uint64_t pushed() const { return head_.load(std::memory_order_relaxed); }
  // Events lost to overwrite: pushed - retained.
  uint64_t dropped() const;
  size_t size() const;  // retained events, <= capacity

  // Copies retained events oldest-first. Quiescent callers only (exporter,
  // tests): a concurrent Push may tear the oldest slot.
  std::vector<TraceEvent> Snapshot() const;

  void Clear() { head_.store(0, std::memory_order_relaxed); }

 private:
  std::vector<TraceEvent> slots_;
  uint64_t mask_;
  std::atomic<uint64_t> head_{0};
};

}  // namespace dlt

#endif  // SRC_OBS_TRACE_RING_H_
