#include "src/obs/edge.h"

namespace dlt {

EdgeCoverage& EdgeCoverage::Get() {
  static EdgeCoverage* g = new EdgeCoverage();
  return *g;
}

size_t EdgeCoverage::distinct() const {
  size_t n = 0;
  for (const auto& c : cells_) {
    if (c.load(std::memory_order_relaxed) != 0) {
      ++n;
    }
  }
  return n;
}

void EdgeCoverage::Reset() {
  for (auto& c : cells_) {
    c.store(0, std::memory_order_relaxed);
  }
}

const char* EdgeName(size_t index) {
  static const char* kNames[] = {
      "service.register",         "service.register_reject",
      "service.open",             "service.open_reject",
      "service.close",            "service.invoke_ok",
      "service.invoke_fail",      "service.quarantine",
      "service.integrity_quarantine", "service.quarantine_reject",
      "service.measurement_mismatch", "service.queue_submit",
      "service.queue_reject",     "service.queue_drain",
      "service.batch",            "service.session_gone",
      "ring.push",                "ring.full",
      "ring.wrap",                "ring.doorbell",
      "ring.empty_doorbell",      "ring.pop",
      "ring.pop_empty",           "compiled.bulk_fast",
      "compiled.bulk_exact",      "compiled.poll_iter",
  };
  static_assert(sizeof(kNames) / sizeof(kNames[0]) ==
                static_cast<size_t>(Edge::kNamedCount));
  if (index < static_cast<size_t>(Edge::kNamedCount)) {
    return kNames[index];
  }
  if (index >= kEdgeOpBase && index < kEdgeMapSize) {
    return "cop";
  }
  return "?";
}

}  // namespace dlt
