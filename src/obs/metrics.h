// Metrics registry: named monotonic counters and latency histograms. Metric
// objects are registered once and never deallocated while the registry lives,
// so hot paths may cache the returned pointers; Reset() zeroes values but
// keeps registrations (cached pointers stay valid). All updates are relaxed
// atomics — cheap, and correct for the multi-threaded future.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dlt {

class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Instantaneous level with a high-watermark: queue depths, shard occupancy,
// open sessions. Add/Sub from any thread; max() remembers the highest level
// ever Set/Add-ed (not reset by Sub), so a fleet run can report peak backlog.
class Gauge {
 public:
  void Set(int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    AtomicMaxI64(max_, v);
  }
  void Add(int64_t n = 1) {
    int64_t now = v_.fetch_add(n, std::memory_order_relaxed) + n;
    AtomicMaxI64(max_, now);
  }
  void Sub(int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    v_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  static void AtomicMaxI64(std::atomic<int64_t>& a, int64_t v) {
    int64_t cur = a.load(std::memory_order_relaxed);
    while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<int64_t> v_{0};
  std::atomic<int64_t> max_{0};
};

// Latency histogram with power-of-two buckets: bucket i counts values v with
// 2^(i-1) <= v < 2^i (bucket 0 counts v == 0). Unit is whatever the caller
// records — replay latencies use microseconds of SimClock virtual time.
class Histogram {
 public:
  static constexpr int kBuckets = 44;

  void Record(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const;  // 0 when empty
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;
  // Upper bound of the bucket holding the p-th percentile sample (0 < p <= 100).
  uint64_t Percentile(double p) const;
  uint64_t bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  // Finds or registers. Returned references remain valid for the registry's
  // lifetime; registration takes a mutex, so cache the result off hot paths.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Visits every metric in registration order.
  void ForEachCounter(const std::function<void(const std::string&, const Counter&)>& fn) const;
  void ForEachGauge(const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void ForEachHistogram(const std::function<void(const std::string&, const Histogram&)>& fn) const;

  // Human-readable table of all non-empty metrics.
  std::string Summary() const;

  // Zeroes all values; registrations (and cached pointers) survive.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

}  // namespace dlt

#endif  // SRC_OBS_METRICS_H_
