// LZSS compression (4 KB window, greedy longest match). Driverlet packages ship
// compressed into the TEE and are decompressed by the replayer before use
// (paper §5 "decompresses the interaction template package within the TEE";
// §7.3.4 reports compressed sizes of 6-26 KB per device).
//
// Stream format: little-endian u32 uncompressed size, then token groups of
// 8 items preceded by a flag byte (bit i set = literal byte, clear = match).
// A match is two bytes: 12-bit distance (1-4096), 4-bit length (3-18).
#ifndef SRC_CRYPTO_LZSS_H_
#define SRC_CRYPTO_LZSS_H_

#include <cstdint>
#include <vector>

#include "src/soc/status.h"

namespace dlt {

std::vector<uint8_t> LzssCompress(const void* data, size_t len);

Result<std::vector<uint8_t>> LzssDecompress(const void* data, size_t len);

}  // namespace dlt

#endif  // SRC_CRYPTO_LZSS_H_
