#include "src/crypto/hmac.h"

#include <array>
#include <cstring>

namespace dlt {

Sha256::Digest HmacSha256(std::string_view key, const void* data, size_t len) {
  constexpr size_t kBlock = 64;
  std::array<uint8_t, kBlock> k{};
  if (key.size() > kBlock) {
    Sha256::Digest kd = Sha256::Hash(key.data(), key.size());
    std::memcpy(k.data(), kd.data(), kd.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }
  std::array<uint8_t, kBlock> ipad;
  std::array<uint8_t, kBlock> opad;
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<uint8_t>(k[i] ^ 0x5c);
  }
  Sha256 inner;
  inner.Update(ipad.data(), ipad.size());
  inner.Update(data, len);
  Sha256::Digest inner_digest = inner.Finalize();
  Sha256 outer;
  outer.Update(opad.data(), opad.size());
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finalize();
}

bool HmacVerify(std::string_view key, const void* data, size_t len, const Sha256::Digest& mac) {
  Sha256::Digest expect = HmacSha256(key, data, len);
  // Constant-time compare.
  uint8_t diff = 0;
  for (size_t i = 0; i < expect.size(); ++i) {
    diff = static_cast<uint8_t>(diff | (expect[i] ^ mac[i]));
  }
  return diff == 0;
}

}  // namespace dlt
