// SHA-256 (FIPS 180-4), implemented from scratch. Used to sign interaction
// template packages: "the recorder signs the templates which are thereafter
// immutable" (paper §4); the replayer "verifies recording integrity by
// developers' signatures prior to use" (paper §5).
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace dlt {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  using Digest = std::array<uint8_t, kDigestSize>;

  Sha256();
  void Update(const void* data, size_t len);
  Digest Finalize();

  static Digest Hash(const void* data, size_t len);
  static std::string HexDigest(const Digest& d);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> buffer_;
  size_t buffered_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace dlt

#endif  // SRC_CRYPTO_SHA256_H_
