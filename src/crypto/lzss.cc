#include "src/crypto/lzss.h"

#include <array>
#include <cstring>

namespace dlt {

namespace {

constexpr size_t kWindow = 4096;
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 18;
constexpr size_t kHashSize = 1 << 13;

inline uint32_t Hash3(const uint8_t* p) {
  uint32_t v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - 13);
}

}  // namespace

std::vector<uint8_t> LzssCompress(const void* data, size_t len) {
  const uint8_t* in = static_cast<const uint8_t*>(data);
  std::vector<uint8_t> out;
  out.reserve(len / 2 + 16);
  uint32_t size32 = static_cast<uint32_t>(len);
  out.resize(4);
  std::memcpy(out.data(), &size32, 4);

  // Chained hash table of recent positions.
  std::array<int64_t, kHashSize> head;
  head.fill(-1);
  std::vector<int64_t> prev(len, -1);

  size_t pos = 0;
  size_t flag_at = 0;
  int flag_bits = 0;
  uint8_t flags = 0;
  auto open_group = [&] {
    flag_at = out.size();
    out.push_back(0);
    flags = 0;
    flag_bits = 0;
  };
  auto close_group = [&] { out[flag_at] = flags; };
  open_group();

  auto emit = [&](bool literal, uint8_t a, uint8_t b) {
    if (flag_bits == 8) {
      close_group();
      open_group();
    }
    if (literal) {
      flags = static_cast<uint8_t>(flags | (1u << flag_bits));
      out.push_back(a);
    } else {
      out.push_back(a);
      out.push_back(b);
    }
    ++flag_bits;
  };

  while (pos < len) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (pos + kMinMatch <= len) {
      uint32_t h = Hash3(in + pos);
      int64_t cand = head[h];
      int probes = 32;
      while (cand >= 0 && probes-- > 0 && pos - static_cast<size_t>(cand) <= kWindow) {
        size_t cpos = static_cast<size_t>(cand);
        size_t match = 0;
        size_t limit = std::min(kMaxMatch, len - pos);
        while (match < limit && in[cpos + match] == in[pos + match]) {
          ++match;
        }
        if (match > best_len) {
          best_len = match;
          best_dist = pos - cpos;
          if (match == kMaxMatch) {
            break;
          }
        }
        cand = prev[cpos];
      }
      prev[pos] = head[h];
      head[h] = static_cast<int64_t>(pos);
    }
    if (best_len >= kMinMatch) {
      // distance-1 in 12 bits, length-kMinMatch in 4 bits.
      uint16_t token = static_cast<uint16_t>(((best_dist - 1) << 4) | (best_len - kMinMatch));
      emit(false, static_cast<uint8_t>(token & 0xff), static_cast<uint8_t>(token >> 8));
      // Index skipped positions so later matches can reference them.
      for (size_t i = 1; i < best_len && pos + i + kMinMatch <= len; ++i) {
        uint32_t h = Hash3(in + pos + i);
        prev[pos + i] = head[h];
        head[h] = static_cast<int64_t>(pos + i);
      }
      pos += best_len;
    } else {
      emit(true, in[pos], 0);
      ++pos;
    }
  }
  close_group();
  return out;
}

Result<std::vector<uint8_t>> LzssDecompress(const void* data, size_t len) {
  const uint8_t* in = static_cast<const uint8_t*>(data);
  if (len < 4) {
    return Status::kCorrupt;
  }
  uint32_t expect = 0;
  std::memcpy(&expect, in, 4);
  std::vector<uint8_t> out;
  out.reserve(expect);
  size_t pos = 4;
  while (out.size() < expect) {
    if (pos >= len) {
      return Status::kCorrupt;
    }
    uint8_t flags = in[pos++];
    for (int bit = 0; bit < 8 && out.size() < expect; ++bit) {
      if (flags & (1u << bit)) {
        if (pos >= len) {
          return Status::kCorrupt;
        }
        out.push_back(in[pos++]);
      } else {
        if (pos + 1 >= len) {
          return Status::kCorrupt;
        }
        uint16_t token = static_cast<uint16_t>(in[pos] | (in[pos + 1] << 8));
        pos += 2;
        size_t dist = static_cast<size_t>((token >> 4)) + 1;
        size_t mlen = static_cast<size_t>(token & 0xf) + kMinMatch;
        if (dist > out.size()) {
          return Status::kCorrupt;
        }
        size_t start = out.size() - dist;
        for (size_t i = 0; i < mlen; ++i) {
          out.push_back(out[start + i]);
        }
      }
    }
  }
  if (out.size() != expect) {
    return Status::kCorrupt;
  }
  return out;
}

}  // namespace dlt
