// HMAC-SHA256 (RFC 2104). The "developer signature" over interaction template
// packages; see DESIGN.md (real deployments would use an asymmetric scheme, the
// integrity/authentication role in the threat model is the same).
#ifndef SRC_CRYPTO_HMAC_H_
#define SRC_CRYPTO_HMAC_H_

#include <string>
#include <string_view>

#include "src/crypto/sha256.h"

namespace dlt {

Sha256::Digest HmacSha256(std::string_view key, const void* data, size_t len);

bool HmacVerify(std::string_view key, const void* data, size_t len, const Sha256::Digest& mac);

}  // namespace dlt

#endif  // SRC_CRYPTO_HMAC_H_
