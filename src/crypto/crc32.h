// CRC32 (IEEE 802.3 polynomial). Used by the USB mass-storage bus model for
// per-packet checksums and by the binary template framing.
#ifndef SRC_CRYPTO_CRC32_H_
#define SRC_CRYPTO_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace dlt {

uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace dlt

#endif  // SRC_CRYPTO_CRC32_H_
